// Scenario-level tests of the --adversary/--trace axis: an overridden
// scenario reproduces a recording run's payload checksum bit-for-bit, and
// synthetic overrides swap the schedule family without touching the
// scenario's shape.
#include "scenarios/adversary_axis.hpp"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "scenarios/scenarios.hpp"
#include "sim/runner/scenario_registry.hpp"
#include "trace/run_payload.hpp"
#include "trace/trace_adversary.hpp"
#include "trace/trace_format.hpp"
#include "trace/trace_writer.hpp"

namespace dyngossip {
namespace {

ScenarioResult run_scenario(const std::string& name, const std::string& spec,
                            std::size_t trials = 0) {
  ScenarioRegistry registry;
  register_all_scenarios(registry);
  const Scenario* scenario = registry.find(name);
  EXPECT_NE(scenario, nullptr);
  ThreadPool pool(2);
  ScenarioContext ctx(pool, trials, /*quick=*/true);
  ctx.set_adversary_spec(spec);
  return scenario->run(ctx);
}

class RecordedTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "axis_test_recorded.dgt";
    // Record exactly the way `dyngossip trace record` does: run the shared
    // dispatch against a live churn adversary, teeing the schedule, with
    // the run flags embedded in the metadata.
    spec_.algo = "single_source";
    spec_.n = 32;
    spec_.k = 64;
    spec_.sources = 4;
    spec_.cap = 0;
    const std::string metadata =
        "algo=single_source n=32 k=64 sources=4 adversary=churn seed=7 cap=0";
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    BinaryTraceWriter writer(out, 32, /*seed=*/7, metadata);
    const std::unique_ptr<Adversary> live =
        build_adversary(AdversarySpec::parse("churn:sigma=3"), spec_.n, 7);
    TraceRecorder recorder(*live, writer);
    std::uint64_t k_realized = 0;
    const RunResult recorded = run_traced_algo(spec_, recorder, &k_realized);
    writer.finish();
    recorded_checksum_ =
        checksum_hex(run_payload_checksum(spec_.n, k_realized, recorded));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  TracedRunSpec spec_;
  std::string recorded_checksum_;
};

TEST_F(RecordedTrace, SingleSourceScenarioReproducesTheRecordingChecksum) {
  const ScenarioResult result =
      run_scenario("single_source", "trace:file=" + path_);
  ASSERT_EQ(result.tables.size(), 1u);
  const ScenarioTable& table = result.tables[0];
  ASSERT_EQ(table.rows.size(), 1u);  // n pinned by the trace header
  const std::vector<std::string>& row = table.rows[0];
  EXPECT_EQ(row[2], "32");               // n from the trace
  EXPECT_EQ(row[3], "64");               // k from the metadata
  EXPECT_EQ(row.back(), recorded_checksum_);
}

TEST_F(RecordedTrace, ScriptedOverrideReplaysTheSameScheduleAsTrace) {
  // scripted: materializes the whole file as a graph script; trace: streams
  // it.  Same schedule, different machinery — the run payloads must agree
  // with each other and with the recording.
  const ScenarioResult t = run_scenario("single_source", "trace:file=" + path_);
  const ScenarioResult s =
      run_scenario("single_source", "scripted:file=" + path_);
  ASSERT_EQ(t.tables[0].rows.size(), 1u);
  ASSERT_EQ(s.tables[0].rows.size(), 1u);
  EXPECT_EQ(s.tables[0].rows[0].back(), recorded_checksum_);
  EXPECT_EQ(t.tables[0].rows[0].back(), s.tables[0].rows[0].back());
}

TEST_F(RecordedTrace, TraceOverrideIsDeterministicAcrossRuns) {
  const ScenarioResult a = run_scenario("single_source", "trace:file=" + path_);
  const ScenarioResult b = run_scenario("single_source", "trace:file=" + path_);
  EXPECT_TRUE(a == b);
}

TEST_F(RecordedTrace, LeaderElectionPinsItsGridToTheTraceNodeCount) {
  const ScenarioResult result =
      run_scenario("leader_election", "trace:file=" + path_, /*trials=*/1);
  ASSERT_EQ(result.tables.size(), 1u);
  ASSERT_EQ(result.tables[0].rows.size(), 1u);  // one n, one (override) case
  EXPECT_EQ(result.tables[0].rows[0][0], "32");
  EXPECT_EQ(result.tables[0].rows[0][1], "trace:file=" + path_);
}

TEST(AdversaryAxis, SyntheticOverrideRunsTheRequestedFamily) {
  const ScenarioResult result =
      run_scenario("single_source", "sigma:interval=4,turnover=0.25");
  ASSERT_EQ(result.tables.size(), 1u);
  const ScenarioTable& table = result.tables[0];
  ASSERT_EQ(table.rows.size(), 2u);  // quick grid: n in {24, 48}
  for (const auto& row : table.rows) {
    EXPECT_EQ(row[0], "sigma:interval=4,turnover=0.25");
    EXPECT_EQ(row[5], "yes");  // completed
  }
}

TEST(AdversaryAxis, ResolveRejectsUnknownSpecs) {
  ThreadPool pool(1);
  ScenarioContext ctx(pool, 0, /*quick=*/true);
  ctx.set_adversary_spec("bogus:x=1");
  EXPECT_THROW((void)AdversaryAxis::resolve(ctx), AdversarySpecError);
  ctx.set_adversary_spec("churn:rte=1");
  EXPECT_THROW((void)AdversaryAxis::resolve(ctx), AdversarySpecError);
  ctx.set_adversary_spec("");
  EXPECT_FALSE(AdversaryAxis::resolve(ctx).overridden());
}

TEST(AdversaryAxis, BuildFallsBackToTheDefaultSpecWhenNotOverridden) {
  ThreadPool pool(1);
  const ScenarioContext ctx(pool, 0, /*quick=*/true);
  const AdversaryAxis axis = AdversaryAxis::resolve(ctx);
  AdversarySpec def{"static", {}};
  const std::unique_ptr<Adversary> adversary = axis.build(def, 8, 1);
  EXPECT_EQ(adversary->num_nodes(), 8u);
}

}  // namespace
}  // namespace dyngossip
