// Scenario-level tests of the --adversary/--trace/--algo axes: an
// overridden scenario reproduces a recording run's payload checksum
// bit-for-bit, synthetic adversary overrides swap the schedule family
// without touching the scenario's shape, and an --algo override runs a
// different registered algorithm whose payload is bit-identical to the
// hand-built run.
#include "scenarios/run_axes.hpp"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "scenarios/scenarios.hpp"
#include "sim/runner/scenario_registry.hpp"
#include "sim/simulator.hpp"
#include "trace/run_payload.hpp"
#include "trace/trace_adversary.hpp"
#include "trace/trace_format.hpp"
#include "trace/trace_writer.hpp"

namespace dyngossip {
namespace {

ScenarioResult run_scenario(const std::string& name, const std::string& spec,
                            std::size_t trials = 0,
                            const std::string& algo = "") {
  ScenarioRegistry registry;
  register_all_scenarios(registry);
  const Scenario* scenario = registry.find(name);
  EXPECT_NE(scenario, nullptr);
  ThreadPool pool(2);
  ScenarioContext ctx(pool, trials, /*quick=*/true);
  ctx.set_adversary_spec(spec);
  ctx.set_algo_spec(algo);
  return scenario->run(ctx);
}

class RecordedTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "axis_test_recorded.dgt";
    // Record exactly the way `dyngossip trace record` does: run the shared
    // registry dispatch against a live churn adversary, teeing the
    // schedule, with the run flags embedded in the metadata.
    spec_ = AlgoSpec{"single_source", {}};
    ctx_.n = 32;
    ctx_.k = 64;
    ctx_.sources = 4;
    ctx_.cap = 0;
    const std::string metadata =
        "algo=single_source n=32 k=64 sources=4 adversary=churn seed=7 cap=0";
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    BinaryTraceWriter writer(out, 32, /*seed=*/7, metadata);
    const std::unique_ptr<Adversary> live =
        build_adversary(AdversarySpec::parse("churn:sigma=3"), ctx_.n, 7);
    TraceRecorder recorder(*live, writer);
    AlgoBuildContext run_ctx = ctx_;
    const RunResult recorded = run_algo(spec_, run_ctx, recorder);
    writer.finish();
    recorded_checksum_ =
        checksum_hex(run_payload_checksum(ctx_.n, run_ctx.k_realized, recorded));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  AlgoSpec spec_;
  AlgoBuildContext ctx_;
  std::string recorded_checksum_;
};

TEST_F(RecordedTrace, SingleSourceScenarioReproducesTheRecordingChecksum) {
  const ScenarioResult result =
      run_scenario("single_source", "trace:file=" + path_);
  ASSERT_EQ(result.tables.size(), 1u);
  const ScenarioTable& table = result.tables[0];
  ASSERT_EQ(table.rows.size(), 1u);  // n pinned by the trace header
  const std::vector<std::string>& row = table.rows[0];
  EXPECT_EQ(row[2], "32");               // n from the trace
  EXPECT_EQ(row[3], "64");               // k from the metadata
  EXPECT_EQ(row.back(), recorded_checksum_);
}

TEST_F(RecordedTrace, ScriptedOverrideReplaysTheSameScheduleAsTrace) {
  // scripted: materializes the whole file as a graph script; trace: streams
  // it.  Same schedule, different machinery — the run payloads must agree
  // with each other and with the recording.
  const ScenarioResult t = run_scenario("single_source", "trace:file=" + path_);
  const ScenarioResult s =
      run_scenario("single_source", "scripted:file=" + path_);
  ASSERT_EQ(t.tables[0].rows.size(), 1u);
  ASSERT_EQ(s.tables[0].rows.size(), 1u);
  EXPECT_EQ(s.tables[0].rows[0].back(), recorded_checksum_);
  EXPECT_EQ(t.tables[0].rows[0].back(), s.tables[0].rows[0].back());
}

TEST_F(RecordedTrace, TraceOverrideIsDeterministicAcrossRuns) {
  const ScenarioResult a = run_scenario("single_source", "trace:file=" + path_);
  const ScenarioResult b = run_scenario("single_source", "trace:file=" + path_);
  EXPECT_TRUE(a == b);
}

TEST_F(RecordedTrace, LeaderElectionPinsItsGridToTheTraceNodeCount) {
  const ScenarioResult result =
      run_scenario("leader_election", "trace:file=" + path_, /*trials=*/1);
  ASSERT_EQ(result.tables.size(), 1u);
  ASSERT_EQ(result.tables[0].rows.size(), 1u);  // one n, one (override) case
  EXPECT_EQ(result.tables[0].rows[0][0], "32");
  EXPECT_EQ(result.tables[0].rows[0][1], "trace:file=" + path_);
}

TEST_F(RecordedTrace, Table1PinsItsGridToTheTraceNodeCount) {
  // PR-5 satellite: table1 now honours the adversary axis; a trace
  // override collapses the size sweep to the recording's node count.
  const ScenarioResult result =
      run_scenario("table1", "trace:file=" + path_, /*trials=*/1);
  ASSERT_EQ(result.tables.size(), 1u);
  ASSERT_EQ(result.tables[0].rows.size(), 4u);  // one n x four regimes
  for (const auto& row : result.tables[0].rows) EXPECT_EQ(row[0], "32");
}

TEST_F(RecordedTrace, CrossAlgorithmReplayRunsFloodingOverTheRecording) {
  // The schedule was recorded under single_source; --algo=flooding: replays
  // the same rounds under the local-broadcast baseline.  The checksum
  // legitimately differs from the recording's, but the run is pinned to the
  // recording's shape and the note flags the cross-algorithm replay.
  const ScenarioResult result = run_scenario(
      "single_source", "trace:file=" + path_, /*trials=*/0, "flooding:");
  ASSERT_EQ(result.tables.size(), 1u);
  const ScenarioTable& table = result.tables[0];
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][1], "flooding");  // algo column (canonical spec)
  EXPECT_NE(table.rows[0].back(), recorded_checksum_);
  EXPECT_NE(table.note.find("recorded under 'single_source'"),
            std::string::npos);
}

TEST_F(RecordedTrace, StaticOnlyAlgorithmRejectsADynamicRecording) {
  // The fixture's recording ran under churn; the shared requires_static
  // policy reads that from the metadata and fails cleanly instead of
  // letting spanning_tree trip its DG_CHECK mid-run.
  EXPECT_THROW((void)run_scenario("single_source", "trace:file=" + path_,
                                  /*trials=*/0, "spanning_tree:"),
               AlgoSpecError);
}

TEST(AdversaryAxis, SyntheticOverrideRunsTheRequestedFamily) {
  const ScenarioResult result =
      run_scenario("single_source", "sigma:interval=4,turnover=0.25");
  ASSERT_EQ(result.tables.size(), 1u);
  const ScenarioTable& table = result.tables[0];
  ASSERT_EQ(table.rows.size(), 2u);  // quick grid: n in {24, 48}
  for (const auto& row : table.rows) {
    EXPECT_EQ(row[0], "sigma:interval=4,turnover=0.25");
    EXPECT_EQ(row[5], "yes");  // completed
  }
}

TEST(AdversaryAxis, ResolveRejectsUnknownSpecs) {
  ThreadPool pool(1);
  ScenarioContext ctx(pool, 0, /*quick=*/true);
  ctx.set_adversary_spec("bogus:x=1");
  EXPECT_THROW((void)RunAxes::resolve(ctx), AdversarySpecError);
  ctx.set_adversary_spec("churn:rte=1");
  EXPECT_THROW((void)RunAxes::resolve(ctx), AdversarySpecError);
  ctx.set_adversary_spec("");
  EXPECT_FALSE(RunAxes::resolve(ctx).overridden());
}

TEST(AdversaryAxis, BuildFallsBackToTheDefaultSpecWhenNotOverridden) {
  ThreadPool pool(1);
  const ScenarioContext ctx(pool, 0, /*quick=*/true);
  const RunAxes axes = RunAxes::resolve(ctx);
  AdversarySpec def{"static", {}};
  const std::unique_ptr<Adversary> adversary = axes.build(def, 8, 1);
  EXPECT_EQ(adversary->num_nodes(), 8u);
}

// ---- the --algo axis -----------------------------------------------------

TEST(AlgoAxis, ResolveRejectsUnknownAlgoSpecs) {
  ThreadPool pool(1);
  ScenarioContext ctx(pool, 0, /*quick=*/true);
  ctx.set_algo_spec("bogus_algo");
  EXPECT_THROW((void)RunAxes::resolve(ctx), AlgoSpecError);
  ctx.set_algo_spec("flooding:zorp=1");
  EXPECT_THROW((void)RunAxes::resolve(ctx), AlgoSpecError);
  ctx.set_algo_spec("flooding:");
  EXPECT_TRUE(RunAxes::resolve(ctx).algo_overridden());
  EXPECT_FALSE(RunAxes::resolve(ctx).adversary_overridden());
}

TEST(AlgoAxis, SingleSourceWithFloodingMatchesTheHandBuiltFloodingRun) {
  // `run single_source --algo=flooding:` must produce, row for row, the
  // payload checksum of a hand-built phase-flooding run over the same
  // (default churn) schedule, same trial seed, same single-source task —
  // i.e. the registry dispatch adds nothing to the run itself.
  const ScenarioResult result =
      run_scenario("single_source", "", /*trials=*/0, "flooding:");
  ASSERT_EQ(result.tables.size(), 1u);
  const ScenarioTable& table = result.tables[0];
  ASSERT_EQ(table.rows.size(), 2u);  // quick grid: n in {24, 48}
  for (const auto& row : table.rows) {
    const std::size_t n = std::stoul(row[2]);
    const auto k = static_cast<std::uint32_t>(2 * n);
    // The scenario's quick-grid row shape and seed derivation.
    const std::uint64_t seed = 9'000 + 37 * n + 0;
    const Round cap = static_cast<Round>(40ull * n * k);
    // The scenario's default churn schedule for this row.
    AdversarySpec churn{"churn", {}};
    churn.set("edges", static_cast<std::uint64_t>(3 * n))
        .set("churn", static_cast<std::uint64_t>(n / 8));
    const std::unique_ptr<Adversary> adversary = build_adversary(churn, n, seed);
    // The flooding family's canonical single-source task: all k tokens at
    // node 0.
    const TokenSpace space = TokenSpace::single_source(0, k);
    const RunResult hand = run_phase_flooding(n, k, space.initial_knowledge(n),
                                              *adversary, cap);
    EXPECT_EQ(row[0], churn.to_string());
    EXPECT_EQ(row[1], "flooding");
    EXPECT_EQ(row.back(), checksum_hex(run_payload_checksum(n, k, hand)));
  }
}

TEST(AlgoAxis, SigmaStableChurnCompletesUnderFloodingOverride) {
  // The acceptance row: any algorithm on any schedule.
  const ScenarioResult result = run_scenario(
      "sigma_stable_churn", "sigma:interval=16,turnover=0.03", 0, "flooding:");
  ASSERT_EQ(result.tables.size(), 1u);
  ASSERT_FALSE(result.tables[0].rows.empty());
  for (const auto& row : result.tables[0].rows) {
    EXPECT_EQ(row[1], "flooding");
    EXPECT_EQ(row[5], "yes");  // completed
    EXPECT_EQ(row.back().size(), 16u);  // checksum column is a 64-bit hex
  }
}

TEST(AlgoAxis, StaticOnlyAlgorithmRejectsDynamicSchedules) {
  // spanning_tree asserts an unchanging neighborhood; over the scenario's
  // default churn schedule (or an explicit dynamic override) the axis must
  // fail with a clean spec error instead of tripping the protocol's
  // DG_CHECK inside a pool worker.  A static override passes.
  EXPECT_THROW((void)run_scenario("single_source", "", 0, "spanning_tree:"),
               AlgoSpecError);
  EXPECT_THROW(
      (void)run_scenario("single_source", "churn:", 0, "spanning_tree:"),
      AlgoSpecError);
  const ScenarioResult ok =
      run_scenario("single_source", "static:", 0, "spanning_tree:");
  ASSERT_FALSE(ok.tables[0].rows.empty());
  for (const auto& row : ok.tables[0].rows) EXPECT_EQ(row[5], "yes");
}

TEST(AlgoAxis, ExplicitDefaultAlgoIsDispatchNeutral) {
  // --algo=single_source (the scenario's own default) must not change a
  // single byte of the override table relative to an adversary-only run.
  const ScenarioResult with_algo = run_scenario(
      "single_source", "sigma:interval=4,turnover=0.25", 0, "single_source");
  const ScenarioResult without =
      run_scenario("single_source", "sigma:interval=4,turnover=0.25");
  EXPECT_TRUE(with_algo == without);
}

TEST(AlgoAxis, AlgoMatrixCrossesFamiliesOnASharedSchedule) {
  ScenarioRegistry registry;
  register_all_scenarios(registry);
  const Scenario* scenario = registry.find("algo_matrix");
  ASSERT_NE(scenario, nullptr);
  EXPECT_TRUE(scenario->algo_axis);
  EXPECT_TRUE(scenario->adversary_axis);
  ThreadPool pool(2);
  ScenarioContext ctx(pool, /*trials=*/1, /*quick=*/true);
  const ScenarioResult result = scenario->run(ctx);
  ASSERT_EQ(result.tables.size(), 1u);
  const ScenarioTable& table = result.tables[0];
  // 9 families x 3 schedules, minus spanning_tree's two non-static pairs.
  EXPECT_EQ(table.rows.size(), 9u * 3u - 2u);
  for (const auto& row : table.rows) {
    EXPECT_EQ(row[4], "yes") << row[0] << " vs " << row[2]
                             << " did not complete";
  }
}

}  // namespace
}  // namespace dyngossip
