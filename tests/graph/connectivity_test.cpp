// Tests for connectivity queries and repairs.
#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dyngossip {
namespace {

TEST(Connectivity, ComponentsOfDisconnectedGraph) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.count, 4u);  // {0,1},{2,3},{4},{5}
  EXPECT_EQ(info.labels[0], info.labels[1]);
  EXPECT_EQ(info.labels[2], info.labels[3]);
  EXPECT_NE(info.labels[0], info.labels[2]);
  EXPECT_NE(info.labels[4], info.labels[5]);
  EXPECT_EQ(info.representatives.size(), 4u);
}

TEST(Connectivity, IsConnectedCases) {
  EXPECT_TRUE(is_connected(Graph(0)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_FALSE(is_connected(Graph(2)));
  EXPECT_TRUE(is_connected(path_graph(10)));
  Graph g = path_graph(10);
  g.remove_edge(4, 5);
  EXPECT_FALSE(is_connected(g));
}

TEST(Connectivity, ConnectComponentsAddsMinimumEdges) {
  Rng rng(3);
  Graph g(9);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  // components: {0,1},{2,3},{4,5},{6},{7},{8} -> 6 components
  const auto added = connect_components(g, rng);
  EXPECT_EQ(added.size(), 5u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Connectivity, ConnectAlreadyConnectedIsNoop) {
  Rng rng(4);
  Graph g = cycle_graph(8);
  const std::size_t before = g.num_edges();
  EXPECT_TRUE(connect_components(g, rng).empty());
  EXPECT_EQ(g.num_edges(), before);
}

TEST(Connectivity, BfsTreeOnPath) {
  const Graph g = path_graph(5);
  const BfsTree t = bfs_tree(g, 0);
  EXPECT_EQ(t.parent[0], 0u);
  EXPECT_EQ(t.parent[3], 2u);
  EXPECT_EQ(t.depth[4], 4u);
  EXPECT_EQ(t.order.front(), 0u);
  EXPECT_EQ(t.order.size(), 5u);
}

TEST(Connectivity, BfsTreeOnStarFromLeaf) {
  const Graph g = star_graph(6, 0);
  const BfsTree t = bfs_tree(g, 5);
  EXPECT_EQ(t.depth[5], 0u);
  EXPECT_EQ(t.depth[0], 1u);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_EQ(t.depth[v], 2u);
    EXPECT_EQ(t.parent[v], 0u);
  }
}

TEST(Connectivity, BfsTreeDepthsAreShortestPaths) {
  Rng rng(5);
  const Graph g = connected_erdos_renyi(40, 0.1, rng);
  const BfsTree t = bfs_tree(g, 0);
  // Every edge violates the BFS property by at most one level.
  for (const EdgeKey key : g.edges()) {
    const auto [u, v] = edge_endpoints(key);
    const auto du = static_cast<int>(t.depth[u]);
    const auto dv = static_cast<int>(t.depth[v]);
    EXPECT_LE(std::abs(du - dv), 1);
  }
}

TEST(Connectivity, CheckerMatchesUnionFindOracle) {
  Rng rng(31);
  ConnectivityChecker checker;
  RoundGraphView view;
  for (int trial = 0; trial < 40; ++trial) {
    Graph g = random_connected_with_edges(24, 40, rng);
    // Randomly delete a few edges; about half the trials disconnect.
    const std::vector<EdgeKey> edges = g.sorted_edges();
    for (int cut = 0; cut < 6; ++cut) {
      const auto [u, v] = edge_endpoints(edges[rng.next_below(edges.size())]);
      g.remove_edge(u, v);
    }
    view.rebuild(g);
    EXPECT_EQ(checker.is_connected(view), is_connected(g)) << "trial " << trial;
  }
}

TEST(Connectivity, CheckerTrivialCases) {
  ConnectivityChecker checker;
  EXPECT_TRUE(checker.is_connected(RoundGraphView(Graph(0))));
  EXPECT_TRUE(checker.is_connected(RoundGraphView(Graph(1))));
  EXPECT_FALSE(checker.is_connected(RoundGraphView(Graph(2))));
}

}  // namespace
}  // namespace dyngossip
