// Tests for σ-edge-stability validation (Section 1.3).
#include "graph/stability.hpp"

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "graph/generators.hpp"

namespace dyngossip {
namespace {

TEST(Stability, EverySequenceIsOneStable) {
  Rng rng(1);
  StabilityValidator v(1);
  for (Round r = 1; r <= 30; ++r) {
    v.observe(connected_erdos_renyi(12, 0.2, rng), r);
  }
  EXPECT_EQ(v.violations(), 0u);
}

TEST(Stability, DetectsShortLivedEdge) {
  StabilityValidator v(3);
  Graph a(3), b(3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  v.observe(a, 1);
  v.observe(b, 2);  // {0,1} lived exactly 1 round < 3
  EXPECT_EQ(v.violations(), 1u);
  EXPECT_EQ(v.min_lifetime(), 1u);
}

TEST(Stability, ExactlySigmaRoundsIsLegal) {
  Graph g3a(3), g3b(3);
  g3a.add_edge(0, 1);
  g3a.add_edge(1, 2);
  g3b.add_edge(1, 2);
  g3b.add_edge(0, 2);
  StabilityValidator v3(3);
  v3.observe(g3a, 1);
  v3.observe(g3a, 2);
  v3.observe(g3a, 3);
  v3.observe(g3b, 4);  // {0,1} lived rounds 1..3 = exactly 3
  EXPECT_EQ(v3.violations(), 0u);
  EXPECT_EQ(v3.min_lifetime(), 3u);
}

class ChurnStabilityTest : public ::testing::TestWithParam<Round> {};

TEST_P(ChurnStabilityTest, ChurnAdversaryHonorsSigma) {
  const Round sigma = GetParam();
  ChurnConfig cfg;
  cfg.n = 24;
  cfg.target_edges = 60;
  cfg.churn_per_round = 6;
  cfg.sigma = sigma;
  cfg.seed = 77 + sigma;
  ChurnAdversary adversary(cfg);
  StabilityValidator v(sigma);
  BroadcastRoundView dummy;  // oblivious: the view is ignored
  for (Round r = 1; r <= 200; ++r) {
    dummy.round = r;
    v.observe(adversary.broadcast_round(dummy), r);
  }
  EXPECT_EQ(v.violations(), 0u) << "sigma=" << sigma;
  if (sigma > 1) EXPECT_GE(v.min_lifetime(), sigma);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, ChurnStabilityTest, ::testing::Values(1, 2, 3, 5, 8));

TEST(StabilityDeath, RoundsMustBeConsecutive) {
  StabilityValidator v(2);
  v.observe(path_graph(3), 1);
  EXPECT_DEATH(v.observe(path_graph(3), 3), "DG_CHECK");
}

}  // namespace
}  // namespace dyngossip
