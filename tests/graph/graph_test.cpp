// Tests for the round-graph representation.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

TEST(EdgeKey, CanonicalAndRoundTrip) {
  EXPECT_EQ(edge_key(3, 7), edge_key(7, 3));
  const auto [lo, hi] = edge_endpoints(edge_key(9, 2));
  EXPECT_EQ(lo, 2u);
  EXPECT_EQ(hi, 9u);
}

TEST(Graph, EmptyGraph) {
  Graph g(4);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(Graph, AddRemoveMaintainsAdjacency) {
  Graph g(5);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // duplicate (either orientation)
  EXPECT_TRUE(g.add_edge(1, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_TRUE(g.has_edge(2, 1));

  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, AdjacencySymmetry) {
  Graph g(6);
  g.add_edge(2, 4);
  bool found24 = false, found42 = false;
  for (const NodeId w : g.neighbors(2)) found24 |= (w == 4);
  for (const NodeId w : g.neighbors(4)) found42 |= (w == 2);
  EXPECT_TRUE(found24);
  EXPECT_TRUE(found42);
}

TEST(Graph, SortedNeighbors) {
  Graph g(5);
  g.add_edge(3, 4);
  g.add_edge(3, 0);
  g.add_edge(3, 2);
  const std::vector<NodeId> want{0, 2, 4};
  EXPECT_EQ(g.sorted_neighbors(3), want);
}

TEST(Graph, ConstructFromEdgeList) {
  const std::vector<EdgeKey> edges{edge_key(0, 1), edge_key(1, 2), edge_key(0, 1)};
  Graph g(3, edges);
  EXPECT_EQ(g.num_edges(), 2u);  // duplicate collapsed
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Graph, SortedEdgesDeterministic) {
  Graph g(4);
  g.add_edge(2, 3);
  g.add_edge(0, 1);
  const auto edges = g.sorted_edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], edge_key(0, 1));
  EXPECT_EQ(edges[1], edge_key(2, 3));
}

TEST(GraphDeath, SelfLoopRejected) {
  Graph g(3);
  EXPECT_DEATH(g.add_edge(1, 1), "DG_CHECK");
}

TEST(GraphDeath, OutOfRangeRejected) {
  Graph g(3);
  EXPECT_DEATH(g.add_edge(0, 3), "DG_CHECK");
}

}  // namespace
}  // namespace dyngossip
