// Tests for TC(E) accounting and edge-age tracking (Definition 1.3).
#include "graph/dynamic_tracker.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace dyngossip {
namespace {

TEST(DynamicTracker, FirstRoundCountsAllEdgesAsInsertions) {
  DynamicGraphTracker tracker(4);
  const Graph g = path_graph(4);
  const GraphDiff diff = tracker.advance(g, 1);
  EXPECT_EQ(diff.inserted.size(), 3u);  // E_0 = ∅
  EXPECT_TRUE(diff.removed.empty());
  EXPECT_EQ(tracker.topological_changes(), 3u);
  EXPECT_EQ(tracker.deletions(), 0u);
}

TEST(DynamicTracker, DiffsAcrossRounds) {
  DynamicGraphTracker tracker(4);
  Graph g1(4);
  g1.add_edge(0, 1);
  g1.add_edge(1, 2);
  tracker.advance(g1, 1);

  Graph g2(4);
  g2.add_edge(1, 2);  // kept
  g2.add_edge(2, 3);  // inserted
  const GraphDiff diff = tracker.advance(g2, 2);
  ASSERT_EQ(diff.inserted.size(), 1u);
  EXPECT_EQ(diff.inserted[0], edge_key(2, 3));
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0], edge_key(0, 1));
  EXPECT_EQ(tracker.topological_changes(), 3u);
  EXPECT_EQ(tracker.deletions(), 1u);
}

TEST(DynamicTracker, DeletionsNeverExceedInsertions) {
  Rng rng(17);
  DynamicGraphTracker tracker(16);
  for (Round r = 1; r <= 50; ++r) {
    const Graph g = connected_erdos_renyi(16, 0.15, rng);
    tracker.advance(g, r);
    EXPECT_LE(tracker.deletions(), tracker.topological_changes());
  }
}

TEST(DynamicTracker, InsertionRoundAndReinsertion) {
  DynamicGraphTracker tracker(3);
  Graph with(3), without(3);
  with.add_edge(0, 1);
  with.add_edge(1, 2);
  without.add_edge(1, 2);
  without.add_edge(0, 2);

  tracker.advance(with, 1);
  EXPECT_EQ(tracker.insertion_round(edge_key(0, 1)), 1u);
  tracker.advance(without, 2);
  EXPECT_EQ(tracker.insertion_round(edge_key(0, 1)), kNoRound);  // removed
  tracker.advance(with, 3);
  EXPECT_EQ(tracker.insertion_round(edge_key(0, 1)), 3u);  // re-inserted fresh
  // {0,1} was present exactly 1 round before removal.
  EXPECT_EQ(tracker.min_completed_lifetime(), 1u);
  // TC: r1 inserts 2, r2 inserts {0,2}, r3 re-inserts {0,1}.
  EXPECT_EQ(tracker.topological_changes(), 4u);
}

TEST(DynamicTracker, MinLifetimeTracksShortestInterval) {
  DynamicGraphTracker tracker(3);
  Graph a(3), b(3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  tracker.advance(a, 1);
  EXPECT_EQ(tracker.min_completed_lifetime(), kNoRound);  // nothing removed yet
  tracker.advance(a, 2);
  tracker.advance(b, 3);  // {1,2} lived rounds 1-2 => lifetime 2
  EXPECT_EQ(tracker.min_completed_lifetime(), 2u);
}

TEST(DynamicTrackerDeath, RoundsMustBeConsecutive) {
  DynamicGraphTracker tracker(3);
  tracker.advance(path_graph(3), 1);
  EXPECT_DEATH(tracker.advance(path_graph(3), 3), "DG_CHECK");
}

TEST(DynamicTrackerDeath, NodeCountMustMatch) {
  DynamicGraphTracker tracker(3);
  EXPECT_DEATH(tracker.advance(path_graph(4), 1), "DG_CHECK");
}

TEST(DynamicTracker, ViewAdvanceMatchesGraphAdvance) {
  // The CSR-view overload (engine hot path) and the Graph overload must
  // produce identical diffs and statistics on the same round sequence.
  Rng rng(21);
  std::vector<Graph> rounds;
  rounds.push_back(random_connected_with_edges(16, 30, rng));
  for (int i = 0; i < 6; ++i) {
    Graph g = rounds.back();
    for (int cut = 0; cut < 3; ++cut) {
      const std::vector<EdgeKey> edges = g.sorted_edges();
      const auto [u, v] = edge_endpoints(edges[rng.next_below(edges.size())]);
      g.remove_edge(u, v);
    }
    connect_components(g, rng);
    rounds.push_back(std::move(g));
  }

  DynamicGraphTracker by_graph(16);
  DynamicGraphTracker by_view(16);
  RoundGraphView view;
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    const GraphDiff a = by_graph.advance(rounds[r], static_cast<Round>(r + 1));
    view.rebuild(rounds[r]);
    const GraphDiff& b = by_view.advance(view, static_cast<Round>(r + 1));
    EXPECT_EQ(a.inserted, b.inserted) << "round " << r + 1;
    EXPECT_EQ(a.removed, b.removed) << "round " << r + 1;
  }
  EXPECT_EQ(by_graph.topological_changes(), by_view.topological_changes());
  EXPECT_EQ(by_graph.deletions(), by_view.deletions());
  EXPECT_EQ(by_graph.min_completed_lifetime(), by_view.min_completed_lifetime());
  rounds.back().for_each_edge([&](EdgeKey key) {
    EXPECT_EQ(by_graph.insertion_round(key), by_view.insertion_round(key));
  });
}

}  // namespace
}  // namespace dyngossip
