// Tests for the graph generators.
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"

namespace dyngossip {
namespace {

TEST(Generators, PathGraph) {
  const Graph g = path_graph(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(4), 1u);
}

TEST(Generators, CycleGraph) {
  const Graph g = cycle_graph(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, StarGraph) {
  const Graph g = star_graph(7, 3);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(3), 6u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CompleteGraph) {
  const Graph g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Generators, RandomTreeIsSpanningTree) {
  Rng rng(5);
  for (std::size_t n : {2u, 10u, 100u}) {
    const Graph g = random_tree(n, rng);
    EXPECT_EQ(g.num_edges(), n - 1);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, ConnectedErdosRenyiAlwaysConnected) {
  Rng rng(6);
  for (double p : {0.0, 0.01, 0.1, 0.5, 1.0}) {
    const Graph g = connected_erdos_renyi(40, p, rng);
    EXPECT_TRUE(is_connected(g)) << "p=" << p;
  }
  const Graph dense = connected_erdos_renyi(10, 1.0, rng);
  EXPECT_EQ(dense.num_edges(), 45u);  // p=1 is complete
}

TEST(Generators, RandomConnectedWithEdgesHitsTarget) {
  Rng rng(7);
  for (std::size_t m : {31u, 64u, 200u}) {
    const Graph g = random_connected_with_edges(32, m, rng);
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(g.num_edges(), m);
  }
  // Target above the complete-graph maximum clamps.
  const Graph g = random_connected_with_edges(5, 100, rng);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(Generators, RandomCyclesUnionNearRegularConnected) {
  Rng rng(8);
  for (std::size_t c : {1u, 2u, 4u}) {
    const Graph g = random_cycles_union(50, c, rng);
    EXPECT_TRUE(is_connected(g));
    for (NodeId v = 0; v < 50; ++v) {
      EXPECT_GE(g.degree(v), 2u);
      EXPECT_LE(g.degree(v), 2 * c);
    }
  }
}

TEST(Generators, DeterministicUnderSeed) {
  Rng a(11), b(11);
  const Graph ga = connected_erdos_renyi(30, 0.2, a);
  const Graph gb = connected_erdos_renyi(30, 0.2, b);
  EXPECT_EQ(ga.sorted_edges(), gb.sorted_edges());
}

}  // namespace
}  // namespace dyngossip
