// Tests for the CSR round snapshot (RoundGraphView): agreement with the
// mutable Graph, arc indexing, canonical edge order, and buffer reuse
// across rebuilds.
#include "graph/round_view.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace dyngossip {
namespace {

TEST(RoundGraphView, EmptyGraph) {
  RoundGraphView view{Graph(0)};
  EXPECT_EQ(view.num_nodes(), 0u);
  EXPECT_EQ(view.num_edges(), 0u);
  EXPECT_EQ(view.num_arcs(), 0u);
}

TEST(RoundGraphView, EdgelessGraph) {
  RoundGraphView view{Graph(5)};
  EXPECT_EQ(view.num_nodes(), 5u);
  EXPECT_EQ(view.num_edges(), 0u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(view.degree(v), 0u);
    EXPECT_TRUE(view.neighbors(v).empty());
  }
}

TEST(RoundGraphView, NeighborsAreSortedAndMatchGraph) {
  Rng rng(42);
  const Graph g = random_connected_with_edges(64, 200, rng);
  const RoundGraphView view(g);
  ASSERT_EQ(view.num_nodes(), g.num_nodes());
  ASSERT_EQ(view.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::span<const NodeId> got = view.neighbors(v);
    const std::vector<NodeId> want = g.sorted_neighbors(v);
    ASSERT_EQ(got.size(), want.size()) << "node " << v;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin())) << "node " << v;
    EXPECT_EQ(view.degree(v), g.degree(v));
  }
}

TEST(RoundGraphView, ArcIndexIsDenseAndInvertible) {
  Rng rng(7);
  const Graph g = random_connected_with_edges(32, 96, rng);
  const RoundGraphView view(g);
  std::vector<bool> seen(view.num_arcs(), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::span<const NodeId> neigh = view.neighbors(v);
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      const std::size_t arc = view.arc_index(v, neigh[i]);
      ASSERT_NE(arc, kNoArc);
      EXPECT_EQ(arc, view.arc_begin(v) + i);
      ASSERT_LT(arc, view.num_arcs());
      EXPECT_FALSE(seen[arc]) << "arc index not dense";
      seen[arc] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(RoundGraphView, ArcIndexOfAbsentEdgeIsNoArc) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const RoundGraphView view(g);
  EXPECT_EQ(view.arc_index(0, 2), kNoArc);
  EXPECT_EQ(view.arc_index(1, 3), kNoArc);
  EXPECT_NE(view.arc_index(0, 1), kNoArc);
  EXPECT_NE(view.arc_index(1, 0), kNoArc);
  EXPECT_TRUE(view.has_edge(0, 1));
  EXPECT_TRUE(view.has_edge(3, 2));
  EXPECT_FALSE(view.has_edge(0, 3));
}

TEST(RoundGraphView, ForEachEdgeVisitsCanonicalSortedOrder) {
  Rng rng(11);
  const Graph g = random_connected_with_edges(48, 140, rng);
  const RoundGraphView view(g);
  std::vector<EdgeKey> visited;
  view.for_each_edge([&visited](EdgeKey key) { visited.push_back(key); });
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
  EXPECT_EQ(visited, g.sorted_edges());
}

TEST(RoundGraphView, RebuildTracksMutationsAndReusesBuffers) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  RoundGraphView view(g);
  EXPECT_EQ(view.num_edges(), 2u);

  g.add_edge(3, 4);
  g.remove_edge(0, 1);
  view.rebuild(g);
  EXPECT_EQ(view.num_edges(), 2u);
  EXPECT_EQ(view.arc_index(0, 1), kNoArc);
  EXPECT_NE(view.arc_index(3, 4), kNoArc);

  // Shrinking works too (stale state must not leak through).
  view.rebuild(Graph(3));
  EXPECT_EQ(view.num_nodes(), 3u);
  EXPECT_EQ(view.num_edges(), 0u);
}

TEST(RoundGraphView, StarGraphShape) {
  const Graph g = star_graph(5, 2);
  const RoundGraphView view(g);
  EXPECT_EQ(view.degree(2), 4u);
  const std::span<const NodeId> hub = view.neighbors(2);
  const std::vector<NodeId> want{0, 1, 3, 4};
  EXPECT_TRUE(std::equal(hub.begin(), hub.end(), want.begin()));
  for (const NodeId leaf : want) {
    ASSERT_EQ(view.degree(leaf), 1u);
    EXPECT_EQ(view.neighbors(leaf)[0], 2u);
  }
}

}  // namespace
}  // namespace dyngossip
