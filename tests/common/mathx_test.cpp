// Tests for numeric helpers.
#include "common/mathx.hpp"

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

TEST(Mathx, Log2Clamped) {
  EXPECT_DOUBLE_EQ(log2_clamped(0.5), 1.0);   // clamped
  EXPECT_DOUBLE_EQ(log2_clamped(1.0), 1.0);   // clamped
  EXPECT_DOUBLE_EQ(log2_clamped(2.0), 1.0);   // boundary
  EXPECT_DOUBLE_EQ(log2_clamped(8.0), 3.0);
  EXPECT_DOUBLE_EQ(log2_clamped(1024.0), 10.0);
}

TEST(Mathx, Powd) {
  EXPECT_DOUBLE_EQ(powd(4.0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(powd(2.0, 10.0), 1024.0);
  EXPECT_DOUBLE_EQ(powd(0.0, 2.0), 0.0);
}

TEST(Mathx, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(1, 7), 1u);
  EXPECT_EQ(ceil_div(0, 7), 0u);
}

TEST(Mathx, RoundToU64) {
  EXPECT_EQ(round_to_u64(0.4), 0u);
  EXPECT_EQ(round_to_u64(0.6), 1u);
  EXPECT_EQ(round_to_u64(1e6 + 0.5), 1000001u);
}

TEST(Mathx, Clampd) {
  EXPECT_DOUBLE_EQ(clampd(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(clampd(-1.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(clampd(11.0, 0.0, 10.0), 10.0);
}

}  // namespace
}  // namespace dyngossip
