// Tests for the statistics helpers.
#include "common/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

TEST(RunningStat, KnownSample) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, OrderStatistics) {
  std::vector<double> sample;
  for (int i = 1; i <= 100; ++i) sample.push_back(i);
  const Summary s = Summary::of(sample);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(Summary, EmptySample) {
  const Summary s = Summary::of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.checksum, 0u);
}

TEST(Summary, ChecksumIdentifiesTheSample) {
  const Summary a = Summary::of({1.0, 2.0, 3.0});
  const Summary b = Summary::of({1.0, 2.0, 3.0});
  EXPECT_NE(a.checksum, 0u);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_NE(Summary::of({1.0, 2.0, 3.5}).checksum, a.checksum);
}

TEST(Summary, ChecksumIsOrderSensitive) {
  // A parallel sweep that wrote trial results into the wrong slots has the
  // same sorted statistics but must not summarize identical.
  const Summary forward = Summary::of({1.0, 2.0, 3.0});
  const Summary shuffled = Summary::of({3.0, 1.0, 2.0});
  EXPECT_EQ(forward.mean, shuffled.mean);
  EXPECT_EQ(forward.median, shuffled.median);
  EXPECT_NE(forward.checksum, shuffled.checksum);
}

TEST(Summary, ChecksumSeparatesBitPatternsMeanCannotSee) {
  // -0.0 folds in as a distinct bit pattern even though it compares == 0.0.
  EXPECT_NE(Summary::of({0.0, 1.0}).checksum, Summary::of({-0.0, 1.0}).checksum);
}

TEST(Summary, ChecksumDoesNotCancelPairedSignFlips) {
  // Chaining on SplitMix64's additive internal state (instead of the mixed
  // output) would let an even number of sign-bit flips cancel: XOR of bit
  // 63 commutes with 64-bit addition.  Regression for exactly that bug.
  EXPECT_NE(Summary::of({1.0, 2.0, 3.0}).checksum,
            Summary::of({-1.0, -2.0, 3.0}).checksum);
}

TEST(Summary, ToStringFormat) {
  const Summary s = Summary::of({1.0, 2.0, 3.0});
  const std::string str = s.to_string(1);
  EXPECT_NE(str.find("2.0"), std::string::npos);
  EXPECT_NE(str.find("[1.0, 3.0]"), std::string::npos);
}

TEST(LogLogSlope, RecoversPolynomialExponent) {
  std::vector<double> x, y2, y15;
  for (double v : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    x.push_back(v);
    y2.push_back(v * v);
    y15.push_back(std::pow(v, 1.5) * 7.0);  // constant factors cancel
  }
  EXPECT_NEAR(loglog_slope(x, y2), 2.0, 1e-9);
  EXPECT_NEAR(loglog_slope(x, y15), 1.5, 1e-9);
}

TEST(LogLogSlope, FlatSeries) {
  const std::vector<double> x{1, 2, 4, 8};
  const std::vector<double> y{5, 5, 5, 5};
  EXPECT_NEAR(loglog_slope(x, y), 0.0, 1e-9);
}

}  // namespace
}  // namespace dyngossip
