// Tests for DynamicBitset, including randomized differential tests against
// std::set as the reference implementation.
#include "common/dynamic_bitset.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dyngossip {
namespace {

TEST(DynamicBitset, EmptyDefault) {
  DynamicBitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_TRUE(b.all());  // vacuously
}

TEST(DynamicBitset, SetTestResetAndCountCaching) {
  DynamicBitset b(100);
  EXPECT_TRUE(b.none());
  EXPECT_TRUE(b.set(5));
  EXPECT_FALSE(b.set(5));  // second set reports not-fresh
  EXPECT_TRUE(b.test(5));
  EXPECT_EQ(b.count(), 1u);
  EXPECT_TRUE(b.set(99));
  EXPECT_EQ(b.count(), 2u);
  EXPECT_TRUE(b.reset(5));
  EXPECT_FALSE(b.reset(5));
  EXPECT_EQ(b.count(), 1u);
  EXPECT_FALSE(b.test(5));
}

TEST(DynamicBitset, InitiallySetConstructorTrims) {
  for (std::size_t size : {1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    DynamicBitset b(size, /*initially_set=*/true);
    EXPECT_EQ(b.count(), size) << size;
    EXPECT_TRUE(b.all()) << size;
    EXPECT_EQ(b.find_first_unset(), size) << size;
  }
}

TEST(DynamicBitset, SetAllResetAll) {
  DynamicBitset b(70);
  b.set_all();
  EXPECT_TRUE(b.all());
  EXPECT_EQ(b.count(), 70u);
  b.reset_all();
  EXPECT_TRUE(b.none());
}

TEST(DynamicBitset, ResizeGrowsWithZeros) {
  DynamicBitset b(10);
  b.set(3);
  b.resize(200);
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_TRUE(b.test(3));
  EXPECT_FALSE(b.test(150));
  b.resize(50);  // shrink requests are no-ops
  EXPECT_EQ(b.size(), 200u);
}

TEST(DynamicBitset, FindFirstUnset) {
  DynamicBitset b(130);
  EXPECT_EQ(b.find_first_unset(), 0u);
  for (std::size_t i = 0; i < 130; ++i) {
    EXPECT_EQ(b.find_first_unset(), i);
    b.set(i);
  }
  EXPECT_EQ(b.find_first_unset(), 130u);
}

TEST(DynamicBitset, FindNextSet) {
  DynamicBitset b(200);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_next_set(0), 0u);
  EXPECT_EQ(b.find_next_set(1), 63u);
  EXPECT_EQ(b.find_next_set(64), 64u);
  EXPECT_EQ(b.find_next_set(65), 199u);
  EXPECT_EQ(b.find_next_set(200), 200u);
}

TEST(DynamicBitset, Positions) {
  DynamicBitset b(100);
  b.set(1);
  b.set(64);
  b.set(99);
  const std::vector<std::size_t> set_want{1, 64, 99};
  EXPECT_EQ(b.set_positions(), set_want);
  const auto unset = b.unset_positions();
  EXPECT_EQ(unset.size(), 97u);
  EXPECT_EQ(unset.front(), 0u);
  EXPECT_EQ(unset.back(), 98u);
}

TEST(DynamicBitset, Equality) {
  DynamicBitset a(64), b(64), c(65);
  a.set(10);
  b.set(10);
  EXPECT_TRUE(a == b);
  b.set(11);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);  // different universes
}

class BitsetAlgebraTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetAlgebraTest, DifferentialAgainstStdSet) {
  const std::size_t universe = GetParam();
  Rng rng(1234 + universe);
  DynamicBitset a(universe), b(universe);
  std::set<std::size_t> ra, rb;
  for (std::size_t i = 0; i < universe; ++i) {
    if (rng.bernoulli(0.35)) {
      a.set(i);
      ra.insert(i);
    }
    if (rng.bernoulli(0.35)) {
      b.set(i);
      rb.insert(i);
    }
  }

  // Counting queries.
  std::set<std::size_t> runion = ra;
  runion.insert(rb.begin(), rb.end());
  std::set<std::size_t> rinter;
  for (const auto x : ra) {
    if (rb.count(x)) rinter.insert(x);
  }
  EXPECT_EQ(a.union_count(b), runion.size());
  EXPECT_EQ(a.intersect_count(b), rinter.size());
  EXPECT_EQ(a.contains_all(b),
            std::includes(ra.begin(), ra.end(), rb.begin(), rb.end()));

  // In-place union.
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), runion.size());
  for (const auto x : runion) EXPECT_TRUE(u.test(x));

  // In-place intersection.
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), rinter.size());
  for (const auto x : rinter) EXPECT_TRUE(i.test(x));

  // Difference.
  DynamicBitset d = a;
  d.subtract(b);
  EXPECT_EQ(d.count(), ra.size() - rinter.size());
  for (const auto x : ra) EXPECT_EQ(d.test(x), rb.count(x) == 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetAlgebraTest,
                         ::testing::Values(1, 63, 64, 65, 130, 512, 1000));

TEST(DynamicBitset, ContainsAllSelfAndEmpty) {
  DynamicBitset a(50), e(50);
  a.set(7);
  EXPECT_TRUE(a.contains_all(a));
  EXPECT_TRUE(a.contains_all(e));
  EXPECT_FALSE(e.contains_all(a));
}

std::vector<std::size_t> collect_set(const DynamicBitset& b) {
  std::vector<std::size_t> out;
  for (const std::size_t pos : b.set_bits()) out.push_back(pos);
  return out;
}

std::vector<std::size_t> collect_unset(const DynamicBitset& b) {
  std::vector<std::size_t> out;
  for (const std::size_t pos : b.unset_bits()) out.push_back(pos);
  return out;
}

TEST(DynamicBitsetCursor, EmptyUniverseYieldsNothing) {
  DynamicBitset b;
  EXPECT_TRUE(collect_set(b).empty());
  EXPECT_TRUE(collect_unset(b).empty());
}

class BitsetCursorEdgeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetCursorEdgeTest, CursorMatchesPositionsOracle) {
  const std::size_t universe = GetParam();
  Rng rng(99 + universe);
  DynamicBitset b(universe);
  for (std::size_t i = 0; i < universe; ++i) {
    if (rng.bernoulli(0.4)) b.set(i);
  }
  EXPECT_EQ(collect_set(b), b.set_positions());
  EXPECT_EQ(collect_unset(b), b.unset_positions());
}

TEST_P(BitsetCursorEdgeTest, FullAndEmptySets) {
  const std::size_t universe = GetParam();
  DynamicBitset empty(universe);
  EXPECT_TRUE(collect_set(empty).empty());
  EXPECT_EQ(collect_unset(empty).size(), universe);

  DynamicBitset full(universe, /*initially_set=*/true);
  EXPECT_EQ(collect_set(full).size(), universe);
  // The unset cursor must not walk into the trimmed tail of the last word.
  EXPECT_TRUE(collect_unset(full).empty());
}

// The ISSUE-named universe sizes: 0 and the word-boundary straddles.
INSTANTIATE_TEST_SUITE_P(Sizes, BitsetCursorEdgeTest,
                         ::testing::Values(0, 1, 63, 64, 65, 128, 129, 1000));

TEST(DynamicBitsetCursor, WordBoundaryPositions) {
  DynamicBitset b(130);
  for (const std::size_t pos : {std::size_t{0}, std::size_t{63}, std::size_t{64},
                                std::size_t{127}, std::size_t{128},
                                std::size_t{129}}) {
    b.set(pos);
  }
  const std::vector<std::size_t> want{0, 63, 64, 127, 128, 129};
  EXPECT_EQ(collect_set(b), want);
}

TEST(DynamicBitsetCursor, SparseScanSkipsEmptyWords) {
  DynamicBitset b(64 * 64);
  b.set(5);
  b.set(63 * 64 + 1);
  const std::vector<std::size_t> want{5, 63 * 64 + 1};
  EXPECT_EQ(collect_set(b), want);
}

TEST(DynamicBitset, FindNextSetAcrossManyWordBoundaries) {
  DynamicBitset b(4 * 64 + 3);
  b.set(64);
  b.set(191);
  b.set(4 * 64 + 2);  // last valid position
  EXPECT_EQ(b.find_next_set(0), 64u);
  EXPECT_EQ(b.find_next_set(65), 191u);
  EXPECT_EQ(b.find_next_set(192), 4u * 64 + 2);
  EXPECT_EQ(b.find_next_set(4 * 64 + 3), b.size());
  b.reset(64);
  EXPECT_EQ(b.find_next_set(0), 191u);
}

}  // namespace
}  // namespace dyngossip
