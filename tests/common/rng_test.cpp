// Tests for the deterministic RNG substrate.
#include "common/rng.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitMix64IsDeterministic) {
  std::uint64_t s1 = 7, s2 = 7;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  const double expect = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expect, 0.05 * expect);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all seven values hit
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 20'000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20'000, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliEmpiricalRate) {
  Rng rng(9);
  int hits = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(10);
  std::vector<int> v{1, 2, 2, 3, 4, 5, 5, 5};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(orig.begin(), orig.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(11);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // probability 1/50! of spurious failure
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(12);
  for (std::uint64_t universe : {10ull, 100ull, 1000ull}) {
    for (std::uint64_t count : {std::uint64_t{0}, std::uint64_t{1}, universe / 2,
                                universe}) {
      const auto sample = rng.sample_without_replacement(universe, count);
      EXPECT_EQ(sample.size(), count);
      std::set<std::uint64_t> uniq(sample.begin(), sample.end());
      EXPECT_EQ(uniq.size(), count);
      for (const auto x : sample) EXPECT_LT(x, universe);
    }
  }
}

TEST(Rng, SampleFullUniverseIsPermutation) {
  Rng rng(13);
  const auto sample = rng.sample_without_replacement(64, 64);
  std::set<std::uint64_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 64u);
  EXPECT_EQ(*uniq.begin(), 0u);
  EXPECT_EQ(*uniq.rbegin(), 63u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(14);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (c1.next() == c2.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, WorksWithStdDistributions) {
  Rng rng(15);
  // UniformRandomBitGenerator interface sanity.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ull);
  std::uint64_t x = rng();
  (void)x;
}

}  // namespace
}  // namespace dyngossip
