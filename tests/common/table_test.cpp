// Tests for the table renderer.
#include "common/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

TEST(TablePrinter, AlignedOutputContainsCellsAndRule) {
  TablePrinter t({"n", "messages"});
  t.add_row({"16", "1234"});
  t.add_row({"128", "99"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| n "), std::string::npos);
  EXPECT_NE(out.find("messages"), std::string::npos);
  EXPECT_NE(out.find("1234"), std::string::npos);
  EXPECT_NE(out.find("|----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinter, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(TablePrinter, BigAddsSeparators) {
  EXPECT_EQ(TablePrinter::big(0), "0");
  EXPECT_EQ(TablePrinter::big(999), "999");
  EXPECT_EQ(TablePrinter::big(1000), "1_000");
  EXPECT_EQ(TablePrinter::big(1234567), "1_234_567");
  EXPECT_EQ(TablePrinter::big(12345678901ull), "12_345_678_901");
}

TEST(TablePrinterDeath, RowArityMismatchAborts) {
  TablePrinter t({"only"});
  EXPECT_DEATH(t.add_row({"a", "b"}), "DG_CHECK");
}

}  // namespace
}  // namespace dyngossip
