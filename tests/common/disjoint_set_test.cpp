// Tests for the union-find substrate.
#include "common/disjoint_set.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dyngossip {
namespace {

TEST(DisjointSet, StartsAsSingletons) {
  DisjointSet dsu(5);
  EXPECT_EQ(dsu.size(), 5u);
  EXPECT_EQ(dsu.component_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(dsu.find(i), i);
    EXPECT_EQ(dsu.component_size(i), 1u);
  }
}

TEST(DisjointSet, UniteMergesAndCounts) {
  DisjointSet dsu(4);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_EQ(dsu.component_count(), 3u);
  EXPECT_FALSE(dsu.unite(1, 0));  // already merged
  EXPECT_EQ(dsu.component_count(), 3u);
  EXPECT_TRUE(dsu.unite(2, 3));
  EXPECT_TRUE(dsu.unite(0, 3));
  EXPECT_EQ(dsu.component_count(), 1u);
  EXPECT_EQ(dsu.component_size(2), 4u);
  EXPECT_TRUE(dsu.connected(1, 2));
}

TEST(DisjointSet, ChainUnion) {
  constexpr std::size_t n = 10'000;
  DisjointSet dsu(n);
  for (std::size_t i = 1; i < n; ++i) dsu.unite(i - 1, i);
  EXPECT_EQ(dsu.component_count(), 1u);
  EXPECT_TRUE(dsu.connected(0, n - 1));
  EXPECT_EQ(dsu.component_size(0), n);
}

TEST(DisjointSet, RepresentativesOnePerComponent) {
  DisjointSet dsu(6);
  dsu.unite(0, 1);
  dsu.unite(2, 3);
  const auto reps = dsu.representatives();
  EXPECT_EQ(reps.size(), 4u);  // {0,1},{2,3},{4},{5}
  // Representatives are roots, hence pairwise disconnected... and everything
  // connects to exactly one representative.
  for (std::size_t i = 0; i < reps.size(); ++i) {
    for (std::size_t j = i + 1; j < reps.size(); ++j) {
      EXPECT_FALSE(dsu.connected(reps[i], reps[j]));
    }
  }
}

TEST(DisjointSet, ResetRestoresSingletons) {
  DisjointSet dsu(3);
  dsu.unite(0, 1);
  dsu.reset(5);
  EXPECT_EQ(dsu.size(), 5u);
  EXPECT_EQ(dsu.component_count(), 5u);
  EXPECT_FALSE(dsu.connected(0, 1));
}

TEST(DisjointSet, RandomizedTransitivity) {
  Rng rng(99);
  DisjointSet dsu(200);
  for (int i = 0; i < 300; ++i) {
    dsu.unite(rng.next_below(200), rng.next_below(200));
  }
  // connected() must be transitive: representative equality is an
  // equivalence relation.
  for (int i = 0; i < 200; ++i) {
    const std::size_t a = rng.next_below(200);
    const std::size_t b = rng.next_below(200);
    const std::size_t c = rng.next_below(200);
    if (dsu.connected(a, b) && dsu.connected(b, c)) {
      EXPECT_TRUE(dsu.connected(a, c));
    }
  }
}

}  // namespace
}  // namespace dyngossip
