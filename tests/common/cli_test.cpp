// Tests for the CLI flag parser.
#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

CliArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(Cli, EqualsForm) {
  const CliArgs args = parse({"prog", "--n=64", "--rate=0.5", "--name=abc"});
  EXPECT_EQ(args.get_int("n", 0), 64);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0), 0.5);
  EXPECT_EQ(args.get_string("name", ""), "abc");
}

TEST(Cli, SpaceForm) {
  const CliArgs args = parse({"prog", "--n", "128"});
  EXPECT_EQ(args.get_int("n", 0), 128);
}

TEST(Cli, BareFlagIsBooleanTrue) {
  const CliArgs args = parse({"prog", "--quick"});
  EXPECT_TRUE(args.get_bool("quick", false));
  EXPECT_TRUE(args.has("quick"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, BooleanFalseForms) {
  const CliArgs a = parse({"prog", "--x=false"});
  const CliArgs b = parse({"prog", "--x=0"});
  EXPECT_FALSE(a.get_bool("x", true));
  EXPECT_FALSE(b.get_bool("x", true));
}

TEST(Cli, DefaultsWhenAbsent) {
  const CliArgs args = parse({"prog"});
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.25), 0.25);
  EXPECT_EQ(args.get_string("s", "dflt"), "dflt");
  EXPECT_TRUE(args.get_bool("b", true));
}

TEST(Cli, ProgramName) {
  const CliArgs args = parse({"./dyngossip"});
  EXPECT_EQ(args.program(), "./dyngossip");
}

TEST(CliDeath, UnknownFlagRejectedByAllowList) {
  const CliArgs args = parse({"prog", "--typo=1"});
  EXPECT_EXIT(args.allow_only({"n", "k"}, "usage"), ::testing::ExitedWithCode(2),
              "unknown flag --typo");
}

TEST(CliDeath, MalformedIntegerAborts) {
  const CliArgs args = parse({"prog", "--n=abc"});
  EXPECT_EXIT(args.get_int("n", 0), ::testing::ExitedWithCode(2),
              "expects an integer");
}

TEST(CliDeath, NonFlagTokenAborts) {
  EXPECT_EXIT(parse({"prog", "oops"}), ::testing::ExitedWithCode(2),
              "expected --flag");
}

}  // namespace
}  // namespace dyngossip
