// Tests for the hybrid sparse/dense KnowledgeSet: representation
// transitions across the promote/demote thresholds, and a randomized
// differential against DynamicBitset as the reference implementation
// (membership, counts, cursors, whole-set algebra).
#include "common/knowledge_set.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/dynamic_bitset.hpp"
#include "common/rng.hpp"

namespace dyngossip {
namespace {

TEST(KnowledgeSet, EmptyDefault) {
  KnowledgeSet s;
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.none());
  EXPECT_TRUE(s.all());  // vacuously
  EXPECT_FALSE(s.is_dense());
}

TEST(KnowledgeSet, StartsSparseAndPromotesAtThreshold) {
  const std::size_t universe = 4096;
  const std::size_t threshold = KnowledgeSet::promote_threshold(universe);
  KnowledgeSet s(universe);
  for (std::size_t i = 0; i < threshold - 1; ++i) {
    EXPECT_TRUE(s.set(3 * i));
    EXPECT_FALSE(s.is_dense()) << "promoted early at " << i;
  }
  EXPECT_TRUE(s.set(3 * threshold));
  EXPECT_TRUE(s.is_dense());
  EXPECT_EQ(s.count(), threshold);
  for (std::size_t i = 0; i < threshold - 1; ++i) EXPECT_TRUE(s.test(3 * i));
}

TEST(KnowledgeSet, InitiallySetIsDenseAndFull) {
  for (const std::size_t universe : {1u, 63u, 64u, 65u, 1000u}) {
    KnowledgeSet s(universe, /*initially_set=*/true);
    EXPECT_TRUE(s.all()) << universe;
    EXPECT_EQ(s.count(), universe) << universe;
    EXPECT_EQ(s.find_first_unset(), universe) << universe;
  }
}

TEST(KnowledgeSet, DemotionHysteresisRoundTrip) {
  const std::size_t universe = 4096;
  const std::size_t promote = KnowledgeSet::promote_threshold(universe);
  const std::size_t demote = KnowledgeSet::demote_threshold(universe);
  ASSERT_LT(demote, promote);  // hysteresis band exists

  KnowledgeSet s(universe);
  for (std::size_t i = 0; i < promote; ++i) s.set(i);
  ASSERT_TRUE(s.is_dense());

  // Erasing back below the promote threshold must NOT demote (hysteresis) …
  while (s.count() >= demote + 1) s.reset(s.count() - 1);
  // … but dropping under the demote threshold must.
  EXPECT_TRUE(s.reset(s.count() - 1));
  EXPECT_FALSE(s.is_dense());

  // Members survive both transitions.
  for (std::size_t i = 0; i < s.count(); ++i) EXPECT_TRUE(s.test(i));
  EXPECT_FALSE(s.test(demote + 5));
}

TEST(KnowledgeSet, EqualityIsRepresentationIndependent) {
  const std::size_t universe = 1024;
  const std::size_t promote = KnowledgeSet::promote_threshold(universe);
  // a: driven dense then emptied into the hysteresis band.  b: built sparse.
  KnowledgeSet a(universe), b(universe);
  for (std::size_t i = 0; i < promote; ++i) a.set(i);
  ASSERT_TRUE(a.is_dense());
  for (std::size_t i = 4; i < promote; ++i) a.reset(i);
  for (std::size_t i = 0; i < 4; ++i) b.set(i);
  ASSERT_FALSE(b.is_dense());
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(b == a);
  b.set(7);
  EXPECT_FALSE(a == b);
}

TEST(KnowledgeSet, SetAllAndResetAllFlipRepresentation) {
  KnowledgeSet s(500);
  s.set(3);
  s.set_all();
  EXPECT_TRUE(s.is_dense());
  EXPECT_TRUE(s.all());
  s.reset_all();
  EXPECT_FALSE(s.is_dense());
  EXPECT_TRUE(s.none());
}

TEST(KnowledgeSet, ResizeGrowsWithAbsentPositions) {
  KnowledgeSet s(10);
  s.set(3);
  s.resize(100000);
  EXPECT_EQ(s.size(), 100000u);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.test(3));
  EXPECT_FALSE(s.test(99999));
  s.resize(50);  // shrink requests are no-ops
  EXPECT_EQ(s.size(), 100000u);
}

// ---------------------------------------------------------------------------
// Randomized differential: every operation mirrored against DynamicBitset.
// Universe sizes straddle the promote threshold so the walk crosses
// representations many times.
// ---------------------------------------------------------------------------

void expect_equivalent(const KnowledgeSet& s, const DynamicBitset& ref,
                       Rng& rng) {
  ASSERT_EQ(s.size(), ref.size());
  ASSERT_EQ(s.count(), ref.count());
  EXPECT_EQ(s.none(), ref.none());
  EXPECT_EQ(s.all(), ref.all());
  EXPECT_EQ(s.find_first_unset(), ref.find_first_unset());

  // Spot-check membership and find_next_set from random anchors.
  for (int probe = 0; probe < 16; ++probe) {
    const std::size_t pos = rng.next_below(ref.size());
    EXPECT_EQ(s.test(pos), ref.test(pos)) << pos;
    EXPECT_EQ(s.find_next_set(pos), ref.find_next_set(pos)) << pos;
  }

  // Cursor walks must visit exactly the reference positions, in order.
  std::vector<std::size_t> got;
  for (const std::size_t pos : s.set_bits()) got.push_back(pos);
  EXPECT_EQ(got, ref.set_positions());
  got.clear();
  for (const std::size_t pos : s.unset_bits()) got.push_back(pos);
  EXPECT_EQ(got, ref.unset_positions());
  EXPECT_EQ(s.set_positions(), ref.set_positions());
  EXPECT_EQ(s.unset_positions(), ref.unset_positions());
}

TEST(KnowledgeSet, RandomizedDifferentialSingleElement) {
  for (const std::size_t universe : {37u, 256u, 1000u, 5000u}) {
    Rng rng(1234 + universe);
    KnowledgeSet s(universe);
    DynamicBitset ref(universe);
    for (int step = 0; step < 2000; ++step) {
      const std::size_t pos = rng.next_below(universe);
      // Biased towards insertion so the walk reaches dense territory, with
      // occasional clears to force demotion paths.
      if (rng.bernoulli(0.7)) {
        EXPECT_EQ(s.set(pos), ref.set(pos)) << pos;
      } else if (rng.bernoulli(0.99)) {
        EXPECT_EQ(s.reset(pos), ref.reset(pos)) << pos;
      } else {
        s.reset_all();
        ref.reset_all();
      }
      if (step % 97 == 0) expect_equivalent(s, ref, rng);
    }
    expect_equivalent(s, ref, rng);
  }
}

std::pair<KnowledgeSet, DynamicBitset> random_pair(std::size_t universe,
                                                   std::size_t members,
                                                   Rng& rng) {
  KnowledgeSet s(universe);
  DynamicBitset ref(universe);
  for (std::size_t i = 0; i < members; ++i) {
    const std::size_t pos = rng.next_below(universe);
    s.set(pos);
    ref.set(pos);
  }
  return {std::move(s), std::move(ref)};
}

TEST(KnowledgeSet, RandomizedDifferentialWholeSetOps) {
  const std::size_t universe = 2048;
  Rng rng(99);
  // Sweep member counts so each operand lands sparse or dense at random —
  // all four representation pairings get exercised, including mixed.
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t ma = rng.next_below(universe / 4);
    const std::size_t mb = rng.next_below(universe / 4);
    auto [a, ra] = random_pair(universe, ma, rng);
    auto [b, rb] = random_pair(universe, mb, rng);

    EXPECT_EQ(a.union_count(b), ra.union_count(rb));
    EXPECT_EQ(a.intersect_count(b), ra.intersect_count(rb));
    EXPECT_EQ(a.contains_all(b), ra.contains_all(rb));
    EXPECT_EQ(a == b, ra == rb);

    KnowledgeSet u = a;
    DynamicBitset ru = ra;
    u |= b;
    ru |= rb;
    expect_equivalent(u, ru, rng);

    KnowledgeSet x = a;
    DynamicBitset rx = ra;
    x &= b;
    rx &= rb;
    expect_equivalent(x, rx, rng);

    KnowledgeSet d = a;
    DynamicBitset rd = ra;
    d.subtract(b);
    rd.subtract(rb);
    expect_equivalent(d, rd, rng);

    // A set always contains its own intersection and never gains from
    // subtracting a disjoint result — cheap closure sanity on the outputs.
    EXPECT_TRUE(a.contains_all(x));
    EXPECT_TRUE(u.contains_all(a));
    EXPECT_TRUE(u.contains_all(b));
    EXPECT_EQ(d.intersect_count(x) + d.intersect_count(b), d.intersect_count(x) + 0u);
  }
}

TEST(KnowledgeSet, AppendFastPathMatchesRandomOrder) {
  // Ascending insertion (the engines' common pattern) must produce the same
  // set as shuffled insertion of the same positions.
  const std::size_t universe = 10000;
  Rng rng(7);
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < 300; ++i) positions.push_back(rng.next_below(universe));

  KnowledgeSet ascending(universe);
  std::vector<std::size_t> sorted = positions;
  std::sort(sorted.begin(), sorted.end());
  for (const std::size_t pos : sorted) ascending.set(pos);

  KnowledgeSet shuffled(universe);
  for (const std::size_t pos : positions) shuffled.set(pos);

  EXPECT_TRUE(ascending == shuffled);
}

}  // namespace
}  // namespace dyngossip
