// Tests for run termination classification (RunStatus) and the residual
// coverage metric: starved runs report round_cap with partial coverage,
// total loss stalls instead of spinning to the cap, a full crash without
// recovery is terminal, and the wall-clock watchdog classifies timeouts.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "core/flooding.hpp"
#include "engine/broadcast_engine.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_spec.hpp"
#include "metrics/accounting.hpp"

namespace dyngossip {
namespace {

ChurnAdversary make_adversary(std::size_t n) {
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 4 * n;
  cc.churn_per_round = n / 8;
  cc.sigma = 3;
  cc.seed = 17;
  return ChurnAdversary(cc);
}

/// Phase-flooding run on a churn schedule, tokens spread round-robin.
RunMetrics run_flooding(std::size_t n, std::size_t k, Round cap,
                        FaultPlan* faults, double timeout_seconds = 0.0) {
  ChurnAdversary adversary = make_adversary(n);
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k));
  for (std::size_t t = 0; t < k; ++t) init[t % n].set(t);
  BroadcastEngineOptions opts;
  opts.faults = faults;
  opts.run_timeout_seconds = timeout_seconds;
  BroadcastEngine engine(PhaseFloodingNode::make_all(n, k, init), adversary,
                         init, k, opts);
  return engine.run(cap);
}

TEST(RunStatus, CompletedRunReportsFullCoverage) {
  const RunMetrics m = run_flooding(24, 24, 6'000, nullptr);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.status, RunStatus::kCompleted);
  EXPECT_DOUBLE_EQ(m.coverage, 1.0);
}

TEST(RunStatus, StarvedRunHitsRoundCapWithResidualCoverage) {
  // Five rounds cannot finish a 24-token spread: the run must classify as
  // round_cap and report the partial coverage it reached (the initial
  // round-robin spread alone is 1/n of the universe, so strictly > 0).
  const RunMetrics m = run_flooding(24, 24, 5, nullptr);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.status, RunStatus::kRoundCap);
  EXPECT_EQ(m.rounds, 5u);
  EXPECT_GT(m.coverage, 0.0);
  EXPECT_LT(m.coverage, 1.0);
}

TEST(RunStatus, TotalLossStallsInsteadOfSpinningToTheCap) {
  // drop=1 delivers nothing, ever.  The fault-active stall window
  // (max(256, 2n) quiet rounds) must end the run as `stalled` long before
  // the 6000-round cap — terminating, not spinning.
  FaultSpec spec;
  spec.drop = 1.0;
  FaultPlan plan(spec, 24, 9);
  const RunMetrics m = run_flooding(24, 24, 6'000, &plan);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.status, RunStatus::kStalled);
  EXPECT_LT(m.rounds, 1'000u);
  EXPECT_LT(m.coverage, 1.0);
}

TEST(RunStatus, AllDownWithoutRecoveryIsTerminal) {
  FaultSpec spec;
  spec.crash = 1.0;  // recover stays 0: the outage is permanent
  FaultPlan plan(spec, 24, 9);
  const RunMetrics m = run_flooding(24, 24, 6'000, &plan);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.status, RunStatus::kAllDown);
  EXPECT_LT(m.rounds, 16u);  // detected as soon as the mask empties
}

TEST(RunStatus, WatchdogClassifiesOverBudgetTrialsAsTimeout) {
  // An unmeetable budget on a run that cannot complete (drop=1): the
  // watchdog (checked every 32 rounds) must fire before the stall window
  // would — timeout outranks stalled in the classification.
  FaultSpec spec;
  spec.drop = 1.0;
  FaultPlan plan(spec, 24, 9);
  const RunMetrics m = run_flooding(24, 24, 6'000, &plan, 1e-9);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.status, RunStatus::kTimeout);
  EXPECT_LT(m.rounds, 256u);  // fired before the quiet window elapsed
}

TEST(RunStatus, StatusNamesAreStable) {
  // JSON/CSV consumers key on these strings; renames are format breaks.
  EXPECT_STREQ(run_status_name(RunStatus::kCompleted), "completed");
  EXPECT_STREQ(run_status_name(RunStatus::kRoundCap), "round_cap");
  EXPECT_STREQ(run_status_name(RunStatus::kStalled), "stalled");
  EXPECT_STREQ(run_status_name(RunStatus::kAllDown), "all_down");
  EXPECT_STREQ(run_status_name(RunStatus::kTimeout), "timeout");
}

}  // namespace
}  // namespace dyngossip
