// Bit-identity of the sharded engine paths: a run with intra-round
// sharding across an N-worker pool must reproduce the serial run exactly —
// same payload checksum, same per-node knowledge, same learning log —
// at every thread count.  min_parallel_nodes is pinned to 1 so sharding
// engages even at test-sized n.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "core/flooding.hpp"
#include "core/single_source.hpp"
#include "engine/broadcast_engine.hpp"
#include "engine/unicast_engine.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_spec.hpp"
#include "sim/runner/thread_pool.hpp"
#include "trace/run_payload.hpp"

namespace dyngossip {
namespace {

/// Everything a run can differ in: the payload checksum folds n, k,
/// completion, rounds, and every message counter; knowledge and the
/// learning log cover the engine state the checksum does not reach.
struct Snapshot {
  std::uint64_t checksum = 0;
  std::vector<std::vector<std::size_t>> knowledge;
  std::uint64_t learnings = 0;
  Round last_learning_round = 0;
};

void expect_identical(const Snapshot& serial, const Snapshot& sharded,
                      const char* what) {
  EXPECT_EQ(serial.checksum, sharded.checksum) << what;
  EXPECT_EQ(serial.knowledge, sharded.knowledge) << what;
  EXPECT_EQ(serial.learnings, sharded.learnings) << what;
  EXPECT_EQ(serial.last_learning_round, sharded.last_learning_round) << what;
}

ChurnConfig churn_config(std::size_t n) {
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 4 * n;
  cc.churn_per_round = n / 8;
  cc.sigma = 3;
  cc.seed = 42;
  return cc;
}

/// A spec that exercises every fault path at once: loss, duplication, and
/// crash/recovery.  Decisions are position-keyed off the plan seed, so the
/// same spec + seed must behave identically at every thread count.
FaultSpec identity_fault_spec() {
  FaultSpec spec;
  spec.drop = 0.1;
  spec.dup = 0.05;
  spec.crash = 0.01;
  spec.recover = 0.2;
  return spec;
}

Snapshot run_unicast(std::size_t n, std::uint32_t k, ThreadPool* pool,
                     const FaultSpec* fault = nullptr) {
  ChurnAdversary adversary(churn_config(n));
  // The plan is per-run state (liveness history) — never shared across runs.
  FaultPlan plan(fault != nullptr ? *fault : FaultSpec{}, n, 123);
  SingleSourceConfig cfg{n, k, 0};
  UnicastEngineOptions opts;
  opts.pool = pool;
  opts.min_parallel_nodes = 1;  // shard even at test-sized n
  if (fault != nullptr) opts.faults = &plan;
  UnicastEngine engine(SingleSourceNode::make_all(cfg), adversary,
                       SingleSourceNode::initial_knowledge(cfg), k, opts);
  RunResult res;
  res.metrics = engine.run(static_cast<Round>(200 * n));
  res.rounds = res.metrics.rounds;
  res.completed = res.metrics.completed;

  Snapshot snap;
  snap.checksum = run_payload_checksum(n, k, res);
  for (NodeId v = 0; v < n; ++v) {
    snap.knowledge.push_back(engine.knowledge_of(v).set_positions());
  }
  snap.learnings = engine.learning_log().count();
  snap.last_learning_round = engine.learning_log().last_learning_round();
  return snap;
}

Snapshot run_broadcast(std::size_t n, std::size_t k, ThreadPool* pool,
                       const FaultSpec* fault = nullptr) {
  ChurnAdversary adversary(churn_config(n));
  FaultPlan plan(fault != nullptr ? *fault : FaultSpec{}, n, 123);
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k));
  for (std::size_t t = 0; t < k; ++t) init[t % n].set(t);
  BroadcastEngineOptions opts;
  opts.pool = pool;
  opts.min_parallel_nodes = 1;
  if (fault != nullptr) opts.faults = &plan;
  BroadcastEngine engine(PhaseFloodingNode::make_all(n, k, init), adversary,
                         init, k, opts);
  RunResult res;
  res.metrics = engine.run(static_cast<Round>(200 * n));
  res.rounds = res.metrics.rounds;
  res.completed = res.metrics.completed;

  Snapshot snap;
  snap.checksum = run_payload_checksum(n, k, res);
  for (NodeId v = 0; v < n; ++v) {
    snap.knowledge.push_back(engine.knowledge_of(v).set_positions());
  }
  snap.learnings = engine.learning_log().count();
  snap.last_learning_round = engine.learning_log().last_learning_round();
  return snap;
}

TEST(ShardedIdentity, UnicastMatchesSerialAtEveryThreadCount) {
  const std::size_t n = 96;
  const std::uint32_t k = 64;
  const Snapshot serial = run_unicast(n, k, nullptr);
  ASSERT_FALSE(serial.knowledge.empty());

  ThreadPool pool2(2);
  expect_identical(serial, run_unicast(n, k, &pool2), "2 threads");
  ThreadPool pool8(8);
  expect_identical(serial, run_unicast(n, k, &pool8), "8 threads");
}

TEST(ShardedIdentity, BroadcastMatchesSerialAtEveryThreadCount) {
  const std::size_t n = 96;
  const std::size_t k = 64;
  const Snapshot serial = run_broadcast(n, k, nullptr);
  ASSERT_FALSE(serial.knowledge.empty());

  ThreadPool pool2(2);
  expect_identical(serial, run_broadcast(n, k, &pool2), "2 threads");
  ThreadPool pool8(8);
  expect_identical(serial, run_broadcast(n, k, &pool8), "8 threads");
}

TEST(ShardedIdentity, FaultedUnicastMatchesSerialAtEveryThreadCount) {
  // Fault decisions are position-keyed hashes of (round, arc/node, seq),
  // never of evaluation order — so a faulted run must stay bit-identical
  // whichever shard (or thread count) evaluates each delivery.
  const std::size_t n = 96;
  const std::uint32_t k = 64;
  const FaultSpec fault = identity_fault_spec();
  const Snapshot serial = run_unicast(n, k, nullptr, &fault);
  ASSERT_FALSE(serial.knowledge.empty());
  // The spec must actually perturb the run, or this test gates nothing.
  EXPECT_NE(serial.checksum, run_unicast(n, k, nullptr).checksum);

  ThreadPool pool2(2);
  expect_identical(serial, run_unicast(n, k, &pool2, &fault), "2 threads");
  ThreadPool pool8(8);
  expect_identical(serial, run_unicast(n, k, &pool8, &fault), "8 threads");
}

TEST(ShardedIdentity, FaultedBroadcastMatchesSerialAtEveryThreadCount) {
  const std::size_t n = 96;
  const std::size_t k = 64;
  const FaultSpec fault = identity_fault_spec();
  const Snapshot serial = run_broadcast(n, k, nullptr, &fault);
  ASSERT_FALSE(serial.knowledge.empty());
  EXPECT_NE(serial.checksum, run_broadcast(n, k, nullptr).checksum);

  ThreadPool pool2(2);
  expect_identical(serial, run_broadcast(n, k, &pool2, &fault), "2 threads");
  ThreadPool pool8(8);
  expect_identical(serial, run_broadcast(n, k, &pool8, &fault), "8 threads");
}

TEST(ShardedIdentity, OneWorkerPoolStaysSerial) {
  // plan_shards must fall back to the serial path for a 1-worker pool (the
  // pool is a leaf executor and fork/join to one worker is pure overhead).
  const std::size_t n = 48;
  const std::uint32_t k = 32;
  ThreadPool pool1(1);
  expect_identical(run_unicast(n, k, nullptr), run_unicast(n, k, &pool1),
                   "1 thread");
}

}  // namespace
}  // namespace dyngossip
