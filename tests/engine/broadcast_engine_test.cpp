// Tests for the local-broadcast round engine (Section 2 order of play).
#include "engine/broadcast_engine.hpp"

#include <gtest/gtest.h>

#include "adversary/scripted.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"

namespace dyngossip {
namespace {

/// Test stub: broadcasts a fixed token while held, else stays silent.
class StubBroadcaster : public BroadcastAlgorithm {
 public:
  StubBroadcaster(std::size_t k, KnowledgeSet initial, TokenId speak)
      : known_(std::move(initial)), speak_(speak), k_(k) {}

  TokenId choose_broadcast(Round /*r*/) override {
    return known_.test(speak_) ? speak_ : kNoToken;
  }
  void on_receive(Round /*r*/, std::span<const TokenId> tokens) override {
    for (const TokenId t : tokens) known_.set(t);
  }

 private:
  KnowledgeSet known_;
  TokenId speak_;
  std::size_t k_;
};

std::vector<KnowledgeSet> one_holder(std::size_t n, std::size_t k, NodeId holder) {
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k));
  for (std::size_t t = 0; t < k; ++t) init[holder].set(t);
  return init;
}

TEST(BroadcastEngine, TokenFloodsAlongPath) {
  constexpr std::size_t n = 5, k = 1;
  StaticAdversary adversary(path_graph(n));
  auto init = one_holder(n, k, 0);
  std::vector<std::unique_ptr<BroadcastAlgorithm>> nodes;
  for (std::size_t v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<StubBroadcaster>(k, init[v], 0));
  }
  BroadcastEngine engine(std::move(nodes), adversary, init, k);
  const RunMetrics m = engine.run(100);
  EXPECT_TRUE(m.completed);
  // One hop per round along the path: exactly n-1 rounds.
  EXPECT_EQ(m.rounds, n - 1);
  EXPECT_EQ(m.learnings, n - 1);
  // Broadcast counting: node v starts broadcasting the round after learning;
  // node at distance d broadcasts in rounds d+1..n-1 => sum_{d=0}^{n-2}(n-1-d).
  EXPECT_EQ(m.broadcasts, 4u + 3u + 2u + 1u);
}

TEST(BroadcastEngine, SilenceCostsNothing) {
  constexpr std::size_t n = 3, k = 1;
  StaticAdversary adversary(path_graph(n));
  // Nobody holds token 0 => everyone silent forever.
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k));
  init[0].set(0);
  std::vector<std::unique_ptr<BroadcastAlgorithm>> nodes;
  for (std::size_t v = 0; v < n; ++v) {
    // speak_ = 0 but only node 0 holds it; others stay ⊥.
    nodes.push_back(std::make_unique<StubBroadcaster>(k, init[v], 0));
  }
  BroadcastEngine engine(std::move(nodes), adversary, init, k);
  engine.step();
  EXPECT_EQ(engine.metrics().broadcasts, 1u);  // only the holder spoke
}

TEST(BroadcastEngine, TrackerAccumulatesTC) {
  std::vector<Graph> script;
  script.push_back(path_graph(4));   // 3 insertions
  script.push_back(cycle_graph(4));  // path 0-1-2-3 + edge {0,3}: 1 insertion
  script.push_back(path_graph(4));   // remove {0,3}
  ScriptedAdversary adversary(std::move(script));
  auto init = one_holder(4, 1, 0);
  std::vector<std::unique_ptr<BroadcastAlgorithm>> nodes;
  for (std::size_t v = 0; v < 4; ++v) {
    nodes.push_back(std::make_unique<StubBroadcaster>(1, init[v], 0));
  }
  BroadcastEngine engine(std::move(nodes), adversary, init, 1);
  engine.step();
  engine.step();
  engine.step();
  EXPECT_EQ(engine.metrics().tc, 4u);
  EXPECT_EQ(engine.metrics().deletions, 1u);
}

TEST(BroadcastEngine, LearningLogRecordsEvents) {
  constexpr std::size_t n = 3, k = 2;
  StaticAdversary adversary(path_graph(n));
  auto init = one_holder(n, k, 0);
  std::vector<std::unique_ptr<BroadcastAlgorithm>> nodes;
  for (std::size_t v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<StubBroadcaster>(k, init[v], 0));
  }
  BroadcastEngineOptions opts;
  opts.record_learning_events = true;
  BroadcastEngine engine(std::move(nodes), adversary, init, k, opts);
  engine.step();  // node 1 learns token 0
  ASSERT_EQ(engine.learning_log().events().size(), 1u);
  const LearningEvent e = engine.learning_log().events()[0];
  EXPECT_EQ(e.node, 1u);
  EXPECT_EQ(e.token, 0u);
  EXPECT_EQ(e.round, 1u);
}

TEST(BroadcastEngine, RoundHookObservesEveryRound) {
  StaticAdversary adversary(path_graph(3));
  auto init = one_holder(3, 1, 0);
  std::vector<std::unique_ptr<BroadcastAlgorithm>> nodes;
  for (std::size_t v = 0; v < 3; ++v) {
    nodes.push_back(std::make_unique<StubBroadcaster>(1, init[v], 0));
  }
  BroadcastEngine engine(std::move(nodes), adversary, init, 1);
  std::vector<Round> seen;
  engine.set_round_hook(
      [&](Round r, const Graph& g, const RunMetrics&) {
        EXPECT_EQ(g.num_nodes(), 3u);
        seen.push_back(r);
      });
  engine.run(100);
  const std::vector<Round> want{1, 2};
  EXPECT_EQ(seen, want);
}

/// An algorithm that violates token forwarding (broadcasts a token it does
/// not hold) must be rejected by the engine.
class CheatingBroadcaster : public BroadcastAlgorithm {
 public:
  TokenId choose_broadcast(Round /*r*/) override { return 0; }
  void on_receive(Round, std::span<const TokenId>) override {}
};

TEST(BroadcastEngineDeath, TokenForwardingEnforced) {
  StaticAdversary adversary(path_graph(2));
  std::vector<KnowledgeSet> init(2, KnowledgeSet(1));  // nobody holds token 0
  std::vector<std::unique_ptr<BroadcastAlgorithm>> nodes;
  nodes.push_back(std::make_unique<CheatingBroadcaster>());
  nodes.push_back(std::make_unique<CheatingBroadcaster>());
  BroadcastEngine engine(std::move(nodes), adversary, init, 1);
  EXPECT_DEATH(engine.step(), "DG_CHECK");
}

TEST(BroadcastEngine, AlreadyCompleteRunsZeroRounds) {
  StaticAdversary adversary(path_graph(2));
  std::vector<KnowledgeSet> init(2, KnowledgeSet(1, /*initially_set=*/true));
  std::vector<std::unique_ptr<BroadcastAlgorithm>> nodes;
  nodes.push_back(std::make_unique<StubBroadcaster>(1, init[0], 0));
  nodes.push_back(std::make_unique<StubBroadcaster>(1, init[1], 0));
  BroadcastEngine engine(std::move(nodes), adversary, init, 1);
  const RunMetrics m = engine.run(10);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.rounds, 0u);
  EXPECT_EQ(m.broadcasts, 0u);
}

}  // namespace
}  // namespace dyngossip
