// Tests for the unicast round engine (Section 3 order of play).
#include "engine/unicast_engine.hpp"

#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "adversary/scripted.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"

namespace dyngossip {
namespace {

/// Test stub: pushes every held token to every neighbor, once per neighbor
/// per token (relay flooding over unicast).
class StubRelay : public UnicastAlgorithm {
 public:
  StubRelay(std::size_t k, KnowledgeSet initial) : known_(std::move(initial)) {
    (void)k;
  }

  void send(Round /*r*/, std::span<const NodeId> neighbors, Outbox& out) override {
    for (const NodeId w : neighbors) {
      for (const std::size_t t : known_.set_positions()) {
        if (!sent_[w].count(static_cast<TokenId>(t))) {
          out.send(w, Message::token_msg(static_cast<TokenId>(t)));
          sent_[w].insert(static_cast<TokenId>(t));
          break;  // one token per neighbor per round (bandwidth discipline)
        }
      }
    }
  }
  void on_receive(Round /*r*/, NodeId /*from*/, const Message& m) override {
    if (m.type == MsgType::kToken) known_.set(m.token);
  }

 private:
  KnowledgeSet known_;
  std::unordered_map<NodeId, std::unordered_set<TokenId>> sent_;
};

std::vector<KnowledgeSet> one_holder(std::size_t n, std::size_t k, NodeId holder) {
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k));
  for (std::size_t t = 0; t < k; ++t) init[holder].set(t);
  return init;
}

std::vector<std::unique_ptr<UnicastAlgorithm>> relays(
    std::size_t n, std::size_t k, const std::vector<KnowledgeSet>& init) {
  std::vector<std::unique_ptr<UnicastAlgorithm>> nodes;
  for (std::size_t v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<StubRelay>(k, init[v]));
  }
  return nodes;
}

TEST(UnicastEngine, DeliveryIsEndOfRound) {
  constexpr std::size_t n = 3, k = 1;
  StaticAdversary adversary(path_graph(n));
  auto init = one_holder(n, k, 0);
  UnicastEngine engine(relays(n, k, init), adversary, init, k);
  engine.step();  // 0 -> 1 delivered at end of round 1
  EXPECT_TRUE(engine.knowledge_of(1).test(0));
  EXPECT_FALSE(engine.knowledge_of(2).test(0));
  engine.step();  // 1 -> 2
  EXPECT_TRUE(engine.knowledge_of(2).test(0));
  EXPECT_TRUE(engine.all_complete());
  EXPECT_EQ(engine.metrics().unicast.token, 3u);  // 0->1, 1->0(dup), 1->2
  EXPECT_EQ(engine.metrics().learnings, 2u);
  EXPECT_EQ(engine.metrics().duplicate_token_deliveries, 1u);
}

TEST(UnicastEngine, PerTypeCounting) {
  constexpr std::size_t n = 2, k = 1;
  /// Sends one message of each type to its only neighbor each round.
  class MultiTyped : public UnicastAlgorithm {
   public:
    explicit MultiTyped(bool holder) : holder_(holder) {}
    void send(Round /*r*/, std::span<const NodeId> neighbors, Outbox& out) override {
      for (const NodeId w : neighbors) {
        if (holder_) out.send(w, Message::token_msg(0));
        out.send(w, Message::completeness(0, 1));
        out.send(w, Message::request(0));
        out.send(w, Message::control(ControlKind::kCenterAnnounce));
      }
    }
    void on_receive(Round, NodeId, const Message&) override {}

   private:
    bool holder_;
  };
  StaticAdversary adversary(path_graph(n));
  auto init = one_holder(n, k, 0);
  std::vector<std::unique_ptr<UnicastAlgorithm>> nodes;
  nodes.push_back(std::make_unique<MultiTyped>(true));
  nodes.push_back(std::make_unique<MultiTyped>(false));
  UnicastEngine engine(std::move(nodes), adversary, init, k);
  engine.step();
  const MessageCounts& c = engine.metrics().unicast;
  EXPECT_EQ(c.token, 1u);
  EXPECT_EQ(c.completeness, 2u);
  EXPECT_EQ(c.request, 2u);
  EXPECT_EQ(c.control, 2u);
  EXPECT_EQ(c.total(), 7u);
}

/// Sends to a node that is not a neighbor: must abort.
class BadTarget : public UnicastAlgorithm {
 public:
  void send(Round /*r*/, std::span<const NodeId> /*neighbors*/, Outbox& out) override {
    out.send(2, Message::request(0));  // node 2 is not adjacent to node 0 on a path of 3
  }
  void on_receive(Round, NodeId, const Message&) override {}
};

TEST(UnicastEngineDeath, NonNeighborTargetRejected) {
  StaticAdversary adversary(path_graph(3));
  std::vector<KnowledgeSet> init(3, KnowledgeSet(1));
  init[0].set(0);
  std::vector<std::unique_ptr<UnicastAlgorithm>> nodes;
  nodes.push_back(std::make_unique<BadTarget>());
  nodes.push_back(std::make_unique<StubRelay>(1, init[1]));
  nodes.push_back(std::make_unique<StubRelay>(1, init[2]));
  UnicastEngine engine(std::move(nodes), adversary, init, 1);
  EXPECT_DEATH(engine.step(), "DG_CHECK");
}

/// Floods one edge past the bandwidth cap: must abort.
class BandwidthHog : public UnicastAlgorithm {
 public:
  void send(Round /*r*/, std::span<const NodeId> neighbors, Outbox& out) override {
    for (int i = 0; i < 5; ++i) out.send(neighbors[0], Message::request(0));
  }
  void on_receive(Round, NodeId, const Message&) override {}
};

TEST(UnicastEngineDeath, BandwidthCapEnforced) {
  StaticAdversary adversary(path_graph(2));
  std::vector<KnowledgeSet> init(2, KnowledgeSet(1));
  init[0].set(0);
  std::vector<std::unique_ptr<UnicastAlgorithm>> nodes;
  nodes.push_back(std::make_unique<BandwidthHog>());
  nodes.push_back(std::make_unique<BandwidthHog>());
  UnicastEngine engine(std::move(nodes), adversary, init, 1);
  EXPECT_DEATH(engine.step(), "DG_CHECK");
}

/// Ships a token it does not hold: must abort (token forwarding).
class TokenFabricator : public UnicastAlgorithm {
 public:
  void send(Round /*r*/, std::span<const NodeId> neighbors, Outbox& out) override {
    out.send(neighbors[0], Message::token_msg(0));
  }
  void on_receive(Round, NodeId, const Message&) override {}
};

TEST(UnicastEngineDeath, TokenForwardingEnforced) {
  StaticAdversary adversary(path_graph(2));
  std::vector<KnowledgeSet> init(2, KnowledgeSet(1));  // nobody holds 0
  std::vector<std::unique_ptr<UnicastAlgorithm>> nodes;
  nodes.push_back(std::make_unique<TokenFabricator>());
  nodes.push_back(std::make_unique<TokenFabricator>());
  UnicastEngine engine(std::move(nodes), adversary, init, 1);
  EXPECT_DEATH(engine.step(), "DG_CHECK");
}

TEST(UnicastEngine, RunUntilPredicate) {
  constexpr std::size_t n = 4, k = 1;
  StaticAdversary adversary(path_graph(n));
  auto init = one_holder(n, k, 0);
  UnicastEngine engine(relays(n, k, init), adversary, init, k);
  const RunMetrics m = engine.run_until(
      [](const UnicastEngine& e) { return e.knowledge_of(1).test(0); }, 100);
  EXPECT_EQ(m.rounds, 1u);
  EXPECT_FALSE(m.completed);  // node 3 does not know the token yet
}

TEST(UnicastEngine, SharedTrackerAndStartRoundContinuation) {
  constexpr std::size_t n = 3, k = 1;
  StaticAdversary adversary(path_graph(n));
  auto init = one_holder(n, k, 0);
  DynamicGraphTracker tracker(n);

  UnicastEngineOptions o1;
  o1.tracker = &tracker;
  UnicastEngine first(relays(n, k, init), adversary, init, k, o1);
  first.step();
  EXPECT_EQ(tracker.topological_changes(), 2u);  // the path's 2 edges

  // A second engine continues the same execution: no re-counted insertions.
  std::vector<KnowledgeSet> mid;
  for (NodeId v = 0; v < n; ++v) mid.push_back(first.knowledge_of(v));
  UnicastEngineOptions o2;
  o2.tracker = &tracker;
  o2.start_round = first.round() + 1;
  UnicastEngine second(relays(n, k, mid), adversary, mid, k, o2);
  second.run(100);
  EXPECT_TRUE(second.all_complete());
  EXPECT_EQ(tracker.topological_changes(), 2u);  // static graph: no new TC
  EXPECT_EQ(second.metrics().tc, 0u);
}

TEST(UnicastEngine, MaxRoundsStopsIncompleteRun) {
  constexpr std::size_t n = 6, k = 1;
  StaticAdversary adversary(path_graph(n));
  auto init = one_holder(n, k, 0);
  UnicastEngine engine(relays(n, k, init), adversary, init, k);
  const RunMetrics m = engine.run(2);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.rounds, 2u);
}

}  // namespace
}  // namespace dyngossip
