// Tests for the wire-level message model.
#include "engine/message.hpp"

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

TEST(Message, TokenFactory) {
  const Message m = Message::token_msg(42, 7);
  EXPECT_EQ(m.type, MsgType::kToken);
  EXPECT_EQ(m.token, 42u);
  EXPECT_EQ(m.source, 7u);
}

TEST(Message, CompletenessCarriesSourceAndCount) {
  const Message m = Message::completeness(3, 128);
  EXPECT_EQ(m.type, MsgType::kCompleteness);
  EXPECT_EQ(m.source, 3u);
  EXPECT_EQ(m.aux, 128u);
}

TEST(Message, RequestFactory) {
  const Message m = Message::request(9);
  EXPECT_EQ(m.type, MsgType::kRequest);
  EXPECT_EQ(m.token, 9u);
}

TEST(Message, ControlKindPayloadPacking) {
  const Message m = Message::control(ControlKind::kCenterAnnounce, 0xABCDEF);
  EXPECT_EQ(m.type, MsgType::kControl);
  EXPECT_EQ(m.control_kind(), ControlKind::kCenterAnnounce);
  EXPECT_EQ(m.control_payload(), 0xABCDEFu);

  const Message j = Message::control(ControlKind::kTreeJoin);
  EXPECT_EQ(j.control_kind(), ControlKind::kTreeJoin);
  EXPECT_EQ(j.control_payload(), 0u);
}

TEST(Message, TypeNames) {
  EXPECT_STREQ(msg_type_name(MsgType::kToken), "token");
  EXPECT_STREQ(msg_type_name(MsgType::kCompleteness), "completeness");
  EXPECT_STREQ(msg_type_name(MsgType::kRequest), "request");
  EXPECT_STREQ(msg_type_name(MsgType::kControl), "control");
}

}  // namespace
}  // namespace dyngossip
