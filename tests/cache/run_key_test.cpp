// RunKey canonicalization: spec round-trip equivalence (a typed spec and
// the same spec built through setters key identically), fault/no-fault
// distinction, and schema-generation separation.
#include "cache/run_key.hpp"

#include <gtest/gtest.h>

#include "adversary/registry.hpp"
#include "algo/registry.hpp"
#include "cache/memo_sweep.hpp"
#include "common/provenance.hpp"
#include "fault/fault_spec.hpp"

namespace dyngossip {
namespace {

RunKey sample_key() {
  return make_run_key("single_source", "churn:rate=0.5", "fault", 64, 8, 4,
                      1'000, 42);
}

TEST(RunKeyCanonical, TextSpellsOutEveryAxisWithSchemaPrefix) {
  const RunKey key = sample_key();
  EXPECT_EQ(key.canonical_text(),
            "dg" + std::to_string(kCacheSchemaVersion) +
                "|algo=single_source|engine=unicast|adv=churn:rate=0.5"
                "|fault=fault|n=64|k=8|s=4|cap=1000|seed=42");
}

TEST(RunKeyCanonical, EngineIsDerivedFromTheRegisteredFamily) {
  EXPECT_EQ(sample_key().engine, "unicast");
  EXPECT_EQ(make_run_key("flooding:sources=1", "static:edges=96", "fault", 32,
                         4, 1, 0, 7)
                .engine,
            "broadcast");
  EXPECT_EQ(make_run_key("async_push_pull:rate=1,sigma=1", "static:edges=96",
                         "fault", 32, 4, 1, 0, 7)
                .engine,
            "async");
  // Unknown family names (serve-side keys rebuilt from stored text) fall
  // back to the engine every pre-schema-2 entry implicitly had.
  EXPECT_EQ(make_run_key("no_such_family:x=1", "static:edges=96", "fault", 32,
                         4, 1, 0, 7)
                .engine,
            "unicast");
}

TEST(RunKeyCanonical, SchemaDefaultsToThisBinarysGeneration) {
  EXPECT_EQ(RunKey().schema, kCacheSchemaVersion);
  EXPECT_EQ(sample_key().schema, kCacheSchemaVersion);
}

TEST(RunKeyCanonical, ParsedAndSetterBuiltSpecsKeyIdentically) {
  // A user typing `churn:sigma=3,rate=0.5` and a scenario building the same
  // spec programmatically (different param order) must hit the same entry.
  const AdversarySpec typed = AdversarySpec::parse("churn:sigma=3,rate=0.5");
  AdversarySpec built;
  built.family = "churn";
  built.set("rate", "0.5").set("sigma", std::uint64_t{3});
  EXPECT_EQ(typed.to_string(), built.to_string());

  const RunKey a = make_run_key("single_source", typed.to_string(), "fault",
                                64, 8, 4, 0, 7);
  const RunKey b = make_run_key("single_source", built.to_string(), "fault",
                                64, 8, 4, 0, 7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.canonical_text(), b.canonical_text());
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(RunKeyCanonical, AlgoSpecRoundTripKeysIdentically) {
  const AlgoSpec typed = AlgoSpec::parse("single_source");
  const AlgoSpec reparsed = AlgoSpec::parse(typed.to_string());
  EXPECT_EQ(typed.to_string(), reparsed.to_string());
}

TEST(RunKeyCanonical, FaultAndNoFaultKeysAreDistinct) {
  const std::string inactive = FaultSpec{}.to_string();
  const std::string active =
      FaultSpec::parse("fault:drop=0.1,seed=5").to_string();
  ASSERT_NE(inactive, active);
  const RunKey plain = make_run_key("single_source", "churn:rate=0.5",
                                    inactive, 64, 8, 4, 0, 7);
  const RunKey faulty = make_run_key("single_source", "churn:rate=0.5",
                                     active, 64, 8, 4, 0, 7);
  EXPECT_FALSE(plain == faulty);
  EXPECT_NE(plain.canonical_text(), faulty.canonical_text());
  EXPECT_NE(plain.digest(), faulty.digest());
}

TEST(RunKeyCanonical, EveryAxisChangesTheDigest) {
  const RunKey base = sample_key();
  RunKey k = base;
  k.algo = "multi_source";
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.engine = "async";
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.adversary = "churn:rate=0.25";
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.n = 65;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.k = 9;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.sources = 5;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.cap = 1'001;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.seed = 43;
  EXPECT_NE(k.digest(), base.digest());
}

TEST(RunKeyCanonical, ForeignSchemaGenerationKeysDifferently) {
  const RunKey current = sample_key();
  RunKey foreign = current;
  foreign.schema = kCacheSchemaVersion + 1;
  EXPECT_FALSE(current == foreign);
  EXPECT_NE(current.canonical_text(), foreign.canonical_text());
  EXPECT_NE(current.digest(), foreign.digest());
}

TEST(RunKeyCanonical, Fnv1a64MatchesTheReferenceConstants) {
  // Offset basis on empty input; the classic single-byte probe.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"),
            (0xcbf29ce484222325ull ^ 'a') * 0x100000001b3ull);
  EXPECT_NE(fnv1a64("dyngossip"), fnv1a64("dyngossiq"));
}

TEST(RunKeyCanonical, CacheableAdversaryFamilyExcludesFileBackedAndLb) {
  EXPECT_TRUE(cacheable_adversary_family("churn"));
  EXPECT_TRUE(cacheable_adversary_family("cutter"));
  EXPECT_TRUE(cacheable_adversary_family("static"));
  // File-backed families key on a file *name* whose content the RunKey
  // cannot pin; lb adapts to run-side knowledge.
  EXPECT_FALSE(cacheable_adversary_family("trace"));
  EXPECT_FALSE(cacheable_adversary_family("scripted"));
  EXPECT_FALSE(cacheable_adversary_family("smoothed"));
  EXPECT_FALSE(cacheable_adversary_family("lb"));
}

}  // namespace
}  // namespace dyngossip
