// Result-cache contract: store/lookup round trips, corruption tolerance
// (truncated or bit-flipped entries MISS and `cache verify` names them),
// schema-generation isolation, the kTimeout/kStalled write-back bypass, and
// the memoized sweep scheduler serving hits without re-running trials.
#include "cache/result_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "cache/memo_sweep.hpp"
#include "common/provenance.hpp"
#include "sim/runner/thread_pool.hpp"
#include "trace/run_payload.hpp"

namespace dyngossip {
namespace {

std::string fresh_cache_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "dg_cache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

RunKey key_with_seed(std::uint64_t seed) {
  return make_run_key("single_source", "churn:rate=0.5", "fault", 24, 6, 1,
                      480, seed);
}

/// A synthetic finished run whose checksum genuinely re-folds (the decode
/// path re-derives it from the stored fields, so a fabricated checksum
/// would read back as corrupt).
CachedResult sample_row(std::size_t n, RunStatus status = RunStatus::kCompleted) {
  RunResult run;
  run.metrics.unicast.token = 120;
  run.metrics.unicast.completeness = 48;
  run.metrics.unicast.request = 30;
  run.metrics.unicast.control = 2;
  run.metrics.tc = 900;
  run.metrics.deletions = 11;
  run.metrics.learnings = 144;
  run.metrics.duplicate_token_deliveries = 3;
  run.metrics.virtual_steps = 5;
  run.metrics.rounds = 37;
  run.rounds = 37;
  run.metrics.completed = status == RunStatus::kCompleted;
  run.completed = run.metrics.completed;
  run.metrics.status = status;
  run.metrics.coverage = run.metrics.completed ? 1.0 : 0.5;
  return make_cached_result(n, 6, run);
}

TEST(ResultCache, StoreThenLookupRoundTripsEveryField) {
  ResultCache cache(fresh_cache_dir("roundtrip"));
  const RunKey key = key_with_seed(1);
  const CachedResult row = sample_row(key.n);
  cache.store(key, row);

  const std::optional<CachedResult> hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->k_realized, row.k_realized);
  EXPECT_EQ(hit->checksum, row.checksum);
  EXPECT_EQ(hit->metrics.unicast.token, row.metrics.unicast.token);
  EXPECT_EQ(hit->metrics.unicast.completeness,
            row.metrics.unicast.completeness);
  EXPECT_EQ(hit->metrics.unicast.request, row.metrics.unicast.request);
  EXPECT_EQ(hit->metrics.unicast.control, row.metrics.unicast.control);
  EXPECT_EQ(hit->metrics.broadcasts, row.metrics.broadcasts);
  EXPECT_EQ(hit->metrics.tc, row.metrics.tc);
  EXPECT_EQ(hit->metrics.deletions, row.metrics.deletions);
  EXPECT_EQ(hit->metrics.learnings, row.metrics.learnings);
  EXPECT_EQ(hit->metrics.duplicate_token_deliveries,
            row.metrics.duplicate_token_deliveries);
  EXPECT_EQ(hit->metrics.virtual_steps, row.metrics.virtual_steps);
  EXPECT_EQ(hit->metrics.rounds, row.metrics.rounds);
  EXPECT_EQ(hit->metrics.completed, row.metrics.completed);
  EXPECT_EQ(hit->metrics.status, row.metrics.status);
  EXPECT_DOUBLE_EQ(hit->metrics.coverage, row.metrics.coverage);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(ResultCache, AbsentKeyMisses) {
  ResultCache cache(fresh_cache_dir("absent"));
  EXPECT_FALSE(cache.lookup(key_with_seed(99)).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCache, TruncatedEntryMissesAndVerifyReportsIt) {
  ResultCache cache(fresh_cache_dir("truncated"));
  const RunKey key = key_with_seed(2);
  cache.store(key, sample_row(key.n));
  ASSERT_TRUE(cache.lookup(key).has_value());

  // Simulate a crash mid-write landing a half entry at the final path.
  const std::string path = cache.entry_path(key);
  const std::string body = [&] {
    std::ifstream in(path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    return all;
  }();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << body.substr(0, body.size() / 2);
  }

  EXPECT_FALSE(cache.lookup(key).has_value());
  const CacheVerifyReport report = cache.verify();
  EXPECT_EQ(report.valid, 0u);
  ASSERT_EQ(report.corrupt.size(), 1u);
  EXPECT_NE(report.corrupt[0].find(path), std::string::npos);

  // gc removes the broken entry; a healthy store can then repopulate it.
  const CacheGcReport gc = cache.gc(/*all=*/false);
  EXPECT_EQ(gc.removed_corrupt, 1u);
  EXPECT_EQ(cache.verify().corrupt.size(), 0u);
  cache.store(key, sample_row(key.n));
  EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST(ResultCache, BitFlippedFieldBreaksTheChecksumFoldAndMisses) {
  ResultCache cache(fresh_cache_dir("bitflip"));
  const RunKey key = key_with_seed(3);
  cache.store(key, sample_row(key.n));

  const std::string path = cache.entry_path(key);
  std::string body = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }();
  // Inflate the token count; the stored checksum no longer re-folds.
  const std::size_t at = body.find("\"token\":120");
  ASSERT_NE(at, std::string::npos);
  body.replace(at, 11, "\"token\":121");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << body;
  }

  EXPECT_FALSE(cache.lookup(key).has_value());
  const CacheVerifyReport report = cache.verify();
  ASSERT_EQ(report.corrupt.size(), 1u);
  EXPECT_NE(report.corrupt[0].find("does not re-fold"), std::string::npos);
}

TEST(ResultCache, ForeignSchemaEntryMissesAndVerifyCountsItForeign) {
  ResultCache cache(fresh_cache_dir("foreign"));
  RunKey foreign_key = key_with_seed(4);
  foreign_key.schema = kCacheSchemaVersion + 1;
  cache.store(foreign_key, sample_row(foreign_key.n));

  // The foreign entry is well-formed but belongs to another cache
  // generation: lookup under its own key must refuse to return it.
  EXPECT_FALSE(cache.lookup(foreign_key).has_value());
  const CacheVerifyReport report = cache.verify();
  EXPECT_EQ(report.valid, 0u);
  EXPECT_EQ(report.foreign, 1u);
  EXPECT_TRUE(report.corrupt.empty());

  // The same axes under the current schema are a distinct entry entirely.
  EXPECT_FALSE(cache.lookup(key_with_seed(4)).has_value());
}

TEST(ResultCache, TimeoutAndStalledAreNeverStoreEligible) {
  EXPECT_TRUE(cache_should_store(RunStatus::kCompleted));
  EXPECT_TRUE(cache_should_store(RunStatus::kRoundCap));
  EXPECT_TRUE(cache_should_store(RunStatus::kAllDown));
  // Host-dependent outcomes: a faster machine would not have timed out.
  EXPECT_FALSE(cache_should_store(RunStatus::kTimeout));
  EXPECT_FALSE(cache_should_store(RunStatus::kStalled));
}

TEST(ResultCache, MemoizedSweepNeverCachesTimeoutOrStalledRows) {
  ResultCache cache(fresh_cache_dir("timeout_bypass"));
  ThreadPool pool(2);
  int runs = 0;
  const auto sweep_once = [&](RunStatus status) {
    std::vector<KeyedTrial> trials(1);
    trials[0].key = key_with_seed(status == RunStatus::kTimeout ? 10 : 11);
    trials[0].cacheable = true;
    trials[0].run = [&runs, status, n = trials[0].key.n](ThreadPool*) {
      ++runs;
      return sample_row(n, status);
    };
    return memoized_sweep(trials, &cache, pool);
  };

  for (int round = 0; round < 2; ++round) {
    const std::vector<MemoOutcome> t = sweep_once(RunStatus::kTimeout);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_FALSE(t[0].from_cache);
    const std::vector<MemoOutcome> s = sweep_once(RunStatus::kStalled);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_FALSE(s[0].from_cache);
  }
  // Both statuses re-ran on the second sweep: nothing was written back.
  EXPECT_EQ(runs, 4);
  EXPECT_EQ(cache.stats().stores, 0u);
  EXPECT_EQ(cache.info().entries, 0u);
}

TEST(ResultCache, MemoizedSweepServesHitsWithoutRerunning) {
  ResultCache cache(fresh_cache_dir("memo"));
  ThreadPool pool(2);
  int runs = 0;
  const auto make_trials = [&] {
    std::vector<KeyedTrial> trials(3);
    for (std::size_t i = 0; i < trials.size(); ++i) {
      trials[i].key = key_with_seed(20 + i);
      trials[i].cacheable = true;
      trials[i].run = [&runs, n = trials[i].key.n](ThreadPool*) {
        ++runs;
        return sample_row(n);
      };
    }
    return trials;
  };

  const std::vector<MemoOutcome> cold = memoized_sweep(make_trials(), &cache, pool);
  ASSERT_EQ(cold.size(), 3u);
  EXPECT_EQ(runs, 3);
  for (const MemoOutcome& o : cold) EXPECT_FALSE(o.from_cache);

  const std::vector<MemoOutcome> warm = memoized_sweep(make_trials(), &cache, pool);
  ASSERT_EQ(warm.size(), 3u);
  EXPECT_EQ(runs, 3) << "warm sweep must not re-run any trial";
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_TRUE(warm[i].from_cache);
    EXPECT_EQ(warm[i].row.checksum, cold[i].row.checksum);
    EXPECT_EQ(warm[i].row.metrics.tc, cold[i].row.metrics.tc);
  }

  // Non-cacheable trials bypass the cache entirely, even when present.
  std::vector<KeyedTrial> bypass = make_trials();
  for (KeyedTrial& t : bypass) t.cacheable = false;
  const std::vector<MemoOutcome> raw = memoized_sweep(bypass, &cache, pool);
  EXPECT_EQ(runs, 6);
  for (const MemoOutcome& o : raw) EXPECT_FALSE(o.from_cache);
}

TEST(ResultCache, IndexAndInfoTrackTheObjectStore) {
  ResultCache cache(fresh_cache_dir("index"));
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    cache.store(key_with_seed(40 + seed), sample_row(24));
  }
  EXPECT_FALSE(cache.info().index_present);
  cache.write_index();
  const CacheInfo info = cache.info();
  EXPECT_EQ(info.entries, 4u);
  EXPECT_TRUE(info.index_present);
  EXPECT_GT(info.bytes, 0u);

  // gc --all empties the store and the rewritten index reflects that.
  const CacheGcReport gc = cache.gc(/*all=*/true);
  EXPECT_EQ(gc.removed_entries, 4u);
  EXPECT_EQ(cache.info().entries, 0u);
  EXPECT_EQ(cache.verify().valid, 0u);
}

TEST(ResultCache, StoreIsIdempotentUnderTheSameKey) {
  ResultCache cache(fresh_cache_dir("idempotent"));
  const RunKey key = key_with_seed(5);
  cache.store(key, sample_row(key.n));
  cache.store(key, sample_row(key.n));  // second publish is a no-op
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_EQ(cache.info().entries, 1u);
}

}  // namespace
}  // namespace dyngossip
