// The sweep service behind `dyngossip serve`, driven in-process through the
// same transport-free emit callback the socket layer uses: protocol framing,
// cache sharing between overlapping requests, round-robin fairness between
// concurrent sessions, and error surfacing.
#include "serve/server.hpp"

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.hpp"
#include "sim/runner/json.hpp"

namespace dyngossip {
namespace {

std::string fresh_cache_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "dg_serve_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

SweepRequest small_request(std::size_t trials, std::uint64_t seed_base) {
  SweepRequest req;
  req.adversary = "churn:rate=0.5";
  req.n = 24;
  req.k = 4;
  req.sources = 1;
  req.trials = trials;
  req.seed_base = seed_base;
  return req;
}

struct ParsedLine {
  std::string type;
  JsonValue doc;
};

ParsedLine parse_line(const std::string& line) {
  ParsedLine p;
  p.doc = JsonValue::parse(line);
  const JsonValue* type = p.doc.find("type");
  if (type != nullptr && type->type() == JsonValue::Type::kString) {
    p.type = type->as_string();
  }
  return p;
}

std::vector<std::string> run_and_collect(SweepService& service,
                                         const SweepRequest& req) {
  std::vector<std::string> lines;
  service.run_sweep(req, [&](const std::string& line) { lines.push_back(line); });
  return lines;
}

TEST(SweepService, StreamsAcceptedRowsDoneInTrialOrder) {
  ThreadPool pool(2);
  SweepService service(pool, nullptr);
  const std::vector<std::string> lines =
      run_and_collect(service, small_request(3, 100));
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(parse_line(lines[0]).type, "accepted");
  for (std::size_t i = 0; i < 3; ++i) {
    const ParsedLine row = parse_line(lines[1 + i]);
    EXPECT_EQ(row.type, "row");
    EXPECT_EQ(row.doc.find("trial")->as_number(), static_cast<double>(i));
    EXPECT_EQ(row.doc.find("seed")->as_number(), static_cast<double>(100 + i));
    EXPECT_FALSE(row.doc.find("cached")->as_bool());
    EXPECT_EQ(row.doc.find("checksum")->as_string().size(), 16u);
  }
  const ParsedLine done = parse_line(lines[4]);
  EXPECT_EQ(done.type, "done");
  EXPECT_EQ(done.doc.find("hits")->as_number(), 0.0);
  EXPECT_EQ(done.doc.find("misses")->as_number(), 3.0);
}

TEST(SweepService, OverlappingRequestsShareTheCache) {
  ResultCache cache(fresh_cache_dir("share"));
  ThreadPool pool(2);
  SweepService service(pool, &cache);

  const std::vector<std::string> first =
      run_and_collect(service, small_request(3, 100));
  // Second request overlaps trials 100..102 and adds 103: the overlap must
  // come back as hits with identical checksums — the acceptance criterion
  // for concurrent clients sharing entries.
  const std::vector<std::string> second =
      run_and_collect(service, small_request(4, 100));
  ASSERT_EQ(second.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    const ParsedLine a = parse_line(first[1 + i]);
    const ParsedLine b = parse_line(second[1 + i]);
    EXPECT_TRUE(b.doc.find("cached")->as_bool()) << "overlap trial " << i;
    EXPECT_EQ(a.doc.find("checksum")->as_string(),
              b.doc.find("checksum")->as_string());
  }
  EXPECT_FALSE(parse_line(second[4]).doc.find("cached")->as_bool());
  const ParsedLine done = parse_line(second[5]);
  EXPECT_EQ(done.doc.find("hits")->as_number(), 3.0);
  EXPECT_EQ(done.doc.find("misses")->as_number(), 1.0);
}

TEST(SweepService, ConcurrentSessionsBothCompleteWithConsistentRows) {
  ResultCache cache(fresh_cache_dir("concurrent"));
  ThreadPool pool(2);
  SweepService service(pool, &cache);

  std::vector<std::string> a_lines;
  std::vector<std::string> b_lines;
  std::thread a([&] {
    service.run_sweep(small_request(4, 100), [&](const std::string& line) {
      a_lines.push_back(line);
    });
  });
  std::thread b([&] {
    service.run_sweep(small_request(4, 100), [&](const std::string& line) {
      b_lines.push_back(line);
    });
  });
  a.join();
  b.join();

  ASSERT_EQ(a_lines.size(), 6u);
  ASSERT_EQ(b_lines.size(), 6u);
  // Identical keys computed once (dedup or cache) and byte-equal rows: the
  // purity invariant holds across sessions.
  for (std::size_t i = 1; i <= 4; ++i) {
    const ParsedLine ra = parse_line(a_lines[i]);
    const ParsedLine rb = parse_line(b_lines[i]);
    EXPECT_EQ(ra.doc.find("checksum")->as_string(),
              rb.doc.find("checksum")->as_string());
    EXPECT_EQ(ra.doc.find("messages")->as_number(),
              rb.doc.find("messages")->as_number());
  }
  const double a_hits = parse_line(a_lines[5]).doc.find("hits")->as_number();
  const double b_hits = parse_line(b_lines[5]).doc.find("hits")->as_number();
  EXPECT_EQ(a_hits + b_hits, 4.0) << "each overlapping key computed once";
}

TEST(SweepService, InvalidRequestEmitsOneErrorLine) {
  ThreadPool pool(1);
  SweepService service(pool, nullptr);
  SweepRequest req = small_request(1, 0);
  req.adversary = "no_such_family:x=1";
  const std::vector<std::string> lines = run_and_collect(service, req);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(parse_line(lines[0]).type, "error");
}

TEST(FairScheduler, RotatesBetweenSessions) {
  FairScheduler sched;
  const std::uint64_t a = sched.open_session();
  const std::uint64_t b = sched.open_session();
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sched.enqueue(a, [&order] { order.push_back(1); });
  }
  for (int i = 0; i < 3; ++i) {
    sched.enqueue(b, [&order] { order.push_back(2); });
  }
  while (std::function<void()> trial = sched.next()) trial();
  // Strict alternation: a 3-trial session cannot starve its sibling.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
  sched.close_session(a);
  sched.close_session(b);
  EXPECT_FALSE(static_cast<bool>(sched.next()));
}

TEST(FairScheduler, ClosedSessionsQueueDrainsBeforeRetirement) {
  FairScheduler sched;
  const std::uint64_t a = sched.open_session();
  int ran = 0;
  sched.enqueue(a, [&ran] { ++ran; });
  sched.enqueue(a, [&ran] { ++ran; });
  // Closing with work still queued must not drop it: other sessions may
  // have deduped onto those trials.
  sched.close_session(a);
  while (std::function<void()> trial = sched.next()) trial();
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(static_cast<bool>(sched.next()));
}

}  // namespace
}  // namespace dyngossip
