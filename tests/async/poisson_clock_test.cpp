// Poisson clock sampler: position-keyed determinism, strict positivity, and
// the exponential distribution's moments (mean 1/λ, variance 1/λ²) within
// statistical tolerance at a fixed seed.
#include "async/poisson_clock.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dyngossip {
namespace {

TEST(PositionHash, IsPureAndSeparatesCoordinates) {
  EXPECT_EQ(position_hash(1, 2, 3, 4), position_hash(1, 2, 3, 4));
  EXPECT_NE(position_hash(1, 2, 3, 4), position_hash(2, 2, 3, 4));  // seed
  EXPECT_NE(position_hash(1, 2, 3, 4), position_hash(1, 3, 3, 4));  // salt
  EXPECT_NE(position_hash(1, 2, 3, 4), position_hash(1, 2, 4, 4));  // a
  EXPECT_NE(position_hash(1, 2, 3, 4), position_hash(1, 2, 3, 5));  // b
  // (a, b) order matters: coordinates are folded sequentially, not xor-ed.
  EXPECT_NE(position_hash(1, 2, 3, 4), position_hash(1, 2, 4, 3));
}

TEST(PositionHash, Uniform01StaysInHalfOpenUnitInterval) {
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const double u = position_uniform01(99, 7, i);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(PoissonClock, GapsAreDeterministicPerPosition) {
  const PoissonClock a(42, 1.0);
  const PoissonClock b(42, 1.0);
  const PoissonClock other(43, 1.0);
  for (NodeId v = 0; v < 8; ++v) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      EXPECT_EQ(a.gap(v, i), b.gap(v, i));
    }
  }
  // A different seed realizes a different clock (overwhelmingly).
  std::size_t diffs = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    diffs += a.gap(0, i) != other.gap(0, i) ? 1 : 0;
  }
  EXPECT_GT(diffs, 60u);
}

TEST(PoissonClock, GapsAreStrictlyPositive) {
  const PoissonClock clock(7, 4.0);
  for (NodeId v = 0; v < 16; ++v) {
    for (std::uint64_t i = 0; i < 512; ++i) {
      EXPECT_GT(clock.gap(v, i), 0.0);
    }
  }
}

TEST(PoissonClock, MomentsMatchTheExponentialAtFixedSeed) {
  // 32768 gaps at λ = 2: mean → 1/2, variance → 1/4.  The tolerances are
  // loose enough to be seed-robust (±3% mean, ±8% variance at this sample
  // size) but the test is fully deterministic anyway — the fixed seed pins
  // every sample.
  const double rate = 2.0;
  const PoissonClock clock(1234, rate);
  const std::size_t nodes = 16;
  const std::size_t per_node = 2048;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (NodeId v = 0; v < static_cast<NodeId>(nodes); ++v) {
    for (std::uint64_t i = 0; i < per_node; ++i) {
      const double g = clock.gap(v, i);
      sum += g;
      sum_sq += g * g;
    }
  }
  const double count = static_cast<double>(nodes * per_node);
  const double mean = sum / count;
  const double variance = sum_sq / count - mean * mean;
  EXPECT_NEAR(mean, 1.0 / rate, 0.03 * (1.0 / rate));
  EXPECT_NEAR(variance, 1.0 / (rate * rate), 0.08 * (1.0 / (rate * rate)));
}

TEST(PoissonClock, RateScalesTheGaps) {
  // Same seed ⇒ the same uniforms ⇒ gaps scale exactly by the rate ratio.
  const PoissonClock slow(5, 1.0);
  const PoissonClock fast(5, 4.0);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(slow.gap(3, i) / 4.0, fast.gap(3, i));
  }
}

}  // namespace
}  // namespace dyngossip
