// ClockedAdversary: the sync↔async time mapping (round r owns the window
// [(r-1)σ, rσ)) and one-round-at-a-time advancement of a registry schedule.
#include "async/clocked_adversary.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/registry.hpp"
#include "common/knowledge_set.hpp"

namespace dyngossip {
namespace {

std::unique_ptr<Adversary> make_static(std::size_t n) {
  return build_adversary(AdversarySpec{"static", {}}, n, /*seed=*/5);
}

TEST(ClockedAdversary, RoundOfMapsWindowsHalfOpen) {
  std::unique_ptr<Adversary> inner = make_static(8);
  const ClockedAdversary clocked(*inner, /*sigma=*/2.0);
  EXPECT_EQ(clocked.round_of(0.0), 1u);
  EXPECT_EQ(clocked.round_of(1.999), 1u);
  EXPECT_EQ(clocked.round_of(2.0), 2u);   // window boundary belongs to r+1
  EXPECT_EQ(clocked.round_of(5.0), 3u);
  EXPECT_DOUBLE_EQ(clocked.window_end(1), 2.0);
  EXPECT_DOUBLE_EQ(clocked.window_end(3), 6.0);
}

TEST(ClockedAdversary, SigmaScalesTheMapping) {
  std::unique_ptr<Adversary> inner = make_static(8);
  const ClockedAdversary clocked(*inner, /*sigma=*/0.25);
  EXPECT_EQ(clocked.round_of(0.0), 1u);
  EXPECT_EQ(clocked.round_of(0.30), 2u);
  EXPECT_EQ(clocked.round_of(1.0), 5u);
  EXPECT_DOUBLE_EQ(clocked.window_end(4), 1.0);
}

TEST(ClockedAdversary, NextRoundConsumesTheScheduleOneRoundAtATime) {
  const std::size_t n = 12;
  std::unique_ptr<Adversary> inner = make_static(n);
  ClockedAdversary clocked(*inner, /*sigma=*/1.0);
  EXPECT_EQ(clocked.num_nodes(), n);
  EXPECT_EQ(clocked.round(), 0u);
  const std::vector<KnowledgeSet> knowledge(n, KnowledgeSet(4));
  for (Round r = 1; r <= 5; ++r) {
    const Graph& g = clocked.next_round(knowledge);
    EXPECT_EQ(clocked.round(), r);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_GT(g.num_edges(), 0u);
  }
}

TEST(ClockedAdversary, DynamicScheduleSeesEveryRound) {
  // A churn schedule is incremental: skipping rounds would desynchronize
  // it.  The adapter must deliver round r exactly once, in order.
  const std::size_t n = 16;
  AdversarySpec spec{"churn", {}};
  spec.set("edges", static_cast<std::uint64_t>(3 * n))
      .set("churn", std::uint64_t{2});
  std::unique_ptr<Adversary> inner = build_adversary(spec, n, /*seed=*/9);
  ClockedAdversary clocked(*inner, /*sigma=*/1.0);
  const std::vector<KnowledgeSet> knowledge(n, KnowledgeSet(4));
  for (Round r = 1; r <= 8; ++r) {
    const Graph& g = clocked.next_round(knowledge);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(clocked.round(), r);
  }
}

}  // namespace
}  // namespace dyngossip
