// AsyncEngine: completion on static and dynamic schedules, bit-identical
// payloads at 1/2/8 threads, the status ladder (round cap, timeout,
// all-down, stalled), fault-plane integration, and probe reconciliation.
#include "async/async_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/registry.hpp"
#include "algo/registry.hpp"
#include "cache/result_cache.hpp"
#include "fault/fault_plan.hpp"
#include "sim/runner/thread_pool.hpp"
#include "telemetry/round_probe.hpp"

namespace dyngossip {
namespace {

std::unique_ptr<Adversary> make_static(std::size_t n, std::uint64_t seed = 5) {
  return build_adversary(AdversarySpec{"static", {}}, n, seed);
}

/// Single source: node 0 holds all k tokens.
std::vector<KnowledgeSet> single_source_knowledge(std::size_t n,
                                                  std::size_t k) {
  std::vector<KnowledgeSet> knowledge(n, KnowledgeSet(k));
  knowledge[0].set_all();
  return knowledge;
}

TEST(AsyncEngine, CompletesOnAStaticSchedule) {
  const std::size_t n = 16;
  const std::size_t k = 4;
  std::unique_ptr<Adversary> adversary = make_static(n);
  AsyncEngineOptions opts;
  opts.seed = 7;
  AsyncEngine engine(*adversary, single_source_knowledge(n, k), k, opts);
  const RunMetrics m = engine.run(100'000);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.status, RunStatus::kCompleted);
  EXPECT_DOUBLE_EQ(m.coverage, 1.0);
  EXPECT_GT(m.virtual_steps, 0u);
  EXPECT_GT(m.rounds, 0u);
  EXPECT_GT(m.unicast.token, 0u);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    EXPECT_TRUE(engine.knowledge_of(v).all()) << v;
  }
}

TEST(AsyncEngine, PushPullCompletesFasterThanPushOnTheSameClock) {
  const std::size_t n = 24;
  const std::size_t k = 6;
  RunMetrics push;
  RunMetrics push_pull;
  for (const bool pp : {false, true}) {
    std::unique_ptr<Adversary> adversary = make_static(n);
    AsyncEngineOptions opts;
    opts.seed = 11;
    opts.push_pull = pp;
    AsyncEngine engine(*adversary, single_source_knowledge(n, k), k, opts);
    (pp ? push_pull : push) = engine.run(1'000'000);
  }
  ASSERT_TRUE(push.completed);
  ASSERT_TRUE(push_pull.completed);
  // Identical clocks (same seed), so push-pull — two token legs per
  // contact — needs no more activations than push-only.
  EXPECT_LE(push_pull.virtual_steps, push.virtual_steps);
}

TEST(AsyncEngine, EventOrderIsBitIdenticalAtOneTwoAndEightThreads) {
  // The determinism contract of the async plane: the engine is serial by
  // design and every decision is position-keyed, so the pool handed to the
  // algorithm context must not change one bit of the payload.  Dispatch
  // through run_algo — the same path scenarios and the CLI use.
  const std::size_t n = 24;
  const std::uint32_t k = 6;
  std::uint64_t checksum1 = 0;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    AdversarySpec adv{"churn", {}};
    adv.set("edges", static_cast<std::uint64_t>(3 * n))
        .set("churn", std::uint64_t{3});
    std::unique_ptr<Adversary> adversary = build_adversary(adv, n, 21);
    AlgoBuildContext ctx;
    ctx.n = n;
    ctx.k = k;
    ctx.sources = 1;
    ctx.seed = 21;
    ctx.engine_pool = &pool;
    const RunResult r =
        run_algo(AlgoSpec::parse("async_push_pull"), ctx, *adversary);
    const std::uint64_t checksum =
        make_cached_result(n, ctx.k_realized, r).checksum;
    if (threads == 1) {
      checksum1 = checksum;
      EXPECT_TRUE(r.completed);
    } else {
      EXPECT_EQ(checksum, checksum1) << "threads=" << threads;
    }
  }
}

TEST(AsyncEngine, HorizonCapReportsRoundCap) {
  // One σ-window at rate 1 holds ~n activations — nowhere near enough to
  // spread k tokens — so a 1-round horizon must cap, not complete.
  const std::size_t n = 16;
  const std::size_t k = 8;
  std::unique_ptr<Adversary> adversary = make_static(n);
  AsyncEngineOptions opts;
  opts.seed = 3;
  AsyncEngine engine(*adversary, single_source_knowledge(n, k), k, opts);
  const RunMetrics m = engine.run(1);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.status, RunStatus::kRoundCap);
  EXPECT_LE(m.rounds, 1u);
  EXPECT_LT(m.coverage, 1.0);
}

TEST(AsyncEngine, WallClockWatchdogReportsTimeout) {
  // An impossibly small budget trips the per-64-events watchdog long
  // before this run (n·k is far beyond 64 deliveries) can complete.
  const std::size_t n = 32;
  const std::size_t k = 16;
  std::unique_ptr<Adversary> adversary = make_static(n);
  AsyncEngineOptions opts;
  opts.seed = 9;
  opts.run_timeout_seconds = 1e-9;
  AsyncEngine engine(*adversary, single_source_knowledge(n, k), k, opts);
  const RunMetrics m = engine.run(1'000'000);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.status, RunStatus::kTimeout);
}

TEST(AsyncEngine, AllCrashedWithoutRecoveryReportsAllDown) {
  const std::size_t n = 8;
  const std::size_t k = 2;
  std::unique_ptr<Adversary> adversary = make_static(n);
  FaultPlan plan(FaultSpec::parse("fault:crash=1"), n, /*trial_seed=*/4);
  AsyncEngineOptions opts;
  opts.seed = 4;
  opts.faults = &plan;
  AsyncEngine engine(*adversary, single_source_knowledge(n, k), k, opts);
  const RunMetrics m = engine.run(10'000);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.status, RunStatus::kAllDown);
}

TEST(AsyncEngine, FullLossStalls) {
  const std::size_t n = 8;
  const std::size_t k = 2;
  std::unique_ptr<Adversary> adversary = make_static(n);
  FaultPlan plan(FaultSpec::parse("fault:drop=1"), n, /*trial_seed=*/6);
  AsyncEngineOptions opts;
  opts.seed = 6;
  opts.faults = &plan;
  AsyncEngine engine(*adversary, single_source_knowledge(n, k), k, opts);
  const RunMetrics m = engine.run(10'000'000);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.status, RunStatus::kStalled);
  // Senders still paid for every transmitted token (Definition 1.1).
  EXPECT_GT(m.unicast.token, 0u);
  EXPECT_EQ(m.learnings, 0u);
}

TEST(AsyncEngine, ProbeSeriesReconcilesWithRunTotals) {
  const std::size_t n = 16;
  const std::size_t k = 4;
  std::unique_ptr<Adversary> adversary = make_static(n);
  RoundProbe probe(/*every=*/3);  // stride > 1 exercises delta accumulation
  AsyncEngineOptions opts;
  opts.seed = 13;
  opts.telemetry.probe = &probe;
  AsyncEngine engine(*adversary, single_source_knowledge(n, k), k, opts);
  const RunMetrics m = engine.run(100'000);
  ASSERT_TRUE(m.completed);
  ASSERT_FALSE(probe.samples().empty());
  std::uint64_t learned = 0;
  std::uint64_t sent = 0;
  for (const RoundProbeSample& s : probe.samples()) {
    learned += s.learned;
    sent += s.sent;
  }
  EXPECT_EQ(learned, m.learnings);
  EXPECT_EQ(sent, m.total_messages());
  EXPECT_DOUBLE_EQ(probe.samples().back().coverage, 1.0);
}

TEST(AsyncEngine, ProbeOnAndOffRunsDeliverIdenticalResults) {
  // The observer axis must never perturb the run.
  const std::size_t n = 16;
  const std::size_t k = 4;
  RunMetrics plain;
  RunMetrics probed;
  for (const bool with_probe : {false, true}) {
    std::unique_ptr<Adversary> adversary = make_static(n);
    RoundProbe probe;
    AsyncEngineOptions opts;
    opts.seed = 17;
    if (with_probe) opts.telemetry.probe = &probe;
    AsyncEngine engine(*adversary, single_source_knowledge(n, k), k, opts);
    (with_probe ? probed : plain) = engine.run(100'000);
  }
  EXPECT_EQ(plain.unicast.token, probed.unicast.token);
  EXPECT_EQ(plain.learnings, probed.learnings);
  EXPECT_EQ(plain.rounds, probed.rounds);
  EXPECT_EQ(plain.virtual_steps, probed.virtual_steps);
  EXPECT_EQ(plain.status, probed.status);
}

TEST(AsyncEngine, InitiallyCompleteKnowledgeFinishesWithoutEvents) {
  const std::size_t n = 8;
  const std::size_t k = 3;
  std::unique_ptr<Adversary> adversary = make_static(n);
  std::vector<KnowledgeSet> knowledge(n, KnowledgeSet(k));
  for (KnowledgeSet& kn : knowledge) kn.set_all();
  AsyncEngine engine(*adversary, std::move(knowledge), k, {});
  const RunMetrics m = engine.run(1'000);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.status, RunStatus::kCompleted);
  EXPECT_EQ(m.virtual_steps, 0u);
  EXPECT_EQ(m.rounds, 0u);
}

}  // namespace
}  // namespace dyngossip
