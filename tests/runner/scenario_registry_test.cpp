// Tests for the scenario registry and the scenario catalogue.
#include "sim/runner/scenario_registry.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "scenarios/scenarios.hpp"

namespace dyngossip {
namespace {

Scenario dummy(const std::string& name) {
  return {name, "a dummy scenario", {},
          [name](const ScenarioContext&) { return ScenarioResult{name, {}}; }};
}

TEST(ScenarioRegistry, AddAndFind) {
  ScenarioRegistry registry;
  registry.add(dummy("alpha"));
  registry.add(dummy("beta"));
  ASSERT_NE(registry.find("alpha"), nullptr);
  EXPECT_EQ(registry.find("alpha")->name, "alpha");
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ScenarioRegistry, UnknownLookupReturnsNull) {
  ScenarioRegistry registry;
  registry.add(dummy("alpha"));
  EXPECT_EQ(registry.find("nope"), nullptr);
  EXPECT_EQ(registry.find(""), nullptr);
}

TEST(ScenarioRegistry, RejectsDuplicateNames) {
  ScenarioRegistry registry;
  registry.add(dummy("alpha"));
  EXPECT_THROW(registry.add(dummy("alpha")), std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);  // the original registration survives
}

TEST(ScenarioRegistry, RejectsEmptyNameAndMissingRun) {
  ScenarioRegistry registry;
  EXPECT_THROW(registry.add(dummy("")), std::invalid_argument);
  Scenario no_run{"gamma", "no run fn", {}, nullptr};
  EXPECT_THROW(registry.add(std::move(no_run)), std::invalid_argument);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ScenarioRegistry, ListIsNameSorted) {
  ScenarioRegistry registry;
  registry.add(dummy("zeta"));
  registry.add(dummy("alpha"));
  registry.add(dummy("mid"));
  const auto scenarios = registry.list();
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_EQ(scenarios[0]->name, "alpha");
  EXPECT_EQ(scenarios[1]->name, "mid");
  EXPECT_EQ(scenarios[2]->name, "zeta");
}

TEST(ScenarioCatalogue, RegistersSixteenScenariosIdempotently) {
  ScenarioRegistry registry;
  register_all_scenarios(registry);
  EXPECT_EQ(registry.size(), 16u);
  register_all_scenarios(registry);  // second call must be a no-op, not a throw
  EXPECT_EQ(registry.size(), 16u);
  for (const char* name :
       {"single_source", "single_source_time", "multi_source", "oblivious_funnel",
        "table1", "lb_broadcast", "fig1_free_edges", "static_baseline",
        "upper_bounds", "leader_election", "ablations", "trace_replay",
        "sigma_stable_churn", "algo_matrix", "fault_sweep", "sync_vs_async"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

TEST(ScenarioContext, ParamAccessorsAndTrialsDefault) {
  ThreadPool pool(1);
  const ScenarioContext ctx(pool, 0, true,
                            {{"n", "64"}, {"rate", "0.5"}, {"flag", "true"}});
  EXPECT_EQ(ctx.trials_or(7), 7u);
  EXPECT_TRUE(ctx.quick());
  EXPECT_EQ(ctx.get_int("n", 1), 64);
  EXPECT_DOUBLE_EQ(ctx.get_double("rate", 0.0), 0.5);
  EXPECT_TRUE(ctx.get_bool("flag", false));
  EXPECT_EQ(ctx.get_int("missing", 42), 42);
  EXPECT_EQ(ctx.get_string("missing", "d"), "d");
  const ScenarioContext explicit_trials(pool, 5, false);
  EXPECT_EQ(explicit_trials.trials_or(7), 5u);
}

}  // namespace
}  // namespace dyngossip
