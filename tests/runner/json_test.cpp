// Tests for the minimal JSON value type.
#include "sim/runner/json.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

TEST(Json, BuildAndDumpCompact) {
  JsonValue doc = JsonValue::object();
  doc.set("name", JsonValue::str("table1"));
  doc.set("trials", JsonValue::number(2));
  doc.set("quick", JsonValue::boolean(true));
  JsonValue rows = JsonValue::array();
  rows.push(JsonValue::str("a"));
  rows.push(JsonValue::number(1.5));
  rows.push(JsonValue::null());
  doc.set("rows", std::move(rows));
  EXPECT_EQ(doc.dump(),
            "{\"name\":\"table1\",\"trials\":2,\"quick\":true,"
            "\"rows\":[\"a\",1.5,null]}");
}

TEST(Json, ParseRoundTripsDump) {
  const std::string text =
      "{\"a\":[1,2.25,-300],\"b\":{\"nested\":\"x\"},\"c\":false,\"d\":null}";
  const JsonValue doc = JsonValue::parse(text);
  EXPECT_EQ(doc.dump(), text);
  // Scientific notation is accepted and canonicalized.
  EXPECT_EQ(JsonValue::parse("[-3e2]").dump(), "[-300]");
}

TEST(Json, ObjectOrderIsPreserved) {
  const JsonValue doc = JsonValue::parse("{\"z\":1,\"a\":2,\"m\":3}");
  const auto& members = doc.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, StringEscapes) {
  JsonValue v = JsonValue::str("line\n\"quoted\"\tand \\ back");
  const std::string dumped = v.dump();
  EXPECT_EQ(dumped, "\"line\\n\\\"quoted\\\"\\tand \\\\ back\"");
  EXPECT_EQ(JsonValue::parse(dumped).as_string(), v.as_string());
}

TEST(Json, UnicodeEscapeDecodesToUtf8) {
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(JsonValue::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é
}

TEST(Json, NumberRoundTripIsExact) {
  for (const double v : {0.0, -1.5, 1.0 / 3.0, 1e-300, 12345678901234.5}) {
    const JsonValue parsed = JsonValue::parse(JsonValue::number(v).dump());
    EXPECT_EQ(parsed.as_number(), v);
  }
}

TEST(Json, FindOnObjects) {
  const JsonValue doc = JsonValue::parse("{\"a\":1,\"b\":\"x\"}");
  ASSERT_NE(doc.find("b"), nullptr);
  EXPECT_EQ(doc.find("b")->as_string(), "x");
  EXPECT_EQ(doc.find("zz"), nullptr);
  EXPECT_EQ(JsonValue::number(1).find("a"), nullptr);
}

TEST(Json, MalformedInputThrows) {
  for (const char* bad : {"", "{", "[1,", "{\"a\"}", "tru", "\"unterminated",
                          "{\"a\":1} trailing", "[1 2]", "nan"}) {
    EXPECT_THROW((void)JsonValue::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, PrettyDumpParsesBack) {
  JsonValue doc = JsonValue::object();
  doc.set("xs", JsonValue::array());
  doc.set("s", JsonValue::str("v"));
  const JsonValue reparsed = JsonValue::parse(doc.dump(2));
  EXPECT_EQ(reparsed.dump(), doc.dump());
}

}  // namespace
}  // namespace dyngossip
