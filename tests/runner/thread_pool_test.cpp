// Tests for the fixed thread pool and the fork/join primitives.
#include "sim/runner/thread_pool.hpp"

#include <atomic>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "sim/runner/parallel.hpp"

namespace dyngossip {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelFor, MoreWorkersThanWork) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  parallel_for(pool, 3, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 3) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool survives a failed parallel_for.
  std::atomic<int> counter{0};
  parallel_for(pool, 5, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 5);
}

TEST(JobBatch, RunsAllJobs) {
  ThreadPool pool(2);
  std::vector<int> slots(20, 0);
  JobBatch batch;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    batch.add([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
  }
  EXPECT_EQ(batch.size(), 20u);
  batch.run(pool);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
  }
}

}  // namespace
}  // namespace dyngossip
