// Bit-reproducibility of parallel_sweep against the serial sweep_seeds.
#include "sim/runner/parallel_sweep.hpp"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

namespace dyngossip {
namespace {

// Exact (bitwise) equality on every Summary field.  The checksum alone is
// the load-bearing check — it folds every raw sample in trial order — and
// the statistic fields double-check Summary::of itself.
void expect_identical(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.p99, b.p99);
}

TEST(DeriveSweepSeeds, MatchesSweepSeedsSeedStream) {
  std::vector<std::uint64_t> from_serial;
  (void)sweep_seeds(6, 99, [&](std::uint64_t seed) {
    from_serial.push_back(seed);
    return 0.0;
  });
  EXPECT_EQ(derive_sweep_seeds(6, 99), from_serial);
}

TEST(ParallelSweep, BitIdenticalToSerialAt1_2_8Threads) {
  // Irrational-ish samples so that any reordering of the fold would show up
  // in the low bits of mean/stddev.
  const auto measure = [](std::uint64_t seed) {
    return std::sin(static_cast<double>(seed % 100'000)) * 1e6 +
           std::sqrt(static_cast<double>(seed % 997));
  };
  const std::size_t trials = 37;  // deliberately not a multiple of any pool size
  const Summary serial = sweep_seeds(trials, 0xfeedface, measure);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const Summary parallel = parallel_sweep(trials, 0xfeedface, measure, threads);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelSweep, BitIdenticalOnARealSimulationWorkload) {
  const std::size_t n = 16;
  const auto k = static_cast<std::uint32_t>(2 * n);
  const auto measure = [n, k](std::uint64_t seed) {
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 3 * n;
    cc.churn_per_round = 2;
    cc.sigma = 3;
    cc.seed = seed;
    ChurnAdversary adversary(cc);
    const RunResult r =
        run_single_source(n, k, 0, adversary, static_cast<Round>(100 * n * k));
    return static_cast<double>(r.metrics.unicast.total());
  };
  const Summary serial = sweep_seeds(5, 4242, measure);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    expect_identical(serial, parallel_sweep(5, 4242, measure, threads));
  }
}

TEST(ParallelSweep, SharedPoolOverloadMatchesOwningOverload) {
  const auto measure = [](std::uint64_t seed) {
    return static_cast<double>(seed % 1000);
  };
  ThreadPool pool(3);
  expect_identical(parallel_sweep(pool, 9, 7, measure),
                   parallel_sweep(9, 7, measure, 3));
}

TEST(ParallelSweep, SingleTrial) {
  const auto measure = [](std::uint64_t seed) {
    return static_cast<double>(seed & 0xff);
  };
  expect_identical(sweep_seeds(1, 5, measure), parallel_sweep(1, 5, measure, 4));
}

}  // namespace
}  // namespace dyngossip
