// End-to-end tests for the scenario engine: run a real scenario through the
// registry, round-trip the JSON record, and verify thread-count invariance.
#include "sim/runner/emit.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "scenarios/scenarios.hpp"
#include "sim/runner/scenario_registry.hpp"

namespace dyngossip {
namespace {

ScenarioResult run_with_threads(const Scenario& scenario, std::size_t threads,
                                std::size_t trials) {
  ThreadPool pool(threads);
  const ScenarioContext ctx(pool, trials, /*quick=*/true);
  return scenario.run(ctx);
}

TEST(ScenarioRun, JsonRecordRoundTrips) {
  ScenarioRegistry registry;
  register_all_scenarios(registry);
  const Scenario* scenario = registry.find("static_baseline");
  ASSERT_NE(scenario, nullptr);
  const ScenarioResult result = run_with_threads(*scenario, 2, 0);
  ASSERT_FALSE(result.tables.empty());
  EXPECT_FALSE(result.tables[0].rows.empty());

  RunInfo info;
  info.trials = 0;
  info.threads = 2;
  info.quick = true;
  info.elapsed_seconds = 0.125;
  const std::string text = scenario_result_to_json(result, info).dump(2);
  const JsonValue parsed = JsonValue::parse(text);
  const ScenarioResult back = scenario_result_from_json(parsed);
  EXPECT_TRUE(result == back);

  // The volatile metadata survives in the "run" sub-object.
  const JsonValue* run = parsed.find("run");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->find("threads")->as_number(), 2.0);
  EXPECT_EQ(run->find("elapsed_seconds")->as_number(), 0.125);
}

TEST(ScenarioRun, PayloadIsThreadCountInvariant) {
  ScenarioRegistry registry;
  register_all_scenarios(registry);
  // fig1_free_edges is pure analysis (no engine rounds), so it is fast even
  // at a statistically meaningful trial count.
  const Scenario* scenario = registry.find("fig1_free_edges");
  ASSERT_NE(scenario, nullptr);
  const ScenarioResult serial = run_with_threads(*scenario, 1, 8);
  const ScenarioResult parallel2 = run_with_threads(*scenario, 2, 8);
  const ScenarioResult parallel8 = run_with_threads(*scenario, 8, 8);
  EXPECT_TRUE(serial == parallel2);
  EXPECT_TRUE(serial == parallel8);
}

TEST(ScenarioRun, FromJsonRejectsMalformedRecords) {
  // Missing keys and mistyped fields must both throw (never abort).
  for (const char* bad :
       {"{}", "{\"scenario\":\"x\"}", "{\"scenario\":\"x\",\"tables\":3}",
        "{\"scenario\":7,\"tables\":[]}",
        "{\"scenario\":\"x\",\"tables\":[{\"title\":\"t\",\"columns\":[1],"
        "\"rows\":[],\"note\":\"\"}]}"}) {
    EXPECT_THROW((void)scenario_result_from_json(JsonValue::parse(bad)),
                 std::runtime_error)
        << bad;
  }
}

TEST(ScenarioScaleAxis, ParsesAllThreeValuesAndRejectsJunk) {
  ScenarioScale scale = ScenarioScale::kDefault;
  EXPECT_TRUE(parse_scenario_scale("quick", &scale));
  EXPECT_EQ(scale, ScenarioScale::kQuick);
  EXPECT_TRUE(parse_scenario_scale("default", &scale));
  EXPECT_EQ(scale, ScenarioScale::kDefault);
  EXPECT_TRUE(parse_scenario_scale("large", &scale));
  EXPECT_EQ(scale, ScenarioScale::kLarge);
  EXPECT_FALSE(parse_scenario_scale("huge", &scale));
  EXPECT_FALSE(parse_scenario_scale("", &scale));
  EXPECT_EQ(scale, ScenarioScale::kLarge);  // failed parses leave *out alone
}

TEST(ScenarioScaleAxis, ContextExposesScaleAndBackCompatQuickFlag) {
  ThreadPool pool(1);
  const ScenarioContext quick(pool, 0, /*quick=*/true);
  EXPECT_TRUE(quick.quick());
  EXPECT_FALSE(quick.large());
  EXPECT_EQ(quick.scale(), ScenarioScale::kQuick);

  const ScenarioContext deflt(pool, 0, /*quick=*/false);
  EXPECT_EQ(deflt.scale(), ScenarioScale::kDefault);

  const ScenarioContext large(pool, 0, ScenarioScale::kLarge);
  EXPECT_FALSE(large.quick());
  EXPECT_TRUE(large.large());
}

TEST(ScenarioScaleAxis, RunRecordCarriesScaleString) {
  const ScenarioResult result{"toy", {}};
  RunInfo info;
  info.scale = ScenarioScale::kLarge;
  const JsonValue doc = scenario_result_to_json(result, info);
  const JsonValue* run = doc.find("run");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->find("scale")->as_string(), "large");
}

TEST(ScenarioRun, CsvAndTableRenderingsContainEveryCell) {
  ScenarioTable table;
  table.title = "toy";
  table.columns = {"a", "b"};
  table.rows = {{"1", "2"}, {"3", "4"}};
  table.note = "note line";
  const ScenarioResult result{"toy_scenario", {table}};

  std::ostringstream tables_out;
  print_scenario_tables(result, tables_out);
  for (const char* needle : {"toy", "a", "b", "1", "2", "3", "4", "note line"}) {
    EXPECT_NE(tables_out.str().find(needle), std::string::npos) << needle;
  }
  std::ostringstream csv_out;
  print_scenario_csv(result, csv_out);
  EXPECT_NE(csv_out.str().find("a,b"), std::string::npos);
  EXPECT_NE(csv_out.str().find("3,4"), std::string::npos);
}

}  // namespace
}  // namespace dyngossip
