// Tests for the demo registry behind `dyngossip demo`.
#include "sim/runner/demo_registry.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "demos/demos.hpp"

namespace dyngossip {
namespace {

Demo make_demo(const char* name) {
  return {name, "a demo", "[--n=8]", [](const CliArgs&) { return 0; }};
}

TEST(DemoRegistry, AddFindList) {
  DemoRegistry registry;
  registry.add(make_demo("zeta"));
  registry.add(make_demo("alpha"));
  ASSERT_EQ(registry.size(), 2u);
  EXPECT_NE(registry.find("alpha"), nullptr);
  EXPECT_EQ(registry.find("missing"), nullptr);
  const auto listed = registry.list();
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0]->name, "alpha");  // name-sorted
  EXPECT_EQ(listed[1]->name, "zeta");
}

TEST(DemoRegistry, RejectsBadRegistrations) {
  DemoRegistry registry;
  EXPECT_THROW(registry.add({"", "d", "", [](const CliArgs&) { return 0; }}),
               std::invalid_argument);
  EXPECT_THROW(registry.add({"noop", "d", "", nullptr}), std::invalid_argument);
  registry.add(make_demo("dup"));
  EXPECT_THROW(registry.add(make_demo("dup")), std::invalid_argument);
}

TEST(DemoRegistry, RegisterAllDemosInstallsCatalogueIdempotently) {
  DemoRegistry registry;
  register_all_demos(registry);
  const std::size_t installed = registry.size();
  EXPECT_EQ(installed, 6u);  // every former standalone example is a demo now
  for (const char* name :
       {"quickstart", "sensor_flood", "adversarial_showdown", "competitive_budget",
        "learning_curves", "p2p_churn_gossip"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  register_all_demos(registry);  // idempotent
  EXPECT_EQ(registry.size(), installed);
}

}  // namespace
}  // namespace dyngossip
