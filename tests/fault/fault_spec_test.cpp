// Tests for FaultSpec: grammar, strict validation, canonical rendering.
#include "fault/fault_spec.hpp"

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

TEST(FaultSpec, ParsesFullSpec) {
  const FaultSpec s = FaultSpec::parse(
      "fault:drop=0.01,crash=0.0005,recover=0.1,dup=0.002,amnesia=1,seed=7");
  EXPECT_DOUBLE_EQ(s.drop, 0.01);
  EXPECT_DOUBLE_EQ(s.crash, 0.0005);
  EXPECT_DOUBLE_EQ(s.recover, 0.1);
  EXPECT_DOUBLE_EQ(s.dup, 0.002);
  EXPECT_TRUE(s.amnesia);
  EXPECT_TRUE(s.has_seed);
  EXPECT_EQ(s.seed, 7u);
  EXPECT_TRUE(s.active());
}

TEST(FaultSpec, BareParameterListIsFaultShorthand) {
  const FaultSpec s = FaultSpec::parse("drop=0.05,seed=7");
  EXPECT_DOUBLE_EQ(s.drop, 0.05);
  EXPECT_TRUE(s.has_seed);
  EXPECT_EQ(s.seed, 7u);
  // The shorthand and the explicit family parse identically.
  EXPECT_TRUE(s == FaultSpec::parse("fault:drop=0.05,seed=7"));
}

TEST(FaultSpec, ToStringRoundTripsCanonically) {
  const char* canonical = "fault:crash=0.001,drop=0.05,recover=0.1";
  const FaultSpec s = FaultSpec::parse(canonical);
  EXPECT_EQ(s.to_string(), canonical);
  EXPECT_TRUE(FaultSpec::parse(s.to_string()) == s);
  // Keys render sorted regardless of input order; defaults are omitted.
  EXPECT_EQ(FaultSpec::parse("fault:recover=0.1,drop=0.05,crash=0.001").to_string(),
            canonical);
  EXPECT_EQ(FaultSpec::parse("fault:drop=0,amnesia=0").to_string(), "fault");
  EXPECT_EQ(FaultSpec{}.to_string(), "fault");
}

TEST(FaultSpec, AllZeroRatesAreInactive) {
  EXPECT_FALSE(FaultSpec::parse("fault").active());
  EXPECT_FALSE(FaultSpec::parse("fault:drop=0,crash=0").active());
  // recover/amnesia/seed alone never alter a run: nothing crashes.
  EXPECT_FALSE(FaultSpec::parse("fault:recover=0.5,amnesia=1,seed=3").active());
  EXPECT_TRUE(FaultSpec::parse("fault:dup=0.001").active());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultSpec::parse("fault:bogus=1"), FaultSpecError);
  EXPECT_THROW(FaultSpec::parse("faults:drop=0.1"), FaultSpecError);
  EXPECT_THROW(FaultSpec::parse("fault:drop=1.5"), FaultSpecError);
  EXPECT_THROW(FaultSpec::parse("fault:drop=-0.1"), FaultSpecError);
  EXPECT_THROW(FaultSpec::parse("fault:drop=abc"), FaultSpecError);
  EXPECT_THROW(FaultSpec::parse("fault:amnesia=2"), FaultSpecError);
  // drop + dup is one delivery roll; the probabilities cannot exceed 1.
  EXPECT_THROW(FaultSpec::parse("fault:drop=0.7,dup=0.4"), FaultSpecError);
  EXPECT_THROW(FaultSpec::parse(""), FaultSpecError);
}

TEST(FaultSpec, FamilyDocListsEveryKey) {
  const FaultFamilyDoc doc = fault_family_doc();
  EXPECT_EQ(doc.name, "fault");
  ASSERT_NE(doc.keys, nullptr);
  EXPECT_EQ(doc.keys, &fault_spec_keys());
  // The documented example must itself parse (the listing is executable).
  EXPECT_NO_THROW(FaultSpec::parse(doc.example));
  bool saw_drop = false;
  for (const SpecKey& key : *doc.keys) saw_drop = saw_drop || key.key == "drop";
  EXPECT_TRUE(saw_drop);
}

}  // namespace
}  // namespace dyngossip
