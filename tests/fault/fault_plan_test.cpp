// Tests for FaultPlan: position-keyed determinism, fate fractions, and the
// liveness history contract.
#include "fault/fault_plan.hpp"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

FaultSpec lossy_spec() {
  FaultSpec spec;
  spec.drop = 0.3;
  spec.dup = 0.1;
  spec.crash = 0.02;
  spec.recover = 0.2;
  return spec;
}

TEST(FaultPlan, DecisionsArePositionKeyedNotOrderKeyed) {
  const std::size_t n = 32;
  FaultPlan forward(lossy_spec(), n, 99);
  FaultPlan backward(lossy_spec(), n, 99);
  forward.begin_round(1);
  backward.begin_round(1);

  // Querying the same positions in opposite orders must agree everywhere:
  // no decision consumes stream state.
  std::vector<FaultPlan::Fate> a, b;
  for (std::size_t arc = 0; arc < 200; ++arc) {
    for (std::uint32_t seq = 0; seq < 3; ++seq) {
      a.push_back(forward.delivery_fate(1, arc, seq));
    }
  }
  for (std::size_t arc = 200; arc-- > 0;) {
    for (std::uint32_t seq = 3; seq-- > 0;) {
      b.push_back(backward.delivery_fate(1, arc, seq));
    }
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[a.size() - 1 - i]) << i;
  }
  // Re-querying is idempotent, and distinct seq values roll independently.
  EXPECT_EQ(forward.delivery_fate(1, 5, 0), forward.delivery_fate(1, 5, 0));
}

TEST(FaultPlan, SpecSeedOverridesTrialSeed) {
  FaultSpec pinned = lossy_spec();
  pinned.has_seed = true;
  pinned.seed = 1234;
  FaultPlan p1(pinned, 16, 7);
  FaultPlan p2(pinned, 16, 8888);  // different trial seed: must not matter
  FaultPlan p3(lossy_spec(), 16, 7);
  p1.begin_round(1);
  p2.begin_round(1);
  p3.begin_round(1);
  bool any_differs_from_unpinned = false;
  for (std::size_t arc = 0; arc < 400; ++arc) {
    EXPECT_EQ(p1.delivery_fate(1, arc, 0), p2.delivery_fate(1, arc, 0));
    any_differs_from_unpinned = any_differs_from_unpinned ||
                                p1.delivery_fate(1, arc, 0) !=
                                    p3.delivery_fate(1, arc, 0);
  }
  EXPECT_TRUE(any_differs_from_unpinned);  // the pin actually reseeds
}

TEST(FaultPlan, FateFractionsTrackTheSpec) {
  FaultSpec spec;
  spec.drop = 0.3;
  spec.dup = 0.1;
  FaultPlan plan(spec, 8, 5);
  plan.begin_round(1);
  std::size_t drops = 0, dups = 0;
  const std::size_t total = 40'000;
  for (std::size_t arc = 0; arc < total; ++arc) {
    const FaultPlan::Fate fate = plan.delivery_fate(1, arc, 0);
    drops += fate == FaultPlan::Fate::kDrop ? 1 : 0;
    dups += fate == FaultPlan::Fate::kDuplicate ? 1 : 0;
  }
  // ±2% absolute: loose enough to be seed-stable, tight enough to catch a
  // swapped threshold or a mis-scaled uniform.
  EXPECT_NEAR(static_cast<double>(drops) / total, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(dups) / total, 0.1, 0.02);
}

TEST(FaultPlan, LivenessHistoryIsContinuousAcrossGaps) {
  // A phase-2 engine that starts at round R must see the same liveness mask
  // as an engine that stepped every round: begin_round rolls all gap rounds.
  const std::size_t n = 64;
  FaultPlan stepped(lossy_spec(), n, 11);
  for (Round r = 1; r <= 40; ++r) stepped.begin_round(r);
  FaultPlan jumped(lossy_spec(), n, 11);
  jumped.begin_round(40);
  EXPECT_EQ(stepped.live_count(), jumped.live_count());
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(stepped.is_live(v), jumped.is_live(v)) << v;
  }
}

TEST(FaultPlan, CertainCrashWithoutRecoveryIsTerminal) {
  FaultSpec spec;
  spec.crash = 1.0;
  FaultPlan plan(spec, 16, 3);
  EXPECT_EQ(plan.live_count(), 16u);
  plan.begin_round(1);
  EXPECT_EQ(plan.live_count(), 0u);
  EXPECT_EQ(plan.crashed_this_round().size(), 16u);
  EXPECT_FALSE(plan.can_recover());
  plan.begin_round(2);
  EXPECT_EQ(plan.live_count(), 0u);
  EXPECT_TRUE(plan.crashed_this_round().empty());  // nobody left to crash
}

TEST(FaultPlan, CertainRecoveryRevivesNextRound) {
  FaultSpec spec;
  spec.crash = 1.0;
  spec.recover = 1.0;
  FaultPlan plan(spec, 8, 3);
  plan.begin_round(1);
  EXPECT_EQ(plan.live_count(), 0u);  // everyone crashes at round start
  plan.begin_round(2);
  // One roll per node per round, chosen by its round-start state: a node
  // down at round start recovers and is NOT re-crashed in the same round.
  EXPECT_EQ(plan.live_count(), 8u);
  EXPECT_TRUE(plan.can_recover());
  plan.begin_round(3);  // ...and the now-live nodes all crash again
  EXPECT_EQ(plan.live_count(), 0u);
}

TEST(FaultPlan, InactivePlanKeepsEveryoneLive) {
  FaultPlan plan(FaultSpec{}, 8, 1);
  EXPECT_FALSE(plan.active());
  EXPECT_FALSE(plan.has_delivery_faults());
  plan.begin_round(1);
  plan.begin_round(2);
  EXPECT_EQ(plan.live_count(), 8u);
  for (NodeId v = 0; v < 8; ++v) EXPECT_TRUE(plan.is_live(v));
}

}  // namespace
}  // namespace dyngossip
