// Tests for Multi-Source-Unicast (Section 3.2.1).
#include "core/multi_source.hpp"

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"
#include "sim/bounds.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

TokenSpacePtr spread_sources(std::size_t n, std::size_t s, std::uint32_t per_source) {
  std::vector<TokenSpace::SourceSpec> specs;
  for (std::size_t i = 0; i < s; ++i) {
    specs.push_back({static_cast<NodeId>(i * n / s), per_source});
  }
  return std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
}

TEST(MultiSource, CompletesOnStaticCycle) {
  constexpr std::size_t n = 10;
  const auto space = spread_sources(n, 3, 4);
  StaticAdversary adversary(cycle_graph(n));
  const RunResult r = run_multi_source(n, space, adversary, 100'000);
  EXPECT_TRUE(r.completed);
  const std::uint64_t k = space->total_tokens();
  EXPECT_EQ(r.metrics.learnings, (n - 1) * k);  // each source holds its own
  EXPECT_EQ(r.metrics.duplicate_token_deliveries, 0u);
  EXPECT_EQ(r.metrics.unicast.token, (n - 1) * k);
}

TEST(MultiSource, SingleSourceSpecialCaseMatchesAlgorithm1Costs) {
  // With s = 1 the multi-source algorithm degenerates to Algorithm 1: token
  // and request counts must coincide exactly on the same adversary schedule.
  constexpr std::size_t n = 12;
  constexpr std::uint32_t k = 9;
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 30;
  cc.churn_per_round = 4;
  cc.sigma = 3;
  cc.seed = 21;

  ChurnAdversary a1(cc);
  const RunResult single = run_single_source(n, k, 0, a1, 100'000);
  ChurnAdversary a2(cc);  // identical committed schedule
  const auto space = std::make_shared<TokenSpace>(TokenSpace::single_source(0, k));
  const RunResult multi = run_multi_source(n, space, a2, 100'000);

  ASSERT_TRUE(single.completed);
  ASSERT_TRUE(multi.completed);
  EXPECT_EQ(single.metrics.unicast.token, multi.metrics.unicast.token);
  EXPECT_EQ(single.metrics.unicast.request, multi.metrics.unicast.request);
  EXPECT_EQ(single.metrics.unicast.completeness, multi.metrics.unicast.completeness);
  EXPECT_EQ(single.rounds, multi.rounds);
}

TEST(MultiSource, CompetitiveResidualWithinTheorem35) {
  constexpr std::size_t n = 16;
  const std::size_t s = 4;
  const auto space = spread_sources(n, s, 6);
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 40;
  cc.churn_per_round = 6;
  cc.seed = 23;
  ChurnAdversary adversary(cc);
  const RunResult r = run_multi_source(n, space, adversary, 200'000);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.metrics.competitive_residual(1.0),
            4.0 * bounds::multi_source_messages(n, space->total_tokens(), s));
  EXPECT_LE(r.metrics.unicast.request,
            static_cast<std::uint64_t>(n) * space->total_tokens() +
                r.metrics.deletions);
}

TEST(MultiSource, RoundBoundOnThreeStableGraphs) {
  // Theorem 3.6: O(nk) rounds under 3-edge stability.
  constexpr std::size_t n = 12;
  const auto space = spread_sources(n, 3, 4);
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 30;
  cc.churn_per_round = 4;
  cc.sigma = 3;
  cc.seed = 25;
  ChurnAdversary adversary(cc);
  const RunResult r = run_multi_source(n, space, adversary, 200'000);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.rounds, 3ull * n * space->total_tokens());
}

TEST(MultiSource, MinimumSourceDisseminatesFirst) {
  // The priority rule serializes sources by ID: the first source's tokens
  // are globally disseminated no later than the last source's.
  constexpr std::size_t n = 12;
  const auto space = spread_sources(n, 3, 5);
  StaticAdversary adversary(complete_graph(n));
  MultiSourceConfig cfg{n, space};
  UnicastEngine engine(MultiSourceNode::make_all(cfg), adversary,
                       space->initial_knowledge(n), space->total_tokens());
  UnicastEngineOptions opts;  // (defaults)
  Round first_done = 0, last_done = 0;
  while (!engine.all_complete() && engine.round() < 100'000) {
    engine.step();
    auto all_have = [&](std::size_t src) {
      for (NodeId v = 0; v < n; ++v) {
        for (const TokenId t : space->tokens_of(src)) {
          if (!engine.knowledge_of(v).test(t)) return false;
        }
      }
      return true;
    };
    if (first_done == 0 && all_have(0)) first_done = engine.round();
    if (last_done == 0 && all_have(space->num_sources() - 1)) {
      last_done = engine.round();
    }
  }
  ASSERT_TRUE(engine.all_complete());
  EXPECT_LE(first_done, last_done);
}

TEST(MultiSource, EveryNodeASource) {
  // n-gossip: one token per node (the open-problem regime of Section 4).
  constexpr std::size_t n = 10;
  std::vector<TokenSpace::SourceSpec> specs;
  for (std::size_t v = 0; v < n; ++v) specs.push_back({static_cast<NodeId>(v), 1});
  const auto space = std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 24;
  cc.churn_per_round = 3;
  cc.sigma = 3;
  cc.seed = 27;
  ChurnAdversary adversary(cc);
  const RunResult r = run_multi_source(n, space, adversary, 200'000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.metrics.learnings, (n - 1) * n);
}

TEST(MultiSource, AnnouncementThrottleOnePerEdgePerRound) {
  // Task 1 sends at most one completeness announcement per edge per round:
  // with s sources and a static star, the center receives at most
  // (n-1) announcements per round.
  constexpr std::size_t n = 8;
  const auto space = spread_sources(n, 4, 2);
  StaticAdversary adversary(star_graph(n, 0));
  MultiSourceConfig cfg{n, space};
  UnicastEngine engine(MultiSourceNode::make_all(cfg), adversary,
                       space->initial_knowledge(n), space->total_tokens());
  std::uint64_t prev_completeness = 0;
  for (int i = 0; i < 30 && !engine.all_complete(); ++i) {
    engine.step();
    const std::uint64_t now = engine.metrics().unicast.completeness;
    // Global per-round announcement budget: one per directed edge.
    EXPECT_LE(now - prev_completeness, 2 * adversary.num_nodes() - 2);
    prev_completeness = now;
  }
}

}  // namespace
}  // namespace dyngossip
