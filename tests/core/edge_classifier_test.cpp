// Tests for the new/idle/contributive edge classification (Section 3.1).
#include "core/knowledge.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

TEST(EdgeClassifier, EdgeIsNewForExactlyTwoRounds) {
  EdgeClassifier c;
  const std::vector<NodeId> with{5};
  c.begin_round(1, with);
  EXPECT_EQ(c.classify(5), EdgeClass::kNew);  // inserted in round 1
  c.begin_round(2, with);
  EXPECT_EQ(c.classify(5), EdgeClass::kNew);  // inserted in round r-1
  c.begin_round(3, with);
  EXPECT_EQ(c.classify(5), EdgeClass::kIdle);  // no contribution yet
}

TEST(EdgeClassifier, LearningMakesContributive) {
  EdgeClassifier c;
  const std::vector<NodeId> with{2};
  c.begin_round(1, with);
  c.begin_round(2, with);
  c.note_learning_over(2);  // token learned over the edge at end of round 2
  c.begin_round(3, with);
  EXPECT_EQ(c.classify(2), EdgeClass::kContributive);
  c.begin_round(4, with);
  EXPECT_EQ(c.classify(2), EdgeClass::kContributive);  // stays contributive
}

TEST(EdgeClassifier, InFlightTokenCountsAsContribution) {
  EdgeClassifier c;
  const std::vector<NodeId> with{2};
  c.begin_round(1, with);
  c.begin_round(2, with);
  c.begin_round(3, with);
  EXPECT_EQ(c.classify(2, /*token_arriving_now=*/false), EdgeClass::kIdle);
  EXPECT_EQ(c.classify(2, /*token_arriving_now=*/true), EdgeClass::kContributive);
}

TEST(EdgeClassifier, ReinsertionResetsToNew) {
  EdgeClassifier c;
  const std::vector<NodeId> with{7};
  const std::vector<NodeId> without{};
  c.begin_round(1, with);
  c.begin_round(2, with);
  c.note_learning_over(7);
  c.begin_round(3, with);
  EXPECT_EQ(c.classify(7), EdgeClass::kContributive);
  c.begin_round(4, without);  // edge removed
  EXPECT_FALSE(c.is_neighbor(7));
  c.begin_round(5, with);  // re-inserted: fresh record, contribution cleared
  EXPECT_EQ(c.classify(7), EdgeClass::kNew);
  c.begin_round(6, with);
  c.begin_round(7, with);
  EXPECT_EQ(c.classify(7), EdgeClass::kIdle);
}

TEST(EdgeClassifier, TracksMultipleNeighborsIndependently) {
  EdgeClassifier c;
  c.begin_round(1, std::vector<NodeId>{1, 2});
  c.begin_round(2, std::vector<NodeId>{1, 2, 3});  // 3 inserted at round 2
  c.note_learning_over(1);
  c.begin_round(3, std::vector<NodeId>{1, 2, 3});
  EXPECT_EQ(c.classify(1), EdgeClass::kContributive);
  EXPECT_EQ(c.classify(2), EdgeClass::kIdle);
  EXPECT_EQ(c.classify(3), EdgeClass::kNew);
  EXPECT_EQ(c.insertion_round(3), 2u);
  EXPECT_EQ(c.insertion_round(1), 1u);
}

TEST(EdgeClassifierDeath, ClassifyUnknownNeighborAborts) {
  EdgeClassifier c;
  c.begin_round(1, std::vector<NodeId>{1});
  EXPECT_DEATH(c.classify(9), "DG_CHECK");
}

TEST(EdgeClassifierDeath, RoundsMustAdvance) {
  EdgeClassifier c;
  c.begin_round(2, std::vector<NodeId>{1});
  EXPECT_DEATH(c.begin_round(2, std::vector<NodeId>{1}), "DG_CHECK");
}

TEST(EdgeClassifier, ClassNames) {
  EXPECT_STREQ(edge_class_name(EdgeClass::kNew), "new");
  EXPECT_STREQ(edge_class_name(EdgeClass::kIdle), "idle");
  EXPECT_STREQ(edge_class_name(EdgeClass::kContributive), "contributive");
}

TEST(EdgeClassifier, SlotApiMatchesNodeApi) {
  EdgeClassifier c;
  const std::vector<NodeId> with{2, 5, 9};
  c.begin_round(1, with);
  c.begin_round(2, with);
  c.note_learning_over(5);
  c.begin_round(3, with);
  for (std::size_t slot = 0; slot < with.size(); ++slot) {
    EXPECT_EQ(c.slot_of(with[slot]), slot);
    EXPECT_EQ(c.classify_slot(slot), c.classify(with[slot]));
  }
  EXPECT_EQ(c.slot_of(4), EdgeClassifier::kNoSlot);
  EXPECT_EQ(c.classify_slot(1), EdgeClass::kContributive);
}

TEST(EdgeClassifier, ReinsertionAmidShiftingNeighborsKeepsRecordsStraight) {
  // The flat storage re-slots every neighbor each round; state must follow
  // the node id, not the slot.  Neighbor 5's record survives while its slot
  // moves (insertions below it), and neighbor 3's record resets when 3
  // vanishes for a round and returns.
  EdgeClassifier c;
  c.begin_round(1, std::vector<NodeId>{3, 5});
  c.begin_round(2, std::vector<NodeId>{3, 5});
  c.note_learning_over(5);
  c.note_learning_over(3);
  // 3 vanishes; 1 and 2 appear below 5 (5's slot shifts from 1 to 2).
  c.begin_round(3, std::vector<NodeId>{1, 2, 5});
  EXPECT_EQ(c.classify(5), EdgeClass::kContributive);  // record followed node 5
  EXPECT_EQ(c.classify(1), EdgeClass::kNew);
  EXPECT_FALSE(c.is_neighbor(3));
  // 3 returns: fresh record (new), contribution history gone.
  c.begin_round(4, std::vector<NodeId>{1, 2, 3, 5});
  EXPECT_EQ(c.classify(3), EdgeClass::kNew);
  EXPECT_EQ(c.insertion_round(3), 4u);
  c.begin_round(5, std::vector<NodeId>{1, 2, 3, 5});
  c.begin_round(6, std::vector<NodeId>{1, 2, 3, 5});
  EXPECT_EQ(c.classify(3), EdgeClass::kIdle);          // no contribution since return
  EXPECT_EQ(c.classify(5), EdgeClass::kContributive);  // old contribution persists
}

TEST(EdgeClassifier, InsertionRoundSurvivesManyMerges) {
  EdgeClassifier c;
  std::vector<NodeId> neighbors{10};
  c.begin_round(1, neighbors);
  for (Round r = 2; r <= 20; ++r) {
    // Churn the surrounding ids every round; 10 stays put.
    neighbors = {static_cast<NodeId>(r % 7), 10,
                 static_cast<NodeId>(20 + (r % 5))};
    std::sort(neighbors.begin(), neighbors.end());
    c.begin_round(r, neighbors);
  }
  EXPECT_EQ(c.insertion_round(10), 1u);
  EXPECT_EQ(c.classify(10), EdgeClass::kIdle);
}

}  // namespace
}  // namespace dyngossip
