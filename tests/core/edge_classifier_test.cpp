// Tests for the new/idle/contributive edge classification (Section 3.1).
#include "core/knowledge.hpp"

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

TEST(EdgeClassifier, EdgeIsNewForExactlyTwoRounds) {
  EdgeClassifier c;
  const std::vector<NodeId> with{5};
  c.begin_round(1, with);
  EXPECT_EQ(c.classify(5), EdgeClass::kNew);  // inserted in round 1
  c.begin_round(2, with);
  EXPECT_EQ(c.classify(5), EdgeClass::kNew);  // inserted in round r-1
  c.begin_round(3, with);
  EXPECT_EQ(c.classify(5), EdgeClass::kIdle);  // no contribution yet
}

TEST(EdgeClassifier, LearningMakesContributive) {
  EdgeClassifier c;
  const std::vector<NodeId> with{2};
  c.begin_round(1, with);
  c.begin_round(2, with);
  c.note_learning_over(2);  // token learned over the edge at end of round 2
  c.begin_round(3, with);
  EXPECT_EQ(c.classify(2), EdgeClass::kContributive);
  c.begin_round(4, with);
  EXPECT_EQ(c.classify(2), EdgeClass::kContributive);  // stays contributive
}

TEST(EdgeClassifier, InFlightTokenCountsAsContribution) {
  EdgeClassifier c;
  const std::vector<NodeId> with{2};
  c.begin_round(1, with);
  c.begin_round(2, with);
  c.begin_round(3, with);
  EXPECT_EQ(c.classify(2, /*token_arriving_now=*/false), EdgeClass::kIdle);
  EXPECT_EQ(c.classify(2, /*token_arriving_now=*/true), EdgeClass::kContributive);
}

TEST(EdgeClassifier, ReinsertionResetsToNew) {
  EdgeClassifier c;
  const std::vector<NodeId> with{7};
  const std::vector<NodeId> without{};
  c.begin_round(1, with);
  c.begin_round(2, with);
  c.note_learning_over(7);
  c.begin_round(3, with);
  EXPECT_EQ(c.classify(7), EdgeClass::kContributive);
  c.begin_round(4, without);  // edge removed
  EXPECT_FALSE(c.is_neighbor(7));
  c.begin_round(5, with);  // re-inserted: fresh record, contribution cleared
  EXPECT_EQ(c.classify(7), EdgeClass::kNew);
  c.begin_round(6, with);
  c.begin_round(7, with);
  EXPECT_EQ(c.classify(7), EdgeClass::kIdle);
}

TEST(EdgeClassifier, TracksMultipleNeighborsIndependently) {
  EdgeClassifier c;
  c.begin_round(1, std::vector<NodeId>{1, 2});
  c.begin_round(2, std::vector<NodeId>{1, 2, 3});  // 3 inserted at round 2
  c.note_learning_over(1);
  c.begin_round(3, std::vector<NodeId>{1, 2, 3});
  EXPECT_EQ(c.classify(1), EdgeClass::kContributive);
  EXPECT_EQ(c.classify(2), EdgeClass::kIdle);
  EXPECT_EQ(c.classify(3), EdgeClass::kNew);
  EXPECT_EQ(c.insertion_round(3), 2u);
  EXPECT_EQ(c.insertion_round(1), 1u);
}

TEST(EdgeClassifierDeath, ClassifyUnknownNeighborAborts) {
  EdgeClassifier c;
  c.begin_round(1, std::vector<NodeId>{1});
  EXPECT_DEATH(c.classify(9), "DG_CHECK");
}

TEST(EdgeClassifierDeath, RoundsMustAdvance) {
  EdgeClassifier c;
  c.begin_round(2, std::vector<NodeId>{1});
  EXPECT_DEATH(c.begin_round(2, std::vector<NodeId>{1}), "DG_CHECK");
}

TEST(EdgeClassifier, ClassNames) {
  EXPECT_STREQ(edge_class_name(EdgeClass::kNew), "new");
  EXPECT_STREQ(edge_class_name(EdgeClass::kIdle), "idle");
  EXPECT_STREQ(edge_class_name(EdgeClass::kContributive), "contributive");
}

}  // namespace
}  // namespace dyngossip
