// Tests for the request-priority ablation knob (Lemma 3.2/3.3's design
// choice) — all variants remain CORRECT; the paper's order is about the
// worst-case round bound, not safety.
#include <array>

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/request_cutter.hpp"
#include "core/single_source.hpp"
#include "engine/unicast_engine.hpp"
#include "sim/bounds.hpp"

namespace dyngossip {
namespace {

RunMetrics run_with_priority(RequestPriority priority, std::size_t n,
                             std::uint32_t k, Adversary& adversary,
                             Round max_rounds) {
  SingleSourceConfig cfg{n, k, 0, priority};
  UnicastEngine engine(SingleSourceNode::make_all(cfg), adversary,
                       SingleSourceNode::initial_knowledge(cfg), k);
  return engine.run(max_rounds);
}

class PriorityAblation : public ::testing::TestWithParam<RequestPriority> {};

TEST_P(PriorityAblation, AllVariantsCorrectUnderChurn) {
  const RequestPriority priority = GetParam();
  constexpr std::size_t n = 16;
  constexpr std::uint32_t k = 12;
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 40;
  cc.churn_per_round = 4;
  cc.sigma = 3;
  cc.seed = 51;
  ChurnAdversary adversary(cc);
  const RunMetrics m = run_with_priority(priority, n, k, adversary, 500'000);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.learnings, static_cast<std::uint64_t>(n - 1) * k);
  EXPECT_EQ(m.duplicate_token_deliveries, 0u);
  // The per-type accounting of Theorem 3.1 never depended on the priority.
  EXPECT_EQ(m.unicast.token, static_cast<std::uint64_t>(n - 1) * k);
  EXPECT_LE(m.unicast.request, static_cast<std::uint64_t>(n) * k + m.deletions);
}

TEST_P(PriorityAblation, AllVariantsSurviveTheRequestCutter) {
  const RequestPriority priority = GetParam();
  constexpr std::size_t n = 12;
  constexpr std::uint32_t k = 8;
  RequestCutterConfig rc;
  rc.n = n;
  rc.target_edges = 30;
  rc.cut_probability = 0.6;
  rc.seed = 52;
  RequestCutterAdversary adversary(rc);
  const RunMetrics m = run_with_priority(priority, n, k, adversary, 500'000);
  ASSERT_TRUE(m.completed);
  EXPECT_LE(m.competitive_residual(1.0),
            4.0 * bounds::single_source_messages(n, k));
}

INSTANTIATE_TEST_SUITE_P(Variants, PriorityAblation,
                         ::testing::Values(RequestPriority::kPaper,
                                           RequestPriority::kReversed,
                                           RequestPriority::kNewLast));

TEST(PriorityAblation, VariantsDivergeObservably) {
  // The knob must actually change behaviour: on identical schedules the
  // per-class request split must differ for some seed (divergence requires
  // a round where a node sees eligible edges of different classes, which
  // needs enough churn and enough complete nodes — hence several tries).
  constexpr std::size_t n = 24;
  constexpr std::uint32_t k = 48;
  bool diverged = false;
  for (std::uint64_t seed = 53; seed < 59 && !diverged; ++seed) {
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 60;
    cc.churn_per_round = 10;
    cc.seed = seed;
    ChurnAdversary a1(cc), a2(cc);

    auto class_split = [&](RequestPriority priority,
                           Adversary& adversary) -> std::array<std::uint64_t, 3> {
      SingleSourceConfig cfg{n, k, 0, priority};
      UnicastEngine engine(SingleSourceNode::make_all(cfg), adversary,
                           SingleSourceNode::initial_knowledge(cfg), k);
      engine.run(500'000);
      EXPECT_TRUE(engine.all_complete());
      std::array<std::uint64_t, 3> split{};
      for (NodeId v = 0; v < n; ++v) {
        const auto& node = static_cast<const SingleSourceNode&>(engine.node(v));
        split[0] += node.requests_over(EdgeClass::kNew);
        split[1] += node.requests_over(EdgeClass::kIdle);
        split[2] += node.requests_over(EdgeClass::kContributive);
      }
      return split;
    };
    diverged = class_split(RequestPriority::kPaper, a1) !=
               class_split(RequestPriority::kNewLast, a2);
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace dyngossip
