// Tests for the trivial push-only unicast baseline (Section 1's O(n²)
// amortized ceiling).
#include "core/neighbor_exchange.hpp"

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/patterns.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"

namespace dyngossip {
namespace {

std::vector<KnowledgeSet> one_per_token(std::size_t n, std::size_t k,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k));
  for (std::size_t t = 0; t < k; ++t) init[rng.next_below(n)].set(t);
  return init;
}

TEST(NeighborExchange, CompletesOnStaticGraphs) {
  constexpr std::size_t n = 10, k = 6;
  const auto init = one_per_token(n, k, 1);
  StaticAdversary adversary(cycle_graph(n));
  const RunMetrics m = run_neighbor_exchange(n, k, init, adversary, 100'000);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.learnings, static_cast<std::uint64_t>(n) * k - k);
}

TEST(NeighborExchange, TotalBoundedByN2K) {
  // The per-(sender, token, target) once-only rule caps everything at n²k.
  constexpr std::size_t n = 12, k = 8;
  const auto init = one_per_token(n, k, 2);
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 30;
  cc.churn_per_round = 4;
  cc.seed = 3;
  ChurnAdversary adversary(cc);
  const RunMetrics m = run_neighbor_exchange(n, k, init, adversary, 100'000);
  ASSERT_TRUE(m.completed);
  EXPECT_LE(m.unicast.token, static_cast<std::uint64_t>(n) * n * k);
  // Push-only traffic: no requests, no announcements.
  EXPECT_EQ(m.unicast.request, 0u);
  EXPECT_EQ(m.unicast.completeness, 0u);
}

TEST(NeighborExchange, WastesDuplicateDeliveries) {
  // The defining inefficiency vs Algorithm 1: blind pushes hit nodes that
  // already hold the token.
  constexpr std::size_t n = 10, k = 10;
  const auto init = one_per_token(n, k, 4);
  StaticAdversary adversary(complete_graph(n));
  const RunMetrics m = run_neighbor_exchange(n, k, init, adversary, 100'000);
  ASSERT_TRUE(m.completed);
  EXPECT_GT(m.duplicate_token_deliveries, 0u);
}

TEST(NeighborExchange, SendsEachTokenOncePerTargetPerSender) {
  // On a static K_n run to quiescence, every (sender, target, token) triple
  // fires at most once: total token messages <= n(n-1)k.
  constexpr std::size_t n = 6, k = 4;
  const auto init = one_per_token(n, k, 5);
  StaticAdversary adversary(complete_graph(n));
  UnicastEngine engine(NeighborExchangeNode::make_all(n, k, init), adversary,
                       init, k);
  // Run past completion until the protocol exhausts its send lists.
  for (int i = 0; i < 200; ++i) engine.step();
  EXPECT_LE(engine.metrics().unicast.token,
            static_cast<std::uint64_t>(n) * (n - 1) * k);
}

TEST(NeighborExchange, HandlesRotatingStar) {
  constexpr std::size_t n = 14, k = 6;
  const auto init = one_per_token(n, k, 6);
  RotatingStarAdversary adversary(n, 7);
  const RunMetrics m = run_neighbor_exchange(n, k, init, adversary, 100'000);
  EXPECT_TRUE(m.completed);
}

}  // namespace
}  // namespace dyngossip
