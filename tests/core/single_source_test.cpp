// Tests for Algorithm 1 (Single-Source-Unicast): correctness, the exact
// message-type invariants of Theorem 3.1, and the Theorem 3.4 round bound.
#include "core/single_source.hpp"

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/scripted.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"
#include "sim/bounds.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

TEST(SingleSource, CompletesOnStaticPath) {
  constexpr std::size_t n = 6;
  constexpr std::uint32_t k = 4;
  StaticAdversary adversary(path_graph(n));
  const RunResult r = run_single_source(n, k, 0, adversary, 10'000);
  EXPECT_TRUE(r.completed);
  // Exactly-once delivery: (n-1) * k tokens, no duplicates.
  EXPECT_EQ(r.metrics.unicast.token, static_cast<std::uint64_t>(n - 1) * k);
  EXPECT_EQ(r.metrics.duplicate_token_deliveries, 0u);
  EXPECT_EQ(r.metrics.learnings, static_cast<std::uint64_t>(n - 1) * k);
}

TEST(SingleSource, CompletesFromNonZeroSourceOnStar) {
  constexpr std::size_t n = 9;
  constexpr std::uint32_t k = 7;
  StaticAdversary adversary(star_graph(n, /*center=*/4));
  const RunResult r = run_single_source(n, k, /*source=*/4, adversary, 10'000);
  EXPECT_TRUE(r.completed);
  // Star from the center: every leaf learns directly, pipelined 1/round.
  EXPECT_EQ(r.metrics.unicast.token, static_cast<std::uint64_t>(n - 1) * k);
}

TEST(SingleSource, SingleNodeTrivially) {
  StaticAdversary adversary(Graph(1));
  const RunResult r = run_single_source(1, 5, 0, adversary, 10);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.metrics.unicast.total(), 0u);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(SingleSource, OneTokenTwoNodes) {
  StaticAdversary adversary(path_graph(2));
  const RunResult r = run_single_source(2, 1, 0, adversary, 100);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.metrics.unicast.token, 1u);
  // announce (r1), request (r2), token (r3).
  EXPECT_EQ(r.rounds, 3u);
  EXPECT_EQ(r.metrics.unicast.completeness, 1u);
  EXPECT_EQ(r.metrics.unicast.request, 1u);
}

TEST(SingleSource, CompletenessAnnouncedOncePerPair) {
  // On a complete static graph every complete node eventually announces to
  // every other node at most once: total <= n(n-1).
  constexpr std::size_t n = 8;
  constexpr std::uint32_t k = 3;
  StaticAdversary adversary(complete_graph(n));
  const RunResult r = run_single_source(n, k, 0, adversary, 10'000);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.metrics.unicast.completeness, static_cast<std::uint64_t>(n) * (n - 1));
}

TEST(SingleSource, RequestsBoundedByTheorem31) {
  // Type-3 accounting: requests <= nk + deletions on every execution.
  constexpr std::size_t n = 16;
  constexpr std::uint32_t k = 24;
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 40;
  cc.churn_per_round = 6;
  cc.sigma = 1;  // harshest legal churn
  cc.seed = 11;
  ChurnAdversary adversary(cc);
  const RunResult r = run_single_source(n, k, 0, adversary, 100'000);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.metrics.unicast.request,
            static_cast<std::uint64_t>(n) * k + r.metrics.deletions);
  EXPECT_EQ(r.metrics.duplicate_token_deliveries, 0u);
}

TEST(SingleSource, CompetitiveResidualWithinBound) {
  constexpr std::size_t n = 20;
  constexpr std::uint32_t k = 30;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 50;
    cc.churn_per_round = 8;
    cc.seed = seed;
    ChurnAdversary adversary(cc);
    const RunResult r = run_single_source(n, k, 0, adversary, 100'000);
    ASSERT_TRUE(r.completed);
    EXPECT_LE(r.metrics.competitive_residual(1.0),
              4.0 * bounds::single_source_messages(n, k))
        << "seed " << seed;
  }
}

TEST(SingleSource, RoundBoundOnThreeStableGraphs) {
  // Theorem 3.4: O(nk) rounds under 3-edge stability.
  constexpr std::size_t n = 16;
  constexpr std::uint32_t k = 8;
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 32;
  cc.churn_per_round = 4;
  cc.sigma = 3;
  cc.seed = 13;
  ChurnAdversary adversary(cc);
  const RunResult r = run_single_source(n, k, 0, adversary, 100'000);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.rounds, 2 * n * k);
}

TEST(SingleSource, RequestEdgeCutForcesRerequest) {
  // Scripted scenario: node 1 requests from the source over edge {0,1}; the
  // adversary deletes the edge exactly when the answer would flow; node 1
  // must re-request over the (new) replacement edge and still finish.
  Graph direct(3);  // 0-1, 1-2
  direct.add_edge(0, 1);
  direct.add_edge(1, 2);
  Graph detour(3);  // 0-2, 1-2 : {0,1} is gone
  detour.add_edge(0, 2);
  detour.add_edge(1, 2);
  std::vector<Graph> script;
  script.push_back(direct);   // r1: source announces to 1
  script.push_back(direct);   // r2: node 1 requests token 0 over {0,1}
  script.push_back(detour);   // r3: {0,1} cut; the answer is lost
  for (int i = 0; i < 20; ++i) script.push_back(detour);
  ScriptedAdversary adversary(std::move(script));
  const RunResult r = run_single_source(3, 1, 0, adversary, 100);
  EXPECT_TRUE(r.completed);
  // One request was wasted: requests > tokens delivered... tokens = 2.
  EXPECT_EQ(r.metrics.unicast.token, 2u);
  EXPECT_GE(r.metrics.unicast.request, 3u);
}

TEST(SingleSource, NodeStateIntrospection) {
  SingleSourceConfig cfg{4, 3, 0};
  SingleSourceNode source(0, cfg);
  SingleSourceNode other(1, cfg);
  EXPECT_TRUE(source.complete());
  EXPECT_FALSE(other.complete());
  EXPECT_EQ(source.tokens().count(), 3u);
  EXPECT_EQ(other.tokens().count(), 0u);
  EXPECT_FALSE(other.is_bridge_node());  // no neighbors yet
}

TEST(SingleSource, RequestPriorityPrefersNewEdges) {
  // On a static complete graph, after the first announcements all edges to
  // the source are 'new' for the first requests — the instrumentation
  // counters must reflect the priority order (new first).
  constexpr std::size_t n = 6;
  constexpr std::uint32_t k = 10;
  StaticAdversary adversary(complete_graph(n));
  SingleSourceConfig cfg{n, k, 0};
  UnicastEngine engine(SingleSourceNode::make_all(cfg), adversary,
                       SingleSourceNode::initial_knowledge(cfg), k);
  engine.run(10'000);
  ASSERT_TRUE(engine.all_complete());
  std::uint64_t over_new = 0, over_idle = 0, over_contrib = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto& node = static_cast<const SingleSourceNode&>(engine.node(v));
    over_new += node.requests_over(EdgeClass::kNew);
    over_idle += node.requests_over(EdgeClass::kIdle);
    over_contrib += node.requests_over(EdgeClass::kContributive);
  }
  EXPECT_GT(over_new, 0u);
  // Static graph, k > 1: pipelined requests continue over contributive edges.
  EXPECT_GT(over_contrib, 0u);
  EXPECT_EQ(over_new + over_idle + over_contrib, engine.metrics().unicast.request);
}

}  // namespace
}  // namespace dyngossip
