// Tests for the Section-4 extension: leader election under the
// adversary-competitive measure.
#include "core/leader_election.hpp"

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/patterns.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"

namespace dyngossip {
namespace {

TEST(LeaderElectionBroadcast, AgreesWithinNRoundsOnStaticPath) {
  constexpr std::size_t n = 12;
  StaticAdversary adversary(path_graph(n));
  const LeaderElectionResult r =
      run_leader_election_broadcast(n, adversary, 10 * n);
  ASSERT_TRUE(r.agreed);
  EXPECT_EQ(r.leader, n - 1);
  EXPECT_LE(r.rounds, n);  // the eager-window argument
  // At most n broadcasts per (node, adoption).
  EXPECT_LE(r.broadcasts, r.adoptions * n);
}

TEST(LeaderElectionBroadcast, SurvivesChurnAndPatterns) {
  constexpr std::size_t n = 20;
  {
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 2 * n;
    cc.churn_per_round = n / 2;
    cc.seed = 5;
    ChurnAdversary adversary(cc);
    const LeaderElectionResult r =
        run_leader_election_broadcast(n, adversary, 20 * n);
    EXPECT_TRUE(r.agreed);
    EXPECT_LE(r.rounds, n);
  }
  {
    RotatingStarAdversary adversary(n, 6);
    const LeaderElectionResult r =
        run_leader_election_broadcast(n, adversary, 20 * n);
    EXPECT_TRUE(r.agreed);
    EXPECT_LE(r.rounds, n);
  }
  {
    PathShuffleAdversary adversary(n, 7);
    const LeaderElectionResult r =
        run_leader_election_broadcast(n, adversary, 20 * n);
    EXPECT_TRUE(r.agreed);
    EXPECT_LE(r.rounds, n);
  }
}

TEST(LeaderElectionBroadcast, SingleNodeTrivial) {
  StaticAdversary adversary(Graph(1));
  const LeaderElectionResult r = run_leader_election_broadcast(1, adversary, 10);
  EXPECT_TRUE(r.agreed);
  EXPECT_EQ(r.leader, 0u);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_EQ(r.broadcasts, 0u);
}

TEST(LeaderElectionUnicast, QuiescesOnStaticGraphs) {
  constexpr std::size_t n = 16;
  StaticAdversary adversary(complete_graph(n));
  const LeaderElectionResult r = run_leader_election_unicast(n, adversary, 10 * n);
  ASSERT_TRUE(r.agreed);
  // One initial flood: every node forwards its own ID once over each edge
  // (round 1 covers it as insertion exchange), plus adoption forwards.
  // On K_n the max reaches everyone in round 1; total messages stay O(n^2).
  EXPECT_LE(r.unicast_messages, 4ull * n * n);
  EXPECT_EQ(r.leader, n - 1);
}

TEST(LeaderElectionUnicast, CompetitiveUnderHeavyChurn) {
  constexpr std::size_t n = 24;
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 3 * n;
  cc.churn_per_round = n;
  cc.seed = 8;
  ChurnAdversary adversary(cc);
  const LeaderElectionResult r = run_leader_election_unicast(n, adversary, 100 * n);
  ASSERT_TRUE(r.agreed);
  // Definition 1.3's ledger: everything beyond the O(n^2) base is paid by TC.
  EXPECT_LE(r.competitive_residual(2.0), 4.0 * static_cast<double>(n) * n);
}

TEST(LeaderElectionUnicast, AdoptionCountBounded) {
  // Each node's adopted maximum strictly increases: at most n adoptions per
  // node (including the initial self-adoption).
  constexpr std::size_t n = 18;
  PathShuffleAdversary adversary(n, 9);
  const LeaderElectionResult r = run_leader_election_unicast(n, adversary, 100 * n);
  ASSERT_TRUE(r.agreed);
  EXPECT_LE(r.adoptions, static_cast<std::uint64_t>(n) * n);
}

TEST(LeaderElectionUnicast, FreshGraphEveryRoundStillCompetitive) {
  constexpr std::size_t n = 16;
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 2 * n;
  cc.fresh_graph_each_round = true;
  cc.seed = 10;
  ChurnAdversary adversary(cc);
  const LeaderElectionResult r = run_leader_election_unicast(n, adversary, 100 * n);
  ASSERT_TRUE(r.agreed);
  // TC dwarfs message needs: the residual collapses toward the n² base.
  EXPECT_LE(r.competitive_residual(2.0), 4.0 * static_cast<double>(n) * n);
}

}  // namespace
}  // namespace dyngossip
