// Tests for the token-space labelling.
#include "core/tokens.hpp"

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

TEST(TokenSpace, SingleSource) {
  const TokenSpace space = TokenSpace::single_source(3, 5);
  EXPECT_EQ(space.total_tokens(), 5u);
  EXPECT_EQ(space.num_sources(), 1u);
  EXPECT_EQ(space.source_node(0), 3u);
  EXPECT_EQ(space.count_of(0), 5u);
  for (TokenId t = 0; t < 5; ++t) EXPECT_EQ(space.source_of_token(t), 0u);
  EXPECT_EQ(space.index_of_node(3), 0u);
  EXPECT_EQ(space.index_of_node(2), kNotASource);
}

TEST(TokenSpace, ContiguousSortsByNodeId) {
  // Supplied out of order: a_1 < a_2 < ... ordering is restored.
  const TokenSpace space =
      TokenSpace::contiguous({{7, 2}, {1, 3}, {4, 1}});
  EXPECT_EQ(space.total_tokens(), 6u);
  EXPECT_EQ(space.num_sources(), 3u);
  EXPECT_EQ(space.source_node(0), 1u);
  EXPECT_EQ(space.source_node(1), 4u);
  EXPECT_EQ(space.source_node(2), 7u);
  EXPECT_EQ(space.count_of(0), 3u);
  EXPECT_EQ(space.count_of(1), 1u);
  EXPECT_EQ(space.count_of(2), 2u);
  // Dense ids are assigned in sorted-source order.
  EXPECT_EQ(space.source_of_token(0), 0u);
  EXPECT_EQ(space.source_of_token(2), 0u);
  EXPECT_EQ(space.source_of_token(3), 1u);
  EXPECT_EQ(space.source_of_token(4), 2u);
}

TEST(TokenSpace, ExplicitListsPartition) {
  const TokenSpace space(4, {{2, {1, 3}}, {5, {0, 2}}});
  EXPECT_EQ(space.num_sources(), 2u);
  EXPECT_EQ(space.source_of_token(1), 0u);
  EXPECT_EQ(space.source_of_token(0), 1u);
  const std::vector<TokenId> want{1, 3};
  EXPECT_EQ(space.tokens_of(0), want);
}

TEST(TokenSpace, InitialKnowledge) {
  const TokenSpace space = TokenSpace::contiguous({{0, 2}, {2, 1}});
  const auto knowledge = space.initial_knowledge(4);
  ASSERT_EQ(knowledge.size(), 4u);
  EXPECT_TRUE(knowledge[0].test(0));
  EXPECT_TRUE(knowledge[0].test(1));
  EXPECT_FALSE(knowledge[0].test(2));
  EXPECT_TRUE(knowledge[2].test(2));
  EXPECT_EQ(knowledge[1].count(), 0u);
  EXPECT_EQ(knowledge[3].count(), 0u);
}

TEST(TokenSpaceDeath, OverlappingListsRejected) {
  EXPECT_DEATH(TokenSpace(3, {{0, {0, 1}}, {1, {1, 2}}}), "DG_CHECK");
}

TEST(TokenSpaceDeath, IncompletePartitionRejected) {
  EXPECT_DEATH(TokenSpace(3, {{0, {0, 1}}}), "DG_CHECK");  // token 2 unowned
}

TEST(TokenSpaceDeath, DuplicateSourceNodesRejected) {
  EXPECT_DEATH(TokenSpace(2, {{3, {0}}, {3, {1}}}), "DG_CHECK");
}

TEST(TokenSpaceDeath, ZeroCountSourceRejected) {
  EXPECT_DEATH(TokenSpace::contiguous({{0, 0}}), "DG_CHECK");
}

}  // namespace
}  // namespace dyngossip
