// Tests for Algorithm 2 (Oblivious-Multi-Source-Unicast): walk-phase node
// behaviour and the two-phase orchestration.
#include "core/oblivious_ms.hpp"

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"
#include "sim/bounds.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

TokenSpacePtr n_gossip_space(std::size_t n) {
  std::vector<TokenSpace::SourceSpec> specs;
  for (std::size_t v = 0; v < n; ++v) specs.push_back({static_cast<NodeId>(v), 1});
  return std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
}

ChurnConfig walk_churn(std::size_t n, std::uint64_t seed) {
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 4 * n;
  cc.churn_per_round = n / 8;
  cc.sigma = 3;
  cc.seed = seed;
  return cc;
}

TEST(WalkNode, CenterAnnouncesOncePerNeighbor) {
  WalkConfig cfg{8, 4, /*gamma=*/100.0, false};
  WalkNode center(0, cfg, /*is_center=*/true, {}, Rng(1));
  const std::vector<NodeId> neighbors{1, 2, 3};
  Outbox out1, out2;
  center.send(1, neighbors, out1);
  center.send(2, neighbors, out2);
  // First round: one announcement per neighbor; second round: silence.
  // (Outbox contents are private; observe via a real engine below instead.)
  EXPECT_TRUE(center.is_center());
  EXPECT_TRUE(center.held().empty());
}

TEST(WalkNode, TokenStopsAtCenter) {
  WalkConfig cfg{4, 2, /*gamma=*/100.0, false};
  WalkNode center(0, cfg, true, {}, Rng(2));
  center.on_receive(1, 1, Message::token_msg(0));
  center.on_receive(2, 2, Message::token_msg(1));
  EXPECT_EQ(center.held().size(), 2u);  // owned, never forwarded
  Outbox out;
  const std::vector<NodeId> neighbors{1, 2};
  center.send(3, neighbors, out);
  EXPECT_EQ(center.held().size(), 2u);
}

TEST(WalkNode, LowDegreeCongestionOneTokenPerEdge) {
  // A node with 1 neighbor holding many tokens can move at most one token
  // per round over that edge (walk congestion rule).
  WalkConfig cfg{4, 8, /*gamma=*/100.0, /*pseudocode=*/true};  // move prob 1/d = 1
  std::vector<TokenId> held{0, 1, 2, 3, 4, 5, 6, 7};
  WalkNode node(1, cfg, false, held, Rng(3));
  Outbox out;
  const std::vector<NodeId> neighbors{0};
  node.send(1, neighbors, out);
  EXPECT_EQ(node.held().size(), 7u);  // exactly one token left
  EXPECT_EQ(node.walk_steps(), 1u);
  EXPECT_GE(node.passive_token_rounds(), 1u);
}

TEST(WalkNode, TextWalkProbabilityIsLazy) {
  // With the text's d/n probability and d=1, n=1000, tokens mostly self-loop.
  WalkConfig cfg{1000, 1, /*gamma=*/1e9, false};
  WalkNode node(1, cfg, false, {0}, Rng(4));
  Outbox out;
  const std::vector<NodeId> neighbors{0};
  std::uint64_t before = node.virtual_steps();
  for (Round r = 1; r <= 100 && !node.held().empty(); ++r) {
    node.send(r, neighbors, out);
  }
  EXPECT_GT(node.virtual_steps(), before + 50);  // overwhelmingly lazy
}

TEST(ObliviousMs, SkipsPhase1WhenFewSources) {
  constexpr std::size_t n = 32;
  // 2 sources << n^{2/3} log^{5/3} n: direct Multi-Source path.
  const auto space = std::make_shared<TokenSpace>(
      TokenSpace::contiguous({{0, 8}, {9, 8}}));
  ChurnAdversary adversary(walk_churn(n, 31));
  ObliviousMsOptions opts;
  opts.seed = 5;
  const ObliviousMsResult r = run_oblivious_multi_source(n, space, adversary, opts);
  EXPECT_TRUE(r.skipped_phase1);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.num_centers, 0u);
  EXPECT_EQ(r.phase1.unicast.total(), 0u);
  EXPECT_EQ(r.total.unicast.total(), r.phase2.unicast.total());
}

TEST(ObliviousMs, TwoPhaseRunCompletes) {
  constexpr std::size_t n = 32;
  const auto space = n_gossip_space(n);
  ChurnAdversary adversary(walk_churn(n, 33));
  ObliviousMsOptions opts;
  opts.seed = 7;
  opts.force_phase1 = true;
  opts.f_override = 4;
  const ObliviousMsResult r = run_oblivious_multi_source(n, space, adversary, opts);
  EXPECT_FALSE(r.skipped_phase1);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.num_centers, 1u);
  EXPECT_GT(r.phase1_rounds, 0u);
  EXPECT_GT(r.walk_real_steps, 0u);
  // Learning conservation: every token starts at one node.
  EXPECT_EQ(r.total.learnings, (n - 1) * space->total_tokens());
  // Metric merging is exact.
  EXPECT_EQ(r.total.unicast.total(),
            r.phase1.unicast.total() + r.phase2.unicast.total());
  EXPECT_EQ(r.total.tc, r.phase1.tc + r.phase2.tc);
  EXPECT_EQ(r.total.rounds, r.phase1.rounds + r.phase2.rounds);
}

TEST(ObliviousMs, Phase1FunnelsAllTokensToCenters) {
  constexpr std::size_t n = 24;
  const auto space = n_gossip_space(n);
  ChurnAdversary adversary(walk_churn(n, 35));
  ObliviousMsOptions opts;
  opts.seed = 9;
  opts.force_phase1 = true;
  opts.f_override = 3;
  const ObliviousMsResult r = run_oblivious_multi_source(n, space, adversary, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_FALSE(r.phase1_capped);  // the walks really settled
  // Walk steps are counted as token messages in phase 1.
  EXPECT_EQ(r.phase1.unicast.token, r.walk_real_steps);
}

TEST(ObliviousMs, PseudocodeWalkVariantAlsoCompletes) {
  constexpr std::size_t n = 24;
  const auto space = n_gossip_space(n);
  ChurnAdversary adversary(walk_churn(n, 37));
  ObliviousMsOptions opts;
  opts.seed = 11;
  opts.force_phase1 = true;
  opts.f_override = 3;
  opts.pseudocode_walk_prob = true;  // the paper's line-8 "1/d(u)" variant
  const ObliviousMsResult r = run_oblivious_multi_source(n, space, adversary, opts);
  EXPECT_TRUE(r.completed);
  // The 1/d variant moves far more aggressively: fewer virtual steps per
  // real step than the lazy d/n walk.
  EXPECT_GT(r.walk_real_steps, 0u);
}

TEST(ObliviousMs, WorksOnStaticRegularishGraphs) {
  // The analysis model: near-regular graphs (union of random cycles).
  constexpr std::size_t n = 36;
  const auto space = n_gossip_space(n);
  Rng g(13);
  StaticAdversary adversary(random_cycles_union(n, 3, g));
  ObliviousMsOptions opts;
  opts.seed = 15;
  opts.force_phase1 = true;
  opts.f_override = 5;
  const ObliviousMsResult r = run_oblivious_multi_source(n, space, adversary, opts);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.total.learnings, (n - 1) * space->total_tokens());
}

TEST(ObliviousMs, DefaultFormulaSaturatesCentersAtLaptopScale) {
  // Documented behaviour (DESIGN.md): with the paper's f formula and small
  // n, every node elects itself a center and phase 1 is a no-op.
  constexpr std::size_t n = 24;
  const auto space = n_gossip_space(n);
  ChurnAdversary adversary(walk_churn(n, 39));
  ObliviousMsOptions opts;
  opts.seed = 17;
  opts.force_phase1 = true;  // but f/n == 1 -> all centers, walks settle at once
  const ObliviousMsResult r = run_oblivious_multi_source(n, space, adversary, opts);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.num_centers, n);
  EXPECT_EQ(r.phase1_rounds, 0u);
}

}  // namespace
}  // namespace dyngossip
