// Tests for the broadcast flooding algorithms.
#include "core/flooding.hpp"
#include "core/random_flooding.hpp"

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

std::vector<KnowledgeSet> one_per_token(std::size_t n, std::size_t k,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k));
  for (std::size_t t = 0; t < k; ++t) init[rng.next_below(n)].set(t);
  return init;
}

TEST(PhaseFlooding, BroadcastChoiceFollowsPhases) {
  constexpr std::size_t n = 4, k = 3;
  KnowledgeSet init(k);
  init.set(1);
  PhaseFloodingNode node(n, k, init);
  // Phase 0 (rounds 1..4): token 0 unknown -> silent.
  EXPECT_EQ(node.choose_broadcast(1), kNoToken);
  EXPECT_EQ(node.choose_broadcast(4), kNoToken);
  // Phase 1 (rounds 5..8): token 1 known -> broadcast it.
  EXPECT_EQ(node.choose_broadcast(5), 1u);
  EXPECT_EQ(node.choose_broadcast(8), 1u);
  // Phase 2 (rounds 9..12): token 2 unknown -> silent.
  EXPECT_EQ(node.choose_broadcast(9), kNoToken);
  // Phases wrap after k*n rounds.
  EXPECT_EQ(node.choose_broadcast(12 + 5), 1u);
}

TEST(PhaseFlooding, CompletesWithinNkRoundsOnStaticPath) {
  constexpr std::size_t n = 8, k = 5;
  StaticAdversary adversary(path_graph(n));
  const auto init = one_per_token(n, k, 3);
  const RunResult r = run_phase_flooding(n, k, init, adversary, 10 * n * k);
  EXPECT_TRUE(r.completed);
  EXPECT_LE(r.rounds, n * k);
  // Learnings: everything not initially held must be learned.
  EXPECT_EQ(r.metrics.learnings, static_cast<std::uint64_t>(n) * k - k);
  // Broadcast accounting: at most n broadcasts per round.
  EXPECT_LE(r.metrics.broadcasts, static_cast<std::uint64_t>(r.rounds) * n);
}

TEST(PhaseFlooding, CompletesOnChurn) {
  constexpr std::size_t n = 16, k = 8;
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 32;
  cc.churn_per_round = 4;
  cc.seed = 5;
  ChurnAdversary adversary(cc);
  const auto init = one_per_token(n, k, 6);
  const RunResult r = run_phase_flooding(n, k, init, adversary, 10 * n * k);
  EXPECT_TRUE(r.completed);
  EXPECT_LE(r.rounds, n * k);  // the guarantee holds against ANY adversary
}

TEST(PhaseFlooding, AmortizedBroadcastsAtMostQuadratic) {
  constexpr std::size_t n = 16, k = 16;
  StaticAdversary adversary(star_graph(n));
  const auto init = one_per_token(n, k, 7);
  const RunResult r = run_phase_flooding(n, k, init, adversary, 10 * n * k);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.amortized(k), static_cast<double>(n) * n);
}

TEST(RandomFlooding, CompletesOnStaticAndChurn) {
  constexpr std::size_t n = 12, k = 6;
  const auto init = one_per_token(n, k, 8);
  {
    StaticAdversary adversary(cycle_graph(n));
    const RunResult r =
        run_random_flooding(n, k, init, adversary, 100 * n * k, /*seed=*/1);
    EXPECT_TRUE(r.completed);
  }
  {
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 24;
    cc.churn_per_round = 3;
    cc.seed = 9;
    ChurnAdversary adversary(cc);
    const RunResult r =
        run_random_flooding(n, k, init, adversary, 100 * n * k, /*seed=*/2);
    EXPECT_TRUE(r.completed);
  }
}

TEST(RandomFlooding, SilentWithoutTokens) {
  RandomFloodingNode node(4, KnowledgeSet(4), Rng(3));
  EXPECT_EQ(node.choose_broadcast(1), kNoToken);
  const TokenId received[] = {2};
  node.on_receive(1, received);
  EXPECT_EQ(node.choose_broadcast(2), 2u);
}

TEST(RandomFlooding, OnlyBroadcastsKnownTokens) {
  KnowledgeSet init(8);
  init.set(3);
  init.set(5);
  RandomFloodingNode node(8, init, Rng(4));
  for (Round r = 1; r <= 50; ++r) {
    const TokenId t = node.choose_broadcast(r);
    EXPECT_TRUE(t == 3 || t == 5);
  }
}

}  // namespace
}  // namespace dyngossip
