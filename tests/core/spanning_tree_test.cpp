// Tests for the static spanning-tree baseline (Section 1).
#include "core/spanning_tree.hpp"

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

TEST(SpanningTree, SingleSourcePipelineExactTokenCount) {
  constexpr std::size_t n = 10;
  constexpr std::uint32_t k = 16;
  const auto space = std::make_shared<TokenSpace>(TokenSpace::single_source(0, k));
  StaticAdversary adversary(complete_graph(n));
  const RunResult r = run_spanning_tree(n, space, adversary, 10'000);
  ASSERT_TRUE(r.completed);
  // Each token crosses each of the n-1 tree edges exactly once.
  EXPECT_EQ(r.metrics.unicast.token, static_cast<std::uint64_t>(n - 1) * k);
  EXPECT_EQ(r.metrics.duplicate_token_deliveries, 0u);
  // Construction costs O(m): joins <= 2m, accepts <= n.
  EXPECT_LE(r.metrics.unicast.control,
            2ull * complete_graph(n).num_edges() + n);
}

TEST(SpanningTree, MultiSourceAlsoExactlyOnce) {
  constexpr std::size_t n = 12;
  const auto space = std::make_shared<TokenSpace>(
      TokenSpace::contiguous({{1, 5}, {6, 3}, {11, 7}}));
  Rng rng(5);
  StaticAdversary adversary(connected_erdos_renyi(n, 0.3, rng));
  const RunResult r = run_spanning_tree(n, space, adversary, 10'000);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.metrics.unicast.token,
            static_cast<std::uint64_t>(n - 1) * space->total_tokens());
  EXPECT_EQ(r.metrics.duplicate_token_deliveries, 0u);
  EXPECT_EQ(r.metrics.learnings,
            static_cast<std::uint64_t>(n - 1) * space->total_tokens());
}

TEST(SpanningTree, PipelineRoundsLinearInDepthPlusK) {
  // On a path rooted at one end the pipeline needs O(n + k) rounds after
  // the n-round construction window.
  constexpr std::size_t n = 16;
  constexpr std::uint32_t k = 32;
  const auto space = std::make_shared<TokenSpace>(TokenSpace::single_source(0, k));
  StaticAdversary adversary(path_graph(n));
  const RunResult r = run_spanning_tree(n, space, adversary, 10'000);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.rounds, n + n + k + 8u);
}

TEST(SpanningTree, TreeStructureIsConsistent) {
  constexpr std::size_t n = 9;
  const auto space = std::make_shared<TokenSpace>(TokenSpace::single_source(2, 1));
  StaticAdversary adversary(star_graph(n, /*center=*/4));
  SpanningTreeConfig cfg{n, space, /*root=*/2};
  UnicastEngine engine(SpanningTreeNode::make_all(cfg), adversary,
                       space->initial_knowledge(n), 1);
  engine.run(1'000);
  ASSERT_TRUE(engine.all_complete());
  // Star rooted at a leaf: the hub's parent is the root; every other leaf's
  // parent is the hub.
  const auto& root = static_cast<const SpanningTreeNode&>(engine.node(2));
  const auto& hub = static_cast<const SpanningTreeNode&>(engine.node(4));
  EXPECT_EQ(root.parent(), 2u);
  EXPECT_EQ(hub.parent(), 2u);
  for (NodeId v = 0; v < n; ++v) {
    if (v == 2 || v == 4) continue;
    const auto& leaf = static_cast<const SpanningTreeNode&>(engine.node(v));
    EXPECT_EQ(leaf.parent(), 4u) << "leaf " << v;
  }
  EXPECT_EQ(hub.children().size(), n - 2);
}

TEST(SpanningTree, AmortizedCostDropsWithK) {
  // The motivating curve: amortized = O(n^2/k + n) on a dense static graph.
  constexpr std::size_t n = 12;
  double prev_amortized = 1e18;
  for (std::uint32_t k : {1u, 8u, 64u}) {
    const auto space = std::make_shared<TokenSpace>(TokenSpace::single_source(0, k));
    StaticAdversary adversary(complete_graph(n));
    const RunResult r = run_spanning_tree(n, space, adversary, 100'000);
    ASSERT_TRUE(r.completed);
    const double amortized = r.amortized(k);
    EXPECT_LT(amortized, prev_amortized);
    prev_amortized = amortized;
  }
  // For large k the amortized cost approaches the tree cost n-1.
  EXPECT_LT(prev_amortized, 2.0 * n);
}

TEST(SpanningTreeDeath, DynamicTopologyRejected) {
  constexpr std::size_t n = 8;
  const auto space = std::make_shared<TokenSpace>(TokenSpace::single_source(0, 4));
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 16;
  cc.churn_per_round = 4;  // guaranteed neighborhood changes
  cc.seed = 3;
  ChurnAdversary adversary(cc);
  EXPECT_DEATH((void)run_spanning_tree(n, space, adversary, 1'000), "DG_CHECK");
}

}  // namespace
}  // namespace dyngossip
