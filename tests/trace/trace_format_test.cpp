// Tests for the .dgt trace format: round-trip fidelity, codec interchange,
// and the corrupt/truncated-input error paths.
#include <gtest/gtest.h>

#include <sstream>

#include "adversary/churn.hpp"
#include "common/rng.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/round_view.hpp"
#include "trace/trace_gen.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"

namespace dyngossip {
namespace {

/// A small committed schedule to round-trip (churn keeps deltas non-trivial).
std::vector<Graph> sample_schedule(std::size_t n, Round rounds, std::uint64_t seed) {
  ChurnConfig cfg;
  cfg.n = n;
  cfg.target_edges = 3 * n;
  cfg.churn_per_round = n / 4;
  cfg.sigma = 2;
  cfg.seed = seed;
  ChurnAdversary adversary(cfg);
  std::vector<Graph> out;
  UnicastRoundView v;
  for (Round r = 1; r <= rounds; ++r) {
    v.round = r;
    out.push_back(adversary.unicast_round(v));
  }
  return out;
}

std::string write_binary(const std::vector<Graph>& schedule, std::uint32_t n,
                         std::uint64_t* checksum = nullptr) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  BinaryTraceWriter writer(buf, n, /*seed=*/99, "unit-test schedule");
  for (const Graph& g : schedule) writer.append_round(g);
  writer.finish();
  if (checksum != nullptr) *checksum = writer.checksum();
  return buf.str();
}

TEST(TraceFormat, BinaryRoundTripIsBitIdentical) {
  const std::vector<Graph> schedule = sample_schedule(16, 40, 7);
  std::uint64_t written_sum = 0;
  const std::string bytes = write_binary(schedule, 16, &written_sum);

  std::istringstream in(bytes);
  BinaryTraceReader reader(in);
  EXPECT_EQ(reader.header().n, 16u);
  EXPECT_EQ(reader.header().rounds, 40u);
  EXPECT_EQ(reader.header().seed, 99u);
  EXPECT_EQ(reader.header().checksum, written_sum);
  EXPECT_EQ(reader.header().metadata, "unit-test schedule");

  Graph g(16);
  RoundGraphView replayed;
  RoundGraphView recorded;
  for (Round r = 1; r <= 40; ++r) {
    ASSERT_TRUE(reader.next_round(g)) << "round " << r;
    // Bit-identical RoundGraphView: same sorted neighbor spans everywhere.
    replayed.rebuild(g);
    recorded.rebuild(schedule[r - 1]);
    ASSERT_EQ(replayed.num_arcs(), recorded.num_arcs()) << "round " << r;
    for (NodeId v = 0; v < 16; ++v) {
      const auto a = replayed.neighbors(v);
      const auto b = recorded.neighbors(v);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "round " << r << " node " << v;
    }
  }
  EXPECT_FALSE(reader.next_round(g));
  EXPECT_EQ(reader.rounds_read(), 40u);
}

TEST(TraceFormat, JsonlRoundTripMatchesBinaryChecksum) {
  const std::vector<Graph> schedule = sample_schedule(12, 25, 3);
  std::uint64_t binary_sum = 0;
  write_binary(schedule, 12, &binary_sum);

  std::stringstream buf;
  JsonlTraceWriter writer(buf, 12, /*seed=*/5, "jsonl test");
  for (const Graph& g : schedule) writer.append_round(g);
  writer.finish();
  EXPECT_EQ(writer.checksum(), binary_sum);  // codec-independent identity

  JsonlTraceReader reader(buf);
  Graph g(12);
  Round rounds = 0;
  while (reader.next_round(g)) ++rounds;
  EXPECT_EQ(rounds, 25u);
  EXPECT_EQ(reader.header().rounds, 25u);  // learned from the trailer
  EXPECT_EQ(reader.header().checksum, binary_sum);
  EXPECT_EQ(g.sorted_edges(), schedule.back().sorted_edges());
}

TEST(TraceFormat, JsonlToBinaryTranscodePreservesChecksum) {
  const std::vector<Graph> schedule = sample_schedule(10, 15, 11);
  std::stringstream jsonl;
  {
    JsonlTraceWriter writer(jsonl, 10, 1, "");
    for (const Graph& g : schedule) writer.append_round(g);
    writer.finish();
  }
  // Stream the JSONL through a binary writer round by round.
  JsonlTraceReader reader(jsonl);
  std::stringstream binary(std::ios::in | std::ios::out | std::ios::binary);
  BinaryTraceWriter writer(binary, 10, 1, "");
  Graph g(10);
  while (reader.next_round(g)) writer.append_round(g);
  writer.finish();
  EXPECT_EQ(writer.checksum(), reader.header().checksum);
}

TEST(TraceFormat, EmptyScheduleRoundTrips) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  BinaryTraceWriter writer(buf, 8, 0, "");
  writer.finish();
  BinaryTraceReader reader(buf);
  EXPECT_EQ(reader.header().rounds, 0u);
  Graph g(8);
  EXPECT_FALSE(reader.next_round(g));
}

TEST(TraceFormat, LargeEdgeKeysSurviveVarintCoding) {
  // Keys near the top of the 32-bit id space exercise multi-byte varints.
  const std::uint32_t n = 70000;
  Graph g(n);
  g.add_edge(0, 1);
  g.add_edge(65535, 65536);
  g.add_edge(69998, 69999);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  BinaryTraceWriter writer(buf, n, 0, "");
  writer.append_round(g);
  g.remove_edge(65535, 65536);
  writer.append_round(g);
  writer.finish();

  BinaryTraceReader reader(buf);
  Graph replay(n);
  ASSERT_TRUE(reader.next_round(replay));
  EXPECT_EQ(replay.num_edges(), 3u);
  EXPECT_TRUE(replay.has_edge(65535, 65536));
  ASSERT_TRUE(reader.next_round(replay));
  EXPECT_EQ(replay.num_edges(), 2u);
  EXPECT_FALSE(replay.has_edge(65535, 65536));
  EXPECT_FALSE(reader.next_round(replay));
}

TEST(TraceFormat, TruncatedFileThrows) {
  const std::vector<Graph> schedule = sample_schedule(16, 20, 1);
  const std::string bytes = write_binary(schedule, 16);
  // Drop the trailer and half the final block.
  std::istringstream in(bytes.substr(0, bytes.size() - 12));
  BinaryTraceReader reader(in);
  Graph g(16);
  EXPECT_THROW(
      {
        while (reader.next_round(g)) {
        }
      },
      TraceError);
}

TEST(TraceFormat, UnfinishedWriterIsRejected) {
  const std::vector<Graph> schedule = sample_schedule(16, 5, 1);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  auto* writer = new BinaryTraceWriter(buf, 16, 0, "");
  for (const Graph& g : schedule) writer->append_round(g);
  // Snapshot the stream BEFORE finish() patches the header.
  const std::string bytes = buf.str();
  delete writer;
  std::istringstream in(bytes);
  EXPECT_THROW(BinaryTraceReader r(in), TraceError);
}

TEST(TraceFormat, CorruptByteFailsChecksum) {
  const std::vector<Graph> schedule = sample_schedule(16, 20, 1);
  std::string bytes = write_binary(schedule, 16);
  // Flip one bit in the middle of the block region (past the ~50-byte
  // header, before the trailer).
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  std::istringstream in(bytes);
  Graph g(16);
  EXPECT_THROW(
      {
        BinaryTraceReader reader(in);
        while (reader.next_round(g)) {
        }
      },
      TraceError);
}

TEST(TraceFormat, BadMagicThrows) {
  std::istringstream in("NOPE such trace");
  EXPECT_THROW(BinaryTraceReader r(in), TraceError);
}

TEST(TraceFormat, JsonlMissingTrailerThrows) {
  const std::vector<Graph> schedule = sample_schedule(10, 8, 2);
  std::stringstream buf;
  JsonlTraceWriter writer(buf, 10, 0, "");
  for (const Graph& g : schedule) writer.append_round(g);
  writer.finish();
  std::string text = buf.str();
  text.erase(text.rfind("{\"end\""));  // drop the trailer line
  std::istringstream in(text);
  JsonlTraceReader reader(in);
  Graph g(10);
  EXPECT_THROW(
      {
        while (reader.next_round(g)) {
        }
      },
      TraceError);
}

TEST(TraceFormat, HandWrittenJsonlLoadsWithoutChecksumOrSortedEdges) {
  // An external producer's trace: unsorted edge pairs, reversed endpoint
  // order, and a bare {"end":true} trailer with no rounds/checksum.
  const std::string text =
      "{\"dgt\":1,\"n\":5,\"metadata\":\"contact dataset\"}\n"
      "{\"r\":1,\"ins\":[[3,2],[0,1],[4,0]],\"del\":[]}\n"
      "{\"r\":2,\"ins\":[[1,2]],\"del\":[[0,4]]}\n"
      "{\"end\":true}\n";
  std::istringstream in(text);
  JsonlTraceReader reader(in);
  EXPECT_EQ(reader.header().metadata, "contact dataset");
  Graph g(5);
  ASSERT_TRUE(reader.next_round(g));
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(2, 3));
  ASSERT_TRUE(reader.next_round(g));
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_FALSE(g.has_edge(0, 4));
  EXPECT_FALSE(reader.next_round(g));
  EXPECT_EQ(reader.header().rounds, 2u);  // defaulted from the stream
}

TEST(TraceFormat, MismatchedDeltaThrows) {
  // Removing an edge that is not live must be rejected by the reader.
  std::stringstream buf;
  JsonlTraceWriter writer(buf, 6, 0, "");
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  writer.append_round(g);
  writer.finish();
  std::string text = buf.str();
  // Rewrite the (valid) round line to delete an edge that never existed.
  const std::size_t pos = text.find("\"del\":[]");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "\"del\":[[3,4]]");
  std::istringstream in(text);
  JsonlTraceReader reader(in);
  Graph replay(6);
  EXPECT_THROW(reader.next_round(replay), TraceError);
}

TEST(TraceFormat, WriterTracksRunningEdgeSetAcrossDeltas) {
  // append_delta streams pre-computed deltas (the transform path).
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  BinaryTraceWriter writer(buf, 5, 0, "");
  const std::vector<EdgeKey> ins1 = {edge_key(0, 1), edge_key(1, 2)};
  writer.append_delta(ins1, {});
  const std::vector<EdgeKey> ins2 = {edge_key(2, 3)};
  const std::vector<EdgeKey> del2 = {edge_key(0, 1)};
  writer.append_delta(ins2, del2);
  writer.finish();

  BinaryTraceReader reader(buf);
  Graph g(5);
  ASSERT_TRUE(reader.next_round(g));
  EXPECT_EQ(g.num_edges(), 2u);
  ASSERT_TRUE(reader.next_round(g));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(reader.next_round(g));
}

TEST(TraceFormat, SmoothedTracePerturbsAndStaysConnected) {
  std::stringstream base_buf(std::ios::in | std::ios::out | std::ios::binary);
  {
    BinaryTraceWriter base_writer(base_buf, 20, 1, "");
    SigmaStableChurnConfig sc;
    sc.n = 20;
    sc.target_edges = 50;
    sc.churn_per_interval = 50;
    sc.sigma = 4;
    sc.seed = 13;
    generate_sigma_churn_trace(sc, 30, base_writer);
    base_writer.finish();
  }
  BinaryTraceReader base(base_buf);
  std::stringstream out_buf(std::ios::in | std::ios::out | std::ios::binary);
  BinaryTraceWriter out(out_buf, 20, 2, "");
  SmoothedTraceConfig cfg;
  cfg.flips_per_round = 6;
  cfg.seed = 77;
  smooth_trace(base, cfg, out);
  out.finish();
  EXPECT_EQ(out.rounds(), 30u);
  EXPECT_NE(out.checksum(), base.header().checksum);  // actually perturbed

  BinaryTraceReader reader(out_buf);
  Graph g(20);
  while (reader.next_round(g)) {
    EXPECT_TRUE(is_connected(g)) << "round " << reader.rounds_read();
  }
}

}  // namespace
}  // namespace dyngossip
