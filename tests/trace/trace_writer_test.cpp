// Crash-safety of file-backed trace writers (stage to .tmp, publish on
// finish) and the recoverable TraceError paths that used to abort.
#include "trace/trace_writer.hpp"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "trace/trace_adversary.hpp"
#include "trace/trace_reader.hpp"

namespace dyngossip {
namespace {

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

void append_one_round(TraceWriter& writer) {
  const std::vector<EdgeKey> ins = {edge_key(0, 1)};
  writer.append_delta(ins, {});
}

TEST(TraceWriterCrashSafety, FinishPublishesTmpToFinalPath) {
  const std::string path = temp_path("publish.dgt");
  std::remove(path.c_str());
  {
    std::unique_ptr<TraceWriter> writer = open_trace_writer(path, 4, 7, "");
    append_one_round(*writer);
    // Until finish(), only the staged .tmp exists — a reader polling the
    // final path never sees a half-written trace.
    EXPECT_FALSE(file_exists(path));
    EXPECT_TRUE(file_exists(path + ".tmp"));
    writer->finish();
  }
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  // The published file is a complete, sealed trace.
  const std::unique_ptr<TraceSource> source = open_trace_source(path);
  Graph g(4);
  EXPECT_TRUE(source->next_round(g));
  EXPECT_FALSE(source->next_round(g));
  std::remove(path.c_str());
}

TEST(TraceWriterCrashSafety, DestructorAlsoPublishes) {
  // Destroying an unfinished writer finishes it — including the rename.
  const std::string path = temp_path("dtor_publish.dgt");
  std::remove(path.c_str());
  {
    std::unique_ptr<TraceWriter> writer = open_trace_writer(path, 4, 7, "");
    append_one_round(*writer);
  }
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(TraceWriterCrashSafetyDeathTest, KillMidWriteLeavesNoTraceAtFinalPath) {
  // A recording process killed mid-write (no finish(), no destructors) must
  // leave the final path untouched: at worst a stale .tmp survives.
  const std::string path = temp_path("killed.dgt");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  EXPECT_EXIT(
      {
        std::unique_ptr<TraceWriter> writer = open_trace_writer(path, 4, 7, "");
        append_one_round(*writer);
        std::_Exit(7);  // hard kill: skips finish() and every destructor
      },
      ::testing::ExitedWithCode(7), "");
  EXPECT_FALSE(file_exists(path));
  EXPECT_TRUE(file_exists(path + ".tmp"));
  // ...and the stale .tmp is visibly unsealed, not silently loadable.
  EXPECT_THROW((void)open_trace_source(path + ".tmp"), TraceError);
  std::remove((path + ".tmp").c_str());
}

TEST(TraceWriterCrashSafety, StreamBackedWritersSkipStaging) {
  // Stream-ctor writers (tests, in-memory tees) have no path to publish;
  // finish() just seals the stream.
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  BinaryTraceWriter writer(buf, 4, 7, "");
  append_one_round(writer);
  writer.finish();
  BinaryTraceReader reader(buf);
  Graph g(4);
  EXPECT_TRUE(reader.next_round(g));
  EXPECT_FALSE(reader.next_round(g));
}

TEST(TraceErrors, SteppingPastTraceEndThrowsActionably) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  {
    BinaryTraceWriter writer(buf, 4, 7, "");
    append_one_round(writer);
    writer.finish();
  }
  TraceAdversaryOptions opts;
  opts.hold_last_graph = false;
  TraceAdversary adversary(std::make_unique<BinaryTraceReader>(buf), opts);
  BroadcastRoundView view;  // oblivious: the view contents are ignored
  view.round = 1;
  (void)adversary.broadcast_round(view);
  view.round = 2;
  try {
    (void)adversary.broadcast_round(view);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    // The message carries the fix, not just the failure.
    EXPECT_NE(std::string(e.what()).find("re-record"), std::string::npos);
  }
}

TEST(TraceErrors, NodeCountMismatchThrowsWithBothSides) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  {
    BinaryTraceWriter writer(buf, 4, 7, "");
    append_one_round(writer);
    writer.finish();
  }
  BinaryTraceReader reader(buf);
  Graph wrong(9);  // trace is over n=4
  try {
    (void)reader.next_round(wrong);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("n=4"), std::string::npos);
    EXPECT_NE(what.find("n=9"), std::string::npos);
  }
}

}  // namespace
}  // namespace dyngossip
