// Tests for TraceRecorder / TraceAdversary: recording leaves a run
// untouched, and replaying reproduces it bit-for-bit.
#include "trace/trace_adversary.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "adversary/churn.hpp"
#include "adversary/sigma_stable.hpp"
#include "core/tokens.hpp"
#include "sim/simulator.hpp"
#include "trace/run_payload.hpp"
#include "trace/trace_gen.hpp"

namespace dyngossip {
namespace {

ChurnConfig churn_config(std::size_t n, std::uint64_t seed) {
  ChurnConfig cfg;
  cfg.n = n;
  cfg.target_edges = 3 * n;
  cfg.churn_per_round = n / 4;
  cfg.sigma = 2;
  cfg.seed = seed;
  return cfg;
}

void expect_metrics_equal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics.unicast.token, b.metrics.unicast.token);
  EXPECT_EQ(a.metrics.unicast.completeness, b.metrics.unicast.completeness);
  EXPECT_EQ(a.metrics.unicast.request, b.metrics.unicast.request);
  EXPECT_EQ(a.metrics.unicast.control, b.metrics.unicast.control);
  EXPECT_EQ(a.metrics.broadcasts, b.metrics.broadcasts);
  EXPECT_EQ(a.metrics.tc, b.metrics.tc);
  EXPECT_EQ(a.metrics.deletions, b.metrics.deletions);
  EXPECT_EQ(a.metrics.learnings, b.metrics.learnings);
  EXPECT_EQ(a.metrics.duplicate_token_deliveries,
            b.metrics.duplicate_token_deliveries);
}

TEST(TraceAdversary, RecordingDoesNotPerturbTheRun) {
  const std::size_t n = 24;
  const std::uint32_t k = 48;
  const Round cap = static_cast<Round>(100 * n * k);

  ChurnAdversary plain(churn_config(n, 5));
  const RunResult baseline = run_single_source(n, k, 0, plain, cap);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  BinaryTraceWriter writer(buf, n, 5, "");
  ChurnAdversary wrapped(churn_config(n, 5));
  TraceRecorder recorder(wrapped, writer);
  const RunResult recorded = run_single_source(n, k, 0, recorder, cap);
  writer.finish();

  expect_metrics_equal(baseline, recorded);
  EXPECT_EQ(writer.rounds(), recorded.rounds);
}

TEST(TraceAdversary, SingleSourceRecordThenReplayIsBitIdentical) {
  const std::size_t n = 24;
  const std::uint32_t k = 48;
  const Round cap = static_cast<Round>(100 * n * k);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  RunResult recorded = [&] {
    BinaryTraceWriter writer(buf, n, 5, "");
    ChurnAdversary inner(churn_config(n, 5));
    TraceRecorder recorder(inner, writer);
    RunResult r = run_single_source(n, k, 0, recorder, cap);
    writer.finish();
    return r;
  }();

  TraceAdversary replay(std::make_unique<BinaryTraceReader>(buf));
  const RunResult replayed = run_single_source(n, k, 0, replay, cap);
  expect_metrics_equal(recorded, replayed);
  EXPECT_EQ(run_payload_checksum(n, k, recorded),
            run_payload_checksum(n, k, replayed));
  EXPECT_FALSE(replay.exhausted());  // same dynamics, same length
}

TEST(TraceAdversary, MultiSourceRecordThenReplayIsBitIdentical) {
  const std::size_t n = 24;
  const std::uint32_t k = 48;
  const Round cap = static_cast<Round>(100 * n * k);
  auto make_space = [&] {
    std::vector<TokenSpace::SourceSpec> specs;
    for (std::size_t i = 0; i < 4; ++i) {
      specs.push_back({static_cast<NodeId>(i * (n / 4)), k / 4});
    }
    return std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
  };

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  RunResult recorded = [&] {
    BinaryTraceWriter writer(buf, n, 9, "");
    SigmaStableChurnConfig sc;
    sc.n = n;
    sc.target_edges = 3 * n;
    sc.churn_per_interval = 3 * n;
    sc.sigma = 4;
    sc.seed = 9;
    SigmaStableChurnAdversary inner(sc);
    TraceRecorder recorder(inner, writer);
    RunResult r = run_multi_source(n, make_space(), recorder, cap);
    writer.finish();
    return r;
  }();

  TraceAdversary replay(std::make_unique<BinaryTraceReader>(buf));
  const RunResult replayed = run_multi_source(n, make_space(), replay, cap);
  expect_metrics_equal(recorded, replayed);
  EXPECT_EQ(run_payload_checksum(n, k, recorded),
            run_payload_checksum(n, k, replayed));
}

TEST(TraceAdversary, ReplayedGraphsMatchTheGeneratorRoundByRound) {
  // The trace round graphs must be bit-identical (as edge sets) to what the
  // generator produced — replayed through the same CSR view the engines use.
  const std::size_t n = 20;
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  {
    BinaryTraceWriter writer(buf, n, 3, "");
    ChurnAdversary gen(churn_config(n, 3));
    record_schedule(gen, 50, writer);
    writer.finish();
  }
  TraceAdversary replay(std::make_unique<BinaryTraceReader>(buf));
  ChurnAdversary reference(churn_config(n, 3));
  UnicastRoundView v;
  for (Round r = 1; r <= 50; ++r) {
    v.round = r;
    const Graph& a = replay.unicast_round(v);
    const Graph& b = reference.unicast_round(v);
    ASSERT_EQ(a.sorted_edges(), b.sorted_edges()) << "round " << r;
  }
  EXPECT_EQ(replay.rounds_replayed(), 50u);
}

TEST(TraceAdversary, HoldsLastGraphAfterExhaustion) {
  const std::size_t n = 12;
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  {
    BinaryTraceWriter writer(buf, n, 3, "");
    ChurnAdversary gen(churn_config(n, 3));
    record_schedule(gen, 10, writer);
    writer.finish();
  }
  TraceAdversary replay(std::make_unique<BinaryTraceReader>(buf));
  UnicastRoundView v;
  std::vector<EdgeKey> last;
  for (Round r = 1; r <= 10; ++r) {
    v.round = r;
    last = replay.unicast_round(v).sorted_edges();
  }
  EXPECT_FALSE(replay.exhausted());
  for (Round r = 11; r <= 15; ++r) {
    v.round = r;
    EXPECT_EQ(replay.unicast_round(v).sorted_edges(), last) << "round " << r;
  }
  EXPECT_TRUE(replay.exhausted());
  EXPECT_EQ(replay.rounds_replayed(), 10u);
}

TEST(TraceAdversary, ServesBothEngineModels) {
  // One trace, replayed once through the broadcast view path and once
  // through the unicast view path: identical schedules.
  const std::size_t n = 16;
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  {
    BinaryTraceWriter writer(buf, n, 21, "");
    ChurnAdversary gen(churn_config(n, 21));
    record_schedule(gen, 20, writer);
    writer.finish();
  }
  const std::string bytes = buf.str();
  std::istringstream in_a(bytes);
  std::istringstream in_b(bytes);
  TraceAdversary broadcast_replay(std::make_unique<BinaryTraceReader>(in_a));
  TraceAdversary unicast_replay(std::make_unique<BinaryTraceReader>(in_b));
  for (Round r = 1; r <= 20; ++r) {
    BroadcastRoundView bv;
    bv.round = r;
    UnicastRoundView uv;
    uv.round = r;
    EXPECT_EQ(broadcast_replay.broadcast_round(bv).sorted_edges(),
              unicast_replay.unicast_round(uv).sorted_edges())
        << "round " << r;
  }
}

}  // namespace
}  // namespace dyngossip
