// Algorithm-registry tests: spec grammar round-trips, unknown
// family/key rejection, and — the load-bearing part — per-family payload
// bit-identity between a registry-dispatched run and the hand-constructed
// run it replaces, plus seed/priority pinning through spec keys.
#include "algo/registry.hpp"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/registry.hpp"
#include "adversary/static_adversary.hpp"
#include "core/neighbor_exchange.hpp"
#include "core/single_source.hpp"
#include "core/tokens.hpp"
#include "engine/unicast_engine.hpp"
#include "graph/generators.hpp"
#include "sim/simulator.hpp"
#include "trace/run_payload.hpp"

namespace dyngossip {
namespace {

constexpr std::size_t kN = 24;
constexpr std::uint32_t kK = 32;
constexpr Round kCap = 200ull * kN * kK;
constexpr std::uint64_t kSeed = 4242;

/// Fresh churn adversary from a pinned spec — both the hand-built and the
/// registry run must see the same schedule, so each gets its own instance.
std::unique_ptr<Adversary> churn_adversary() {
  return build_adversary(AdversarySpec::parse("churn:sigma=3"), kN, kSeed);
}

/// Registry run under the shared context; returns the payload checksum.
std::uint64_t registry_checksum(const std::string& spec_text,
                                Adversary& adversary,
                                std::uint64_t* k_realized = nullptr) {
  AlgoBuildContext ctx;
  ctx.n = kN;
  ctx.k = kK;
  ctx.sources = 4;
  ctx.cap = kCap;
  ctx.seed = kSeed;
  const RunResult r = run_algo(AlgoSpec::parse(spec_text), ctx, adversary);
  if (k_realized != nullptr) *k_realized = ctx.k_realized;
  return run_payload_checksum(kN, ctx.k_realized, r);
}

TokenSpacePtr spread(std::size_t s) {
  std::vector<TokenSpace::SourceSpec> specs;
  for (std::size_t i = 0; i < s; ++i) {
    specs.push_back({static_cast<NodeId>(i * (kN / s)),
                     kK / static_cast<std::uint32_t>(s)});
  }
  return std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
}

// ---- spec grammar --------------------------------------------------------

TEST(AlgoSpec, ParseToStringRoundTrips) {
  for (const char* text :
       {"single_source", "single_source:priority=reversed,source=3",
        "flooding:sources=2", "random_flooding:seed=5,sources=1",
        "oblivious:f=8,force_phase1=true"}) {
    const AlgoSpec spec = AlgoSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
    EXPECT_EQ(AlgoSpec::parse(spec.to_string()), spec);
  }
  // `family:` is the explicit no-params spelling; canonical form drops the
  // colon.
  EXPECT_EQ(AlgoSpec::parse("flooding:").to_string(), "flooding");
  // Keys come back sorted regardless of input order.
  EXPECT_EQ(AlgoSpec::parse("oblivious:force_phase1=true,f=8").to_string(),
            "oblivious:f=8,force_phase1=true");
}

TEST(AlgoSpec, ParseRejectsMalformedText) {
  EXPECT_THROW((void)AlgoSpec::parse(""), AlgoSpecError);
  EXPECT_THROW((void)AlgoSpec::parse("Flooding"), AlgoSpecError);
  EXPECT_THROW((void)AlgoSpec::parse("flooding:sources"), AlgoSpecError);
  EXPECT_THROW((void)AlgoSpec::parse("flooding:=1"), AlgoSpecError);
  EXPECT_THROW((void)AlgoSpec::parse("flooding:sources=1,sources=2"),
               AlgoSpecError);
}

TEST(AlgoRegistry, ValidatesFamiliesAndDeclaredKeys) {
  const AlgoRegistry& registry = AlgoRegistry::global();
  EXPECT_GE(registry.size(), 7u);
  for (const char* family :
       {"single_source", "multi_source", "flooding", "random_flooding",
        "neighbor_exchange", "oblivious", "spanning_tree"}) {
    EXPECT_NE(registry.find(family), nullptr) << family;
  }
  EXPECT_THROW(registry.validate(AlgoSpec::parse("bogus_family")),
               AlgoSpecError);
  EXPECT_THROW(registry.validate(AlgoSpec::parse("flooding:priority=paper")),
               AlgoSpecError);
  EXPECT_NO_THROW(registry.validate(AlgoSpec::parse("flooding:sources=2")));
}

TEST(AlgoRegistry, DeclaresEnginesAndStaticRequirements) {
  const AlgoRegistry& registry = AlgoRegistry::global();
  EXPECT_EQ(registry.find("single_source")->engine, AlgoEngine::kUnicast);
  EXPECT_EQ(registry.find("flooding")->engine, AlgoEngine::kBroadcast);
  EXPECT_EQ(registry.find("random_flooding")->engine, AlgoEngine::kBroadcast);
  EXPECT_EQ(registry.find("async_push")->engine, AlgoEngine::kAsync);
  EXPECT_EQ(registry.find("async_push_pull")->engine, AlgoEngine::kAsync);
  EXPECT_TRUE(registry.find("spanning_tree")->requires_static);
  EXPECT_FALSE(registry.find("single_source")->requires_static);
  EXPECT_FALSE(registry.find("async_push")->requires_static);
  EXPECT_STREQ(algo_engine_name(AlgoEngine::kBroadcast), "broadcast");
  EXPECT_STREQ(algo_engine_name(AlgoEngine::kAsync), "async");
}

TEST(AlgoRegistry, ScheduleCompatibilityPolicy) {
  const AlgoFamily& tree = *AlgoRegistry::global().find("spanning_tree");
  const AlgoFamily& single = *AlgoRegistry::global().find("single_source");
  std::string why;
  // Non-static-only families accept everything.
  EXPECT_TRUE(algo_schedule_compatible(single, AdversarySpec::parse("churn:")));
  // Static-only: the static family passes, synthetic dynamic families are
  // rejected with a reason.
  EXPECT_TRUE(
      algo_schedule_compatible(tree, AdversarySpec::parse("static:graph=gnp")));
  EXPECT_FALSE(algo_schedule_compatible(tree, AdversarySpec::parse("churn:"), &why));
  EXPECT_NE(why.find("static"), std::string::npos);
  EXPECT_FALSE(algo_schedule_compatible(
      tree, AdversarySpec::parse("smoothed:base=x.dgt"), &why));
}

TEST(AlgoRegistry, RejectsBadValuesAndContexts) {
  auto adversary = churn_adversary();
  AlgoBuildContext ctx;
  ctx.n = kN;
  ctx.k = kK;
  EXPECT_THROW((void)run_algo(AlgoSpec::parse("flooding:sources=4x"), ctx,
                              *adversary),
               AlgoSpecError);
  EXPECT_THROW((void)run_algo(AlgoSpec::parse("single_source:source=999"), ctx,
                              *adversary),
               AlgoSpecError);
  ctx.n = 1;
  EXPECT_THROW((void)run_algo(AlgoSpec::parse("single_source"), ctx, *adversary),
               AlgoSpecError);
}

// ---- per-family build-vs-hand-constructed bit-identity -------------------

TEST(AlgoFamilies, SingleSourceMatchesHandBuiltRun) {
  auto hand_adv = churn_adversary();
  const RunResult hand = run_single_source(kN, kK, 0, *hand_adv, kCap);
  auto reg_adv = churn_adversary();
  EXPECT_EQ(registry_checksum("single_source", *reg_adv),
            run_payload_checksum(kN, kK, hand));
}

TEST(AlgoFamilies, MultiSourceMatchesHandBuiltRun) {
  auto hand_adv = churn_adversary();
  const TokenSpacePtr space = spread(4);
  const RunResult hand = run_multi_source(kN, space, *hand_adv, kCap);
  auto reg_adv = churn_adversary();
  std::uint64_t k_realized = 0;
  EXPECT_EQ(registry_checksum("multi_source", *reg_adv, &k_realized),
            run_payload_checksum(kN, space->total_tokens(), hand));
  EXPECT_EQ(k_realized, space->total_tokens());
}

TEST(AlgoFamilies, FloodingMatchesHandBuiltRun) {
  auto hand_adv = churn_adversary();
  const TokenSpace space = TokenSpace::single_source(0, kK);
  const RunResult hand =
      run_phase_flooding(kN, kK, space.initial_knowledge(kN), *hand_adv, kCap);
  auto reg_adv = churn_adversary();
  EXPECT_EQ(registry_checksum("flooding", *reg_adv),
            run_payload_checksum(kN, kK, hand));
}

TEST(AlgoFamilies, RandomFloodingMatchesHandBuiltRunAndPinsSeed) {
  const TokenSpace space = TokenSpace::single_source(0, kK);
  auto hand_adv = churn_adversary();
  const RunResult hand = run_random_flooding(
      kN, kK, space.initial_knowledge(kN), *hand_adv, kCap, /*seed=*/5);
  // seed=5 in the spec wins over the context's kSeed — the hand run above
  // used 5, so only the pinned spec matches it.
  auto reg_adv = churn_adversary();
  EXPECT_EQ(registry_checksum("random_flooding:seed=5", *reg_adv),
            run_payload_checksum(kN, kK, hand));
  // The unpinned spec follows the context seed (kSeed != 5): same schedule,
  // different token picks.
  auto reg_adv2 = churn_adversary();
  EXPECT_NE(registry_checksum("random_flooding", *reg_adv2),
            run_payload_checksum(kN, kK, hand));
}

TEST(AlgoFamilies, NeighborExchangeMatchesHandBuiltRun) {
  auto hand_adv = churn_adversary();
  const TokenSpace space = TokenSpace::single_source(0, kK);
  const RunMetrics m = run_neighbor_exchange(
      kN, kK, space.initial_knowledge(kN), *hand_adv, kCap);
  RunResult hand;
  hand.metrics = m;
  hand.rounds = m.rounds;
  hand.completed = m.completed;
  auto reg_adv = churn_adversary();
  EXPECT_EQ(registry_checksum("neighbor_exchange", *reg_adv),
            run_payload_checksum(kN, kK, hand));
}

TEST(AlgoFamilies, ObliviousMatchesHandBuiltRun) {
  const TokenSpacePtr space = spread(4);
  auto hand_adv = churn_adversary();
  ObliviousMsOptions opts;
  opts.seed = kSeed;
  opts.max_rounds = kCap;
  const ObliviousMsResult r =
      run_oblivious_multi_source(kN, space, *hand_adv, opts);
  RunResult hand;
  hand.metrics = r.total;
  hand.rounds = r.total.rounds;
  hand.completed = r.completed;
  auto reg_adv = churn_adversary();
  EXPECT_EQ(registry_checksum("oblivious", *reg_adv),
            run_payload_checksum(kN, space->total_tokens(), hand));
}

TEST(AlgoFamilies, SpanningTreeMatchesHandBuiltRunOnAStaticGraph) {
  const TokenSpace hand_space = TokenSpace::single_source(0, kK);
  StaticAdversary hand_adv(complete_graph(kN));
  const RunResult hand = run_spanning_tree(
      kN, std::make_shared<TokenSpace>(hand_space), hand_adv, kCap, 0);
  StaticAdversary reg_adv(complete_graph(kN));
  EXPECT_EQ(registry_checksum("spanning_tree", reg_adv),
            run_payload_checksum(kN, kK, hand));
}

// ---- spec knobs ----------------------------------------------------------

TEST(AlgoFamilies, PriorityKnobPinsTheAblationVariant) {
  // Under the adaptive request cutter the priority order changes which
  // edges carry requests, so the reversed variant must (a) bit-match the
  // hand-built reversed engine and (b) diverge from the paper order.
  const auto cutter = [] {
    return build_adversary(AdversarySpec::parse("cutter:p=0.6"), kN, kSeed);
  };
  auto hand_adv = cutter();
  SingleSourceConfig cfg{kN, kK, 0, RequestPriority::kReversed};
  UnicastEngine engine(SingleSourceNode::make_all(cfg), *hand_adv,
                       SingleSourceNode::initial_knowledge(cfg), kK);
  const RunMetrics m = engine.run(kCap);
  RunResult hand;
  hand.metrics = m;
  hand.rounds = m.rounds;
  hand.completed = m.completed;

  auto reg_adv = cutter();
  const std::uint64_t reversed =
      registry_checksum("single_source:priority=reversed", *reg_adv);
  EXPECT_EQ(reversed, run_payload_checksum(kN, kK, hand));

  auto paper_adv = cutter();
  EXPECT_NE(registry_checksum("single_source", *paper_adv), reversed);
}

TEST(AlgoFamilies, InitialKnowledgeOverrideIsHonoredWhereItMakesSense) {
  // flooding accepts an explicit K_v(0); the token-labelling families
  // reject it instead of silently diverging from their TokenSpace.
  std::vector<KnowledgeSet> init(kN, KnowledgeSet(kK));
  for (std::size_t t = 0; t < kK; ++t) init[t % kN].set(t);
  auto hand_adv = churn_adversary();
  const RunResult hand = run_phase_flooding(kN, kK, init, *hand_adv, kCap);

  AlgoBuildContext ctx;
  ctx.n = kN;
  ctx.k = kK;
  ctx.cap = kCap;
  ctx.seed = kSeed;
  ctx.initial_knowledge = &init;
  auto reg_adv = churn_adversary();
  const RunResult reg = run_algo(AlgoSpec::parse("flooding"), ctx, *reg_adv);
  EXPECT_EQ(run_payload_checksum(kN, ctx.k_realized, reg),
            run_payload_checksum(kN, kK, hand));

  auto other_adv = churn_adversary();
  EXPECT_THROW(
      (void)run_algo(AlgoSpec::parse("single_source"), ctx, *other_adv),
      AlgoSpecError);
}

TEST(AlgoRegistry, PrivateInstancesRejectDuplicates) {
  AlgoRegistry registry;
  register_all_algorithms(registry);
  const std::size_t count = registry.size();
  register_all_algorithms(registry);  // idempotent
  EXPECT_EQ(registry.size(), count);
  EXPECT_THROW(registry.add({"", "", "", AlgoEngine::kUnicast, false, {}, {}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dyngossip
