// Tests for the static and scripted adversaries.
#include <gtest/gtest.h>

#include "adversary/scripted.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"

namespace dyngossip {
namespace {

TEST(StaticAdversary, SameGraphEveryRound) {
  StaticAdversary adversary(cycle_graph(5));
  BroadcastRoundView bv;
  UnicastRoundView uv;
  for (Round r = 1; r <= 5; ++r) {
    bv.round = uv.round = r;
    const Graph g1 = adversary.broadcast_round(bv);
    const Graph g2 = adversary.unicast_round(uv);
    EXPECT_EQ(g1.sorted_edges(), cycle_graph(5).sorted_edges());
    EXPECT_EQ(g2.sorted_edges(), cycle_graph(5).sorted_edges());
  }
  EXPECT_EQ(adversary.num_nodes(), 5u);
}

TEST(StaticAdversaryDeath, DisconnectedGraphRejected) {
  Graph g(4);
  g.add_edge(0, 1);  // {2,3} isolated
  EXPECT_DEATH(StaticAdversary{std::move(g)}, "DG_CHECK");
}

TEST(ScriptedAdversary, PlaysScriptThenRepeatsLast) {
  std::vector<Graph> script{path_graph(4), cycle_graph(4)};
  ScriptedAdversary adversary(std::move(script));
  EXPECT_EQ(adversary.script_length(), 2u);
  UnicastRoundView v;
  v.round = 1;
  EXPECT_EQ(adversary.unicast_round(v).sorted_edges(), path_graph(4).sorted_edges());
  v.round = 2;
  EXPECT_EQ(adversary.unicast_round(v).sorted_edges(), cycle_graph(4).sorted_edges());
  v.round = 7;  // past the script: repeats the last graph
  EXPECT_EQ(adversary.unicast_round(v).sorted_edges(), cycle_graph(4).sorted_edges());
}

TEST(ScriptedAdversaryDeath, EmptyScriptRejected) {
  EXPECT_DEATH(ScriptedAdversary{std::vector<Graph>{}}, "DG_CHECK");
}

TEST(ScriptedAdversaryDeath, MixedNodeCountsRejected) {
  std::vector<Graph> script;
  script.push_back(path_graph(4));
  script.push_back(path_graph(5));
  EXPECT_DEATH(ScriptedAdversary{std::move(script)}, "DG_CHECK");
}

TEST(ScriptedAdversaryDeath, DisconnectedRoundRejected) {
  Graph g(4);
  g.add_edge(0, 1);
  std::vector<Graph> script;
  script.push_back(std::move(g));
  EXPECT_DEATH(ScriptedAdversary{std::move(script)}, "DG_CHECK");
}

}  // namespace
}  // namespace dyngossip
