// Tests for the adaptive request-cutting adversary.
#include "adversary/request_cutter.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "sim/bounds.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

TEST(RequestCutter, AlwaysConnectedUnderFullCutting) {
  RequestCutterConfig cfg;
  cfg.n = 16;
  cfg.target_edges = 40;
  cfg.cut_probability = 1.0;
  cfg.seed = 5;
  RequestCutterAdversary adversary(cfg);

  // Feed synthetic request traffic referencing live edges.
  UnicastRoundView view;
  std::vector<SentRecord> traffic;
  Graph prev(16);
  for (Round r = 1; r <= 100; ++r) {
    view.round = r;
    view.prev_messages = &traffic;
    view.prev_graph = &prev;
    const Graph g = adversary.unicast_round(view);
    EXPECT_TRUE(is_connected(g)) << "round " << r;
    traffic.clear();
    for (const EdgeKey key : g.sorted_edges()) {
      const auto [u, v] = edge_endpoints(key);
      traffic.push_back({u, v, Message::request(0)});
      if (traffic.size() >= 10) break;
    }
    prev = g;
  }
  EXPECT_GT(adversary.cuts(), 500u);  // it really cuts
}

TEST(RequestCutter, FullCuttingStallsSingleSourceForever) {
  constexpr std::size_t n = 12;
  constexpr std::uint32_t k = 8;
  RequestCutterConfig cfg;
  cfg.n = n;
  cfg.target_edges = 30;
  cfg.cut_probability = 1.0;
  cfg.seed = 7;
  RequestCutterAdversary adversary(cfg);
  const RunResult r = run_single_source(n, k, 0, adversary, /*max_rounds=*/600);
  // Every response edge is cut before delivery: no node ever completes...
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.metrics.learnings, 0u);
  // ...yet the competitive accounting stays within the Theorem 3.1 budget:
  // messages - TC <= c (n^2 + nk).
  EXPECT_LE(r.metrics.competitive_residual(1.0),
            4.0 * bounds::single_source_messages(n, k));
  EXPECT_GT(r.metrics.tc, 500u);  // the adversary pays for its sabotage
}

TEST(RequestCutter, PartialCuttingEventuallyCompletes) {
  constexpr std::size_t n = 12;
  constexpr std::uint32_t k = 8;
  RequestCutterConfig cfg;
  cfg.n = n;
  cfg.target_edges = 30;
  cfg.cut_probability = 0.5;
  cfg.seed = 8;
  RequestCutterAdversary adversary(cfg);
  const RunResult r = run_single_source(n, k, 0, adversary, /*max_rounds=*/20'000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.metrics.learnings, static_cast<std::uint64_t>(n - 1) * k);
  EXPECT_LE(r.metrics.competitive_residual(1.0),
            4.0 * bounds::single_source_messages(n, k));
}

TEST(RequestCutter, ZeroProbabilityIsBenignChurn) {
  RequestCutterConfig cfg;
  cfg.n = 10;
  cfg.target_edges = 20;
  cfg.cut_probability = 0.0;
  cfg.seed = 9;
  RequestCutterAdversary adversary(cfg);
  const RunResult r = run_single_source(10, 4, 0, adversary, 2'000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(adversary.cuts(), 0u);
}

}  // namespace
}  // namespace dyngossip
