// Tests for the Section-2 lower-bound adversary: free-edge analysis
// (Lemmas 2.1/2.2) and the potential-throttling behaviour (Theorem 2.3).
#include "adversary/lb_adversary.hpp"

#include <gtest/gtest.h>

#include "common/mathx.hpp"
#include "core/flooding.hpp"
#include "engine/broadcast_engine.hpp"
#include "graph/connectivity.hpp"
#include "metrics/potential.hpp"
#include "sim/bounds.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

TEST(FreeGraph, AllSilentIsOneComponent) {
  constexpr std::size_t n = 8, k = 4;
  std::vector<TokenId> intents(n, kNoToken);
  std::vector<KnowledgeSet> knowledge(n, KnowledgeSet(k));
  std::vector<KnowledgeSet> kprime(n, KnowledgeSet(k));
  const FreeGraphAnalysis a = analyze_free_graph(intents, knowledge, kprime);
  EXPECT_EQ(a.components, 1u);
  EXPECT_EQ(a.broadcasters, 0u);
  EXPECT_EQ(a.forest.size(), n - 1);
}

TEST(FreeGraph, UsefulBroadcasterIsIsolated) {
  // Node 0 broadcasts token 0, which nobody knows and no K' contains:
  // every edge at node 0 is non-free; all other nodes form one free blob.
  constexpr std::size_t n = 6, k = 2;
  std::vector<TokenId> intents(n, kNoToken);
  intents[0] = 0;
  std::vector<KnowledgeSet> knowledge(n, KnowledgeSet(k));
  knowledge[0].set(0);  // token forwarding: the broadcaster holds it
  std::vector<KnowledgeSet> kprime(n, KnowledgeSet(k));
  const FreeGraphAnalysis a = analyze_free_graph(intents, knowledge, kprime);
  EXPECT_EQ(a.components, 2u);
  EXPECT_EQ(a.broadcasters, 1u);
}

TEST(FreeGraph, KPrimeAbsorbsBroadcast) {
  // Same as above but every node's K' contains token 0: the broadcast is
  // useless everywhere, so the free graph is connected.
  constexpr std::size_t n = 6, k = 2;
  std::vector<TokenId> intents(n, kNoToken);
  intents[0] = 0;
  std::vector<KnowledgeSet> knowledge(n, KnowledgeSet(k));
  knowledge[0].set(0);
  std::vector<KnowledgeSet> kprime(n, KnowledgeSet(k));
  for (auto& kp : kprime) kp.set(0);
  const FreeGraphAnalysis a = analyze_free_graph(intents, knowledge, kprime);
  EXPECT_EQ(a.components, 1u);
}

TEST(FreeGraph, KnownTokenIsUseless) {
  // Everyone already knows token 0: broadcasting it creates no non-free edge.
  constexpr std::size_t n = 5, k = 1;
  std::vector<TokenId> intents(n, 0);
  std::vector<KnowledgeSet> knowledge(n, KnowledgeSet(k, /*initially_set=*/true));
  std::vector<KnowledgeSet> kprime(n, KnowledgeSet(k));
  const FreeGraphAnalysis a = analyze_free_graph(intents, knowledge, kprime);
  EXPECT_EQ(a.components, 1u);
  EXPECT_EQ(a.broadcasters, n);
}

TEST(FreeGraph, FullFreeEdgeListMatchesForestComponents) {
  Rng rng(7);
  constexpr std::size_t n = 24, k = 16;
  std::vector<KnowledgeSet> knowledge(n, KnowledgeSet(k));
  std::vector<KnowledgeSet> kprime = sample_kprime(n, k, 0.25, rng);
  std::vector<TokenId> intents(n, kNoToken);
  for (std::size_t v = 0; v < n; ++v) {
    if (rng.bernoulli(0.5)) {
      const auto t = static_cast<TokenId>(rng.next_below(k));
      knowledge[v].set(t);
      intents[v] = t;
    }
  }
  std::vector<EdgeKey> all_free;
  const FreeGraphAnalysis a = analyze_free_graph(intents, knowledge, kprime, &all_free);
  // The full free graph must have the same component structure as the forest.
  const Graph forest_g(n, a.forest);
  const Graph full_g(n, all_free);
  EXPECT_EQ(connected_components(forest_g).count, a.components);
  EXPECT_EQ(connected_components(full_g).count, a.components);
  EXPECT_GE(all_free.size(), a.forest.size());
}

// --- Lemma 2.2: sparse token assignments leave the free graph connected ---

class SparseAssignmentTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparseAssignmentTest, SparseBroadcastersSingleComponent) {
  Rng rng(GetParam());
  constexpr std::size_t n = 128, k = 64;
  std::vector<KnowledgeSet> knowledge(n, KnowledgeSet(k));
  const std::vector<KnowledgeSet> kprime = sample_kprime(n, k, 0.25, rng);
  // Lemma 2.2 sparsity: β <= n / (c log n); c = 4 at n = 128 gives β <= 4.
  const auto beta = static_cast<std::size_t>(
      bounds::sparse_broadcaster_threshold(n, 4.0));
  ASSERT_GE(beta, 1u);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TokenId> intents(n, kNoToken);
    for (const auto v : rng.sample_without_replacement(n, beta)) {
      const auto t = static_cast<TokenId>(rng.next_below(k));
      knowledge[v].set(t);  // broadcaster must hold the token
      intents[v] = t;
    }
    const FreeGraphAnalysis a = analyze_free_graph(intents, knowledge, kprime);
    EXPECT_EQ(a.components, 1u) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseAssignmentTest,
                         ::testing::Values(11, 22, 33, 44));

// --- Lemma 2.1: components stay O(log n) for arbitrary assignments --------

TEST(FreeGraph, ComponentsLogarithmicUnderDenseBroadcast) {
  Rng rng(55);
  constexpr std::size_t n = 128, k = 128;
  std::vector<KnowledgeSet> knowledge(n, KnowledgeSet(k));
  const std::vector<KnowledgeSet> kprime = sample_kprime(n, k, 0.25, rng);
  std::size_t worst = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<TokenId> intents(n);
    for (std::size_t v = 0; v < n; ++v) {
      const auto t = static_cast<TokenId>(rng.next_below(k));
      knowledge[v].set(t);
      intents[v] = t;
    }
    worst = std::max(worst, analyze_free_graph(intents, knowledge, kprime).components);
  }
  // Lemma 2.1: O(log n) components; allow a generous constant.
  EXPECT_LE(worst, 6 * static_cast<std::size_t>(log2_clamped(n)));
}

// --- The adversary itself ---------------------------------------------------

std::vector<KnowledgeSet> one_per_token(std::size_t n, std::size_t k,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k));
  for (std::size_t t = 0; t < k; ++t) init[rng.next_below(n)].set(t);
  return init;
}

TEST(LowerBoundAdversary, InitialPotentialWithinBudget) {
  constexpr std::size_t n = 64, k = 64;
  const auto init = one_per_token(n, k, 3);
  LbAdversaryConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.seed = 5;
  LowerBoundAdversary adversary(cfg, init);
  EXPECT_LE(adversary.initial_potential(),
            static_cast<std::uint64_t>(0.8 * n * k));
  EXPECT_EQ(adversary.kprime().size(), n);
}

TEST(LowerBoundAdversary, RoundGraphsAreConnected) {
  constexpr std::size_t n = 32, k = 16;
  const auto init = one_per_token(n, k, 4);
  LbAdversaryConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.seed = 6;
  LowerBoundAdversary adversary(cfg, init);
  // Drive the adversary with arbitrary token assignments.
  Rng rng(9);
  std::vector<KnowledgeSet> knowledge = init;
  for (Round r = 1; r <= 40; ++r) {
    std::vector<TokenId> intents(n, kNoToken);
    for (std::size_t v = 0; v < n; ++v) {
      const auto held = knowledge[v].set_positions();
      if (!held.empty() && rng.bernoulli(0.7)) {
        intents[v] = static_cast<TokenId>(held[rng.next_below(held.size())]);
      }
    }
    BroadcastRoundView view;
    view.round = r;
    view.intents = intents;
    view.knowledge = &knowledge;
    const Graph g = adversary.broadcast_round(view);
    EXPECT_TRUE(is_connected(g)) << "round " << r;
    // Simulate delivery so knowledge evolves.
    for (NodeId v = 0; v < n; ++v) {
      for (const NodeId u : g.neighbors(v)) {
        if (intents[u] != kNoToken) knowledge[v].set(intents[u]);
      }
    }
  }
}

TEST(LowerBoundAdversary, SparseRoundsMakeZeroPotentialProgress) {
  // The defining property (Lemma 2.2 applied): rounds with at most
  // n/(c log n) broadcasters must not increase Φ.  Run naive flooding and
  // check the recorded series.
  constexpr std::size_t n = 64, k = 16;
  const auto init = one_per_token(n, k, 12);
  LbAdversaryConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.seed = 13;
  cfg.record_series = true;
  LowerBoundAdversary adversary(cfg, init);
  BroadcastEngine engine(PhaseFloodingNode::make_all(n, k, init), adversary, init, k);
  engine.run(static_cast<Round>(4 * n * k));
  ASSERT_TRUE(engine.all_complete());

  const auto& series = adversary.series();
  ASSERT_GT(series.size(), 2u);
  const auto sparse = static_cast<std::uint32_t>(
      bounds::sparse_broadcaster_threshold(n, 4.0));
  std::uint64_t final_phi = potential(
      std::vector<KnowledgeSet>(n, KnowledgeSet(k, true)), adversary.kprime());
  EXPECT_EQ(final_phi, static_cast<std::uint64_t>(n) * k);
  for (std::size_t i = 0; i + 1 < series.size(); ++i) {
    const auto delta = static_cast<std::int64_t>(series[i + 1].phi_before) -
                       static_cast<std::int64_t>(series[i].phi_before);
    EXPECT_GE(delta, 0);  // Φ is monotone
    if (series[i].broadcasters <= sparse) {
      EXPECT_EQ(delta, 0) << "sparse round " << i << " made progress";
    }
    // Progress is bounded by 2(components - 1) (Section 2).
    EXPECT_LE(delta, 2 * (static_cast<std::int64_t>(series[i].components) - 1));
  }
}

TEST(LowerBoundAdversary, DenseInitialKnowledgeWithinTheoremPremise) {
  // Theorem 2.3 allows each token at an arbitrary node subset as long as
  // nodes know at most k/2 tokens on average.  Give every node a random
  // half-ish of the tokens: the Φ(0) <= 0.8nk resampling must still
  // succeed and the run must complete under throttle.
  constexpr std::size_t n = 32, k = 16;
  Rng rng(31);
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k));
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t t = 0; t < k; ++t) {
      if (rng.bernoulli(0.45)) init[v].set(t);
    }
  }
  // Every token must exist somewhere for dissemination to be solvable.
  for (std::size_t t = 0; t < k; ++t) init[t % n].set(t);
  LbAdversaryConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.seed = 32;
  LowerBoundAdversary adversary(cfg, init);
  EXPECT_LE(adversary.initial_potential(),
            static_cast<std::uint64_t>(0.8 * n * k));
  const RunResult r = run_phase_flooding(n, k, init, adversary,
                                         static_cast<Round>(10 * n * k));
  EXPECT_TRUE(r.completed);
}

TEST(LowerBoundAdversaryDeath, SaturatedInitialKnowledgeRejected) {
  // If everyone already knows everything, Φ(0) = nk > 0.8nk can never be
  // met: the constructor must refuse (the theorem premise is violated).
  constexpr std::size_t n = 8, k = 8;
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k, /*initially_set=*/true));
  LbAdversaryConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.seed = 33;
  EXPECT_DEATH(LowerBoundAdversary(cfg, init), "DG_CHECK");
}

TEST(LowerBoundAdversary, FullFreeGraphModeAlsoConnected) {
  constexpr std::size_t n = 24, k = 8;
  const auto init = one_per_token(n, k, 21);
  LbAdversaryConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.seed = 22;
  cfg.full_free_graph = true;
  LowerBoundAdversary adversary(cfg, init);
  std::vector<KnowledgeSet> knowledge = init;
  std::vector<TokenId> intents(n, kNoToken);
  BroadcastRoundView view;
  view.round = 1;
  view.intents = intents;
  view.knowledge = &knowledge;
  const Graph g = adversary.broadcast_round(view);
  EXPECT_TRUE(is_connected(g));
  // All-silent: the full free graph is the complete graph.
  EXPECT_EQ(g.num_edges(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace dyngossip
