// Adversary registry: spec parse/describe round-trips, unknown
// family/key rejection, and bit-identity of registry-built schedules
// against hand-constructed adversaries.
#include "adversary/registry.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/sigma_stable.hpp"
#include "graph/generators.hpp"
#include "sim/simulator.hpp"
#include "trace/run_payload.hpp"
#include "trace/trace_gen.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"

namespace dyngossip {
namespace {

std::uint64_t payload_of(Adversary& adversary, std::size_t n, std::uint32_t k) {
  const RunResult r =
      run_single_source(n, k, 0, adversary, static_cast<Round>(100 * n * k));
  return run_payload_checksum(n, k, r);
}

TEST(AdversarySpec, ParsesFamilyAloneAndKeyValueLists) {
  const AdversarySpec bare = AdversarySpec::parse("star");
  EXPECT_EQ(bare.family, "star");
  EXPECT_TRUE(bare.params.empty());
  EXPECT_EQ(bare.to_string(), "star");

  const AdversarySpec full = AdversarySpec::parse("sigma:turnover=0.03,interval=16");
  EXPECT_EQ(full.family, "sigma");
  ASSERT_EQ(full.params.size(), 2u);
  EXPECT_EQ(full.params.at("interval"), "16");
  EXPECT_EQ(full.params.at("turnover"), "0.03");
  // Canonical form sorts keys; re-parsing it is a fixed point.
  EXPECT_EQ(full.to_string(), "sigma:interval=16,turnover=0.03");
  EXPECT_EQ(AdversarySpec::parse(full.to_string()), full);
}

TEST(AdversarySpec, RejectsMalformedText) {
  for (const char* bad :
       {"", ":", "churn:rate", "churn:=3", "churn:rate=1,,",
        "churn:rate=1,x", "Churn:rate=1", "churn:ra te=1",
        "churn:rate=1,rate=2"}) {
    EXPECT_THROW((void)AdversarySpec::parse(bad), AdversarySpecError) << bad;
  }
  // `family:` is the explicit no-params spelling (shared grammar with the
  // algorithm registry, where `--algo=flooding:` is idiomatic).
  EXPECT_EQ(AdversarySpec::parse("churn:").to_string(), "churn");
}

TEST(AdversarySpec, SettersRoundTripNumbers) {
  AdversarySpec spec{"churn", {}};
  spec.set("edges", std::uint64_t{96}).set("rate", 0.03).set("graph", "gnp");
  EXPECT_EQ(spec.params.at("edges"), "96");
  EXPECT_EQ(spec.params.at("graph"), "gnp");
  // %.17g renders doubles exactly; strtod gets the same value back.
  EXPECT_EQ(std::strtod(spec.params.at("rate").c_str(), nullptr), 0.03);
}

TEST(AdversaryRegistry, GlobalListsEveryFamilyWithDescribedKeys) {
  const AdversaryRegistry& registry = AdversaryRegistry::global();
  for (const char* name : {"static", "churn", "fresh", "sigma", "star", "path",
                           "cutter", "lb", "scripted", "smoothed", "trace"}) {
    const AdversaryFamily* family = registry.find(name);
    ASSERT_NE(family, nullptr) << name;
    EXPECT_FALSE(family->description.empty()) << name;
    EXPECT_FALSE(family->example.empty()) << name;
  }
  EXPECT_EQ(registry.size(), 11u);
  EXPECT_EQ(registry.list().size(), 11u);
}

TEST(AdversaryRegistry, RejectsUnknownFamilyAndUnknownKey) {
  const AdversaryRegistry& registry = AdversaryRegistry::global();
  EXPECT_THROW(registry.validate(AdversarySpec::parse("bogus")),
               AdversarySpecError);
  EXPECT_THROW(registry.validate(AdversarySpec::parse("churn:rte=0.1")),
               AdversarySpecError);
  // Bad values surface at build time (parsing is strict).
  AdversaryBuildContext ctx;
  ctx.n = 16;
  EXPECT_THROW((void)registry.build("churn:rate=0.1x", ctx), AdversarySpecError);
  EXPECT_THROW((void)registry.build("cutter:p=1.5", ctx), AdversarySpecError);
  // Fraction-shaped keys reject values outside [0, 1] (a negative double
  // cast to size_t would be UB).
  EXPECT_THROW((void)registry.build("churn:rate=-0.5", ctx), AdversarySpecError);
  EXPECT_THROW((void)registry.build("sigma:turnover=1.5", ctx),
               AdversarySpecError);
  EXPECT_THROW((void)registry.build("static:graph=gnp,p=-1", ctx),
               AdversarySpecError);
  EXPECT_THROW((void)registry.build("static:graph=moebius", ctx),
               AdversarySpecError);
  // lb without run-side context must explain what is missing.
  EXPECT_THROW((void)registry.build("lb", ctx), AdversarySpecError);
  // Most families need a node count.
  EXPECT_THROW((void)registry.build("churn", AdversaryBuildContext{}),
               AdversarySpecError);
}

TEST(AdversaryRegistry, ChurnSpecMatchesHandConstructedSweep) {
  for (const std::size_t n : {24u, 48u}) {
    for (const double rate : {0.05, 0.25}) {
      const auto k = static_cast<std::uint32_t>(2 * n);
      const std::uint64_t seed = 4'400 + n;
      AdversarySpec spec{"churn", {}};
      spec.set("edges", static_cast<std::uint64_t>(3 * n))
          .set("rate", rate)
          .set("sigma", std::uint64_t{3});
      const std::unique_ptr<Adversary> built = build_adversary(spec, n, seed);

      ChurnConfig cc;
      cc.n = n;
      cc.target_edges = 3 * n;
      cc.churn_per_round =
          static_cast<std::size_t>(rate * static_cast<double>(3 * n));
      cc.sigma = 3;
      cc.seed = seed;
      ChurnAdversary hand(cc);

      EXPECT_EQ(payload_of(*built, n, k), payload_of(hand, n, k))
          << "n=" << n << " rate=" << rate;
    }
  }
}

TEST(AdversaryRegistry, SigmaTurnoverSpecMatchesHandConstructed) {
  const std::size_t n = 32;
  const auto k = static_cast<std::uint32_t>(2 * n);
  AdversarySpec spec{"sigma", {}};
  spec.set("edges", std::uint64_t{96})
      .set("turnover", 0.5)
      .set("interval", std::uint64_t{4});
  const std::unique_ptr<Adversary> built = build_adversary(spec, n, 99);

  SigmaStableChurnConfig sc;
  sc.n = n;
  sc.target_edges = 96;
  sc.churn_per_interval = 48;
  sc.sigma = 4;
  sc.seed = 99;
  SigmaStableChurnAdversary hand(sc);
  EXPECT_EQ(payload_of(*built, n, k), payload_of(hand, n, k));
}

TEST(AdversaryRegistry, ExplicitSeedKeyPinsTheScheduleAcrossContextSeeds) {
  const std::size_t n = 24;
  const auto k = static_cast<std::uint32_t>(n);
  const std::unique_ptr<Adversary> a =
      build_adversary(AdversarySpec::parse("churn:seed=5"), n, /*seed=*/1);
  const std::unique_ptr<Adversary> b =
      build_adversary(AdversarySpec::parse("churn:seed=5"), n, /*seed=*/2);
  EXPECT_EQ(payload_of(*a, n, k), payload_of(*b, n, k));
  // Without seed=, the context (per-trial) seed differentiates schedules.
  const std::unique_ptr<Adversary> c =
      build_adversary(AdversarySpec::parse("churn"), n, /*seed=*/1);
  const std::unique_ptr<Adversary> d =
      build_adversary(AdversarySpec::parse("churn"), n, /*seed=*/2);
  EXPECT_NE(payload_of(*c, n, k), payload_of(*d, n, k));
}

TEST(AdversaryRegistry, EveryRunnableFamilyCompletesASmallRun) {
  const std::size_t n = 16;
  const auto k = static_cast<std::uint32_t>(n);
  for (const char* text :
       {"static", "static:graph=gnp,p=0.3", "static:graph=cycle", "churn",
        "fresh", "sigma:interval=2", "star", "path", "cutter:p=0.3"}) {
    const std::unique_ptr<Adversary> adversary =
        build_adversary(AdversarySpec::parse(text), n, 7);
    const RunResult r = run_single_source(n, k, 0, *adversary,
                                          static_cast<Round>(200 * n * k));
    EXPECT_TRUE(r.completed) << text;
  }
}

TEST(AdversaryRegistry, ScriptedUsesContextScript) {
  AdversaryBuildContext ctx;
  ctx.n = 6;
  ctx.script = {path_graph(6), cycle_graph(6)};
  const std::unique_ptr<Adversary> adversary =
      AdversaryRegistry::global().build(AdversarySpec{"scripted", {}}, ctx);
  EXPECT_EQ(adversary->num_nodes(), 6u);
  BroadcastRoundView view;
  view.round = 1;
  EXPECT_EQ(adversary->broadcast_round(view).num_edges(), 5u);  // path
  view.round = 2;
  EXPECT_EQ(adversary->broadcast_round(view).num_edges(), 6u);  // cycle
  view.round = 3;
  EXPECT_EQ(adversary->broadcast_round(view).num_edges(), 6u);  // last repeats
}

class FileBackedFamilies : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "registry_test_trace.dgt";
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    BinaryTraceWriter writer(out, /*n=*/16, /*seed=*/3, "test");
    ChurnConfig cc;
    cc.n = 16;
    cc.target_edges = 32;
    cc.churn_per_round = 2;
    cc.seed = 3;
    ChurnAdversary source(cc);
    record_schedule(source, /*rounds=*/64, writer);
    writer.finish();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(FileBackedFamilies, TraceAndScriptedReplayTheSameSchedule) {
  const auto k = static_cast<std::uint32_t>(8);
  const std::unique_ptr<Adversary> trace =
      build_adversary(AdversarySpec::parse("trace:file=" + path_), 16, 1);
  const std::unique_ptr<Adversary> scripted =
      build_adversary(AdversarySpec::parse("scripted:file=" + path_), 16, 1);
  EXPECT_EQ(payload_of(*trace, 16, k), payload_of(*scripted, 16, k));
}

TEST_F(FileBackedFamilies, MismatchedContextNodeCountIsASpecError) {
  EXPECT_THROW(
      (void)build_adversary(AdversarySpec::parse("trace:file=" + path_), 17, 1),
      AdversarySpecError);
}

TEST_F(FileBackedFamilies, SmoothedAdversaryMatchesSmoothTraceOutput) {
  // Registry-built live smoothing must realize the exact graphs smooth_trace
  // writes for the same base + seed.
  SmoothedTraceConfig cfg;
  cfg.flips_per_round = 4;
  cfg.seed = 11;
  std::stringstream smoothed(std::ios::in | std::ios::out | std::ios::binary);
  {
    const std::unique_ptr<TraceSource> base = open_trace_source(path_);
    BinaryTraceWriter writer(smoothed, 16, cfg.seed, "smoothed");
    smooth_trace(*base, cfg, writer);
    writer.finish();
  }
  std::stringstream live(std::ios::in | std::ios::out | std::ios::binary);
  {
    const std::unique_ptr<Adversary> adversary = build_adversary(
        AdversarySpec::parse("smoothed:base=" + path_ + ",flips=4,seed=11"), 16,
        1);
    auto* oblivious = dynamic_cast<ObliviousAdversary*>(adversary.get());
    ASSERT_NE(oblivious, nullptr);
    BinaryTraceWriter writer(live, 16, cfg.seed, "smoothed");
    record_schedule(*oblivious, /*rounds=*/64, writer);
    writer.finish();
  }
  smoothed.seekg(0);
  live.seekg(0);
  EXPECT_EQ(BinaryTraceReader(smoothed).header().checksum,
            BinaryTraceReader(live).header().checksum);
}

TEST(AdversaryRegistryDescribe, FlagsContextDependentFamilies) {
  // The lb family builds inside a run (it needs k + initial knowledge) but
  // cannot be replayed from its spec alone; describe() must surface that
  // caveat so `dyngossip adversaries` prints it instead of leaving it
  // folkloric.  Spec-replayable families carry no caveat.
  const AdversaryRegistry& registry = AdversaryRegistry::global();
  ASSERT_NE(registry.find("lb"), nullptr);
  EXPECT_TRUE(registry.find("lb")->needs_run_context);
  EXPECT_NE(registry.describe("lb").find("not spec-replayable"),
            std::string::npos);
  EXPECT_NE(registry.describe("lb").find("trace:file="), std::string::npos);
  EXPECT_FALSE(registry.find("churn")->needs_run_context);
  EXPECT_EQ(registry.describe("churn").find("not spec-replayable"),
            std::string::npos);
  EXPECT_EQ(registry.describe("no_such_family"), "");
}

}  // namespace
}  // namespace dyngossip
