// Tests for the σ-interval-stable high-churn adversary.
#include "adversary/sigma_stable.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/connectivity.hpp"
#include "graph/dynamic_tracker.hpp"

namespace dyngossip {
namespace {

SigmaStableChurnConfig base_config() {
  SigmaStableChurnConfig cfg;
  cfg.n = 24;
  cfg.target_edges = 60;
  cfg.churn_per_interval = 60;  // full rewire budget every boundary
  cfg.sigma = 4;
  cfg.seed = 42;
  return cfg;
}

TEST(SigmaStable, AlwaysConnected) {
  SigmaStableChurnAdversary adversary(base_config());
  UnicastRoundView v;
  for (Round r = 1; r <= 200; ++r) {
    v.round = r;
    EXPECT_TRUE(is_connected(adversary.unicast_round(v))) << "round " << r;
  }
}

TEST(SigmaStable, GraphFrozenWithinIntervals) {
  SigmaStableChurnAdversary adversary(base_config());
  UnicastRoundView v;
  std::vector<EdgeKey> interval_edges;
  for (Round r = 1; r <= 120; ++r) {
    v.round = r;
    const std::vector<EdgeKey> edges = adversary.unicast_round(v).sorted_edges();
    if ((r - 1) % 4 == 0) {
      interval_edges = edges;
    } else {
      EXPECT_EQ(edges, interval_edges) << "round " << r << " changed mid-interval";
    }
  }
}

TEST(SigmaStable, EveryEdgeSurvivesAtLeastSigmaRounds) {
  const SigmaStableChurnConfig cfg = base_config();
  SigmaStableChurnAdversary adversary(cfg);
  UnicastRoundView v;
  std::map<EdgeKey, Round> inserted_at;
  std::vector<EdgeKey> prev;
  for (Round r = 1; r <= 240; ++r) {
    v.round = r;
    const std::vector<EdgeKey> cur = adversary.unicast_round(v).sorted_edges();
    // Edges in prev but not cur disappeared at round r; they must have been
    // present for >= sigma rounds (inserted at r0, present r0..r-1).
    std::size_t p = 0, c = 0;
    while (p < prev.size()) {
      while (c < cur.size() && cur[c] < prev[p]) ++c;
      if (c >= cur.size() || cur[c] != prev[p]) {
        const Round r0 = inserted_at.at(prev[p]);
        EXPECT_GE(r - r0, cfg.sigma)
            << "edge lived only " << (r - r0) << " rounds (round " << r << ")";
        inserted_at.erase(prev[p]);
      }
      ++p;
    }
    for (const EdgeKey key : cur) {
      if (inserted_at.find(key) == inserted_at.end()) inserted_at[key] = r;
    }
    prev = cur;
  }
}

TEST(SigmaStable, HighChurnActuallyTurnsOverTheEdgeSet) {
  SigmaStableChurnAdversary adversary(base_config());
  DynamicGraphTracker tracker(24);
  UnicastRoundView v;
  for (Round r = 1; r <= 80; ++r) {
    v.round = r;
    tracker.advance(adversary.unicast_round(v), r);
  }
  // 80 rounds = 19 rewires with a full-edge-set budget: most of the ~60-edge
  // graph is replaced at every boundary.
  EXPECT_GT(tracker.deletions(), 500u);
  EXPECT_GT(tracker.topological_changes(), 500u);
}

TEST(SigmaStable, DeterministicAndOblivious) {
  SigmaStableChurnAdversary a(base_config()), b(base_config());
  std::vector<KnowledgeSet> knowledge(24, KnowledgeSet(4, true));
  for (Round r = 1; r <= 60; ++r) {
    UnicastRoundView va;
    va.round = r;
    UnicastRoundView vb;
    vb.round = r;
    vb.knowledge = &knowledge;
    EXPECT_EQ(a.unicast_round(va).sorted_edges(), b.unicast_round(vb).sorted_edges());
  }
}

TEST(SigmaStable, EdgeCountHoldsAtTarget) {
  SigmaStableChurnAdversary adversary(base_config());
  UnicastRoundView v;
  for (Round r = 1; r <= 60; ++r) {
    v.round = r;
    EXPECT_GE(adversary.unicast_round(v).num_edges(), 60u);
  }
}

TEST(SigmaStable, SigmaOneDegeneratesToPerRoundRewiring) {
  SigmaStableChurnConfig cfg = base_config();
  cfg.sigma = 1;
  SigmaStableChurnAdversary adversary(cfg);
  DynamicGraphTracker tracker(24);
  UnicastRoundView v;
  for (Round r = 1; r <= 40; ++r) {
    v.round = r;
    const Graph& g = adversary.unicast_round(v);
    EXPECT_TRUE(is_connected(g));
    tracker.advance(g, r);
  }
  EXPECT_GT(tracker.deletions(), 500u);  // every round rewires
}

TEST(SigmaStable, TargetBelowTreeIsRaised) {
  SigmaStableChurnConfig cfg;
  cfg.n = 10;
  cfg.target_edges = 3;  // a connected graph needs >= 9
  cfg.sigma = 2;
  cfg.seed = 1;
  SigmaStableChurnAdversary adversary(cfg);
  UnicastRoundView v;
  v.round = 1;
  const Graph& g = adversary.unicast_round(v);
  EXPECT_GE(g.num_edges(), 9u);
  EXPECT_TRUE(is_connected(g));
}

}  // namespace
}  // namespace dyngossip
