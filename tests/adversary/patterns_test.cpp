// Tests for the rotating-star and path-shuffle adversaries.
#include "adversary/patterns.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/dynamic_tracker.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

TEST(RotatingStar, EveryRoundIsAStar) {
  RotatingStarAdversary adversary(8, 3);
  UnicastRoundView v;
  for (Round r = 1; r <= 20; ++r) {
    v.round = r;
    const Graph g = adversary.unicast_round(v);
    EXPECT_EQ(g.num_edges(), 7u);
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(g.degree(adversary.center_of(r)), 7u);
  }
}

TEST(RotatingStar, CenterCyclesThroughAllNodes) {
  constexpr std::size_t n = 6;
  RotatingStarAdversary adversary(n, 4);
  std::set<NodeId> centers;
  for (Round r = 1; r <= n; ++r) centers.insert(adversary.center_of(r));
  EXPECT_EQ(centers.size(), n);  // a permutation: all distinct
  // ... and it wraps.
  EXPECT_EQ(adversary.center_of(1), adversary.center_of(n + 1));
}

TEST(RotatingStar, MassiveTopologicalChange) {
  constexpr std::size_t n = 16;
  RotatingStarAdversary adversary(n, 5);
  DynamicGraphTracker tracker(n);
  UnicastRoundView v;
  for (Round r = 1; r <= 20; ++r) {
    v.round = r;
    tracker.advance(adversary.unicast_round(v), r);
  }
  // Each center change replaces ~n-2 edges.
  EXPECT_GT(tracker.topological_changes(), 19u * (n - 3));
}

TEST(RotatingStar, SingleSourceStillCompletesWithCompetitiveCost) {
  constexpr std::size_t n = 16;
  constexpr std::uint32_t k = 8;
  RotatingStarAdversary adversary(n, 6);
  const RunResult r = run_single_source(n, k, 0, adversary, 200'000);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.metrics.learnings, static_cast<std::uint64_t>(n - 1) * k);
  EXPECT_EQ(r.metrics.duplicate_token_deliveries, 0u);
  // TC is huge here; the residual must still be modest.
  EXPECT_LE(r.metrics.competitive_residual(1.0),
            4.0 * (static_cast<double>(n) * n + static_cast<double>(n) * k));
}

TEST(PathShuffle, EveryRoundIsAHamiltonianPath) {
  PathShuffleAdversary adversary(10, 7);
  UnicastRoundView v;
  for (Round r = 1; r <= 20; ++r) {
    v.round = r;
    const Graph g = adversary.unicast_round(v);
    EXPECT_EQ(g.num_edges(), 9u);
    EXPECT_TRUE(is_connected(g));
    // A path has exactly two degree-1 endpoints, the rest degree 2.
    std::size_t deg1 = 0;
    for (NodeId u = 0; u < 10; ++u) {
      EXPECT_LE(g.degree(u), 2u);
      deg1 += (g.degree(u) == 1);
    }
    EXPECT_EQ(deg1, 2u);
  }
}

TEST(PathShuffle, DeterministicPerRound) {
  PathShuffleAdversary a(10, 8), b(10, 8);
  UnicastRoundView v;
  // Rounds can even be queried out of order (lazy materialization of a
  // committed schedule).
  v.round = 5;
  const Graph g5a = a.unicast_round(v);
  v.round = 2;
  (void)a.unicast_round(v);
  v.round = 5;
  EXPECT_EQ(g5a.sorted_edges(), b.unicast_round(v).sorted_edges());
}

TEST(PathShuffle, FloodingCompletesDespiteThinConnectivity) {
  constexpr std::size_t n = 12, k = 4;
  PathShuffleAdversary adversary(n, 9);
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k));
  for (std::size_t t = 0; t < k; ++t) init[t].set(t);
  const RunResult r = run_phase_flooding(n, k, init, adversary,
                                         static_cast<Round>(10 * n * k));
  EXPECT_TRUE(r.completed);
  EXPECT_LE(r.rounds, n * k);  // the guarantee holds against ANY adversary
}

}  // namespace
}  // namespace dyngossip
