// Tests for the oblivious churn adversary.
#include "adversary/churn.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/dynamic_tracker.hpp"

namespace dyngossip {
namespace {

ChurnConfig base_config() {
  ChurnConfig cfg;
  cfg.n = 20;
  cfg.target_edges = 50;
  cfg.churn_per_round = 5;
  cfg.sigma = 1;
  cfg.seed = 42;
  return cfg;
}

TEST(Churn, AlwaysConnected) {
  ChurnAdversary adversary(base_config());
  UnicastRoundView v;
  for (Round r = 1; r <= 300; ++r) {
    v.round = r;
    EXPECT_TRUE(is_connected(adversary.unicast_round(v))) << "round " << r;
  }
}

TEST(Churn, EdgeCountStaysNearTarget) {
  ChurnAdversary adversary(base_config());
  UnicastRoundView v;
  for (Round r = 1; r <= 100; ++r) {
    v.round = r;
    const Graph g = adversary.unicast_round(v);
    EXPECT_GE(g.num_edges(), 45u);
    EXPECT_LE(g.num_edges(), 60u);
  }
}

TEST(Churn, ActuallyChurns) {
  ChurnAdversary adversary(base_config());
  DynamicGraphTracker tracker(20);
  UnicastRoundView v;
  for (Round r = 1; r <= 50; ++r) {
    v.round = r;
    tracker.advance(adversary.unicast_round(v), r);
  }
  // 5 deletions/round (minus warm-up) must show up in TC.
  EXPECT_GT(tracker.topological_changes(), 150u);
  EXPECT_GT(tracker.deletions(), 100u);
}

TEST(Churn, DeterministicUnderSeed) {
  ChurnAdversary a(base_config()), b(base_config());
  UnicastRoundView v;
  for (Round r = 1; r <= 40; ++r) {
    v.round = r;
    EXPECT_EQ(a.unicast_round(v).sorted_edges(), b.unicast_round(v).sorted_edges());
  }
}

TEST(Churn, ObliviousIgnoresViews) {
  // Identical seeds with totally different views must produce identical
  // schedules — the defining property of the oblivious adversary.
  ChurnAdversary a(base_config()), b(base_config());
  std::vector<KnowledgeSet> knowledge_a(20, KnowledgeSet(4, true));
  std::vector<KnowledgeSet> knowledge_b(20, KnowledgeSet(4));
  std::vector<SentRecord> traffic_b{{0, 1, Message::request(2)}};
  Graph prev(20);
  for (Round r = 1; r <= 30; ++r) {
    UnicastRoundView va;
    va.round = r;
    va.knowledge = &knowledge_a;
    UnicastRoundView vb;
    vb.round = r;
    vb.knowledge = &knowledge_b;
    vb.prev_messages = &traffic_b;
    vb.prev_graph = &prev;
    EXPECT_EQ(a.unicast_round(va).sorted_edges(), b.unicast_round(vb).sorted_edges());
  }
}

TEST(Churn, FreshGraphModeMaximizesChurn) {
  ChurnConfig cfg = base_config();
  cfg.fresh_graph_each_round = true;
  ChurnAdversary adversary(cfg);
  DynamicGraphTracker tracker(20);
  UnicastRoundView v;
  std::uint64_t edge_sum = 0;
  for (Round r = 1; r <= 30; ++r) {
    v.round = r;
    const Graph g = adversary.unicast_round(v);
    EXPECT_TRUE(is_connected(g));
    edge_sum += g.num_edges();
    tracker.advance(g, r);
  }
  // Fresh graphs share few edges: TC approaches the total edge volume.
  EXPECT_GT(tracker.topological_changes(), edge_sum / 2);
}

TEST(Churn, TinyNetworksSupported) {
  ChurnConfig cfg;
  cfg.n = 2;
  cfg.target_edges = 1;
  cfg.churn_per_round = 1;
  cfg.seed = 9;
  ChurnAdversary adversary(cfg);
  UnicastRoundView v;
  for (Round r = 1; r <= 20; ++r) {
    v.round = r;
    const Graph g = adversary.unicast_round(v);
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(g.num_edges(), 1u);  // the only possible connected 2-node graph
  }
}

TEST(Churn, TargetBelowTreeIsRaised) {
  ChurnConfig cfg;
  cfg.n = 10;
  cfg.target_edges = 3;  // impossible: a connected graph needs >= 9
  cfg.seed = 1;
  ChurnAdversary adversary(cfg);
  UnicastRoundView v;
  v.round = 1;
  const Graph g = adversary.unicast_round(v);
  EXPECT_GE(g.num_edges(), 9u);
  EXPECT_TRUE(is_connected(g));
}

}  // namespace
}  // namespace dyngossip
