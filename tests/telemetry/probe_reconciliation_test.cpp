// Series ↔ aggregate reconciliation: for every registered algorithm family,
// the per-round probe deltas must sum exactly to the run's RunMetrics
// totals, and attaching a probe must not perturb the run (payload checksum
// identical to the unprobed run) — the observation contract CI gates on.
#include <cstdint>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "adversary/registry.hpp"
#include "algo/registry.hpp"
#include "telemetry/round_probe.hpp"
#include "trace/run_payload.hpp"

namespace dyngossip {
namespace {

struct ProbedRun {
  RunResult result;
  std::uint64_t checksum = 0;
  std::uint64_t k_realized = 0;
};

AdversarySpec schedule_for(const AlgoFamily& family, std::size_t n) {
  // spanning_tree asserts an unchanging neighborhood; everyone else gets
  // the flagship churn regime.
  if (family.requires_static) return AdversarySpec{"static", {}};
  AdversarySpec spec{"churn", {}};
  spec.set("edges", static_cast<std::uint64_t>(3 * n))
      .set("churn", static_cast<std::uint64_t>(n / 8))
      .set("sigma", std::uint64_t{3});
  return spec;
}

AlgoSpec spec_for(const AlgoFamily& family) {
  AlgoSpec spec{family.name, {}};
  // Force the funnel's walk phase so the test covers the two-phase path
  // (bare `oblivious` at test sizes takes the small-s == multi_source
  // shortcut).
  if (family.name == "oblivious") {
    spec.set("force_phase1", "true").set("f", std::uint64_t{8});
  }
  return spec;
}

ProbedRun run_family(const AlgoFamily& family, RoundProbe* probe,
                     std::uint64_t every = 1) {
  const std::size_t n = 32;
  AlgoBuildContext actx;
  actx.n = n;
  actx.k = 64;
  actx.sources = 4;
  actx.cap = 20'000;
  actx.seed = 7;
  if (probe != nullptr) {
    *probe = RoundProbe(every);
    actx.telemetry.probe = probe;
  }
  const AlgoSpec algo = spec_for(family);
  const std::unique_ptr<Adversary> adversary =
      build_adversary(schedule_for(family, n), n, actx.seed);
  ProbedRun out;
  out.result = run_algo(algo, actx, *adversary);
  out.k_realized = actx.k_realized;
  out.checksum = run_payload_checksum(n, actx.k_realized, out.result);
  return out;
}

void expect_reconciled(const RoundProbe& probe, const RunMetrics& totals,
                       const std::string& family) {
  std::uint64_t sent = 0, learned = 0, requests = 0, served = 0;
  std::uint64_t inserted = 0, removed = 0, dup = 0;
  std::uint64_t last_round = 0;
  for (const RoundProbeSample& s : probe.samples()) {
    EXPECT_GT(s.round, last_round) << family << ": rounds must be increasing";
    last_round = s.round;
    sent += s.sent;
    learned += s.learned;
    requests += s.requests;
    served += s.served;
    inserted += s.edges_inserted;
    removed += s.edges_removed;
    dup += s.duplicated;
  }
  EXPECT_EQ(sent, totals.total_messages()) << family;
  EXPECT_EQ(learned, totals.learnings) << family;
  EXPECT_EQ(requests, totals.unicast.request) << family;
  EXPECT_EQ(served, totals.unicast.token) << family;
  EXPECT_EQ(inserted, totals.tc) << family;
  EXPECT_EQ(removed, totals.deletions) << family;
  // `duplicated` counts FAULT-PLANE duplications (not the algorithm-level
  // duplicate_token_deliveries totals field); these runs are fault-free.
  EXPECT_EQ(dup, 0u) << family;
  EXPECT_EQ(last_round, static_cast<std::uint64_t>(totals.rounds)) << family;
  if (!probe.samples().empty()) {
    EXPECT_NEAR(probe.samples().back().coverage, totals.coverage, 1e-12)
        << family;
  }
}

TEST(ProbeReconciliation, EveryFamilySumsToTotals) {
  for (const AlgoFamily* family : AlgoRegistry::global().list()) {
    RoundProbe probe;
    const ProbedRun probed = run_family(*family, &probe);
    ASSERT_FALSE(probe.samples().empty()) << family->name;
    expect_reconciled(probe, probed.result.metrics, family->name);
  }
}

TEST(ProbeReconciliation, ProbeNeverPerturbsThePayload) {
  for (const AlgoFamily* family : AlgoRegistry::global().list()) {
    RoundProbe probe;
    const ProbedRun plain = run_family(*family, nullptr);
    const ProbedRun probed = run_family(*family, &probe);
    EXPECT_EQ(plain.checksum, probed.checksum) << family->name;
    EXPECT_EQ(plain.k_realized, probed.k_realized) << family->name;
  }
}

TEST(ProbeReconciliation, StrideAccumulatesSkippedRounds) {
  // At every=3 most rounds are skipped; the deltas accumulate across the
  // gap and a final flush sample covers the tail, so sums stay EXACT.
  for (const AlgoFamily* family : AlgoRegistry::global().list()) {
    RoundProbe probe;
    const ProbedRun probed = run_family(*family, &probe, /*every=*/3);
    ASSERT_FALSE(probe.samples().empty()) << family->name;
    expect_reconciled(probe, probed.result.metrics, family->name);
  }
}

}  // namespace
}  // namespace dyngossip
