// Probe-spec grammar: shared family[:key=value,...] parsing, the bare
// key=value shorthand, canonical rendering round-trips, and strict
// rejection of unknown keys/values — the same contract the adversary,
// algorithm, and fault axes enforce.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/probe_spec.hpp"
#include "telemetry/round_probe.hpp"

namespace dyngossip {
namespace {

TEST(ProbeSpec, DefaultsAndBareFamily) {
  const ProbeSpec spec = ProbeSpec::parse("round_series");
  EXPECT_EQ(spec.out, "probe.jsonl");
  EXPECT_EQ(spec.format, ProbeSpec::Format::kJsonl);
  EXPECT_EQ(spec.every, 1u);
  // All-default spec renders as the bare family name.
  EXPECT_EQ(spec.to_string(), "round_series");
  EXPECT_EQ(ProbeSpec::parse("round_series:"), spec);
}

TEST(ProbeSpec, ParseToStringRoundTrips) {
  const char* specs[] = {
      "round_series",
      "round_series:out=series.csv,format=csv",
      "round_series:every=5",
      "round_series:every=3,format=csv,out=-",
  };
  for (const char* text : specs) {
    const ProbeSpec spec = ProbeSpec::parse(text);
    EXPECT_EQ(ProbeSpec::parse(spec.to_string()), spec) << text;
  }
}

TEST(ProbeSpec, BareParameterListIsRoundSeriesShorthand) {
  const ProbeSpec spec = ProbeSpec::parse("out=x.jsonl,every=4");
  EXPECT_EQ(spec.out, "x.jsonl");
  EXPECT_EQ(spec.every, 4u);
  EXPECT_EQ(spec, ProbeSpec::parse("round_series:out=x.jsonl,every=4"));
}

TEST(ProbeSpec, StrictRejection) {
  EXPECT_THROW(ProbeSpec::parse("round_series:bogus=1"), ProbeSpecError);
  EXPECT_THROW(ProbeSpec::parse("no_such_family:out=x"), ProbeSpecError);
  EXPECT_THROW(ProbeSpec::parse("round_series:format=xml"), ProbeSpecError);
  EXPECT_THROW(ProbeSpec::parse("round_series:every=0"), ProbeSpecError);
  EXPECT_THROW(ProbeSpec::parse("round_series:every=-2"), ProbeSpecError);
}

TEST(ProbeSpec, FamilyDocListsEveryKey) {
  const ProbeFamilyDoc doc = probe_family_doc();
  EXPECT_EQ(doc.name, std::string("round_series"));
  EXPECT_FALSE(doc.description.empty());
  // Every grammar key is documented (the CLI listing renders these).
  EXPECT_EQ(doc.keys->size(), probe_spec_keys().size());
}

TEST(ProbeSink, JsonlRowsAndTotalsPerSeries) {
  ProbeSpec spec;
  spec.every = 1;
  ProbeSink sink(spec);
  RoundProbeSample s1;
  s1.round = 1;
  s1.sent = 7;
  s1.learned = 2;
  RunMetrics totals;
  totals.unicast.token = 7;
  totals.learnings = 2;
  totals.rounds = 1;
  sink.add_series("demo trial=0", {s1}, totals);
  ASSERT_EQ(sink.series_count(), 1u);

  std::ostringstream os;
  sink.write_to(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"type\":\"round\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"total\""), std::string::npos);
  EXPECT_NE(text.find("\"series\":\"demo trial=0\""), std::string::npos);
}

TEST(ProbeSink, CsvHeaderAndRows) {
  ProbeSpec spec;
  spec.format = ProbeSpec::Format::kCsv;
  ProbeSink sink(spec);
  RoundProbeSample s1;
  s1.round = 3;
  s1.coverage = 0.5;
  sink.add_series("csv run", {s1}, RunMetrics{});

  std::ostringstream os;
  sink.write_to(os);
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("series,round,coverage,", 0), 0u);
  EXPECT_NE(text.find("csv run,3,"), std::string::npos);
}

}  // namespace
}  // namespace dyngossip
