// Tests for the per-round series recorder.
#include "telemetry/series.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "adversary/static_adversary.hpp"
#include "core/single_source.hpp"
#include "engine/unicast_engine.hpp"
#include "graph/generators.hpp"

namespace dyngossip {
namespace {

TEST(SeriesRecorder, RecordsOneSamplePerRound) {
  constexpr std::size_t n = 6;
  constexpr std::uint32_t k = 4;
  StaticAdversary adversary(path_graph(n));
  SingleSourceConfig cfg{n, k, 0};
  UnicastEngine engine(SingleSourceNode::make_all(cfg), adversary,
                       SingleSourceNode::initial_knowledge(cfg), k);
  SeriesRecorder recorder;
  engine.set_round_hook(recorder.hook());
  engine.run(10'000);
  ASSERT_TRUE(engine.all_complete());
  ASSERT_EQ(recorder.samples().size(), engine.metrics().rounds);
  // Cumulative counters are monotone; rounds are 1..R.
  for (std::size_t i = 0; i < recorder.samples().size(); ++i) {
    const RoundSample& s = recorder.samples()[i];
    EXPECT_EQ(s.round, i + 1);
    EXPECT_EQ(s.edges, n - 1);  // static path
    if (i > 0) {
      EXPECT_GE(s.messages, recorder.samples()[i - 1].messages);
      EXPECT_GE(s.learnings, recorder.samples()[i - 1].learnings);
    }
  }
  // Final cumulative values match the engine's metrics.
  EXPECT_EQ(recorder.samples().back().messages, engine.metrics().total_messages());
  EXPECT_EQ(recorder.samples().back().learnings, engine.metrics().learnings);
  EXPECT_EQ(recorder.samples().back().tc, engine.metrics().tc);
}

TEST(SeriesRecorder, IncrementsSumToTotals) {
  constexpr std::size_t n = 8;
  constexpr std::uint32_t k = 5;
  StaticAdversary adversary(cycle_graph(n));
  SingleSourceConfig cfg{n, k, 0};
  UnicastEngine engine(SingleSourceNode::make_all(cfg), adversary,
                       SingleSourceNode::initial_knowledge(cfg), k);
  SeriesRecorder recorder;
  engine.set_round_hook(recorder.hook());
  engine.run(10'000);
  ASSERT_TRUE(engine.all_complete());

  std::uint64_t learn_sum = 0;
  for (const auto d : recorder.per_round_learnings()) learn_sum += d;
  EXPECT_EQ(learn_sum, engine.metrics().learnings);
  std::uint64_t msg_sum = 0;
  for (const auto d : recorder.per_round_messages()) msg_sum += d;
  EXPECT_EQ(msg_sum, engine.metrics().total_messages());
  EXPECT_GE(recorder.max_learning_burst(), 1u);
}

TEST(SeriesRecorder, CsvShape) {
  SeriesRecorder recorder;
  auto hook = recorder.hook();
  RunMetrics m;
  m.unicast.token = 3;
  m.learnings = 2;
  m.tc = 5;
  hook(1, path_graph(4), m);
  std::ostringstream os;
  recorder.write_csv(os);
  EXPECT_EQ(os.str(), "round,messages,learnings,tc,edges\n1,3,2,5,3\n");
}

TEST(SeriesRecorder, ClearResets) {
  SeriesRecorder recorder;
  auto hook = recorder.hook();
  hook(1, path_graph(3), RunMetrics{});
  EXPECT_EQ(recorder.samples().size(), 1u);
  recorder.clear();
  EXPECT_TRUE(recorder.samples().empty());
  EXPECT_EQ(recorder.max_learning_burst(), 0u);
}

}  // namespace
}  // namespace dyngossip
