// Bit-identity of probe series across thread counts: the per-round samples
// an engine emits must be EXACTLY the same whether the engine runs serially
// or shards its rounds across a 2- or 8-worker pool — including the fault
// counters (dropped/duplicated), which are folded per shard in shard order.
// The telemetry extension of tests/engine/sharded_identity_test.cpp.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "core/flooding.hpp"
#include "core/single_source.hpp"
#include "engine/broadcast_engine.hpp"
#include "engine/unicast_engine.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_spec.hpp"
#include "sim/runner/thread_pool.hpp"
#include "telemetry/round_probe.hpp"

namespace dyngossip {
namespace {

ChurnConfig churn_config(std::size_t n) {
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 4 * n;
  cc.churn_per_round = n / 8;
  cc.sigma = 3;
  cc.seed = 42;
  return cc;
}

/// Exercises every fault path at once so the probe's dropped/duplicated/
/// crashed columns all carry nonzero, order-sensitive data.
FaultSpec identity_fault_spec() {
  FaultSpec spec;
  spec.drop = 0.1;
  spec.dup = 0.05;
  spec.crash = 0.01;
  spec.recover = 0.2;
  return spec;
}

std::vector<RoundProbeSample> probe_unicast(std::size_t n, std::uint32_t k,
                                            ThreadPool* pool) {
  ChurnAdversary adversary(churn_config(n));
  const FaultSpec fault = identity_fault_spec();
  FaultPlan plan(fault, n, 123);
  SingleSourceConfig cfg{n, k, 0};
  RoundProbe probe;
  UnicastEngineOptions opts;
  opts.pool = pool;
  opts.min_parallel_nodes = 1;  // shard even at test-sized n
  opts.faults = &plan;
  opts.telemetry.probe = &probe;
  UnicastEngine engine(SingleSourceNode::make_all(cfg), adversary,
                       SingleSourceNode::initial_knowledge(cfg), k, opts);
  (void)engine.run(static_cast<Round>(200 * n));
  return probe.samples();
}

std::vector<RoundProbeSample> probe_broadcast(std::size_t n, std::size_t k,
                                              ThreadPool* pool) {
  ChurnAdversary adversary(churn_config(n));
  const FaultSpec fault = identity_fault_spec();
  FaultPlan plan(fault, n, 123);
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k));
  for (std::size_t t = 0; t < k; ++t) init[t % n].set(t);
  RoundProbe probe;
  BroadcastEngineOptions opts;
  opts.pool = pool;
  opts.min_parallel_nodes = 1;
  opts.faults = &plan;
  opts.telemetry.probe = &probe;
  BroadcastEngine engine(PhaseFloodingNode::make_all(n, k, init), adversary,
                         init, k, opts);
  (void)engine.run(static_cast<Round>(200 * n));
  return probe.samples();
}

TEST(ProbeIdentity, UnicastSeriesMatchesSerialAtEveryThreadCount) {
  const std::size_t n = 96;
  const std::uint32_t k = 64;
  const std::vector<RoundProbeSample> serial = probe_unicast(n, k, nullptr);
  ASSERT_FALSE(serial.empty());

  ThreadPool pool2(2);
  EXPECT_EQ(serial, probe_unicast(n, k, &pool2));
  ThreadPool pool8(8);
  EXPECT_EQ(serial, probe_unicast(n, k, &pool8));
}

TEST(ProbeIdentity, BroadcastSeriesMatchesSerialAtEveryThreadCount) {
  const std::size_t n = 96;
  const std::size_t k = 64;
  const std::vector<RoundProbeSample> serial = probe_broadcast(n, k, nullptr);
  ASSERT_FALSE(serial.empty());

  ThreadPool pool2(2);
  EXPECT_EQ(serial, probe_broadcast(n, k, &pool2));
  ThreadPool pool8(8);
  EXPECT_EQ(serial, probe_broadcast(n, k, &pool8));
}

TEST(ProbeIdentity, FaultCountersActuallyFire) {
  // The identity above gates nothing if the fault columns stay zero.
  const std::vector<RoundProbeSample> serial = probe_unicast(96, 64, nullptr);
  std::uint64_t dropped = 0, duplicated = 0, crashed = 0;
  for (const RoundProbeSample& s : serial) {
    dropped += s.dropped;
    duplicated += s.duplicated;
    crashed += s.crashed;
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(duplicated, 0u);
  EXPECT_GT(crashed, 0u);
}

}  // namespace
}  // namespace dyngossip
