// Timeline recorder: spans are recorded with the chrome://tracing
// trace-event shape, engines attached to a recorder emit round/phase
// spans, and a ThreadPool with a timeline attributes queue waits.
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "core/single_source.hpp"
#include "engine/unicast_engine.hpp"
#include "sim/runner/json.hpp"
#include "sim/runner/thread_pool.hpp"
#include "telemetry/timeline.hpp"

namespace dyngossip {
namespace {

std::size_t count_category(const JsonValue& events, const char* category) {
  std::size_t count = 0;
  for (const JsonValue& e : events.items()) {
    if (e.find("cat") != nullptr && e.find("cat")->as_string() == category) {
      ++count;
    }
  }
  return count;
}

TEST(Timeline, SpansSerializeAsTraceEvents) {
  TimelineRecorder recorder;
  const auto begin = TimelineRecorder::now();
  recorder.span("round", "round", begin, TimelineRecorder::now());
  {
    const TimelineSpan span(&recorder, "send_phase", "phase");
  }
  EXPECT_EQ(recorder.event_count(), 2u);

  std::ostringstream os;
  recorder.write_json(os);
  const JsonValue events = JsonValue::parse(os.str());
  ASSERT_EQ(events.items().size(), 2u);
  const JsonValue& first = events.items().front();
  EXPECT_EQ(first.find("name")->as_string(), "round");
  EXPECT_EQ(first.find("ph")->as_string(), "X");
  ASSERT_NE(first.find("ts"), nullptr);
  ASSERT_NE(first.find("dur"), nullptr);
}

TEST(Timeline, NullRecorderSpanIsANoOp) {
  // The zero-cost-when-off contract: a TimelineSpan on a null recorder
  // must not crash (and must not read the clock — untestable here, but the
  // ctor body is three pointer copies).
  const TimelineSpan span(nullptr, "round", "round");
}

TEST(Timeline, EngineEmitsRoundAndPhaseSpans) {
  const std::size_t n = 32;
  const std::uint32_t k = 16;
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 3 * n;
  cc.churn_per_round = n / 8;
  cc.sigma = 3;
  cc.seed = 42;
  ChurnAdversary adversary(cc);
  TimelineRecorder recorder;
  SingleSourceConfig cfg{n, k, 0};
  UnicastEngineOptions opts;
  opts.telemetry.timeline = &recorder;
  UnicastEngine engine(SingleSourceNode::make_all(cfg), adversary,
                       SingleSourceNode::initial_knowledge(cfg), k, opts);
  (void)engine.run(static_cast<Round>(100 * n));

  std::ostringstream os;
  recorder.write_json(os);
  const JsonValue events = JsonValue::parse(os.str());
  EXPECT_GT(count_category(events, "round"), 0u);
  EXPECT_GT(count_category(events, "phase"), 0u);
}

TEST(Timeline, ThreadPoolAttributesQueueWaits) {
  TimelineRecorder recorder;
  ThreadPool pool(2);
  pool.set_timeline(&recorder);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran] { ++ran; });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 8);

  std::ostringstream os;
  recorder.write_json(os);
  const JsonValue events = JsonValue::parse(os.str());
  EXPECT_EQ(count_category(events, "pool"), 8u);
  for (const JsonValue& e : events.items()) {
    EXPECT_EQ(e.find("name")->as_string(), "queue_wait");
  }
}

}  // namespace
}  // namespace dyngossip
