// Theorem-shaped end-to-end checks: each of the paper's quantitative claims
// is exercised at test scale with explicit (generous) constants.
#include <algorithm>

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/lb_adversary.hpp"
#include "adversary/static_adversary.hpp"
#include "common/mathx.hpp"
#include "core/flooding.hpp"
#include "engine/broadcast_engine.hpp"
#include "graph/generators.hpp"
#include "sim/bounds.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

std::vector<KnowledgeSet> one_per_token(std::size_t n, std::size_t k,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k));
  for (std::size_t t = 0; t < k; ++t) init[rng.next_below(n)].set(t);
  return init;
}

// --- Theorem 2.3: the LB adversary forces ω(n²/log²n) amortized broadcasts -

TEST(Theorem23, LbAdversaryForcesSuperLogSquaredCost) {
  constexpr std::size_t n = 48;
  constexpr std::size_t k = 24;
  const auto init = one_per_token(n, k, 5);
  LbAdversaryConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.seed = 6;
  LowerBoundAdversary adversary(cfg, init);
  const RunResult r = run_phase_flooding(n, k, init, adversary, 100 * n * k);
  ASSERT_TRUE(r.completed);
  const double amortized = r.amortized(k);
  // At least the lower bound...
  EXPECT_GE(amortized, bounds::broadcast_lb_amortized(n));
  // ...and never above the naive O(n²) flooding ceiling.
  EXPECT_LE(amortized, 2.0 * bounds::broadcast_ub_amortized(n));
}

TEST(Theorem23, AlgorithmIndependenceOfTheThrottle) {
  // The Section-2 engine is algorithm-independent: it throttles *any*
  // token-forwarding algorithm to O(log n) learnings per round.  Random
  // flooding has no termination guarantee against a strongly adaptive
  // adversary (unlike phase flooding), so we run a fixed horizon and check
  // the throttle, not completion.
  constexpr std::size_t n = 32;
  constexpr std::size_t k = 16;
  const auto init = one_per_token(n, k, 7);
  LbAdversaryConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.seed = 8;
  LowerBoundAdversary adversary(cfg, init);
  const auto horizon = static_cast<Round>(4 * n * k);
  const RunResult r = run_random_flooding(n, k, init, adversary, horizon, 9);
  const double per_round =
      static_cast<double>(r.metrics.learnings) / static_cast<double>(r.rounds);
  EXPECT_LE(per_round, 4.0 * log2_clamped(static_cast<double>(n)));
  if (r.completed) {
    EXPECT_GE(r.amortized(k), bounds::broadcast_lb_amortized(n));
  }
}

TEST(Theorem23, LbThrottlesTheLearningRate) {
  // Benign topologies admit Θ(n) learnings in a single round (first round
  // of a phase on a complete graph); under the LB adversary the per-round
  // learning rate collapses to O(log n) on average.
  constexpr std::size_t n = 48;
  constexpr std::size_t k = 24;
  const auto init = one_per_token(n, k, 10);

  StaticAdversary benign(complete_graph(n));
  BroadcastEngineOptions beo;
  beo.record_learning_events = true;
  BroadcastEngine cheap_engine(PhaseFloodingNode::make_all(n, k, init), benign,
                               init, k, beo);
  cheap_engine.run(static_cast<Round>(100 * n * k));
  ASSERT_TRUE(cheap_engine.all_complete());
  const auto per_round = cheap_engine.learning_log().per_round(cheap_engine.round());
  const std::uint64_t burst =
      *std::max_element(per_round.begin(), per_round.end());
  EXPECT_GE(burst, static_cast<std::uint64_t>(n - 1));  // benign burst: Θ(n)

  LbAdversaryConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.seed = 11;
  LowerBoundAdversary nasty(cfg, init);
  const RunResult costly = run_phase_flooding(n, k, init, nasty, 100 * n * k);
  ASSERT_TRUE(costly.completed);
  const double rate = static_cast<double>(costly.metrics.learnings) /
                      static_cast<double>(costly.rounds);
  EXPECT_LE(rate, 4.0 * log2_clamped(static_cast<double>(n)));
  // And the run is correspondingly long: at least nk / O(log n) rounds.
  EXPECT_GE(static_cast<double>(costly.rounds),
            static_cast<double>(n) * k /
                (8.0 * log2_clamped(static_cast<double>(n))));
}

// --- Theorem 3.1 / 3.4: single source -------------------------------------

TEST(Theorem31, ResidualScalesWithBoundAcrossSizes) {
  for (const std::size_t n : {12u, 24u, 48u}) {
    const auto k = static_cast<std::uint32_t>(2 * n);
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 3 * n;
    cc.churn_per_round = n / 6;
    cc.seed = 100 + n;
    ChurnAdversary adversary(cc);
    const RunResult r = run_single_source(n, k, 0, adversary, 500'000);
    ASSERT_TRUE(r.completed) << n;
    EXPECT_LE(r.metrics.competitive_residual(1.0),
              4.0 * bounds::single_source_messages(n, k))
        << n;
  }
}

TEST(Theorem34, RoundsLinearInNkOnStableGraphs) {
  for (const std::size_t n : {8u, 16u, 32u}) {
    const auto k = static_cast<std::uint32_t>(n);
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 2 * n;
    cc.churn_per_round = n / 4;
    cc.sigma = 3;
    cc.seed = 200 + n;
    ChurnAdversary adversary(cc);
    const RunResult r = run_single_source(n, k, 0, adversary, 500'000);
    ASSERT_TRUE(r.completed) << n;
    EXPECT_LE(static_cast<double>(r.rounds), 2.0 * bounds::stable_round_bound(n, k))
        << n;
  }
}

// --- Theorem 3.5 / 3.6: multi source ---------------------------------------

TEST(Theorem35, ResidualWithinMultiSourceBound) {
  constexpr std::size_t n = 24;
  for (const std::size_t s : {2u, 4u, 8u}) {
    std::vector<TokenSpace::SourceSpec> specs;
    for (std::size_t i = 0; i < s; ++i) {
      specs.push_back({static_cast<NodeId>(i * n / s), 6});
    }
    const auto space = std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 3 * n;
    cc.churn_per_round = 4;
    cc.seed = 300 + s;
    ChurnAdversary adversary(cc);
    const RunResult r = run_multi_source(n, space, adversary, 500'000);
    ASSERT_TRUE(r.completed) << s;
    EXPECT_LE(r.metrics.competitive_residual(1.0),
              4.0 * bounds::multi_source_messages(n, space->total_tokens(), s))
        << s;
  }
}

TEST(Theorem36, MultiSourceRoundsLinearInNk) {
  constexpr std::size_t n = 16;
  std::vector<TokenSpace::SourceSpec> specs{{0, 8}, {5, 8}, {10, 8}};
  const auto space = std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 2 * n;
  cc.churn_per_round = 3;
  cc.sigma = 3;
  cc.seed = 400;
  ChurnAdversary adversary(cc);
  const RunResult r = run_multi_source(n, space, adversary, 500'000);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(static_cast<double>(r.rounds),
            3.0 * bounds::stable_round_bound(n, space->total_tokens()));
}

// --- Theorem 3.8: the oblivious algorithm beats direct Multi-Source --------

TEST(Theorem38, CenterFunnelBeatsDirectMultiSourceOnNGossip) {
  // n-gossip with many sources: direct Multi-Source pays ~n²s announcements;
  // funnelling through a few centers collapses s and must win clearly.
  constexpr std::size_t n = 48;
  std::vector<TokenSpace::SourceSpec> specs;
  for (std::size_t v = 0; v < n; ++v) specs.push_back({static_cast<NodeId>(v), 1});
  const auto space = std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));

  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 4 * n;
  cc.churn_per_round = 4;
  cc.sigma = 3;
  cc.seed = 500;

  ChurnAdversary direct_adv(cc);
  const RunResult direct = run_multi_source(n, space, direct_adv, 1'000'000);
  ASSERT_TRUE(direct.completed);

  ChurnAdversary funnel_adv(cc);  // identical committed schedule
  ObliviousMsOptions opts;
  opts.seed = 501;
  opts.force_phase1 = true;
  opts.f_override = 6;
  const ObliviousMsResult funnel =
      run_oblivious_multi_source(n, space, funnel_adv, opts);
  ASSERT_TRUE(funnel.completed);

  EXPECT_LT(funnel.total.unicast.total(), direct.metrics.unicast.total());
}

// --- Section 1: the static baseline ---------------------------------------

TEST(StaticBaseline, AmortizedMatchesN2OverKPlusN) {
  constexpr std::size_t n = 16;
  for (const std::uint32_t k : {4u, 16u, 64u, 256u}) {
    const auto space = std::make_shared<TokenSpace>(TokenSpace::single_source(0, k));
    StaticAdversary adversary(complete_graph(n));
    const RunResult r = run_spanning_tree(n, space, adversary, 1'000'000);
    ASSERT_TRUE(r.completed) << k;
    EXPECT_LE(r.amortized(k), 3.0 * bounds::static_amortized(n, k)) << k;
  }
}

}  // namespace
}  // namespace dyngossip
