// Tests for the bench sweep utilities.
#include "sim/sweep.hpp"

#include <set>

#include <gtest/gtest.h>

namespace dyngossip {
namespace {

TEST(SweepSeeds, RunsExactlyTrialsTimesWithDistinctSeeds) {
  std::set<std::uint64_t> seen;
  const Summary s = sweep_seeds(5, 42, [&](std::uint64_t seed) {
    seen.insert(seed);
    return static_cast<double>(seen.size());
  });
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(seen.size(), 5u);  // derived seeds never collide in practice
}

TEST(SweepSeeds, DeterministicForSameBaseSeed) {
  auto measure = [](std::uint64_t seed) {
    return static_cast<double>(seed % 1000);
  };
  const Summary a = sweep_seeds(4, 7, measure);
  const Summary b = sweep_seeds(4, 7, measure);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
}

TEST(SweepSeeds, DifferentBaseSeedsDiffer) {
  auto measure = [](std::uint64_t seed) {
    return static_cast<double>(seed % 100000);
  };
  const Summary a = sweep_seeds(4, 1, measure);
  const Summary b = sweep_seeds(4, 2, measure);
  EXPECT_NE(a.mean, b.mean);
}

TEST(GeometricGrid, CoversRangeAndEndsAtHi) {
  const auto grid = geometric_grid(8, 64, 2.0);
  const std::vector<std::size_t> want{8, 16, 32, 64};
  EXPECT_EQ(grid, want);
}

TEST(GeometricGrid, AlwaysIncludesHi) {
  const auto grid = geometric_grid(10, 100, 3.0);
  EXPECT_EQ(grid.front(), 10u);
  EXPECT_EQ(grid.back(), 100u);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(GeometricGrid, FractionalFactorDeduplicates) {
  const auto grid = geometric_grid(4, 8, 1.1);
  // strictly increasing despite rounding collisions
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(GeometricGrid, SingletonRange) {
  const auto grid = geometric_grid(5, 5, 2.0);
  const std::vector<std::size_t> want{5};
  EXPECT_EQ(grid, want);
}

}  // namespace
}  // namespace dyngossip
