// Determinism and regression tests: every run is a pure function of its
// configuration.  Reproducibility is a hard requirement for the benchmark
// harness (EXPERIMENTS.md quotes exact numbers).
#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/lb_adversary.hpp"
#include "adversary/patterns.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

bool same_metrics(const RunMetrics& a, const RunMetrics& b) {
  return a.unicast.token == b.unicast.token &&
         a.unicast.completeness == b.unicast.completeness &&
         a.unicast.request == b.unicast.request &&
         a.unicast.control == b.unicast.control && a.broadcasts == b.broadcasts &&
         a.tc == b.tc && a.deletions == b.deletions && a.learnings == b.learnings &&
         a.rounds == b.rounds && a.completed == b.completed;
}

TEST(Determinism, SingleSourceRunsAreReproducible) {
  auto run = [] {
    ChurnConfig cc;
    cc.n = 20;
    cc.target_edges = 50;
    cc.churn_per_round = 4;
    cc.seed = 7;
    ChurnAdversary adversary(cc);
    return run_single_source(20, 15, 0, adversary, 100'000);
  };
  const RunResult a = run();
  const RunResult b = run();
  EXPECT_TRUE(same_metrics(a.metrics, b.metrics));
}

TEST(Determinism, DifferentAdversarySeedsDiffer) {
  auto run = [](std::uint64_t seed) {
    ChurnConfig cc;
    cc.n = 20;
    cc.target_edges = 50;
    cc.churn_per_round = 4;
    cc.seed = seed;
    ChurnAdversary adversary(cc);
    return run_single_source(20, 15, 0, adversary, 100'000);
  };
  const RunResult a = run(1);
  const RunResult b = run(2);
  EXPECT_FALSE(same_metrics(a.metrics, b.metrics));
}

TEST(Determinism, ObliviousTwoPhaseReproducible) {
  auto run = [] {
    std::vector<TokenSpace::SourceSpec> specs;
    for (NodeId v = 0; v < 24; ++v) specs.push_back({v, 1});
    const auto space = std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
    ChurnConfig cc;
    cc.n = 24;
    cc.target_edges = 96;
    cc.churn_per_round = 3;
    cc.sigma = 3;
    cc.seed = 11;
    ChurnAdversary adversary(cc);
    ObliviousMsOptions opts;
    opts.seed = 13;
    opts.force_phase1 = true;
    opts.f_override = 4;
    return run_oblivious_multi_source(24, space, adversary, opts);
  };
  const ObliviousMsResult a = run();
  const ObliviousMsResult b = run();
  EXPECT_TRUE(same_metrics(a.total, b.total));
  EXPECT_EQ(a.num_centers, b.num_centers);
  EXPECT_EQ(a.phase1_rounds, b.phase1_rounds);
  EXPECT_EQ(a.walk_real_steps, b.walk_real_steps);
}

TEST(Determinism, RandomizedFloodingReproducibleUnderSeed) {
  auto run = [](std::uint64_t alg_seed) {
    RotatingStarAdversary adversary(16, 5);
    std::vector<KnowledgeSet> init(16, KnowledgeSet(8));
    for (std::size_t t = 0; t < 8; ++t) init[t].set(t);
    return run_random_flooding(16, 8, init, adversary, 100'000, alg_seed);
  };
  EXPECT_TRUE(same_metrics(run(9).metrics, run(9).metrics));
  EXPECT_FALSE(same_metrics(run(9).metrics, run(10).metrics));
}

// Pinned-value regression: a fixed configuration must keep producing these
// exact numbers.  If an intentional algorithm/adversary change shifts them,
// update the constants alongside the explanation in the commit.
TEST(Regression, PinnedSingleSourceTrace) {
  ChurnConfig cc;
  cc.n = 16;
  cc.target_edges = 40;
  cc.churn_per_round = 2;
  cc.sigma = 3;
  cc.seed = 12345;
  ChurnAdversary adversary(cc);
  const RunResult r = run_single_source(16, 8, 0, adversary, 100'000);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.metrics.unicast.token, 120u);  // (n-1)*k exactly
  EXPECT_EQ(r.metrics.learnings, 120u);
  EXPECT_EQ(r.metrics.duplicate_token_deliveries, 0u);
  // The full deterministic trace must be stable across repeated runs.
  ChurnAdversary adversary2(cc);
  const RunResult again = run_single_source(16, 8, 0, adversary2, 100'000);
  EXPECT_TRUE(same_metrics(r.metrics, again.metrics));
}

TEST(Determinism, LbAdversaryKPrimeFixedBySeed) {
  std::vector<KnowledgeSet> init(16, KnowledgeSet(8));
  for (std::size_t t = 0; t < 8; ++t) init[t].set(t);
  LbAdversaryConfig cfg;
  cfg.n = 16;
  cfg.k = 8;
  cfg.seed = 77;
  LowerBoundAdversary a(cfg, init), b(cfg, init);
  EXPECT_EQ(a.initial_potential(), b.initial_potential());
  for (std::size_t v = 0; v < 16; ++v) {
    EXPECT_TRUE(a.kprime()[v] == b.kprime()[v]);
  }
}

}  // namespace
}  // namespace dyngossip
