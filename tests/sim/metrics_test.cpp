// Tests for accounting, learning log, potential, and report rendering.
#include <gtest/gtest.h>

#include "metrics/accounting.hpp"
#include "metrics/learning_log.hpp"
#include "metrics/potential.hpp"
#include "metrics/report.hpp"
#include "sim/config.hpp"

namespace dyngossip {
namespace {

TEST(MessageCounts, AddAndTotal) {
  MessageCounts c;
  c.add(MsgType::kToken);
  c.add(MsgType::kToken);
  c.add(MsgType::kCompleteness);
  c.add(MsgType::kRequest);
  c.add(MsgType::kControl);
  EXPECT_EQ(c.token, 2u);
  EXPECT_EQ(c.completeness, 1u);
  EXPECT_EQ(c.request, 1u);
  EXPECT_EQ(c.control, 1u);
  EXPECT_EQ(c.total(), 5u);

  MessageCounts d;
  d.add(MsgType::kToken);
  c += d;
  EXPECT_EQ(c.token, 3u);
  EXPECT_EQ(c.total(), 6u);
}

TEST(RunMetrics, AmortizedAndResidual) {
  RunMetrics m;
  m.unicast.token = 700;
  m.unicast.request = 300;
  m.tc = 400;
  EXPECT_DOUBLE_EQ(m.amortized(10), 100.0);
  EXPECT_DOUBLE_EQ(m.amortized(0), 0.0);
  EXPECT_DOUBLE_EQ(m.competitive_residual(1.0), 600.0);
  EXPECT_DOUBLE_EQ(m.competitive_residual(2.0), 200.0);
  EXPECT_DOUBLE_EQ(m.competitive_residual(10.0), 0.0);  // clamped at zero
}

TEST(RunMetrics, TotalMixesBroadcastAndUnicast) {
  RunMetrics m;
  m.broadcasts = 5;
  m.unicast.control = 2;
  EXPECT_EQ(m.total_messages(), 7u);
}

TEST(MergeMetrics, FieldwiseSum) {
  RunMetrics a, b;
  a.unicast.token = 10;
  a.tc = 3;
  a.rounds = 7;
  a.learnings = 4;
  a.completed = false;
  b.unicast.request = 5;
  b.tc = 2;
  b.rounds = 9;
  b.learnings = 6;
  b.completed = true;
  const RunMetrics m = merge_metrics(a, b);
  EXPECT_EQ(m.unicast.token, 10u);
  EXPECT_EQ(m.unicast.request, 5u);
  EXPECT_EQ(m.tc, 5u);
  EXPECT_EQ(m.rounds, 16u);
  EXPECT_EQ(m.learnings, 10u);
  EXPECT_TRUE(m.completed);  // the final phase decides
}

TEST(LearningLog, CountsAlwaysEventsOptionally) {
  LearningLog counting(false);
  counting.add(1, 2, 3);
  counting.add(4, 5, 6);
  EXPECT_EQ(counting.count(), 2u);
  EXPECT_EQ(counting.last_learning_round(), 6u);
  EXPECT_TRUE(counting.events().empty());

  LearningLog recording(true);
  recording.add(1, 2, 3);
  recording.add(1, 3, 3);
  recording.add(2, 2, 5);
  ASSERT_EQ(recording.events().size(), 3u);
  const auto per_round = recording.per_round(5);
  EXPECT_EQ(per_round[3], 2u);
  EXPECT_EQ(per_round[4], 0u);
  EXPECT_EQ(per_round[5], 1u);
}

TEST(Potential, ComputesUnionSizes) {
  std::vector<KnowledgeSet> knowledge(2, KnowledgeSet(4));
  std::vector<KnowledgeSet> kprime(2, KnowledgeSet(4));
  knowledge[0].set(0);
  knowledge[0].set(1);
  kprime[0].set(1);
  kprime[0].set(2);  // |K_0 ∪ K'_0| = 3
  kprime[1].set(3);  // |K_1 ∪ K'_1| = 1
  EXPECT_EQ(potential(knowledge, kprime), 4u);
}

TEST(Potential, SampleKprimeExtremesAndRate) {
  Rng rng(3);
  const auto none = sample_kprime(4, 16, 0.0, rng);
  const auto all = sample_kprime(4, 16, 1.0, rng);
  for (const auto& s : none) EXPECT_EQ(s.count(), 0u);
  for (const auto& s : all) EXPECT_EQ(s.count(), 16u);
  const auto quarter = sample_kprime(64, 256, 0.25, rng);
  std::uint64_t total = 0;
  for (const auto& s : quarter) total += s.count();
  EXPECT_NEAR(static_cast<double>(total) / (64.0 * 256.0), 0.25, 0.02);
}

TEST(Report, BreakdownAndSummaryRender) {
  RunMetrics m;
  m.unicast.token = 1234;
  m.unicast.completeness = 56;
  m.tc = 78;
  m.rounds = 9;
  m.completed = true;
  const std::string breakdown = message_breakdown(m.unicast);
  EXPECT_NE(breakdown.find("token=1_234"), std::string::npos);
  const std::string summary = run_summary(m, 10);
  EXPECT_NE(summary.find("rounds=9"), std::string::npos);
  EXPECT_NE(summary.find("completed"), std::string::npos);
  EXPECT_NE(summary.find("TC(E)=78"), std::string::npos);
}

}  // namespace
}  // namespace dyngossip
