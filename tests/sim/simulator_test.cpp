// End-to-end smoke tests for every top-level simulator entry point.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"

namespace dyngossip {
namespace {

TEST(Simulator, SingleSourceSmoke) {
  ChurnConfig cc;
  cc.n = 10;
  cc.target_edges = 20;
  cc.churn_per_round = 2;
  cc.sigma = 3;
  cc.seed = 1;
  ChurnAdversary adversary(cc);
  const RunResult r = run_single_source(10, 6, 3, adversary, 50'000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, r.metrics.rounds);
}

TEST(Simulator, MultiSourceSmoke) {
  const auto space = std::make_shared<TokenSpace>(
      TokenSpace::contiguous({{0, 3}, {5, 3}}));
  StaticAdversary adversary(cycle_graph(8));
  const RunResult r = run_multi_source(8, space, adversary, 50'000);
  EXPECT_TRUE(r.completed);
}

TEST(Simulator, SpanningTreeSmoke) {
  const auto space = std::make_shared<TokenSpace>(TokenSpace::single_source(0, 4));
  StaticAdversary adversary(complete_graph(6));
  const RunResult r = run_spanning_tree(6, space, adversary, 10'000);
  EXPECT_TRUE(r.completed);
}

TEST(Simulator, FloodingSmoke) {
  StaticAdversary adversary(path_graph(6));
  std::vector<KnowledgeSet> init(6, KnowledgeSet(3));
  init[0].set(0);
  init[2].set(1);
  init[5].set(2);
  const RunResult phase = run_phase_flooding(6, 3, init, adversary, 1'000);
  EXPECT_TRUE(phase.completed);
  const RunResult rnd = run_random_flooding(6, 3, init, adversary, 10'000, 7);
  EXPECT_TRUE(rnd.completed);
}

TEST(Simulator, ObliviousSmoke) {
  std::vector<TokenSpace::SourceSpec> specs;
  for (NodeId v = 0; v < 16; ++v) specs.push_back({v, 1});
  const auto space = std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
  ChurnConfig cc;
  cc.n = 16;
  cc.target_edges = 48;
  cc.churn_per_round = 2;
  cc.sigma = 3;
  cc.seed = 2;
  ChurnAdversary adversary(cc);
  ObliviousMsOptions opts;
  opts.seed = 3;
  opts.force_phase1 = true;
  opts.f_override = 3;
  const ObliviousMsResult r = run_oblivious_multi_source(16, space, adversary, opts);
  EXPECT_TRUE(r.completed);
}

TEST(Simulator, IncompleteRunReportsHonestly) {
  StaticAdversary adversary(path_graph(30));
  const RunResult r = run_single_source(30, 50, 0, adversary, /*max_rounds=*/5);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 5u);
}

}  // namespace
}  // namespace dyngossip
