// Tests for the paper's closed-form bound formulas.
#include "sim/bounds.hpp"

#include <gtest/gtest.h>

#include "common/mathx.hpp"

namespace dyngossip {
namespace {

TEST(Bounds, CentersFormulaAndClamp) {
  // f = n^{1/2} k^{1/4} log^{5/4} n, clamped to [1, n].
  const double f = bounds::centers_f(1 << 20, 16);
  const double expect = powd(static_cast<double>(1 << 20), 0.5) * powd(16.0, 0.25) *
                        powd(20.0, 1.25);
  EXPECT_NEAR(f, expect, 1e-6);
  // Small n: the polylog saturates the clamp.
  EXPECT_DOUBLE_EQ(bounds::centers_f(32, 32), 32.0);
  EXPECT_GE(bounds::centers_f(2, 1), 1.0);
}

TEST(Bounds, GammaTimesFEqualsNLogN) {
  for (std::size_t n : {1u << 16, 1u << 20}) {
    for (std::size_t k : {4u, 256u}) {
      const double lhs = bounds::degree_threshold_gamma(n, k) * bounds::centers_f(n, k);
      const double rhs = static_cast<double>(n) * log2_clamped(static_cast<double>(n));
      EXPECT_NEAR(lhs / rhs, 1.0, 1e-9);
    }
  }
}

TEST(Bounds, SourceThresholdGrowsSublinearly) {
  // n^{2/3} log^{5/3} n < n once n^{1/3} outgrows log^{5/3} n (n >= 2^30).
  const auto big = static_cast<std::size_t>(1) << 30;
  EXPECT_LT(bounds::source_threshold(big), static_cast<double>(big));
  EXPECT_GT(bounds::source_threshold(big), 0.0);
  // At laptop scale the polylog dominates — the s <= threshold branch of
  // Algorithm 2 (skip phase 1) is the common case there.
  EXPECT_GT(bounds::source_threshold(1 << 10), static_cast<double>(1 << 10));
}

TEST(Bounds, Table1AmortizedDecreasesInK) {
  constexpr std::size_t n = 1 << 16;
  double prev = 1e300;
  for (std::size_t k : {64u, 256u, 4096u, 65536u}) {
    const double a = bounds::table1_amortized(n, k);
    EXPECT_LT(a, prev);
    prev = a;
  }
}

TEST(Bounds, Table1ConsistentWithThm38) {
  // amortized = total / k.
  constexpr std::size_t n = 1 << 18;
  constexpr std::size_t k = 1 << 10;
  const double ratio = bounds::table1_amortized(n, k) /
                       (bounds::thm38_total_messages(n, k) / static_cast<double>(k));
  EXPECT_NEAR(ratio, 1.0, 1e-12);
}

TEST(Bounds, Table1RowShapes) {
  // The paper's four rows: k = n^{2/3}polylog -> ~n^2; k = n^2 -> ~n polylog.
  constexpr std::size_t n = 1 << 20;
  const auto k_small = static_cast<std::size_t>(bounds::source_threshold(n));
  const double row1 = bounds::table1_amortized(n, k_small);
  const double row4 = bounds::table1_amortized(n, n * static_cast<std::size_t>(n));
  const double n2 = static_cast<double>(n) * n;
  EXPECT_NEAR(row1 / n2, 1.0, 0.5);  // within a constant of n^2
  EXPECT_LT(row4, static_cast<double>(n) * 100);  // ~ n polylog
}

TEST(Bounds, CompetitiveTotalsAreMonotone) {
  EXPECT_LT(bounds::single_source_messages(32, 10),
            bounds::single_source_messages(64, 10));
  EXPECT_LT(bounds::multi_source_messages(32, 10, 2),
            bounds::multi_source_messages(32, 10, 4));
  EXPECT_LT(bounds::stable_round_bound(8, 4), bounds::stable_round_bound(8, 8));
}

TEST(Bounds, BroadcastBoundsOrdering) {
  for (std::size_t n : {64u, 256u, 1024u}) {
    EXPECT_LT(bounds::broadcast_lb_amortized(n), bounds::broadcast_ub_amortized(n));
    EXPECT_GT(bounds::broadcast_lb_amortized(n), 0.0);
  }
}

TEST(Bounds, StaticAmortizedShape) {
  constexpr std::size_t n = 128;
  // Decreasing in k, floored at ~n.
  EXPECT_GT(bounds::static_amortized(n, 1), bounds::static_amortized(n, n));
  EXPECT_GE(bounds::static_amortized(n, 1 << 20), static_cast<double>(n));
  EXPECT_LE(bounds::static_amortized(n, 1 << 20), 1.5 * n);
}

TEST(Bounds, SparseBroadcasterThreshold) {
  EXPECT_NEAR(bounds::sparse_broadcaster_threshold(128, 4.0), 128.0 / (4 * 7), 1e-9);
}

TEST(Bounds, WalkLengthAndPhase1Bound) {
  constexpr std::size_t n = 1 << 20;
  constexpr std::size_t k = 1 << 8;
  EXPECT_GT(bounds::walk_length_L(n, k), static_cast<double>(n));  // L >> n
  EXPECT_GT(bounds::phase1_round_bound(n, k), bounds::walk_length_L(n, k));
}

}  // namespace
}  // namespace dyngossip
