// Randomized stress sweeps: many random configurations, one set of hard
// invariants.  These are the "failure injection" tier — adversary
// parameters are drawn adversarially wide (tiny graphs, violent churn,
// degenerate token counts) and every run must either complete with exact
// conservation laws or stop honestly at the cap.
#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/patterns.hpp"
#include "graph/stability.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

class RandomConfigStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomConfigStress, SingleSourceInvariantHolds) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 2 + rng.next_below(30);
    const auto k = static_cast<std::uint32_t>(1 + rng.next_below(40));
    const auto source = static_cast<NodeId>(rng.next_below(n));
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = (n - 1) + rng.next_below(2 * n + 1);
    cc.churn_per_round = rng.next_below(n + 1);
    cc.sigma = static_cast<Round>(1 + rng.next_below(4));
    cc.seed = rng.next();
    ChurnAdversary adversary(cc);
    const RunResult r =
        run_single_source(n, k, source, adversary, static_cast<Round>(500u * n * k));
    ASSERT_TRUE(r.completed) << "n=" << n << " k=" << k;
    EXPECT_EQ(r.metrics.learnings, static_cast<std::uint64_t>(n - 1) * k);
    EXPECT_EQ(r.metrics.unicast.token, static_cast<std::uint64_t>(n - 1) * k);
    EXPECT_EQ(r.metrics.duplicate_token_deliveries, 0u);
    EXPECT_LE(r.metrics.unicast.completeness,
              static_cast<std::uint64_t>(n) * (n - 1));
    EXPECT_LE(r.metrics.unicast.request,
              static_cast<std::uint64_t>(n) * k + r.metrics.deletions);
    EXPECT_LE(r.metrics.deletions, r.metrics.tc);
  }
}

TEST_P(RandomConfigStress, MultiSourceInvariantHolds) {
  Rng rng(GetParam() ^ 0xabcdefull);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 4 + rng.next_below(24);
    const std::size_t s = 1 + rng.next_below(n / 2 + 1);
    std::vector<TokenSpace::SourceSpec> specs;
    const auto holders = rng.sample_without_replacement(n, s);
    for (const auto h : holders) {
      specs.push_back({static_cast<NodeId>(h),
                       static_cast<std::uint32_t>(1 + rng.next_below(6))});
    }
    const auto space = std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
    const std::uint64_t k = space->total_tokens();
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = (n - 1) + rng.next_below(2 * n + 1);
    cc.churn_per_round = rng.next_below(n / 2 + 1);
    cc.sigma = static_cast<Round>(1 + rng.next_below(4));
    cc.seed = rng.next();
    ChurnAdversary adversary(cc);
    const RunResult r =
        run_multi_source(n, space, adversary, static_cast<Round>(1000u * n * k));
    ASSERT_TRUE(r.completed) << "n=" << n << " s=" << s << " k=" << k;
    EXPECT_EQ(r.metrics.learnings, (n - 1) * k);
    EXPECT_EQ(r.metrics.duplicate_token_deliveries, 0u);
    EXPECT_LE(r.metrics.unicast.completeness,
              static_cast<std::uint64_t>(n) * (n - 1) * s);
  }
}

TEST_P(RandomConfigStress, PatternAdversariesNeverBreakTheEngine) {
  Rng rng(GetParam() ^ 0x1234567ull);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 4 + rng.next_below(20);
    const auto k = static_cast<std::uint32_t>(1 + rng.next_below(12));
    {
      RotatingStarAdversary adversary(n, rng.next());
      const RunResult r =
          run_single_source(n, k, 0, adversary, static_cast<Round>(500u * n * k));
      ASSERT_TRUE(r.completed);
      EXPECT_EQ(r.metrics.learnings, static_cast<std::uint64_t>(n - 1) * k);
    }
    {
      PathShuffleAdversary adversary(n, rng.next());
      const RunResult r =
          run_single_source(n, k, 0, adversary, static_cast<Round>(2000u * n * k));
      ASSERT_TRUE(r.completed);
      EXPECT_EQ(r.metrics.duplicate_token_deliveries, 0u);
    }
  }
}

TEST_P(RandomConfigStress, ChurnStabilityContractUnderRandomParams) {
  Rng rng(GetParam() ^ 0xfeedull);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 3 + rng.next_below(20);
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = (n - 1) + rng.next_below(3 * n);
    cc.churn_per_round = rng.next_below(2 * n);
    cc.sigma = static_cast<Round>(1 + rng.next_below(5));
    cc.seed = rng.next();
    ChurnAdversary adversary(cc);
    StabilityValidator validator(cc.sigma);
    UnicastRoundView v;
    for (Round r = 1; r <= 120; ++r) {
      v.round = r;
      validator.observe(adversary.unicast_round(v), r);
    }
    EXPECT_EQ(validator.violations(), 0u)
        << "n=" << n << " sigma=" << cc.sigma << " churn=" << cc.churn_per_round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigStress,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace dyngossip
