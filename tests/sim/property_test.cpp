// Cross-cutting property sweeps (TEST_P): the paper's structural invariants
// must hold for every algorithm × adversary × size × seed combination.
#include <gtest/gtest.h>

#include "adversary/churn.hpp"
#include "adversary/request_cutter.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"
#include "sim/bounds.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

struct PropertyCase {
  std::size_t n;
  std::uint32_t k;
  std::uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const PropertyCase& c) {
  return os << "n" << c.n << "_k" << c.k << "_s" << c.seed;
}

class SingleSourceProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SingleSourceProperties, InvariantsUnderChurn) {
  const auto [n, k, seed] = GetParam();
  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 3 * n;
  cc.churn_per_round = std::max<std::size_t>(1, n / 8);
  cc.sigma = 1;
  cc.seed = seed;
  ChurnAdversary adversary(cc);
  const RunResult r = run_single_source(n, k, 0, adversary, 500'000);

  ASSERT_TRUE(r.completed);
  // Definition 1.4's conservation: exactly k(n-1) learnings.
  EXPECT_EQ(r.metrics.learnings, static_cast<std::uint64_t>(n - 1) * k);
  // Exactly-once delivery (Theorem 3.1 type 1).
  EXPECT_EQ(r.metrics.unicast.token, static_cast<std::uint64_t>(n - 1) * k);
  EXPECT_EQ(r.metrics.duplicate_token_deliveries, 0u);
  // Announcements once per ordered pair (type 2).
  EXPECT_LE(r.metrics.unicast.completeness, static_cast<std::uint64_t>(n) * (n - 1));
  // Requests bounded by nk + deletions (type 3).
  EXPECT_LE(r.metrics.unicast.request,
            static_cast<std::uint64_t>(n) * k + r.metrics.deletions);
  // Deletions never exceed insertions (E_0 = ∅).
  EXPECT_LE(r.metrics.deletions, r.metrics.tc);
  // Definition 1.3: 1-competitive residual within a constant of n² + nk.
  EXPECT_LE(r.metrics.competitive_residual(1.0),
            4.0 * bounds::single_source_messages(n, k));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SingleSourceProperties,
    ::testing::Values(PropertyCase{4, 2, 1}, PropertyCase{4, 16, 2},
                      PropertyCase{8, 8, 3}, PropertyCase{16, 4, 4},
                      PropertyCase{16, 32, 5}, PropertyCase{24, 24, 6},
                      PropertyCase{32, 8, 7}, PropertyCase{32, 64, 8},
                      PropertyCase{48, 16, 9}));

class MultiSourceProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(MultiSourceProperties, InvariantsUnderChurn) {
  const auto [n, k_total, seed] = GetParam();
  // Spread k_total tokens over ~sqrt(n) sources.
  const std::size_t s = std::max<std::size_t>(2, n / 4);
  std::vector<TokenSpace::SourceSpec> specs;
  const auto per = std::max<std::uint32_t>(1, k_total / static_cast<std::uint32_t>(s));
  for (std::size_t i = 0; i < s; ++i) {
    specs.push_back({static_cast<NodeId>(i * n / s), per});
  }
  const auto space = std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
  const std::uint64_t k = space->total_tokens();

  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 3 * n;
  cc.churn_per_round = std::max<std::size_t>(1, n / 8);
  cc.sigma = 1;
  cc.seed = seed * 101;
  ChurnAdversary adversary(cc);
  const RunResult r = run_multi_source(n, space, adversary, 500'000);

  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.metrics.learnings, (n - 1) * k);
  EXPECT_EQ(r.metrics.unicast.token, (n - 1) * k);
  EXPECT_EQ(r.metrics.duplicate_token_deliveries, 0u);
  // Type 2: once per (node, source, neighbor) triple.
  EXPECT_LE(r.metrics.unicast.completeness,
            static_cast<std::uint64_t>(n) * (n - 1) * s);
  EXPECT_LE(r.metrics.unicast.request,
            static_cast<std::uint64_t>(n) * k + r.metrics.deletions);
  EXPECT_LE(r.metrics.competitive_residual(1.0),
            4.0 * bounds::multi_source_messages(n, k, s));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiSourceProperties,
    ::testing::Values(PropertyCase{8, 8, 1}, PropertyCase{12, 24, 2},
                      PropertyCase{16, 16, 3}, PropertyCase{24, 48, 4},
                      PropertyCase{32, 32, 5}));

class ObliviousProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ObliviousProperties, TwoPhaseInvariants) {
  const auto [n, k_ignored, seed] = GetParam();
  (void)k_ignored;
  // n-gossip: one token per node, the regime Algorithm 2 targets.
  std::vector<TokenSpace::SourceSpec> specs;
  for (std::size_t v = 0; v < n; ++v) specs.push_back({static_cast<NodeId>(v), 1});
  const auto space = std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));

  ChurnConfig cc;
  cc.n = n;
  cc.target_edges = 4 * n;
  cc.churn_per_round = std::max<std::size_t>(1, n / 8);
  cc.sigma = 3;
  cc.seed = seed * 31;
  ChurnAdversary adversary(cc);
  ObliviousMsOptions opts;
  opts.seed = seed;
  opts.force_phase1 = true;
  opts.f_override = std::max<std::size_t>(2, n / 8);
  const ObliviousMsResult r = run_oblivious_multi_source(n, space, adversary, opts);

  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.total.learnings, (n - 1) * space->total_tokens());
  // Phase metrics merge exactly.
  EXPECT_EQ(r.total.unicast.total(),
            r.phase1.unicast.total() + r.phase2.unicast.total());
  EXPECT_EQ(r.total.tc, r.phase1.tc + r.phase2.tc);
  // Phase-1 token traffic is exactly the real walk steps.
  EXPECT_EQ(r.phase1.unicast.token, r.walk_real_steps);
  // Phase 2 delivers exactly-once (walk revisits may duplicate in phase 1).
  EXPECT_EQ(r.phase2.duplicate_token_deliveries, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ObliviousProperties,
    ::testing::Values(PropertyCase{16, 0, 1}, PropertyCase{24, 0, 2},
                      PropertyCase{32, 0, 3}, PropertyCase{48, 0, 4}));

class AdversaryGauntlet : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdversaryGauntlet, SingleSourceSurvivesEveryAdversary) {
  const std::uint64_t seed = GetParam();
  constexpr std::size_t n = 16;
  constexpr std::uint32_t k = 12;
  const std::uint64_t exact_learnings = static_cast<std::uint64_t>(n - 1) * k;

  {
    StaticAdversary adversary(path_graph(n));  // worst diameter
    const RunResult r = run_single_source(n, k, 0, adversary, 500'000);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.metrics.learnings, exact_learnings);
  }
  {
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 2 * n;
    cc.churn_per_round = n / 2;  // violent churn
    cc.seed = seed;
    ChurnAdversary adversary(cc);
    const RunResult r = run_single_source(n, k, 0, adversary, 500'000);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.metrics.learnings, exact_learnings);
  }
  {
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 2 * n;
    cc.fresh_graph_each_round = true;  // maximum-TC regime
    cc.seed = seed + 1;
    ChurnAdversary adversary(cc);
    const RunResult r = run_single_source(n, k, 0, adversary, 500'000);
    ASSERT_TRUE(r.completed);
    EXPECT_LE(r.metrics.competitive_residual(1.0),
              4.0 * bounds::single_source_messages(n, k));
  }
  {
    RequestCutterConfig rc;
    rc.n = n;
    rc.target_edges = 2 * n;
    rc.cut_probability = 0.7;
    rc.seed = seed + 2;
    RequestCutterAdversary adversary(rc);
    const RunResult r = run_single_source(n, k, 0, adversary, 500'000);
    ASSERT_TRUE(r.completed);
    EXPECT_LE(r.metrics.competitive_residual(1.0),
              4.0 * bounds::single_source_messages(n, k));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversaryGauntlet, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace dyngossip
