#!/usr/bin/env python3
"""Trend `dyngossip run --json` records across commits.

Reads two or more scenario run records (the JSON artifacts the bench-smoke CI
job uploads), groups them by scenario, and prints per-scenario wall-time and
payload deltas between the oldest and newest record of each scenario.  Exits
non-zero when a scenario's wall time regressed by more than --max-regress
percent, or when --require-payload-match is set and the deterministic payload
(the "tables" section; everything except the volatile "run" metadata) changed.

Typical CI usage, comparing a fresh run against a downloaded baseline:

    dyngossip run table1 --trials=2 --quick --json=new.json
    python3 tools/trend_bench.py --max-regress=200 baseline.json new.json

The generous default threshold absorbs shared-runner noise; tighten it for
dedicated hardware.

With --probe, each record is paired (in order) with the per-round coverage
series its run emitted via --probe=round_series:out=PATH, and the table
gains a coverage-vs-round trend column: the mean number of rounds each
trial needed to reach 90% coverage, oldest vs newest.  Wall time says how
fast the run was; this column says how fast the *protocol* was.

    dyngossip run table1 --quick --probe=round_series:out=new.jsonl --json=new.json
    python3 tools/trend_bench.py baseline.json new.json \
        --probe baseline.jsonl --probe new.jsonl

Records produced with --cache=DIR carry hit/miss counters in their run
metadata; whenever any record has them, the table gains a cache column
showing the hit rate oldest -> newest and the warm-over-cold wall speedup:

    dyngossip run table1 --quick --cache=.dgcache --json=cold.json
    dyngossip run table1 --quick --cache=.dgcache --json=warm.json
    python3 tools/trend_bench.py cold.json warm.json
"""

from __future__ import annotations

import argparse
import json
import sys


def load_record(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"trend_bench: cannot read {path}: {err}")
    for key in ("scenario", "tables", "run"):
        if key not in record:
            sys.exit(f"trend_bench: {path} is not a dyngossip run record "
                     f"(missing '{key}')")
    record["_path"] = path
    return record


def payload(record: dict) -> object:
    """The deterministic part of a record (everything but run metadata)."""
    return {k: v for k, v in record.items()
            if k != "run" and not k.startswith("_")}


COVERAGE_TARGET = 0.9


def load_probe(path: str) -> dict[str, list[tuple[int, float]]]:
    """Parses a probe JSONL file into {series: [(round, coverage), ...]}."""
    series: dict[str, list[tuple[int, float]]] = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as err:
                    sys.exit(f"trend_bench: {path}:{line_no}: not JSONL: {err}")
                if row.get("type") != "round":
                    continue
                series.setdefault(row["series"], []).append(
                    (int(row["round"]), float(row["coverage"])))
    except OSError as err:
        sys.exit(f"trend_bench: cannot read {path}: {err}")
    return series


def mean_rounds_to_coverage(series: dict[str, list[tuple[int, float]]],
                            target: float = COVERAGE_TARGET) -> float | None:
    """Mean (across series) first sampled round reaching `target` coverage.

    A series that never reaches the target contributes its last round — a
    floor, so incomplete runs still trend instead of dropping out.
    """
    rounds = []
    for samples in series.values():
        if not samples:
            continue
        hit = next((r for r, cov in samples if cov >= target), samples[-1][0])
        rounds.append(hit)
    if not rounds:
        return None
    return sum(rounds) / len(rounds)


def coverage_trend(old_path: str | None, new_path: str | None) -> str:
    """The coverage-vs-round trend cell: mean rounds-to-90% old -> new."""
    if old_path is None or new_path is None:
        return "-"
    old_r = mean_rounds_to_coverage(load_probe(old_path))
    new_r = mean_rounds_to_coverage(load_probe(new_path))
    if old_r is None or new_r is None:
        return "(no series)"
    delta = ((new_r - old_r) / old_r * 100.0) if old_r > 0 else 0.0
    return f"r90 {old_r:.1f} -> {new_r:.1f} ({delta:+.1f}%)"


def cache_trend(old: dict, new: dict) -> str:
    """The cache trend cell: hit rate oldest -> newest, plus warm speedup.

    Runs launched with --cache=DIR record {hits, misses, stores} under the
    volatile run metadata; a warm record paired against its cold baseline
    shows the hit rate climbing and the wall-clock speedup the cache bought.
    """
    def rate(record: dict) -> str:
        cache = record["run"].get("cache")
        if not isinstance(cache, dict):
            return "off"
        hits = int(cache.get("hits", 0))
        total = hits + int(cache.get("misses", 0))
        if total == 0:
            return "0/0"
        return f"{hits}/{total} ({hits / total * 100.0:.0f}%)"

    cell = f"hit {rate(old)} -> {rate(new)}"
    old_s = float(old["run"].get("elapsed_seconds", 0.0))
    new_s = float(new["run"].get("elapsed_seconds", 0.0))
    if old_s > 0 and new_s > 0:
        cell += f", speedup {old_s / new_s:.1f}x"
    return cell


def async_rows(record: dict) -> tuple[int, int]:
    """(completed, total) over rows the tables attribute to the async engine.

    Scenario tables that cross engines (algo_matrix, sync_vs_async) carry an
    "engine" column; rows whose engine is "async" came from the event-queue
    plane and their "done" column says whether the continuous-time run
    completed.  Tables without both columns contribute nothing.
    """
    done = total = 0
    for table in record.get("tables", []):
        columns = table.get("columns", [])
        if "engine" not in columns or "done" not in columns:
            continue
        engine_at = columns.index("engine")
        done_at = columns.index("done")
        for row in table.get("rows", []):
            if len(row) <= max(engine_at, done_at):
                continue
            if row[engine_at] != "async":
                continue
            total += 1
            done += 1 if row[done_at] == "yes" else 0
    return done, total


def async_trend(old: dict, new: dict) -> str:
    """The async trend cell: completed/total async-engine rows old -> new."""
    def cell(record: dict) -> str:
        done, total = async_rows(record)
        return f"{done}/{total}"

    return f"done {cell(old)} -> {cell(new)}"


def payload_delta(old: dict, new: dict) -> list[str]:
    """Human-readable description of payload differences (empty if none)."""
    deltas = []
    old_tables = old.get("tables", [])
    new_tables = new.get("tables", [])
    if len(old_tables) != len(new_tables):
        deltas.append(f"table count {len(old_tables)} -> {len(new_tables)}")
        return deltas
    for i, (ot, nt) in enumerate(zip(old_tables, new_tables)):
        if ot.get("columns") != nt.get("columns"):
            deltas.append(f"table[{i}] columns changed")
        orows, nrows = ot.get("rows", []), nt.get("rows", [])
        if len(orows) != len(nrows):
            deltas.append(f"table[{i}] rows {len(orows)} -> {len(nrows)}")
            continue
        changed = sum(1 for a, b in zip(orows, nrows) if a != b)
        if changed:
            deltas.append(f"table[{i}] {changed}/{len(orows)} rows changed")
    return deltas


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("records", nargs="+", metavar="RECORD.json",
                        help="two or more dyngossip run --json records, "
                             "oldest first")
    parser.add_argument("--max-regress", type=float, default=200.0,
                        help="fail when wall time grows by more than this "
                             "percent (default: %(default)s)")
    parser.add_argument("--require-payload-match", action="store_true",
                        help="fail when the deterministic payload changed")
    parser.add_argument("--probe", action="append", metavar="SERIES.jsonl",
                        help="per-round coverage series (probe JSONL), one "
                             "per record in the same order; adds a "
                             "coverage-vs-round trend column")
    args = parser.parse_args()
    if len(args.records) < 2:
        parser.error("need at least two records to trend")
    if args.probe and len(args.probe) != len(args.records):
        parser.error(f"--probe given {len(args.probe)} time(s) for "
                     f"{len(args.records)} records; pass one per record")

    by_scenario: dict[str, list[dict]] = {}
    for i, path in enumerate(args.records):
        record = load_record(path)
        record["_probe"] = args.probe[i] if args.probe else None
        by_scenario.setdefault(record["scenario"], []).append(record)

    failures = []
    show_cache = any(isinstance(r["run"].get("cache"), dict)
                     for rs in by_scenario.values() for r in rs)
    show_async = any(async_rows(r)[1] > 0
                     for rs in by_scenario.values() for r in rs)
    header = f"{'scenario':<22} {'base s':>9} {'new s':>9} {'delta':>8}  payload"
    if args.probe:
        header += f"  {'coverage (rounds to 90%)'}"
    if show_cache:
        header += "  cache"
    if show_async:
        header += "  async"
    print(header)
    print("-" * len(header))
    for scenario, records in sorted(by_scenario.items()):
        if len(records) < 2:
            print(f"{scenario:<22} {'':>9} {'':>9} {'':>8}  only one record "
                  f"({records[0]['_path']}); skipped")
            continue
        old, new = records[0], records[-1]
        old_s = float(old["run"].get("elapsed_seconds", 0.0))
        new_s = float(new["run"].get("elapsed_seconds", 0.0))
        delta_pct = ((new_s - old_s) / old_s * 100.0) if old_s > 0 else 0.0
        deltas = payload_delta(payload(old), payload(new))
        payload_txt = "identical" if not deltas else "; ".join(deltas)
        line = (f"{scenario:<22} {old_s:>9.3f} {new_s:>9.3f} "
                f"{delta_pct:>+7.1f}%  {payload_txt}")
        if args.probe:
            line += f"  {coverage_trend(old['_probe'], new['_probe'])}"
        if show_cache:
            line += f"  {cache_trend(old, new)}"
        if show_async:
            line += f"  {async_trend(old, new)}"
        print(line)
        if delta_pct > args.max_regress:
            failures.append(f"{scenario}: wall time regressed "
                            f"{delta_pct:+.1f}% (> {args.max_regress}%)")
        if args.require_payload_match and deltas:
            failures.append(f"{scenario}: payload changed ({payload_txt})")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
