// dyngossip — unified scenario driver.
//
//   dyngossip list
//   dyngossip run <scenario> [--threads=N --trials=T --scale=S --csv --json[=PATH]]
//   dyngossip demo [<name> [flags]]
//   dyngossip speedup [--threads=N --trials=T --min=X]
//
// See src/sim/runner/scenario_cli.hpp for the full contract.

#include "demos/demos.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/runner/scenario_cli.hpp"

int main(int argc, char** argv) {
  dyngossip::ScenarioRegistry& registry = dyngossip::ScenarioRegistry::global();
  dyngossip::register_all_scenarios(registry);
  dyngossip::register_all_demos(dyngossip::DemoRegistry::global());
  return dyngossip::dyngossip_main(registry, argc, argv);
}
