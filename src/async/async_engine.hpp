// Continuous-time event-queue engine: asynchronous rumor spreading on
// dynamic graphs (the Pourmiri–Mans regime from PAPERS.md).
//
// Model.  Every node owns an independent rate-λ Poisson clock.  When node
// v's clock fires, v contacts one uniformly random current neighbor w and
// *pushes* one uniformly random token from its knowledge; in push-pull
// mode, w replies with one uniformly random token of its own in the same
// contact.  Each transmitted token counts as one unicast message
// (Definition 1.1's accounting carried over: the sender pays whether or
// not the fault plane delivers).  The topology is a registry round
// schedule mapped onto the clock by ClockedAdversary (edge lifetime = σ
// clock units).
//
// Determinism contract (the async leg of the repo-wide bit-identity
// guarantee): the event loop is *serial by design* — events form a strict
// total order under the (time, node, seq) tie-break, activation times are
// per-node prefix sums of position-keyed exponential gaps, and every
// neighbor/token/fault decision is a pure SplitMix64 hash of the event's
// schedule position (never of evaluation order or stream state).  The
// `pool` option exists only for interface parity with the round engines:
// per-event work is a handful of loads, so there is nothing to shard, and
// ignoring the pool makes payloads trivially bit-identical at 1, 2, or 8
// threads (enforced by tests/async/ and the CI payload diff).
//
// Zero-overhead contract: with no probe, no timeline, and an inactive
// fault plan, the hot loop touches none of those subsystems — the same
// pointer/flag gating as the round engines.
//
// Metrics mapping: `rounds` = schedule rounds consumed (windows the last
// event reached), `virtual_steps` = total clock activations, `unicast.token`
// = transmitted tokens; tc/deletions accumulate per consumed window.  A run
// that reaches the time horizon cap·σ without completing reports
// RunStatus::kRoundCap with `rounds` = windows actually consumed.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/adversary.hpp"
#include "async/clocked_adversary.hpp"
#include "async/event_queue.hpp"
#include "async/poisson_clock.hpp"
#include "common/knowledge_set.hpp"
#include "common/types.hpp"
#include "graph/connectivity.hpp"
#include "graph/dynamic_tracker.hpp"
#include "graph/round_view.hpp"
#include "metrics/accounting.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeline.hpp"

namespace dyngossip {

class FaultPlan;
class ThreadPool;

/// Engine options (the async analogue of UnicastEngineOptions).
struct AsyncEngineOptions {
  /// Poisson activation rate λ per node, in activations per clock unit.
  double rate = 1.0;
  /// Edge lifetime: clock units each schedule round's graph stays live.
  double sigma = 1.0;
  /// Push-pull mode: the contacted neighbor replies with one of its own
  /// tokens in the same contact (two messages per effective contact).
  bool push_pull = false;
  /// Seed of the trial's SplitMix64 position streams (clock gaps, neighbor
  /// picks, token picks).
  std::uint64_t seed = 1;
  /// Accepted for interface parity with the round engines; the event loop
  /// is serial by design (see file comment) and never touches it.
  ThreadPool* pool = nullptr;
  /// Per-trial fault plan (not owned; null or inactive keeps the exact
  /// fault-free path).  Liveness advances per schedule round; delivery
  /// fates are keyed by event position (round, event seq, leg).
  FaultPlan* faults = nullptr;
  /// Wall-clock budget in seconds (0: none); checked every 64 popped
  /// events, an over-budget run stops with RunStatus::kTimeout.
  double run_timeout_seconds = 0.0;
  /// Observer plane; null members keep the exact legacy code path.
  Telemetry telemetry;
};

/// Drives asynchronous push / push-pull spreading over a clocked schedule.
class AsyncEngine {
 public:
  /// `initial_knowledge[v]` is K_v(0) over a k-token universe.
  AsyncEngine(Adversary& adversary, std::vector<KnowledgeSet> initial_knowledge,
              std::size_t k, AsyncEngineOptions opts = {});

  /// Runs until every (live) node knows all k tokens or clock time reaches
  /// max_rounds·σ; returns final metrics with completed/status/coverage set.
  RunMetrics run(Round max_rounds);

  /// True iff every node knows all k tokens.
  [[nodiscard]] bool all_complete() const noexcept {
    return complete_nodes_ == knowledge_.size();
  }

  /// Run-level completion: all_complete() on the fault-free path; under an
  /// active plan, at least one live node and every live node complete.
  [[nodiscard]] bool run_complete() const;

  /// Fraction of (node, token) pairs currently known.
  [[nodiscard]] double coverage() const;

  [[nodiscard]] const KnowledgeSet& knowledge_of(NodeId v) const {
    return knowledge_[v];
  }
  [[nodiscard]] const RunMetrics& metrics() const noexcept { return metrics_; }

  /// Schedule rounds consumed so far.
  [[nodiscard]] Round round() const noexcept { return round_; }

  /// Total clock activations processed so far.
  [[nodiscard]] std::uint64_t activations() const noexcept {
    return metrics_.virtual_steps;
  }

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return knowledge_.size();
  }

 private:
  /// Consumes schedule rounds up to `target`: closes each open window
  /// (probe sample, event-batch timeline span), advances the fault
  /// liveness mask, builds the next graph, and diffs it into TC.
  void advance_rounds(Round target);

  /// One clock activation of `ev.node` (neighbor pick + push / pull legs).
  void process(const ActivationEvent& ev);

  /// One transmitted token `from` → `to` (leg 0: push, 1: pull reply);
  /// counts the message, rolls the event-position fault fate, applies the
  /// delivery.  No-op when `tok` is kNoToken (empty knowledge).
  void deliver_leg(NodeId from, NodeId to, TokenId tok, std::uint32_t leg,
                   std::uint64_t event_no);

  /// Applies one delivered token to `to`'s knowledge.
  void learn(NodeId to, TokenId tok);

  /// Uniform member of `ks`, keyed by (event_no, salt); kNoToken if empty.
  [[nodiscard]] TokenId pick_token(const KnowledgeSet& ks,
                                   std::uint64_t event_no,
                                   std::uint64_t salt) const;

  /// Records one probe sample for finished round r (same delta/gauge/flush
  /// semantics as UnicastEngine::probe_observe).
  void probe_observe(Round r, bool flush);

  ClockedAdversary clocked_;
  PoissonClock clock_;
  std::vector<KnowledgeSet> knowledge_;
  std::size_t k_;
  std::size_t complete_nodes_ = 0;
  bool push_pull_;
  std::uint64_t seed_;
  FaultPlan* faults_;
  bool fault_active_;
  bool fault_amnesia_;
  double run_timeout_seconds_;
  Telemetry telemetry_;
  DynamicGraphTracker tracker_;
  RunMetrics metrics_;
  Round round_ = 0;

  EventQueue queue_;
  std::uint64_t seq_ = 0;                     ///< monotone event push counter
  std::vector<std::uint64_t> next_gap_index_; ///< per-node next clock gap

  // Per-window scratch, reused across windows.
  RoundGraphView view_;                  ///< CSR snapshot of the live graph
  ConnectivityChecker connectivity_;

  // Probe bookkeeping (touched only when telemetry_.probe != nullptr).
  RunMetrics probe_prev_;
  std::uint64_t probe_dropped_ = 0;
  std::uint64_t probe_duplicated_ = 0;
  std::uint64_t probe_edges_ = 0;
  // Timeline bookkeeping (touched only when telemetry_.timeline != nullptr):
  // start of the current window's event batch.
  TimelineRecorder::Clock::time_point batch_begin_;
};

}  // namespace dyngossip
