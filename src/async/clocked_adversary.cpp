#include "async/clocked_adversary.hpp"

#include "common/check.hpp"

namespace dyngossip {

ClockedAdversary::ClockedAdversary(Adversary& inner, double sigma)
    : inner_(inner), sigma_(sigma), prev_graph_(inner.num_nodes()) {
  DG_CHECK(sigma_ > 0.0);
}

const Graph& ClockedAdversary::next_round(
    const std::vector<KnowledgeSet>& knowledge) {
  const Round r = ++round_;
  UnicastRoundView view;
  view.round = r;
  view.prev_graph = &prev_graph_;
  view.prev_messages = &no_messages_;
  view.knowledge = &knowledge;
  const Graph& g = inner_.unicast_round(view);
  DG_CHECK(g.num_nodes() == inner_.num_nodes());
  // Snapshot after the call: the view above must still have seen G_{r-1}.
  // Copy-assignment reuses the retained graph's adjacency capacity.
  prev_graph_ = g;
  return g;
}

}  // namespace dyngossip
