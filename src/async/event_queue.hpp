// Deterministic binary-heap event queue for the asynchronous engine.
//
// The queue orders timestamped activation events by (time, node, seq)
// ascending — the async plane's tie-breaking contract.  Times are doubles
// (per-node prefix sums of exponential gaps, each node summed in its own
// fixed order, so the values themselves are bit-deterministic); exact ties
// across nodes are broken by node id, and the monotone per-push sequence
// number makes the order a strict total order even in pathological cases.
// Pop order is therefore a pure function of the pushed set — never of heap
// internals, hash seeds, or thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace dyngossip {

/// One scheduled node activation.
struct ActivationEvent {
  double time = 0.0;       ///< absolute clock time of the activation
  NodeId node = kNoNode;   ///< the node whose clock fires
  std::uint64_t seq = 0;   ///< monotone push id (final tie-break)
};

/// Strict total order: earliest first, ties by node, then push sequence.
[[nodiscard]] inline bool event_before(const ActivationEvent& a,
                                       const ActivationEvent& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  if (a.node != b.node) return a.node < b.node;
  return a.seq < b.seq;
}

/// Min-heap of activation events (std::push_heap/pop_heap over a reused
/// vector; the engine's steady state keeps exactly one pending event per
/// node, so the heap never grows past n).
class EventQueue {
 public:
  void reserve(std::size_t n) { heap_.reserve(n); }

  void push(const ActivationEvent& e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), after_);
  }

  /// The earliest event (by the (time, node, seq) order).
  [[nodiscard]] const ActivationEvent& top() const {
    DG_DCHECK(!heap_.empty());
    return heap_.front();
  }

  /// Removes and returns the earliest event.
  ActivationEvent pop() {
    DG_DCHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), after_);
    const ActivationEvent e = heap_.back();
    heap_.pop_back();
    return e;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

 private:
  /// Heap comparator ("a sorts after b"): std's max-heap becomes our
  /// min-heap by inverting event_before.
  struct After {
    [[nodiscard]] bool operator()(const ActivationEvent& a,
                                  const ActivationEvent& b) const noexcept {
      return event_before(b, a);
    }
  };

  std::vector<ActivationEvent> heap_;
  After after_;
};

}  // namespace dyngossip
