#include "async/poisson_clock.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace dyngossip {

std::uint64_t position_hash(std::uint64_t seed, std::uint64_t salt,
                            std::uint64_t a, std::uint64_t b) noexcept {
  // Fold each coordinate through a full SplitMix64 step (golden-ratio
  // stride keeps adjacent positions decorrelated), then draw once more so
  // the returned bits mix all four inputs.
  std::uint64_t state = seed ^ salt;
  state += 0x9e3779b97f4a7c15ull * (a + 1);
  state ^= splitmix64(state);  // xor the mixed a-fold back in: (a, b) ≠ (b, a)
  state += 0x9e3779b97f4a7c15ull * (b + 1);
  return splitmix64(state);
}

double position_uniform01(std::uint64_t seed, std::uint64_t salt,
                          std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<double>(position_hash(seed, salt, a, b) >> 11) *
         0x1.0p-53;
}

namespace {
/// Salt separating the clock-gap stream from the engine's choice streams.
constexpr std::uint64_t kClockSalt = 0xc10c4a5a11ee7ull;
}  // namespace

double PoissonClock::gap(NodeId v, std::uint64_t index) const noexcept {
  const double u =
      position_uniform01(seed_, kClockSalt, static_cast<std::uint64_t>(v), index);
  // Inverse CDF of Exp(rate).  u in [0, 1) makes 1 - u in (0, 1], so
  // -log1p(-u) is finite and >= 0; the +tiny floor keeps gaps strictly
  // positive (two activations of one node never share a timestamp).
  const double g = -std::log1p(-u) / rate_;
  return g > 0.0 ? g : 0x1.0p-60 / rate_;
}

}  // namespace dyngossip
