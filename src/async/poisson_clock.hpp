// Per-node Poisson clocks for the asynchronous engine plane.
//
// The asynchronous rumor-spreading model (Pourmiri–Mans, PAPERS.md) gives
// every node an independent rate-λ Poisson clock: the node acts at the
// arrival times of its own Poisson process, i.e. after i.i.d. Exp(λ)
// inter-activation gaps.  PoissonClock samples those gaps by inverse CDF —
// gap = -ln(1 - u) / λ — with u drawn from a *position-keyed* SplitMix64
// hash of (trial seed, node, activation index), the same determinism
// contract as fault/fault_plan.hpp: no decision ever consumes shared stream
// state, so the gap sequence of node v is a pure function of (seed, v) and
// is unperturbed by how many other nodes exist, what order events pop, or
// how many threads the surrounding sweep uses.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace dyngossip {

/// Position-keyed 64-bit hash: SplitMix64 over (seed ^ salt, a, b).  The
/// shared primitive behind every stochastic decision of the async plane
/// (clock gaps, neighbor picks, token picks) — pure, stateless, and
/// therefore evaluation-order independent.
[[nodiscard]] std::uint64_t position_hash(std::uint64_t seed, std::uint64_t salt,
                                          std::uint64_t a,
                                          std::uint64_t b = 0) noexcept;

/// Uniform double in [0, 1) from 53 high bits of a position hash.
[[nodiscard]] double position_uniform01(std::uint64_t seed, std::uint64_t salt,
                                        std::uint64_t a,
                                        std::uint64_t b = 0) noexcept;

/// The exponential-gap sampler of one trial's clocks.  All nodes share the
/// rate λ (the model's homogeneous case); per-node streams are separated by
/// hashing the node id into the position key.
class PoissonClock {
 public:
  /// `seed` is the trial's SplitMix64 stream seed; `rate` is λ > 0 in
  /// activations per clock unit.
  PoissonClock(std::uint64_t seed, double rate) noexcept
      : seed_(seed), rate_(rate) {}

  /// The gap between node v's activation `index` and its predecessor
  /// (index 0 is the gap from time 0 to the first activation).  Strictly
  /// positive; Exp(rate)-distributed over the index/node/seed space.
  [[nodiscard]] double gap(NodeId v, std::uint64_t index) const noexcept;

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
  double rate_;
};

}  // namespace dyngossip
