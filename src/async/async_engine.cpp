#include "async/async_engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.hpp"
#include "fault/fault_plan.hpp"
#include "telemetry/round_probe.hpp"

namespace dyngossip {

namespace {
// Salts separating the engine's position-keyed choice streams from each
// other and from the clock-gap stream (kClockSalt in poisson_clock.cpp).
constexpr std::uint64_t kNeighborSalt = 0xa5c0117ac7ull;  ///< neighbor pick
constexpr std::uint64_t kPushSalt = 0x9705aa7eull;        ///< push token pick
constexpr std::uint64_t kPullSalt = 0x9a11e77eull;        ///< pull token pick
}  // namespace

AsyncEngine::AsyncEngine(Adversary& adversary,
                         std::vector<KnowledgeSet> initial_knowledge,
                         std::size_t k, AsyncEngineOptions opts)
    : clocked_(adversary, opts.sigma),
      clock_(opts.seed, opts.rate),
      knowledge_(std::move(initial_knowledge)),
      k_(k),
      push_pull_(opts.push_pull),
      seed_(opts.seed),
      faults_(opts.faults),
      fault_active_(opts.faults != nullptr && opts.faults->active()),
      fault_amnesia_(fault_active_ && opts.faults->amnesia()),
      run_timeout_seconds_(opts.run_timeout_seconds),
      telemetry_(opts.telemetry),
      tracker_(adversary.num_nodes()) {
  const std::size_t n = knowledge_.size();
  DG_CHECK(n >= 1);
  DG_CHECK(n == adversary.num_nodes());
  DG_CHECK(opts.rate > 0.0);
  for (const KnowledgeSet& kn : knowledge_) {
    DG_CHECK(kn.size() == k_);
    if (kn.all()) ++complete_nodes_;
  }
  // Seed every node's first activation.  The heap holds exactly one pending
  // event per node from here on (each pop schedules its successor).
  queue_.reserve(n + 1);
  next_gap_index_.assign(n, 1);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    queue_.push({clock_.gap(v, 0), v, seq_++});
  }
}

void AsyncEngine::advance_rounds(Round target) {
  while (round_ < target) {
    // Close the open window: one probe sample and one event-batch span for
    // the finished round (both observer-only; gated on the pointers).
    if (round_ > 0) {
      if (telemetry_.probe != nullptr) probe_observe(round_, /*flush=*/false);
      if (telemetry_.timeline != nullptr) {
        const auto now = TimelineRecorder::now();
        telemetry_.timeline->span("event_batch", "phase", batch_begin_, now);
        batch_begin_ = now;
      }
    }
    const Round r = round_ + 1;
    const TimelineSpan span(telemetry_.timeline, "async_round", "round");
    // Fault plane: liveness advances per schedule round, exactly as in the
    // round engines (crash/recovery rolls are position-keyed on (round,
    // node), so sync and async trials share crash realizations).
    if (fault_active_) {
      faults_->begin_round(r);
      if (fault_amnesia_) {
        for (const NodeId v : faults_->crashed_this_round()) {
          if (knowledge_[v].all()) --complete_nodes_;
          knowledge_[v].reset_all();
          if (knowledge_[v].all()) ++complete_nodes_;  // k = 0 universe only
        }
      }
    }
    const Graph& g = clocked_.next_round(knowledge_);
    view_.rebuild(g);
    DG_CHECK(connectivity_.is_connected(view_));
    const GraphDiff& diff = tracker_.advance(view_, r);
    metrics_.tc += diff.inserted.size();
    metrics_.deletions += diff.removed.size();
    if (telemetry_.probe != nullptr) probe_edges_ = g.num_edges();
    round_ = r;
    metrics_.rounds = r;
  }
}

TokenId AsyncEngine::pick_token(const KnowledgeSet& ks, std::uint64_t event_no,
                                std::uint64_t salt) const {
  const std::size_t cnt = ks.count();
  if (cnt == 0) return kNoToken;
  std::size_t idx =
      static_cast<std::size_t>(position_hash(seed_, salt, event_no) % cnt);
  for (const std::size_t pos : ks.set_bits()) {
    if (idx == 0) return static_cast<TokenId>(pos);
    --idx;
  }
  DG_CHECK(false);  // count() said cnt members
  return kNoToken;
}

void AsyncEngine::learn(NodeId to, TokenId tok) {
  const bool was_complete = knowledge_[to].all();
  if (knowledge_[to].set(tok)) {
    ++metrics_.learnings;
    if (!was_complete && knowledge_[to].all()) ++complete_nodes_;
  } else {
    ++metrics_.duplicate_token_deliveries;
  }
}

void AsyncEngine::deliver_leg(NodeId from, NodeId to, TokenId tok,
                              std::uint32_t leg, std::uint64_t event_no) {
  (void)from;
  if (tok == kNoToken) return;  // empty knowledge: nothing to transmit
  metrics_.unicast.add(MsgType::kToken);  // the sender pays, delivered or not
  if (fault_active_) {
    if (!faults_->is_live(to)) {  // addressed to a crashed node: lost
      if (telemetry_.probe != nullptr) ++probe_dropped_;
      return;
    }
    if (faults_->has_delivery_faults()) {
      // Event position replaces (round, arc, per-arc seq): the event's
      // global sequence number is the arc coordinate and the contact leg is
      // the per-position sequence — still a pure position hash, still
      // evaluation-order independent.
      const FaultPlan::Fate fate = faults_->delivery_fate(
          round_, static_cast<std::size_t>(event_no), leg);
      if (fate == FaultPlan::Fate::kDrop) {
        if (telemetry_.probe != nullptr) ++probe_dropped_;
        return;
      }
      if (fate == FaultPlan::Fate::kDuplicate) {
        if (telemetry_.probe != nullptr) ++probe_duplicated_;
        learn(to, tok);  // duplicated: the payload arrives twice
      }
    }
  }
  learn(to, tok);
}

void AsyncEngine::process(const ActivationEvent& ev) {
  const NodeId v = ev.node;
  if (fault_active_ && !faults_->is_live(v)) return;  // crashed: silent clock
  const std::span<const NodeId> neigh = view_.neighbors(v);
  if (neigh.empty()) return;  // isolated in this window
  const std::uint64_t pick = position_hash(seed_, kNeighborSalt, ev.seq);
  const NodeId w = neigh[static_cast<std::size_t>(pick % neigh.size())];
  // Push leg: v offers one uniformly random known token to w.
  deliver_leg(v, w, pick_token(knowledge_[v], ev.seq, kPushSalt), 0, ev.seq);
  if (push_pull_) {
    // Pull leg: w answers with one of its own tokens in the same contact.
    // A crashed contact stays silent (its leg is never sent, not dropped).
    if (!fault_active_ || faults_->is_live(w)) {
      deliver_leg(w, v, pick_token(knowledge_[w], ev.seq, kPullSalt), 1,
                  ev.seq);
    }
  }
}

RunMetrics AsyncEngine::run(Round max_rounds) {
  const double horizon = clocked_.window_end(max_rounds);
  // Stall detection counts quiet *events*, not rounds: at rate λ a window
  // holds ~n·λ·σ activations, so the window scales with n (same rationale
  // as the round engines' 2n-round window, fault-active runs only).
  const std::uint64_t stall_window =
      fault_active_
          ? std::max<std::uint64_t>(4096, 64 * knowledge_.size())
          : 0;
  std::uint64_t last_learnings = metrics_.learnings;
  std::uint64_t quiet_events = 0;
  bool capped = false;
  bool stalled = false;
  bool all_down = false;
  bool timed_out = false;
  const auto started = std::chrono::steady_clock::now();
  std::uint32_t ticks = 0;
  if (telemetry_.timeline != nullptr) batch_begin_ = TimelineRecorder::now();
  while (!run_complete()) {
    if (fault_active_ && faults_->live_count() == 0 &&
        !faults_->can_recover()) {
      all_down = true;
      break;
    }
    DG_CHECK(!queue_.empty());
    if (!(queue_.top().time < horizon)) {  // nothing left before the cap
      capped = true;
      break;
    }
    const ActivationEvent ev = queue_.pop();
    // Materialize every schedule round up to the one owning this event
    // (the min() guards the floating-point edge at the horizon itself).
    const Round target = std::min(clocked_.round_of(ev.time), max_rounds);
    if (target > round_) advance_rounds(target);
    ++metrics_.virtual_steps;  // one clock activation
    process(ev);
    queue_.push({ev.time + clock_.gap(ev.node, next_gap_index_[ev.node]++),
                 ev.node, seq_++});
    if (fault_active_) {
      if (metrics_.learnings != last_learnings) {
        last_learnings = metrics_.learnings;
        quiet_events = 0;
      } else if (++quiet_events >= stall_window) {
        stalled = true;
        break;
      }
    }
    // Wall-clock watchdog, amortized to one clock read per 64 popped events
    // (the async analogue of the round engines' per-32-rounds check).
    if (run_timeout_seconds_ > 0.0 && (++ticks % 64u) == 0u &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
                .count() >= run_timeout_seconds_) {
      timed_out = true;
      break;
    }
  }
  (void)capped;  // capped is the status ladder's fall-through case
  metrics_.completed = run_complete();
  metrics_.status = metrics_.completed ? RunStatus::kCompleted
                    : timed_out        ? RunStatus::kTimeout
                    : stalled          ? RunStatus::kStalled
                    : all_down         ? RunStatus::kAllDown
                                       : RunStatus::kRoundCap;
  metrics_.coverage = coverage();
  // Final flush sample covers the still-open window, so per-round sums
  // reconcile with the totals at any stride.
  if (telemetry_.probe != nullptr && round_ > 0) {
    probe_observe(round_, /*flush=*/true);
  }
  if (telemetry_.timeline != nullptr && round_ > 0) {
    telemetry_.timeline->span("event_batch", "phase", batch_begin_,
                              TimelineRecorder::now());
  }
  return metrics_;
}

void AsyncEngine::probe_observe(Round r, bool flush) {
  RoundProbe& probe = *telemetry_.probe;
  if (!flush && !probe.wants(r)) return;  // deltas keep accumulating
  if (flush && probe.last_round() == static_cast<std::uint64_t>(r)) return;
  RoundProbeSample s;
  s.round = r;
  s.coverage = coverage();
  s.learned = metrics_.learnings - probe_prev_.learnings;
  s.sent = metrics_.total_messages() - probe_prev_.total_messages();
  s.dropped = probe_dropped_;
  s.duplicated = probe_duplicated_;
  s.requests = metrics_.unicast.request - probe_prev_.unicast.request;
  s.served = metrics_.unicast.token - probe_prev_.unicast.token;
  s.edges_inserted = metrics_.tc - probe_prev_.tc;
  s.edges_removed = metrics_.deletions - probe_prev_.deletions;
  s.edges = probe_edges_;
  s.crashed = fault_active_
                  ? static_cast<std::uint64_t>(knowledge_.size() -
                                               faults_->live_count())
                  : 0;
  probe.record(s);
  probe_prev_ = metrics_;
  probe_dropped_ = 0;
  probe_duplicated_ = 0;
}

bool AsyncEngine::run_complete() const {
  if (!fault_active_) return all_complete();
  if (faults_->live_count() == 0) return false;
  const auto n = static_cast<NodeId>(knowledge_.size());
  for (NodeId v = 0; v < n; ++v) {
    if (faults_->is_live(v) && !knowledge_[v].all()) return false;
  }
  return true;
}

double AsyncEngine::coverage() const {
  const std::uint64_t universe =
      static_cast<std::uint64_t>(knowledge_.size()) * k_;
  if (universe == 0) return 1.0;
  std::uint64_t known = 0;
  for (const KnowledgeSet& kn : knowledge_) known += kn.count();
  return static_cast<double>(known) / static_cast<double>(universe);
}

}  // namespace dyngossip
