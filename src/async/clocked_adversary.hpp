// Sync↔async time mapping: round schedules on a continuous clock.
//
// Every adversary in the registry produces a *round* schedule G_1, G_2, ...
// (including the file-backed trace:/scripted:/smoothed: families).  The
// asynchronous engine runs on continuous time, so ClockedAdversary adapts
// any of them with one convention: **edge lifetime = σ clock units** —
// round r's graph G_r is the live topology throughout the half-open window
// [(r-1)·σ, r·σ).  σ is the `sigma` key of the async families; σ = 1 makes
// one schedule round equal one expected activation per node at rate 1,
// which is the natural sync↔async comparison point.
//
// The adapter advances the inner adversary one round at a time (incremental
// adversaries depend on seeing every round) through an honest
// UnicastRoundView: the previous window's graph, the entering knowledge,
// and an empty traffic log — continuous-time sends have no round-aligned
// "previous round's messages", so an adaptive adversary sees state but not
// traffic (exactly the visibility an oblivious family ignores anyway).
#pragma once

#include <vector>

#include "adversary/adversary.hpp"
#include "common/knowledge_set.hpp"
#include "common/types.hpp"
#include "engine/message.hpp"
#include "graph/graph.hpp"

namespace dyngossip {

/// Adapts a round-schedule adversary to continuous time (see file comment).
class ClockedAdversary {
 public:
  /// `inner` must outlive the adapter; `sigma` > 0 is the edge lifetime in
  /// clock units.
  ClockedAdversary(Adversary& inner, double sigma);

  [[nodiscard]] std::size_t num_nodes() const { return inner_.num_nodes(); }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

  /// The schedule round whose graph is live at clock time t >= 0:
  /// floor(t / σ) + 1 (round r owns [(r-1)σ, rσ)).
  [[nodiscard]] Round round_of(double t) const noexcept {
    return static_cast<Round>(t / sigma_) + 1;
  }

  /// Clock time at which round r's window ends (and round r+1 begins).
  [[nodiscard]] double window_end(Round r) const noexcept {
    return static_cast<double>(r) * sigma_;
  }

  /// Builds the next round's graph through the inner adversary.
  /// `knowledge` is each node's token knowledge entering the window.  The
  /// returned reference is inner-adversary-owned and stays valid until the
  /// next call.
  const Graph& next_round(const std::vector<KnowledgeSet>& knowledge);

  /// Rounds consumed from the schedule so far.
  [[nodiscard]] Round round() const noexcept { return round_; }

 private:
  Adversary& inner_;
  double sigma_;
  Round round_ = 0;
  Graph prev_graph_;                       ///< snapshot shown as G_{r-1}
  std::vector<SentRecord> no_messages_;    ///< always empty (see file comment)
};

}  // namespace dyngossip
