// Per-round probe: the structured series the `--probe=round_series:` axis
// emits.
//
// A RoundProbe is a passive per-trial collector the engines fill with one
// sample per (sampled) round; a ProbeSink owns every trial's series for a
// run and serializes them as JSONL or CSV.  Samples are *deltas* per round
// (learned, sent, dropped, ...) except the gauges (coverage, edges,
// crashed), so per-series sums reconcile exactly with the run's RunMetrics
// totals — the invariant tests/telemetry/ and CI gate on.
//
// Determinism: engines fill a probe from the same merged-in-shard-order
// counters the payload checksum folds, and sinks serialize series in the
// deterministic trial order the scenario registers them, so probe output is
// bit-identical at any thread count (the telemetry extension of
// tests/engine/sharded_identity_test.cpp's guarantee).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/accounting.hpp"
#include "telemetry/probe_spec.hpp"

namespace dyngossip {

/// One sampled round.  Counters are per-round increments (accumulated
/// across skipped rounds when the stride > 1); coverage/edges/crashed are
/// gauges at the end of the round.
struct RoundProbeSample {
  std::uint64_t round = 0;        ///< absolute round number
  double coverage = 0.0;          ///< fraction of (node, token) pairs known
  std::uint64_t learned = 0;      ///< token-learning events
  std::uint64_t sent = 0;         ///< messages sent (unicast + broadcast)
  std::uint64_t dropped = 0;      ///< deliveries lost to the fault plane
  std::uint64_t duplicated = 0;   ///< deliveries duplicated by the fault plane
  std::uint64_t requests = 0;     ///< request messages issued
  std::uint64_t served = 0;       ///< token payloads delivered (request answers)
  std::uint64_t edges_inserted = 0;  ///< adversary insertions (TC increment)
  std::uint64_t edges_removed = 0;   ///< adversary deletions
  std::uint64_t edges = 0;        ///< |E_r| after the rewiring
  std::uint64_t crashed = 0;      ///< nodes down at the end of the round
};

[[nodiscard]] bool operator==(const RoundProbeSample& a,
                              const RoundProbeSample& b);

/// Passive per-trial collector.  The engine asks wants(r) before paying for
/// a sample (coverage is an O(n) scan) and records one when it says yes; a
/// final flush sample at the last round keeps the sums exact at any stride.
class RoundProbe {
 public:
  explicit RoundProbe(std::uint64_t every = 1) : every_(every == 0 ? 1 : every) {}

  /// True when round r is on the sampling stride.
  [[nodiscard]] bool wants(std::uint64_t round) const noexcept {
    return round % every_ == 0;
  }

  void record(const RoundProbeSample& sample) { samples_.push_back(sample); }

  [[nodiscard]] const std::vector<RoundProbeSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::uint64_t last_round() const noexcept {
    return samples_.empty() ? 0 : samples_.back().round;
  }

  void clear() { samples_.clear(); }

 private:
  std::uint64_t every_ = 1;
  std::vector<RoundProbeSample> samples_;
};

/// Owns every registered series of a run and serializes them per the spec.
/// add_series is called serially in deterministic trial order (after the
/// trial batch completes), never from pool workers.
class ProbeSink {
 public:
  explicit ProbeSink(ProbeSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const ProbeSpec& spec() const noexcept { return spec_; }

  /// Registers one trial's series plus its end-of-run totals (the
  /// reconciliation row: sum of per-round counters == these totals).
  void add_series(std::string label, std::vector<RoundProbeSample> samples,
                  const RunMetrics& totals);

  [[nodiscard]] std::size_t series_count() const noexcept {
    return series_.size();
  }

  /// Serializes every series in registration order to `os` (JSONL: one
  /// object per row, a "round" row per sample and one "total" row per
  /// series; CSV: a header plus round rows).
  void write_to(std::ostream& os) const;

  /// Writes to spec().out ("-": stdout).  Returns "" on success, else an
  /// error message.
  [[nodiscard]] std::string write() const;

 private:
  struct Series {
    std::string label;
    std::vector<RoundProbeSample> samples;
    RunMetrics totals;
  };

  ProbeSpec spec_;
  std::vector<Series> series_;
};

}  // namespace dyngossip
