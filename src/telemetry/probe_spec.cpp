#include "telemetry/probe_spec.hpp"

#include <map>

namespace dyngossip {

namespace {

constexpr const char* kFamily = "round_series";
constexpr std::size_t kFamilyLen = 12;  // strlen("round_series")

[[nodiscard]] bool known_probe_key(const std::string& key) {
  for (const SpecKey& k : probe_spec_keys()) {
    if (k.key == key) return true;
  }
  return false;
}

}  // namespace

const std::vector<SpecKey>& probe_spec_keys() {
  static const std::vector<SpecKey> keys = {
      {"out", SpecKey::Kind::kString, "probe.jsonl",
       "series output path ('-' writes to stdout)"},
      {"format", SpecKey::Kind::kString, "jsonl",
       "row encoding: jsonl | csv"},
      {"every", SpecKey::Kind::kInt, "1",
       "sample stride in rounds (1: every round; totals are always exact)"},
  };
  return keys;
}

ProbeFamilyDoc probe_family_doc() {
  return {kFamily,
          "per-round structured series: coverage, learnings, messages "
          "sent/dropped/duplicated, requests issued/served, edge churn, and "
          "crashed-node count — observation never perturbs the run",
          "round_series:out=series.jsonl,every=1",
          &probe_spec_keys()};
}

ProbeSpec ProbeSpec::parse(const std::string& text) {
  if (text.empty()) {
    throw ProbeSpecError(
        "empty probe spec (expected round_series:key=value,... or the bare "
        "key=value,... shorthand — see `dyngossip probes`)");
  }
  // `--probe=out=series.csv,format=csv` shorthand: a bare parameter list is
  // treated as the (only) probe family.  Anything else must name it.
  std::string full = text;
  const bool named = text.rfind(kFamily, 0) == 0 &&
                     (text.size() == kFamilyLen || text[kFamilyLen] == ':');
  if (!named) full = std::string(kFamily) + ":" + text;

  std::string family;
  std::map<std::string, std::string> params;
  const std::string err = parse_spec_text(full, "probe", &family, &params);
  if (!err.empty()) throw ProbeSpecError(err);
  if (family != kFamily) {
    throw ProbeSpecError("bad probe spec '" + text + "': unknown family '" +
                         family +
                         "' (the only probe family is 'round_series')");
  }
  for (const auto& [key, value] : params) {
    (void)value;
    if (!known_probe_key(key)) {
      std::string known;
      for (const SpecKey& k : probe_spec_keys()) {
        if (!known.empty()) known += ", ";
        known += k.key;
      }
      throw ProbeSpecError("bad probe spec '" + text + "': unknown key '" +
                           key + "' (known: " + known + ")");
    }
  }

  SpecValues values(kFamily, params,
                    [](const std::string& msg) { throw ProbeSpecError(msg); });
  ProbeSpec spec;
  spec.out = values.get_string("out", spec.out);
  if (spec.out.empty()) {
    throw ProbeSpecError("round_series: out must not be empty");
  }
  const std::string format = values.get_string("format", "jsonl");
  if (format == "jsonl") {
    spec.format = Format::kJsonl;
  } else if (format == "csv") {
    spec.format = Format::kCsv;
  } else {
    throw ProbeSpecError("round_series: format must be jsonl or csv (got '" +
                         format + "')");
  }
  const std::int64_t every = values.get_int("every", 1);
  if (every < 1) {
    throw ProbeSpecError("round_series: every must be >= 1, got " +
                         std::to_string(every));
  }
  spec.every = static_cast<std::uint64_t>(every);
  return spec;
}

std::string ProbeSpec::to_string() const {
  std::map<std::string, std::string> params;
  if (out != "probe.jsonl") params["out"] = out;
  if (format == Format::kCsv) params["format"] = "csv";
  if (every != 1) params["every"] = std::to_string(every);
  return render_spec_text(kFamily, params);
}

bool operator==(const ProbeSpec& a, const ProbeSpec& b) {
  return a.out == b.out && a.format == b.format && a.every == b.every;
}

}  // namespace dyngossip
