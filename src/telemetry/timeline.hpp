// Wall-clock timelines: `--timeline=FILE` writes chrome://tracing
// trace-event JSON (also loadable in Perfetto) with spans for rounds,
// exchange phases, per-shard jobs, and ThreadPool queue waits — the
// intra-round sharding made inspectable in a profiler UI.
//
// Unlike the probe axis, timelines measure *wall time* and are therefore
// never byte-reproducible; what the recorder guarantees instead is that it
// NEVER perturbs the run's results: spans only read the steady clock and
// append to a mutex-guarded buffer, and every call site is gated on the
// recorder pointer, so a run without `--timeline=` takes the exact legacy
// code path.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace dyngossip {

/// Thread-safe trace-event collector.  Spans complete (ph "X") on record,
/// so no begin/end pairing state is needed; write_json emits the JSON
/// array format chrome://tracing and Perfetto both ingest.
class TimelineRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  TimelineRecorder() : origin_(Clock::now()) {}

  [[nodiscard]] static Clock::time_point now() noexcept { return Clock::now(); }

  /// Records one completed span [begin, end] on the calling thread's track.
  /// `category` groups spans in the UI ("round", "phase", "shard", "pool").
  void span(const std::string& name, const char* category,
            Clock::time_point begin, Clock::time_point end);

  [[nodiscard]] std::size_t event_count() const;

  /// Emits the trace-event JSON array (one displayTimeUnit-free document;
  /// timestamps are microseconds since the recorder was created).
  void write_json(std::ostream& os) const;

  /// Writes to `path`.  Returns "" on success, else an error message.
  [[nodiscard]] std::string write_file(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    const char* category;
    std::uint32_t tid;
    std::int64_t ts_us;
    std::int64_t dur_us;
  };

  [[nodiscard]] std::uint32_t tid_locked(std::thread::id id);

  Clock::time_point origin_;
  mutable std::mutex mu_;
  std::map<std::thread::id, std::uint32_t> tids_;
  std::vector<Event> events_;
};

/// RAII span over a static name: times its own scope when a recorder is
/// attached, does nothing but copy three pointers when `recorder` is null —
/// cheap enough to sit inside the engines' per-round path unguarded.
class TimelineSpan {
 public:
  TimelineSpan(TimelineRecorder* recorder, const char* name,
               const char* category)
      : recorder_(recorder), name_(name), category_(category) {
    if (recorder_ != nullptr) begin_ = TimelineRecorder::now();
  }
  ~TimelineSpan() {
    if (recorder_ != nullptr) {
      recorder_->span(name_, category_, begin_, TimelineRecorder::now());
    }
  }

  TimelineSpan(const TimelineSpan&) = delete;
  TimelineSpan& operator=(const TimelineSpan&) = delete;

 private:
  TimelineRecorder* recorder_;
  const char* name_;
  const char* category_;
  TimelineRecorder::Clock::time_point begin_;
};

}  // namespace dyngossip
