// Per-round time-series recording (the telemetry plane's hook-based
// recorder).
//
// Attachable to either engine's round hook, the recorder samples the
// cumulative metrics after every round and exports the increments as CSV —
// the raw material for learning-curve and message-rate figures (e.g. the
// per-round throttling the Section-2 adversary induces, or the phase-1 /
// phase-2 hand-off of Algorithm 2).  For the structured `--probe=` axis
// (per-round deltas, fault counters, JSONL) see telemetry/round_probe.hpp;
// this recorder stays as the lightweight cumulative-CSV form the
// learning_curves demo exports.
#pragma once

#include <ostream>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"
#include "metrics/accounting.hpp"

namespace dyngossip {

/// One row of the series: cumulative counters as of the end of `round`.
struct RoundSample {
  Round round = 0;
  std::uint64_t messages = 0;   ///< cumulative total messages
  std::uint64_t learnings = 0;  ///< cumulative token learnings
  std::uint64_t tc = 0;         ///< cumulative TC(E)
  std::size_t edges = 0;        ///< |E_r| of the round graph
};

/// Collects RoundSamples through an engine round hook.
class SeriesRecorder {
 public:
  /// The hook to install: engine.set_round_hook(recorder.hook()).
  /// The recorder must outlive the engine run.
  [[nodiscard]] auto hook() {
    return [this](Round r, const Graph& g, const RunMetrics& m) {
      samples_.push_back({r, m.total_messages(), m.learnings, m.tc, g.num_edges()});
    };
  }

  /// All samples recorded so far (one per executed round).
  [[nodiscard]] const std::vector<RoundSample>& samples() const noexcept {
    return samples_;
  }

  /// Per-round increments of a cumulative field between consecutive samples
  /// (the first increment is measured against zero).
  [[nodiscard]] std::vector<std::uint64_t> per_round_learnings() const;
  [[nodiscard]] std::vector<std::uint64_t> per_round_messages() const;

  /// Largest single-round learning burst (0 if empty).
  [[nodiscard]] std::uint64_t max_learning_burst() const;

  /// Writes "round,messages,learnings,tc,edges" CSV (cumulative values).
  void write_csv(std::ostream& os) const;

  /// Drops all samples (reuse across phases/runs).
  void clear() noexcept { samples_.clear(); }

 private:
  std::vector<RoundSample> samples_;
};

}  // namespace dyngossip
