#include "telemetry/series.hpp"

#include <algorithm>

namespace dyngossip {

namespace {

template <typename Field>
std::vector<std::uint64_t> increments(const std::vector<RoundSample>& samples,
                                      Field field) {
  std::vector<std::uint64_t> out;
  out.reserve(samples.size());
  std::uint64_t prev = 0;
  for (const RoundSample& s : samples) {
    const std::uint64_t cur = field(s);
    out.push_back(cur - prev);
    prev = cur;
  }
  return out;
}

}  // namespace

std::vector<std::uint64_t> SeriesRecorder::per_round_learnings() const {
  return increments(samples_, [](const RoundSample& s) { return s.learnings; });
}

std::vector<std::uint64_t> SeriesRecorder::per_round_messages() const {
  return increments(samples_, [](const RoundSample& s) { return s.messages; });
}

std::uint64_t SeriesRecorder::max_learning_burst() const {
  const auto deltas = per_round_learnings();
  const auto it = std::max_element(deltas.begin(), deltas.end());
  return it == deltas.end() ? 0 : *it;
}

void SeriesRecorder::write_csv(std::ostream& os) const {
  os << "round,messages,learnings,tc,edges\n";
  for (const RoundSample& s : samples_) {
    os << s.round << ',' << s.messages << ',' << s.learnings << ',' << s.tc << ','
       << s.edges << '\n';
  }
}

}  // namespace dyngossip
