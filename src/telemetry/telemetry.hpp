// The observer handle the engines carry: at most one probe and one timeline
// recorder per run, both non-owning and both optional.
//
// Zero-cost-when-off contract: every telemetry touch inside an engine is
// gated on the pointer (`if (telemetry_.probe != nullptr) ...`), so a run
// built without probes takes the exact legacy code path — and a probed run
// only *reads* engine state (counters the payload checksum already folds,
// plus an O(n) coverage scan per sampled round), so payload checksums are
// byte-identical with probes on or off.  Both halves are CI-gated.
#pragma once

namespace dyngossip {

class RoundProbe;
class TimelineRecorder;

/// Non-owning observer pointers, passed by value through the option
/// structs (UnicastEngineOptions / BroadcastEngineOptions /
/// AlgoBuildContext) and the simulator entry points.
struct Telemetry {
  RoundProbe* probe = nullptr;
  TimelineRecorder* timeline = nullptr;

  [[nodiscard]] bool active() const noexcept {
    return probe != nullptr || timeline != nullptr;
  }
};

}  // namespace dyngossip
