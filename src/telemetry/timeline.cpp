#include "telemetry/timeline.hpp"

#include <fstream>

namespace dyngossip {

namespace {

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::uint32_t TimelineRecorder::tid_locked(std::thread::id id) {
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const auto tid = static_cast<std::uint32_t>(tids_.size() + 1);
  tids_.emplace(id, tid);
  return tid;
}

void TimelineRecorder::span(const std::string& name, const char* category,
                            Clock::time_point begin, Clock::time_point end) {
  const auto us = [this](Clock::time_point t) {
    return std::chrono::duration_cast<std::chrono::microseconds>(t - origin_)
        .count();
  };
  const std::int64_t ts = us(begin);
  const std::int64_t dur = us(end) - ts;
  const std::scoped_lock lock(mu_);
  events_.push_back({name, category, tid_locked(std::this_thread::get_id()),
                     ts, dur < 0 ? 0 : dur});
}

std::size_t TimelineRecorder::event_count() const {
  const std::scoped_lock lock(mu_);
  return events_.size();
}

void TimelineRecorder::write_json(std::ostream& os) const {
  const std::scoped_lock lock(mu_);
  os << "[\n";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << e.category << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us << "}";
  }
  os << "\n]\n";
}

std::string TimelineRecorder::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return "cannot open timeline file '" + path + "'";
  write_json(out);
  out.flush();
  if (!out) return "failed writing timeline file '" + path + "'";
  return "";
}

}  // namespace dyngossip
