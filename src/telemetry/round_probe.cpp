#include "telemetry/round_probe.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <utility>

namespace dyngossip {

namespace {

/// Shortest decimal rendering that round-trips the exact double, so
/// coverage reads `0.875`, never `0.87500000000000004` — and two runs that
/// produced the same double always serialize the same bytes.
[[nodiscard]] std::string render_double(double value) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

/// Minimal JSON string escaping (labels are CLI-controlled ASCII, but a
/// quote in a spec string must not corrupt the row).
[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof esc, "\\u%04x", c);
          out += esc;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_field(std::string& row, const char* key, std::uint64_t value) {
  row += ",\"";
  row += key;
  row += "\":";
  row += std::to_string(value);
}

}  // namespace

bool operator==(const RoundProbeSample& a, const RoundProbeSample& b) {
  return a.round == b.round && a.coverage == b.coverage &&
         a.learned == b.learned && a.sent == b.sent && a.dropped == b.dropped &&
         a.duplicated == b.duplicated && a.requests == b.requests &&
         a.served == b.served && a.edges_inserted == b.edges_inserted &&
         a.edges_removed == b.edges_removed && a.edges == b.edges &&
         a.crashed == b.crashed;
}

void ProbeSink::add_series(std::string label,
                           std::vector<RoundProbeSample> samples,
                           const RunMetrics& totals) {
  series_.push_back({std::move(label), std::move(samples), totals});
}

void ProbeSink::write_to(std::ostream& os) const {
  if (spec_.format == ProbeSpec::Format::kCsv) {
    os << "series,round,coverage,learned,sent,dropped,duplicated,requests,"
          "served,edges_inserted,edges_removed,edges,crashed\n";
    for (const Series& s : series_) {
      for (const RoundProbeSample& r : s.samples) {
        os << s.label << ',' << r.round << ',' << render_double(r.coverage)
           << ',' << r.learned << ',' << r.sent << ',' << r.dropped << ','
           << r.duplicated << ',' << r.requests << ',' << r.served << ','
           << r.edges_inserted << ',' << r.edges_removed << ',' << r.edges
           << ',' << r.crashed << '\n';
      }
    }
    return;
  }
  for (const Series& s : series_) {
    const std::string label = json_escape(s.label);
    for (const RoundProbeSample& r : s.samples) {
      std::string row = "{\"type\":\"round\",\"series\":\"" + label + "\"";
      append_field(row, "round", r.round);
      row += ",\"coverage\":" + render_double(r.coverage);
      append_field(row, "learned", r.learned);
      append_field(row, "sent", r.sent);
      append_field(row, "dropped", r.dropped);
      append_field(row, "duplicated", r.duplicated);
      append_field(row, "requests", r.requests);
      append_field(row, "served", r.served);
      append_field(row, "edges_inserted", r.edges_inserted);
      append_field(row, "edges_removed", r.edges_removed);
      append_field(row, "edges", r.edges);
      append_field(row, "crashed", r.crashed);
      row += "}\n";
      os << row;
    }
    std::string total = "{\"type\":\"total\",\"series\":\"" + label + "\"";
    append_field(total, "rounds", s.totals.rounds);
    append_field(total, "sent", s.totals.total_messages());
    append_field(total, "requests", s.totals.unicast.request);
    append_field(total, "served", s.totals.unicast.token);
    append_field(total, "learned", s.totals.learnings);
    append_field(total, "duplicates", s.totals.duplicate_token_deliveries);
    append_field(total, "tc", s.totals.tc);
    append_field(total, "deletions", s.totals.deletions);
    total += ",\"status\":\"";
    total += run_status_name(s.totals.status);
    total += "\",\"coverage\":" + render_double(s.totals.coverage);
    total += "}\n";
    os << total;
  }
}

std::string ProbeSink::write() const {
  if (spec_.out == "-") {
    write_to(std::cout);
    std::cout.flush();
    return "";
  }
  std::ofstream out(spec_.out, std::ios::binary);
  if (!out) return "cannot open probe output file '" + spec_.out + "'";
  write_to(out);
  out.flush();
  if (!out) return "failed writing probe output file '" + spec_.out + "'";
  return "";
}

}  // namespace dyngossip
