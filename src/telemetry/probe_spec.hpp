// Probe spec: the observability axis of a run.
//
// The fault plane perturbs the execution and the adversary registries
// perturb the topology; the probe axis *observes* — it selects which
// per-round series a run emits, and where, without ever feeding back into
// the run.  It shares the `family[:key=value,...]` grammar of
// common/spec.hpp:
//
//     round_series:out=probe.jsonl,format=jsonl,every=1
//
// The only family is `round_series`; the CLI additionally accepts a bare
// parameter list (`--probe=out=series.csv,format=csv`) as shorthand,
// exactly like `--fault=`.  `dyngossip probes [--json]` lists the family
// from probe_family_doc(), the same way `faults` lists the fault family.
//
// Observation contract: probes never perturb.  A probed run's payload
// checksum is byte-identical to the unprobed run's — the probe only reads
// engine state that already exists (CI gates this, like the inactive-fault
// identity).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/spec.hpp"

namespace dyngossip {

/// Thrown on malformed probe spec text, unknown keys, or out-of-range
/// values, so CLI layers map probe-axis misuse to flag errors (exit 2)
/// exactly like AdversarySpecError / FaultSpecError.
class ProbeSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed, validated probe spec.
struct ProbeSpec {
  enum class Format : std::uint8_t { kJsonl = 0, kCsv = 1 };

  std::string out = "probe.jsonl";  ///< output path ("-": stdout)
  Format format = Format::kJsonl;   ///< row encoding
  std::uint64_t every = 1;          ///< sample stride in rounds (>= 1)

  /// Parses `round_series[:key=value,...]` — or a bare `key=value,...`
  /// parameter list, treated as `round_series:` shorthand.  Strict:
  /// unknown keys, an unknown format, and every < 1 all throw
  /// ProbeSpecError.
  [[nodiscard]] static ProbeSpec parse(const std::string& text);

  /// Canonical `round_series:k=v,...` rendering (keys sorted, defaults
  /// omitted; an all-default spec renders as the bare family name), so
  /// parse(s).to_string() round-trips like the sibling axes.
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] bool operator==(const ProbeSpec& a, const ProbeSpec& b);

/// Declared keys of the round_series family (documentation + validation).
[[nodiscard]] const std::vector<SpecKey>& probe_spec_keys();

/// Listing entry for `dyngossip probes` (same shape as FaultFamilyDoc;
/// there is exactly one family).
struct ProbeFamilyDoc {
  std::string name;
  std::string description;
  std::string example;
  const std::vector<SpecKey>* keys;
};
[[nodiscard]] ProbeFamilyDoc probe_family_doc();

}  // namespace dyngossip
