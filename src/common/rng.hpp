// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulation (graph generators, oblivious
// adversary schedules, the randomized Algorithm 2, the Section-2 K'-set
// sampling) draws from an explicitly seeded Rng so that every experiment is
// reproducible from its configuration alone.  The core generator is
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is both
// faster and statistically stronger than std::mt19937_64 while keeping the
// implementation self-contained.
//
// Rng is also the mechanism by which we model the *oblivious* adversary of
// Section 1.3: an oblivious adversary's schedule is a pure function of its
// own seed, never of algorithm state, which is exactly "committing to the
// sequence of topologies before the execution starts".
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace dyngossip {

/// SplitMix64 step; used for seeding and as a cheap hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** pseudo-random generator with convenience sampling helpers.
///
/// Satisfies UniformRandomBitGenerator so it can also be handed to
/// <random> distributions, although the member helpers below are preferred
/// (their results are stable across standard library implementations).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (SplitMix64-expanded).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }
  result_type operator()() noexcept { return next(); }

  /// Next raw 64 random bits.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound).  Requires bound > 0.  Unbiased
  /// (Lemire's nearly-divisionless rejection method).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly samples `count` distinct values from [0, universe).
  /// Requires count <= universe.  O(count) expected time for sparse draws,
  /// O(universe) when count is a large fraction of the universe.
  [[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(
      std::uint64_t universe, std::uint64_t count);

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) noexcept {
    DG_CHECK(!v.empty());
    return v[static_cast<std::size_t>(next_below(v.size()))];
  }

  /// Derives an independent child generator; use to give each subsystem its
  /// own stream so that adding draws in one place never perturbs another.
  [[nodiscard]] Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace dyngossip
