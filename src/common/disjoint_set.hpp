// Disjoint-set union (union-find) with path halving and union by size.
//
// Used wherever the simulation reasons about connectivity: checking that an
// adversary's round graph is connected (the model's standing assumption),
// counting the connected components of the free-edge graph F(r) in the
// Section-2 lower-bound adversary, and patching components together with the
// minimum number of extra edges (the adversary adds ℓ−1 non-free edges to
// connect ℓ components).
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace dyngossip {

/// Classic DSU over elements [0, n).
class DisjointSet {
 public:
  /// n singleton sets.
  explicit DisjointSet(std::size_t n = 0);

  /// Resets to n singleton sets.
  void reset(std::size_t n);

  /// Number of elements.
  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

  /// Representative of x's set (path halving; amortized near-O(1)).
  [[nodiscard]] std::size_t find(std::size_t x) noexcept;

  /// Merges the sets of a and b; returns true iff they were distinct.
  bool unite(std::size_t a, std::size_t b) noexcept;

  /// True iff a and b are in the same set.
  [[nodiscard]] bool connected(std::size_t a, std::size_t b) noexcept {
    return find(a) == find(b);
  }

  /// Number of disjoint sets currently present.
  [[nodiscard]] std::size_t component_count() const noexcept { return components_; }

  /// Size of the set containing x.
  [[nodiscard]] std::size_t component_size(std::size_t x) noexcept {
    return size_[find(x)];
  }

  /// One representative element per component, in increasing order.
  [[nodiscard]] std::vector<std::size_t> representatives();

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_ = 0;
};

}  // namespace dyngossip
