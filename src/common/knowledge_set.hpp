// Hybrid sparse/dense knowledge set.
//
// The knowledge sets of the paper — K_v(t) over k tokens, and the per-node
// bookkeeping sets over n nodes (R_v, S_v of Algorithm 1) — span wildly
// different densities.  Token sets fill up (every node eventually holds all
// k tokens), but the node-universe sets stay tiny compared to n = 10⁵: a
// node announces to / hears from only the neighbors churn ever shows it.  A
// plain DynamicBitset charges Θ(universe/64) words per whole-set operation
// and universe/8 bytes per set regardless — 2 × n/8 bytes × n nodes ≈ 2.5 GB
// of R_v/S_v at n = 10⁵ before the first round runs.
//
// KnowledgeSet keeps the DynamicBitset API (including the zero-allocation
// cursor ranges the Algorithm-1 missing-token walk depends on) but switches
// representation by density:
//   - sparse: a sorted array of element ids — O(|set|) memory and
//     iteration, O(log |set|) membership;
//   - dense: a DynamicBitset — O(1) membership, word-parallel algebra.
// Promotion happens at count >= universe/32 (the memory-parity point: 4-byte
// sparse entries vs universe/8 dense bytes); demotion applies a 4× hysteresis
// so sets oscillating near the threshold do not thrash.  See
// docs/PERFORMANCE.md for the measurement behind the threshold.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/dynamic_bitset.hpp"

namespace dyngossip {

/// Fixed-universe set with a density-adaptive representation and the
/// DynamicBitset API (drop-in on every knowledge path).
class KnowledgeSet {
 public:
  /// Sparse count at which the set switches to the dense representation
  /// (memory parity: count 4-byte entries == universe/8 bitset bytes).  The
  /// floor keeps micro-universes from thrashing representations.
  [[nodiscard]] static constexpr std::size_t promote_threshold(
      std::size_t universe) noexcept {
    return std::max<std::size_t>(universe / 32, 8);
  }

  /// Dense count below which reset() demotes back to sparse (4× hysteresis
  /// under promote_threshold).
  [[nodiscard]] static constexpr std::size_t demote_threshold(
      std::size_t universe) noexcept {
    return promote_threshold(universe) / 4;
  }

  /// Zero-allocation cursor over set or unset positions in increasing
  /// order; the hybrid analogue of DynamicBitset::BitCursor.  Three modes:
  /// a pointer walk over the sparse array, a complement walk against it, or
  /// a word-scan over the dense bitset.  Invalidated by any mutation.
  class Cursor {
   public:
    /// Range-for sentinel.
    struct End {};

    [[nodiscard]] std::size_t operator*() const noexcept {
      if (dense_) return **dense_;
      return mode_ == Mode::kSparseSet ? static_cast<std::size_t>(*it_) : pos_;
    }

    Cursor& operator++() noexcept {
      if (dense_) {
        ++*dense_;
      } else if (mode_ == Mode::kSparseSet) {
        ++it_;
      } else {
        ++pos_;
        settle();
      }
      return *this;
    }

    [[nodiscard]] bool operator==(End) const noexcept {
      if (dense_) return *dense_ == DynamicBitset::BitCursor::End{};
      return mode_ == Mode::kSparseSet ? it_ == end_ : pos_ >= universe_;
    }

   private:
    friend class KnowledgeSet;
    enum class Mode : std::uint8_t { kSparseSet, kSparseUnset, kDense };

    Cursor(const std::uint32_t* it, const std::uint32_t* end, std::size_t universe,
           Mode mode) noexcept
        : mode_(mode), it_(it), end_(end), universe_(universe) {
      if (mode_ == Mode::kSparseUnset) settle();
    }

    explicit Cursor(DynamicBitset::BitCursor cursor) noexcept
        : mode_(Mode::kDense), dense_(cursor) {}

    /// Complement walk: skip positions present in the sorted array.
    void settle() noexcept {
      while (it_ != end_ && static_cast<std::size_t>(*it_) == pos_) {
        ++it_;
        ++pos_;
      }
    }

    Mode mode_;
    const std::uint32_t* it_ = nullptr;
    const std::uint32_t* end_ = nullptr;
    std::size_t universe_ = 0;
    std::size_t pos_ = 0;
    std::optional<DynamicBitset::BitCursor> dense_;
  };

  /// Lightweight range over set or unset positions (see Cursor).
  class PositionRange {
   public:
    [[nodiscard]] Cursor begin() const noexcept { return set_->cursor(invert_); }
    [[nodiscard]] Cursor::End end() const noexcept { return {}; }

   private:
    friend class KnowledgeSet;
    PositionRange(const KnowledgeSet* set, bool invert) noexcept
        : set_(set), invert_(invert) {}

    const KnowledgeSet* set_;
    bool invert_;
  };

  /// Empty set over an empty universe.
  KnowledgeSet() = default;

  /// Set over universe [0, size), initially all false (or all true).
  explicit KnowledgeSet(std::size_t size, bool initially_set = false);

  /// Universe size (number of addressable positions).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Grows the universe to `size`; new positions are absent.  No-op if the
  /// universe is already at least that large.
  void resize(std::size_t size);

  /// Membership test.
  [[nodiscard]] bool test(std::size_t pos) const noexcept {
    DG_DCHECK(pos < size_);
    if (dense_) return bits_.test(pos);
    return std::binary_search(elems_.begin(), elems_.end(),
                              static_cast<std::uint32_t>(pos));
  }

  /// Inserts pos; returns true iff newly inserted.  May promote to dense.
  bool set(std::size_t pos);

  /// Removes pos; returns true iff previously present.  May demote to
  /// sparse (hysteresis, see demote_threshold).
  bool reset(std::size_t pos);

  /// Fills the universe (dense afterwards).
  void set_all();

  /// Empties the set (sparse afterwards).
  void reset_all();

  /// Number of elements (O(1)).
  [[nodiscard]] std::size_t count() const noexcept {
    return dense_ ? bits_.count() : elems_.size();
  }

  /// True iff empty.
  [[nodiscard]] bool none() const noexcept { return count() == 0; }

  /// True iff the whole universe is present.
  [[nodiscard]] bool all() const noexcept { return count() == size_; }

  /// True iff currently in the dense representation (tests/benches).
  [[nodiscard]] bool is_dense() const noexcept { return dense_; }

  /// In-place union.  Requires equal universe sizes.
  KnowledgeSet& operator|=(const KnowledgeSet& other);

  /// In-place intersection.  Requires equal universe sizes.
  KnowledgeSet& operator&=(const KnowledgeSet& other);

  /// In-place difference (this \ other).  Requires equal universe sizes.
  KnowledgeSet& subtract(const KnowledgeSet& other);

  /// |this ∪ other| without materializing the union.
  [[nodiscard]] std::size_t union_count(const KnowledgeSet& other) const;

  /// |this ∩ other| without materializing the intersection.
  [[nodiscard]] std::size_t intersect_count(const KnowledgeSet& other) const;

  /// True iff this set contains every element of `other`.
  [[nodiscard]] bool contains_all(const KnowledgeSet& other) const;

  /// First absent position, or size() if the set is full.
  [[nodiscard]] std::size_t find_first_unset() const noexcept;

  /// First present position >= from, or size() if none.
  [[nodiscard]] std::size_t find_next_set(std::size_t from) const noexcept;

  /// All absent positions in increasing order.  Allocates; hot paths
  /// iterate unset_bits().
  [[nodiscard]] std::vector<std::size_t> unset_positions() const;

  /// All present positions in increasing order.  Allocates; hot paths
  /// iterate set_bits().
  [[nodiscard]] std::vector<std::size_t> set_positions() const;

  /// Allocation-free cursor range over present positions, increasing order.
  [[nodiscard]] PositionRange set_bits() const noexcept {
    return PositionRange(this, /*invert=*/false);
  }

  /// Allocation-free cursor range over absent positions, increasing order.
  [[nodiscard]] PositionRange unset_bits() const noexcept {
    return PositionRange(this, /*invert=*/true);
  }

  /// Structural equality (same universe, same members) — representation
  /// does not matter (hysteresis can leave equal sets in different reps).
  friend bool operator==(const KnowledgeSet& a, const KnowledgeSet& b);

 private:
  [[nodiscard]] Cursor cursor(bool invert) const noexcept {
    if (dense_) {
      return Cursor((invert ? bits_.unset_bits() : bits_.set_bits()).begin());
    }
    if (!invert) {
      return Cursor(elems_.data(), elems_.data() + elems_.size(), size_,
                    Cursor::Mode::kSparseSet);
    }
    return Cursor(elems_.data(), elems_.data() + elems_.size(), size_,
                  Cursor::Mode::kSparseUnset);
  }

  /// Sparse → dense; frees the array.
  void promote();

  /// Dense → sparse; frees the bitset.
  void demote();

  void maybe_promote() {
    if (!dense_ && elems_.size() >= promote_threshold(size_)) promote();
  }

  void maybe_demote() {
    if (dense_ && bits_.count() < demote_threshold(size_)) demote();
  }

  std::size_t size_ = 0;
  bool dense_ = false;
  std::vector<std::uint32_t> elems_;  ///< sparse: sorted unique element ids
  DynamicBitset bits_;                ///< dense payload (empty when sparse)
};

}  // namespace dyngossip
