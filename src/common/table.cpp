#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "common/check.hpp"

namespace dyngossip {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DG_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  DG_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::big(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back('_');
    out.push_back(digits[i]);
  }
  return out;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(width[c] - cells[c].size(), ' ');
      os << (c + 1 == cells.size() ? " |" : " | ");
    }
    os << '\n';
  };
  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << (c + 1 == cells.size() ? "" : ",");
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace dyngossip
