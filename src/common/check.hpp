// Lightweight contract checking.
//
// DG_CHECK is active in every build type (simulation correctness beats the
// tiny branch cost); DG_DCHECK compiles away in NDEBUG builds and is used on
// hot paths.  Failures print the condition and location and abort — a
// violated invariant in a deterministic simulation is a programming error,
// not a recoverable condition (C++ Core Guidelines E.12, I.6).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dyngossip::detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "DG_CHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

}  // namespace dyngossip::detail

#define DG_CHECK(cond)                                                   \
  do {                                                                   \
    if (!(cond)) ::dyngossip::detail::check_failed(#cond, __FILE__, __LINE__); \
  } while (false)

#ifdef NDEBUG
#define DG_DCHECK(cond) \
  do {                  \
  } while (false)
#else
#define DG_DCHECK(cond) DG_CHECK(cond)
#endif
