// Small numeric helpers shared across the library.
//
// The paper's bounds are stated in terms of n, k, s, log n and fractional
// powers (e.g. f = n^{1/2} k^{1/4} log^{5/4} n); these helpers evaluate such
// expressions consistently, with log meaning log base 2 clamped to >= 1 so
// the formulas stay meaningful at the small n used in unit tests.
#pragma once

#include <cstdint>

namespace dyngossip {

/// log2(x) clamped below at 1.0 (the paper's asymptotic log n; clamping keeps
/// bound formulas positive and monotone for the tiny n used in tests).
[[nodiscard]] double log2_clamped(double x) noexcept;

/// x^e for non-negative x (std::pow wrapper with a domain check).
[[nodiscard]] double powd(double x, double e) noexcept;

/// Ceiling division for unsigned integers.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Integer saturating cast of a non-negative double (rounds to nearest).
[[nodiscard]] std::uint64_t round_to_u64(double x) noexcept;

/// Clamps v into [lo, hi].
[[nodiscard]] constexpr double clampd(double v, double lo, double hi) noexcept {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace dyngossip
