#include "common/disjoint_set.hpp"

#include <numeric>

namespace dyngossip {

DisjointSet::DisjointSet(std::size_t n) { reset(n); }

void DisjointSet::reset(std::size_t n) {
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  size_.assign(n, 1);
  components_ = n;
}

std::size_t DisjointSet::find(std::size_t x) noexcept {
  DG_DCHECK(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool DisjointSet::unite(std::size_t a, std::size_t b) noexcept {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --components_;
  return true;
}

std::vector<std::size_t> DisjointSet::representatives() {
  std::vector<std::size_t> reps;
  reps.reserve(components_);
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    if (find(i) == i) reps.push_back(i);
  }
  return reps;
}

}  // namespace dyngossip
