// Build provenance: who built this binary, from what, and how.
//
// Every uploaded artifact (scenario JSON records, .dgt traces, probe
// series) should be attributable to the exact build that produced it.  The
// values are baked in at configure time (CMake passes them as compile
// definitions on this translation unit only, so a new git describe
// recompiles one file): git describe, compiler id/version, build type, and
// the sanitizer flags.  `dyngossip version` prints them; the scenario
// emitters embed them under the volatile "run" key (so payload diffs stay
// clean); trace recordings carry the space-free compact form in their
// metadata string.
#pragma once

#include <cstdint>
#include <string>

namespace dyngossip {

/// The baked-in build facts (each "unknown"/empty when not configured).
struct Provenance {
  std::string git_describe;  ///< `git describe --always --dirty --tags`
  std::string compiler;      ///< e.g. "gcc-12.2.0"
  std::string build_type;    ///< CMAKE_BUILD_TYPE, e.g. "Release"
  std::string sanitize;      ///< DYNGOSSIP_SANITIZE, "" when off
};

/// The provenance of this binary.
[[nodiscard]] const Provenance& build_provenance();

/// Result-cache generation this binary reads and writes (src/cache/).  Bump
/// whenever a change alters what a cached row means — the RunKey grammar,
/// the serialized entry fields, or any engine change that can move a
/// deterministic run's payload checksum.  The version is folded into every
/// RunKey, so entries from another generation simply miss (never corrupt a
/// read), and it rides in `dyngossip version` and scenario JSON
/// `.run.build` so provenance identifies which cache generation produced a
/// row.
inline constexpr std::uint32_t kCacheSchemaVersion = 2;

/// One space-free token for trace metadata (`build=` values cannot contain
/// spaces): "<git>+<compiler>+<build_type>[+<sanitize>]".
[[nodiscard]] std::string provenance_compact();

/// The `dyngossip version` line, e.g.
/// "dyngossip 0aa489b (gcc-12.2.0, Release)".
[[nodiscard]] std::string version_line();

}  // namespace dyngossip
