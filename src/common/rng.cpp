#include "common/rng.hpp"

#include <unordered_set>

namespace dyngossip {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start in the all-zero state; SplitMix64 never yields
  // four consecutive zeros, but keep the guard for belt and braces.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ull;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  DG_CHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  DG_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (span == 0) ? next() : next_below(span);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits; uniform over [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t universe,
                                                           std::uint64_t count) {
  DG_CHECK(count <= universe);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(count));
  if (count == 0) return out;
  if (count * 3 >= universe) {
    // Dense draw: partial Fisher-Yates over the whole universe.
    std::vector<std::uint64_t> all(static_cast<std::size_t>(universe));
    for (std::uint64_t i = 0; i < universe; ++i) all[static_cast<std::size_t>(i)] = i;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t j = i + next_below(universe - i);
      std::swap(all[static_cast<std::size_t>(i)], all[static_cast<std::size_t>(j)]);
      out.push_back(all[static_cast<std::size_t>(i)]);
    }
    return out;
  }
  // Sparse draw: rejection sampling into a hash set.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(count) * 2);
  while (out.size() < count) {
    const std::uint64_t x = next_below(universe);
    if (seen.insert(x).second) out.push_back(x);
  }
  return out;
}

Rng Rng::split() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

}  // namespace dyngossip
