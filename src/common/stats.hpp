// Streaming and batch statistics used by the benchmark harness.
//
// Benches run each configuration over several seeds and report
// mean/min/max (and occasionally percentiles) of the measured quantities —
// total messages, TC(E), rounds, amortized cost.  RunningStat implements
// Welford's numerically stable online mean/variance; Summary computes batch
// order statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dyngossip {

/// Welford online accumulator for mean / variance / extrema.
class RunningStat {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations so far.
  [[nodiscard]] std::size_t count() const noexcept { return n_; }

  /// Arithmetic mean (0 if empty).
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (0 if fewer than two observations).
  [[nodiscard]] double variance() const noexcept;

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;

  /// Smallest observation (+inf if empty).
  [[nodiscard]] double min() const noexcept { return min_; }

  /// Largest observation (-inf if empty).
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 1.0 / 0.0 * 1.0;   // +inf
  double max_ = -(1.0 / 0.0);      // -inf
};

/// Batch summary of a sample: mean, stddev, min, max, median, percentiles,
/// and a bit-exact checksum of the sample itself.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// SplitMix64 fold of the raw sample bit patterns in *input* order.  Two
  /// sweeps are bit-identical iff their checksums match, so determinism
  /// checks (serial vs parallel, record vs replay) compare one field
  /// instead of diffing every statistic — and unlike the folded moments,
  /// the checksum cannot collide on reordered trials.
  std::uint64_t checksum = 0;

  /// Computes the summary of a sample (copied and sorted internally; the
  /// checksum is folded over the pre-sort input order).
  [[nodiscard]] static Summary of(std::vector<double> sample);

  /// "mean ± stddev [min, max]" rendering for tables.
  [[nodiscard]] std::string to_string(int precision = 1) const;
};

/// Least-squares slope of log(y) against log(x): the empirical polynomial
/// exponent of a measured growth curve.  Benches use this to check that a
/// measured series grows like n^e for the predicted e (shape reproduction,
/// not absolute constants).  Requires all inputs positive and sizes equal.
[[nodiscard]] double loglog_slope(const std::vector<double>& x,
                                  const std::vector<double>& y);

}  // namespace dyngossip
