#include "common/mathx.hpp"

#include <cmath>

#include "common/check.hpp"

namespace dyngossip {

double log2_clamped(double x) noexcept {
  if (x <= 2.0) return 1.0;
  return std::log2(x);
}

double powd(double x, double e) noexcept {
  DG_CHECK(x >= 0.0);
  return std::pow(x, e);
}

std::uint64_t round_to_u64(double x) noexcept {
  DG_CHECK(x >= 0.0);
  return static_cast<std::uint64_t>(std::llround(x));
}

}  // namespace dyngossip
