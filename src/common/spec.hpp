// Shared `family[:key=value,...]` spec grammar.
//
// The adversary registry (PR 4) and the algorithm registry both expose the
// same textual surface: a family name plus unordered key=value parameters,
// strictly parsed, canonically rendered (keys sorted, no spaces) so
// parse(s).to_string() round-trips.  The grammar itself lives here once;
// each registry wraps it in its own spec type with its own error class so
// CLI layers can keep distinguishing "bad adversary spec" from "bad
// algorithm spec" exit paths.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace dyngossip {

/// One declared key of a spec family (documentation + validation).  Both
/// registries alias this (AdversaryKeySpec, AlgoKeySpec) so listing code is
/// shared shape-wise.
struct SpecKey {
  /// Value shape the key expects; drives CLI listing text only (parsing is
  /// strict per-getter, see SpecValues).
  enum class Kind { kInt, kDouble, kBool, kString };

  std::string key;            ///< parameter name ([a-z0-9_]+)
  Kind kind = Kind::kInt;     ///< declared value shape
  std::string default_value;  ///< rendered in the CLI listings
  std::string help;           ///< one line for `dyngossip adversaries/algorithms`
};

/// Human-readable name of a SpecKey::Kind ("int", "double", ...).
[[nodiscard]] const char* spec_key_kind_name(SpecKey::Kind kind);

/// True iff `name` is a valid family or key name ([a-z0-9_]+).
[[nodiscard]] bool valid_spec_name(const std::string& name);

/// Parses `family[:key=value[,key=value...]]` into *family / *params.
/// Returns "" on success; otherwise an error message prefixed with
/// "bad <noun> spec '<text>'" naming the offending part (the caller wraps
/// it in its registry's error type).
[[nodiscard]] std::string parse_spec_text(const std::string& text, const char* noun,
                                          std::string* family,
                                          std::map<std::string, std::string>* params);

/// Canonical `family:k=v,k=v` rendering (keys sorted by map order, no
/// spaces; a param-less spec renders as the bare family name).
[[nodiscard]] std::string render_spec_text(
    const std::string& family, const std::map<std::string, std::string>& params);

/// Exact-round-trip double rendering for spec params (%.17g).
[[nodiscard]] std::string render_spec_double(double value);

/// Typed access to a parsed spec's params.  Values are parsed strictly
/// (the whole token must consume) so `rate=0.01x` is a spec error, not a
/// silent truncation.  Both registries' readers derive from this; `fail`
/// must throw the caller's spec-error type (it is invoked with a complete
/// message and never expected to return).
class SpecValues {
 public:
  /// Wraps `params` (not copied — must outlive this reader); `fail` is
  /// called with a complete message on any malformed value and must throw.
  SpecValues(std::string family, const std::map<std::string, std::string>& params,
             std::function<void(const std::string&)> fail)
      : family_(std::move(family)), params_(&params), fail_(std::move(fail)) {}

  /// True iff the spec supplied `key` explicitly.
  [[nodiscard]] bool has(const std::string& key) const {
    return params_->count(key) != 0u;
  }

  /// Raw string value, or `def` when absent.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& def) const;
  /// Strictly parsed integer, or `def` when absent; fails on trailing text.
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def) const;
  /// get_int plus a non-negativity check (size-shaped keys).
  [[nodiscard]] std::size_t get_size(const std::string& key, std::size_t def) const;
  /// Strictly parsed double, or `def` when absent; fails on trailing text.
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  /// get_double plus [0, 1] validation — fraction-shaped keys (rate,
  /// turnover, p) would otherwise hit UB casting a negative double to
  /// size_t (and a fraction above 1 is meaningless for all of them).
  [[nodiscard]] double get_fraction(const std::string& key, double def) const;
  /// Accepts true/false/1/0, or `def` when absent.
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

 protected:
  /// Family name for error-message prefixes.
  [[nodiscard]] const std::string& spec_family() const noexcept { return family_; }
  /// Routes `msg` through the fail callback (always throws).
  [[noreturn]] void spec_fail(const std::string& msg) const;

 private:
  std::string family_;
  const std::map<std::string, std::string>* params_;
  std::function<void(const std::string&)> fail_;
};

}  // namespace dyngossip
