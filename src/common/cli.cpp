#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace dyngossip {

namespace {
[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "cli error: %s\n", msg.c_str());
  std::exit(2);
}
}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) die("expected --flag, got '" + arg + "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` form when the next token is not a flag; else boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) > 0; }

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') die("flag --" + name + " expects an integer");
  return v;
}

double CliArgs::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') die("flag --" + name + " expects a number");
  return v;
}

std::string CliArgs::get_string(const std::string& name, const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool CliArgs::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

void CliArgs::allow_only(const std::vector<std::string>& names,
                         const std::string& usage) const {
  for (const auto& [key, value] : values_) {
    (void)value;
    bool ok = false;
    for (const auto& n : names) {
      if (n == key) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      std::fprintf(stderr, "unknown flag --%s\nusage: %s\n", key.c_str(), usage.c_str());
      std::exit(2);
    }
  }
}

}  // namespace dyngossip
