#include "common/spec.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace dyngossip {

const char* spec_key_kind_name(SpecKey::Kind kind) {
  switch (kind) {
    case SpecKey::Kind::kInt: return "int";
    case SpecKey::Kind::kDouble: return "double";
    case SpecKey::Kind::kBool: return "bool";
    case SpecKey::Kind::kString: return "string";
  }
  return "?";
}

bool valid_spec_name(const std::string& name) {
  if (name.empty()) return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
  });
}

std::string parse_spec_text(const std::string& text, const char* noun,
                            std::string* family,
                            std::map<std::string, std::string>* params) {
  const auto bad = [&text, noun](const std::string& detail) {
    return "bad " + std::string(noun) + " spec '" + text + "': " + detail;
  };
  const std::size_t colon = text.find(':');
  *family = text.substr(0, colon);
  if (!valid_spec_name(*family)) {
    return bad("expected family[:key=value,key=value...]");
  }
  if (colon == std::string::npos) return "";
  const std::string rest = text.substr(colon + 1);
  // `family:` is the explicit no-params spelling (e.g. --algo=flooding:).
  if (rest.empty()) return "";
  std::size_t pos = 0;
  while (pos <= rest.size()) {
    const std::size_t comma = rest.find(',', pos);
    const std::string item =
        rest.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == 0 || eq == std::string::npos || !valid_spec_name(item.substr(0, eq))) {
      return bad("'" + item + "' is not key=value");
    }
    const std::string key = item.substr(0, eq);
    if (params->count(key) != 0u) {
      return bad("duplicate key '" + key + "'");
    }
    (*params)[key] = item.substr(eq + 1);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return "";
}

std::string render_spec_text(const std::string& family,
                             const std::map<std::string, std::string>& params) {
  std::string out = family;
  char sep = ':';
  for (const auto& [key, value] : params) {
    out += sep;
    out += key;
    out += '=';
    out += value;
    sep = ',';
  }
  return out;
}

std::string render_spec_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);  // exact double round-trip
  return buf;
}

void SpecValues::spec_fail(const std::string& msg) const {
  fail_(msg);
  // The callback's contract is to throw; enforce it rather than fall
  // through into undefined behaviour if a caller forgets.
  throw std::logic_error("SpecValues fail callback returned: " + msg);
}

std::string SpecValues::get_string(const std::string& key,
                                   const std::string& def) const {
  const auto it = params_->find(key);
  return it == params_->end() ? def : it->second;
}

std::int64_t SpecValues::get_int(const std::string& key, std::int64_t def) const {
  const auto it = params_->find(key);
  if (it == params_->end()) return def;
  char* end = nullptr;
  errno = 0;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || it->second.empty() || errno == ERANGE) {
    spec_fail(family_ + ": key '" + key + "' expects an integer (got '" +
              it->second + "')");
  }
  return v;
}

std::size_t SpecValues::get_size(const std::string& key, std::size_t def) const {
  const std::int64_t v = get_int(key, static_cast<std::int64_t>(def));
  if (v < 0) {
    spec_fail(family_ + ": key '" + key + "' must be >= 0");
  }
  return static_cast<std::size_t>(v);
}

double SpecValues::get_double(const std::string& key, double def) const {
  const auto it = params_->find(key);
  if (it == params_->end()) return def;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0' || it->second.empty() || errno == ERANGE) {
    spec_fail(family_ + ": key '" + key + "' expects a number (got '" +
              it->second + "')");
  }
  return v;
}

double SpecValues::get_fraction(const std::string& key, double def) const {
  const double v = get_double(key, def);
  if (!(v >= 0.0 && v <= 1.0)) {  // negated so NaN also fails
    spec_fail(family_ + ": key '" + key + "' must be in [0, 1]");
  }
  return v;
}

bool SpecValues::get_bool(const std::string& key, bool def) const {
  const auto it = params_->find(key);
  if (it == params_->end()) return def;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  spec_fail(family_ + ": key '" + key + "' expects true/false (got '" +
            it->second + "')");
}

}  // namespace dyngossip
