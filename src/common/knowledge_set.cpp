#include "common/knowledge_set.hpp"

namespace dyngossip {
namespace {

/// Iterate `sparse`'s sorted array against `other` membership tests.
/// Precondition: sparse is in the sparse representation.
std::size_t count_members_in(const std::vector<std::uint32_t>& elems,
                             const KnowledgeSet& other) {
  std::size_t hits = 0;
  for (std::uint32_t e : elems) {
    hits += other.test(e) ? 1 : 0;
  }
  return hits;
}

}  // namespace

KnowledgeSet::KnowledgeSet(std::size_t size, bool initially_set) : size_(size) {
  if (initially_set && size_ > 0) {
    dense_ = true;
    bits_ = DynamicBitset(size_, /*initially_set=*/true);
  }
}

void KnowledgeSet::resize(std::size_t size) {
  if (size <= size_) return;
  size_ = size;
  if (dense_) {
    bits_.resize(size_);
  }
  // Sparse entries stay valid; the larger universe only raises thresholds.
}

bool KnowledgeSet::set(std::size_t pos) {
  DG_DCHECK(pos < size_);
  if (dense_) return bits_.set(pos);
  const auto p = static_cast<std::uint32_t>(pos);
  if (elems_.empty() || p > elems_.back()) {
    elems_.push_back(p);  // in-order inserts (cursor walks) stay O(1)
  } else {
    const auto it = std::lower_bound(elems_.begin(), elems_.end(), p);
    if (it != elems_.end() && *it == p) return false;
    elems_.insert(it, p);
  }
  maybe_promote();
  return true;
}

bool KnowledgeSet::reset(std::size_t pos) {
  DG_DCHECK(pos < size_);
  if (dense_) {
    const bool removed = bits_.reset(pos);
    if (removed) maybe_demote();
    return removed;
  }
  const auto p = static_cast<std::uint32_t>(pos);
  const auto it = std::lower_bound(elems_.begin(), elems_.end(), p);
  if (it == elems_.end() || *it != p) return false;
  elems_.erase(it);
  return true;
}

void KnowledgeSet::set_all() {
  if (size_ == 0) return;
  dense_ = true;
  bits_ = DynamicBitset(size_, /*initially_set=*/true);
  std::vector<std::uint32_t>().swap(elems_);
}

void KnowledgeSet::reset_all() {
  dense_ = false;
  bits_ = DynamicBitset();
  elems_.clear();
}

void KnowledgeSet::promote() {
  bits_ = DynamicBitset(size_);
  for (std::uint32_t e : elems_) bits_.set(e);
  std::vector<std::uint32_t>().swap(elems_);
  dense_ = true;
}

void KnowledgeSet::demote() {
  elems_.clear();
  elems_.reserve(bits_.count());
  for (std::size_t pos : bits_.set_bits()) {
    elems_.push_back(static_cast<std::uint32_t>(pos));
  }
  bits_ = DynamicBitset();
  dense_ = false;
}

KnowledgeSet& KnowledgeSet::operator|=(const KnowledgeSet& other) {
  DG_CHECK(size_ == other.size_);
  if (dense_ && other.dense_) {
    bits_ |= other.bits_;
    return *this;
  }
  for (std::size_t pos : other.set_bits()) set(pos);
  return *this;
}

KnowledgeSet& KnowledgeSet::operator&=(const KnowledgeSet& other) {
  DG_CHECK(size_ == other.size_);
  if (dense_ && other.dense_) {
    bits_ &= other.bits_;
    maybe_demote();
    return *this;
  }
  if (!dense_) {
    std::erase_if(elems_,
                  [&other](std::uint32_t e) { return !other.test(e); });
    return *this;
  }
  // Dense ∩ sparse: the result is no larger than the sparse side, so it
  // fits the sparse representation directly.
  std::vector<std::uint32_t> kept;
  kept.reserve(other.elems_.size());
  for (std::uint32_t e : other.elems_) {
    if (bits_.test(e)) kept.push_back(e);
  }
  elems_ = std::move(kept);
  bits_ = DynamicBitset();
  dense_ = false;
  return *this;
}

KnowledgeSet& KnowledgeSet::subtract(const KnowledgeSet& other) {
  DG_CHECK(size_ == other.size_);
  if (dense_ && other.dense_) {
    bits_.subtract(other.bits_);
    maybe_demote();
    return *this;
  }
  if (!dense_) {
    std::erase_if(elems_,
                  [&other](std::uint32_t e) { return other.test(e); });
    return *this;
  }
  for (std::uint32_t e : other.elems_) bits_.reset(e);
  maybe_demote();
  return *this;
}

std::size_t KnowledgeSet::union_count(const KnowledgeSet& other) const {
  DG_CHECK(size_ == other.size_);
  if (dense_ && other.dense_) return bits_.union_count(other.bits_);
  return count() + other.count() - intersect_count(other);
}

std::size_t KnowledgeSet::intersect_count(const KnowledgeSet& other) const {
  DG_CHECK(size_ == other.size_);
  if (dense_ && other.dense_) return bits_.intersect_count(other.bits_);
  if (!dense_) return count_members_in(elems_, other);
  return count_members_in(other.elems_, *this);
}

bool KnowledgeSet::contains_all(const KnowledgeSet& other) const {
  DG_CHECK(size_ == other.size_);
  if (dense_ && other.dense_) return bits_.contains_all(other.bits_);
  if (other.count() > count()) return false;
  for (std::size_t pos : other.set_bits()) {
    if (!test(pos)) return false;
  }
  return true;
}

std::size_t KnowledgeSet::find_first_unset() const noexcept {
  if (dense_) return bits_.find_first_unset();
  // Sorted uniques: the first gap is the first index whose entry differs.
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    if (elems_[i] != i) return i;
  }
  return elems_.size() < size_ ? elems_.size() : size_;
}

std::size_t KnowledgeSet::find_next_set(std::size_t from) const noexcept {
  if (dense_) return bits_.find_next_set(from);
  const auto it = std::lower_bound(elems_.begin(), elems_.end(),
                                   static_cast<std::uint32_t>(from));
  return it == elems_.end() ? size_ : static_cast<std::size_t>(*it);
}

std::vector<std::size_t> KnowledgeSet::unset_positions() const {
  std::vector<std::size_t> out;
  out.reserve(size_ - count());
  for (std::size_t pos : unset_bits()) out.push_back(pos);
  return out;
}

std::vector<std::size_t> KnowledgeSet::set_positions() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t pos : set_bits()) out.push_back(pos);
  return out;
}

bool operator==(const KnowledgeSet& a, const KnowledgeSet& b) {
  if (a.size_ != b.size_ || a.count() != b.count()) return false;
  if (a.dense_ && b.dense_) return a.bits_ == b.bits_;
  if (!a.dense_ && !b.dense_) return a.elems_ == b.elems_;
  // Mixed representations (hysteresis can leave equal sets split): compare
  // member sequences, both increasing.
  auto ca = a.set_bits().begin();
  auto cb = b.set_bits().begin();
  const KnowledgeSet::Cursor::End end{};
  while (!(ca == end)) {
    if (*ca != *cb) return false;
    ++ca;
    ++cb;
  }
  return true;
}

}  // namespace dyngossip
