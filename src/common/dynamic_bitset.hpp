// Runtime-sized bitset.
//
// Token-knowledge sets K_v(t) (Section 2) and missing-token bookkeeping of
// the unicast algorithms are sets over a universe of k tokens with
// k up to Θ(n²); a packed bitset keeps membership tests O(1) and whole-set
// operations word-parallel, which is what makes the Section-2 free-edge
// adversary (Θ(n²) edge classifications per round) tractable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace dyngossip {

/// Fixed-universe dynamic bitset with word-parallel set algebra.
class DynamicBitset {
 public:
  /// Empty set over an empty universe.
  DynamicBitset() = default;

  /// Set over universe [0, size), initially all false (or all true).
  explicit DynamicBitset(std::size_t size, bool initially_set = false);

  /// Universe size (number of addressable bits).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Grows the universe to `size` bits; new bits are false.  No-op if the
  /// universe is already at least that large.
  void resize(std::size_t size);

  /// Membership test.
  [[nodiscard]] bool test(std::size_t pos) const noexcept {
    DG_DCHECK(pos < size_);
    return (words_[pos >> 6] >> (pos & 63)) & 1u;
  }

  /// Inserts pos; returns true iff the bit was newly set.
  bool set(std::size_t pos) noexcept {
    DG_DCHECK(pos < size_);
    const std::uint64_t mask = 1ull << (pos & 63);
    std::uint64_t& w = words_[pos >> 6];
    const bool fresh = (w & mask) == 0;
    w |= mask;
    count_ += fresh ? 1 : 0;
    return fresh;
  }

  /// Removes pos; returns true iff the bit was previously set.
  bool reset(std::size_t pos) noexcept {
    DG_DCHECK(pos < size_);
    const std::uint64_t mask = 1ull << (pos & 63);
    std::uint64_t& w = words_[pos >> 6];
    const bool was = (w & mask) != 0;
    w &= ~mask;
    count_ -= was ? 1 : 0;
    return was;
  }

  /// Sets every bit in the universe.
  void set_all() noexcept;

  /// Clears every bit.
  void reset_all() noexcept;

  /// Number of set bits (cached; O(1)).
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// True iff no bit is set.
  [[nodiscard]] bool none() const noexcept { return count_ == 0; }

  /// True iff every bit in the universe is set.
  [[nodiscard]] bool all() const noexcept { return count_ == size_; }

  /// In-place union.  Requires equal universe sizes.
  DynamicBitset& operator|=(const DynamicBitset& other);

  /// In-place intersection.  Requires equal universe sizes.
  DynamicBitset& operator&=(const DynamicBitset& other);

  /// In-place difference (this \ other).  Requires equal universe sizes.
  DynamicBitset& subtract(const DynamicBitset& other);

  /// |this ∪ other| without materializing the union.
  [[nodiscard]] std::size_t union_count(const DynamicBitset& other) const;

  /// |this ∩ other| without materializing the intersection.
  [[nodiscard]] std::size_t intersect_count(const DynamicBitset& other) const;

  /// True iff this set contains every element of `other`.
  [[nodiscard]] bool contains_all(const DynamicBitset& other) const;

  /// Index of the first unset bit, or size() if the set is full.
  [[nodiscard]] std::size_t find_first_unset() const noexcept;

  /// Index of the first set bit at position >= from, or size() if none.
  [[nodiscard]] std::size_t find_next_set(std::size_t from) const noexcept;

  /// All unset positions in increasing order (the "missing token" list of
  /// Algorithm 1, line 7).
  [[nodiscard]] std::vector<std::size_t> unset_positions() const;

  /// All set positions in increasing order.
  [[nodiscard]] std::vector<std::size_t> set_positions() const;

  /// Structural equality (same universe, same members).
  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  /// Zeroes bits beyond the universe in the last word.
  void trim() noexcept;

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  std::size_t count_ = 0;
};

}  // namespace dyngossip
