// Runtime-sized bitset.
//
// Token-knowledge sets K_v(t) (Section 2) and missing-token bookkeeping of
// the unicast algorithms are sets over a universe of k tokens with
// k up to Θ(n²); a packed bitset keeps membership tests O(1) and whole-set
// operations word-parallel, which is what makes the Section-2 free-edge
// adversary (Θ(n²) edge classifications per round) tractable.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace dyngossip {

/// Fixed-universe dynamic bitset with word-parallel set algebra.
class DynamicBitset {
 public:
  /// Zero-allocation word-scan cursor over bit positions, in increasing
  /// order.  Replaces the materialized vectors of set_positions() /
  /// unset_positions() on the per-round hot paths (Algorithm 1's
  /// missing-token selection walks this cursor instead of building the full
  /// b_1 < b_2 < ... list every round).  Invalidated by any mutation of the
  /// underlying bitset.
  class BitCursor {
   public:
    /// Range-for sentinel.
    struct End {};

    [[nodiscard]] std::size_t operator*() const noexcept {
      return word_index_ * 64 + static_cast<std::size_t>(std::countr_zero(word_));
    }

    BitCursor& operator++() noexcept {
      word_ &= word_ - 1;  // clear lowest set bit
      settle();
      return *this;
    }

    [[nodiscard]] bool operator==(End) const noexcept {
      return word_index_ >= num_words_;
    }

   private:
    friend class DynamicBitset;

    BitCursor(const std::uint64_t* words, std::size_t num_words, std::size_t size,
              bool invert) noexcept
        : words_(words), num_words_(num_words), size_(size), invert_(invert) {
      word_ = num_words_ > 0 ? load(0) : 0;
      settle();
    }

    [[nodiscard]] std::uint64_t load(std::size_t i) const noexcept {
      std::uint64_t w = invert_ ? ~words_[i] : words_[i];
      const std::size_t rem = size_ & 63;
      if (i + 1 == num_words_ && rem != 0) w &= (std::uint64_t{1} << rem) - 1;
      return w;
    }

    void settle() noexcept {
      while (word_ == 0) {
        if (++word_index_ >= num_words_) return;
        word_ = load(word_index_);
      }
    }

    const std::uint64_t* words_;
    std::size_t num_words_;
    std::size_t size_;
    bool invert_;
    std::size_t word_index_ = 0;
    std::uint64_t word_ = 0;
  };

  /// Lightweight range over set or unset positions (see BitCursor).
  class PositionRange {
   public:
    [[nodiscard]] BitCursor begin() const noexcept {
      return BitCursor(words_, num_words_, size_, invert_);
    }
    [[nodiscard]] BitCursor::End end() const noexcept { return {}; }

   private:
    friend class DynamicBitset;
    PositionRange(const std::uint64_t* words, std::size_t num_words,
                  std::size_t size, bool invert) noexcept
        : words_(words), num_words_(num_words), size_(size), invert_(invert) {}

    const std::uint64_t* words_;
    std::size_t num_words_;
    std::size_t size_;
    bool invert_;
  };

  /// Empty set over an empty universe.
  DynamicBitset() = default;

  /// Set over universe [0, size), initially all false (or all true).
  explicit DynamicBitset(std::size_t size, bool initially_set = false);

  /// Universe size (number of addressable bits).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Grows the universe to `size` bits; new bits are false.  No-op if the
  /// universe is already at least that large.
  void resize(std::size_t size);

  /// Membership test.
  [[nodiscard]] bool test(std::size_t pos) const noexcept {
    DG_DCHECK(pos < size_);
    return (words_[pos >> 6] >> (pos & 63)) & 1u;
  }

  /// Inserts pos; returns true iff the bit was newly set.
  bool set(std::size_t pos) noexcept {
    DG_DCHECK(pos < size_);
    const std::uint64_t mask = 1ull << (pos & 63);
    std::uint64_t& w = words_[pos >> 6];
    const bool fresh = (w & mask) == 0;
    w |= mask;
    count_ += fresh ? 1 : 0;
    return fresh;
  }

  /// Removes pos; returns true iff the bit was previously set.
  bool reset(std::size_t pos) noexcept {
    DG_DCHECK(pos < size_);
    const std::uint64_t mask = 1ull << (pos & 63);
    std::uint64_t& w = words_[pos >> 6];
    const bool was = (w & mask) != 0;
    w &= ~mask;
    count_ -= was ? 1 : 0;
    return was;
  }

  /// Sets every bit in the universe.
  void set_all() noexcept;

  /// Clears every bit.
  void reset_all() noexcept;

  /// Number of set bits (cached; O(1)).
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// True iff no bit is set.
  [[nodiscard]] bool none() const noexcept { return count_ == 0; }

  /// True iff every bit in the universe is set.
  [[nodiscard]] bool all() const noexcept { return count_ == size_; }

  /// In-place union.  Requires equal universe sizes.
  DynamicBitset& operator|=(const DynamicBitset& other);

  /// In-place intersection.  Requires equal universe sizes.
  DynamicBitset& operator&=(const DynamicBitset& other);

  /// In-place difference (this \ other).  Requires equal universe sizes.
  DynamicBitset& subtract(const DynamicBitset& other);

  /// |this ∪ other| without materializing the union.
  [[nodiscard]] std::size_t union_count(const DynamicBitset& other) const;

  /// |this ∩ other| without materializing the intersection.
  [[nodiscard]] std::size_t intersect_count(const DynamicBitset& other) const;

  /// True iff this set contains every element of `other`.
  [[nodiscard]] bool contains_all(const DynamicBitset& other) const;

  /// Index of the first unset bit, or size() if the set is full.
  [[nodiscard]] std::size_t find_first_unset() const noexcept;

  /// Index of the first set bit at position >= from, or size() if none.
  [[nodiscard]] std::size_t find_next_set(std::size_t from) const noexcept;

  /// All unset positions in increasing order (the "missing token" list of
  /// Algorithm 1, line 7).  Allocates; hot paths iterate unset_bits().
  [[nodiscard]] std::vector<std::size_t> unset_positions() const;

  /// All set positions in increasing order.  Allocates; hot paths iterate
  /// set_bits().
  [[nodiscard]] std::vector<std::size_t> set_positions() const;

  /// Allocation-free cursor range over set positions, increasing order.
  [[nodiscard]] PositionRange set_bits() const noexcept {
    return PositionRange(words_.data(), words_.size(), size_, /*invert=*/false);
  }

  /// Allocation-free cursor range over unset positions, increasing order.
  [[nodiscard]] PositionRange unset_bits() const noexcept {
    return PositionRange(words_.data(), words_.size(), size_, /*invert=*/true);
  }

  /// Structural equality (same universe, same members).
  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  /// Zeroes bits beyond the universe in the last word.
  void trim() noexcept;

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  std::size_t count_ = 0;
};

}  // namespace dyngossip
