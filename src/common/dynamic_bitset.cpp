#include "common/dynamic_bitset.hpp"

#include <bit>

namespace dyngossip {

namespace {
[[nodiscard]] constexpr std::size_t words_for(std::size_t bits) noexcept {
  return (bits + 63) / 64;
}
}  // namespace

DynamicBitset::DynamicBitset(std::size_t size, bool initially_set)
    : words_(words_for(size), initially_set ? ~0ull : 0ull), size_(size) {
  if (initially_set) {
    count_ = size_;
    trim();
  }
}

void DynamicBitset::resize(std::size_t size) {
  if (size <= size_) return;
  words_.resize(words_for(size), 0ull);
  size_ = size;
}

void DynamicBitset::set_all() noexcept {
  for (auto& w : words_) w = ~0ull;
  count_ = size_;
  trim();
}

void DynamicBitset::reset_all() noexcept {
  for (auto& w : words_) w = 0ull;
  count_ = 0;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  DG_CHECK(size_ == other.size_);
  std::size_t c = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
    c += static_cast<std::size_t>(std::popcount(words_[i]));
  }
  count_ = c;
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  DG_CHECK(size_ == other.size_);
  std::size_t c = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
    c += static_cast<std::size_t>(std::popcount(words_[i]));
  }
  count_ = c;
  return *this;
}

DynamicBitset& DynamicBitset::subtract(const DynamicBitset& other) {
  DG_CHECK(size_ == other.size_);
  std::size_t c = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
    c += static_cast<std::size_t>(std::popcount(words_[i]));
  }
  count_ = c;
  return *this;
}

std::size_t DynamicBitset::union_count(const DynamicBitset& other) const {
  DG_CHECK(size_ == other.size_);
  std::size_t c = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    c += static_cast<std::size_t>(std::popcount(words_[i] | other.words_[i]));
  }
  return c;
}

std::size_t DynamicBitset::intersect_count(const DynamicBitset& other) const {
  DG_CHECK(size_ == other.size_);
  std::size_t c = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    c += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return c;
}

bool DynamicBitset::contains_all(const DynamicBitset& other) const {
  DG_CHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((other.words_[i] & ~words_[i]) != 0) return false;
  }
  return true;
}

std::size_t DynamicBitset::find_first_unset() const noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] != ~0ull) {
      const auto bit = static_cast<std::size_t>(std::countr_one(words_[i]));
      const std::size_t pos = i * 64 + bit;
      return pos < size_ ? pos : size_;
    }
  }
  return size_;
}

std::size_t DynamicBitset::find_next_set(std::size_t from) const noexcept {
  if (from >= size_) return size_;
  std::size_t word = from >> 6;
  std::uint64_t w = words_[word] & (~0ull << (from & 63));
  while (true) {
    if (w != 0) {
      const std::size_t pos = word * 64 + static_cast<std::size_t>(std::countr_zero(w));
      return pos < size_ ? pos : size_;
    }
    if (++word >= words_.size()) return size_;
    w = words_[word];
  }
}

std::vector<std::size_t> DynamicBitset::unset_positions() const {
  std::vector<std::size_t> out;
  out.reserve(size_ - count_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t w = ~words_[i];
    while (w != 0) {
      const std::size_t pos = i * 64 + static_cast<std::size_t>(std::countr_zero(w));
      if (pos >= size_) break;
      out.push_back(pos);
      w &= w - 1;
    }
  }
  return out;
}

std::vector<std::size_t> DynamicBitset::set_positions() const {
  std::vector<std::size_t> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t w = words_[i];
    while (w != 0) {
      const std::size_t pos = i * 64 + static_cast<std::size_t>(std::countr_zero(w));
      out.push_back(pos);
      w &= w - 1;
    }
  }
  return out;
}

void DynamicBitset::trim() noexcept {
  const std::size_t rem = size_ & 63;
  if (!words_.empty() && rem != 0) {
    words_.back() &= (1ull << rem) - 1;
  }
}

}  // namespace dyngossip
