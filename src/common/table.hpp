// Aligned plain-text table rendering.
//
// Every bench binary regenerates one of the paper's tables/series and prints
// it in the same row structure; TablePrinter produces aligned monospace
// output (and optional CSV) so EXPERIMENTS.md can quote results verbatim.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace dyngossip {

/// Column-aligned table builder.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with fixed precision.
  [[nodiscard]] static std::string num(double v, int precision = 2);

  /// Convenience: formats integers with thousands separators (1_234_567).
  [[nodiscard]] static std::string big(std::uint64_t v);

  /// Renders the aligned table to a stream.
  void print(std::ostream& os) const;

  /// Renders the table as CSV (no alignment padding).
  void print_csv(std::ostream& os) const;

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dyngossip
