// Minimal command-line flag parsing for bench and example binaries.
//
// Flags take the form `--name=value` or `--name value`; bare `--name` is a
// boolean true.  Unknown flags are an error (catches typos in sweep
// scripts).  Deliberately tiny — the binaries only need a handful of numeric
// knobs (n, k, seeds, --quick) and we avoid an external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dyngossip {

/// Parsed command line: typed access with defaults plus validation.
class CliArgs {
 public:
  /// Parses argv.  Exits with a message on malformed input.
  CliArgs(int argc, const char* const* argv);

  /// True if the flag was supplied.
  [[nodiscard]] bool has(const std::string& name) const;

  /// Integer flag with default.
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;

  /// Floating flag with default.
  [[nodiscard]] double get_double(const std::string& name, double def) const;

  /// String flag with default.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& def) const;

  /// Boolean flag (present without value, or =true/=false).
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  /// Declares the set of accepted flags; any other supplied flag aborts with
  /// a usage message.  Call once after construction.
  void allow_only(const std::vector<std::string>& names, const std::string& usage) const;

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace dyngossip
