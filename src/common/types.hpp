// Fundamental identifier types shared by every dyngossip subsystem.
//
// The paper's model (Section 1.3) gives every node a unique O(log n)-bit
// identifier and labels tokens either with integers 1..k (single source) or
// with pairs <source id, index> (multi source).  We use dense 0-based
// indices for both nodes and tokens; the (source, index) labelling of the
// multi-source algorithms is layered on top by core/tokens.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace dyngossip {

/// Dense node identifier in [0, n).
using NodeId = std::uint32_t;

/// Dense global token identifier in [0, k).
using TokenId = std::uint32_t;

/// Round counter.  Round r spans (r-1, r]; the first communication round is 1.
using Round = std::uint32_t;

/// Sentinel "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel "no token" — the paper's ⊥ (a node that stays silent in the
/// broadcast model, or an unassigned request slot in the unicast model).
inline constexpr TokenId kNoToken = std::numeric_limits<TokenId>::max();

/// Sentinel "no round yet".
inline constexpr Round kNoRound = std::numeric_limits<Round>::max();

/// Packed undirected edge key with u < v, suitable for hashing and ordering.
using EdgeKey = std::uint64_t;

/// Builds the canonical key of the undirected edge {a, b}.  Requires a != b.
[[nodiscard]] constexpr EdgeKey edge_key(NodeId a, NodeId b) noexcept {
  const NodeId lo = a < b ? a : b;
  const NodeId hi = a < b ? b : a;
  return (static_cast<EdgeKey>(lo) << 32) | static_cast<EdgeKey>(hi);
}

/// Recovers the (lo, hi) endpoints of an edge key.
[[nodiscard]] constexpr std::pair<NodeId, NodeId> edge_endpoints(EdgeKey key) noexcept {
  return {static_cast<NodeId>(key >> 32),
          static_cast<NodeId>(key & 0xffffffffu)};
}

}  // namespace dyngossip
