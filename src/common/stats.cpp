#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dyngossip {

void RunningStat::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

namespace {
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

Summary Summary::of(std::vector<double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  // Fold the checksum before sorting: trial order is part of the identity a
  // determinism check certifies (a parallel sweep that wrote its samples
  // into the wrong slots must not summarize equal).  Each step feeds the
  // *mixed* output back as the chaining state — chaining on SplitMix64's
  // internal (additive) state would let sign-bit flips of an even number of
  // samples cancel, since XOR of bit 63 commutes with 64-bit addition.
  std::uint64_t state = 0x5eedc0de ^ static_cast<std::uint64_t>(sample.size());
  for (const double x : sample) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(x));
    std::memcpy(&bits, &x, sizeof(bits));
    std::uint64_t mixed = state ^ bits;
    state = splitmix64(mixed);
  }
  s.checksum = state;
  std::sort(sample.begin(), sample.end());
  RunningStat rs;
  for (double x : sample) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sample.front();
  s.max = sample.back();
  s.median = percentile_sorted(sample, 0.5);
  s.p90 = percentile_sorted(sample, 0.9);
  s.p99 = percentile_sorted(sample, 0.99);
  return s;
}

std::string Summary::to_string(int precision) const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.*f ± %.*f [%.*f, %.*f]", precision, mean,
                precision, stddev, precision, min, precision, max);
  return buf;
}

double loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
  DG_CHECK(x.size() == y.size());
  DG_CHECK(x.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    DG_CHECK(x[i] > 0.0 && y[i] > 0.0);
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  DG_CHECK(denom != 0.0);
  return (n * sxy - sx * sy) / denom;
}

}  // namespace dyngossip
