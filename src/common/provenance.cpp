#include "common/provenance.hpp"

namespace dyngossip {

namespace {

#ifndef DYNGOSSIP_GIT_DESCRIBE
#define DYNGOSSIP_GIT_DESCRIBE "unknown"
#endif
#ifndef DYNGOSSIP_BUILD_TYPE
#define DYNGOSSIP_BUILD_TYPE "unknown"
#endif
#ifndef DYNGOSSIP_SANITIZE_FLAGS
#define DYNGOSSIP_SANITIZE_FLAGS ""
#endif

#define DG_STR2(x) #x
#define DG_STR(x) DG_STR2(x)

[[nodiscard]] std::string compiler_id() {
#if defined(__clang__)
  return "clang-" DG_STR(__clang_major__) "." DG_STR(
      __clang_minor__) "." DG_STR(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc-" DG_STR(__GNUC__) "." DG_STR(__GNUC_MINOR__) "." DG_STR(
      __GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

const Provenance& build_provenance() {
  static const Provenance p = {DYNGOSSIP_GIT_DESCRIBE, compiler_id(),
                               DYNGOSSIP_BUILD_TYPE, DYNGOSSIP_SANITIZE_FLAGS};
  return p;
}

std::string provenance_compact() {
  const Provenance& p = build_provenance();
  std::string out = p.git_describe + "+" + p.compiler + "+" + p.build_type;
  if (!p.sanitize.empty()) out += "+" + p.sanitize;
  // Trace metadata is a space-separated key=value list; a describe string
  // can never contain spaces, but guard against a foreign build type.
  for (char& c : out) {
    if (c == ' ') c = '_';
  }
  return out;
}

std::string version_line() {
  const Provenance& p = build_provenance();
  std::string line = "dyngossip " + p.git_describe + " (" + p.compiler + ", " +
                     p.build_type;
  if (!p.sanitize.empty()) line += ", sanitize=" + p.sanitize;
  line += ", cache-schema=" + std::to_string(kCacheSchemaVersion) + ")";
  return line;
}

}  // namespace dyngossip
