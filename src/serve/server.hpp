// The sweep service behind `dyngossip serve`: schedules requested trials
// across the shared ThreadPool with round-robin fairness between concurrent
// client sessions, shares the content-addressed result cache, and
// deduplicates identical in-flight trials so overlapping requests compute
// each key at most once.
//
// Transport-free by design: run_sweep emits protocol lines through a
// callback, so the unix-socket layer (serve_cli) and the in-process tests
// drive the exact same code.
//
// Scheduling: every admitted trial becomes one "ticket" job on the pool; a
// ticket, when it runs, asks the FairScheduler for the next trial in
// round-robin session order.  A client that enqueues 100 trials therefore
// cannot starve one that enqueues 2 — tickets drain FIFO, but each ticket
// executes whichever session is next in the rotation.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "cache/result_cache.hpp"
#include "serve/protocol.hpp"
#include "sim/runner/thread_pool.hpp"

namespace dyngossip {

/// Round-robin trial queue across concurrent sessions (see file comment).
class FairScheduler {
 public:
  /// Opens a session queue; returns its id.
  [[nodiscard]] std::uint64_t open_session();

  /// Removes a session's (empty) queue from the rotation.
  void close_session(std::uint64_t session);

  /// Appends one trial to `session`'s queue.  The caller must submit one
  /// pool ticket per enqueued trial.
  void enqueue(std::uint64_t session, std::function<void()> trial);

  /// Pops the next trial in round-robin session order (empty function when
  /// every queue is drained — a benign race with tickets is impossible
  /// because tickets never outnumber enqueued trials).
  [[nodiscard]] std::function<void()> next();

 private:
  std::mutex mu_;
  std::uint64_t next_id_ = 1;
  /// Insertion-ordered rotation: (session id, queue).
  std::vector<std::pair<std::uint64_t, std::deque<std::function<void()>>>>
      queues_;
  /// Sessions closed while their queue still held work; next() retires
  /// their queues once drained (queued trials may be deduped onto by other
  /// sessions, so they are never dropped).
  std::set<std::uint64_t> closing_;
  std::size_t rr_ = 0;
};

/// Executes sweep requests against the pool + cache (see file comment).
/// Thread-safe: one instance serves every concurrent session.
class SweepService {
 public:
  /// `cache` may be null (no persistence; in-flight dedup still applies).
  SweepService(ThreadPool& pool, ResultCache* cache)
      : pool_(pool), cache_(cache) {}

  /// Runs one sweep, emitting protocol lines (without trailing newline)
  /// through `emit` in order: accepted, rows in trial order, done — or a
  /// terminal error line at any point.  Blocks until the sweep finishes.
  void run_sweep(const SweepRequest& req,
                 const std::function<void(const std::string&)>& emit);

 private:
  /// One in-flight (or finished) trial computation, shared by every session
  /// waiting on the same key.
  struct Pending {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool failed = false;
    std::string error;
    CachedResult row;
    std::string key_text;  ///< collision guard for the digest-keyed map
  };

  ThreadPool& pool_;
  ResultCache* cache_;
  FairScheduler scheduler_;
  std::mutex inflight_mu_;
  std::map<std::uint64_t, std::shared_ptr<Pending>> inflight_;
};

}  // namespace dyngossip
