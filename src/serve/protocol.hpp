// Wire protocol of `dyngossip serve` / `dyngossip request`.
//
// Newline-delimited JSON over a unix-domain stream socket: the client sends
// exactly one single-line sweep request, the server answers with a line
// stream —
//
//   {"type":"accepted","trials":T,...}        echo of the resolved sweep
//   {"type":"row","trial":i,"seed":s,...}     one per trial, in trial order
//   {"type":"done","hits":H,"misses":M}       terminal summary
//   {"type":"error","message":"..."}          terminal failure (any point)
//
// Row payload fields mirror the run_axes_table columns (k, done, messages,
// TC, rounds, status, coverage, checksum) so a served sweep is diffable
// against a direct `dyngossip run` of the same grid; `cached` marks rows
// that never re-ran (result cache or in-flight dedup).  Line JSON was
// chosen over a length-prefixed framing because every existing artifact in
// this repo (traces, probes, the cache index) is line-oriented and
// jq-able; the framing cost is one '\n' scan per message.
#pragma once

#include <cstdint>
#include <string>

#include "cache/result_cache.hpp"
#include "common/types.hpp"
#include "sim/runner/json.hpp"

namespace dyngossip {

/// One sweep: `trials` runs of (algo × adversary × fault × shape), seeded
/// seed_base + trial.  Matches run_axes_table's per-row shape, so a client
/// passing that table's seed formula gets cache-identical keys.
struct SweepRequest {
  std::string algo = "single_source";
  std::string adversary;            ///< required
  std::string fault = "fault";      ///< inactive default
  std::size_t n = 0;                ///< required
  std::uint32_t k = 0;              ///< required
  std::size_t sources = 4;
  Round cap = 0;                    ///< 0: the 200·n·k default
  std::size_t trials = 1;
  std::uint64_t seed_base = 0;
};

/// Serializes a request as its single-line wire form (no newline).
[[nodiscard]] std::string encode_sweep_request(const SweepRequest& req);

/// Parses + range-checks a request line.  Throws std::runtime_error with a
/// client-facing message on anything malformed (specs are validated by the
/// server against its registries, not here).
[[nodiscard]] SweepRequest decode_sweep_request(const std::string& line);

/// The "accepted" line echoing the resolved sweep.
[[nodiscard]] std::string encode_accepted(const SweepRequest& req);

/// One "row" line (see file comment).
[[nodiscard]] std::string encode_row(std::size_t trial, std::uint64_t seed,
                                     bool cached, const CachedResult& row);

/// The terminal "done" line.
[[nodiscard]] std::string encode_done(std::size_t hits, std::size_t misses);

/// A terminal "error" line.
[[nodiscard]] std::string encode_error(const std::string& message);

}  // namespace dyngossip
