#include "serve/protocol.hpp"

#include <stdexcept>

#include "metrics/accounting.hpp"
#include "trace/trace_format.hpp"

namespace dyngossip {

namespace {

[[nodiscard]] JsonValue num(std::uint64_t v) {
  return JsonValue::number(static_cast<double>(v));
}

[[nodiscard]] std::uint64_t u64_field(const JsonValue& doc, const char* name,
                                      std::uint64_t def, bool required) {
  const JsonValue* v = doc.find(name);
  if (v == nullptr) {
    if (required) {
      throw std::runtime_error(std::string("request missing field '") + name +
                               "'");
    }
    return def;
  }
  if (v->type() != JsonValue::Type::kNumber || v->as_number() < 0) {
    throw std::runtime_error(std::string("request field '") + name +
                             "' must be a non-negative number");
  }
  return static_cast<std::uint64_t>(v->as_number());
}

[[nodiscard]] std::string str_field(const JsonValue& doc, const char* name,
                                    const std::string& def, bool required) {
  const JsonValue* v = doc.find(name);
  if (v == nullptr) {
    if (required) {
      throw std::runtime_error(std::string("request missing field '") + name +
                               "'");
    }
    return def;
  }
  if (v->type() != JsonValue::Type::kString) {
    throw std::runtime_error(std::string("request field '") + name +
                             "' must be a string");
  }
  return v->as_string();
}

}  // namespace

std::string encode_sweep_request(const SweepRequest& req) {
  JsonValue doc = JsonValue::object();
  doc.set("algo", JsonValue::str(req.algo));
  doc.set("adversary", JsonValue::str(req.adversary));
  doc.set("fault", JsonValue::str(req.fault));
  doc.set("n", num(req.n));
  doc.set("k", num(req.k));
  doc.set("sources", num(req.sources));
  doc.set("cap", num(req.cap));
  doc.set("trials", num(req.trials));
  doc.set("seed_base", num(req.seed_base));
  return doc.dump();
}

SweepRequest decode_sweep_request(const std::string& line) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("request is not valid JSON: ") +
                             e.what());
  }
  SweepRequest req;
  req.algo = str_field(doc, "algo", req.algo, false);
  req.adversary = str_field(doc, "adversary", "", true);
  req.fault = str_field(doc, "fault", req.fault, false);
  req.n = static_cast<std::size_t>(u64_field(doc, "n", 0, true));
  req.k = static_cast<std::uint32_t>(u64_field(doc, "k", 0, true));
  req.sources = static_cast<std::size_t>(u64_field(doc, "sources", 4, false));
  req.cap = static_cast<Round>(u64_field(doc, "cap", 0, false));
  req.trials = static_cast<std::size_t>(u64_field(doc, "trials", 1, false));
  req.seed_base = u64_field(doc, "seed_base", 0, false);
  if (req.n < 2 || req.n > 1'000'000) {
    throw std::runtime_error("request n must be in [2, 1000000]");
  }
  if (req.k == 0 || req.k > 1'000'000) {
    throw std::runtime_error("request k must be in [1, 1000000]");
  }
  if (req.trials == 0 || req.trials > 10'000) {
    throw std::runtime_error("request trials must be in [1, 10000]");
  }
  return req;
}

std::string encode_accepted(const SweepRequest& req) {
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::str("accepted"));
  doc.set("algo", JsonValue::str(req.algo));
  doc.set("adversary", JsonValue::str(req.adversary));
  doc.set("fault", JsonValue::str(req.fault));
  doc.set("n", num(req.n));
  doc.set("k", num(req.k));
  doc.set("sources", num(req.sources));
  doc.set("cap", num(req.cap));
  doc.set("trials", num(req.trials));
  doc.set("seed_base", num(req.seed_base));
  return doc.dump();
}

std::string encode_row(std::size_t trial, std::uint64_t seed, bool cached,
                       const CachedResult& row) {
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::str("row"));
  doc.set("trial", num(trial));
  doc.set("seed", num(seed));
  doc.set("cached", JsonValue::boolean(cached));
  doc.set("k", num(row.k_realized));
  doc.set("done", JsonValue::boolean(row.metrics.completed));
  doc.set("messages", num(row.metrics.total_messages()));
  doc.set("tc", num(row.metrics.tc));
  doc.set("rounds", num(row.metrics.rounds));
  doc.set("status", JsonValue::str(run_status_name(row.metrics.status)));
  doc.set("coverage", JsonValue::number(row.metrics.coverage));
  doc.set("checksum", JsonValue::str(checksum_hex(row.checksum)));
  return doc.dump();
}

std::string encode_done(std::size_t hits, std::size_t misses) {
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::str("done"));
  doc.set("hits", num(hits));
  doc.set("misses", num(misses));
  return doc.dump();
}

std::string encode_error(const std::string& message) {
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::str("error"));
  doc.set("message", JsonValue::str(message));
  return doc.dump();
}

}  // namespace dyngossip
