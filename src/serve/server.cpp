#include "serve/server.hpp"

#include <exception>
#include <optional>
#include <utility>

#include "adversary/registry.hpp"
#include "algo/registry.hpp"
#include "cache/memo_sweep.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_spec.hpp"

namespace dyngossip {

std::uint64_t FairScheduler::open_session() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  queues_.emplace_back(id, std::deque<std::function<void()>>());
  return id;
}

void FairScheduler::close_session(std::uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i].first != session) continue;
    if (!queues_[i].second.empty()) {
      // Still-queued trials may be deduped onto by other sessions; keep the
      // queue in the rotation until its tickets drain it, then let next()
      // retire it.
      closing_.insert(session);
      return;
    }
    queues_.erase(queues_.begin() + static_cast<std::ptrdiff_t>(i));
    if (rr_ > i) --rr_;
    if (!queues_.empty()) rr_ %= queues_.size();
    return;
  }
}

void FairScheduler::enqueue(std::uint64_t session,
                            std::function<void()> trial) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, queue] : queues_) {
    if (id == session) {
      queue.push_back(std::move(trial));
      return;
    }
  }
}

std::function<void()> FairScheduler::next() {
  std::lock_guard<std::mutex> lock(mu_);
  // Retire queues whose session closed after they drained.
  for (std::size_t i = 0; i < queues_.size();) {
    if (queues_[i].second.empty() && closing_.count(queues_[i].first) != 0) {
      closing_.erase(queues_[i].first);
      queues_.erase(queues_.begin() + static_cast<std::ptrdiff_t>(i));
      if (rr_ > i) --rr_;
    } else {
      ++i;
    }
  }
  if (queues_.empty()) return {};
  rr_ %= queues_.size();
  // One full rotation starting at the cursor: the first session with work
  // wins, and the cursor moves past it so its siblings go first next time.
  for (std::size_t step = 0; step < queues_.size(); ++step) {
    const std::size_t at = (rr_ + step) % queues_.size();
    if (queues_[at].second.empty()) continue;
    std::function<void()> trial = std::move(queues_[at].second.front());
    queues_[at].second.pop_front();
    rr_ = (at + 1) % queues_.size();
    return trial;
  }
  return {};
}

namespace {

/// Validates + canonicalizes the request's spec strings so cache keys match
/// the `dyngossip run` tables byte-for-byte.  Throws with a client-facing
/// message.
struct ResolvedSweep {
  AlgoSpec algo;
  AdversarySpec adversary;
  FaultSpec fault;
  std::string algo_text;
  std::string adversary_text;
  std::string fault_text;
};

[[nodiscard]] ResolvedSweep resolve_sweep(const SweepRequest& req) {
  ResolvedSweep r;
  r.algo = AlgoSpec::parse(req.algo);
  AlgoRegistry::global().validate(r.algo);
  r.adversary = AdversarySpec::parse(req.adversary);
  AdversaryRegistry::global().validate(r.adversary);
  r.fault = FaultSpec::parse(req.fault);
  std::string why;
  if (!algo_schedule_compatible(*AlgoRegistry::global().find(r.algo.family),
                                r.adversary, &why)) {
    throw AlgoSpecError(why);
  }
  r.algo_text = r.algo.to_string();
  r.adversary_text = r.adversary.to_string();
  r.fault_text = r.fault.to_string();
  return r;
}

}  // namespace

void SweepService::run_sweep(
    const SweepRequest& req,
    const std::function<void(const std::string&)>& emit) {
  ResolvedSweep sweep;
  try {
    sweep = resolve_sweep(req);
  } catch (const std::exception& e) {
    emit(encode_error(e.what()));
    return;
  }
  const bool cacheable = cacheable_adversary_family(sweep.adversary.family);

  // One slot per trial, resolved in admission order.  `pending` is null for
  // rows served straight from the cache.
  struct Slot {
    std::uint64_t seed = 0;
    bool cached = false;
    std::shared_ptr<Pending> pending;
    CachedResult row;
  };
  std::vector<Slot> slots(req.trials);
  std::size_t hits = 0;
  std::size_t misses = 0;
  const std::uint64_t session = scheduler_.open_session();

  for (std::size_t i = 0; i < req.trials; ++i) {
    Slot& slot = slots[i];
    slot.seed = req.seed_base + i;
    const RunKey key =
        make_run_key(sweep.algo_text, sweep.adversary_text, sweep.fault_text,
                     req.n, req.k, req.sources, req.cap, slot.seed);

    if (cacheable && cache_ != nullptr) {
      if (std::optional<CachedResult> hit = cache_->lookup(key)) {
        slot.row = *hit;
        slot.cached = true;
        ++hits;
        continue;
      }
    }

    bool owner = true;
    if (cacheable) {
      // In-flight dedup: a second session requesting a key another session
      // is already computing just waits on the same Pending — its row
      // counts as a hit (it never re-ran).
      std::lock_guard<std::mutex> lock(inflight_mu_);
      const auto it = inflight_.find(key.digest());
      if (it != inflight_.end() &&
          it->second->key_text == key.canonical_text()) {
        slot.pending = it->second;
        slot.cached = true;
        ++hits;
        continue;
      }
      slot.pending = std::make_shared<Pending>();
      slot.pending->key_text = key.canonical_text();
      inflight_[key.digest()] = slot.pending;
    } else {
      slot.pending = std::make_shared<Pending>();
      slot.pending->key_text = key.canonical_text();
      owner = true;
    }
    ++misses;

    const std::shared_ptr<Pending> pending = slot.pending;
    const std::uint64_t digest = key.digest();
    // The trial body (engines stay serial: the pool's workers are busy
    // running tickets, so intra-round sharding would nest the pool).
    scheduler_.enqueue(session, [this, pending, digest, sweep, req, cacheable,
                                 seed = slot.seed, owner] {
      CachedResult row;
      std::string error;
      try {
        const std::unique_ptr<Adversary> adversary =
            AdversaryRegistry::global().build(sweep.adversary, [&] {
              AdversaryBuildContext actx;
              actx.n = req.n;
              actx.seed = seed;
              return actx;
            }());
        FaultPlan plan(sweep.fault, req.n, seed);
        AlgoBuildContext actx;
        actx.n = req.n;
        actx.k = req.k;
        actx.sources = req.sources;
        actx.cap = req.cap;
        actx.seed = seed;
        actx.engine_pool = nullptr;
        actx.faults = &plan;
        const RunResult res = run_algo(sweep.algo, actx, *adversary);
        row = make_cached_result(req.n, actx.k_realized, res);
        if (cacheable && cache_ != nullptr &&
            cache_should_store(row.metrics.status)) {
          RunKey key = make_run_key(sweep.algo_text, sweep.adversary_text,
                                    sweep.fault_text, req.n, req.k,
                                    req.sources, req.cap, seed);
          cache_->store(key, row);
        }
      } catch (const std::exception& e) {
        error = e.what();
      }
      if (cacheable && owner) {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        const auto it = inflight_.find(digest);
        if (it != inflight_.end() && it->second == pending) {
          inflight_.erase(it);
        }
      }
      std::lock_guard<std::mutex> lock(pending->mu);
      pending->done = true;
      pending->failed = !error.empty();
      pending->error = error;
      pending->row = row;
      pending->cv.notify_all();
    });
    pool_.submit([this] {
      if (std::function<void()> trial = scheduler_.next()) trial();
    });
  }

  emit(encode_accepted(req));
  for (std::size_t i = 0; i < req.trials; ++i) {
    Slot& slot = slots[i];
    if (slot.pending != nullptr) {
      std::unique_lock<std::mutex> lock(slot.pending->mu);
      slot.pending->cv.wait(lock, [&] { return slot.pending->done; });
      if (slot.pending->failed) {
        scheduler_.close_session(session);
        emit(encode_error("trial " + std::to_string(i) + ": " +
                          slot.pending->error));
        return;
      }
      slot.row = slot.pending->row;
    }
    emit(encode_row(i, slot.seed, slot.cached, slot.row));
  }
  scheduler_.close_session(session);
  if (cacheable && cache_ != nullptr && misses > 0) cache_->write_index();
  emit(encode_done(hits, misses));
}

}  // namespace dyngossip
