#include "serve/serve_cli.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.hpp"
#include "common/cli.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace dyngossip {

namespace {

constexpr const char* kServeUsage =
    "usage: dyngossip serve --socket=PATH [--threads=N] [--cache=DIR]\n"
    "                       [--max-requests=N]\n"
    "\n"
    "Long-running sweep service on a unix-domain socket.  Each client sends\n"
    "one single-line JSON sweep request and receives a line stream of\n"
    "result rows (see `dyngossip request`).  Concurrent clients are\n"
    "scheduled fairly (round-robin per trial) over one shared thread pool,\n"
    "and identical in-flight trials are computed once.  --cache=DIR shares\n"
    "the content-addressed result cache with `dyngossip run --cache=DIR`.\n"
    "--max-requests=N exits after serving N connections (0: run forever).\n";

constexpr const char* kRequestUsage =
    "usage: dyngossip request --socket=PATH --adversary=SPEC --n=N --k=K\n"
    "                         [--algo=SPEC] [--fault=SPEC] [--sources=S]\n"
    "                         [--cap=C] [--trials=T] [--seed-base=B]\n"
    "\n"
    "Submits one sweep to a running `dyngossip serve` and prints the\n"
    "streamed protocol lines (accepted / row per trial / done) to stdout.\n"
    "Exit 0 on done, 1 on a server error line or connection failure.\n";

/// Writes all of `line` + '\n' to fd, absorbing partial writes.  Returns
/// false when the peer is gone.
bool write_line(int fd, const std::string& line) {
  std::string framed = line + "\n";
  std::size_t off = 0;
  while (off < framed.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t wrote = ::send(fd, framed.data() + off, framed.size() - off,
                                 MSG_NOSIGNAL);
#else
    const ssize_t wrote =
        ::send(fd, framed.data() + off, framed.size() - off, 0);
#endif
    if (wrote <= 0) {
      if (wrote < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(wrote);
  }
  return true;
}

/// Reads one '\n'-terminated line (the terminator is stripped).  Returns
/// false on EOF/error before any terminator.  `buffer` carries bytes read
/// past the previous line.
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t at = buffer.find('\n');
    if (at != std::string::npos) {
      line = buffer.substr(0, at);
      buffer.erase(0, at + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(got));
    if (buffer.size() > (1u << 20)) return false;  // runaway peer
  }
}

[[nodiscard]] int connect_unix(const std::string& path, bool listening,
                               int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return -1;
  }
  if (listening) {
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(fd, backlog) < 0) {
      std::perror(path.c_str());
      ::close(fd);
      return -1;
    }
  } else if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) < 0) {
    std::perror(path.c_str());
    ::close(fd);
    return -1;
  }
  return fd;
}

void serve_connection(SweepService& service, int fd) {
  std::string buffer;
  std::string line;
  if (!read_line(fd, buffer, line)) {
    ::close(fd);
    return;
  }
  SweepRequest req;
  try {
    req = decode_sweep_request(line);
  } catch (const std::exception& e) {
    (void)write_line(fd, encode_error(e.what()));
    ::close(fd);
    return;
  }
  bool alive = true;
  service.run_sweep(req, [fd, &alive](const std::string& out) {
    // A vanished client must not kill the sweep mid-flight (its trials may
    // be deduped onto by other sessions); keep draining, stop writing.
    if (alive) alive = write_line(fd, out);
  });
  ::close(fd);
}

int cmd_serve(const CliArgs& args) {
  args.allow_only({"socket", "threads", "cache", "max-requests"}, kServeUsage);
  const std::string socket_path = args.get_string("socket", "");
  if (socket_path.empty()) {
    std::fprintf(stderr, "serve requires --socket=PATH\n");
    return 2;
  }
  const std::int64_t threads_raw = args.get_int("threads", 0);
  const std::int64_t max_requests = args.get_int("max-requests", 0);
  if (threads_raw < 0 || threads_raw > 4096 || max_requests < 0) {
    std::fprintf(stderr,
                 "--threads in [0, 4096] and --max-requests >= 0 required\n");
    return 2;
  }
  std::unique_ptr<ResultCache> cache;
  if (args.has("cache")) {
    try {
      cache = std::make_unique<ResultCache>(args.get_string("cache", ""));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  const int listen_fd = connect_unix(socket_path, /*listening=*/true, 16);
  if (listen_fd < 0) return 1;

  ThreadPool pool(static_cast<std::size_t>(threads_raw));
  SweepService service(pool, cache.get());
  std::fprintf(stderr, "[dyngossip] serve: listening on %s (%zu threads%s)\n",
               socket_path.c_str(), pool.size(),
               cache != nullptr ? (", cache " + cache->dir()).c_str() : "");

  std::vector<std::thread> sessions;
  std::int64_t served = 0;
  while (max_requests == 0 || served < max_requests) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      std::perror("accept");
      break;
    }
    ++served;
    sessions.emplace_back([&service, fd] { serve_connection(service, fd); });
  }
  for (std::thread& t : sessions) t.join();
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  std::fprintf(stderr, "[dyngossip] serve: %lld request(s) served, exiting\n",
               static_cast<long long>(served));
  return 0;
}

int cmd_request(const CliArgs& args) {
  args.allow_only({"socket", "algo", "adversary", "fault", "n", "k", "sources",
                   "cap", "trials", "seed-base"},
                  kRequestUsage);
  const std::string socket_path = args.get_string("socket", "");
  if (socket_path.empty()) {
    std::fprintf(stderr, "request requires --socket=PATH\n");
    return 2;
  }
  SweepRequest req;
  req.algo = args.get_string("algo", req.algo);
  req.adversary = args.get_string("adversary", "");
  req.fault = args.get_string("fault", req.fault);
  req.n = static_cast<std::size_t>(args.get_int("n", 0));
  req.k = static_cast<std::uint32_t>(args.get_int("k", 0));
  req.sources = static_cast<std::size_t>(args.get_int("sources", 4));
  req.cap = static_cast<Round>(args.get_int("cap", 0));
  req.trials = static_cast<std::size_t>(args.get_int("trials", 1));
  req.seed_base = static_cast<std::uint64_t>(args.get_int("seed-base", 0));
  if (req.adversary.empty() || req.n == 0 || req.k == 0) {
    std::fprintf(stderr, "request requires --adversary=SPEC --n=N --k=K\n%s",
                 kRequestUsage);
    return 2;
  }

  const int fd = connect_unix(socket_path, /*listening=*/false, 0);
  if (fd < 0) return 1;
  if (!write_line(fd, encode_sweep_request(req))) {
    std::fprintf(stderr, "connection lost while sending the request\n");
    ::close(fd);
    return 1;
  }
  std::string buffer;
  std::string line;
  int exit_code = 1;  // flipped to 0 by a terminal "done" line
  while (read_line(fd, buffer, line)) {
    std::printf("%s\n", line.c_str());
    try {
      const JsonValue doc = JsonValue::parse(line);
      const JsonValue* type = doc.find("type");
      if (type != nullptr && type->type() == JsonValue::Type::kString) {
        if (type->as_string() == "done") {
          exit_code = 0;
          break;
        }
        if (type->as_string() == "error") break;
      }
    } catch (const std::exception&) {
      break;  // garbled stream: keep exit_code = 1
    }
  }
  ::close(fd);
  if (exit_code != 0) {
    std::fprintf(stderr, "request did not complete cleanly\n");
  }
  return exit_code;
}

}  // namespace

int serve_main(int argc, const char* const* argv) {
  const std::string command = argc >= 2 ? argv[1] : "";
  std::vector<const char*> rest = {argv[0]};
  for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
  const CliArgs args(static_cast<int>(rest.size()), rest.data());
  if (command == "serve") return cmd_serve(args);
  if (command == "request") return cmd_request(args);
  std::fputs(kServeUsage, stderr);
  return 2;
}

}  // namespace dyngossip
