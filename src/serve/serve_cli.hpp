// `dyngossip serve` / `dyngossip request` — the unix-socket transport
// around serve/server.hpp (protocol in serve/protocol.hpp).
#pragma once

namespace dyngossip {

/// Entry point for the `serve` and `request` commands (argv starting at the
/// program name, argv[1] selecting which).  Returns a process exit code.
[[nodiscard]] int serve_main(int argc, const char* const* argv);

}  // namespace dyngossip
