#include "metrics/potential.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dyngossip {

std::uint64_t potential(const std::vector<KnowledgeSet>& knowledge,
                        const std::vector<KnowledgeSet>& kprime) {
  DG_CHECK(knowledge.size() == kprime.size());
  std::uint64_t phi = 0;
  for (std::size_t v = 0; v < knowledge.size(); ++v) {
    phi += knowledge[v].union_count(kprime[v]);
  }
  return phi;
}

std::vector<KnowledgeSet> sample_kprime(std::size_t n, std::size_t k, double p,
                                         Rng& rng) {
  std::vector<KnowledgeSet> kprime(n, KnowledgeSet(k));
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t t = 0; t < k; ++t) {
      if (rng.bernoulli(p)) kprime[v].set(t);
    }
  }
  return kprime;
}

}  // namespace dyngossip
