// Message-complexity accounting (Definitions 1.1 and 1.3).
//
// Tracks exactly the quantities the paper's theorems are stated in:
//  - unicast messages by payload type (Theorem 3.1 argues the three types
//    separately: tokens O(nk), completeness O(n²) / O(n²s), requests
//    O(nk) + deletions);
//  - local broadcasts, each counted as ONE message regardless of degree
//    (Definition 1.1, local-broadcast mode);
//  - TC(E) = Σ_r |E+_r| and the deletion count (Definition 1.3's budget);
//  - token learnings ⟨v,τ,r⟩ and duplicate token deliveries (the "each
//    distinct token is received by each node once" invariant);
//  - round count and completion status.
//
// The α-adversary-competitive residual of Definition 1.3 is then
// total − α·TC(E): an algorithm has α-competitive message complexity M iff
// the residual is at most M on every execution.
#pragma once

#include <cstdint>
#include <string>

#include "engine/message.hpp"

namespace dyngossip {

/// Unicast message counts split by payload type.
struct MessageCounts {
  std::uint64_t token = 0;         ///< type 1: token transfers
  std::uint64_t completeness = 0;  ///< type 2: completeness announcements
  std::uint64_t request = 0;       ///< type 3: token requests
  std::uint64_t control = 0;       ///< control payloads (tree build, center ads)

  /// Total unicast messages (Definition 1.1, unicast mode).
  [[nodiscard]] std::uint64_t total() const noexcept {
    return token + completeness + request + control;
  }

  /// Adds one message of the given type.
  void add(MsgType t) noexcept {
    switch (t) {
      case MsgType::kToken:
        ++token;
        break;
      case MsgType::kCompleteness:
        ++completeness;
        break;
      case MsgType::kRequest:
        ++request;
        break;
      case MsgType::kControl:
        ++control;
        break;
    }
  }

  MessageCounts& operator+=(const MessageCounts& o) noexcept {
    token += o.token;
    completeness += o.completeness;
    request += o.request;
    control += o.control;
    return *this;
  }
};

/// Why a run terminated.  Replaces the bare completed flag as the
/// authoritative outcome so degraded executions (the fault plane, starved
/// schedules, wall-clock watchdogs) are classified instead of collapsing
/// into an indistinguishable cap-out.
enum class RunStatus : std::uint8_t {
  kCompleted = 0,  ///< every (live) node knows all k tokens
  kRoundCap = 1,   ///< hit the round limit while still making progress
  kStalled = 2,    ///< fault plane: no learning for a full stall window
  kAllDown = 3,    ///< fault plane: every node crashed, no recovery possible
  kTimeout = 4,    ///< wall-clock watchdog budget exceeded (--trial-timeout)
};

/// Stable lower_snake name ("completed", "round_cap", ...) for tables/JSON.
[[nodiscard]] const char* run_status_name(RunStatus status) noexcept;

/// Inverse of run_status_name; returns false on an unknown name (cache
/// entries from a foreign or corrupted file must miss, not abort).
[[nodiscard]] bool run_status_from_name(const std::string& name,
                                        RunStatus* out) noexcept;

/// Everything one simulation run measures.
struct RunMetrics {
  MessageCounts unicast;                       ///< per-type unicast counts
  std::uint64_t broadcasts = 0;                ///< local-broadcast messages
  std::uint64_t tc = 0;                        ///< TC(E) = Σ|E+_r|
  std::uint64_t deletions = 0;                 ///< Σ|E-_r|
  std::uint64_t learnings = 0;                 ///< token-learning events
  std::uint64_t duplicate_token_deliveries = 0;///< token received when known
  std::uint64_t virtual_steps = 0;             ///< Algorithm 2 self-loop steps
  Round rounds = 0;                            ///< rounds executed
  bool completed = false;                      ///< all nodes know all tokens
  /// Termination classification (kCompleted iff completed; engines set it
  /// in run()/run_until()).  Not folded into run_payload_checksum — the
  /// payload fold predates it and stays byte-stable across PRs.
  RunStatus status = RunStatus::kRoundCap;
  /// Residual coverage at termination: the fraction of (node, token) pairs
  /// known (1.0 on completion; defined as 1.0 for an empty n·k universe).
  /// Partial progress becomes a measured outcome, not a silent cap-out.
  double coverage = 0.0;

  /// Total messages under the run's communication mode (whichever of the
  /// two counters is in use; mixed use never occurs in one run).
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return unicast.total() + broadcasts;
  }

  /// Amortized messages per token (Definition 1.1 divided by k).
  [[nodiscard]] double amortized(std::uint64_t k) const noexcept {
    return k == 0 ? 0.0
                  : static_cast<double>(total_messages()) / static_cast<double>(k);
  }

  /// Definition 1.3: total − α·TC(E).  An algorithm is α-adversary-
  /// competitive with complexity M iff this residual is <= M for every
  /// execution.  (Negative residuals are reported as 0.)
  [[nodiscard]] double competitive_residual(double alpha) const noexcept {
    const double res =
        static_cast<double>(total_messages()) - alpha * static_cast<double>(tc);
    return res < 0.0 ? 0.0 : res;
  }
};

}  // namespace dyngossip
