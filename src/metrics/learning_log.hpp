// Token-learning event log (Definition 1.4).
//
// A token learning is the event ⟨v, τ, r⟩ that node v receives token τ for
// the first time in round r.  If each of k tokens starts at exactly one
// node, exactly k(n−1) learnings occur in any solving execution — a useful
// end-to-end invariant.  Recording full events is optional (O(nk) memory);
// counting is always on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dyngossip {

/// One learning event ⟨node, token, round⟩.
struct LearningEvent {
  NodeId node = kNoNode;
  TokenId token = kNoToken;
  Round round = 0;
};

/// Counts (and optionally records) learning events.
class LearningLog {
 public:
  /// If record_events, every event is stored for post-hoc analysis.
  explicit LearningLog(bool record_events = false)
      : record_events_(record_events) {}

  /// Registers the event ⟨v, τ, r⟩.
  void add(NodeId v, TokenId t, Round r) {
    ++count_;
    last_round_ = r;
    if (record_events_) events_.push_back({v, t, r});
  }

  /// Registers `count` events that all happened in round r without storing
  /// them individually (sharded delivery folds per-shard counters; engines
  /// fall back to per-event add() when recording is enabled).
  void add_batch(std::uint64_t count, Round r) {
    count_ += count;
    if (count > 0) last_round_ = r;
  }

  /// True iff individual events are being stored.
  [[nodiscard]] bool recording_events() const noexcept { return record_events_; }

  /// Total learnings so far.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Round of the most recent learning (0 if none).
  [[nodiscard]] Round last_learning_round() const noexcept { return last_round_; }

  /// Recorded events (empty unless recording was enabled).
  [[nodiscard]] const std::vector<LearningEvent>& events() const noexcept {
    return events_;
  }

  /// Per-round learning counts up to `rounds` (from recorded events).
  [[nodiscard]] std::vector<std::uint64_t> per_round(Round rounds) const;

 private:
  bool record_events_;
  std::uint64_t count_ = 0;
  Round last_round_ = 0;
  std::vector<LearningEvent> events_;
};

}  // namespace dyngossip
