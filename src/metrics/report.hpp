// Rendering helpers turning RunMetrics into human-readable breakdowns.
#pragma once

#include <string>

#include "metrics/accounting.hpp"

namespace dyngossip {

/// One-line per-type breakdown, e.g.
/// "total=12_345 (token=9_000 completeness=2_000 request=1_300 control=45)".
[[nodiscard]] std::string message_breakdown(const MessageCounts& counts);

/// Multi-line run summary (messages, TC, rounds, learnings, completion).
[[nodiscard]] std::string run_summary(const RunMetrics& metrics, std::uint64_t k);

}  // namespace dyngossip
