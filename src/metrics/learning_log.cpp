#include "metrics/learning_log.hpp"

namespace dyngossip {

std::vector<std::uint64_t> LearningLog::per_round(Round rounds) const {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(rounds) + 1, 0);
  for (const LearningEvent& e : events_) {
    if (e.round <= rounds) ++counts[e.round];
  }
  return counts;
}

}  // namespace dyngossip
