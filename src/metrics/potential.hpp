// The Section-2 potential function Φ(t) = Σ_v |K_v(t) ∪ K'_v|.
//
// The lower-bound proof charges algorithm progress against Φ: the K'_v sets
// (each token included independently with probability 1/4) are "free"
// knowledge whose delivery does not count, the adversary keeps Φ(0) ≤ 0.8nk,
// and the problem is solved only when Φ = nk, so at least 0.2nk potential
// must be earned at O(log n) per round.  These helpers compute Φ and the
// per-round increase for instrumentation and tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/knowledge_set.hpp"
#include "common/rng.hpp"

namespace dyngossip {

/// Φ = Σ_v |knowledge[v] ∪ kprime[v]| (sizes must agree).
[[nodiscard]] std::uint64_t potential(const std::vector<KnowledgeSet>& knowledge,
                                      const std::vector<KnowledgeSet>& kprime);

/// Samples the adversary's K'_v sets: each of k tokens joins each set
/// independently with probability `p` (the proof uses p = 1/4).
[[nodiscard]] std::vector<KnowledgeSet> sample_kprime(std::size_t n, std::size_t k,
                                                       double p, Rng& rng);

}  // namespace dyngossip
