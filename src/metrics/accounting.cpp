#include "metrics/accounting.hpp"

// Header-only arithmetic; this translation unit exists so the module has a
// stable home for future out-of-line additions and for build-system symmetry.
namespace dyngossip {}
