#include "metrics/accounting.hpp"

#include <string>

namespace dyngossip {

const char* run_status_name(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::kCompleted:
      return "completed";
    case RunStatus::kRoundCap:
      return "round_cap";
    case RunStatus::kStalled:
      return "stalled";
    case RunStatus::kAllDown:
      return "all_down";
    case RunStatus::kTimeout:
      return "timeout";
  }
  return "unknown";
}

bool run_status_from_name(const std::string& name, RunStatus* out) noexcept {
  static constexpr RunStatus kAll[] = {RunStatus::kCompleted, RunStatus::kRoundCap,
                                       RunStatus::kStalled, RunStatus::kAllDown,
                                       RunStatus::kTimeout};
  for (const RunStatus status : kAll) {
    if (name == run_status_name(status)) {
      *out = status;
      return true;
    }
  }
  return false;
}

}  // namespace dyngossip
