#include "metrics/accounting.hpp"

namespace dyngossip {

const char* run_status_name(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::kCompleted:
      return "completed";
    case RunStatus::kRoundCap:
      return "round_cap";
    case RunStatus::kStalled:
      return "stalled";
    case RunStatus::kAllDown:
      return "all_down";
    case RunStatus::kTimeout:
      return "timeout";
  }
  return "unknown";
}

}  // namespace dyngossip
