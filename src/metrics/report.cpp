#include "metrics/report.hpp"

#include <sstream>

#include "common/table.hpp"

namespace dyngossip {

std::string message_breakdown(const MessageCounts& counts) {
  std::ostringstream os;
  os << "total=" << TablePrinter::big(counts.total())
     << " (token=" << TablePrinter::big(counts.token)
     << " completeness=" << TablePrinter::big(counts.completeness)
     << " request=" << TablePrinter::big(counts.request)
     << " control=" << TablePrinter::big(counts.control) << ")";
  return os.str();
}

std::string run_summary(const RunMetrics& metrics, std::uint64_t k) {
  std::ostringstream os;
  os << "rounds=" << metrics.rounds
     << (metrics.completed ? " (completed)" : " (NOT completed)") << "\n";
  os << "status=" << run_status_name(metrics.status)
     << " coverage=" << TablePrinter::num(metrics.coverage, 4) << "\n";
  if (metrics.broadcasts > 0) {
    os << "local broadcasts: " << TablePrinter::big(metrics.broadcasts) << "\n";
  }
  if (metrics.unicast.total() > 0) {
    os << "unicast messages: " << message_breakdown(metrics.unicast) << "\n";
  }
  os << "TC(E)=" << TablePrinter::big(metrics.tc)
     << " deletions=" << TablePrinter::big(metrics.deletions) << "\n";
  os << "learnings=" << TablePrinter::big(metrics.learnings)
     << " duplicates=" << TablePrinter::big(metrics.duplicate_token_deliveries)
     << "\n";
  os << "amortized messages/token=" << TablePrinter::num(metrics.amortized(k), 1)
     << "  1-competitive residual="
     << TablePrinter::num(metrics.competitive_residual(1.0), 1) << "\n";
  return os.str();
}

}  // namespace dyngossip
