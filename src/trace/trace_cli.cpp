#include "trace/trace_cli.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/sigma_stable.hpp"
#include "common/cli.hpp"
#include "core/tokens.hpp"
#include "metrics/report.hpp"
#include "sim/runner/json.hpp"
#include "sim/simulator.hpp"
#include "trace/run_payload.hpp"
#include "trace/trace_adversary.hpp"
#include "trace/trace_gen.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"

namespace dyngossip {

namespace {

constexpr const char* kTraceUsage =
    "usage: dyngossip trace <record|replay|info|gen> [flags]\n"
    "\n"
    "  record --out=T.dgt [--algo=single_source|multi_source] [--n=64]\n"
    "         [--k=128] [--sources=4] [--adversary=churn|fresh|sigma]\n"
    "         [--sigma=3] [--churn=N/8] [--edges=3N] [--seed=7] [--cap=R]\n"
    "         [--quick] [--json[=PATH|-]]\n"
    "         run an algorithm against a live adversary, teeing the schedule\n"
    "         to a trace; the run flags are embedded in the trace metadata\n"
    "  replay --trace=T.dgt [--algo=..] [--k=..] [--sources=..] [--cap=R]\n"
    "         [--json[=PATH|-]]\n"
    "         re-run an algorithm against a recorded schedule (flags default\n"
    "         to the recorded metadata; matching flags give a bit-identical\n"
    "         payload, which `diff` or the checksum field verifies)\n"
    "  info   --trace=T.dgt [--json[=PATH|-]]\n"
    "         stream a trace and summarize it (no run)\n"
    "  gen    --out=T.dgt --kind=sigma|churn|fresh|smoothed [--n=64]\n"
    "         [--rounds=256] [--sigma=4] [--churn=N] [--edges=3N] [--seed=7]\n"
    "         [--base=IN.dgt] [--flips=8]\n"
    "         synthesize a trace (smoothed perturbs --base)\n"
    "\n"
    "Trace paths ending in .jsonl use the text interchange codec; all other\n"
    "paths use the binary .dgt codec.  Readers sniff the format.\n";

/// Parses the "key=value key=value ..." metadata a recorded trace embeds.
std::map<std::string, std::string> parse_metadata(const std::string& metadata) {
  std::map<std::string, std::string> out;
  std::istringstream in(metadata);
  std::string item;
  while (in >> item) {
    const std::size_t eq = item.find('=');
    if (eq != std::string::npos && eq > 0) {
      out[item.substr(0, eq)] = item.substr(eq + 1);
    }
  }
  return out;
}

/// Writes a JSON doc per the --json flag convention ("-"/bare to stdout).
int emit_json(const CliArgs& args, const JsonValue& doc) {
  const std::string path = args.get_string("json", "-");
  const std::string text = doc.dump(2);
  if (path == "-" || path == "true") {
    std::cout << text << "\n";
    return 0;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 2;
  }
  out << text << "\n";
  return 0;
}

int cmd_record(const CliArgs& args) {
  args.allow_only({"out", "algo", "n", "k", "sources", "adversary", "sigma", "churn",
                   "edges", "seed", "cap", "quick", "json"},
                  kTraceUsage);
  const std::string out_path = args.get_string("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "trace record requires --out=PATH\n");
    return 2;
  }
  const bool quick = args.get_bool("quick", false);
  TracedRunSpec spec;
  spec.algo = args.get_string("algo", "single_source");
  spec.n = static_cast<std::size_t>(args.get_int("n", quick ? 32 : 64));
  spec.k = static_cast<std::uint32_t>(args.get_int("k", quick ? 64 : 128));
  spec.sources = static_cast<std::size_t>(args.get_int("sources", 4));
  spec.cap = static_cast<Round>(args.get_int("cap", 0));
  if (spec.algo != "single_source" && spec.algo != "multi_source") {
    std::fprintf(stderr, "--algo must be single_source or multi_source\n");
    return 2;
  }
  if (spec.n < 2 || spec.k < 1) {
    std::fprintf(stderr, "--n >= 2 and --k >= 1 required\n");
    return 2;
  }
  const std::string kind = args.get_string("adversary", "churn");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const auto sigma = static_cast<Round>(args.get_int("sigma", 3));
  const auto churn =
      static_cast<std::size_t>(args.get_int("churn", static_cast<std::int64_t>(
                                                         std::max<std::size_t>(
                                                             1, spec.n / 8))));
  const auto edges = static_cast<std::size_t>(
      args.get_int("edges", static_cast<std::int64_t>(3 * spec.n)));
  if (sigma < 1) {
    std::fprintf(stderr, "--sigma must be >= 1\n");
    return 2;
  }

  std::unique_ptr<Adversary> inner;
  if (kind == "churn" || kind == "fresh") {
    ChurnConfig cc;
    cc.n = spec.n;
    cc.target_edges = edges;
    cc.churn_per_round = churn;
    cc.sigma = sigma;
    cc.seed = seed;
    cc.fresh_graph_each_round = kind == "fresh";
    inner = std::make_unique<ChurnAdversary>(cc);
  } else if (kind == "sigma") {
    SigmaStableChurnConfig sc;
    sc.n = spec.n;
    sc.target_edges = edges;
    sc.churn_per_interval = churn;
    sc.sigma = sigma;
    sc.seed = seed;
    inner = std::make_unique<SigmaStableChurnAdversary>(sc);
  } else {
    std::fprintf(stderr, "--adversary must be churn, fresh, or sigma\n");
    return 2;
  }

  // The run flags become the trace metadata so replay can default to them.
  std::string metadata = "algo=" + spec.algo + " n=" + std::to_string(spec.n) +
                         " k=" + std::to_string(spec.k) +
                         " sources=" + std::to_string(spec.sources) +
                         " adversary=" + kind + " sigma=" + std::to_string(sigma) +
                         " churn=" + std::to_string(churn) +
                         " edges=" + std::to_string(edges) +
                         " seed=" + std::to_string(seed) +
                         " cap=" + std::to_string(spec.cap);

  std::unique_ptr<TraceWriter> writer = open_trace_writer(
      out_path, static_cast<std::uint32_t>(spec.n), seed, std::move(metadata));
  TraceRecorder recorder(*inner, *writer);
  std::uint64_t k_realized = 0;
  const RunResult r = run_traced_algo(spec, recorder, &k_realized);
  writer->finish();

  if (args.has("json")) {
    return emit_json(args, run_payload_json(spec.algo, spec.n, k_realized, r));
  }
  std::printf("recorded %u rounds to %s (n=%zu, checksum=%s)\n", writer->rounds(),
              out_path.c_str(), spec.n, checksum_hex(writer->checksum()).c_str());
  std::printf("%s", run_summary(r.metrics, k_realized).c_str());
  return 0;
}

int cmd_replay(const CliArgs& args) {
  // No --n: the node count is the trace header's, never a flag.
  args.allow_only({"trace", "algo", "k", "sources", "cap", "json"}, kTraceUsage);
  const std::string trace_path = args.get_string("trace", "");
  if (trace_path.empty()) {
    std::fprintf(stderr, "trace replay requires --trace=PATH\n");
    return 2;
  }
  TraceAdversary adversary(trace_path);
  const TraceHeader& header = adversary.trace_header();
  const std::map<std::string, std::string> meta = parse_metadata(header.metadata);
  auto meta_or = [&meta](const char* key, std::int64_t def) {
    const auto it = meta.find(key);
    if (it == meta.end()) return def;
    try {
      return static_cast<std::int64_t>(std::stoll(it->second));
    } catch (const std::exception&) {
      return def;  // foreign trace with free-form metadata: fall back
    }
  };

  TracedRunSpec spec;
  spec.algo = args.get_string(
      "algo", meta.count("algo") != 0u ? meta.at("algo") : "single_source");
  spec.n = header.n;
  spec.k = static_cast<std::uint32_t>(args.get_int("k", meta_or("k", 128)));
  spec.sources =
      static_cast<std::size_t>(args.get_int("sources", meta_or("sources", 4)));
  spec.cap = static_cast<Round>(args.get_int("cap", meta_or("cap", 0)));
  if (spec.algo != "single_source" && spec.algo != "multi_source") {
    std::fprintf(stderr, "--algo must be single_source or multi_source\n");
    return 2;
  }

  std::uint64_t k_realized = 0;
  const RunResult r = run_traced_algo(spec, adversary, &k_realized);

  if (args.has("json")) {
    return emit_json(args, run_payload_json(spec.algo, spec.n, k_realized, r));
  }
  std::printf("replayed %u trace rounds from %s (exhausted=%s)\n",
              adversary.rounds_replayed(), trace_path.c_str(),
              adversary.exhausted() ? "yes" : "no");
  std::printf("%s", run_summary(r.metrics, k_realized).c_str());
  return 0;
}

int cmd_info(const CliArgs& args) {
  args.allow_only({"trace", "json"}, kTraceUsage);
  const std::string trace_path = args.get_string("trace", "");
  if (trace_path.empty()) {
    std::fprintf(stderr, "trace info requires --trace=PATH\n");
    return 2;
  }
  const std::unique_ptr<TraceSource> source = open_trace_source(trace_path);
  Graph g(source->header().n);
  std::uint64_t insertions = 0;
  std::uint64_t deletions = 0;
  std::uint64_t edge_sum = 0;
  std::size_t min_edges = 0;
  std::size_t max_edges = 0;
  Round rounds = 0;
  while (source->next_round(g)) {
    ++rounds;
    const std::size_t m = g.num_edges();
    insertions += source->last_insertions();
    deletions += source->last_removals();
    min_edges = rounds == 1 ? m : std::min(min_edges, m);
    max_edges = std::max(max_edges, m);
    edge_sum += m;
  }
  const TraceHeader& header = source->header();
  const double avg_edges =
      rounds == 0 ? 0.0 : static_cast<double>(edge_sum) / static_cast<double>(rounds);

  if (args.has("json")) {
    JsonValue doc = JsonValue::object();
    doc.set("n", JsonValue::number(static_cast<double>(header.n)));
    doc.set("rounds", JsonValue::number(static_cast<double>(header.rounds)));
    doc.set("seed", JsonValue::str(checksum_hex(header.seed)));
    doc.set("checksum", JsonValue::str(checksum_hex(header.checksum)));
    doc.set("metadata", JsonValue::str(header.metadata));
    doc.set("min_edges", JsonValue::number(static_cast<double>(min_edges)));
    doc.set("avg_edges", JsonValue::number(avg_edges));
    doc.set("max_edges", JsonValue::number(static_cast<double>(max_edges)));
    doc.set("tc", JsonValue::number(static_cast<double>(insertions)));
    doc.set("deletions", JsonValue::number(static_cast<double>(deletions)));
    return emit_json(args, doc);
  }
  std::printf("trace %s\n", trace_path.c_str());
  std::printf("  n         %u\n", header.n);
  std::printf("  rounds    %u\n", header.rounds);
  std::printf("  seed      %s\n", checksum_hex(header.seed).c_str());
  std::printf("  checksum  %s\n", checksum_hex(header.checksum).c_str());
  std::printf("  edges     min=%zu avg=%.1f max=%zu\n", min_edges, avg_edges,
              max_edges);
  std::printf("  TC(E)     %llu insertions, %llu deletions\n",
              static_cast<unsigned long long>(insertions),
              static_cast<unsigned long long>(deletions));
  std::printf("  metadata  %s\n",
              header.metadata.empty() ? "(none)" : header.metadata.c_str());
  return 0;
}

int cmd_gen(const CliArgs& args) {
  args.allow_only(
      {"out", "kind", "n", "rounds", "sigma", "churn", "edges", "seed", "base",
       "flips"},
      kTraceUsage);
  const std::string out_path = args.get_string("out", "");
  const std::string kind = args.get_string("kind", "sigma");
  if (out_path.empty()) {
    std::fprintf(stderr, "trace gen requires --out=PATH\n");
    return 2;
  }
  // Validate everything before open_trace_writer truncates --out: a typo'd
  // kind must not destroy an existing trace file.
  if (kind != "sigma" && kind != "churn" && kind != "fresh" && kind != "smoothed") {
    std::fprintf(stderr, "--kind must be sigma, churn, fresh, or smoothed\n");
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  if (kind == "smoothed") {
    const std::string base_path = args.get_string("base", "");
    if (base_path.empty()) {
      std::fprintf(stderr, "trace gen --kind=smoothed requires --base=PATH\n");
      return 2;
    }
    SmoothedTraceConfig sc;
    sc.flips_per_round = static_cast<std::size_t>(args.get_int("flips", 8));
    sc.seed = seed;
    const std::unique_ptr<TraceSource> base = open_trace_source(base_path);
    const std::string metadata =
        "kind=smoothed base=" + base_path +
        " flips=" + std::to_string(sc.flips_per_round) +
        " seed=" + std::to_string(seed);
    std::unique_ptr<TraceWriter> writer =
        open_trace_writer(out_path, base->header().n, seed, metadata);
    smooth_trace(*base, sc, *writer);
    writer->finish();
    std::printf("smoothed %u rounds (%zu flips/round) -> %s (checksum=%s)\n",
                writer->rounds(), sc.flips_per_round, out_path.c_str(),
                checksum_hex(writer->checksum()).c_str());
    return 0;
  }

  const auto n = static_cast<std::size_t>(args.get_int("n", 64));
  const auto rounds = static_cast<Round>(args.get_int("rounds", 256));
  const auto sigma = static_cast<Round>(args.get_int("sigma", 4));
  const auto churn = static_cast<std::size_t>(
      args.get_int("churn", static_cast<std::int64_t>(n)));
  const auto edges = static_cast<std::size_t>(
      args.get_int("edges", static_cast<std::int64_t>(3 * n)));
  if (n < 2 || sigma < 1) {
    std::fprintf(stderr, "--n >= 2 and --sigma >= 1 required\n");
    return 2;
  }
  const std::string metadata =
      "kind=" + kind + " n=" + std::to_string(n) + " rounds=" +
      std::to_string(rounds) + " sigma=" + std::to_string(sigma) +
      " churn=" + std::to_string(churn) + " edges=" + std::to_string(edges) +
      " seed=" + std::to_string(seed);
  std::unique_ptr<TraceWriter> writer =
      open_trace_writer(out_path, static_cast<std::uint32_t>(n), seed, metadata);

  if (kind == "sigma") {
    SigmaStableChurnConfig sc;
    sc.n = n;
    sc.target_edges = edges;
    sc.churn_per_interval = churn;
    sc.sigma = sigma;
    sc.seed = seed;
    generate_sigma_churn_trace(sc, rounds, *writer);
  } else {  // churn | fresh (validated above)
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = edges;
    cc.churn_per_round = churn;
    cc.sigma = sigma;
    cc.seed = seed;
    cc.fresh_graph_each_round = kind == "fresh";
    ChurnAdversary adversary(cc);
    record_schedule(adversary, rounds, *writer);
  }
  writer->finish();
  std::printf("generated %u rounds of '%s' -> %s (n=%zu, checksum=%s)\n",
              writer->rounds(), kind.c_str(), out_path.c_str(), n,
              checksum_hex(writer->checksum()).c_str());
  return 0;
}

}  // namespace

int trace_main(int argc, const char* const* argv) {
  if (argc < 3) {
    std::fputs(kTraceUsage, stderr);
    return 2;
  }
  const std::string sub = argv[2];
  std::vector<const char*> rest = {argv[0]};
  for (int i = 3; i < argc; ++i) rest.push_back(argv[i]);
  const CliArgs args(static_cast<int>(rest.size()), rest.data());

  try {
    if (sub == "record") return cmd_record(args);
    if (sub == "replay") return cmd_replay(args);
    if (sub == "info") return cmd_info(args);
    if (sub == "gen") return cmd_gen(args);
  } catch (const TraceError& e) {
    std::fprintf(stderr, "trace error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown trace subcommand '%s'\n%s", sub.c_str(), kTraceUsage);
  return 2;
}

}  // namespace dyngossip
