#include "trace/trace_cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adversary/registry.hpp"
#include "algo/registry.hpp"
#include "common/cli.hpp"
#include "common/provenance.hpp"
#include "core/tokens.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_spec.hpp"
#include "metrics/report.hpp"
#include "sim/runner/json.hpp"
#include "sim/simulator.hpp"
#include "trace/run_payload.hpp"
#include "trace/trace_adversary.hpp"
#include "trace/trace_gen.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"

namespace dyngossip {

namespace {

constexpr const char* kTraceUsage =
    "usage: dyngossip trace <record|replay|info|gen> [flags]\n"
    "\n"
    "  record --out=T.dgt [--algo=SPEC] [--n=64]\n"
    "         [--k=128] [--sources=4] [--adversary=SPEC] [--sigma=3]\n"
    "         [--churn=N/8] [--edges=3N] [--seed=7] [--cap=R] [--quick]\n"
    "         [--fault=SPEC] [--json[=PATH|-]]\n"
    "         run an algorithm against a live adversary, teeing the schedule\n"
    "         to a trace; --algo is any registry spec (`dyngossip\n"
    "         algorithms`, default single_source) and --adversary any\n"
    "         schedule spec (`dyngossip adversaries`, default churn — the\n"
    "         --sigma/--churn/--edges flags fill in unset keys of the\n"
    "         churn/fresh/sigma families); the run flags are embedded in the\n"
    "         trace metadata\n"
    "  replay --trace=T.dgt [--algo=SPEC] [--k=..] [--sources=..] [--cap=R]\n"
    "         [--fault=SPEC] [--json[=PATH|-]]\n"
    "         re-run an algorithm against a recorded schedule (flags default\n"
    "         to the recorded metadata, including the canonical algorithm\n"
    "         and fault specs; matching flags give a bit-identical payload,\n"
    "         which `diff` or the checksum field verifies)\n"
    "  info   --trace=T.dgt [--windows=W] [--json[=PATH|-]]\n"
    "         stream a trace and summarize it (no run); --windows=W adds\n"
    "         per-window round/edge-churn stats for long schedules\n"
    "  gen    --out=T.dgt --kind=SPEC|smoothed [--n=64] [--rounds=256]\n"
    "         [--sigma=4] [--churn=N] [--edges=3N] [--seed=7]\n"
    "         [--base=IN.dgt] [--flips=8]\n"
    "         synthesize a trace from any oblivious registry family\n"
    "         (smoothed perturbs --base)\n"
    "\n"
    "Trace paths ending in .jsonl use the text interchange codec; all other\n"
    "paths use the binary .dgt codec.  Readers sniff the format.\n";

/// Writes a JSON doc per the --json flag convention ("-"/bare to stdout).
int emit_json(const CliArgs& args, const JsonValue& doc) {
  const std::string path = args.get_string("json", "-");
  const std::string text = doc.dump(2);
  if (path == "-" || path == "true") {
    std::cout << text << "\n";
    return 0;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 2;
  }
  out << text << "\n";
  return 0;
}

/// Parses a record/gen --adversary/--kind value into a registry spec,
/// filling unset keys of the churn/fresh/sigma families from the legacy
/// numeric flags and routing the flag seed into any seeded family (so the
/// embedded metadata spec alone reproduces the schedule).
AdversarySpec effective_adversary_spec(const std::string& text, std::size_t edges,
                                       std::size_t churn, std::size_t sigma,
                                       std::uint64_t seed) {
  AdversarySpec spec = AdversarySpec::parse(text);
  auto inject = [&spec](const std::string& key, std::uint64_t value) {
    if (spec.params.count(key) == 0u) spec.set(key, value);
  };
  if (spec.family == "churn" || spec.family == "fresh" || spec.family == "sigma") {
    inject("edges", edges);
    if (spec.family != "fresh") inject("churn", churn);
    if (spec.family == "churn") inject("sigma", sigma);
    if (spec.family == "sigma") inject("interval", sigma);
  }
  const AdversaryFamily* family = AdversaryRegistry::global().find(spec.family);
  if (family != nullptr &&
      std::any_of(family->keys.begin(), family->keys.end(),
                  [](const AdversaryKeySpec& k) { return k.key == "seed"; })) {
    inject("seed", seed);
  }
  return spec;
}

int cmd_record(const CliArgs& args) {
  args.allow_only({"out", "algo", "n", "k", "sources", "adversary", "sigma", "churn",
                   "edges", "seed", "cap", "quick", "fault", "json"},
                  kTraceUsage);
  const std::string out_path = args.get_string("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "trace record requires --out=PATH\n");
    return 2;
  }
  const bool quick = args.get_bool("quick", false);
  const AlgoSpec algo = AlgoSpec::parse(args.get_string("algo", "single_source"));
  AlgoRegistry::global().validate(algo);
  AlgoBuildContext actx;
  actx.n = static_cast<std::size_t>(args.get_int("n", quick ? 32 : 64));
  actx.k = static_cast<std::uint32_t>(args.get_int("k", quick ? 64 : 128));
  actx.sources = static_cast<std::size_t>(args.get_int("sources", 4));
  actx.cap = static_cast<Round>(args.get_int("cap", 0));
  if (actx.n < 2 || actx.k < 1) {
    std::fprintf(stderr, "--n >= 2 and --k >= 1 required\n");
    return 2;
  }
  const std::string kind = args.get_string("adversary", "churn");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  actx.seed = seed;
  const auto sigma = static_cast<Round>(args.get_int("sigma", 3));
  const auto churn =
      static_cast<std::size_t>(args.get_int("churn", static_cast<std::int64_t>(
                                                         std::max<std::size_t>(
                                                             1, actx.n / 8))));
  const auto edges = static_cast<std::size_t>(
      args.get_int("edges", static_cast<std::int64_t>(3 * actx.n)));
  if (sigma < 1) {
    std::fprintf(stderr, "--sigma must be >= 1\n");
    return 2;
  }

  const AdversarySpec aspec = effective_adversary_spec(
      kind, edges, churn, static_cast<std::size_t>(sigma), seed);
  std::string why;
  if (!algo_schedule_compatible(*AlgoRegistry::global().find(algo.family),
                                aspec, &why)) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }
  AdversaryBuildContext bctx;
  bctx.n = actx.n;
  bctx.seed = seed;
  const std::unique_ptr<Adversary> inner =
      AdversaryRegistry::global().build(aspec, bctx);

  // Fault plane: the recording run can itself execute under a fault plan
  // (position-keyed off the run seed, so the recording is reproducible);
  // the canonical spec rides in the metadata so replay defaults to it.
  const std::string fault_text = args.get_string("fault", "");
  FaultSpec fspec;
  if (!fault_text.empty()) fspec = FaultSpec::parse(fault_text);
  FaultPlan plan(fspec, actx.n, seed);
  if (!fault_text.empty()) actx.faults = &plan;

  // The run flags become the trace metadata so replay can default to them;
  // the canonical algorithm + adversary specs make the recording
  // self-describing.
  std::string metadata = "algo=" + algo.to_string() +
                         " n=" + std::to_string(actx.n) +
                         " k=" + std::to_string(actx.k) +
                         " sources=" + std::to_string(actx.sources) +
                         " adversary=" + aspec.to_string() +
                         " seed=" + std::to_string(seed) +
                         " cap=" + std::to_string(actx.cap);
  if (!fault_text.empty()) metadata += " fault=" + fspec.to_string();
  // Provenance rides along as one more key=value token (compact form has no
  // spaces); replay ignores unknown keys, so old readers are unaffected.
  metadata += " build=" + provenance_compact();

  std::unique_ptr<TraceWriter> writer = open_trace_writer(
      out_path, static_cast<std::uint32_t>(actx.n), seed, std::move(metadata));
  TraceRecorder recorder(*inner, *writer);
  const RunResult r = run_algo(algo, actx, recorder);
  writer->finish();

  if (args.has("json")) {
    return emit_json(args,
                     run_payload_json(algo.to_string(), actx.n, actx.k_realized, r));
  }
  std::printf("recorded %u rounds to %s (n=%zu, checksum=%s)\n", writer->rounds(),
              out_path.c_str(), actx.n, checksum_hex(writer->checksum()).c_str());
  std::printf("%s", run_summary(r.metrics, actx.k_realized).c_str());
  return 0;
}

int cmd_replay(const CliArgs& args) {
  // No --n: the node count is the trace header's, never a flag.
  args.allow_only({"trace", "algo", "k", "sources", "cap", "fault", "json"},
                  kTraceUsage);
  const std::string trace_path = args.get_string("trace", "");
  if (trace_path.empty()) {
    std::fprintf(stderr, "trace replay requires --trace=PATH\n");
    return 2;
  }
  TraceAdversary adversary(trace_path);
  const TraceHeader& header = adversary.trace_header();
  const std::map<std::string, std::string> meta =
      parse_trace_metadata(header.metadata);
  auto meta_or = [&meta](const char* key, std::int64_t def) {
    const auto it = meta.find(key);
    if (it == meta.end()) return def;
    try {
      return static_cast<std::int64_t>(std::stoll(it->second));
    } catch (const std::exception&) {
      return def;  // foreign trace with free-form metadata: fall back
    }
  };

  // The recording's metadata embeds the canonical algorithm spec, so a
  // bare `trace replay` re-runs exactly the recorded algorithm; --algo=SPEC
  // replays the schedule under a different one (cross-algorithm replay).
  const AlgoSpec algo = AlgoSpec::parse(args.get_string(
      "algo", meta.count("algo") != 0u ? meta.at("algo") : "single_source"));
  AlgoRegistry::global().validate(algo);
  // A static-only algorithm over a dynamic recording would die on the
  // protocol's DG_CHECK; the shared policy inspects the recording's
  // embedded adversary metadata and rejects that cleanly before running.
  std::string why;
  if (!algo_schedule_compatible(
          *AlgoRegistry::global().find(algo.family),
          AdversarySpec{"trace", {{"file", trace_path}}}, &why)) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }
  AlgoBuildContext actx;
  actx.n = header.n;
  actx.k = static_cast<std::uint32_t>(args.get_int("k", meta_or("k", 128)));
  actx.sources =
      static_cast<std::size_t>(args.get_int("sources", meta_or("sources", 4)));
  actx.cap = static_cast<Round>(args.get_int("cap", meta_or("cap", 0)));
  actx.seed = static_cast<std::uint64_t>(meta_or("seed", 1));

  // Fault replay defaults to the recording's embedded spec (so a recording
  // made under faults reproduces bit-identically); --fault=SPEC overrides,
  // and --fault= (empty) strips it for a fault-free cross-replay.
  const std::string fault_text = args.get_string(
      "fault", meta.count("fault") != 0u ? meta.at("fault") : "");
  FaultSpec fspec;
  if (!fault_text.empty()) fspec = FaultSpec::parse(fault_text);
  FaultPlan plan(fspec, actx.n, actx.seed);
  if (!fault_text.empty()) actx.faults = &plan;

  const RunResult r = run_algo(algo, actx, adversary);

  if (args.has("json")) {
    return emit_json(args,
                     run_payload_json(algo.to_string(), actx.n, actx.k_realized, r));
  }
  std::printf("replayed %u trace rounds from %s (exhausted=%s)\n",
              adversary.rounds_replayed(), trace_path.c_str(),
              adversary.exhausted() ? "yes" : "no");
  std::printf("%s", run_summary(r.metrics, actx.k_realized).c_str());
  return 0;
}

/// Per-round sample kept while streaming so --windows can aggregate after
/// the total round count is known (JSONL only reveals it in the trailer).
/// 12 bytes/round: a 10^6-round schedule costs ~12 MB, far below the cost
/// of materializing any single round at that scale.
struct RoundSample {
  std::uint32_t edges = 0;
  std::uint32_t insertions = 0;
  std::uint32_t removals = 0;
};

/// Aggregates samples into `window_count` near-equal round ranges.
struct WindowStat {
  Round first = 0, last = 0;
  std::size_t min_edges = 0, max_edges = 0;
  std::uint64_t edge_sum = 0, insertions = 0, deletions = 0;

  [[nodiscard]] Round rounds() const { return last - first + 1; }
  [[nodiscard]] double avg_edges() const {
    return static_cast<double>(edge_sum) / static_cast<double>(rounds());
  }
  [[nodiscard]] double churn_per_round() const {
    return static_cast<double>(insertions + deletions) /
           static_cast<double>(rounds());
  }
};

std::vector<WindowStat> aggregate_windows(const std::vector<RoundSample>& samples,
                                          std::size_t window_count) {
  std::vector<WindowStat> windows;
  const std::size_t total = samples.size();
  if (total == 0) return windows;
  window_count = std::min(window_count, total);
  for (std::size_t w = 0; w < window_count; ++w) {
    // Round ranges [first, last] split as evenly as integer division allows.
    const std::size_t first = w * total / window_count;
    const std::size_t last = (w + 1) * total / window_count - 1;
    WindowStat stat;
    stat.first = static_cast<Round>(first + 1);
    stat.last = static_cast<Round>(last + 1);
    for (std::size_t i = first; i <= last; ++i) {
      const RoundSample& s = samples[i];
      stat.min_edges = i == first ? s.edges
                                  : std::min<std::size_t>(stat.min_edges, s.edges);
      stat.max_edges = std::max<std::size_t>(stat.max_edges, s.edges);
      stat.edge_sum += s.edges;
      stat.insertions += s.insertions;
      stat.deletions += s.removals;
    }
    windows.push_back(stat);
  }
  return windows;
}

int cmd_info(const CliArgs& args) {
  args.allow_only({"trace", "windows", "json"}, kTraceUsage);
  const std::string trace_path = args.get_string("trace", "");
  if (trace_path.empty()) {
    std::fprintf(stderr, "trace info requires --trace=PATH\n");
    return 2;
  }
  const std::int64_t windows_raw = args.get_int("windows", 0);
  if (windows_raw < 0 || windows_raw > 1'000'000) {
    std::fprintf(stderr, "--windows must be in [0, 10^6] (0 disables windowing)\n");
    return 2;
  }
  const auto window_count = static_cast<std::size_t>(windows_raw);

  const std::unique_ptr<TraceSource> source = open_trace_source(trace_path);
  Graph g(source->header().n);
  std::uint64_t insertions = 0;
  std::uint64_t deletions = 0;
  std::uint64_t edge_sum = 0;
  std::size_t min_edges = 0;
  std::size_t max_edges = 0;
  Round rounds = 0;
  std::vector<RoundSample> samples;
  while (source->next_round(g)) {
    ++rounds;
    const std::size_t m = g.num_edges();
    insertions += source->last_insertions();
    deletions += source->last_removals();
    min_edges = rounds == 1 ? m : std::min(min_edges, m);
    max_edges = std::max(max_edges, m);
    edge_sum += m;
    if (window_count > 0) {
      samples.push_back({static_cast<std::uint32_t>(m),
                         static_cast<std::uint32_t>(source->last_insertions()),
                         static_cast<std::uint32_t>(source->last_removals())});
    }
  }
  const std::vector<WindowStat> windows = aggregate_windows(samples, window_count);
  const TraceHeader& header = source->header();
  const double avg_edges =
      rounds == 0 ? 0.0 : static_cast<double>(edge_sum) / static_cast<double>(rounds);

  if (args.has("json")) {
    JsonValue doc = JsonValue::object();
    doc.set("n", JsonValue::number(static_cast<double>(header.n)));
    doc.set("rounds", JsonValue::number(static_cast<double>(header.rounds)));
    doc.set("seed", JsonValue::str(checksum_hex(header.seed)));
    doc.set("checksum", JsonValue::str(checksum_hex(header.checksum)));
    doc.set("metadata", JsonValue::str(header.metadata));
    doc.set("min_edges", JsonValue::number(static_cast<double>(min_edges)));
    doc.set("avg_edges", JsonValue::number(avg_edges));
    doc.set("max_edges", JsonValue::number(static_cast<double>(max_edges)));
    doc.set("tc", JsonValue::number(static_cast<double>(insertions)));
    doc.set("deletions", JsonValue::number(static_cast<double>(deletions)));
    if (window_count > 0) {
      JsonValue window_docs = JsonValue::array();
      for (const WindowStat& w : windows) {
        JsonValue entry = JsonValue::object();
        entry.set("first_round", JsonValue::number(static_cast<double>(w.first)));
        entry.set("last_round", JsonValue::number(static_cast<double>(w.last)));
        entry.set("min_edges", JsonValue::number(static_cast<double>(w.min_edges)));
        entry.set("avg_edges", JsonValue::number(w.avg_edges()));
        entry.set("max_edges", JsonValue::number(static_cast<double>(w.max_edges)));
        entry.set("insertions",
                  JsonValue::number(static_cast<double>(w.insertions)));
        entry.set("deletions", JsonValue::number(static_cast<double>(w.deletions)));
        entry.set("churn_per_round", JsonValue::number(w.churn_per_round()));
        window_docs.push(std::move(entry));
      }
      doc.set("windows", std::move(window_docs));
    }
    return emit_json(args, doc);
  }
  std::printf("trace %s\n", trace_path.c_str());
  std::printf("  n         %u\n", header.n);
  std::printf("  rounds    %u\n", header.rounds);
  std::printf("  seed      %s\n", checksum_hex(header.seed).c_str());
  std::printf("  checksum  %s\n", checksum_hex(header.checksum).c_str());
  std::printf("  edges     min=%zu avg=%.1f max=%zu\n", min_edges, avg_edges,
              max_edges);
  std::printf("  TC(E)     %llu insertions, %llu deletions\n",
              static_cast<unsigned long long>(insertions),
              static_cast<unsigned long long>(deletions));
  std::printf("  metadata  %s\n",
              header.metadata.empty() ? "(none)" : header.metadata.c_str());
  if (window_count > 0) {
    std::printf("  windows   %zu\n", windows.size());
    std::printf("    %-15s %-6s %-36s %-10s %-10s %s\n", "rounds", "len",
                "edges (min/avg/max)", "ins", "del", "churn/round");
    for (const WindowStat& w : windows) {
      std::printf("    %6u..%-7u %-6u min=%-6zu avg=%-8.1f max=%-8zu %-10llu "
                  "%-10llu %.2f\n",
                  w.first, w.last, w.rounds(), w.min_edges, w.avg_edges(),
                  w.max_edges, static_cast<unsigned long long>(w.insertions),
                  static_cast<unsigned long long>(w.deletions),
                  w.churn_per_round());
    }
  }
  return 0;
}

int cmd_gen(const CliArgs& args) {
  args.allow_only(
      {"out", "kind", "n", "rounds", "sigma", "churn", "edges", "seed", "base",
       "flips"},
      kTraceUsage);
  const std::string out_path = args.get_string("out", "");
  const std::string kind = args.get_string("kind", "sigma");
  if (out_path.empty()) {
    std::fprintf(stderr, "trace gen requires --out=PATH\n");
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  const AdversarySpec kind_spec = AdversarySpec::parse(kind);
  if (kind_spec.family == "smoothed") {
    // Both spellings — bare `smoothed` with flags, or a full
    // `smoothed:base=...,flips=...` spec — take the trace-to-trace
    // transform, so the output always has exactly the base's round count
    // (the adversary form would pad --rounds with held duplicate graphs).
    AdversaryRegistry::global().validate(kind_spec);
    const auto param_u64 = [&kind_spec](const char* key, std::uint64_t def) {
      const auto it = kind_spec.params.find(key);
      if (it == kind_spec.params.end()) return def;
      char* end = nullptr;
      errno = 0;
      const long long v = std::strtoll(it->second.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || it->second.empty() || errno == ERANGE ||
          v < 0) {
        throw AdversarySpecError(std::string("smoothed: key '") + key +
                                 "' expects a non-negative integer (got '" +
                                 it->second + "')");
      }
      return static_cast<std::uint64_t>(v);
    };
    const std::string base_path = kind_spec.params.count("base") != 0u
                                      ? kind_spec.params.at("base")
                                      : args.get_string("base", "");
    if (base_path.empty()) {
      std::fprintf(stderr, "trace gen --kind=smoothed requires --base=PATH\n");
      return 2;
    }
    SmoothedTraceConfig sc;
    sc.flips_per_round = static_cast<std::size_t>(
        param_u64("flips", static_cast<std::uint64_t>(args.get_int("flips", 8))));
    sc.seed = param_u64("seed", seed);
    const std::unique_ptr<TraceSource> base = open_trace_source(base_path);
    const std::string metadata =
        "kind=smoothed base=" + base_path +
        " flips=" + std::to_string(sc.flips_per_round) +
        " seed=" + std::to_string(sc.seed);
    std::unique_ptr<TraceWriter> writer =
        open_trace_writer(out_path, base->header().n, sc.seed, metadata);
    smooth_trace(*base, sc, *writer);
    writer->finish();
    std::printf("smoothed %u rounds (%zu flips/round) -> %s (checksum=%s)\n",
                writer->rounds(), sc.flips_per_round, out_path.c_str(),
                checksum_hex(writer->checksum()).c_str());
    return 0;
  }

  const auto n = static_cast<std::size_t>(args.get_int("n", 64));
  const auto rounds = static_cast<Round>(args.get_int("rounds", 256));
  const auto sigma = static_cast<Round>(args.get_int("sigma", 4));
  const auto churn = static_cast<std::size_t>(
      args.get_int("churn", static_cast<std::int64_t>(n)));
  const auto edges = static_cast<std::size_t>(
      args.get_int("edges", static_cast<std::int64_t>(3 * n)));
  if (n < 2 || sigma < 1) {
    std::fprintf(stderr, "--n >= 2 and --sigma >= 1 required\n");
    return 2;
  }

  // Build (and thereby validate) the generator before open_trace_writer
  // truncates --out: a typo'd kind must not destroy an existing trace file.
  const AdversarySpec aspec = effective_adversary_spec(
      kind, edges, churn, static_cast<std::size_t>(sigma), seed);
  AdversaryBuildContext bctx;
  bctx.n = n;
  bctx.seed = seed;
  std::unique_ptr<Adversary> generator =
      AdversaryRegistry::global().build(aspec, bctx);
  auto* oblivious = dynamic_cast<ObliviousAdversary*>(generator.get());
  if (oblivious == nullptr) {
    std::fprintf(stderr,
                 "--kind=%s is an adaptive family — its schedule is not data "
                 "until a run exists; use `trace record --adversary=%s` to tee "
                 "a live run instead\n",
                 aspec.family.c_str(), aspec.family.c_str());
    return 2;
  }

  const std::string metadata = "kind=" + aspec.to_string() +
                               " n=" + std::to_string(n) +
                               " rounds=" + std::to_string(rounds) +
                               " seed=" + std::to_string(seed);
  std::unique_ptr<TraceWriter> writer =
      open_trace_writer(out_path, static_cast<std::uint32_t>(n), seed, metadata);
  record_schedule(*oblivious, rounds, *writer);
  writer->finish();
  std::printf("generated %u rounds of '%s' -> %s (n=%zu, checksum=%s)\n",
              writer->rounds(), aspec.to_string().c_str(), out_path.c_str(), n,
              checksum_hex(writer->checksum()).c_str());
  return 0;
}

}  // namespace

int trace_main(int argc, const char* const* argv) {
  if (argc < 3) {
    std::fputs(kTraceUsage, stderr);
    return 2;
  }
  const std::string sub = argv[2];
  std::vector<const char*> rest = {argv[0]};
  for (int i = 3; i < argc; ++i) rest.push_back(argv[i]);
  const CliArgs args(static_cast<int>(rest.size()), rest.data());

  try {
    if (sub == "record") return cmd_record(args);
    if (sub == "replay") return cmd_replay(args);
    if (sub == "info") return cmd_info(args);
    if (sub == "gen") return cmd_gen(args);
  } catch (const AdversarySpecError& e) {
    std::fprintf(stderr, "%s\n(see `dyngossip adversaries`)\n", e.what());
    return 2;
  } catch (const AlgoSpecError& e) {
    std::fprintf(stderr, "%s\n(see `dyngossip algorithms`)\n", e.what());
    return 2;
  } catch (const FaultSpecError& e) {
    std::fprintf(stderr, "%s\n(see `dyngossip faults`)\n", e.what());
    return 2;
  } catch (const TraceError& e) {
    std::fprintf(stderr, "trace error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown trace subcommand '%s'\n%s", sub.c_str(), kTraceUsage);
  return 2;
}

}  // namespace dyngossip
