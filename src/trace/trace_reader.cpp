#include "trace/trace_reader.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.hpp"

namespace dyngossip {

namespace {

[[nodiscard]] std::uint64_t parse_hex_u64(const std::string& text) {
  if (text.empty() || text.size() > 16) throw TraceError("bad hex field: " + text);
  std::uint64_t v = 0;
  for (const char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw TraceError("bad hex field: " + text);
    }
  }
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceReaderBase
// ---------------------------------------------------------------------------

bool TraceReaderBase::next_round(Graph& g) {
  if (finished_) return false;
  if (g.num_nodes() != header_.n) {
    // A caller/recording mismatch (e.g. a scenario grid sized differently
    // from the trace), not a programming error: report both sides.
    throw TraceError("trace is over n=" + std::to_string(header_.n) +
                     " nodes but the consumer stepped a graph on n=" +
                     std::to_string(g.num_nodes()) +
                     "; size the run from the trace header (see "
                     "`dyngossip trace info`)");
  }

  auto seal = [this] {
    read_trailer(rounds_read_, checksum_.value());
    if (header_.rounds != rounds_read_) {
      throw TraceError("trace round count mismatch: trailer says " +
                       std::to_string(header_.rounds) + ", stream held " +
                       std::to_string(rounds_read_));
    }
    if (header_.checksum != checksum_.value()) {
      throw TraceError("trace checksum mismatch: header " +
                       checksum_hex(header_.checksum) + ", stream " +
                       checksum_hex(checksum_.value()));
    }
    finished_ = true;
  };

  if (!have_more_blocks()) {
    seal();
    return false;
  }

  const Round r = rounds_read_ + 1;
  ins_scratch_.clear();
  del_scratch_.clear();
  read_block(r, ins_scratch_, del_scratch_);

  auto validate = [this](const std::vector<EdgeKey>& keys) {
    EdgeKey prev = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (i > 0 && keys[i] <= prev) throw TraceError("unsorted round delta");
      const auto [lo, hi] = edge_endpoints(keys[i]);
      if (lo >= hi || hi >= header_.n) throw TraceError("edge endpoint out of range");
      prev = keys[i];
    }
  };
  validate(ins_scratch_);
  validate(del_scratch_);

  for (const EdgeKey key : del_scratch_) {
    const auto [u, v] = edge_endpoints(key);
    if (!g.remove_edge(u, v)) throw TraceError("trace removes an absent edge");
  }
  for (const EdgeKey key : ins_scratch_) {
    const auto [u, v] = edge_endpoints(key);
    if (!g.add_edge(u, v)) throw TraceError("trace inserts a live edge");
  }

  checksum_.fold_round(r, ins_scratch_.size(), del_scratch_.size());
  for (const EdgeKey key : ins_scratch_) checksum_.fold(key);
  for (const EdgeKey key : del_scratch_) checksum_.fold(key);
  rounds_read_ = r;

  // Verify eagerly once the stream is drained: a consumer that stops at the
  // recorded length still gets the checksum guarantee.
  if (!have_more_blocks()) seal();
  return true;
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

BinaryTraceReader::BinaryTraceReader(std::istream& in) : in_(&in) { read_header(); }

BinaryTraceReader::BinaryTraceReader(std::unique_ptr<std::ifstream> file)
    : owned_(std::move(file)), in_(owned_.get()) {
  read_header();
}

void BinaryTraceReader::read_header() {
  char magic[4];
  in_->read(magic, sizeof(magic));
  if (!*in_ || std::memcmp(magic, trace_format::kMagic, sizeof(magic)) != 0) {
    throw TraceError("not a .dgt trace (bad magic)");
  }
  auto read_bytes = [this](void* dst, std::size_t len) {
    in_->read(static_cast<char*>(dst), static_cast<std::streamsize>(len));
    if (!*in_) throw TraceError("truncated trace header");
  };
  auto read_u16 = [&read_bytes] {
    unsigned char b[2];
    read_bytes(b, 2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  };
  auto read_u32 = [&read_bytes] {
    unsigned char b[4];
    read_bytes(b, 4);
    return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
  };
  auto read_u64 = [&read_u32] {
    const std::uint64_t lo = read_u32();
    const std::uint64_t hi = read_u32();
    return lo | (hi << 32);
  };

  const std::uint16_t version = read_u16();
  if (version != trace_format::kVersion) {
    throw TraceError("unsupported trace version " + std::to_string(version));
  }
  (void)read_u16();  // reserved
  header_.n = read_u32();
  if (header_.n > trace_format::kMaxNodes) {
    throw TraceError("trace node count implausible (corrupt header)");
  }
  header_.rounds = read_u32();
  header_.seed = read_u64();
  header_.checksum = read_u64();
  const std::uint32_t meta_len = read_u32();
  if (meta_len > trace_format::kMaxMetadataBytes) {
    throw TraceError("trace metadata length implausible (corrupt header)");
  }
  header_.metadata.resize(meta_len);
  if (meta_len > 0) read_bytes(header_.metadata.data(), meta_len);

  if (header_.rounds == trace_format::kUnfinishedRounds) {
    throw TraceError("trace writer never finished (round count unsealed)");
  }
}

bool BinaryTraceReader::have_more_blocks() {
  return blocks_decoded_ < header_.rounds;
}

std::uint64_t BinaryTraceReader::read_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = in_->get();
    if (c == std::istream::traits_type::eof()) throw TraceError("truncated trace block");
    const auto byte = static_cast<std::uint64_t>(c);
    if (shift > 63 || (shift == 63 && (byte & 0x7f) > 1)) {
      throw TraceError("varint overflow (corrupt trace)");
    }
    v |= (byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

void BinaryTraceReader::read_key_list(std::vector<EdgeKey>& out, std::size_t count) {
  EdgeKey prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t delta = read_varint();
    const EdgeKey key = i == 0 ? delta : prev + delta;
    if (i > 0 && key <= prev) throw TraceError("non-increasing key delta");
    out.push_back(key);
    prev = key;
  }
}

void BinaryTraceReader::read_block(Round /*round*/, std::vector<EdgeKey>& insertions,
                                   std::vector<EdgeKey>& removals) {
  const std::uint64_t ins_count = read_varint();
  const std::uint64_t del_count = read_varint();
  // A round can change at most n(n-1)/2 edges each way; anything bigger is a
  // corrupt count that would otherwise turn into a huge allocation.
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(header_.n) * (header_.n - 1) / 2;
  if (ins_count > max_edges || del_count > max_edges) {
    throw TraceError("round delta count implausible (corrupt trace)");
  }
  read_key_list(insertions, static_cast<std::size_t>(ins_count));
  read_key_list(removals, static_cast<std::size_t>(del_count));
  ++blocks_decoded_;
}

void BinaryTraceReader::read_trailer(Round /*rounds_seen*/,
                                     std::uint64_t /*checksum_seen*/) {
  char magic[4];
  in_->read(magic, sizeof(magic));
  if (!*in_ || std::memcmp(magic, trace_format::kEndMagic, sizeof(magic)) != 0) {
    throw TraceError("trace end marker missing (truncated file)");
  }
}

// ---------------------------------------------------------------------------
// JSONL codec
// ---------------------------------------------------------------------------

JsonlTraceReader::JsonlTraceReader(std::istream& in) : in_(&in) { read_header(); }

JsonlTraceReader::JsonlTraceReader(std::unique_ptr<std::ifstream> file)
    : owned_(std::move(file)), in_(owned_.get()) {
  read_header();
}

void JsonlTraceReader::advance() {
  std::string line;
  pending_valid_ = false;
  while (std::getline(*in_, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      pending_ = JsonValue::parse(line);
    } catch (const std::runtime_error& e) {
      throw TraceError(std::string("bad JSONL trace line: ") + e.what());
    }
    pending_valid_ = true;
    return;
  }
}

void JsonlTraceReader::read_header() {
  advance();
  if (!pending_valid_) throw TraceError("empty JSONL trace");
  const JsonValue* version = pending_.find("dgt");
  const JsonValue* n = pending_.find("n");
  if (version == nullptr || n == nullptr ||
      version->type() != JsonValue::Type::kNumber ||
      n->type() != JsonValue::Type::kNumber ||
      static_cast<int>(version->as_number()) != trace_format::kVersion) {
    throw TraceError("bad JSONL trace header");
  }
  const double n_raw = n->as_number();
  if (!(n_raw >= 0 && n_raw <= trace_format::kMaxNodes)) {
    throw TraceError("trace node count implausible (corrupt header)");
  }
  header_.n = static_cast<std::uint32_t>(n_raw);
  if (const JsonValue* seed = pending_.find("seed");
      seed != nullptr && seed->type() == JsonValue::Type::kString) {
    header_.seed = parse_hex_u64(seed->as_string());
  }
  if (const JsonValue* meta = pending_.find("metadata");
      meta != nullptr && meta->type() == JsonValue::Type::kString) {
    header_.metadata = meta->as_string();
  }
  advance();  // preload the first round / trailer line
}

bool JsonlTraceReader::have_more_blocks() {
  return pending_valid_ && pending_.find("end") == nullptr;
}

void JsonlTraceReader::read_block(Round round, std::vector<EdgeKey>& insertions,
                                  std::vector<EdgeKey>& removals) {
  const JsonValue* r = pending_.find("r");
  if (r == nullptr || r->type() != JsonValue::Type::kNumber ||
      static_cast<Round>(r->as_number()) != round) {
    throw TraceError("JSONL round number out of sequence");
  }
  auto decode = [this](const char* field, std::vector<EdgeKey>& out) {
    const JsonValue* list = pending_.find(field);
    if (list == nullptr || list->type() != JsonValue::Type::kArray) {
      throw TraceError(std::string("JSONL round missing '") + field + "' list");
    }
    for (const JsonValue& pair : list->items()) {
      if (pair.type() != JsonValue::Type::kArray || pair.items().size() != 2) {
        throw TraceError("JSONL edge must be a [u, v] pair");
      }
      const double u = pair.items()[0].as_number();
      const double v = pair.items()[1].as_number();
      if (u < 0 || v < 0 || u >= header_.n || v >= header_.n || u == v ||
          u != std::floor(u) || v != std::floor(v)) {
        throw TraceError("JSONL edge endpoint out of range");
      }
      out.push_back(edge_key(static_cast<NodeId>(u), static_cast<NodeId>(v)));
    }
  };
  decode("ins", insertions);
  decode("del", removals);
  // External producers list edges in whatever order they like; the canonical
  // sorted order the base validates (and the checksum folds) is ours to
  // impose.  A no-op for traces our own writer emitted.
  std::sort(insertions.begin(), insertions.end());
  std::sort(removals.begin(), removals.end());
  advance();
}

void JsonlTraceReader::read_trailer(Round rounds_seen, std::uint64_t checksum_seen) {
  if (!pending_valid_ || pending_.find("end") == nullptr) {
    throw TraceError("JSONL trace trailer missing (truncated file)");
  }
  // rounds/checksum are optional in the trailer so external producers can
  // write `{"end":true}` without reimplementing the SplitMix64 fold; when
  // present they are verified against the observed stream.
  const JsonValue* rounds = pending_.find("rounds");
  const JsonValue* checksum = pending_.find("checksum");
  header_.rounds = rounds != nullptr && rounds->type() == JsonValue::Type::kNumber
                       ? static_cast<std::uint32_t>(rounds->as_number())
                       : rounds_seen;
  header_.checksum =
      checksum != nullptr && checksum->type() == JsonValue::Type::kString
          ? parse_hex_u64(checksum->as_string())
          : checksum_seen;
  pending_valid_ = false;
}

// ---------------------------------------------------------------------------
// File factory
// ---------------------------------------------------------------------------

std::unique_ptr<TraceSource> open_trace_source(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path, std::ios::binary | std::ios::in);
  if (!*file) throw TraceError("cannot open trace file: " + path);
  const int first = file->peek();
  if (first == std::istream::traits_type::eof()) {
    throw TraceError("empty trace file: " + path);
  }
  if (static_cast<char>(first) == trace_format::kMagic[0]) {
    return std::make_unique<BinaryTraceReader>(std::move(file));
  }
  if (static_cast<char>(first) == '{') {
    return std::make_unique<JsonlTraceReader>(std::move(file));
  }
  throw TraceError("unrecognized trace format: " + path);
}

}  // namespace dyngossip
