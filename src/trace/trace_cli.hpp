// The `dyngossip trace` subcommand family.
//
//   dyngossip trace record --out=T.dgt [--algo=..] [--n= --k= ..] [--json[=P]]
//   dyngossip trace replay --trace=T.dgt [--algo=..] [--json[=P]]
//   dyngossip trace info   --trace=T.dgt [--json[=P]]
//   dyngossip trace gen    --out=T.dgt --kind=sigma|churn|fresh|smoothed ...
//
// record runs one paper algorithm against a live adversary while teeing the
// schedule to a trace file; replay re-runs an algorithm against the recorded
// schedule (bit-identical payload when the flags match the recorded run —
// the flags are embedded in the trace metadata, so replay defaults to them);
// info summarizes a trace without replaying a run; gen synthesizes traces
// from the generator family (σ-stable churn, classic churn, fresh-graph,
// smoothed perturbation of a base trace).  Trace files ending in ".jsonl"
// use the text interchange codec; everything else is binary .dgt.
#pragma once

namespace dyngossip {

/// Entry point for `dyngossip trace ...` (argv[1] == "trace").  Returns a
/// process exit code (0 ok, 1 failed check, 2 usage error).
int trace_main(int argc, const char* const* argv);

}  // namespace dyngossip
