// Smoothed-perturbation adversary: replay a base trace, flip k pairs/round.
//
// The live counterpart of smooth_trace (trace_gen.hpp), following the
// smoothed-analysis model (Meir, Fineman & Newport; see PAPERS.md): each
// round of a fixed base schedule is independently perturbed by toggling
// `flips_per_round` uniformly random node pairs, then patched back to
// connectivity.  Same seed + same base ⇒ the exact graphs smooth_trace
// would have written — the registry's `smoothed:` family streams the
// perturbation instead of materializing an intermediate trace file.
//
// Oblivious by construction: the base schedule is on disk and the
// perturbation is a pure function of the seed and round number.
#pragma once

#include <memory>
#include <string>

#include "adversary/adversary.hpp"
#include "common/rng.hpp"
#include "trace/trace_gen.hpp"
#include "trace/trace_reader.hpp"

namespace dyngossip {

/// Replays a base schedule under per-round k-flip smoothing.  After the base
/// trace is exhausted the final perturbed graph is held frozen (mirroring
/// TraceAdversaryOptions::hold_last_graph), so longer runs can finish.
class SmoothedTraceAdversary final : public ObliviousAdversary {
 public:
  SmoothedTraceAdversary(std::unique_ptr<TraceSource> base,
                         const SmoothedTraceConfig& cfg);

  /// Convenience: opens `path` with open_trace_source.
  SmoothedTraceAdversary(const std::string& path, const SmoothedTraceConfig& cfg);

  [[nodiscard]] std::size_t num_nodes() const override;

  /// True once the base trace ran out and the final graph is being held.
  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }

 protected:
  [[nodiscard]] const Graph& next_graph(Round r) override;

 private:
  std::unique_ptr<TraceSource> base_;
  SmoothedTraceConfig cfg_;
  Rng rng_;
  Graph base_graph_;
  Graph current_;
  Round last_round_ = 0;
  bool exhausted_ = false;
};

}  // namespace dyngossip
