// Streaming trace writers (binary .dgt and JSONL interchange).
//
// A writer receives round graphs (or pre-computed deltas) one at a time and
// never holds more than the previous round's sorted edge list, so recording
// a 10⁵-round schedule costs O(max_r |E_r|) memory.  finish() seals the
// trace — the binary codec patches the round count and checksum into the
// header, the JSONL codec appends a trailer line — and further appends are
// rejected.  Destroying an unfinished writer finishes it.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "trace/trace_format.hpp"

namespace dyngossip {

/// Base streaming writer: owns the graph-to-delta diffing; codecs implement
/// the block encoding.
class TraceWriter {
 public:
  virtual ~TraceWriter() = default;

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends round (rounds_written()+1) as the delta from the previously
  /// appended graph (the first round diffs against the empty graph G_0).
  /// The graph must stay on n = header n nodes.
  void append_round(const Graph& g);

  /// Appends a pre-computed delta; both lists must be sorted ascending and
  /// disjoint, with every key's endpoints below n.  Callers that stream
  /// deltas (trace-to-trace transforms) use this to skip the diff.
  void append_delta(std::span<const EdgeKey> insertions,
                    std::span<const EdgeKey> removals);

  /// Seals the trace (idempotent).  No appends afterwards.  A file-backed
  /// writer staged by open_trace_writer also publishes its temporary file
  /// to the final path here (atomic rename), so a crash mid-recording
  /// leaves at worst a stale `.tmp` — never a truncated trace at the real
  /// path.
  void finish();

  /// Factory plumbing: registers tmp→final publication on finish().  `file`
  /// must be the writer's own stream, already open at `tmp_path`.
  void publish_on_finish(std::ofstream& file, std::string tmp_path,
                         std::string final_path);

  /// Rounds appended so far.
  [[nodiscard]] std::uint32_t rounds() const noexcept { return rounds_; }

  /// Delta-stream checksum folded so far (final once finish() ran).
  [[nodiscard]] std::uint64_t checksum() const noexcept { return checksum_.value(); }

  /// Node count this trace is over.
  [[nodiscard]] std::uint32_t num_nodes() const noexcept { return n_; }

 protected:
  TraceWriter(std::uint32_t n, std::uint64_t seed, std::string metadata)
      : n_(n), seed_(seed), metadata_(std::move(metadata)) {}

  /// Codec hook: encodes one round block (lists sorted, validated).
  virtual void write_block(std::span<const EdgeKey> insertions,
                           std::span<const EdgeKey> removals) = 0;

  /// Codec hook: seals the underlying stream.
  virtual void write_trailer() = 0;

  std::uint32_t n_;
  std::uint64_t seed_;
  std::string metadata_;

 private:
  /// Folds the checksum and emits the block (round bookkeeping shared by
  /// both append paths; prev_edges_ must already reflect the new round).
  void commit_delta(std::span<const EdgeKey> insertions,
                    std::span<const EdgeKey> removals);

  std::uint32_t rounds_ = 0;
  bool finished_ = false;
  std::ofstream* staged_file_ = nullptr;  ///< non-null: rename on finish()
  std::string tmp_path_;
  std::string final_path_;
  TraceChecksum checksum_;
  std::vector<EdgeKey> prev_edges_;  ///< sorted edges of the last round
  std::vector<EdgeKey> cur_edges_;   ///< diff scratch
  std::vector<EdgeKey> ins_scratch_;
  std::vector<EdgeKey> del_scratch_;
};

/// Binary .dgt codec over a seekable stream (rounds/checksum are patched
/// into the header by finish()).
class BinaryTraceWriter final : public TraceWriter {
 public:
  /// Writes the header to `out` immediately; the stream must outlive the
  /// writer and support seekp (files and stringstreams both do).
  BinaryTraceWriter(std::ostream& out, std::uint32_t n, std::uint64_t seed,
                    std::string metadata);
  /// File-owning variant (used by open_trace_writer).
  BinaryTraceWriter(std::unique_ptr<std::ofstream> file, std::uint32_t n,
                    std::uint64_t seed, std::string metadata);
  ~BinaryTraceWriter() override;

 protected:
  void write_block(std::span<const EdgeKey> insertions,
                   std::span<const EdgeKey> removals) override;
  void write_trailer() override;

 private:
  void write_header();

  std::unique_ptr<std::ofstream> owned_;  ///< set by the file ctor only
  std::ostream* out_;
  std::string block_scratch_;
};

/// JSONL codec: header object line, one {"r", "ins", "del"} line per round,
/// {"end"} trailer line.  Append-only (no seeks), diffable, greppable.
class JsonlTraceWriter final : public TraceWriter {
 public:
  JsonlTraceWriter(std::ostream& out, std::uint32_t n, std::uint64_t seed,
                   std::string metadata);
  JsonlTraceWriter(std::unique_ptr<std::ofstream> file, std::uint32_t n,
                   std::uint64_t seed, std::string metadata);
  ~JsonlTraceWriter() override;

 protected:
  void write_block(std::span<const EdgeKey> insertions,
                   std::span<const EdgeKey> removals) override;
  void write_trailer() override;

 private:
  void write_header();

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
};

/// Opens a file-backed writer, choosing the codec by extension: ".jsonl"
/// writes the text codec, anything else the binary codec.  Throws TraceError
/// when the file cannot be created.
[[nodiscard]] std::unique_ptr<TraceWriter> open_trace_writer(const std::string& path,
                                                             std::uint32_t n,
                                                             std::uint64_t seed,
                                                             std::string metadata);

}  // namespace dyngossip
