// Streaming trace readers (binary .dgt and JSONL interchange).
//
// A TraceSource yields one round delta at a time and applies it to a
// caller-owned Graph, so replaying a schedule never materializes more than
// the current topology.  Readers validate as they stream — truncation,
// malformed varints, out-of-range endpoints, inserting a live edge, or
// removing an absent one all raise TraceError — and after the final block
// verify the re-folded delta-stream checksum against the header, which
// certifies the replayed graphs are bit-identical to the recorded ones.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/runner/json.hpp"
#include "trace/trace_format.hpp"

namespace dyngossip {

/// Streaming source of round deltas (binary reader, JSONL reader, and any
/// future synthetic source share this interface; TraceAdversary and the
/// trace transforms consume it).
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Trace-wide metadata, available immediately after construction.
  [[nodiscard]] virtual const TraceHeader& header() const noexcept = 0;

  /// Applies round (rounds_read()+1)'s delta to g and returns true, or
  /// returns false when the trace is exhausted (checksum verified by then).
  /// g must be the graph produced by the previous next_round calls —
  /// initially an empty graph on header().n nodes.  Throws TraceError on
  /// malformed input or a delta inconsistent with g.
  virtual bool next_round(Graph& g) = 0;

  /// Rounds applied so far.
  [[nodiscard]] virtual Round rounds_read() const noexcept = 0;

  /// Sizes of the delta the most recent next_round applied (0 before the
  /// first round).  Σ insertions over a trace is the schedule's TC(E).
  [[nodiscard]] virtual std::size_t last_insertions() const noexcept = 0;
  [[nodiscard]] virtual std::size_t last_removals() const noexcept = 0;
};

/// Shared delta application + checksum verification for the two codecs.
///
/// The base drives a lookahead protocol so the checksum is verified eagerly
/// as part of applying the *last* block — a consumer that stops exactly at
/// the end of the trace (a replayed run of the recorded length) still gets
/// the bit-identity guarantee without a trailing next_round call.
class TraceReaderBase : public TraceSource {
 public:
  [[nodiscard]] const TraceHeader& header() const noexcept override {
    return header_;
  }
  [[nodiscard]] Round rounds_read() const noexcept override { return rounds_read_; }
  [[nodiscard]] std::size_t last_insertions() const noexcept override {
    return ins_scratch_.size();
  }
  [[nodiscard]] std::size_t last_removals() const noexcept override {
    return del_scratch_.size();
  }

  bool next_round(Graph& g) final;

 protected:
  /// Codec hook: true while another round block follows (a binary reader
  /// counts against the header, the JSONL reader inspects its lookahead).
  [[nodiscard]] virtual bool have_more_blocks() = 0;

  /// Codec hook: decodes the next round block (lists cleared by the caller;
  /// only called when have_more_blocks()).
  virtual void read_block(Round round, std::vector<EdgeKey>& insertions,
                          std::vector<EdgeKey>& removals) = 0;

  /// Codec hook: consumes and validates the trailer, filling in any header
  /// fields the codec only learns at the end (JSONL rounds/checksum).  The
  /// observed stream totals are passed so a codec whose trailer may omit
  /// them (hand-written JSONL from an external producer) can default to
  /// them instead of failing the base's cross-check.
  virtual void read_trailer(Round rounds_seen, std::uint64_t checksum_seen) = 0;

  TraceHeader header_;

 private:
  Round rounds_read_ = 0;
  bool finished_ = false;
  TraceChecksum checksum_;
  std::vector<EdgeKey> ins_scratch_;
  std::vector<EdgeKey> del_scratch_;
};

/// Binary .dgt reader.
class BinaryTraceReader final : public TraceReaderBase {
 public:
  /// Reads and validates the header; the stream must outlive the reader.
  /// Throws TraceError on bad magic, an unsupported version, or a trace
  /// whose writer never finished.
  explicit BinaryTraceReader(std::istream& in);
  /// File-owning variant (used by open_trace_source).
  explicit BinaryTraceReader(std::unique_ptr<std::ifstream> file);

 protected:
  [[nodiscard]] bool have_more_blocks() override;
  void read_block(Round round, std::vector<EdgeKey>& insertions,
                  std::vector<EdgeKey>& removals) override;
  void read_trailer(Round rounds_seen, std::uint64_t checksum_seen) override;

 private:
  void read_header();
  [[nodiscard]] std::uint64_t read_varint();
  void read_key_list(std::vector<EdgeKey>& out, std::size_t count);

  std::unique_ptr<std::ifstream> owned_;
  std::istream* in_;
  Round blocks_decoded_ = 0;
};

/// JSONL reader (the interchange codec's inverse).  header().rounds and
/// header().checksum are only final after the whole stream has been read —
/// the JSONL trailer carries them.
class JsonlTraceReader final : public TraceReaderBase {
 public:
  explicit JsonlTraceReader(std::istream& in);
  explicit JsonlTraceReader(std::unique_ptr<std::ifstream> file);

 protected:
  [[nodiscard]] bool have_more_blocks() override;
  void read_block(Round round, std::vector<EdgeKey>& insertions,
                  std::vector<EdgeKey>& removals) override;
  void read_trailer(Round rounds_seen, std::uint64_t checksum_seen) override;

 private:
  void read_header();
  /// Loads the next non-empty line into pending_ (null when EOF).
  void advance();

  std::unique_ptr<std::ifstream> owned_;
  std::istream* in_;
  JsonValue pending_;
  bool pending_valid_ = false;
};

/// Opens a trace file, sniffing the codec from the leading bytes ("DGT1"
/// selects the binary reader, '{' the JSONL reader).  Throws TraceError on
/// missing files or unrecognized content.
[[nodiscard]] std::unique_ptr<TraceSource> open_trace_source(const std::string& path);

}  // namespace dyngossip
