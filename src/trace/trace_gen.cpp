#include "trace/trace_gen.hpp"

#include "common/check.hpp"
#include "graph/connectivity.hpp"

namespace dyngossip {

void record_schedule(ObliviousAdversary& adversary, Round rounds, TraceWriter& out) {
  DG_CHECK(adversary.num_nodes() == out.num_nodes());
  for (Round r = 1; r <= rounds; ++r) {
    BroadcastRoundView view;
    view.round = r;
    out.append_round(adversary.broadcast_round(view));
  }
}

void generate_sigma_churn_trace(const SigmaStableChurnConfig& cfg, Round rounds,
                                TraceWriter& out) {
  SigmaStableChurnAdversary adversary(cfg);
  record_schedule(adversary, rounds, out);
}

void smooth_round(Graph& g, std::size_t flips, Rng& rng) {
  const std::size_t n = g.num_nodes();
  if (n < 2) return;
  for (std::size_t i = 0; i < flips; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    auto v = static_cast<NodeId>(rng.next_below(n - 1));
    if (v >= u) ++v;
    if (!g.add_edge(u, v)) g.remove_edge(u, v);
  }
  connect_components(g, rng);
}

void smooth_trace(TraceSource& base, const SmoothedTraceConfig& cfg,
                  TraceWriter& out) {
  const std::size_t n = base.header().n;
  DG_CHECK(n == out.num_nodes());
  Rng rng(cfg.seed);
  Graph base_graph(n);
  Graph perturbed(n);
  while (base.next_round(base_graph)) {
    perturbed = base_graph;
    smooth_round(perturbed, cfg.flips_per_round, rng);
    out.append_round(perturbed);
  }
}

}  // namespace dyngossip
