#include "trace/trace_format.hpp"

#include <cstdio>
#include <sstream>

#include "common/rng.hpp"

namespace dyngossip {

void TraceChecksum::fold(std::uint64_t x) noexcept {
  std::uint64_t mixed = state_ ^ x;
  state_ = splitmix64(mixed);
}

std::string checksum_hex(std::uint64_t checksum) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(checksum));
  return buf;
}

std::map<std::string, std::string> parse_trace_metadata(const std::string& metadata) {
  std::map<std::string, std::string> out;
  std::istringstream in(metadata);
  std::string item;
  while (in >> item) {
    const std::size_t eq = item.find('=');
    if (eq != std::string::npos && eq > 0) {
      out[item.substr(0, eq)] = item.substr(eq + 1);
    }
  }
  return out;
}

}  // namespace dyngossip
