#include "trace/trace_format.hpp"

#include <cstdio>

#include "common/rng.hpp"

namespace dyngossip {

void TraceChecksum::fold(std::uint64_t x) noexcept {
  std::uint64_t mixed = state_ ^ x;
  state_ = splitmix64(mixed);
}

std::string checksum_hex(std::uint64_t checksum) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(checksum));
  return buf;
}

}  // namespace dyngossip
