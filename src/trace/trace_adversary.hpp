// Trace-backed adversaries: record any schedule, replay any trace.
//
// TraceRecorder decorates an existing Adversary and tees every round graph
// it produces to a TraceWriter — the decorated adversary is unaware, the
// engine sees the exact same Graph references, and the run's metrics are
// untouched.  TraceAdversary replays a persisted schedule through either
// engine: it applies each round's delta to a single reused Graph, so a
// replayed round costs O(|Δ_r|) with no per-round allocation beyond the
// decoder scratch, and the reader's checksum verification certifies the
// replayed graphs are bit-identical to the recorded ones.
#pragma once

#include <memory>
#include <string>

#include "adversary/adversary.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"

namespace dyngossip {

/// Adversary decorator that records the wrapped adversary's schedule.
///
/// Works for both engine models; each round's graph is diffed and appended
/// by the writer as it is produced.  The caller finishes the writer (or
/// lets its destructor do so) after the run.
class TraceRecorder final : public Adversary {
 public:
  /// Neither reference is owned; both must outlive the recorder.
  TraceRecorder(Adversary& inner, TraceWriter& writer)
      : inner_(inner), writer_(writer) {}

  [[nodiscard]] std::size_t num_nodes() const override { return inner_.num_nodes(); }

  [[nodiscard]] const Graph& broadcast_round(const BroadcastRoundView& view) override {
    const Graph& g = inner_.broadcast_round(view);
    writer_.append_round(g);
    return g;
  }

  [[nodiscard]] const Graph& unicast_round(const UnicastRoundView& view) override {
    const Graph& g = inner_.unicast_round(view);
    writer_.append_round(g);
    return g;
  }

 private:
  Adversary& inner_;
  TraceWriter& writer_;
};

/// Behaviour when a run outlives its trace.
struct TraceAdversaryOptions {
  /// Keep serving the final recorded graph after the trace is exhausted
  /// (lets a longer-running algorithm finish against a frozen topology).
  /// When false, stepping past the end is a DG_CHECK failure.
  bool hold_last_graph = true;
};

/// Replays a recorded schedule.  Oblivious by construction: the sequence was
/// committed before the run (it is on disk), so the replay ignores all
/// adversary views — which also makes one trace replayable against any
/// algorithm in either engine model.
class TraceAdversary final : public ObliviousAdversary {
 public:
  explicit TraceAdversary(std::unique_ptr<TraceSource> source,
                          TraceAdversaryOptions opts = {});

  /// Convenience: opens `path` with open_trace_source.
  explicit TraceAdversary(const std::string& path, TraceAdversaryOptions opts = {});

  [[nodiscard]] std::size_t num_nodes() const override;

  /// Trace metadata (see TraceSource::header on JSONL field availability).
  [[nodiscard]] const TraceHeader& trace_header() const noexcept {
    return source_->header();
  }

  /// Rounds replayed from the trace so far.
  [[nodiscard]] Round rounds_replayed() const noexcept {
    return source_->rounds_read();
  }

  /// True once the trace ran out and the final graph is being held.
  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }

 protected:
  [[nodiscard]] const Graph& next_graph(Round r) override;

 private:
  std::unique_ptr<TraceSource> source_;
  TraceAdversaryOptions opts_;
  Graph current_;
  Round last_round_ = 0;
  bool exhausted_ = false;
};

}  // namespace dyngossip
