// The .dgt dynamic-graph trace format.
//
// A trace is a persisted dynamic-network schedule: the sequence of round
// graphs G_1..G_R an adversary produced (or a generator synthesized), stored
// as per-round edge *deltas* so that recording and replaying never
// materialize more than one round's topology.  The binary layout is
//
//   header   "DGT1"  u16 version  u16 reserved  u32 n  u32 rounds
//            u64 seed  u64 checksum  u32 meta_len  meta bytes
//   blocks   one per round r = 1..rounds:
//              varint ins_count, varint del_count,
//              ins_count varint-delta edge keys (sorted ascending),
//              del_count varint-delta edge keys (sorted ascending)
//   trailer  "DGTE"
//
// `rounds` and `checksum` are patched when the writer finishes (both are
// sentinel values while a trace is being streamed), so an interrupted write
// is detectable.  Edge keys are the canonical (lo << 32 | hi) packing of
// common/types.hpp; sorted keys make consecutive deltas small, so the
// varint-delta coding stores a sparse round change in a handful of bytes.
//
// The checksum folds the entire delta stream (round numbers, counts, keys)
// through SplitMix64.  Two traces with equal checksums and headers replay to
// bit-identical round graphs; the reader re-folds while streaming and
// verifies against the header after the last block.
//
// A JSONL text codec for interchange lives in trace_writer/trace_reader
// (same header fields, one object per round); readers sniff the magic bytes
// to pick the codec.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace dyngossip {

/// Raised on malformed, truncated, or checksum-divergent trace input.
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Trace-wide metadata (binary header / JSONL first line).
struct TraceHeader {
  std::uint32_t n = 0;        ///< node count of every round graph
  std::uint32_t rounds = 0;   ///< number of round blocks
  std::uint64_t seed = 0;     ///< generator seed (0 when not applicable)
  std::uint64_t checksum = 0; ///< SplitMix64 fold of the delta stream
  std::string metadata;       ///< free-form generator description
};

namespace trace_format {

inline constexpr char kMagic[4] = {'D', 'G', 'T', '1'};
inline constexpr char kEndMagic[4] = {'D', 'G', 'T', 'E'};
inline constexpr std::uint16_t kVersion = 1;
/// Header value of `rounds` / `checksum` before the writer finishes.
inline constexpr std::uint32_t kUnfinishedRounds = 0xffffffffu;
/// Byte offsets of the patched header fields.
inline constexpr std::size_t kRoundsOffset = 12;
inline constexpr std::size_t kChecksumOffset = 24;
/// Metadata strings are capped so a corrupt length field cannot force a
/// gigabyte allocation before the checksum has a chance to catch it.
inline constexpr std::uint32_t kMaxMetadataBytes = 1u << 20;
/// Node-count sanity cap for the same reason: replay materializes Graph(n)
/// (n adjacency vectors) before the first delta is validated, so a corrupt
/// or hostile header n must be rejected up front.  16.7M nodes is orders of
/// magnitude above the n ~ 10⁴ scale the engines run.
inline constexpr std::uint32_t kMaxNodes = 1u << 24;

}  // namespace trace_format

/// Streaming SplitMix64 fold over the delta stream; writer and reader run
/// the same sequence so equality certifies bit-identical round graphs.
class TraceChecksum {
 public:
  /// Folds one 64-bit word.
  void fold(std::uint64_t x) noexcept;

  /// Folds a full round delta: round number, counts, then every key.
  void fold_round(std::uint32_t round, std::size_t ins_count,
                  std::size_t del_count) noexcept {
    fold(round);
    fold(ins_count);
    fold(del_count);
  }

  /// Current digest.
  [[nodiscard]] std::uint64_t value() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0x6479676f73736970ull;  // "dygossip"
};

/// Renders a checksum as the fixed-width hex string used in JSON payloads
/// (u64 does not round-trip through a JSON double).
[[nodiscard]] std::string checksum_hex(std::uint64_t checksum);

/// Parses the "key=value key=value ..." convention recorded traces use for
/// TraceHeader::metadata (tolerant: free-form foreign text yields an empty
/// or partial map, never an error).
[[nodiscard]] std::map<std::string, std::string> parse_trace_metadata(
    const std::string& metadata);

}  // namespace dyngossip
