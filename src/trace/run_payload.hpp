// Deterministic run-result payloads for `dyngossip trace` and the trace
// scenarios.
//
// A payload is every metric a run produced plus a SplitMix64 fold of all of
// them: two runs are bit-identical iff their payload checksums match, so
// record-vs-replay checks (CI, the trace_replay scenario, sweep rows) can
// compare one 64-bit value instead of diffing full JSON documents.  The run
// dispatch itself lives in the algorithm registry (algo/registry.hpp):
// run_algo(spec, ctx, adversary) is the single entry point the CLI, the
// scenarios, and the record→replay probe below all share.
#pragma once

#include <cstdint>
#include <string>

#include "adversary/adversary.hpp"
#include "algo/registry.hpp"
#include "sim/config.hpp"
#include "sim/runner/json.hpp"

namespace dyngossip {

/// SplitMix64 fold of (n, k, completion, rounds, every message counter).
[[nodiscard]] std::uint64_t run_payload_checksum(std::size_t n, std::uint64_t k,
                                                 const RunResult& r);

/// Full machine-readable record, checksum included.  `algo` is the
/// canonical algorithm spec string (AlgoSpec::to_string()).
[[nodiscard]] JsonValue run_payload_json(const std::string& algo, std::size_t n,
                                         std::uint64_t k, const RunResult& r);

/// Outcome of one in-memory record→replay round trip (see
/// record_replay_probe).
struct RecordReplayProbe {
  std::uint64_t k = 0;              ///< realized token count
  Round rounds = 0;                 ///< rounds of the recorded run
  Round trace_rounds = 0;           ///< rounds the writer captured
  std::size_t trace_bytes = 0;      ///< encoded trace size
  std::uint64_t recorded_checksum = 0;  ///< payload checksum, live run
  std::uint64_t replayed_checksum = 0;  ///< payload checksum, replayed run
  bool completed = false;           ///< live run finished dissemination
};

/// Runs `spec` (through the algorithm registry) against `live` while teeing
/// the schedule to an in-memory binary trace, then replays the trace
/// through TraceAdversary and re-runs the same algorithm off the reader.
/// Equal checksums certify the whole trace pipeline reproduced the run
/// bit-identically (the trace_replay scenario's regression probe).  `ctx`
/// is copied per run so both executions start from the same inputs.
[[nodiscard]] RecordReplayProbe record_replay_probe(const AlgoSpec& spec,
                                                    const AlgoBuildContext& ctx,
                                                    Adversary& live,
                                                    std::uint64_t trace_seed);

}  // namespace dyngossip
