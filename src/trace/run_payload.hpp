// Deterministic run-result payloads and the shared run dispatch used by
// `dyngossip trace` and the trace scenarios.
//
// A payload is every metric a run produced plus a SplitMix64 fold of all of
// them: two runs are bit-identical iff their payload checksums match, so
// record-vs-replay checks (CI, the trace_replay scenario, sweep rows) can
// compare one 64-bit value instead of diffing full JSON documents.  The
// dispatch (TracedRunSpec → run) lives here too so the CLI and the
// scenarios build identical runs — in particular the multi_source
// token-splitting rule exists exactly once.
#pragma once

#include <cstdint>
#include <string>

#include "adversary/adversary.hpp"
#include "sim/config.hpp"
#include "sim/runner/json.hpp"

namespace dyngossip {

/// SplitMix64 fold of (n, k, completion, rounds, every message counter).
[[nodiscard]] std::uint64_t run_payload_checksum(std::size_t n, std::uint64_t k,
                                                 const RunResult& r);

/// Full machine-readable record, checksum included.
[[nodiscard]] JsonValue run_payload_json(const std::string& algo, std::size_t n,
                                         std::uint64_t k, const RunResult& r);

/// Algorithm side of a traced run (parsed from CLI flags or built by a
/// scenario row).
struct TracedRunSpec {
  std::string algo = "single_source";  ///< single_source | multi_source
  std::size_t n = 64;
  std::uint32_t k = 128;
  std::size_t sources = 4;  ///< multi_source: evenly spaced source nodes
  Round cap = 0;            ///< 0: derive 200·n·k
};

/// Runs the spec'd algorithm against `adversary`.  multi_source places
/// min(sources, n) sources at nodes i·(n/s) with k/s tokens each; *k_out
/// receives the realized token count (k rounded down to s·(k/s)).
[[nodiscard]] RunResult run_traced_algo(const TracedRunSpec& spec,
                                        Adversary& adversary, std::uint64_t* k_out);

/// Outcome of one in-memory record→replay round trip (see
/// record_replay_probe).
struct RecordReplayProbe {
  std::uint64_t k = 0;              ///< realized token count
  Round rounds = 0;                 ///< rounds of the recorded run
  Round trace_rounds = 0;           ///< rounds the writer captured
  std::size_t trace_bytes = 0;      ///< encoded trace size
  std::uint64_t recorded_checksum = 0;  ///< payload checksum, live run
  std::uint64_t replayed_checksum = 0;  ///< payload checksum, replayed run
  bool completed = false;           ///< live run finished dissemination
};

/// Runs the spec'd algorithm against `live` while teeing the schedule to an
/// in-memory binary trace, then replays the trace through TraceAdversary
/// and re-runs the same algorithm off the reader.  Equal checksums certify
/// the whole trace pipeline reproduced the run bit-identically (the
/// trace_replay scenario's regression probe).
[[nodiscard]] RecordReplayProbe record_replay_probe(const TracedRunSpec& spec,
                                                    Adversary& live,
                                                    std::uint64_t trace_seed);

}  // namespace dyngossip
