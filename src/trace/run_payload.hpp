// Deterministic run-result payloads and the shared run dispatch used by
// `dyngossip trace` and the trace scenarios.
//
// A payload is every metric a run produced plus a SplitMix64 fold of all of
// them: two runs are bit-identical iff their payload checksums match, so
// record-vs-replay checks (CI, the trace_replay scenario, sweep rows) can
// compare one 64-bit value instead of diffing full JSON documents.  The
// dispatch (TracedRunSpec → run) lives here too so the CLI and the
// scenarios build identical runs — in particular the multi_source
// token-splitting rule exists exactly once.
#pragma once

#include <cstdint>
#include <string>

#include "adversary/adversary.hpp"
#include "sim/config.hpp"
#include "sim/runner/json.hpp"

namespace dyngossip {

/// SplitMix64 fold of (n, k, completion, rounds, every message counter).
[[nodiscard]] std::uint64_t run_payload_checksum(std::size_t n, std::uint64_t k,
                                                 const RunResult& r);

/// Full machine-readable record, checksum included.
[[nodiscard]] JsonValue run_payload_json(const std::string& algo, std::size_t n,
                                         std::uint64_t k, const RunResult& r);

/// Algorithm side of a traced run (parsed from CLI flags or built by a
/// scenario row).
struct TracedRunSpec {
  std::string algo = "single_source";  ///< single_source | multi_source
  std::size_t n = 64;
  std::uint32_t k = 128;
  std::size_t sources = 4;  ///< multi_source: evenly spaced source nodes
  Round cap = 0;            ///< 0: derive 200·n·k
};

/// Runs the spec'd algorithm against `adversary`.  multi_source places
/// min(sources, n) sources at nodes i·(n/s) with k/s tokens each; *k_out
/// receives the realized token count (k rounded down to s·(k/s)).
[[nodiscard]] RunResult run_traced_algo(const TracedRunSpec& spec,
                                        Adversary& adversary, std::uint64_t* k_out);

}  // namespace dyngossip
