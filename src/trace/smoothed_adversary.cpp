#include "trace/smoothed_adversary.hpp"

#include "common/check.hpp"
#include "trace/trace_format.hpp"

namespace dyngossip {

SmoothedTraceAdversary::SmoothedTraceAdversary(std::unique_ptr<TraceSource> base,
                                               const SmoothedTraceConfig& cfg)
    : base_(std::move(base)),
      cfg_(cfg),
      rng_(cfg.seed),
      base_graph_(base_->header().n),
      current_(base_->header().n) {}

SmoothedTraceAdversary::SmoothedTraceAdversary(const std::string& path,
                                               const SmoothedTraceConfig& cfg)
    : SmoothedTraceAdversary(open_trace_source(path), cfg) {}

std::size_t SmoothedTraceAdversary::num_nodes() const {
  return base_->header().n;
}

const Graph& SmoothedTraceAdversary::next_graph(Round r) {
  DG_CHECK(r == last_round_ + 1);
  last_round_ = r;
  if (!exhausted_) {
    if (base_->next_round(base_graph_)) {
      current_ = base_graph_;
      smooth_round(current_, cfg_.flips_per_round, rng_);
    } else {
      if (r == 1) {
        // User-supplied data, so a recoverable error, not an invariant.
        throw TraceError("smoothed base trace holds no rounds");
      }
      exhausted_ = true;
    }
  }
  return current_;
}

}  // namespace dyngossip
