#include "trace/trace_adversary.hpp"

#include "common/check.hpp"

namespace dyngossip {

TraceAdversary::TraceAdversary(std::unique_ptr<TraceSource> source,
                               TraceAdversaryOptions opts)
    : source_(std::move(source)),
      opts_(opts),
      current_(source_->header().n) {
  DG_CHECK(source_ != nullptr);
}

TraceAdversary::TraceAdversary(const std::string& path, TraceAdversaryOptions opts)
    : TraceAdversary(open_trace_source(path), opts) {}

std::size_t TraceAdversary::num_nodes() const { return source_->header().n; }

const Graph& TraceAdversary::next_graph(Round r) {
  DG_CHECK(r == last_round_ + 1);
  last_round_ = r;
  if (!exhausted_ && !source_->next_round(current_)) exhausted_ = true;
  if (exhausted_) {
    DG_CHECK(opts_.hold_last_graph && "run stepped past the end of its trace");
  }
  return current_;
}

}  // namespace dyngossip
