#include "trace/trace_adversary.hpp"

#include "common/check.hpp"

namespace dyngossip {

TraceAdversary::TraceAdversary(std::unique_ptr<TraceSource> source,
                               TraceAdversaryOptions opts)
    : source_(std::move(source)),
      opts_(opts),
      current_(source_->header().n) {
  DG_CHECK(source_ != nullptr);
}

TraceAdversary::TraceAdversary(const std::string& path, TraceAdversaryOptions opts)
    : TraceAdversary(open_trace_source(path), opts) {}

std::size_t TraceAdversary::num_nodes() const { return source_->header().n; }

const Graph& TraceAdversary::next_graph(Round r) {
  DG_CHECK(r == last_round_ + 1);
  last_round_ = r;
  if (!exhausted_ && !source_->next_round(current_)) exhausted_ = true;
  if (exhausted_ && !opts_.hold_last_graph) {
    // A recoverable input problem, not a programming error: the recording is
    // shorter than this run needs.  Surface a fix instead of aborting.
    throw TraceError(
        "run stepped past the end of its trace at round " + std::to_string(r) +
        " (recording holds " + std::to_string(source_->rounds_read()) +
        " rounds); re-record with a higher --cap, or replay with "
        "hold_last_graph to freeze the final topology");
  }
  return current_;
}

}  // namespace dyngossip
