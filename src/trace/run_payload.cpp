#include "trace/run_payload.hpp"

#include <memory>
#include <sstream>

#include "trace/trace_adversary.hpp"
#include "trace/trace_format.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"

namespace dyngossip {

std::uint64_t run_payload_checksum(std::size_t n, std::uint64_t k,
                                   const RunResult& r) {
  TraceChecksum sum;
  sum.fold(n);
  sum.fold(k);
  sum.fold(r.completed ? 1 : 0);
  sum.fold(r.rounds);
  sum.fold(r.metrics.unicast.token);
  sum.fold(r.metrics.unicast.completeness);
  sum.fold(r.metrics.unicast.request);
  sum.fold(r.metrics.unicast.control);
  sum.fold(r.metrics.broadcasts);
  sum.fold(r.metrics.tc);
  sum.fold(r.metrics.deletions);
  sum.fold(r.metrics.learnings);
  sum.fold(r.metrics.duplicate_token_deliveries);
  return sum.value();
}

JsonValue run_payload_json(const std::string& algo, std::size_t n, std::uint64_t k,
                           const RunResult& r) {
  auto num = [](std::uint64_t v) { return JsonValue::number(static_cast<double>(v)); };
  JsonValue doc = JsonValue::object();
  doc.set("algo", JsonValue::str(algo));
  doc.set("n", num(n));
  doc.set("k", num(k));
  doc.set("completed", JsonValue::boolean(r.completed));
  doc.set("status", JsonValue::str(run_status_name(r.metrics.status)));
  doc.set("coverage", JsonValue::number(r.metrics.coverage));
  doc.set("rounds", num(r.rounds));
  JsonValue unicast = JsonValue::object();
  unicast.set("token", num(r.metrics.unicast.token));
  unicast.set("completeness", num(r.metrics.unicast.completeness));
  unicast.set("request", num(r.metrics.unicast.request));
  unicast.set("control", num(r.metrics.unicast.control));
  unicast.set("total", num(r.metrics.unicast.total()));
  doc.set("unicast", std::move(unicast));
  doc.set("broadcasts", num(r.metrics.broadcasts));
  doc.set("tc", num(r.metrics.tc));
  doc.set("deletions", num(r.metrics.deletions));
  doc.set("learnings", num(r.metrics.learnings));
  doc.set("duplicate_token_deliveries", num(r.metrics.duplicate_token_deliveries));
  doc.set("checksum", JsonValue::str(checksum_hex(run_payload_checksum(n, k, r))));
  return doc;
}

RecordReplayProbe record_replay_probe(const AlgoSpec& spec,
                                      const AlgoBuildContext& ctx, Adversary& live,
                                      std::uint64_t trace_seed) {
  RecordReplayProbe probe;

  // Record: live adversary, schedule teed to an in-memory binary trace.
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  {
    BinaryTraceWriter writer(buffer, static_cast<std::uint32_t>(ctx.n),
                             trace_seed, spec.to_string());
    TraceRecorder recorder(live, writer);
    AlgoBuildContext run_ctx = ctx;
    const RunResult recorded = run_algo(spec, run_ctx, recorder);
    writer.finish();
    probe.k = run_ctx.k_realized;
    probe.rounds = recorded.rounds;
    probe.trace_rounds = writer.rounds();
    probe.completed = recorded.completed;
    probe.recorded_checksum =
        run_payload_checksum(ctx.n, run_ctx.k_realized, recorded);
  }
  // tellp sits at the end after finish(); str() would copy the whole trace.
  probe.trace_bytes = static_cast<std::size_t>(buffer.tellp());

  // Replay: same algorithm, schedule served from the trace reader.
  {
    buffer.seekg(0);
    TraceAdversary adversary(std::make_unique<BinaryTraceReader>(buffer));
    AlgoBuildContext run_ctx = ctx;
    const RunResult replayed = run_algo(spec, run_ctx, adversary);
    probe.replayed_checksum =
        run_payload_checksum(ctx.n, run_ctx.k_realized, replayed);
  }
  return probe;
}

}  // namespace dyngossip
