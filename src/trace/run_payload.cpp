#include "trace/run_payload.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "core/tokens.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_adversary.hpp"
#include "trace/trace_format.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"

namespace dyngossip {

std::uint64_t run_payload_checksum(std::size_t n, std::uint64_t k,
                                   const RunResult& r) {
  TraceChecksum sum;
  sum.fold(n);
  sum.fold(k);
  sum.fold(r.completed ? 1 : 0);
  sum.fold(r.rounds);
  sum.fold(r.metrics.unicast.token);
  sum.fold(r.metrics.unicast.completeness);
  sum.fold(r.metrics.unicast.request);
  sum.fold(r.metrics.unicast.control);
  sum.fold(r.metrics.broadcasts);
  sum.fold(r.metrics.tc);
  sum.fold(r.metrics.deletions);
  sum.fold(r.metrics.learnings);
  sum.fold(r.metrics.duplicate_token_deliveries);
  return sum.value();
}

JsonValue run_payload_json(const std::string& algo, std::size_t n, std::uint64_t k,
                           const RunResult& r) {
  auto num = [](std::uint64_t v) { return JsonValue::number(static_cast<double>(v)); };
  JsonValue doc = JsonValue::object();
  doc.set("algo", JsonValue::str(algo));
  doc.set("n", num(n));
  doc.set("k", num(k));
  doc.set("completed", JsonValue::boolean(r.completed));
  doc.set("rounds", num(r.rounds));
  JsonValue unicast = JsonValue::object();
  unicast.set("token", num(r.metrics.unicast.token));
  unicast.set("completeness", num(r.metrics.unicast.completeness));
  unicast.set("request", num(r.metrics.unicast.request));
  unicast.set("control", num(r.metrics.unicast.control));
  unicast.set("total", num(r.metrics.unicast.total()));
  doc.set("unicast", std::move(unicast));
  doc.set("broadcasts", num(r.metrics.broadcasts));
  doc.set("tc", num(r.metrics.tc));
  doc.set("deletions", num(r.metrics.deletions));
  doc.set("learnings", num(r.metrics.learnings));
  doc.set("duplicate_token_deliveries", num(r.metrics.duplicate_token_deliveries));
  doc.set("checksum", JsonValue::str(checksum_hex(run_payload_checksum(n, k, r))));
  return doc;
}

RunResult run_traced_algo(const TracedRunSpec& spec, Adversary& adversary,
                          std::uint64_t* k_out) {
  DG_CHECK(spec.algo == "single_source" || spec.algo == "multi_source");
  const Round cap =
      spec.cap > 0
          ? spec.cap
          : static_cast<Round>(200ull * spec.n * std::max<std::uint32_t>(spec.k, 1));
  if (spec.algo == "single_source") {
    *k_out = spec.k;
    return run_single_source(spec.n, spec.k, /*source=*/0, adversary, cap);
  }
  const std::size_t s = std::min(std::max<std::size_t>(1, spec.sources), spec.n);
  std::vector<TokenSpace::SourceSpec> specs;
  specs.reserve(s);
  for (std::size_t i = 0; i < s; ++i) {
    specs.push_back(
        {static_cast<NodeId>(i * (spec.n / s)),
         std::max<std::uint32_t>(1, spec.k / static_cast<std::uint32_t>(s))});
  }
  const auto space = std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
  *k_out = space->total_tokens();
  return run_multi_source(spec.n, space, adversary, cap);
}

RecordReplayProbe record_replay_probe(const TracedRunSpec& spec, Adversary& live,
                                      std::uint64_t trace_seed) {
  RecordReplayProbe probe;

  // Record: live adversary, schedule teed to an in-memory binary trace.
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  {
    BinaryTraceWriter writer(buffer, static_cast<std::uint32_t>(spec.n),
                             trace_seed, spec.algo);
    TraceRecorder recorder(live, writer);
    std::uint64_t k_realized = 0;
    const RunResult recorded = run_traced_algo(spec, recorder, &k_realized);
    writer.finish();
    probe.k = k_realized;
    probe.rounds = recorded.rounds;
    probe.trace_rounds = writer.rounds();
    probe.completed = recorded.completed;
    probe.recorded_checksum = run_payload_checksum(spec.n, k_realized, recorded);
  }
  // tellp sits at the end after finish(); str() would copy the whole trace.
  probe.trace_bytes = static_cast<std::size_t>(buffer.tellp());

  // Replay: same algorithm, schedule served from the trace reader.
  {
    buffer.seekg(0);
    TraceAdversary adversary(std::make_unique<BinaryTraceReader>(buffer));
    std::uint64_t k_realized = 0;
    const RunResult replayed = run_traced_algo(spec, adversary, &k_realized);
    probe.replayed_checksum = run_payload_checksum(spec.n, k_realized, replayed);
  }
  return probe;
}

}  // namespace dyngossip
