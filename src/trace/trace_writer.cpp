#include "trace/trace_writer.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"
#include "sim/runner/json.hpp"

namespace dyngossip {

namespace {

void append_u16(std::string& buf, std::uint16_t v) {
  buf.push_back(static_cast<char>(v & 0xff));
  buf.push_back(static_cast<char>((v >> 8) & 0xff));
}

void append_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_varint(std::string& buf, std::uint64_t v) {
  while (v >= 0x80) {
    buf.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf.push_back(static_cast<char>(v));
}

/// Appends a sorted key list as absolute-first, delta-rest varints.
void append_key_list(std::string& buf, std::span<const EdgeKey> keys) {
  EdgeKey prev = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    append_varint(buf, i == 0 ? keys[i] : keys[i] - prev);
    prev = keys[i];
  }
}

void check_writable(const std::ostream& out) {
  if (!out.good()) throw TraceError("trace write failed (stream error)");
}

}  // namespace

void TraceWriter::append_round(const Graph& g) {
  DG_CHECK(g.num_nodes() == n_);
  cur_edges_.clear();
  g.for_each_edge([this](EdgeKey key) { cur_edges_.push_back(key); });
  std::sort(cur_edges_.begin(), cur_edges_.end());

  ins_scratch_.clear();
  del_scratch_.clear();
  std::set_difference(cur_edges_.begin(), cur_edges_.end(), prev_edges_.begin(),
                      prev_edges_.end(), std::back_inserter(ins_scratch_));
  std::set_difference(prev_edges_.begin(), prev_edges_.end(), cur_edges_.begin(),
                      cur_edges_.end(), std::back_inserter(del_scratch_));
  // The diff already produced the new edge set; no re-merge needed.
  std::swap(prev_edges_, cur_edges_);
  commit_delta(ins_scratch_, del_scratch_);
}

void TraceWriter::append_delta(std::span<const EdgeKey> insertions,
                               std::span<const EdgeKey> removals) {
  // Validate and apply the delta to the running edge set: removals must be
  // live, insertions absent, both sorted ascending with endpoints below n.
  auto validate = [this](std::span<const EdgeKey> keys) {
    EdgeKey prev = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      DG_CHECK(i == 0 || keys[i] > prev);
      const auto [lo, hi] = edge_endpoints(keys[i]);
      DG_CHECK(lo < hi && hi < n_);
      prev = keys[i];
    }
  };
  validate(insertions);
  validate(removals);

  // Merge prev - removals + insertions into cur (all three sorted).
  cur_edges_.clear();
  std::size_t d = 0;
  std::size_t a = 0;
  for (const EdgeKey live : prev_edges_) {
    while (a < insertions.size() && insertions[a] < live) {
      cur_edges_.push_back(insertions[a++]);
    }
    if (d < removals.size() && removals[d] == live) {
      ++d;
      continue;
    }
    DG_CHECK(a >= insertions.size() || insertions[a] != live);
    cur_edges_.push_back(live);
  }
  while (a < insertions.size()) cur_edges_.push_back(insertions[a++]);
  DG_CHECK(d == removals.size() && "removal of an edge not in the trace");
  std::swap(prev_edges_, cur_edges_);

  commit_delta(insertions, removals);
}

void TraceWriter::commit_delta(std::span<const EdgeKey> insertions,
                               std::span<const EdgeKey> removals) {
  DG_CHECK(!finished_ && "append after finish()");
  DG_CHECK(rounds_ < trace_format::kUnfinishedRounds - 1);
  ++rounds_;
  checksum_.fold_round(rounds_, insertions.size(), removals.size());
  for (const EdgeKey key : insertions) checksum_.fold(key);
  for (const EdgeKey key : removals) checksum_.fold(key);
  write_block(insertions, removals);
}

void TraceWriter::publish_on_finish(std::ofstream& file, std::string tmp_path,
                                    std::string final_path) {
  DG_CHECK(!finished_ && staged_file_ == nullptr);
  staged_file_ = &file;
  tmp_path_ = std::move(tmp_path);
  final_path_ = std::move(final_path);
}

void TraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  write_trailer();
  if (staged_file_ != nullptr) {
    // Publish atomically: the sealed trace appears at the final path in one
    // rename, so readers never observe a header without its trailer.
    std::ofstream* file = staged_file_;
    staged_file_ = nullptr;
    file->close();
    if (file->fail()) throw TraceError("trace close failed: " + tmp_path_);
    if (std::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
      throw TraceError("cannot publish trace: rename " + tmp_path_ + " -> " +
                       final_path_ + " failed");
    }
  }
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out, std::uint32_t n,
                                     std::uint64_t seed, std::string metadata)
    : TraceWriter(n, seed, std::move(metadata)), out_(&out) {
  write_header();
}

BinaryTraceWriter::BinaryTraceWriter(std::unique_ptr<std::ofstream> file,
                                     std::uint32_t n, std::uint64_t seed,
                                     std::string metadata)
    : TraceWriter(n, seed, std::move(metadata)),
      owned_(std::move(file)),
      out_(owned_.get()) {
  write_header();
}

BinaryTraceWriter::~BinaryTraceWriter() {
  try {
    finish();
  } catch (...) {  // a dtor must not throw; explicit finish() reports errors
  }
}

void BinaryTraceWriter::write_header() {
  DG_CHECK(metadata_.size() <= trace_format::kMaxMetadataBytes);
  std::string header;
  header.append(trace_format::kMagic, sizeof(trace_format::kMagic));
  append_u16(header, trace_format::kVersion);
  append_u16(header, 0);  // reserved
  append_u32(header, n_);
  append_u32(header, trace_format::kUnfinishedRounds);
  append_u64(header, seed_);
  append_u64(header, 0);  // checksum placeholder
  append_u32(header, static_cast<std::uint32_t>(metadata_.size()));
  header += metadata_;
  out_->write(header.data(), static_cast<std::streamsize>(header.size()));
  check_writable(*out_);
}

void BinaryTraceWriter::write_block(std::span<const EdgeKey> insertions,
                                    std::span<const EdgeKey> removals) {
  block_scratch_.clear();
  append_varint(block_scratch_, insertions.size());
  append_varint(block_scratch_, removals.size());
  append_key_list(block_scratch_, insertions);
  append_key_list(block_scratch_, removals);
  out_->write(block_scratch_.data(),
              static_cast<std::streamsize>(block_scratch_.size()));
  check_writable(*out_);
}

void BinaryTraceWriter::write_trailer() {
  out_->write(trace_format::kEndMagic, sizeof(trace_format::kEndMagic));
  check_writable(*out_);
  const std::ostream::pos_type end = out_->tellp();

  std::string patch;
  append_u32(patch, rounds());
  out_->seekp(static_cast<std::ostream::off_type>(trace_format::kRoundsOffset),
              std::ios::beg);
  out_->write(patch.data(), static_cast<std::streamsize>(patch.size()));

  patch.clear();
  append_u64(patch, checksum());
  out_->seekp(static_cast<std::ostream::off_type>(trace_format::kChecksumOffset),
              std::ios::beg);
  out_->write(patch.data(), static_cast<std::streamsize>(patch.size()));

  out_->seekp(end);
  out_->flush();
  check_writable(*out_);
}

// ---------------------------------------------------------------------------
// JSONL codec
// ---------------------------------------------------------------------------

namespace {

JsonValue edge_pairs(std::span<const EdgeKey> keys) {
  JsonValue list = JsonValue::array();
  for (const EdgeKey key : keys) {
    const auto [lo, hi] = edge_endpoints(key);
    JsonValue pair = JsonValue::array();
    pair.push(JsonValue::number(static_cast<double>(lo)));
    pair.push(JsonValue::number(static_cast<double>(hi)));
    list.push(std::move(pair));
  }
  return list;
}

}  // namespace

JsonlTraceWriter::JsonlTraceWriter(std::ostream& out, std::uint32_t n,
                                   std::uint64_t seed, std::string metadata)
    : TraceWriter(n, seed, std::move(metadata)), out_(&out) {
  write_header();
}

JsonlTraceWriter::JsonlTraceWriter(std::unique_ptr<std::ofstream> file,
                                   std::uint32_t n, std::uint64_t seed,
                                   std::string metadata)
    : TraceWriter(n, seed, std::move(metadata)),
      owned_(std::move(file)),
      out_(owned_.get()) {
  write_header();
}

JsonlTraceWriter::~JsonlTraceWriter() {
  try {
    finish();
  } catch (...) {
  }
}

void JsonlTraceWriter::write_header() {
  JsonValue header = JsonValue::object();
  header.set("dgt", JsonValue::number(trace_format::kVersion));
  header.set("n", JsonValue::number(static_cast<double>(n_)));
  header.set("seed", JsonValue::str(checksum_hex(seed_)));
  header.set("metadata", JsonValue::str(metadata_));
  *out_ << header.dump() << "\n";
  check_writable(*out_);
}

void JsonlTraceWriter::write_block(std::span<const EdgeKey> insertions,
                                   std::span<const EdgeKey> removals) {
  JsonValue line = JsonValue::object();
  line.set("r", JsonValue::number(static_cast<double>(rounds())));
  line.set("ins", edge_pairs(insertions));
  line.set("del", edge_pairs(removals));
  *out_ << line.dump() << "\n";
  check_writable(*out_);
}

void JsonlTraceWriter::write_trailer() {
  JsonValue line = JsonValue::object();
  line.set("end", JsonValue::boolean(true));
  line.set("rounds", JsonValue::number(static_cast<double>(rounds())));
  line.set("checksum", JsonValue::str(checksum_hex(checksum())));
  *out_ << line.dump() << "\n";
  out_->flush();
  check_writable(*out_);
}

// ---------------------------------------------------------------------------
// File factory
// ---------------------------------------------------------------------------

namespace {

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::unique_ptr<TraceWriter> open_trace_writer(const std::string& path,
                                               std::uint32_t n, std::uint64_t seed,
                                               std::string metadata) {
  // Stage into `<path>.tmp` and let finish() rename it into place: a crash
  // (or kill) mid-recording never leaves a truncated trace at `path`.
  const std::string tmp = path + ".tmp";
  auto file = std::make_unique<std::ofstream>(
      tmp, std::ios::binary | std::ios::trunc | std::ios::out);
  if (!*file) throw TraceError("cannot open trace file for writing: " + tmp);
  std::ofstream& stream = *file;
  std::unique_ptr<TraceWriter> writer;
  if (has_suffix(path, ".jsonl")) {
    writer = std::make_unique<JsonlTraceWriter>(std::move(file), n, seed,
                                                std::move(metadata));
  } else {
    writer = std::make_unique<BinaryTraceWriter>(std::move(file), n, seed,
                                                 std::move(metadata));
  }
  writer->publish_on_finish(stream, tmp, path);
  return writer;
}

}  // namespace dyngossip
