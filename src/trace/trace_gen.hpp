// Synthetic trace generation and trace-to-trace transforms.
//
// Three ways to make a schedule into data:
//   - record_schedule drives any oblivious adversary for a fixed horizon and
//     streams its round graphs to a writer (the offline counterpart of
//     wrapping a live run in TraceRecorder);
//   - generate_sigma_churn_trace persists the σ-interval-stable high-churn
//     family (adversary/sigma_stable.hpp) — the stress workload that keeps
//     request-based algorithms runnable at n = 10⁴;
//   - smooth_trace implements the smoothed-analysis model (Meir, Fineman &
//     Newport): each round of a *fixed* base schedule is independently
//     perturbed by flipping k random node pairs, then patched back to
//     connectivity, yielding the k-smoothed schedule as a new trace.
#pragma once

#include <cstdint>

#include "adversary/adversary.hpp"
#include "adversary/sigma_stable.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"

namespace dyngossip {

/// Streams `rounds` round graphs of an oblivious adversary to `out` (the
/// adversary is driven through its view-free path, so adaptive adversaries —
/// whose schedules are not data until a run exists — are not eligible; wrap
/// those in TraceRecorder instead).  Does not finish() the writer.
void record_schedule(ObliviousAdversary& adversary, Round rounds, TraceWriter& out);

/// Generates a σ-interval-stable churn trace (see SigmaStableChurnConfig).
/// Does not finish() the writer.
void generate_sigma_churn_trace(const SigmaStableChurnConfig& cfg, Round rounds,
                                TraceWriter& out);

/// Smoothed-schedule parameters.
struct SmoothedTraceConfig {
  std::size_t flips_per_round = 1;  ///< k: random pair flips per round
  std::uint64_t seed = 1;           ///< perturbation randomness
};

/// One smoothing step: toggles `flips` uniformly random node pairs of g
/// (absent edges inserted, present edges deleted), then patches
/// connectivity with random edges.  Shared by smooth_trace and the live
/// SmoothedTraceAdversary so both realize identical schedules per seed.
void smooth_round(Graph& g, std::size_t flips, Rng& rng);

/// Writes the k-smoothed perturbation of `base` to `out`: per round,
/// `flips_per_round` uniformly random node pairs are toggled (absent edges
/// inserted, present edges deleted), then connectivity is patched with
/// random edges.  Perturbations are independent across rounds, per the
/// smoothed-analysis model.  Does not finish() the writer.  Throws
/// TraceError when `base` is malformed.
void smooth_trace(TraceSource& base, const SmoothedTraceConfig& cfg, TraceWriter& out);

}  // namespace dyngossip
