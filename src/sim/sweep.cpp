#include "sim/sweep.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dyngossip {

Summary sweep_seeds(std::size_t trials, std::uint64_t base_seed,
                    const std::function<double(std::uint64_t)>& measure) {
  DG_CHECK(trials >= 1);
  std::vector<double> samples;
  samples.reserve(trials);
  std::uint64_t sm = base_seed;
  for (std::size_t i = 0; i < trials; ++i) {
    samples.push_back(measure(splitmix64(sm)));
  }
  return Summary::of(std::move(samples));
}

std::vector<std::size_t> geometric_grid(std::size_t lo, std::size_t hi,
                                        double factor) {
  DG_CHECK(lo >= 1 && factor > 1.0);
  std::vector<std::size_t> grid;
  double x = static_cast<double>(lo);
  while (static_cast<std::size_t>(x) <= hi) {
    const auto v = static_cast<std::size_t>(x);
    if (grid.empty() || grid.back() != v) grid.push_back(v);
    x *= factor;
  }
  if (grid.empty() || grid.back() != hi) grid.push_back(hi);
  return grid;
}

}  // namespace dyngossip
