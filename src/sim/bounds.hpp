// The paper's closed-form bounds and parameter formulas.
//
// Benches compare measured quantities against these predictions (shape, not
// constants), and Algorithm 2 derives its center count f and degree
// threshold γ from them.  All logs are base-2 and clamped at 1 (mathx).
#pragma once

#include <cstdint>

namespace dyngossip::bounds {

/// f = n^{1/2} k^{1/4} log^{5/4} n — Algorithm 2's expected center count
/// (clamped to [1, n]).
[[nodiscard]] double centers_f(std::size_t n, std::size_t k);

/// γ = n log n / f = n^{1/2} (k log n)^{-1/4} — the high-degree threshold.
[[nodiscard]] double degree_threshold_gamma(std::size_t n, std::size_t k);

/// s-threshold n^{2/3} log^{5/3} n below which Algorithm 2 skips phase 1.
[[nodiscard]] double source_threshold(std::size_t n);

/// ℓ = k^{1/4} n^{5/2} log^{9/4} n — Algorithm 2's phase-1 round bound.
[[nodiscard]] double phase1_round_bound(std::size_t n, std::size_t k);

/// L = n^4 log^5 n / f^3 — per-token walk length needed to hit a center whp.
[[nodiscard]] double walk_length_L(std::size_t n, std::size_t k);

/// Theorem 3.8 total messages: n^{5/2} k^{1/4} log^{5/4} n.
[[nodiscard]] double thm38_total_messages(std::size_t n, std::size_t k);

/// Table 1 amortized bound: n^{5/2} log^{5/4} n / k^{3/4}.
[[nodiscard]] double table1_amortized(std::size_t n, std::size_t k);

/// Theorem 3.1: the 1-adversary-competitive total n² + nk (single source).
[[nodiscard]] double single_source_messages(std::size_t n, std::size_t k);

/// Theorem 3.5: the 1-adversary-competitive total n²s + nk (multi source).
[[nodiscard]] double multi_source_messages(std::size_t n, std::size_t k,
                                           std::size_t s);

/// Theorems 3.4/3.6: the O(nk) round bound on 3-edge-stable graphs.
[[nodiscard]] double stable_round_bound(std::size_t n, std::size_t k);

/// Theorem 2.3: the amortized local-broadcast lower bound n² / log² n.
[[nodiscard]] double broadcast_lb_amortized(std::size_t n);

/// Flooding upper bound: n² amortized local broadcasts per token.
[[nodiscard]] double broadcast_ub_amortized(std::size_t n);

/// Static baseline amortized bound: n²/k + n.
[[nodiscard]] double static_amortized(std::size_t n, std::size_t k);

/// Lemma 2.2's broadcaster sparsity threshold n / (c log n).
[[nodiscard]] double sparse_broadcaster_threshold(std::size_t n, double c);

}  // namespace dyngossip::bounds
