#include "sim/runner/scenario_cli.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/registry.hpp"
#include "algo/registry.hpp"
#include "cache/cache_cli.hpp"
#include "cache/result_cache.hpp"
#include "common/cli.hpp"
#include "common/provenance.hpp"
#include "fault/fault_spec.hpp"
#include "metrics/accounting.hpp"
#include "serve/serve_cli.hpp"
#include "sim/runner/demo_registry.hpp"
#include "sim/runner/emit.hpp"
#include "sim/runner/parallel_sweep.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "telemetry/probe_spec.hpp"
#include "telemetry/round_probe.hpp"
#include "telemetry/timeline.hpp"
#include "trace/trace_cli.hpp"
#include "trace/trace_format.hpp"

namespace dyngossip {

namespace {

constexpr const char* kUsage =
    "usage: dyngossip <command> [flags]\n"
    "\n"
    "commands:\n"
    "  list [--json]                 list registered scenarios\n"
    "  adversaries [--json]          list registered adversary families\n"
    "  algorithms [--json]           list registered algorithm families\n"
    "  faults [--json]               describe the fault-injection spec grammar\n"
    "  probes [--json]               describe the probe (observability) spec\n"
    "                                grammar and the --timeline axis\n"
    "  version [--json]              print build provenance (git describe,\n"
    "                                compiler, build type, sanitizers)\n"
    "  run <scenario> [flags]        run one scenario\n"
    "      --threads=N   worker threads (0 = hardware, default)\n"
    "      --trials=T    trials per configuration (0 = scenario default)\n"
    "      --scale=S     grid size: quick | default | large (n ~ 10^4) |\n"
    "                    xlarge (n = 10^5, flagship scenarios)\n"
    "      --quick       alias for --scale=quick\n"
    "      --csv         CSV instead of aligned tables\n"
    "      --json[=PATH] machine-readable record (PATH or '-' for stdout)\n"
    "      --adversary=SPEC  run the scenario's algorithm against any\n"
    "                    registered adversary spec (see `adversaries`)\n"
    "      --trace=FILE  replay a recorded schedule: shorthand for\n"
    "                    --adversary=trace:file=FILE\n"
    "      --algo=SPEC   run any registered algorithm spec against the\n"
    "                    scenario's schedule (see `algorithms`)\n"
    "      --fault=SPEC  inject drop/crash/duplicate faults into every\n"
    "                    trial (see `faults`)\n"
    "      --trial-timeout=S  wall-clock budget per trial in seconds;\n"
    "                    over-budget trials report status=timeout\n"
    "      --probe=SPEC  emit per-round series from every instrumented\n"
    "                    trial (see `probes`); never perturbs the run\n"
    "      --timeline=FILE  write a chrome://tracing / Perfetto trace of\n"
    "                    rounds, phases, shard jobs, and pool queue waits\n"
    "      --cache=DIR   consult/fill the content-addressed result cache:\n"
    "                    warm re-runs serve trials from disk and skip to\n"
    "                    aggregation, byte-identical to a cold run\n"
    "      --<param>=v   scenario-specific parameter (see `list`)\n"
    "  demo <name> [flags]           run a narrated end-to-end demo\n"
    "      (see `dyngossip demo` for the catalogue)\n"
    "  trace <record|replay|info|gen> [flags]\n"
    "                                record, replay, inspect, or synthesize\n"
    "                                dynamic-network traces (.dgt / .jsonl)\n"
    "  cache <info|verify|gc> --dir=PATH [--json] [--all]\n"
    "                                inspect, validate, or prune the\n"
    "                                content-addressed result cache\n"
    "  serve --socket=PATH [flags]   long-running sweep service: accepts\n"
    "                                line-JSON sweep requests on a unix\n"
    "                                socket, schedules trials fairly across\n"
    "                                clients, streams result rows, shares\n"
    "                                the result cache\n"
    "  request --socket=PATH [flags] submit one sweep to a running server\n"
    "                                and print the streamed rows\n"
    "  speedup [--threads=N] [--trials=T] [--n=SIZE] [--min=X]\n"
    "                                time serial vs parallel sweep, verify\n"
    "                                bit-identity, print the ratio as JSON\n";

const char* kind_name(ParamSpec::Kind kind) {
  switch (kind) {
    case ParamSpec::Kind::kInt: return "int";
    case ParamSpec::Kind::kDouble: return "double";
    case ParamSpec::Kind::kBool: return "bool";
    case ParamSpec::Kind::kString: return "string";
  }
  return "?";
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

int cmd_list(const ScenarioRegistry& registry, const CliArgs& args) {
  args.allow_only({"json"}, "dyngossip list [--json]");
  if (args.get_bool("json", false)) {
    JsonValue doc = JsonValue::object();
    JsonValue scenarios = JsonValue::array();
    for (const Scenario* s : registry.list()) {
      JsonValue entry = JsonValue::object();
      entry.set("name", JsonValue::str(s->name));
      entry.set("description", JsonValue::str(s->description));
      JsonValue params = JsonValue::array();
      for (const ParamSpec& p : s->params) {
        JsonValue spec = JsonValue::object();
        spec.set("name", JsonValue::str(p.name));
        spec.set("kind", JsonValue::str(kind_name(p.kind)));
        spec.set("default", JsonValue::str(p.default_value));
        spec.set("help", JsonValue::str(p.help));
        params.push(std::move(spec));
      }
      entry.set("params", std::move(params));
      entry.set("adversary_axis", JsonValue::boolean(s->adversary_axis));
      entry.set("algo_axis", JsonValue::boolean(s->algo_axis));
      entry.set("fault_axis", JsonValue::boolean(s->fault_axis));
      scenarios.push(std::move(entry));
    }
    doc.set("scenarios", std::move(scenarios));
    std::cout << doc.dump(2) << "\n";
    return 0;
  }
  for (const Scenario* s : registry.list()) {
    std::printf("%-22s %s\n", s->name.c_str(), s->description.c_str());
    for (const ParamSpec& p : s->params) {
      std::printf("    --%s=<%s>  (default %s)  %s\n", p.name.c_str(),
                  kind_name(p.kind), p.default_value.c_str(), p.help.c_str());
    }
  }
  std::printf(
      "\nglobal run flags: --threads --trials --scale --quick --csv --json;\n"
      "scenarios listing --adversary/--trace accept any spec from\n"
      "`dyngossip adversaries` (e.g. --adversary=churn:rate=0.01 or\n"
      "--trace=run.dgt to replay a recording); scenarios listing --algo\n"
      "accept any spec from `dyngossip algorithms` (e.g. --algo=flooding:).\n");
  return 0;
}

int cmd_adversaries(const CliArgs& args) {
  args.allow_only({"json"}, "dyngossip adversaries [--json]");
  const AdversaryRegistry& registry = AdversaryRegistry::global();
  if (args.get_bool("json", false)) {
    JsonValue doc = JsonValue::object();
    JsonValue families = JsonValue::array();
    for (const AdversaryFamily* f : registry.list()) {
      JsonValue entry = JsonValue::object();
      entry.set("name", JsonValue::str(f->name));
      entry.set("description", JsonValue::str(f->description));
      entry.set("example", JsonValue::str(f->example));
      JsonValue keys = JsonValue::array();
      for (const AdversaryKeySpec& k : f->keys) {
        JsonValue spec = JsonValue::object();
        spec.set("key", JsonValue::str(k.key));
        spec.set("kind", JsonValue::str(adversary_key_kind_name(k.kind)));
        spec.set("default", JsonValue::str(k.default_value));
        spec.set("help", JsonValue::str(k.help));
        keys.push(std::move(spec));
      }
      entry.set("keys", std::move(keys));
      entry.set("needs_run_context", JsonValue::boolean(f->needs_run_context));
      families.push(std::move(entry));
    }
    doc.set("families", std::move(families));
    std::cout << doc.dump(2) << "\n";
    return 0;
  }
  std::printf("adversary spec grammar: family[:key=value[,key=value...]]\n\n");
  for (const AdversaryFamily* f : registry.list()) {
    std::printf("%-10s %s\n           e.g. %s\n", f->name.c_str(),
                f->description.c_str(), f->example.c_str());
    if (f->needs_run_context) {
      std::printf("           NOTE: buildable but not spec-replayable — the "
                  "factory needs the\n           run's initial knowledge; to "
                  "reproduce a schedule, record it and\n           replay "
                  "through trace:file=\n");
    }
    for (const AdversaryKeySpec& k : f->keys) {
      std::printf("    %s=<%s>  (default %s)  %s\n", k.key.c_str(),
                  adversary_key_kind_name(k.kind), k.default_value.c_str(),
                  k.help.c_str());
    }
  }
  std::printf(
      "\nUse with any axis-capable scenario:  dyngossip run <scenario>\n"
      "  --adversary=SPEC   (or --trace=FILE for trace:file=FILE)\n"
      "or record one:  dyngossip trace record --adversary=SPEC --out=T.dgt\n");
  return 0;
}

int cmd_algorithms(const CliArgs& args) {
  args.allow_only({"json"}, "dyngossip algorithms [--json]");
  const AlgoRegistry& registry = AlgoRegistry::global();
  if (args.get_bool("json", false)) {
    JsonValue doc = JsonValue::object();
    JsonValue families = JsonValue::array();
    for (const AlgoFamily* f : registry.list()) {
      JsonValue entry = JsonValue::object();
      entry.set("name", JsonValue::str(f->name));
      entry.set("description", JsonValue::str(f->description));
      entry.set("example", JsonValue::str(f->example));
      entry.set("engine", JsonValue::str(algo_engine_name(f->engine)));
      entry.set("requires_static", JsonValue::boolean(f->requires_static));
      JsonValue keys = JsonValue::array();
      for (const AlgoKeySpec& k : f->keys) {
        JsonValue spec = JsonValue::object();
        spec.set("key", JsonValue::str(k.key));
        spec.set("kind", JsonValue::str(algo_key_kind_name(k.kind)));
        spec.set("default", JsonValue::str(k.default_value));
        spec.set("help", JsonValue::str(k.help));
        keys.push(std::move(spec));
      }
      entry.set("keys", std::move(keys));
      families.push(std::move(entry));
    }
    doc.set("families", std::move(families));
    std::cout << doc.dump(2) << "\n";
    return 0;
  }
  std::printf("algorithm spec grammar: family[:key=value[,key=value...]]\n\n");
  // Aligned engine column (unicast / broadcast / async) — same values the
  // --json path emits as each family's "engine" field.
  std::printf("%-17s %-9s %s\n", "family", "engine", "description");
  for (const AlgoFamily* f : registry.list()) {
    std::printf("%-17s %-9s %s\n%-27s e.g. %s\n", f->name.c_str(),
                algo_engine_name(f->engine), f->description.c_str(), "",
                f->example.c_str());
    if (f->requires_static) {
      std::printf("                            NOTE: static schedules only "
                  "(the protocol asserts an\n                            "
                  "unchanging neighborhood) — pair with --adversary=static:\n");
    }
    for (const AlgoKeySpec& k : f->keys) {
      std::printf("    %s=<%s>  (default %s)  %s\n", k.key.c_str(),
                  algo_key_kind_name(k.kind), k.default_value.c_str(),
                  k.help.c_str());
    }
  }
  std::printf(
      "\nUse with any algo-axis scenario:  dyngossip run <scenario> "
      "--algo=SPEC\n"
      "(combine with --adversary=SPEC to pick both axes, or run the\n"
      "`algo_matrix` scenario to cross every family at once).\n");
  return 0;
}

int cmd_faults(const CliArgs& args) {
  args.allow_only({"json"}, "dyngossip faults [--json]");
  const FaultFamilyDoc& doc_info = fault_family_doc();
  if (args.get_bool("json", false)) {
    JsonValue doc = JsonValue::object();
    JsonValue families = JsonValue::array();
    JsonValue entry = JsonValue::object();
    entry.set("name", JsonValue::str(doc_info.name));
    entry.set("description", JsonValue::str(doc_info.description));
    entry.set("example", JsonValue::str(doc_info.example));
    JsonValue keys = JsonValue::array();
    for (const SpecKey& k : *doc_info.keys) {
      JsonValue spec = JsonValue::object();
      spec.set("key", JsonValue::str(k.key));
      spec.set("kind", JsonValue::str(spec_key_kind_name(k.kind)));
      spec.set("default", JsonValue::str(k.default_value));
      spec.set("help", JsonValue::str(k.help));
      keys.push(std::move(spec));
    }
    entry.set("keys", std::move(keys));
    families.push(std::move(entry));
    doc.set("families", std::move(families));
    std::cout << doc.dump(2) << "\n";
    return 0;
  }
  std::printf("fault spec grammar: fault:key=value[,key=value...]\n"
              "(the leading 'fault:' may be omitted: --fault=drop=0.05)\n\n");
  std::printf("%-10s %s\n           e.g. %s\n", doc_info.name.c_str(),
              doc_info.description.c_str(), doc_info.example.c_str());
  for (const SpecKey& k : *doc_info.keys) {
    std::printf("    %s=<%s>  (default %s)  %s\n", k.key.c_str(),
                spec_key_kind_name(k.kind), k.default_value.c_str(),
                k.help.c_str());
  }
  std::printf(
      "\nUse with any fault-axis scenario:  dyngossip run <scenario> "
      "--fault=SPEC\n"
      "All fault decisions are position-keyed on (round, arc) / (round, node)\n"
      "under a SplitMix64 stream, so a faulty run is bit-identical at any\n"
      "thread count and reproducible from (spec, trial seed) alone.\n");
  return 0;
}

int cmd_probes(const CliArgs& args) {
  args.allow_only({"json"}, "dyngossip probes [--json]");
  const ProbeFamilyDoc doc_info = probe_family_doc();
  if (args.get_bool("json", false)) {
    JsonValue doc = JsonValue::object();
    JsonValue families = JsonValue::array();
    JsonValue entry = JsonValue::object();
    entry.set("name", JsonValue::str(doc_info.name));
    entry.set("description", JsonValue::str(doc_info.description));
    entry.set("example", JsonValue::str(doc_info.example));
    JsonValue keys = JsonValue::array();
    for (const SpecKey& k : *doc_info.keys) {
      JsonValue spec = JsonValue::object();
      spec.set("key", JsonValue::str(k.key));
      spec.set("kind", JsonValue::str(spec_key_kind_name(k.kind)));
      spec.set("default", JsonValue::str(k.default_value));
      spec.set("help", JsonValue::str(k.help));
      keys.push(std::move(spec));
    }
    entry.set("keys", std::move(keys));
    families.push(std::move(entry));
    doc.set("families", std::move(families));
    std::cout << doc.dump(2) << "\n";
    return 0;
  }
  std::printf("probe spec grammar: round_series:key=value[,key=value...]\n"
              "(the leading 'round_series:' may be omitted: "
              "--probe=out=series.csv)\n\n");
  std::printf("%-12s %s\n             e.g. %s\n", doc_info.name.c_str(),
              doc_info.description.c_str(), doc_info.example.c_str());
  for (const SpecKey& k : *doc_info.keys) {
    std::printf("    %s=<%s>  (default %s)  %s\n", k.key.c_str(),
                spec_key_kind_name(k.kind), k.default_value.c_str(),
                k.help.c_str());
  }
  std::printf(
      "\nUse with any scenario:  dyngossip run <scenario> --probe=SPEC\n"
      "Probes only observe: a probed run's payload checksum is byte-identical\n"
      "to the unprobed run's, and series are bit-identical at any thread\n"
      "count.  The sibling --timeline=FILE axis records wall-clock spans\n"
      "(rounds, phases, shard jobs, pool queue waits) as chrome://tracing\n"
      "trace-event JSON — wall time is host-dependent by nature, but the\n"
      "recorder never perturbs results either.\n");
  return 0;
}

int cmd_version(const CliArgs& args) {
  args.allow_only({"json"}, "dyngossip version [--json]");
  const Provenance& prov = build_provenance();
  if (args.get_bool("json", false)) {
    JsonValue doc = JsonValue::object();
    doc.set("git", JsonValue::str(prov.git_describe));
    doc.set("compiler", JsonValue::str(prov.compiler));
    doc.set("build_type", JsonValue::str(prov.build_type));
    doc.set("sanitize", JsonValue::str(prov.sanitize));
    doc.set("cache_schema",
            JsonValue::number(static_cast<double>(kCacheSchemaVersion)));
    std::cout << doc.dump(2) << "\n";
    return 0;
  }
  std::printf("%s\n", version_line().c_str());
  return 0;
}

int run_one_scenario(ScenarioRegistry& registry, const std::string& name,
                     const CliArgs& args) {
  const Scenario* scenario = registry.find(name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'; try `dyngossip list`\n",
                 name.c_str());
    return 2;
  }

  // The global adversary axis: --adversary=SPEC / --trace=FILE.  Validated
  // up front so a typo'd spec dies as a flag error before any run starts.
  if ((args.has("adversary") || args.has("trace")) && !scenario->adversary_axis) {
    std::fprintf(stderr,
                 "scenario '%s' does not support the --adversary/--trace axis; "
                 "`dyngossip list` marks the scenarios that do\n",
                 name.c_str());
    return 2;
  }
  if (args.has("adversary") && args.has("trace")) {
    std::fprintf(stderr, "--adversary conflicts with --trace (the latter is "
                         "shorthand for --adversary=trace:file=...)\n");
    return 2;
  }
  std::string adversary_spec;
  if (args.has("adversary")) adversary_spec = args.get_string("adversary", "");
  if (args.has("trace")) {
    const std::string path = args.get_string("trace", "");
    // The expansion below re-enters the spec grammar, where ',' separates
    // keys — turn that into a clear error instead of a baffling parse one.
    if (path.find(',') != std::string::npos) {
      std::fprintf(stderr,
                   "--trace paths may not contain ',' (the adversary spec "
                   "grammar uses it as the key separator); rename '%s'\n",
                   path.c_str());
      return 2;
    }
    adversary_spec = "trace:file=" + path;
  }
  if (!adversary_spec.empty()) {
    try {
      AdversaryRegistry::global().validate(AdversarySpec::parse(adversary_spec));
    } catch (const AdversarySpecError& e) {
      std::fprintf(stderr, "%s\n(see `dyngossip adversaries`)\n", e.what());
      return 2;
    }
  }

  // The global algorithm axis: --algo=SPEC, validated up front like the
  // adversary axis.
  if (args.has("algo") && !scenario->algo_axis) {
    std::fprintf(stderr,
                 "scenario '%s' does not support the --algo axis; "
                 "`dyngossip list` marks the scenarios that do\n",
                 name.c_str());
    return 2;
  }
  std::string algo_spec;
  if (args.has("algo")) {
    algo_spec = args.get_string("algo", "");
    try {
      AlgoRegistry::global().validate(AlgoSpec::parse(algo_spec));
    } catch (const AlgoSpecError& e) {
      std::fprintf(stderr, "%s\n(see `dyngossip algorithms`)\n", e.what());
      return 2;
    }
  }

  // The global fault axis: --fault=SPEC / --trial-timeout=S, validated up
  // front like the other axes.
  if ((args.has("fault") || args.has("trial-timeout")) && !scenario->fault_axis) {
    std::fprintf(stderr,
                 "scenario '%s' does not support the --fault/--trial-timeout "
                 "axis; `dyngossip list` marks the scenarios that do\n",
                 name.c_str());
    return 2;
  }
  std::string fault_spec;
  if (args.has("fault")) {
    fault_spec = args.get_string("fault", "");
    try {
      (void)FaultSpec::parse(fault_spec);
    } catch (const FaultSpecError& e) {
      std::fprintf(stderr, "%s\n(see `dyngossip faults`)\n", e.what());
      return 2;
    }
  }
  const double trial_timeout = args.get_double("trial-timeout", 0.0);
  if (trial_timeout < 0.0) {
    std::fprintf(stderr, "--trial-timeout must be >= 0 seconds\n");
    return 2;
  }

  // The global observability axes: --probe=SPEC / --timeline=FILE.  Unlike
  // the perturbing axes these apply to every scenario (one that pre-dates
  // the observer plane just emits an empty series file).
  bool probe_on = false;
  ProbeSpec probe_spec;
  if (args.has("probe")) {
    try {
      probe_spec = ProbeSpec::parse(args.get_string("probe", ""));
      probe_on = true;
    } catch (const ProbeSpecError& e) {
      std::fprintf(stderr, "%s\n(see `dyngossip probes`)\n", e.what());
      return 2;
    }
  }
  std::string timeline_path;
  if (args.has("timeline")) {
    timeline_path = args.get_string("timeline", "");
    if (timeline_path.empty()) {
      std::fprintf(stderr, "--timeline requires a file path\n");
      return 2;
    }
  }

  // The global --cache= axis: a content-addressed result cache directory
  // (created if needed).  Opened up front so an unusable path dies as a
  // flag error before any run starts.
  std::unique_ptr<ResultCache> cache;
  if (args.has("cache")) {
    const std::string dir = args.get_string("cache", "");
    if (dir.empty()) {
      std::fprintf(stderr, "--cache requires a directory path\n");
      return 2;
    }
    try {
      cache = std::make_unique<ResultCache>(dir);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  std::vector<std::string> allowed = {"threads", "trials",  "scale",
                                      "quick",   "csv",     "json",
                                      "probe",   "timeline", "cache"};
  for (const ParamSpec& p : scenario->params) allowed.push_back(p.name);
  args.allow_only(allowed, "dyngossip run " + name +
                               " [--threads=N] [--trials=T] [--scale=S]"
                               " [--quick] [--csv] [--json[=PATH]] [--<param>=v]");

  std::map<std::string, std::string> params;
  for (const ParamSpec& p : scenario->params) {
    // The axis flags are global (threaded via ScenarioContext), never
    // scenario params, even though they appear in `list` as declared specs.
    if (p.name == "adversary" || p.name == "trace" || p.name == "algo" ||
        p.name == "fault" || p.name == "trial-timeout") {
      continue;
    }
    if (args.has(p.name)) params[p.name] = args.get_string(p.name, "");
  }
  const std::int64_t trials_raw = args.get_int("trials", 0);
  const std::int64_t threads_raw = args.get_int("threads", 0);
  if (trials_raw < 0 || threads_raw < 0 || threads_raw > 4096) {
    std::fprintf(stderr, "--trials must be >= 0 and --threads in [0, 4096]\n");
    return 2;
  }
  const auto trials = static_cast<std::size_t>(trials_raw);
  const auto threads = static_cast<std::size_t>(threads_raw);

  ScenarioScale scale =
      args.get_bool("quick", false) ? ScenarioScale::kQuick : ScenarioScale::kDefault;
  if (args.has("scale")) {
    const std::string text = args.get_string("scale", "default");
    if (!parse_scenario_scale(text, &scale)) {
      std::fprintf(stderr, "--scale must be quick, default, large, or xlarge (got '%s')\n",
                   text.c_str());
      return 2;
    }
    if (args.get_bool("quick", false) && scale != ScenarioScale::kQuick) {
      std::fprintf(stderr, "--quick conflicts with --scale=%s\n", text.c_str());
      return 2;
    }
  }

  // The recorder outlives the pool (declared first) so workers can never
  // touch a dead recorder during pool teardown.
  TimelineRecorder recorder;
  ProbeSink sink(probe_spec);
  ThreadPool pool(threads);
  ScenarioContext ctx(pool, trials, scale, std::move(params));
  ctx.set_adversary_spec(adversary_spec);
  ctx.set_algo_spec(algo_spec);
  ctx.set_fault_spec(fault_spec);
  ctx.set_trial_timeout(trial_timeout);
  if (probe_on) ctx.set_probe_sink(&sink);
  if (!timeline_path.empty()) {
    ctx.set_timeline(&recorder);
    pool.set_timeline(&recorder);
  }
  if (cache != nullptr) ctx.set_cache(cache.get());
  const auto start = std::chrono::steady_clock::now();
  ScenarioResult result;
  try {
    result = scenario->run(ctx);
  } catch (const AdversarySpecError& e) {
    std::fprintf(stderr, "adversary spec error: %s\n", e.what());
    return 2;
  } catch (const AlgoSpecError& e) {
    std::fprintf(stderr, "algorithm spec error: %s\n", e.what());
    return 2;
  } catch (const FaultSpecError& e) {
    std::fprintf(stderr, "fault spec error: %s\n", e.what());
    return 2;
  } catch (const TraceError& e) {
    std::fprintf(stderr, "trace error: %s\n", e.what());
    return 1;
  }
  RunInfo info;
  info.trials = trials;
  info.threads = pool.size();
  info.quick = scale == ScenarioScale::kQuick;
  info.scale = scale;
  info.elapsed_seconds = seconds_since(start);
  if (cache != nullptr) {
    const CacheStats stats = cache->stats();
    info.cache_attached = true;
    info.cache_dir = cache->dir();
    info.cache_hits = stats.hits;
    info.cache_misses = stats.misses;
    info.cache_stores = stats.stores;
    std::fprintf(stderr, "[dyngossip] cache: %zu hit(s), %zu miss(es), "
                 "%zu store(s) -> %s\n",
                 stats.hits, stats.misses, stats.stores, cache->dir().c_str());
  }

  if (probe_on) {
    const std::string error = sink.write();
    if (!error.empty()) {
      std::fprintf(stderr, "probe: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "[dyngossip] probe: %zu series -> %s\n",
                 sink.series_count(), sink.spec().out.c_str());
  }
  if (!timeline_path.empty()) {
    const std::string error = recorder.write_file(timeline_path);
    if (!error.empty()) {
      std::fprintf(stderr, "timeline: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "[dyngossip] timeline: %zu events -> %s\n",
                 recorder.event_count(), timeline_path.c_str());
  }

  if (args.has("json")) {
    const std::string path = args.get_string("json", "-");
    const std::string text = scenario_result_to_json(result, info).dump(2);
    if (path == "-" || path == "true") {
      std::cout << text << "\n";
    } else {
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        return 2;
      }
      out << text << "\n";
    }
  } else if (args.get_bool("csv", false)) {
    print_scenario_csv(result, std::cout);
  } else {
    print_scenario_tables(result, std::cout);
  }
  std::fprintf(stderr, "[dyngossip] %s: %zu threads, %.2fs\n", name.c_str(),
               info.threads, info.elapsed_seconds);
  return 0;
}

int cmd_demo(int argc, const char* const* argv, const char* program) {
  DemoRegistry& demos = DemoRegistry::global();
  if (argc < 3) {
    std::printf("available demos (dyngossip demo <name> [flags]):\n");
    for (const Demo* d : demos.list()) {
      std::printf("  %-14s %s\n                 %s\n", d->name.c_str(),
                  d->description.c_str(), d->usage.c_str());
    }
    return 0;
  }
  const std::string name = argv[2];
  const Demo* demo = demos.find(name);
  if (demo == nullptr) {
    std::fprintf(stderr, "unknown demo '%s'; try `dyngossip demo`\n", name.c_str());
    return 2;
  }
  std::vector<const char*> rest = {program};
  for (int i = 3; i < argc; ++i) rest.push_back(argv[i]);
  const CliArgs args(static_cast<int>(rest.size()), rest.data());
  return demo->run(args);
}

bool summaries_identical(const Summary& a, const Summary& b) {
  // The checksum alone certifies bit-identity of the underlying samples in
  // trial order; the statistic compares stay as a self-check of Summary::of.
  return a.checksum == b.checksum && a.count == b.count && a.mean == b.mean &&
         a.stddev == b.stddev && a.min == b.min && a.max == b.max &&
         a.median == b.median && a.p90 == b.p90 && a.p99 == b.p99;
}

int cmd_speedup(const CliArgs& args) {
  args.allow_only({"threads", "trials", "n", "min"},
                  "dyngossip speedup [--threads=N] [--trials=T] [--n=SIZE]"
                  " [--min=X]");
  const std::int64_t threads_raw = args.get_int(
      "threads", static_cast<std::int64_t>(ThreadPool::hardware_threads()));
  const std::int64_t trials_raw = args.get_int("trials", 16);
  const std::int64_t n_raw = args.get_int("n", 48);
  if (threads_raw < 1 || threads_raw > 4096 || trials_raw < 1 || n_raw < 4) {
    std::fprintf(stderr,
                 "--threads in [1, 4096], --trials >= 1, --n >= 4 required\n");
    return 2;
  }
  const auto threads = static_cast<std::size_t>(threads_raw);
  const auto trials = static_cast<std::size_t>(trials_raw);
  const auto n = static_cast<std::size_t>(n_raw);
  const double min_speedup = args.get_double("min", 0.0);

  // A representative paper workload: Algorithm 1 under churn, one full run
  // per trial.  Self-contained per call, so safe at any thread count; the
  // status/coverage slots are keyed by the trial's SplitMix64-derived seed
  // (seeds are distinct, each trial owns one slot), so parallel writes never
  // race and the serial pass simply rewrites identical values.
  constexpr std::uint64_t kBaseSeed = 0x5eedfeed;
  const auto k = static_cast<std::uint32_t>(2 * n);
  const std::vector<std::uint64_t> trial_seeds =
      derive_sweep_seeds(trials, kBaseSeed);
  std::vector<RunStatus> statuses(trials, RunStatus::kCompleted);
  std::vector<double> coverages(trials, 0.0);
  const auto measure = [n, k, &trial_seeds, &statuses,
                        &coverages](std::uint64_t seed) {
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 3 * n;
    cc.churn_per_round = std::max<std::size_t>(1, n / 8);
    cc.sigma = 3;
    cc.seed = seed;
    ChurnAdversary adversary(cc);
    const RunResult r = run_single_source(n, k, 0, adversary,
                                          static_cast<Round>(100 * n * k));
    const auto slot = static_cast<std::size_t>(
        std::find(trial_seeds.begin(), trial_seeds.end(), seed) -
        trial_seeds.begin());
    if (slot < trial_seeds.size()) {
      statuses[slot] = r.metrics.status;
      coverages[slot] = r.metrics.coverage;
    }
    return static_cast<double>(r.metrics.unicast.total());
  };
  const auto t_serial = std::chrono::steady_clock::now();
  const Summary serial = sweep_seeds(trials, kBaseSeed, measure);
  const double serial_s = seconds_since(t_serial);

  ThreadPool pool(threads);
  const auto t_parallel = std::chrono::steady_clock::now();
  const Summary parallel = parallel_sweep(pool, trials, kBaseSeed, measure);
  const double parallel_s = seconds_since(t_parallel);

  const bool identical = summaries_identical(serial, parallel);
  const double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;

  JsonValue doc = JsonValue::object();
  doc.set("trials", JsonValue::number(static_cast<double>(trials)));
  doc.set("threads", JsonValue::number(static_cast<double>(pool.size())));
  doc.set("n", JsonValue::number(static_cast<double>(n)));
  doc.set("serial_seconds", JsonValue::number(serial_s));
  doc.set("parallel_seconds", JsonValue::number(parallel_s));
  doc.set("speedup", JsonValue::number(speedup));
  doc.set("bit_identical", JsonValue::boolean(identical));
  doc.set("checksum_serial", JsonValue::str(checksum_hex(serial.checksum)));
  doc.set("checksum_parallel", JsonValue::str(checksum_hex(parallel.checksum)));
  // Run health (satellite of the observer plane): how each trial ended and
  // the worst residual coverage — all "completed" / 1.0 on this fault-free
  // workload, but the keys keep the record shape uniform with faulty runs.
  std::map<std::string, std::size_t> status_counts;
  double min_coverage = 1.0;
  for (std::size_t i = 0; i < trials; ++i) {
    ++status_counts[run_status_name(statuses[i])];
    min_coverage = std::min(min_coverage, coverages[i]);
  }
  JsonValue status_json = JsonValue::object();
  for (const auto& [status, count] : status_counts) {
    status_json.set(status, JsonValue::number(static_cast<double>(count)));
  }
  doc.set("status_counts", std::move(status_json));
  doc.set("min_coverage", JsonValue::number(min_coverage));
  std::cout << doc.dump(2) << "\n";

  if (!identical) {
    std::fprintf(stderr, "FAIL: parallel sweep diverged from serial\n");
    return 1;
  }
  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below required %.2fx\n", speedup,
                 min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int dyngossip_main(ScenarioRegistry& registry, int argc, const char* const* argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string command = argv[1];
  const char* program = argv[0];

  if (command == "help" || command == "--help" || command == "-h") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (command == "list") {
    std::vector<const char*> rest = {program};
    for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
    const CliArgs args(static_cast<int>(rest.size()), rest.data());
    return cmd_list(registry, args);
  }
  if (command == "adversaries") {
    std::vector<const char*> rest = {program};
    for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
    const CliArgs args(static_cast<int>(rest.size()), rest.data());
    return cmd_adversaries(args);
  }
  if (command == "algorithms") {
    std::vector<const char*> rest = {program};
    for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
    const CliArgs args(static_cast<int>(rest.size()), rest.data());
    return cmd_algorithms(args);
  }
  if (command == "faults") {
    std::vector<const char*> rest = {program};
    for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
    const CliArgs args(static_cast<int>(rest.size()), rest.data());
    return cmd_faults(args);
  }
  if (command == "probes") {
    std::vector<const char*> rest = {program};
    for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
    const CliArgs args(static_cast<int>(rest.size()), rest.data());
    return cmd_probes(args);
  }
  if (command == "version" || command == "--version") {
    std::vector<const char*> rest = {program};
    for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
    const CliArgs args(static_cast<int>(rest.size()), rest.data());
    return cmd_version(args);
  }
  if (command == "run") {
    if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
      std::fprintf(stderr, "usage: dyngossip run <scenario> [flags]\n");
      return 2;
    }
    const std::string name = argv[2];
    std::vector<const char*> rest = {program};
    for (int i = 3; i < argc; ++i) rest.push_back(argv[i]);
    const CliArgs args(static_cast<int>(rest.size()), rest.data());
    return run_one_scenario(registry, name, args);
  }
  if (command == "demo") {
    return cmd_demo(argc, argv, program);
  }
  if (command == "trace") {
    return trace_main(argc, argv);
  }
  if (command == "cache") {
    return cache_main(argc, argv);
  }
  if (command == "serve" || command == "request") {
    return serve_main(argc, argv);
  }
  if (command == "speedup") {
    std::vector<const char*> rest = {program};
    for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
    const CliArgs args(static_cast<int>(rest.size()), rest.data());
    return cmd_speedup(args);
  }
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(), kUsage);
  return 2;
}

}  // namespace dyngossip
