#include "sim/runner/demo_registry.hpp"

#include <stdexcept>
#include <utility>

namespace dyngossip {

void DemoRegistry::add(Demo demo) {
  if (demo.name.empty()) {
    throw std::invalid_argument("demo name must be non-empty");
  }
  if (!demo.run) {
    throw std::invalid_argument("demo '" + demo.name + "' has no run function");
  }
  std::string name = demo.name;
  const auto [it, inserted] = demos_.emplace(std::move(name), std::move(demo));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("duplicate demo name '" + it->first + "'");
  }
}

const Demo* DemoRegistry::find(const std::string& name) const noexcept {
  const auto it = demos_.find(name);
  return it == demos_.end() ? nullptr : &it->second;
}

std::vector<const Demo*> DemoRegistry::list() const {
  std::vector<const Demo*> out;
  out.reserve(demos_.size());
  for (const auto& [name, demo] : demos_) {
    (void)name;
    out.push_back(&demo);
  }
  return out;  // std::map iteration is already name-sorted
}

DemoRegistry& DemoRegistry::global() {
  static DemoRegistry registry;
  return registry;
}

}  // namespace dyngossip
