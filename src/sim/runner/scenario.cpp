#include "sim/runner/scenario.hpp"

#include <cstdio>
#include <cstdlib>

namespace dyngossip {

namespace {
[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "scenario error: %s\n", msg.c_str());
  std::exit(2);
}
}  // namespace

bool parse_scenario_scale(const std::string& text, ScenarioScale* out) {
  if (text == "quick") {
    *out = ScenarioScale::kQuick;
  } else if (text == "default") {
    *out = ScenarioScale::kDefault;
  } else if (text == "large") {
    *out = ScenarioScale::kLarge;
  } else if (text == "xlarge") {
    *out = ScenarioScale::kXLarge;
  } else {
    return false;
  }
  return true;
}

bool operator==(const ScenarioTable& a, const ScenarioTable& b) {
  return a.title == b.title && a.columns == b.columns && a.rows == b.rows &&
         a.note == b.note;
}

bool operator==(const ScenarioResult& a, const ScenarioResult& b) {
  return a.scenario == b.scenario && a.tables == b.tables;
}

std::int64_t ScenarioContext::get_int(const std::string& name,
                                      std::int64_t def) const {
  const auto it = params_.find(name);
  if (it == params_.end()) return def;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') die("param " + name + " expects an integer");
  return v;
}

std::size_t ScenarioContext::get_size(const std::string& name, std::size_t def,
                                      std::size_t lo, std::size_t hi) const {
  const std::int64_t v = get_int(name, static_cast<std::int64_t>(def));
  if (v < 0 || static_cast<std::size_t>(v) < lo || static_cast<std::size_t>(v) > hi) {
    die("param " + name + " must be in [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "]");
  }
  return static_cast<std::size_t>(v);
}

double ScenarioContext::get_double(const std::string& name, double def) const {
  const auto it = params_.find(name);
  if (it == params_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') die("param " + name + " expects a number");
  return v;
}

bool ScenarioContext::get_bool(const std::string& name, bool def) const {
  const auto it = params_.find(name);
  if (it == params_.end()) return def;
  return it->second != "false" && it->second != "0";
}

std::string ScenarioContext::get_string(const std::string& name,
                                        const std::string& def) const {
  const auto it = params_.find(name);
  return it == params_.end() ? def : it->second;
}

}  // namespace dyngossip
