#include "sim/runner/emit.hpp"

#include <stdexcept>

#include "common/provenance.hpp"
#include "common/table.hpp"

namespace dyngossip {

JsonValue scenario_result_to_json(const ScenarioResult& result, const RunInfo& info) {
  JsonValue doc = JsonValue::object();
  doc.set("scenario", JsonValue::str(result.scenario));
  JsonValue tables = JsonValue::array();
  for (const ScenarioTable& table : result.tables) {
    JsonValue t = JsonValue::object();
    t.set("title", JsonValue::str(table.title));
    JsonValue columns = JsonValue::array();
    for (const std::string& c : table.columns) columns.push(JsonValue::str(c));
    t.set("columns", std::move(columns));
    JsonValue rows = JsonValue::array();
    for (const auto& row : table.rows) {
      JsonValue r = JsonValue::array();
      for (const std::string& cell : row) r.push(JsonValue::str(cell));
      rows.push(std::move(r));
    }
    t.set("rows", std::move(rows));
    t.set("note", JsonValue::str(table.note));
    tables.push(std::move(t));
  }
  doc.set("tables", std::move(tables));
  JsonValue run = JsonValue::object();
  run.set("trials", JsonValue::number(static_cast<double>(info.trials)));
  run.set("threads", JsonValue::number(static_cast<double>(info.threads)));
  run.set("quick", JsonValue::boolean(info.quick));
  run.set("scale",
          JsonValue::str(info.scale == ScenarioScale::kQuick    ? "quick"
                         : info.scale == ScenarioScale::kLarge  ? "large"
                         : info.scale == ScenarioScale::kXLarge ? "xlarge"
                                                                : "default"));
  run.set("elapsed_seconds", JsonValue::number(info.elapsed_seconds));
  if (info.cache_attached) {
    JsonValue cache = JsonValue::object();
    cache.set("dir", JsonValue::str(info.cache_dir));
    cache.set("hits", JsonValue::number(static_cast<double>(info.cache_hits)));
    cache.set("misses",
              JsonValue::number(static_cast<double>(info.cache_misses)));
    cache.set("stores",
              JsonValue::number(static_cast<double>(info.cache_stores)));
    run.set("cache", std::move(cache));
  }
  // Build provenance lives inside "run" so payload diffs (`jq 'del(.run)'`)
  // stay clean across toolchains while every emitted record still pins the
  // binary that produced it.
  const Provenance& prov = build_provenance();
  JsonValue build = JsonValue::object();
  build.set("git", JsonValue::str(prov.git_describe));
  build.set("compiler", JsonValue::str(prov.compiler));
  build.set("build_type", JsonValue::str(prov.build_type));
  build.set("sanitize", JsonValue::str(prov.sanitize));
  build.set("cache_schema",
            JsonValue::number(static_cast<double>(kCacheSchemaVersion)));
  run.set("build", std::move(build));
  doc.set("run", std::move(run));
  return doc;
}

namespace {

const JsonValue& require(const JsonValue& doc, const std::string& key) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr) {
    throw std::runtime_error("scenario record missing key '" + key + "'");
  }
  return *v;
}

// Typed accessors that throw (the JsonValue ones DG_CHECK-abort); a corrupt
// or hand-edited record must surface as a catchable error, not a SIGABRT.
const std::string& string_field(const JsonValue& v, const char* what) {
  if (v.type() != JsonValue::Type::kString) {
    throw std::runtime_error(std::string("scenario record field '") + what +
                             "' is not a string");
  }
  return v.as_string();
}

const std::vector<JsonValue>& array_field(const JsonValue& v, const char* what) {
  if (v.type() != JsonValue::Type::kArray) {
    throw std::runtime_error(std::string("scenario record field '") + what +
                             "' is not an array");
  }
  return v.items();
}

}  // namespace

ScenarioResult scenario_result_from_json(const JsonValue& doc) {
  ScenarioResult result;
  result.scenario = string_field(require(doc, "scenario"), "scenario");
  for (const JsonValue& t : array_field(require(doc, "tables"), "tables")) {
    ScenarioTable table;
    table.title = string_field(require(t, "title"), "title");
    for (const JsonValue& c : array_field(require(t, "columns"), "columns")) {
      table.columns.push_back(string_field(c, "columns[]"));
    }
    for (const JsonValue& r : array_field(require(t, "rows"), "rows")) {
      std::vector<std::string> row;
      for (const JsonValue& cell : array_field(r, "rows[]")) {
        row.push_back(string_field(cell, "rows[][]"));
      }
      table.rows.push_back(std::move(row));
    }
    table.note = string_field(require(t, "note"), "note");
    result.tables.push_back(std::move(table));
  }
  return result;
}

void print_scenario_tables(const ScenarioResult& result, std::ostream& os) {
  for (std::size_t i = 0; i < result.tables.size(); ++i) {
    const ScenarioTable& table = result.tables[i];
    if (i) os << "\n";
    os << "== " << table.title << " ==\n\n";
    TablePrinter printer(table.columns);
    for (const auto& row : table.rows) printer.add_row(row);
    printer.print(os);
    if (!table.note.empty()) os << "\n" << table.note << "\n";
  }
}

void print_scenario_csv(const ScenarioResult& result, std::ostream& os) {
  for (std::size_t i = 0; i < result.tables.size(); ++i) {
    const ScenarioTable& table = result.tables[i];
    if (i) os << "\n";
    if (result.tables.size() > 1) os << "# " << table.title << "\n";
    TablePrinter printer(table.columns);
    for (const auto& row : table.rows) printer.add_row(row);
    printer.print_csv(os);
  }
}

}  // namespace dyngossip
