// Name → Demo registry behind `dyngossip demo <name>`.
//
// Demos are narrated end-to-end tours (the former standalone example
// binaries): they parse their own flags, print prose + numbers to stdout,
// and return a process exit code.  Keeping them behind the same CLI as the
// scenarios means one binary to build and one catalogue to discover
// (`dyngossip demo` lists them), while the scenario registry stays reserved
// for table-producing experiments.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/cli.hpp"

namespace dyngossip {

/// One registered demo.
struct Demo {
  std::string name;         ///< registry key, e.g. "quickstart"
  std::string description;  ///< one line for `dyngossip demo`
  std::string usage;        ///< flag summary, e.g. "[--n=64] [--k=128]"
  std::function<int(const CliArgs&)> run;
};

class DemoRegistry {
 public:
  /// Registers a demo.  Throws std::invalid_argument on an empty name, a
  /// missing run function, or a duplicate name.
  void add(Demo demo);

  /// Demo by name, or nullptr when unknown.
  [[nodiscard]] const Demo* find(const std::string& name) const noexcept;

  /// All demos, sorted by name.
  [[nodiscard]] std::vector<const Demo*> list() const;

  /// Number of registered demos.
  [[nodiscard]] std::size_t size() const noexcept { return demos_.size(); }

  /// Process-wide registry used by the CLI.
  [[nodiscard]] static DemoRegistry& global();

 private:
  std::map<std::string, Demo> demos_;
};

}  // namespace dyngossip
