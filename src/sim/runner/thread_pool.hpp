// Fixed-size worker pool for the parallel scenario engine.
//
// Deliberately work-stealing-free: one locked FIFO drained by a fixed set of
// workers.  Scenario sweeps submit coarse-grained trial jobs (each runs a
// whole simulation), so queue contention is negligible and the simple design
// keeps the engine easy to reason about.  Reproducibility never depends on
// scheduling: parallel_sweep and the scenario ports write every trial into a
// preassigned slot and merge by trial index, so results are bit-identical at
// any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dyngossip {

/// Fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `n_threads` workers (0: one per hardware thread).
  explicit ThreadPool(std::size_t n_threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task.  Tasks must not call submit/wait_idle on their own
  /// pool (the pool is a leaf executor, not a nested scheduler).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// max(1, std::thread::hardware_concurrency()).
  [[nodiscard]] static std::size_t hardware_threads() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;  // queued + currently running
  bool stop_ = false;
};

}  // namespace dyngossip
