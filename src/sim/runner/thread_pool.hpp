// Fixed-size worker pool for the parallel scenario engine.
//
// Deliberately work-stealing-free: one locked FIFO drained by a fixed set of
// workers.  Scenario sweeps submit coarse-grained trial jobs (each runs a
// whole simulation), so queue contention is negligible and the simple design
// keeps the engine easy to reason about.  Reproducibility never depends on
// scheduling: parallel_sweep and the scenario ports write every trial into a
// preassigned slot and merge by trial index, so results are bit-identical at
// any thread count.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dyngossip {

class TimelineRecorder;

/// Fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `n_threads` workers (0: one per hardware thread).
  explicit ThreadPool(std::size_t n_threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task.  Tasks must not call submit/wait_idle on their own
  /// pool (the pool is a leaf executor, not a nested scheduler).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// max(1, std::thread::hardware_concurrency()).
  [[nodiscard]] static std::size_t hardware_threads() noexcept;

  /// Attaches a timeline recorder (null detaches): each task's time from
  /// submit to pop is recorded as a "queue_wait" span on the worker that
  /// picked it up.  Call only while the pool is idle — the pointer is read
  /// under the queue lock but attachment itself is not synchronized with
  /// in-flight work.
  void set_timeline(TimelineRecorder* timeline);

 private:
  /// A queued task plus its submit timestamp (stamped only while a timeline
  /// is attached; otherwise the clock is never read).
  struct Job {
    std::function<void()> task;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Job> queue_;
  TimelineRecorder* timeline_ = nullptr;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;  // queued + currently running
  bool stop_ = false;
};

}  // namespace dyngossip
