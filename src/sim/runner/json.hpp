// Minimal JSON value: build, serialize, parse.
//
// The scenario engine emits machine-readable run records (CI artifacts,
// regression trajectories) and the tests round-trip them; this is the small
// self-contained JSON core both sides share.  Objects preserve insertion
// order so emitted documents are stable byte-for-byte — which is what lets
// CI diff a --threads=8 run against --threads=1 directly.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace dyngossip {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// Builders.
  [[nodiscard]] static JsonValue null() { return JsonValue(); }
  [[nodiscard]] static JsonValue boolean(bool b);
  [[nodiscard]] static JsonValue number(double v);
  [[nodiscard]] static JsonValue str(std::string s);
  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  [[nodiscard]] Type type() const noexcept { return type_; }

  /// Typed accessors; DG_CHECK-fail on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member by key, or nullptr (first match; also null for non-objects).
  [[nodiscard]] const JsonValue* find(const std::string& key) const noexcept;

  /// Appends to an array.
  void push(JsonValue v);

  /// Appends a member to an object (no de-duplication; order preserved).
  void set(std::string key, JsonValue v);

  /// Serializes; indent < 0 is compact, otherwise pretty with that step.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document.  Throws std::runtime_error with an
  /// offset-bearing message on malformed input or trailing garbage.
  [[nodiscard]] static JsonValue parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace dyngossip
