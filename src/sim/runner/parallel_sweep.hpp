// Parallel drop-in for sweep_seeds (src/sim/sweep.hpp).
//
// Seeds are derived with the exact SplitMix64 chain sweep_seeds uses, each
// trial writes its sample into a preassigned slot, and Summary::of folds the
// slots in trial order — so the returned Summary is bit-identical to the
// serial sweep at any thread count.  `measure` must be self-contained per
// call (construct adversaries/engines inside it); every simulation entry
// point in src/sim/simulator.hpp satisfies this.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "sim/runner/thread_pool.hpp"

namespace dyngossip {

/// The SplitMix64-derived seed sequence sweep_seeds feeds to `measure`.
[[nodiscard]] std::vector<std::uint64_t> derive_sweep_seeds(std::size_t trials,
                                                            std::uint64_t base_seed);

/// sweep_seeds, parallelized over `pool`; bit-identical to the serial sweep.
[[nodiscard]] Summary parallel_sweep(ThreadPool& pool, std::size_t trials,
                                     std::uint64_t base_seed,
                                     const std::function<double(std::uint64_t)>& measure);

/// Convenience overload owning a transient pool of `n_threads` workers
/// (0: one per hardware thread).
[[nodiscard]] Summary parallel_sweep(std::size_t trials, std::uint64_t base_seed,
                                     const std::function<double(std::uint64_t)>& measure,
                                     std::size_t n_threads);

}  // namespace dyngossip
