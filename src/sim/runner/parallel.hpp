// Deterministic fork/join primitives on top of ThreadPool.
//
// parallel_for self-schedules indices through a shared atomic counter, so
// trials of uneven cost balance across workers; every index writes only its
// own output slot, so callers get determinism for free by folding slots in
// index order afterwards.  JobBatch is the flattened variant scenarios use:
// every (configuration row × trial) becomes one job so that even two-trial
// sweeps saturate an 8-core pool.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/runner/thread_pool.hpp"

namespace dyngossip {

/// Runs body(0) .. body(count-1) on the pool and blocks until all complete.
/// The first exception thrown by any body is rethrown on the calling thread
/// (after all indices finish or are skipped).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// A flat batch of independent jobs run in one parallel_for.
class JobBatch {
 public:
  /// Adds one job; jobs must only write state no other job touches.
  void add(std::function<void()> job) { jobs_.push_back(std::move(job)); }

  /// Number of jobs added.
  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }

  /// Runs every job on the pool; blocks until all complete.
  void run(ThreadPool& pool);

  /// Runs job `index` on the calling thread (the serial-trials side of the
  /// shard_schedule policy, where engines own the pool instead).
  void run_job(std::size_t index) { jobs_.at(index)(); }

 private:
  std::vector<std::function<void()>> jobs_;
};

}  // namespace dyngossip
