#include "sim/runner/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>

namespace dyngossip {

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const std::size_t runners = std::min(pool.size(), count);
  for (std::size_t r = 0; r < runners; ++r) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          body(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          next.store(count, std::memory_order_relaxed);  // skip the rest
          return;
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

void JobBatch::run(ThreadPool& pool) {
  parallel_for(pool, jobs_.size(), [this](std::size_t i) { jobs_[i](); });
}

}  // namespace dyngossip
