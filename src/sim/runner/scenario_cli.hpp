// The dyngossip CLI driver.
//
//   dyngossip list [--json]
//   dyngossip adversaries [--json]
//   dyngossip run <scenario> [--threads=N] [--trials=T] [--scale=S] [--quick]
//                            [--csv] [--json[=PATH|-]]
//                            [--adversary=SPEC | --trace=FILE]
//                            [--<param>=v ...]
//   dyngossip demo <name> [flags]
//   dyngossip trace <record|replay|info|gen> [flags]
//   dyngossip speedup [--threads=N] [--trials=T] [--n=..] [--min=X]
//
// run executes a registered scenario on a fixed thread pool and renders the
// result; the payload is bit-identical at any --threads value.  The global
// --adversary/--trace axis swaps any axis-capable scenario's schedule for a
// registry spec or a recorded .dgt trace.  adversaries enumerates the
// spec grammar.  speedup is the self-measuring harness CI uses: it times
// the same sweep serially and in parallel, asserts bit-identity, and
// reports the ratio.
#pragma once

#include "sim/runner/scenario_registry.hpp"

namespace dyngossip {

/// Entry point behind tools/dyngossip_main.cpp.  Returns a process exit
/// code (0 success, 1 failed acceptance e.g. speedup --min, 2 usage error).
int dyngossip_main(ScenarioRegistry& registry, int argc, const char* const* argv);

}  // namespace dyngossip
