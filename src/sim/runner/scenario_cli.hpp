// The dyngossip CLI driver and the legacy bench shims.
//
//   dyngossip list [--json]
//   dyngossip run <scenario> [--threads=N] [--trials=T] [--quick] [--csv]
//                            [--json[=PATH|-]] [--<param>=v ...]
//   dyngossip speedup [--threads=N] [--trials=T] [--n=..] [--min=X]
//
// run executes a registered scenario on a fixed thread pool and renders the
// result; the payload is bit-identical at any --threads value.  speedup is
// the self-measuring harness CI uses: it times the same sweep serially and
// in parallel, asserts bit-identity, and reports the ratio.
//
// scenario_shim_main keeps the twelve historical bench_* executables alive:
// each forwards its legacy flags (--quick/--seeds/--csv) to the registry.
#pragma once

#include <string>

#include "sim/runner/scenario_registry.hpp"

namespace dyngossip {

/// Entry point behind tools/dyngossip_main.cpp.  Returns a process exit
/// code (0 success, 1 failed acceptance e.g. speedup --min, 2 usage error).
int dyngossip_main(ScenarioRegistry& registry, int argc, const char* const* argv);

/// Legacy bench binary entry point: runs `scenario_name` with flags mapped
/// from the historical bench CLI (--quick, --seeds, --csv, plus scenario
/// params and the new --threads/--json).
int scenario_shim_main(ScenarioRegistry& registry, const std::string& scenario_name,
                       int argc, const char* const* argv);

}  // namespace dyngossip
