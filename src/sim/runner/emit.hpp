// Output emitters for scenario results: aligned text, CSV, JSON.
//
// The JSON record splits volatile run metadata (threads, wall time) into a
// "run" sub-object and keeps the deterministic payload under "scenario" /
// "tables", so CI can diff two runs' payloads (e.g. --threads=1 vs
// --threads=8) without masking anything but "run".
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>

#include "sim/runner/json.hpp"
#include "sim/runner/scenario.hpp"

namespace dyngossip {

/// Metadata about one scenario execution (the volatile part of the record).
struct RunInfo {
  std::size_t trials = 0;   ///< 0: scenario default
  std::size_t threads = 1;
  bool quick = false;
  ScenarioScale scale = ScenarioScale::kDefault;
  double elapsed_seconds = 0.0;
  /// Result-cache counters for the --cache= axis (volatile: a warm and a
  /// cold run differ here and nowhere else, which is why they live under
  /// "run" and the byte-identity gate diffs `del(.run)`).
  bool cache_attached = false;
  std::string cache_dir;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_stores = 0;
};

/// Full run record: {"scenario", "tables": [...], "run": {...}}.
[[nodiscard]] JsonValue scenario_result_to_json(const ScenarioResult& result,
                                                const RunInfo& info);

/// Inverse of scenario_result_to_json's deterministic payload.  Throws
/// std::runtime_error when required fields are missing or mistyped.
[[nodiscard]] ScenarioResult scenario_result_from_json(const JsonValue& doc);

/// Aligned tables with title and note lines (the human-facing rendering the
/// legacy bench binaries printed).
void print_scenario_tables(const ScenarioResult& result, std::ostream& os);

/// CSV rendering; multiple tables are separated by "# <title>" comment rows.
void print_scenario_csv(const ScenarioResult& result, std::ostream& os);

}  // namespace dyngossip
