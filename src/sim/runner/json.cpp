#include "sim/runner/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/check.hpp"

namespace dyngossip {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::str(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  DG_CHECK(type_ == Type::kBool);
  return bool_;
}

double JsonValue::as_number() const {
  DG_CHECK(type_ == Type::kNumber);
  return number_;
}

const std::string& JsonValue::as_string() const {
  DG_CHECK(type_ == Type::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  DG_CHECK(type_ == Type::kArray);
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  DG_CHECK(type_ == Type::kObject);
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::push(JsonValue v) {
  DG_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  DG_CHECK(type_ == Type::kObject);
  object_.emplace_back(std::move(key), std::move(v));
}

namespace {

void escape_to(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_to(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan; null keeps the document valid
    return;
  }
  char buf[32];
  // %.17g round-trips doubles exactly; trim to the shortest that does.
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: number_to(number_, out); break;
    case Type::kString: escape_to(string_, out); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        escape_to(object_[i].first, out);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over [p, end).
class Parser {
 public:
  Parser(const char* p, const char* end) : p_(p), begin_(p), end_(end) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (p_ != end_) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(p_ - begin_) + ": " + what);
  }

  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  char peek() {
    if (p_ == end_) fail("unexpected end of input");
    return *p_;
  }

  void expect(char c) {
    if (p_ == end_ || *p_ != c) fail(std::string("expected '") + c + "'");
    ++p_;
  }

  bool consume_literal(const char* lit) {
    const char* q = p_;
    for (const char* l = lit; *l; ++l, ++q) {
      if (q == end_ || *q != *l) return false;
    }
    p_ = q;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::str(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue::null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++p_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++p_;
      return arr;
    }
    for (;;) {
      arr.push(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (p_ == end_) fail("unterminated string");
      const char c = *p_++;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ == end_) fail("unterminated escape");
      const char e = *p_++;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (end_ - p_ < 4) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the engine only ever emits ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  JsonValue parse_number() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
                          *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      digits = digits || (*p_ >= '0' && *p_ <= '9');
      ++p_;
    }
    if (!digits) fail("invalid number");
    const std::string token(start, p_);
    char* endp = nullptr;
    const double v = std::strtod(token.c_str(), &endp);
    if (endp == nullptr || *endp != '\0') fail("invalid number '" + token + "'");
    return JsonValue::number(v);
  }

  const char* p_;
  const char* begin_;
  const char* end_;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.parse_document();
}

}  // namespace dyngossip
