#include "sim/runner/thread_pool.hpp"

#include <utility>

#include "telemetry/timeline.hpp"

namespace dyngossip {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) n_threads = hardware_threads();
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    Job job;
    job.task = std::move(task);
    if (timeline_ != nullptr) job.enqueued_at = TimelineRecorder::now();
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::set_timeline(TimelineRecorder* timeline) {
  const std::lock_guard<std::mutex> lock(mu_);
  timeline_ = timeline;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    TimelineRecorder* timeline = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      timeline = timeline_;
    }
    if (timeline != nullptr) {
      timeline->span("queue_wait", "pool", job.enqueued_at,
                     TimelineRecorder::now());
    }
    job.task();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace dyngossip
