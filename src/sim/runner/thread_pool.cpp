#include "sim/runner/thread_pool.hpp"

#include <utility>

namespace dyngossip {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) n_threads = hardware_threads();
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace dyngossip
