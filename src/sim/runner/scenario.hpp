// Scenario model for the parallel scenario engine.
//
// A scenario is one registered experiment — an algorithm × adversary × size
// grid (a paper table, figure, or ablation).  Its run function receives a
// ScenarioContext (thread pool, trial count, quick mode, parameter
// overrides) and returns ScenarioTables that the emitters render as aligned
// text, CSV, or JSON.  Adding a future experiment means writing one
// registration function, not a new binary + CMake target.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/runner/thread_pool.hpp"

namespace dyngossip {

class ProbeSink;
class ResultCache;
class TimelineRecorder;

/// One declared scenario parameter (documentation + CLI validation).
struct ParamSpec {
  enum class Kind { kInt, kDouble, kBool, kString };

  std::string name;
  Kind kind = Kind::kInt;
  std::string default_value;  ///< rendered in `dyngossip list`
  std::string help;
};

/// One rendered table: title, column headers, string cells, trailing note.
struct ScenarioTable {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  std::string note;  ///< "expected shape" prose printed after the table
};

/// A scenario run's full output (some scenarios emit several tables).
struct ScenarioResult {
  std::string scenario;
  std::vector<ScenarioTable> tables;
};

[[nodiscard]] bool operator==(const ScenarioTable& a, const ScenarioTable& b);
[[nodiscard]] bool operator==(const ScenarioResult& a, const ScenarioResult& b);
inline bool operator!=(const ScenarioResult& a, const ScenarioResult& b) {
  return !(a == b);
}

/// Grid-size axis of a scenario run.  `quick` shrinks the default grids to
/// CI-smoke settings; `large` stretches the flagship scenarios to
/// n ~ 10⁴ (single trial, churn-style adversaries) to exercise the
/// flat-snapshot engine path at scale; `xlarge` pushes single_source /
/// sigma_stable_churn to n = 10⁵, where intra-round engine sharding and the
/// sparse KnowledgeSet representation carry the run.
enum class ScenarioScale : std::uint8_t {
  kQuick = 0,
  kDefault = 1,
  kLarge = 2,
  kXLarge = 3,
};

/// Parses "quick" / "default" / "large" / "xlarge"; returns false on
/// anything else.
[[nodiscard]] bool parse_scenario_scale(const std::string& text, ScenarioScale* out);

/// Execution context handed to a scenario's run function.
class ScenarioContext {
 public:
  /// `trials` = 0 lets the scenario pick its default (see trials_or).
  ScenarioContext(ThreadPool& pool, std::size_t trials, ScenarioScale scale,
                  std::map<std::string, std::string> params = {})
      : pool_(&pool), trials_(trials), scale_(scale), params_(std::move(params)) {}

  /// Back-compat convenience: bool quick flag (tests construct these).
  ScenarioContext(ThreadPool& pool, std::size_t trials, bool quick,
                  std::map<std::string, std::string> params = {})
      : ScenarioContext(pool, trials,
                        quick ? ScenarioScale::kQuick : ScenarioScale::kDefault,
                        std::move(params)) {}

  /// Pool scenario jobs run on.
  [[nodiscard]] ThreadPool& pool() const noexcept { return *pool_; }

  /// Requested trials per configuration, or `def` when unset.
  [[nodiscard]] std::size_t trials_or(std::size_t def) const noexcept {
    return trials_ == 0 ? def : trials_;
  }

  /// Grid-size axis (see ScenarioScale).
  [[nodiscard]] ScenarioScale scale() const noexcept { return scale_; }

  /// Quick mode: smaller grids, fewer trials (CI smoke settings).
  [[nodiscard]] bool quick() const noexcept {
    return scale_ == ScenarioScale::kQuick;
  }

  /// Scale-up mode: n ~ 10⁴ grids on the scenarios that support them.
  [[nodiscard]] bool large() const noexcept {
    return scale_ == ScenarioScale::kLarge;
  }

  /// Frontier mode: n = 10⁵ grids on the flagship scenarios (scenarios
  /// without an xlarge grid treat it as large).
  [[nodiscard]] bool xlarge() const noexcept {
    return scale_ == ScenarioScale::kXLarge;
  }

  /// Global --adversary=/--trace= axis: an adversary spec string (see
  /// adversary/registry.hpp) overriding the scenario's default schedule
  /// family, or "" when the scenario should run its own defaults.  Set by
  /// the CLI after validation; only scenarios registered with
  /// adversary_axis accept it.
  [[nodiscard]] const std::string& adversary_spec() const noexcept {
    return adversary_;
  }
  [[nodiscard]] bool has_adversary_override() const noexcept {
    return !adversary_.empty();
  }
  void set_adversary_spec(std::string spec) { adversary_ = std::move(spec); }

  /// Global --algo= axis: an algorithm spec string (see algo/registry.hpp)
  /// overriding the scenario's default algorithm family, or "" when the
  /// scenario should run its own default.  Set by the CLI after validation;
  /// only scenarios registered with algo_axis accept it.
  [[nodiscard]] const std::string& algo_spec() const noexcept { return algo_; }
  [[nodiscard]] bool has_algo_override() const noexcept { return !algo_.empty(); }
  void set_algo_spec(std::string spec) { algo_ = std::move(spec); }

  /// Global --fault= axis: a fault spec string (see fault/fault_spec.hpp)
  /// injecting drop/crash/duplicate faults into every trial, or "" for the
  /// fault-free default.  Set by the CLI after validation; only scenarios
  /// registered with fault_axis accept it.
  [[nodiscard]] const std::string& fault_spec() const noexcept { return fault_; }
  [[nodiscard]] bool has_fault_override() const noexcept {
    return !fault_.empty();
  }
  void set_fault_spec(std::string spec) { fault_ = std::move(spec); }

  /// Global --trial-timeout= axis: a wall-clock budget per trial in seconds
  /// (0: none).  Over-budget trials stop with RunStatus::kTimeout — a
  /// host-dependent, non-reproducible outcome by design.
  [[nodiscard]] double trial_timeout() const noexcept { return trial_timeout_; }
  void set_trial_timeout(double seconds) { trial_timeout_ = seconds; }

  /// Global --probe= axis: the sink collecting per-round series from every
  /// instrumented trial, or null (the default) for the exact legacy code
  /// path.  Set by the CLI after parsing the probe spec; scenarios that
  /// pre-date the observer plane simply never register series.
  [[nodiscard]] ProbeSink* probe_sink() const noexcept { return probe_sink_; }
  void set_probe_sink(ProbeSink* sink) { probe_sink_ = sink; }

  /// Global --timeline= axis: the wall-clock span recorder shared by the
  /// engines and the thread pool, or null (the default).
  [[nodiscard]] TimelineRecorder* timeline() const noexcept { return timeline_; }
  void set_timeline(TimelineRecorder* timeline) { timeline_ = timeline; }

  /// Global --cache= axis: the content-addressed result cache consulted by
  /// the memoized sweep scheduler (cache/memo_sweep.hpp), or null (the
  /// default) for always-cold runs.  Attached observers force cold runs so
  /// probe/timeline series stay complete; results are bit-identical either
  /// way (the purity invariant the cache is built on).
  [[nodiscard]] ResultCache* cache() const noexcept { return cache_; }
  void set_cache(ResultCache* cache) { cache_ = cache; }

  /// Typed parameter access with defaults; exits with a message on a value
  /// that does not parse (mirrors CliArgs behaviour).
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;

  /// get_int plus range validation; exits with a usage message when the
  /// value falls outside [lo, hi].  Scenarios use this for size params so a
  /// negative --n dies as a flag error, not a bad_alloc.
  [[nodiscard]] std::size_t get_size(const std::string& name, std::size_t def,
                                     std::size_t lo, std::size_t hi) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& def) const;

 private:
  ThreadPool* pool_;
  std::size_t trials_;
  ScenarioScale scale_;
  std::map<std::string, std::string> params_;
  std::string adversary_;
  std::string algo_;
  std::string fault_;
  double trial_timeout_ = 0.0;
  ProbeSink* probe_sink_ = nullptr;
  TimelineRecorder* timeline_ = nullptr;
  ResultCache* cache_ = nullptr;
};

/// A registered experiment.
struct Scenario {
  std::string name;         ///< registry key, e.g. "table1"
  std::string description;  ///< one line for `dyngossip list`
  std::vector<ParamSpec> params;
  std::function<ScenarioResult(const ScenarioContext&)> run;
  /// True when the scenario honours the global --adversary=/--trace= axis
  /// (ScenarioContext::adversary_spec); the CLI rejects the flags otherwise.
  bool adversary_axis = false;
  /// True when the scenario additionally honours the global --algo= axis
  /// (ScenarioContext::algo_spec); the CLI rejects the flag otherwise.
  bool algo_axis = false;
  /// True when the scenario additionally honours the global --fault= axis
  /// (ScenarioContext::fault_spec); the CLI rejects the flag otherwise.
  bool fault_axis = false;
};

}  // namespace dyngossip
