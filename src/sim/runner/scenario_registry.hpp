// Name → Scenario registry behind the dyngossip CLI and the bench shims.
//
// Registration is explicit (register_all_scenarios in src/scenarios) rather
// than static-initializer magic, so static linking never drops a scenario
// and tests can build private registries.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/runner/scenario.hpp"

namespace dyngossip {

class ScenarioRegistry {
 public:
  /// Registers a scenario.  Throws std::invalid_argument on an empty name,
  /// a missing run function, or a duplicate name.
  void add(Scenario scenario);

  /// Scenario by name, or nullptr when unknown.
  [[nodiscard]] const Scenario* find(const std::string& name) const noexcept;

  /// All scenarios, sorted by name.
  [[nodiscard]] std::vector<const Scenario*> list() const;

  /// Number of registered scenarios.
  [[nodiscard]] std::size_t size() const noexcept { return scenarios_.size(); }

  /// Process-wide registry used by the CLI and the bench shims.
  [[nodiscard]] static ScenarioRegistry& global();

 private:
  std::map<std::string, Scenario> scenarios_;
};

}  // namespace dyngossip
