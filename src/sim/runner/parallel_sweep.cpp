#include "sim/runner/parallel_sweep.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/runner/parallel.hpp"

namespace dyngossip {

std::vector<std::uint64_t> derive_sweep_seeds(std::size_t trials,
                                              std::uint64_t base_seed) {
  DG_CHECK(trials >= 1);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(trials);
  std::uint64_t sm = base_seed;
  for (std::size_t i = 0; i < trials; ++i) seeds.push_back(splitmix64(sm));
  return seeds;
}

Summary parallel_sweep(ThreadPool& pool, std::size_t trials, std::uint64_t base_seed,
                       const std::function<double(std::uint64_t)>& measure) {
  const std::vector<std::uint64_t> seeds = derive_sweep_seeds(trials, base_seed);
  std::vector<double> samples(trials);
  parallel_for(pool, trials,
               [&](std::size_t i) { samples[i] = measure(seeds[i]); });
  return Summary::of(std::move(samples));
}

Summary parallel_sweep(std::size_t trials, std::uint64_t base_seed,
                       const std::function<double(std::uint64_t)>& measure,
                       std::size_t n_threads) {
  ThreadPool pool(n_threads);
  return parallel_sweep(pool, trials, base_seed, measure);
}

}  // namespace dyngossip
