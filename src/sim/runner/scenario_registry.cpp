#include "sim/runner/scenario_registry.hpp"

#include <stdexcept>
#include <utility>

namespace dyngossip {

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty()) {
    throw std::invalid_argument("scenario name must be non-empty");
  }
  if (!scenario.run) {
    throw std::invalid_argument("scenario '" + scenario.name +
                                "' has no run function");
  }
  std::string name = scenario.name;
  const auto [it, inserted] = scenarios_.emplace(std::move(name), std::move(scenario));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("duplicate scenario name '" + it->first + "'");
  }
}

const Scenario* ScenarioRegistry::find(const std::string& name) const noexcept {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) {
    (void)name;
    out.push_back(&scenario);
  }
  return out;  // std::map iteration is already name-sorted
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry registry;
  return registry;
}

}  // namespace dyngossip
