// Trial-level vs intra-round parallelism policy.
//
// The ThreadPool is a leaf executor: parallel_for submits tasks and blocks
// in wait_idle, so it may only be driven from a non-pool thread.  A scenario
// therefore has to pick ONE axis per table: either fan trials out across the
// pool (JobBatch, engines serial) or run trials serially on the caller
// thread and hand each engine the pool for intra-round sharding.  Both axes
// are deterministic — trials write preassigned slots, engines merge shards
// in node order — so the choice affects wall time only, never results.
#pragma once

#include <cstddef>

#include "sim/runner/thread_pool.hpp"

namespace dyngossip {

/// True when a table of `jobs` independent trials should run serially with
/// the pool handed to each engine (intra-round sharding) instead of being
/// fanned out across the pool.  Rule: trial-level parallelism wins whenever
/// there are enough jobs to fill the pool — it has no per-round fork/join
/// overhead; only when trials cannot saturate the workers (the large/xlarge
/// one-trial-per-row grids) does sharding inside the round pay.
[[nodiscard]] inline bool prefer_intra_round_sharding(std::size_t jobs,
                                                      const ThreadPool& pool) {
  return pool.size() > 1 && jobs < pool.size();
}

}  // namespace dyngossip
