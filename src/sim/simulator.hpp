// One-call simulators binding algorithm × adversary × metrics.
//
// These are the library's top-level entry points: each runs one paper
// algorithm against a caller-supplied adversary and returns the measured
// RunResult.  run_oblivious_multi_source implements the full two-phase
// orchestration of Algorithm 2 (center election, walk phase, relabelled
// phase-2 TokenSpace, metric merging) — see Section 3.2.2 and DESIGN.md.
#pragma once

#include <cstdint>

#include "adversary/adversary.hpp"
#include "sim/config.hpp"
#include "telemetry/telemetry.hpp"

namespace dyngossip {

class FaultPlan;
class ThreadPool;

// Every entry point takes an optional worker pool for intra-round engine
// sharding (null: serial engine).  See UnicastEngineOptions::pool for the
// contract; results are bit-identical at any thread count.  The optional
// `faults` plan (null: fault-free) and `timeout_seconds` wall-clock budget
// (0: none) are forwarded to the engine; multi-phase executions share one
// plan so liveness history is continuous across phases.  The optional
// `telemetry` observer plane (telemetry/telemetry.hpp) forwards to every
// phase engine; null members keep the exact legacy code path.

/// Runs Algorithm 1 (Single-Source-Unicast): all k tokens start at `source`.
[[nodiscard]] RunResult run_single_source(std::size_t n, std::uint32_t k,
                                          NodeId source, Adversary& adversary,
                                          Round max_rounds,
                                          ThreadPool* pool = nullptr,
                                          FaultPlan* faults = nullptr,
                                          double timeout_seconds = 0.0,
                                          Telemetry telemetry = {});

/// Runs Multi-Source-Unicast over an arbitrary token labelling.
[[nodiscard]] RunResult run_multi_source(std::size_t n, const TokenSpacePtr& space,
                                         Adversary& adversary, Round max_rounds,
                                         ThreadPool* pool = nullptr,
                                         FaultPlan* faults = nullptr,
                                         double timeout_seconds = 0.0,
                                         Telemetry telemetry = {});

/// Runs the static spanning-tree baseline (static adversary required).
[[nodiscard]] RunResult run_spanning_tree(std::size_t n, const TokenSpacePtr& space,
                                          Adversary& adversary, Round max_rounds,
                                          NodeId root = 0,
                                          ThreadPool* pool = nullptr,
                                          FaultPlan* faults = nullptr,
                                          double timeout_seconds = 0.0,
                                          Telemetry telemetry = {});

/// Runs naive phase flooding (local broadcast) from an arbitrary initial
/// knowledge assignment.
[[nodiscard]] RunResult run_phase_flooding(std::size_t n, std::size_t k,
                                           const std::vector<KnowledgeSet>& initial,
                                           Adversary& adversary, Round max_rounds,
                                           ThreadPool* pool = nullptr,
                                           FaultPlan* faults = nullptr,
                                           double timeout_seconds = 0.0,
                                           Telemetry telemetry = {});

/// Runs uniform-random flooding (local broadcast).
[[nodiscard]] RunResult run_random_flooding(std::size_t n, std::size_t k,
                                            const std::vector<KnowledgeSet>& initial,
                                            Adversary& adversary, Round max_rounds,
                                            std::uint64_t seed,
                                            ThreadPool* pool = nullptr,
                                            FaultPlan* faults = nullptr,
                                            double timeout_seconds = 0.0,
                                            Telemetry telemetry = {});

/// Algorithm 2 options.
struct ObliviousMsOptions {
  std::uint64_t seed = 1;        ///< algorithm randomness (centers + walks)
  Round max_rounds = 0;          ///< global cap (0: derive from n·k)
  Round phase1_cap = 0;          ///< phase-1 cap (0: derive, clamped ℓ bound)
  bool pseudocode_walk_prob = false;  ///< the 1/d(u) variant (paper typo)
  bool force_phase1 = false;     ///< run phase 1 even when s is small
  /// Overrides the expected center count f (0: paper formula
  /// n^{1/2} k^{1/4} log^{5/4} n).  At laptop-scale n the log^{5/4} factor
  /// saturates the formula at f = n, collapsing phase 1; benches drop the
  /// polylog factor to reproduce the asymptotic *shape* (see EXPERIMENTS.md).
  std::size_t f_override = 0;
  /// Worker pool for intra-round sharding of both phase engines (null:
  /// serial).  Same contract as UnicastEngineOptions::pool.
  ThreadPool* pool = nullptr;
  /// Per-trial fault plan shared by both phase engines (not owned; null:
  /// fault-free).  Phase 2 continues phase 1's liveness history because the
  /// plan keys liveness on absolute round numbers.
  FaultPlan* faults = nullptr;
  /// Wall-clock budget in seconds for the whole two-phase run (0: none).
  double timeout_seconds = 0.0;
  /// Observer plane shared by both phase engines (null members: legacy
  /// path).  Probe samples carry phase-continuous round numbers, so the
  /// per-round series of a two-phase run reconciles with the merged totals.
  Telemetry telemetry;
};

/// Runs Algorithm 2 (Oblivious-Multi-Source-Unicast).  The adversary must
/// be oblivious for the guarantees to apply (not enforced: benches also
/// probe it against adaptive adversaries to show where the analysis breaks).
[[nodiscard]] ObliviousMsResult run_oblivious_multi_source(
    std::size_t n, const TokenSpacePtr& space, Adversary& adversary,
    const ObliviousMsOptions& opts);

}  // namespace dyngossip
