// Sweep utilities shared by the bench binaries.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hpp"

namespace dyngossip {

/// Runs `measure(seed)` for `trials` derived seeds and summarizes the
/// samples.  Seeds are SplitMix64-derived from base_seed so adjacent bench
/// rows never share streams.
[[nodiscard]] Summary sweep_seeds(std::size_t trials, std::uint64_t base_seed,
                                  const std::function<double(std::uint64_t)>& measure);

/// Geometric size grid {lo, lo*factor, ...} clamped at hi (factor > 1).
[[nodiscard]] std::vector<std::size_t> geometric_grid(std::size_t lo, std::size_t hi,
                                                      double factor);

}  // namespace dyngossip
