#include "sim/simulator.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/mathx.hpp"
#include "core/flooding.hpp"
#include "core/multi_source.hpp"
#include "core/oblivious_ms.hpp"
#include "core/random_flooding.hpp"
#include "core/single_source.hpp"
#include "core/spanning_tree.hpp"
#include "engine/broadcast_engine.hpp"
#include "engine/unicast_engine.hpp"
#include "sim/bounds.hpp"

namespace dyngossip {

namespace {

[[nodiscard]] RunResult finish(const RunMetrics& metrics) {
  RunResult result;
  result.metrics = metrics;
  result.rounds = metrics.rounds;
  result.completed = metrics.completed;
  return result;
}

}  // namespace

RunResult run_single_source(std::size_t n, std::uint32_t k, NodeId source,
                            Adversary& adversary, Round max_rounds,
                            ThreadPool* pool, FaultPlan* faults,
                            double timeout_seconds, Telemetry telemetry) {
  SingleSourceConfig cfg{n, k, source};
  UnicastEngineOptions opts;
  opts.pool = pool;
  opts.faults = faults;
  opts.run_timeout_seconds = timeout_seconds;
  opts.telemetry = telemetry;
  UnicastEngine engine(SingleSourceNode::make_all(cfg), adversary,
                       SingleSourceNode::initial_knowledge(cfg), k, opts);
  return finish(engine.run(max_rounds));
}

RunResult run_multi_source(std::size_t n, const TokenSpacePtr& space,
                           Adversary& adversary, Round max_rounds,
                           ThreadPool* pool, FaultPlan* faults,
                           double timeout_seconds, Telemetry telemetry) {
  MultiSourceConfig cfg{n, space};
  UnicastEngineOptions opts;
  opts.pool = pool;
  opts.faults = faults;
  opts.run_timeout_seconds = timeout_seconds;
  opts.telemetry = telemetry;
  UnicastEngine engine(MultiSourceNode::make_all(cfg), adversary,
                       space->initial_knowledge(n), space->total_tokens(), opts);
  return finish(engine.run(max_rounds));
}

RunResult run_spanning_tree(std::size_t n, const TokenSpacePtr& space,
                            Adversary& adversary, Round max_rounds, NodeId root,
                            ThreadPool* pool, FaultPlan* faults,
                            double timeout_seconds, Telemetry telemetry) {
  SpanningTreeConfig cfg{n, space, root};
  UnicastEngineOptions opts;
  opts.pool = pool;
  opts.faults = faults;
  opts.run_timeout_seconds = timeout_seconds;
  opts.telemetry = telemetry;
  UnicastEngine engine(SpanningTreeNode::make_all(cfg), adversary,
                       space->initial_knowledge(n), space->total_tokens(), opts);
  return finish(engine.run(max_rounds));
}

RunResult run_phase_flooding(std::size_t n, std::size_t k,
                             const std::vector<KnowledgeSet>& initial,
                             Adversary& adversary, Round max_rounds,
                             ThreadPool* pool, FaultPlan* faults,
                             double timeout_seconds, Telemetry telemetry) {
  BroadcastEngineOptions opts;
  opts.pool = pool;
  opts.faults = faults;
  opts.run_timeout_seconds = timeout_seconds;
  opts.telemetry = telemetry;
  BroadcastEngine engine(PhaseFloodingNode::make_all(n, k, initial), adversary,
                         initial, k, opts);
  return finish(engine.run(max_rounds));
}

RunResult run_random_flooding(std::size_t n, std::size_t k,
                              const std::vector<KnowledgeSet>& initial,
                              Adversary& adversary, Round max_rounds,
                              std::uint64_t seed, ThreadPool* pool,
                              FaultPlan* faults, double timeout_seconds,
                              Telemetry telemetry) {
  BroadcastEngineOptions opts;
  opts.pool = pool;
  opts.faults = faults;
  opts.run_timeout_seconds = timeout_seconds;
  opts.telemetry = telemetry;
  BroadcastEngine engine(RandomFloodingNode::make_all(n, k, initial, seed),
                         adversary, initial, k, opts);
  return finish(engine.run(max_rounds));
}

ObliviousMsResult run_oblivious_multi_source(std::size_t n,
                                             const TokenSpacePtr& space,
                                             Adversary& adversary,
                                             const ObliviousMsOptions& opts) {
  DG_CHECK(space != nullptr);
  const std::size_t s = space->num_sources();
  const std::uint32_t k = space->total_tokens();
  ObliviousMsResult result;

  const Round max_rounds =
      opts.max_rounds > 0
          ? opts.max_rounds
          : static_cast<Round>(std::min<std::uint64_t>(
                std::uint64_t{50} * n * std::max<std::uint64_t>(k, 1) + 1000,
                200'000'000ull));

  // Small source count: phase 1 is skipped and Multi-Source runs directly
  // (Algorithm 2, line 1).
  const bool small_s =
      static_cast<double>(s) <= bounds::source_threshold(n) && !opts.force_phase1;
  if (small_s) {
    result.skipped_phase1 = true;
    const RunResult direct =
        run_multi_source(n, space, adversary, max_rounds, opts.pool,
                         opts.faults, opts.timeout_seconds, opts.telemetry);
    result.phase2 = direct.metrics;
    result.total = direct.metrics;
    result.completed = direct.completed;
    return result;
  }

  Rng rng(opts.seed);

  // --- Center election: each node marks itself with probability f/n.
  // (Re-sampled until at least one center exists; the w.h.p. analysis
  // ignores the 2^{-Θ(f)} failure event, a simulation must not.)
  const double f = opts.f_override > 0
                       ? std::min(static_cast<double>(opts.f_override),
                                  static_cast<double>(n))
                       : bounds::centers_f(n, k);
  std::vector<bool> is_center(n, false);
  std::size_t center_count = 0;
  for (int attempt = 0; attempt < 256 && center_count == 0; ++attempt) {
    for (std::size_t v = 0; v < n; ++v) {
      is_center[v] = rng.bernoulli(f / static_cast<double>(n));
      if (is_center[v]) ++center_count;
    }
  }
  DG_CHECK(center_count > 0);
  result.num_centers = center_count;

  // --- Phase 1: random walks until every token rests at a center.
  WalkConfig wcfg;
  wcfg.n = n;
  wcfg.k = k;
  // γ = n log n / f, recomputed from the f actually in force.
  wcfg.gamma = static_cast<double>(n) * log2_clamped(static_cast<double>(n)) / f;
  wcfg.pseudocode_walk_prob = opts.pseudocode_walk_prob;

  std::vector<std::unique_ptr<UnicastAlgorithm>> walkers;
  walkers.reserve(n);
  {
    Rng node_seeds = rng.split();
    for (NodeId v = 0; v < n; ++v) {
      std::vector<TokenId> held;
      const std::size_t src = space->index_of_node(v);
      if (src != kNotASource) held = space->tokens_of(src);
      walkers.push_back(std::make_unique<WalkNode>(v, wcfg, is_center[v],
                                                   std::move(held),
                                                   node_seeds.split()));
    }
  }

  DynamicGraphTracker tracker(n);
  UnicastEngineOptions ueopts;
  ueopts.tracker = &tracker;
  ueopts.pool = opts.pool;
  ueopts.faults = opts.faults;
  ueopts.run_timeout_seconds = opts.timeout_seconds;
  ueopts.telemetry = opts.telemetry;
  UnicastEngine phase1(std::move(walkers), adversary,
                       space->initial_knowledge(n), k, ueopts);

  const Round phase1_cap =
      opts.phase1_cap > 0
          ? opts.phase1_cap
          : static_cast<Round>(std::min(
                bounds::phase1_round_bound(n, k),
                static_cast<double>(std::max<Round>(max_rounds / 2, 1))));

  auto all_settled = [&](const UnicastEngine& e) {
    for (NodeId v = 0; v < n; ++v) {
      const auto& node = static_cast<const WalkNode&>(e.node(v));
      if (!node.is_center() && !node.held().empty()) return false;
    }
    return true;
  };
  phase1.run_until(all_settled, phase1_cap);
  result.phase1 = phase1.metrics();
  result.phase1_rounds = phase1.metrics().rounds;
  result.phase1_capped = !all_settled(phase1);

  // Collect walk statistics and final token ownership.  If the cap was hit,
  // unsettled tokens remain owned by their current (non-center) holders:
  // those holders simply join the phase-2 source set.
  std::vector<std::pair<NodeId, std::vector<TokenId>>> ownership;
  std::vector<std::vector<TokenId>> held_by(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto& node = static_cast<const WalkNode&>(phase1.node(v));
    result.walk_virtual_steps += node.virtual_steps();
    result.walk_real_steps += node.walk_steps();
    if (!node.held().empty()) held_by[v] = node.held();
  }
  for (NodeId v = 0; v < n; ++v) {
    if (!held_by[v].empty()) ownership.emplace_back(v, std::move(held_by[v]));
  }
  result.phase1.virtual_steps = result.walk_virtual_steps;

  // --- Phase 2: Multi-Source-Unicast with the centers (the ⟨center, index⟩
  // relabelling) as sources, continuing the same execution (round numbers,
  // topology tracker and adversary state carry over).
  auto phase2_space = std::make_shared<TokenSpace>(k, std::move(ownership));
  MultiSourceConfig mcfg{n, phase2_space};
  std::vector<KnowledgeSet> carried;
  carried.reserve(n);
  for (NodeId v = 0; v < n; ++v) carried.push_back(phase1.knowledge_of(v));

  UnicastEngineOptions p2opts;
  p2opts.tracker = &tracker;
  p2opts.pool = opts.pool;
  p2opts.faults = opts.faults;
  p2opts.run_timeout_seconds = opts.timeout_seconds;
  p2opts.telemetry = opts.telemetry;
  p2opts.start_round = phase1.round() + 1;
  // Build the nodes before handing `carried` to the engine (argument
  // evaluation order must not race with the move).
  auto phase2_nodes = MultiSourceNode::make_all_with(mcfg, carried);
  UnicastEngine phase2(std::move(phase2_nodes), adversary, std::move(carried), k,
                       p2opts);
  phase2.run(max_rounds);
  result.phase2 = phase2.metrics();

  result.total = merge_metrics(result.phase1, result.phase2);
  result.completed = result.phase2.completed;
  result.total.completed = result.completed;
  return result;
}

}  // namespace dyngossip
