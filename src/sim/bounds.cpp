#include "sim/bounds.hpp"

#include <algorithm>

#include "common/mathx.hpp"

namespace dyngossip::bounds {

namespace {
[[nodiscard]] double logn(std::size_t n) {
  return log2_clamped(static_cast<double>(n));
}
}  // namespace

double centers_f(std::size_t n, std::size_t k) {
  const auto nd = static_cast<double>(n);
  const auto kd = static_cast<double>(k);
  const double f = powd(nd, 0.5) * powd(kd, 0.25) * powd(logn(n), 1.25);
  return clampd(f, 1.0, nd);
}

double degree_threshold_gamma(std::size_t n, std::size_t k) {
  return static_cast<double>(n) * logn(n) / centers_f(n, k);
}

double source_threshold(std::size_t n) {
  return powd(static_cast<double>(n), 2.0 / 3.0) * powd(logn(n), 5.0 / 3.0);
}

double phase1_round_bound(std::size_t n, std::size_t k) {
  return powd(static_cast<double>(k), 0.25) * powd(static_cast<double>(n), 2.5) *
         powd(logn(n), 2.25);
}

double walk_length_L(std::size_t n, std::size_t k) {
  const double f = centers_f(n, k);
  return powd(static_cast<double>(n), 4.0) * powd(logn(n), 5.0) / (f * f * f);
}

double thm38_total_messages(std::size_t n, std::size_t k) {
  return powd(static_cast<double>(n), 2.5) * powd(static_cast<double>(k), 0.25) *
         powd(logn(n), 1.25);
}

double table1_amortized(std::size_t n, std::size_t k) {
  return powd(static_cast<double>(n), 2.5) * powd(logn(n), 1.25) /
         powd(static_cast<double>(k), 0.75);
}

double single_source_messages(std::size_t n, std::size_t k) {
  const auto nd = static_cast<double>(n);
  return nd * nd + nd * static_cast<double>(k);
}

double multi_source_messages(std::size_t n, std::size_t k, std::size_t s) {
  const auto nd = static_cast<double>(n);
  return nd * nd * static_cast<double>(s) + nd * static_cast<double>(k);
}

double stable_round_bound(std::size_t n, std::size_t k) {
  return static_cast<double>(n) * static_cast<double>(k);
}

double broadcast_lb_amortized(std::size_t n) {
  const auto nd = static_cast<double>(n);
  const double l = logn(n);
  return nd * nd / (l * l);
}

double broadcast_ub_amortized(std::size_t n) {
  const auto nd = static_cast<double>(n);
  return nd * nd;
}

double static_amortized(std::size_t n, std::size_t k) {
  const auto nd = static_cast<double>(n);
  return nd * nd / std::max(1.0, static_cast<double>(k)) + nd;
}

double sparse_broadcaster_threshold(std::size_t n, double c) {
  return static_cast<double>(n) / (c * logn(n));
}

}  // namespace dyngossip::bounds
