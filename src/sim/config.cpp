#include "sim/config.hpp"

namespace dyngossip {

RunMetrics merge_metrics(const RunMetrics& a, const RunMetrics& b) {
  RunMetrics m;
  m.unicast = a.unicast;
  m.unicast += b.unicast;
  m.broadcasts = a.broadcasts + b.broadcasts;
  m.tc = a.tc + b.tc;
  m.deletions = a.deletions + b.deletions;
  m.learnings = a.learnings + b.learnings;
  m.duplicate_token_deliveries =
      a.duplicate_token_deliveries + b.duplicate_token_deliveries;
  m.virtual_steps = a.virtual_steps + b.virtual_steps;
  m.rounds = a.rounds + b.rounds;
  // Completion, status, and residual coverage reflect the execution's end
  // state, which the final phase decides.
  m.completed = b.completed;
  m.status = b.status;
  m.coverage = b.coverage;
  return m;
}

}  // namespace dyngossip
