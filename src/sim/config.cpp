#include "sim/config.hpp"

namespace dyngossip {

RunMetrics merge_metrics(const RunMetrics& a, const RunMetrics& b) {
  RunMetrics m;
  m.unicast = a.unicast;
  m.unicast += b.unicast;
  m.broadcasts = a.broadcasts + b.broadcasts;
  m.tc = a.tc + b.tc;
  m.deletions = a.deletions + b.deletions;
  m.learnings = a.learnings + b.learnings;
  m.duplicate_token_deliveries =
      a.duplicate_token_deliveries + b.duplicate_token_deliveries;
  m.virtual_steps = a.virtual_steps + b.virtual_steps;
  m.rounds = a.rounds + b.rounds;
  m.completed = b.completed;  // completion is decided by the final phase
  return m;
}

}  // namespace dyngossip
