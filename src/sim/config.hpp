// Run configurations and result bundles for the simulators.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "core/tokens.hpp"
#include "metrics/accounting.hpp"

namespace dyngossip {

/// Result of a single simulation run.
struct RunResult {
  RunMetrics metrics;   ///< totals across all phases
  Round rounds = 0;     ///< rounds executed (== metrics.rounds)
  bool completed = false;

  /// Convenience: amortized messages per token.
  [[nodiscard]] double amortized(std::uint64_t k) const {
    return metrics.amortized(k);
  }
};

/// Result of an Algorithm 2 (Oblivious-Multi-Source) run with phase split.
struct ObliviousMsResult {
  RunMetrics total;    ///< merged across phases
  RunMetrics phase1;   ///< random-walk funnelling (zeroed if skipped)
  RunMetrics phase2;   ///< Multi-Source-Unicast with the centers as sources
  std::size_t num_centers = 0;      ///< realized center count (0 if phase 1 skipped)
  Round phase1_rounds = 0;          ///< realized phase-1 length
  bool skipped_phase1 = false;      ///< s <= n^{2/3} log^{5/3} n path taken
  bool phase1_capped = false;       ///< hit the phase-1 round cap (fallback used)
  bool completed = false;           ///< dissemination finished
  std::uint64_t walk_virtual_steps = 0;  ///< self-loop steps (time, not messages)
  std::uint64_t walk_real_steps = 0;     ///< token walk messages
};

/// Field-wise accumulation of phase metrics into a total.
[[nodiscard]] RunMetrics merge_metrics(const RunMetrics& a, const RunMetrics& b);

}  // namespace dyngossip
