// Fault-plane spec: the execution-perturbation axis of a run.
//
// The paper's bounds assume a perfect network: every sent message is
// delivered and every node stays up.  The adversary registries perturb the
// *topology*; this spec perturbs the *execution* — per-delivery message
// loss/duplication and per-round node crash/recovery — as a first-class,
// strictly validated axis sharing the `family[:key=value,...]` grammar of
// common/spec.hpp:
//
//     fault:drop=0.01,crash=0.0005,recover=0.1,dup=0.002,amnesia=1,seed=7
//
// The only family is `fault`; the CLI additionally accepts a bare parameter
// list (`--fault=drop=0.05,seed=7`) as shorthand.  A spec with all rates at
// zero is *inactive*: engines take the exact fault-free code path, so an
// all-zero --fault run is byte-identical to no --fault at all (CI-gated).
//
// Determinism contract: a FaultPlan built from this spec keys every
// decision by position — (round, arc, payload-sequence) for drop/dup,
// (round, node) for crash/recover — under a SplitMix64 hash, never by
// evaluation order, so outcomes are bit-identical at any thread count (see
// fault_plan.hpp and docs/ARCHITECTURE.md).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/spec.hpp"

namespace dyngossip {

/// Thrown on malformed fault spec text, unknown keys, or out-of-range
/// values.  A dedicated type so CLI layers can map fault-axis misuse to
/// flag errors (exit 2), exactly like AdversarySpecError / AlgoSpecError.
class FaultSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed, validated fault spec.
struct FaultSpec {
  double drop = 0.0;     ///< per-delivery loss probability [0, 1]
  double crash = 0.0;    ///< per-round crash probability of a live node
  double recover = 0.0;  ///< per-round recovery probability of a down node
  double dup = 0.0;      ///< per-delivery duplication probability [0, 1]
  bool amnesia = false;  ///< crashed nodes lose their knowledge (wiped mirror)
  bool has_seed = false; ///< spec pinned its own fault stream seed
  std::uint64_t seed = 0;

  /// Parses `fault[:key=value,...]` — or a bare `key=value,...` parameter
  /// list, which is treated as `fault:` shorthand.  Strict: unknown keys,
  /// non-fraction rates, and drop+dup > 1 all throw FaultSpecError.
  [[nodiscard]] static FaultSpec parse(const std::string& text);

  /// Canonical `fault:k=v,...` rendering (keys sorted, defaults omitted;
  /// an all-default spec renders as the bare family name), so
  /// parse(s).to_string() round-trips like the sibling registries.
  [[nodiscard]] std::string to_string() const;

  /// True when any probability is nonzero — i.e. the plan can alter a run.
  /// Inactive specs guarantee the byte-identical fault-free path.
  [[nodiscard]] bool active() const noexcept {
    return drop > 0.0 || crash > 0.0 || dup > 0.0;
  }
};

[[nodiscard]] bool operator==(const FaultSpec& a, const FaultSpec& b);

/// Declared keys of the fault family (documentation + validation; shape
/// shared with the adversary/algorithm listings).
[[nodiscard]] const std::vector<SpecKey>& fault_spec_keys();

/// Listing entry for `dyngossip faults` (mirrors AdversaryFamily's
/// documentation fields; there is exactly one family).
struct FaultFamilyDoc {
  std::string name;
  std::string description;
  std::string example;
  const std::vector<SpecKey>* keys;
};
[[nodiscard]] FaultFamilyDoc fault_family_doc();

}  // namespace dyngossip
