// Per-trial fault plan: the deterministic realization of a FaultSpec.
//
// Determinism contract (the fault-plane analogue of the engines'
// order-preserving sharding): every decision is *position-keyed*, never
// order-keyed.  A delivery's fate is a pure SplitMix64 hash of
// (round, arc-index, per-arc payload sequence); a node's crash/recovery
// roll is a pure hash of (round, node).  No decision consumes stream state,
// so the engines may evaluate them in any order — serial, sharded, or
// skipped entirely for records that were already dropped — and the outcome
// is bit-identical at any thread count (enforced by
// tests/engine/sharded_identity_test.cpp and the CI 1/2/8-thread diff).
//
// The only mutable state is the liveness mask, advanced once per round by
// begin_round() on the engine's (single) driver thread before any sharded
// phase starts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "fault/fault_spec.hpp"

namespace dyngossip {

/// One trial's fault realization.  Engines hold a non-owning pointer (null
/// or inactive => the exact legacy fault-free code path).
class FaultPlan {
 public:
  /// What the network does with one delivered payload.
  enum class Fate : std::uint8_t { kDeliver = 0, kDrop = 1, kDuplicate = 2 };

  /// `trial_seed` seeds the decision stream unless the spec pins seed=.
  FaultPlan(const FaultSpec& spec, std::size_t n, std::uint64_t trial_seed);

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  /// True when the plan can alter a run; engines branch to the fault-aware
  /// path only in that case (inactive plans preserve byte-identity).
  [[nodiscard]] bool active() const noexcept { return spec_.active(); }

  /// Advances the liveness mask into round r (crash rolls for live nodes,
  /// recovery rolls for crashed ones — state as of round start, so a node
  /// never crashes and recovers in the same round).  Must be called with
  /// strictly increasing r; multi-phase executions (Algorithm 2) continue
  /// the same plan across engines.  Serial — call before sharded phases.
  void begin_round(Round r);

  /// Liveness of node v as of the last begin_round.
  [[nodiscard]] bool is_live(NodeId v) const { return live_[v] != 0; }

  /// Number of live nodes as of the last begin_round.
  [[nodiscard]] std::size_t live_count() const noexcept { return live_count_; }

  /// Nodes that crashed in the round begin_round last advanced into
  /// (engines wipe their knowledge mirrors under amnesia).
  [[nodiscard]] const std::vector<NodeId>& crashed_this_round() const noexcept {
    return crashed_now_;
  }

  [[nodiscard]] bool amnesia() const noexcept { return spec_.amnesia; }

  /// True when crashed nodes can come back (recover > 0) — an all-down
  /// execution without recovery is terminal (RunStatus::kAllDown).
  [[nodiscard]] bool can_recover() const noexcept { return spec_.recover > 0.0; }

  /// True when any per-delivery probability is nonzero (drop/dup).
  [[nodiscard]] bool has_delivery_faults() const noexcept {
    return spec_.drop > 0.0 || spec_.dup > 0.0;
  }

  /// Fate of the `seq`-th payload crossing directed arc `arc` in round r.
  /// Pure position-keyed hash: one uniform u in [0,1); u < drop => dropped,
  /// else u < drop + dup => duplicated.
  [[nodiscard]] Fate delivery_fate(Round r, std::size_t arc,
                                   std::uint32_t seq) const;

 private:
  /// Uniform [0, 1) from a position-keyed SplitMix64 hash (no state).
  [[nodiscard]] double roll(std::uint64_t salt, std::uint64_t a,
                            std::uint64_t b) const;

  FaultSpec spec_;
  std::uint64_t seed_;
  Round last_round_ = 0;
  std::size_t live_count_;
  std::vector<std::uint8_t> live_;
  std::vector<NodeId> crashed_now_;
};

}  // namespace dyngossip
