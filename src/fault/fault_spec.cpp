#include "fault/fault_spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>

namespace dyngossip {

namespace {

constexpr const char* kFamily = "fault";

/// Shortest decimal rendering that still round-trips the exact double, so
/// canonical specs read `drop=0.05`, never `drop=0.050000000000000003`.
[[nodiscard]] std::string render_fraction(double value) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

[[nodiscard]] bool known_fault_key(const std::string& key) {
  for (const SpecKey& k : fault_spec_keys()) {
    if (k.key == key) return true;
  }
  return false;
}

}  // namespace

const std::vector<SpecKey>& fault_spec_keys() {
  static const std::vector<SpecKey> keys = {
      {"drop", SpecKey::Kind::kDouble, "0",
       "per-delivery message-loss probability in [0, 1]"},
      {"crash", SpecKey::Kind::kDouble, "0",
       "per-round crash probability of each live node"},
      {"recover", SpecKey::Kind::kDouble, "0",
       "per-round recovery probability of each crashed node"},
      {"dup", SpecKey::Kind::kDouble, "0",
       "per-delivery duplication probability (drop + dup <= 1)"},
      {"amnesia", SpecKey::Kind::kBool, "0",
       "crashed nodes lose their knowledge instead of retaining it"},
      {"seed", SpecKey::Kind::kInt, "(trial seed)",
       "pins the fault decision stream (default: the per-trial seed)"},
  };
  return keys;
}

FaultFamilyDoc fault_family_doc() {
  return {kFamily,
          "deterministic execution faults: message drop/duplication and node "
          "crash/recovery, position-keyed so runs are bit-identical at any "
          "thread count",
          "fault:drop=0.05,crash=0.001,recover=0.1,seed=7",
          &fault_spec_keys()};
}

FaultSpec FaultSpec::parse(const std::string& text) {
  if (text.empty()) {
    throw FaultSpecError(
        "empty fault spec (expected fault:key=value,... or the bare "
        "key=value,... shorthand — see `dyngossip faults`)");
  }
  // `--fault=drop=0.05,seed=7` shorthand: a bare parameter list is treated
  // as the (only) fault family.  Anything else must name the family.
  std::string full = text;
  const bool named =
      text.rfind(kFamily, 0) == 0 && (text.size() == 5 || text[5] == ':');
  if (!named) full = std::string(kFamily) + ":" + text;

  std::string family;
  std::map<std::string, std::string> params;
  const std::string err = parse_spec_text(full, "fault", &family, &params);
  if (!err.empty()) throw FaultSpecError(err);
  if (family != kFamily) {
    throw FaultSpecError("bad fault spec '" + text + "': unknown family '" +
                         family + "' (the only fault family is 'fault')");
  }
  for (const auto& [key, value] : params) {
    (void)value;
    if (!known_fault_key(key)) {
      std::string known;
      for (const SpecKey& k : fault_spec_keys()) {
        if (!known.empty()) known += ", ";
        known += k.key;
      }
      throw FaultSpecError("bad fault spec '" + text + "': unknown key '" +
                           key + "' (known: " + known + ")");
    }
  }

  SpecValues values(kFamily, params,
                    [](const std::string& msg) { throw FaultSpecError(msg); });
  FaultSpec spec;
  spec.drop = values.get_fraction("drop", 0.0);
  spec.crash = values.get_fraction("crash", 0.0);
  spec.recover = values.get_fraction("recover", 0.0);
  spec.dup = values.get_fraction("dup", 0.0);
  spec.amnesia = values.get_bool("amnesia", false);
  spec.has_seed = values.has("seed");
  if (spec.has_seed) {
    const std::int64_t s = values.get_int("seed", 0);
    if (s < 0) {
      throw FaultSpecError("fault: seed must be >= 0, got " +
                           std::to_string(s));
    }
    spec.seed = static_cast<std::uint64_t>(s);
  }
  if (spec.drop + spec.dup > 1.0) {
    throw FaultSpecError(
        "fault: drop + dup must be <= 1 (they partition one per-delivery "
        "roll), got drop=" +
        render_spec_double(spec.drop) + " dup=" + render_spec_double(spec.dup));
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::map<std::string, std::string> params;
  if (drop > 0.0) params["drop"] = render_fraction(drop);
  if (crash > 0.0) params["crash"] = render_fraction(crash);
  if (recover > 0.0) params["recover"] = render_fraction(recover);
  if (dup > 0.0) params["dup"] = render_fraction(dup);
  if (amnesia) params["amnesia"] = "1";
  if (has_seed) params["seed"] = std::to_string(seed);
  return render_spec_text(kFamily, params);
}

bool operator==(const FaultSpec& a, const FaultSpec& b) {
  return a.drop == b.drop && a.crash == b.crash && a.recover == b.recover &&
         a.dup == b.dup && a.amnesia == b.amnesia && a.has_seed == b.has_seed &&
         (!a.has_seed || a.seed == b.seed);
}

}  // namespace dyngossip
