#include "fault/fault_plan.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dyngossip {

namespace {

// Distinct odd multipliers decorrelate the key dimensions before the
// SplitMix64 finalizer scrambles the sum (the standard stateless-stream
// construction; the constants are the SplitMix64/xoshiro mixing primes).
constexpr std::uint64_t kSaltMul = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kKeyAMul = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kKeyBMul = 0x94d049bb133111ebULL;

constexpr std::uint64_t kCrashSalt = 1;
constexpr std::uint64_t kRecoverSalt = 2;
constexpr std::uint64_t kDeliverySalt = 3;

}  // namespace

FaultPlan::FaultPlan(const FaultSpec& spec, std::size_t n,
                     std::uint64_t trial_seed)
    : spec_(spec),
      seed_(spec.has_seed ? spec.seed : trial_seed),
      live_count_(n),
      live_(n, 1) {}

double FaultPlan::roll(std::uint64_t salt, std::uint64_t a,
                       std::uint64_t b) const {
  std::uint64_t state = seed_ + salt * kSaltMul + a * kKeyAMul + b * kKeyBMul;
  (void)splitmix64(state);  // one scramble round separates nearby keys
  const std::uint64_t x = splitmix64(state);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

void FaultPlan::begin_round(Round r) {
  DG_CHECK(r > last_round_);  // strictly forward; phases continue one plan
  crashed_now_.clear();
  if (spec_.crash <= 0.0) {
    last_round_ = r;
    return;
  }
  // Advance every skipped round too (an engine starting at round R > 1
  // shares the same position-keyed liveness history as one that stepped
  // through 1..R-1), so liveness stays a function of (spec, seed, r) alone.
  const std::size_t n = live_.size();
  for (Round x = last_round_ + 1; x <= r; ++x) {
    for (NodeId v = 0; v < n; ++v) {
      if (live_[v] != 0) {
        if (roll(kCrashSalt, x, v) < spec_.crash) {
          live_[v] = 0;
          --live_count_;
          crashed_now_.push_back(v);
        }
      } else if (spec_.recover > 0.0 &&
                 roll(kRecoverSalt, x, v) < spec_.recover) {
        live_[v] = 1;
        ++live_count_;
      }
    }
  }
  last_round_ = r;
}

FaultPlan::Fate FaultPlan::delivery_fate(Round r, std::size_t arc,
                                         std::uint32_t seq) const {
  if (!has_delivery_faults()) return Fate::kDeliver;
  // The (bounded, O(1)) per-arc payload sequence selects the salt, so
  // (round, arc, seq) positions can never collide with each other or with
  // the liveness rolls (salts 1 and 2).
  const double u = roll(kDeliverySalt + seq, r, arc);
  if (u < spec_.drop) return Fate::kDrop;
  if (u < spec_.drop + spec_.dup) return Fate::kDuplicate;
  return Fate::kDeliver;
}

}  // namespace dyngossip
