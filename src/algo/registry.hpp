// Central algorithm registry: every dissemination protocol runnable from
// one spec.
//
// The paper's central story is a comparison across algorithms on a shared
// schedule — Algorithm 1's O(n² + nk) request-based unicast versus the
// O(n²k) local-broadcast flooding baseline (Theorems 3.1 vs 2.3), the
// trivial push and spanning-tree ceilings of Section 1, and the oblivious
// funnel of Section 3.2.2.  Until now only two of those were reachable from
// a spec string; the other protocols in src/core/ were hand-constructed per
// scenario with incompatible signatures.  This registry mirrors the
// adversary registry (PR 4) on the algorithm axis: each family declares its
// engine (unicast / local broadcast), its keys, and a factory from a shared
// AlgoBuildContext, so any experiment runs any algorithm from a single spec
// such as
//
//     single_source:priority=reversed     multi_source:sources=8
//     flooding:                           random_flooding:seed=5
//
// `dyngossip algorithms` enumerates what exists; the global --algo= flag
// (RunAxes) lets any opted-in scenario swap its algorithm, and
// `dyngossip trace record|replay` dispatch through here so a recording's
// metadata pins the exact algorithm spec it ran.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "adversary/registry.hpp"
#include "common/knowledge_set.hpp"
#include "common/spec.hpp"
#include "sim/config.hpp"
#include "telemetry/telemetry.hpp"

namespace dyngossip {

class FaultPlan;
class ThreadPool;

/// Thrown on malformed algorithm spec text, unknown families/keys,
/// out-of-range values, or a build context a family cannot honour.  A
/// dedicated type so CLI layers can turn registry misuse into flag errors
/// (exit 2), exactly like AdversarySpecError on the schedule axis.
class AlgoSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed algorithm spec: family name plus key=value parameters.
///
/// Same grammar, strict parse, and canonical rendering as AdversarySpec
/// (common/spec.hpp): `family[:key=value[,key=value...]]`, keys stored
/// sorted, parse(s).to_string() round-trips.  A bare family name renders
/// without the colon, so the canonical spec of the default single-source
/// run is just "single_source" — byte-compatible with the algo= metadata
/// field PR-3/PR-4 recordings already embed.
struct AlgoSpec {
  std::string family;
  std::map<std::string, std::string> params;

  /// Parses spec text; throws AlgoSpecError with the offending part.
  [[nodiscard]] static AlgoSpec parse(const std::string& text);

  /// Canonical `family:k=v,k=v` rendering (keys sorted, no spaces).
  [[nodiscard]] std::string to_string() const;

  /// Chainable param setters (scenarios build specs programmatically).
  AlgoSpec& set(const std::string& key, const std::string& value);
  AlgoSpec& set(const std::string& key, std::uint64_t value);
  AlgoSpec& set(const std::string& key, double value);
};

[[nodiscard]] bool operator==(const AlgoSpec& a, const AlgoSpec& b);

/// One declared spec key of a family (the shared grammar's SpecKey).
using AlgoKeySpec = SpecKey;

[[nodiscard]] const char* algo_key_kind_name(AlgoKeySpec::Kind kind);

/// Run-side inputs shared by every algorithm factory.  The spec's own keys
/// (sources=, seed=, ...) always win over the context's defaults, so a
/// fully-pinned spec reproduces one run while a bare family follows the
/// scenario row.
struct AlgoBuildContext {
  std::size_t n = 64;       ///< nodes
  std::uint32_t k = 128;    ///< requested token count
  /// Default source count for the inherently multi-source families
  /// (multi_source, oblivious); spec sources= wins.  The single-task
  /// families (flooding, random_flooding, neighbor_exchange, spanning_tree)
  /// default to 1 source instead so `--algo=flooding:` is the flooding
  /// analogue of the same single-source task.
  std::size_t sources = 4;
  Round cap = 0;            ///< round cap; 0 derives 200·n·k
  /// Seed for algorithm-side randomness (random_flooding's token picks,
  /// the oblivious walk/center election); spec seed= wins.  Deterministic
  /// families ignore it.
  std::uint64_t seed = 1;
  /// Optional explicit K_v(0) override (upper_bounds-style random initial
  /// placement).  Only the knowledge-shaped families (flooding,
  /// random_flooding, neighbor_exchange) accept it; the token-labelling
  /// families derive K_v(0) from their TokenSpace and reject an override.
  const std::vector<KnowledgeSet>* initial_knowledge = nullptr;
  /// Worker pool for intra-round engine sharding; null keeps engines
  /// serial.  Hand a pool here only when the trial itself runs on a
  /// non-pool thread (sim/runner/shard_schedule.hpp decides which axis a
  /// table parallelizes); results are bit-identical either way.
  ThreadPool* engine_pool = nullptr;
  /// Per-trial fault plan (not owned; null: fault-free).  Forwarded to the
  /// engine(s) the family builds; decisions are position-keyed so results
  /// stay bit-identical at any thread count (see fault/fault_plan.hpp).
  FaultPlan* faults = nullptr;
  /// Wall-clock budget per run in seconds (0: none); over-budget runs
  /// return RunStatus::kTimeout.
  double trial_timeout_seconds = 0.0;
  /// Observer plane (telemetry/telemetry.hpp) forwarded to every engine the
  /// family builds (both phases of a two-phase run).  Null members keep the
  /// exact legacy code path; attached observers never change results.
  Telemetry telemetry;
  /// Out: realized token count (k rounded to the realized labelling, e.g.
  /// s·⌊k/s⌋ under an s-source split).  Set by every factory.
  std::uint64_t k_realized = 0;
};

/// Which engine a family runs on: Definition 1.1's two synchronous
/// communication modes, plus the continuous-time event-queue engine
/// (src/async/).  Documentation for `dyngossip algorithms` and the matrix
/// scenario; the factory itself embeds the choice.  Cache identity depends
/// on it too: RunKey folds the family's engine into the canonical key.
enum class AlgoEngine : std::uint8_t { kUnicast = 0, kBroadcast = 1, kAsync = 2 };

[[nodiscard]] const char* algo_engine_name(AlgoEngine engine);

/// A registered algorithm family.
struct AlgoFamily {
  std::string name;         ///< registry key, e.g. "single_source"
  std::string description;  ///< one line for `dyngossip algorithms`
  std::string example;      ///< a representative spec string
  AlgoEngine engine = AlgoEngine::kUnicast;
  /// True when the protocol asserts a never-changing neighborhood
  /// (spanning_tree's static-topology guard DG_CHECKs otherwise); callers
  /// must pair such a family with a static schedule.
  bool requires_static = false;
  std::vector<AlgoKeySpec> keys;
  /// Runs the family against `adversary`; sets ctx.k_realized.
  std::function<RunResult(const AlgoSpec&, AlgoBuildContext&, Adversary&)> run;
};

/// Name → family registry (mirrors AdversaryRegistry: explicit
/// registration, private instances for tests, thread-safe global()).
class AlgoRegistry {
 public:
  /// Registers a family.  Throws std::invalid_argument on an invalid name,
  /// a missing run function, or a duplicate.
  void add(AlgoFamily family);

  /// Family by name, or nullptr when unknown.
  [[nodiscard]] const AlgoFamily* find(const std::string& name) const noexcept;

  /// All families, sorted by name.
  [[nodiscard]] std::vector<const AlgoFamily*> list() const;

  /// Number of registered families.
  [[nodiscard]] std::size_t size() const noexcept { return families_.size(); }

  /// Checks the spec against the declared families/keys without running.
  /// Throws AlgoSpecError naming the unknown family or key.
  void validate(const AlgoSpec& spec) const;

  /// Validates, then runs.  ctx.k_realized receives the realized token
  /// count.  Throws AlgoSpecError on registry misuse.
  [[nodiscard]] RunResult run(const AlgoSpec& spec, AlgoBuildContext& ctx,
                              Adversary& adversary) const;

  /// Process-wide registry with every family installed.
  [[nodiscard]] static AlgoRegistry& global();

 private:
  std::map<std::string, AlgoFamily> families_;
};

/// Installs the full family catalogue; a no-op when already installed.
void register_all_algorithms(AlgoRegistry& registry);

/// The single requires_static policy, shared by every dispatch site (the
/// scenario axis tables, algo_matrix, `trace record|replay`): can `family`
/// run over the schedule described by `adversary`?
///
/// Non-static-only families accept everything.  A static-only family
/// (spanning_tree) accepts the static family and a file-backed schedule
/// (trace:/scripted:) whose recording metadata names a static adversary —
/// or names none (foreign traces get the benefit of the doubt; the
/// protocol's own static-topology guard still backstops).  Every other
/// combination returns false with a human-readable reason in *why (may be
/// nullptr), which callers throw as AlgoSpecError or print as a flag
/// error.
[[nodiscard]] bool algo_schedule_compatible(const AlgoFamily& family,
                                            const AdversarySpec& adversary,
                                            std::string* why = nullptr);

/// Convenience: runs `spec` through the global registry.  This is the
/// registry-backed replacement for the old TracedRunSpec/run_traced_algo
/// pair — `dyngossip trace record|replay`, the scenarios' axis tables, and
/// the record→replay probe all dispatch through it, so one code path
/// defines what each algorithm spec means (in particular the multi-source
/// token-splitting rule exists exactly once).
[[nodiscard]] RunResult run_algo(const AlgoSpec& spec, AlgoBuildContext& ctx,
                                 Adversary& adversary);

}  // namespace dyngossip
