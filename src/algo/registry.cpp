#include "algo/registry.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <utility>

#include "async/async_engine.hpp"
#include "core/multi_source.hpp"
#include "core/neighbor_exchange.hpp"
#include "core/single_source.hpp"
#include "core/tokens.hpp"
#include "engine/unicast_engine.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_format.hpp"
#include "trace/trace_reader.hpp"

namespace dyngossip {

namespace {

[[noreturn]] void fail(const std::string& msg) { throw AlgoSpecError(msg); }

/// Typed spec-param access (the shared strict SpecValues core) plus the
/// algorithm build context's helpers.
class SpecReader : public SpecValues {
 public:
  SpecReader(const AlgoSpec& spec, const AlgoBuildContext& ctx)
      : SpecValues(spec.family, spec.params,
                   [](const std::string& msg) { fail(msg); }),
        ctx_(ctx) {}

  /// Spec seed= wins; otherwise the context's (per-trial) seed.
  [[nodiscard]] std::uint64_t seed() const {
    return static_cast<std::uint64_t>(
        get_int("seed", static_cast<std::int64_t>(ctx_.seed)));
  }

  /// Source count: spec sources= wins over the context default; clamped to
  /// [1, n] exactly like the historical multi-source dispatch.
  [[nodiscard]] std::size_t sources(std::size_t def) const {
    const std::size_t s = get_size("sources", def);
    return std::min(std::max<std::size_t>(1, s), ctx_.n);
  }

 private:
  const AlgoBuildContext& ctx_;
};

/// The run's round cap: explicit, or the shared 200·n·k default every
/// traced run has used since PR 3.
[[nodiscard]] Round cap_of(const AlgoBuildContext& ctx) {
  return ctx.cap > 0
             ? ctx.cap
             : static_cast<Round>(200ull * ctx.n *
                                  std::max<std::uint32_t>(ctx.k, 1));
}

/// The canonical s-source token placement (identical to the historical
/// run_traced_algo rule): min(s, n) sources at nodes i·(n/s) with
/// max(1, k/s) tokens each.  s = 1 is the single-source task: all k tokens
/// at node 0.
[[nodiscard]] TokenSpacePtr spread_space(std::size_t n, std::uint32_t k,
                                         std::size_t s) {
  std::vector<TokenSpace::SourceSpec> specs;
  specs.reserve(s);
  for (std::size_t i = 0; i < s; ++i) {
    specs.push_back(
        {static_cast<NodeId>(i * (n / s)),
         std::max<std::uint32_t>(1, k / static_cast<std::uint32_t>(s))});
  }
  return std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
}

[[nodiscard]] RunResult finish(const RunMetrics& metrics) {
  RunResult result;
  result.metrics = metrics;
  result.rounds = metrics.rounds;
  result.completed = metrics.completed;
  return result;
}

/// The token-labelling families derive K_v(0) from their TokenSpace; an
/// explicit override would silently diverge from the labelling.
void reject_initial_override(const AlgoSpec& spec, const AlgoBuildContext& ctx) {
  if (ctx.initial_knowledge != nullptr) {
    fail(spec.family +
         ": derives initial knowledge from its token labelling; the "
         "context's initial_knowledge override is not supported here");
  }
}

// ---- family run functions ------------------------------------------------

RunResult run_single_source_family(const AlgoSpec& spec, AlgoBuildContext& ctx,
                                   Adversary& adversary) {
  reject_initial_override(spec, ctx);
  const SpecReader r(spec, ctx);
  const std::string priority_text = r.get_string("priority", "paper");
  RequestPriority priority = RequestPriority::kPaper;
  if (priority_text == "paper") {
    priority = RequestPriority::kPaper;
  } else if (priority_text == "reversed") {
    priority = RequestPriority::kReversed;
  } else if (priority_text == "new_last") {
    priority = RequestPriority::kNewLast;
  } else {
    fail("single_source: priority must be paper, reversed, or new_last (got '" +
         priority_text + "')");
  }
  const std::size_t source = r.get_size("source", 0);
  if (source >= ctx.n) fail("single_source: source must be < n");
  ctx.k_realized = ctx.k;
  SingleSourceConfig cfg{ctx.n, ctx.k, static_cast<NodeId>(source), priority};
  UnicastEngineOptions opts;
  opts.pool = ctx.engine_pool;
  opts.faults = ctx.faults;
  opts.run_timeout_seconds = ctx.trial_timeout_seconds;
  opts.telemetry = ctx.telemetry;
  UnicastEngine engine(SingleSourceNode::make_all(cfg), adversary,
                       SingleSourceNode::initial_knowledge(cfg), ctx.k, opts);
  return finish(engine.run(cap_of(ctx)));
}

RunResult run_multi_source_family(const AlgoSpec& spec, AlgoBuildContext& ctx,
                                  Adversary& adversary) {
  reject_initial_override(spec, ctx);
  const SpecReader r(spec, ctx);
  const TokenSpacePtr space =
      spread_space(ctx.n, ctx.k, r.sources(ctx.sources));
  ctx.k_realized = space->total_tokens();
  return run_multi_source(ctx.n, space, adversary, cap_of(ctx),
                          ctx.engine_pool, ctx.faults,
                          ctx.trial_timeout_seconds, ctx.telemetry);
}

/// Shared K_v(0) selection for the knowledge-shaped broadcast/push
/// families: the context's explicit override when present, else the
/// canonical spread placement.  *k_out is the realized token count.
[[nodiscard]] std::vector<KnowledgeSet> initial_of(const AlgoSpec& spec,
                                                    const AlgoBuildContext& ctx,
                                                    std::uint64_t* k_out) {
  if (ctx.initial_knowledge != nullptr) {
    if (ctx.initial_knowledge->size() != ctx.n) {
      fail(spec.family + ": initial_knowledge must have exactly n entries");
    }
    *k_out = ctx.k;
    return *ctx.initial_knowledge;
  }
  const SpecReader r(spec, ctx);
  const TokenSpacePtr space = spread_space(ctx.n, ctx.k, r.sources(1));
  *k_out = space->total_tokens();
  return space->initial_knowledge(ctx.n);
}

RunResult run_flooding_family(const AlgoSpec& spec, AlgoBuildContext& ctx,
                              Adversary& adversary) {
  const std::vector<KnowledgeSet> initial = initial_of(spec, ctx, &ctx.k_realized);
  return run_phase_flooding(ctx.n, static_cast<std::size_t>(ctx.k_realized),
                            initial, adversary, cap_of(ctx), ctx.engine_pool,
                            ctx.faults, ctx.trial_timeout_seconds,
                            ctx.telemetry);
}

RunResult run_random_flooding_family(const AlgoSpec& spec, AlgoBuildContext& ctx,
                                     Adversary& adversary) {
  const SpecReader r(spec, ctx);
  const std::vector<KnowledgeSet> initial = initial_of(spec, ctx, &ctx.k_realized);
  return run_random_flooding(ctx.n, static_cast<std::size_t>(ctx.k_realized),
                             initial, adversary, cap_of(ctx), r.seed(),
                             ctx.engine_pool, ctx.faults,
                             ctx.trial_timeout_seconds, ctx.telemetry);
}

RunResult run_neighbor_exchange_family(const AlgoSpec& spec, AlgoBuildContext& ctx,
                                       Adversary& adversary) {
  const std::vector<KnowledgeSet> initial = initial_of(spec, ctx, &ctx.k_realized);
  return finish(run_neighbor_exchange(
      ctx.n, static_cast<std::size_t>(ctx.k_realized), initial, adversary,
      cap_of(ctx), ctx.engine_pool, ctx.faults, ctx.trial_timeout_seconds,
      ctx.telemetry));
}

RunResult run_oblivious_family(const AlgoSpec& spec, AlgoBuildContext& ctx,
                               Adversary& adversary) {
  reject_initial_override(spec, ctx);
  const SpecReader r(spec, ctx);
  const TokenSpacePtr space =
      spread_space(ctx.n, ctx.k, r.sources(ctx.sources));
  ctx.k_realized = space->total_tokens();
  ObliviousMsOptions opts;
  opts.seed = r.seed();
  opts.max_rounds = cap_of(ctx);  // same 200·n·k default as every family
  opts.force_phase1 = r.get_bool("force_phase1", false);
  opts.f_override = r.get_size("f", 0);
  opts.pool = ctx.engine_pool;
  opts.faults = ctx.faults;
  opts.timeout_seconds = ctx.trial_timeout_seconds;
  opts.telemetry = ctx.telemetry;
  const ObliviousMsResult result =
      run_oblivious_multi_source(ctx.n, space, adversary, opts);
  return finish(result.total);
}

RunResult run_spanning_tree_family(const AlgoSpec& spec, AlgoBuildContext& ctx,
                                   Adversary& adversary) {
  reject_initial_override(spec, ctx);
  const SpecReader r(spec, ctx);
  const std::size_t root = r.get_size("root", 0);
  if (root >= ctx.n) fail("spanning_tree: root must be < n");
  const TokenSpacePtr space = spread_space(ctx.n, ctx.k, r.sources(1));
  ctx.k_realized = space->total_tokens();
  return run_spanning_tree(ctx.n, space, adversary, cap_of(ctx),
                           static_cast<NodeId>(root), ctx.engine_pool,
                           ctx.faults, ctx.trial_timeout_seconds,
                           ctx.telemetry);
}

/// Shared core of the asynchronous push / push-pull families: knowledge-
/// shaped initial state (honors the context override like the other
/// broadcast/push families), Poisson clocks at rate=, edge lifetime sigma=,
/// and the continuous-time event loop of src/async/.  `cap` bounds the run
/// at cap schedule rounds = cap·σ clock units.
RunResult run_async_family(const AlgoSpec& spec, AlgoBuildContext& ctx,
                           Adversary& adversary, bool push_pull) {
  const SpecReader r(spec, ctx);
  AsyncEngineOptions opts;
  opts.rate = r.get_double("rate", 1.0);
  if (!(opts.rate > 0.0)) fail(spec.family + ": rate must be > 0");
  opts.sigma = r.get_double("sigma", 1.0);
  if (!(opts.sigma > 0.0)) fail(spec.family + ": sigma must be > 0");
  opts.push_pull = push_pull;
  opts.seed = r.seed();
  opts.pool = ctx.engine_pool;
  opts.faults = ctx.faults;
  opts.run_timeout_seconds = ctx.trial_timeout_seconds;
  opts.telemetry = ctx.telemetry;
  const std::vector<KnowledgeSet> initial =
      initial_of(spec, ctx, &ctx.k_realized);
  AsyncEngine engine(adversary, initial,
                     static_cast<std::size_t>(ctx.k_realized), opts);
  return finish(engine.run(cap_of(ctx)));
}

RunResult run_async_push_family(const AlgoSpec& spec, AlgoBuildContext& ctx,
                                Adversary& adversary) {
  return run_async_family(spec, ctx, adversary, /*push_pull=*/false);
}

RunResult run_async_push_pull_family(const AlgoSpec& spec,
                                     AlgoBuildContext& ctx,
                                     Adversary& adversary) {
  return run_async_family(spec, ctx, adversary, /*push_pull=*/true);
}

using Kind = AlgoKeySpec::Kind;

const AlgoKeySpec kSourcesMultiKey{"sources", Kind::kInt, "(run sources)",
                                   "source count; tokens split k/s per source"};
const AlgoKeySpec kSourcesSingleKey{
    "sources", Kind::kInt, "1",
    "source count (default: the single-source task, all k tokens at node 0)"};
const AlgoKeySpec kSeedKey{"seed", Kind::kInt, "(run seed)",
                           "algorithm randomness; omit to follow the run"};
const AlgoKeySpec kRateKey{"rate", Kind::kDouble, "1",
                           "Poisson clock rate per node (activations per "
                           "clock unit)"};
const AlgoKeySpec kSigmaKey{"sigma", Kind::kDouble, "1",
                            "edge lifetime: clock units each schedule "
                            "round's graph stays live"};

}  // namespace

// ---- AlgoSpec ------------------------------------------------------------

AlgoSpec AlgoSpec::parse(const std::string& text) {
  AlgoSpec spec;
  const std::string error =
      parse_spec_text(text, "algorithm", &spec.family, &spec.params);
  if (!error.empty()) fail(error);
  return spec;
}

std::string AlgoSpec::to_string() const { return render_spec_text(family, params); }

AlgoSpec& AlgoSpec::set(const std::string& key, const std::string& value) {
  params[key] = value;
  return *this;
}

AlgoSpec& AlgoSpec::set(const std::string& key, std::uint64_t value) {
  params[key] = std::to_string(value);
  return *this;
}

AlgoSpec& AlgoSpec::set(const std::string& key, double value) {
  params[key] = render_spec_double(value);
  return *this;
}

bool operator==(const AlgoSpec& a, const AlgoSpec& b) {
  return a.family == b.family && a.params == b.params;
}

const char* algo_key_kind_name(AlgoKeySpec::Kind kind) {
  return spec_key_kind_name(kind);
}

const char* algo_engine_name(AlgoEngine engine) {
  switch (engine) {
    case AlgoEngine::kUnicast: return "unicast";
    case AlgoEngine::kBroadcast: return "broadcast";
    case AlgoEngine::kAsync: return "async";
  }
  return "?";
}

// ---- AlgoRegistry --------------------------------------------------------

void AlgoRegistry::add(AlgoFamily family) {
  if (!valid_spec_name(family.name)) {
    throw std::invalid_argument("algorithm family name '" + family.name +
                                "' is invalid");
  }
  if (!family.run) {
    throw std::invalid_argument("algorithm family '" + family.name +
                                "' has no run function");
  }
  if (families_.count(family.name) != 0u) {
    throw std::invalid_argument("algorithm family '" + family.name +
                                "' registered twice");
  }
  families_.emplace(family.name, std::move(family));
}

const AlgoFamily* AlgoRegistry::find(const std::string& name) const noexcept {
  const auto it = families_.find(name);
  return it == families_.end() ? nullptr : &it->second;
}

std::vector<const AlgoFamily*> AlgoRegistry::list() const {
  std::vector<const AlgoFamily*> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) out.push_back(&family);
  return out;
}

void AlgoRegistry::validate(const AlgoSpec& spec) const {
  const AlgoFamily* family = find(spec.family);
  if (family == nullptr) {
    std::string known;
    for (const auto& [name, f] : families_) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    fail("unknown algorithm family '" + spec.family + "' (known: " + known + ")");
  }
  for (const auto& [key, value] : spec.params) {
    const bool declared =
        std::any_of(family->keys.begin(), family->keys.end(),
                    [&key](const AlgoKeySpec& k) { return k.key == key; });
    if (!declared) {
      std::string keys;
      for (const AlgoKeySpec& k : family->keys) {
        if (!keys.empty()) keys += ", ";
        keys += k.key;
      }
      fail(spec.family + ": unknown key '" + key + "' (keys: " +
           (keys.empty() ? "none" : keys) + ")");
    }
  }
}

RunResult AlgoRegistry::run(const AlgoSpec& spec, AlgoBuildContext& ctx,
                            Adversary& adversary) const {
  validate(spec);
  if (ctx.n < 2 || ctx.k < 1) {
    fail(spec.family + ": requires n >= 2 and k >= 1 in the build context");
  }
  return find(spec.family)->run(spec, ctx, adversary);
}

AlgoRegistry& AlgoRegistry::global() {
  // Registration inside the magic-static initializer: the first touch is
  // thread-safe even from concurrent pool workers (scenario trials dispatch
  // without any main-thread warm-up), same as AdversaryRegistry.
  static AlgoRegistry registry = [] {
    AlgoRegistry r;
    register_all_algorithms(r);
    return r;
  }();
  return registry;
}

RunResult run_algo(const AlgoSpec& spec, AlgoBuildContext& ctx,
                   Adversary& adversary) {
  return AlgoRegistry::global().run(spec, ctx, adversary);
}

bool algo_schedule_compatible(const AlgoFamily& family,
                              const AdversarySpec& adversary, std::string* why) {
  if (!family.requires_static) return true;
  if (adversary.family == "static") return true;
  const auto reject = [why](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (adversary.family == "trace" || adversary.family == "scripted") {
    // A recording may well be static; its embedded metadata says so.  A
    // missing/unreadable file or free-form metadata passes here — the
    // build (or the protocol's own guard) surfaces the real problem with
    // its own message.
    const auto it = adversary.params.find("file");
    if (it == adversary.params.end()) return true;
    try {
      const std::unique_ptr<TraceSource> source = open_trace_source(it->second);
      const std::map<std::string, std::string> meta =
          parse_trace_metadata(source->header().metadata);
      const auto rec = meta.find("adversary");
      if (rec == meta.end()) return true;
      if (AdversarySpec::parse(rec->second).family == "static") return true;
      return reject("algorithm '" + family.name +
                    "' requires a static schedule, but this recording's "
                    "schedule family is '" +
                    AdversarySpec::parse(rec->second).family +
                    "'; re-record against --adversary=static:...");
    } catch (const TraceError&) {
      return true;
    } catch (const AdversarySpecError&) {
      return true;
    }
  }
  return reject("algorithm '" + family.name +
                "' requires a static schedule (the protocol asserts an "
                "unchanging neighborhood); pair it with "
                "--adversary=static:... or a static recording");
}

void register_all_algorithms(AlgoRegistry& registry) {
  if (registry.find("single_source") != nullptr) return;  // already installed
  registry.add(
      {"single_source",
       "Algorithm 1 (Single-Source-Unicast): request-based, 1-competitive "
       "O(n^2 + nk)",
       "single_source:priority=paper",
       AlgoEngine::kUnicast,
       /*requires_static=*/false,
       {{"priority", Kind::kString, "paper",
         "request priority over edge classes: paper | reversed | new_last"},
        {"source", Kind::kInt, "0", "the node initially holding all k tokens"}},
       run_single_source_family});
  registry.add(
      {"multi_source",
       "Multi-Source-Unicast (Section 3.2.1): per-source Algorithm 1, "
       "O(n^2 s + nk)",
       "multi_source:sources=8",
       AlgoEngine::kUnicast,
       /*requires_static=*/false,
       {kSourcesMultiKey},
       run_multi_source_family});
  registry.add(
      {"flooding",
       "naive phase flooding (Section 2's local-broadcast ceiling, O(n^2 k) "
       "total)",
       "flooding:sources=1",
       AlgoEngine::kBroadcast,
       /*requires_static=*/false,
       {kSourcesSingleKey},
       run_flooding_family});
  registry.add(
      {"random_flooding",
       "uniform-random token flooding (no deterministic round bound)",
       "random_flooding:seed=5",
       AlgoEngine::kBroadcast,
       /*requires_static=*/false,
       {kSourcesSingleKey, kSeedKey},
       run_random_flooding_family});
  registry.add(
      {"neighbor_exchange",
       "trivial push baseline (Section 1): each token once per ordered pair, "
       "O(n^2 k)",
       "neighbor_exchange:sources=1",
       AlgoEngine::kUnicast,
       /*requires_static=*/false,
       {kSourcesSingleKey},
       run_neighbor_exchange_family});
  registry.add(
      {"oblivious",
       "Algorithm 2 (Oblivious-Multi-Source): random-walk funnel to centers, "
       "then multi-source",
       "oblivious:sources=32,force_phase1=true",
       AlgoEngine::kUnicast,
       /*requires_static=*/false,
       {kSourcesMultiKey, kSeedKey,
        {"force_phase1", Kind::kBool, "false",
         "run the walk phase even when s is below the n^(2/3) threshold"},
        {"f", Kind::kInt, "0",
         "expected center count override (0: the paper's formula)"}},
       run_oblivious_family});
  registry.add(
      {"spanning_tree",
       "static spanning-tree pipeline (Section 1's baseline, O(n^2 + nk); "
       "static schedules only)",
       "spanning_tree:root=0",
       AlgoEngine::kUnicast,
       /*requires_static=*/true,
       {kSourcesSingleKey, {"root", Kind::kInt, "0", "BFS tree root node"}},
       run_spanning_tree_family});
  registry.add(
      {"async_push",
       "asynchronous push: Poisson node clocks, one random token to one "
       "random neighbor per activation",
       "async_push:rate=1,sigma=1",
       AlgoEngine::kAsync,
       /*requires_static=*/false,
       {kSourcesSingleKey, kSeedKey, kRateKey, kSigmaKey},
       run_async_push_family});
  registry.add(
      {"async_push_pull",
       "asynchronous push-pull: the contacted neighbor replies with one of "
       "its own tokens in the same contact",
       "async_push_pull:rate=1,sigma=1",
       AlgoEngine::kAsync,
       /*requires_static=*/false,
       {kSourcesSingleKey, kSeedKey, kRateKey, kSigmaKey},
       run_async_push_pull_family});
}

}  // namespace dyngossip
