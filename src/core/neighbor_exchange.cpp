#include "core/neighbor_exchange.hpp"

#include "common/check.hpp"

namespace dyngossip {

NeighborExchangeNode::NeighborExchangeNode(NodeId self, std::size_t n,
                                           std::size_t k,
                                           const KnowledgeSet& initial)
    : self_(self), k_(k), tokens_(k) {
  DG_CHECK(self < n);
  DG_CHECK(initial.size() == k);
  for (const std::size_t t : initial.set_bits()) {
    tokens_.set(t);
    order_.push_back(static_cast<TokenId>(t));
  }
}

void NeighborExchangeNode::send(Round /*r*/, std::span<const NodeId> neighbors,
                                Outbox& out) {
  for (const NodeId w : neighbors) {
    std::size_t& cursor = sent_up_to_[w];
    if (cursor < order_.size()) {
      out.send(w, Message::token_msg(order_[cursor]));
      ++cursor;
    }
  }
}

void NeighborExchangeNode::on_receive(Round /*r*/, NodeId from, const Message& m) {
  DG_CHECK(m.type == MsgType::kToken);
  DG_CHECK(m.token < k_);
  if (tokens_.set(m.token)) {
    order_.push_back(m.token);
  }
  // The sender obviously holds this token: skipping a re-send back to it
  // would be an optimization the trivial baseline deliberately omits — the
  // point is to measure the undisciplined O(n²) push.
  (void)from;
}

std::vector<std::unique_ptr<UnicastAlgorithm>> NeighborExchangeNode::make_all(
    std::size_t n, std::size_t k, const std::vector<KnowledgeSet>& initial) {
  DG_CHECK(initial.size() == n);
  std::vector<std::unique_ptr<UnicastAlgorithm>> nodes;
  nodes.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<NeighborExchangeNode>(v, n, k, initial[v]));
  }
  return nodes;
}

RunMetrics run_neighbor_exchange(std::size_t n, std::size_t k,
                                 const std::vector<KnowledgeSet>& initial,
                                 Adversary& adversary, Round max_rounds,
                                 ThreadPool* pool, FaultPlan* faults,
                                 double timeout_seconds, Telemetry telemetry) {
  UnicastEngineOptions opts;
  opts.pool = pool;
  opts.faults = faults;
  opts.run_timeout_seconds = timeout_seconds;
  opts.telemetry = telemetry;
  UnicastEngine engine(NeighborExchangeNode::make_all(n, k, initial), adversary,
                       initial, k, opts);
  return engine.run(max_rounds);
}

}  // namespace dyngossip
