// Single-Source-Unicast (Algorithm 1, Section 3.1).
//
// All k tokens start at one source, which labels them 1..k (dense ids
// 0..k-1 here).  Only complete nodes (holding all k tokens) ever send
// tokens; each complete node announces its completeness to every node it
// meets at most once; each incomplete node assigns at most one distinct
// missing-token request per incident edge to a known-complete neighbor,
// prioritizing new > idle > contributive edges; a complete node answers a
// round-(r-1) request in round r iff the edge survived.
//
// Message complexity (Theorem 3.1): 1-adversary-competitive O(n² + nk) —
//   tokens       <= nk              (each node receives each token once),
//   completeness <= n(n-1)          (once per ordered pair),
//   requests     <= nk + deletions  (a request is either answered next
//                                    round or its edge was deleted).
// Time (Theorem 3.4): O(nk) rounds on 3-edge-stable dynamic graphs.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/knowledge_set.hpp"
#include "core/knowledge.hpp"
#include "engine/unicast_engine.hpp"

namespace dyngossip {

/// Request-assignment priority over edge classes.  The paper's order
/// (new > idle > contributive) is what makes Lemma 3.2 tick: in a futile
/// round every bridge node spends a request on an idle edge, forcing the
/// adversary to delete idle edges it already paid for.  The alternatives
/// exist for the ablations scenario.
enum class RequestPriority : std::uint8_t {
  kPaper = 0,       ///< new > idle > contributive (Algorithm 1)
  kReversed = 1,    ///< new > contributive > idle
  kNewLast = 2,     ///< idle > contributive > new
};

/// Static parameters of a single-source run.
struct SingleSourceConfig {
  std::size_t n = 0;       ///< nodes
  std::uint32_t k = 0;     ///< tokens, labelled 0..k-1
  NodeId source = 0;       ///< the node initially holding all k tokens
  RequestPriority priority = RequestPriority::kPaper;  ///< ablation knob
};

/// Per-node state machine of Algorithm 1.
class SingleSourceNode final : public UnicastAlgorithm {
 public:
  SingleSourceNode(NodeId self, const SingleSourceConfig& cfg);

  void send(Round r, std::span<const NodeId> neighbors, Outbox& out) override;
  void on_receive(Round r, NodeId from, const Message& m) override;

  /// Definition 3.1: complete iff all k tokens are held.
  [[nodiscard]] bool complete() const noexcept { return tokens_.all(); }

  /// Tokens currently held.
  [[nodiscard]] const KnowledgeSet& tokens() const noexcept { return tokens_; }

  /// Definition 3.2 (evaluated for the current round): incomplete with a
  /// known-complete live neighbor.
  [[nodiscard]] bool is_bridge_node() const;

  /// Instrumentation: requests sent so far, by edge class at send time.
  [[nodiscard]] std::uint64_t requests_over(EdgeClass c) const {
    return requests_by_class_[static_cast<std::size_t>(c)];
  }

  /// Builds the n node instances.
  [[nodiscard]] static std::vector<std::unique_ptr<UnicastAlgorithm>> make_all(
      const SingleSourceConfig& cfg);

  /// K_v(0): the source holds all tokens, everyone else none.
  [[nodiscard]] static std::vector<KnowledgeSet> initial_knowledge(
      const SingleSourceConfig& cfg);

 private:
  NodeId self_;
  SingleSourceConfig cfg_;
  KnowledgeSet tokens_;          ///< K_v
  KnowledgeSet informed_;        ///< R_v: nodes I announced completeness to
  KnowledgeSet known_complete_;  ///< S_v: nodes that announced completeness
  EdgeClassifier classifier_;
  /// Requests I sent last round (sorted by neighbor id).
  RequestList sent_requests_;
  /// Requests received last round, answered this round if the edge survives.
  std::vector<std::pair<NodeId, TokenId>> pending_answers_;
  /// Live neighbors of the current round (sorted), for is_bridge_node().
  std::vector<NodeId> current_neighbors_;
  std::uint64_t requests_by_class_[3] = {0, 0, 0};
  // Per-round scratch, reused across rounds (send() leaves in_flight_ empty).
  RequestList surviving_;            ///< last round's requests whose edge survived
  RequestList next_requests_;        ///< the round's fresh request assignment
  KnowledgeSet in_flight_;          ///< tokens known to arrive this round
  std::vector<NodeId> by_class_[3];  ///< eligible edges partitioned by class
};

}  // namespace dyngossip
