// Naive phase flooding — the local-broadcast upper bound of Sections 1-2.
//
// Rounds are grouped into k phases of length n; in phase i every node that
// knows token i locally broadcasts it.  In an always-connected dynamic
// graph, while some node lacks token i at least one boundary edge delivers
// it each round, so every phase completes and the whole dissemination
// finishes within nk rounds against ANY adversary (including the strongly
// adaptive one).  At most n broadcasts per round gives O(n²k) total, i.e.
// the O(n²) amortized-messages-per-token upper bound that Theorem 2.3 shows
// is tight up to log² n factors.
#pragma once

#include <memory>
#include <vector>

#include "common/knowledge_set.hpp"
#include "engine/broadcast_engine.hpp"

namespace dyngossip {

/// Per-node phase-flooding state machine.
class PhaseFloodingNode final : public BroadcastAlgorithm {
 public:
  /// `initial` is K_v(0) over a k-token universe; `n` fixes phase length.
  PhaseFloodingNode(std::size_t n, std::size_t k, KnowledgeSet initial);

  [[nodiscard]] TokenId choose_broadcast(Round r) override;
  void on_receive(Round r, std::span<const TokenId> tokens) override;

  /// Tokens currently known.
  [[nodiscard]] const KnowledgeSet& known() const noexcept { return known_; }

  /// Builds n nodes from an initial knowledge assignment.
  [[nodiscard]] static std::vector<std::unique_ptr<BroadcastAlgorithm>> make_all(
      std::size_t n, std::size_t k, const std::vector<KnowledgeSet>& initial);

 private:
  std::size_t n_;
  std::size_t k_;
  KnowledgeSet known_;
};

}  // namespace dyngossip
