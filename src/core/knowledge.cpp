#include "core/knowledge.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dyngossip {

const char* edge_class_name(EdgeClass c) noexcept {
  switch (c) {
    case EdgeClass::kNew:
      return "new";
    case EdgeClass::kIdle:
      return "idle";
    case EdgeClass::kContributive:
      return "contributive";
  }
  return "?";
}

void EdgeClassifier::begin_round(Round r, std::span<const NodeId> neighbors) {
  DG_CHECK(r > round_);
  round_ = r;
  // Drop state of edges that disappeared (a later re-insertion starts a
  // fresh record, implementing the "last insertion" semantics).
  for (auto it = edges_.begin(); it != edges_.end();) {
    if (!std::binary_search(neighbors.begin(), neighbors.end(), it->first)) {
      it = edges_.erase(it);
    } else {
      ++it;
    }
  }
  for (const NodeId w : neighbors) {
    edges_.try_emplace(w, EdgeState{r, false});
  }
}

EdgeClass EdgeClassifier::classify(NodeId w, bool token_arriving_now) const {
  const auto it = edges_.find(w);
  DG_CHECK(it != edges_.end());
  const EdgeState& st = it->second;
  // "New in round r": inserted at the beginning of round r or r-1.
  if (st.inserted + 1 >= round_) return EdgeClass::kNew;
  if (st.contributed || token_arriving_now) return EdgeClass::kContributive;
  return EdgeClass::kIdle;
}

void EdgeClassifier::note_learning_over(NodeId w) {
  const auto it = edges_.find(w);
  // The sender may already have vanished from our view only if delivery and
  // removal raced; in this engine delivery happens at the end of the round
  // the edge was present, so the edge must still be live.
  DG_CHECK(it != edges_.end());
  it->second.contributed = true;
}

Round EdgeClassifier::insertion_round(NodeId w) const {
  const auto it = edges_.find(w);
  return it == edges_.end() ? kNoRound : it->second.inserted;
}

}  // namespace dyngossip
