#include "core/knowledge.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dyngossip {

const std::pair<NodeId, TokenId>* find_request(const RequestList& list, NodeId w) {
  const auto it = std::lower_bound(
      list.begin(), list.end(), w,
      [](const std::pair<NodeId, TokenId>& e, NodeId x) { return e.first < x; });
  return (it != list.end() && it->first == w) ? &*it : nullptr;
}

void carry_surviving_requests(RequestList& fresh, const RequestList& surviving,
                              KnowledgeSet& in_flight) {
  std::sort(fresh.begin(), fresh.end());
  const auto fresh_end = static_cast<std::ptrdiff_t>(fresh.size());
  for (const auto& [w, tok] : surviving) {
    in_flight.reset(tok);
    const auto it = std::lower_bound(
        fresh.begin(), fresh.begin() + fresh_end, w,
        [](const std::pair<NodeId, TokenId>& e, NodeId x) { return e.first < x; });
    if (it == fresh.begin() + fresh_end || it->first != w) {
      fresh.push_back({w, tok});
    }
  }
  // The appended tail inherits surviving's order (sorted), so one linear
  // merge restores global order.
  std::inplace_merge(fresh.begin(), fresh.begin() + fresh_end, fresh.end());
}

const char* edge_class_name(EdgeClass c) noexcept {
  switch (c) {
    case EdgeClass::kNew:
      return "new";
    case EdgeClass::kIdle:
      return "idle";
    case EdgeClass::kContributive:
      return "contributive";
  }
  return "?";
}

void EdgeClassifier::begin_round(Round r, std::span<const NodeId> neighbors) {
  DG_CHECK(r > round_);
  round_ = r;
  DG_DCHECK(std::is_sorted(neighbors.begin(), neighbors.end()));

  std::swap(neighbors_, prev_neighbors_);
  std::swap(inserted_, prev_inserted_);
  std::swap(contributed_, prev_contributed_);
  neighbors_.assign(neighbors.begin(), neighbors.end());
  inserted_.resize(neighbors.size());
  contributed_.resize(neighbors.size());

  // Linear merge of two sorted lists: surviving edges carry their record,
  // vanished edges are dropped (a later re-insertion starts fresh,
  // implementing the "last insertion" semantics), new edges start at r.
  std::size_t p = 0;
  for (std::size_t i = 0; i < neighbors_.size(); ++i) {
    const NodeId w = neighbors_[i];
    while (p < prev_neighbors_.size() && prev_neighbors_[p] < w) ++p;
    if (p < prev_neighbors_.size() && prev_neighbors_[p] == w) {
      inserted_[i] = prev_inserted_[p];
      contributed_[i] = prev_contributed_[p];
      ++p;
    } else {
      inserted_[i] = r;
      contributed_[i] = 0;
    }
  }
}

std::size_t EdgeClassifier::slot_of(NodeId w) const {
  const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), w);
  if (it == neighbors_.end() || *it != w) return kNoSlot;
  return static_cast<std::size_t>(it - neighbors_.begin());
}

EdgeClass EdgeClassifier::classify(NodeId w, bool token_arriving_now) const {
  const std::size_t slot = slot_of(w);
  DG_CHECK(slot != kNoSlot);
  return classify_slot(slot, token_arriving_now);
}

EdgeClass EdgeClassifier::classify_slot(std::size_t slot,
                                        bool token_arriving_now) const {
  DG_DCHECK(slot < neighbors_.size());
  // "New in round r": inserted at the beginning of round r or r-1.
  if (inserted_[slot] + 1 >= round_) return EdgeClass::kNew;
  if (contributed_[slot] != 0 || token_arriving_now) return EdgeClass::kContributive;
  return EdgeClass::kIdle;
}

void EdgeClassifier::note_learning_over(NodeId w) {
  const std::size_t slot = slot_of(w);
  // The sender may already have vanished from our view only if delivery and
  // removal raced; in this engine delivery happens at the end of the round
  // the edge was present, so the edge must still be live.
  DG_CHECK(slot != kNoSlot);
  contributed_[slot] = 1;
}

Round EdgeClassifier::insertion_round(NodeId w) const {
  const std::size_t slot = slot_of(w);
  return slot == kNoSlot ? kNoRound : inserted_[slot];
}

}  // namespace dyngossip
