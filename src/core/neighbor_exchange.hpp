// Trivial unicast upper bound (Section 1): "each node sends each token at
// most once to each other node" — O(n²) amortized messages per token.
//
// Every round, each node sends to each current neighbor the next held token
// it has never sent to that specific neighbor (one per edge per round,
// respecting the bandwidth constraint).  No requests, no announcements —
// pure push.  The per-(node, token, target) once-only rule caps the total
// at n²k messages; the paper cites this as the easy unicast ceiling that
// the adversary-competitive analysis of Section 3 then beats.
//
// Note: against a benign (oblivious) adversary this baseline completes
// quickly, but unlike Algorithm 1 it wastes Θ(n) messages per token on
// recipients that already hold it — the waste the request/response
// discipline of Single-Source-Unicast exists to avoid.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/knowledge_set.hpp"
#include "engine/unicast_engine.hpp"

namespace dyngossip {

/// Per-node state machine of the push-only baseline.
class NeighborExchangeNode final : public UnicastAlgorithm {
 public:
  /// `initial` is K_v(0) over a k-token universe.
  NeighborExchangeNode(NodeId self, std::size_t n, std::size_t k,
                       const KnowledgeSet& initial);

  void send(Round r, std::span<const NodeId> neighbors, Outbox& out) override;
  void on_receive(Round r, NodeId from, const Message& m) override;

  /// Tokens currently held.
  [[nodiscard]] const KnowledgeSet& tokens() const noexcept { return tokens_; }

  /// Builds the n node instances.
  [[nodiscard]] static std::vector<std::unique_ptr<UnicastAlgorithm>> make_all(
      std::size_t n, std::size_t k, const std::vector<KnowledgeSet>& initial);

 private:
  NodeId self_;
  std::size_t k_;
  KnowledgeSet tokens_;
  /// held tokens in acquisition order (stable send order per target).
  std::vector<TokenId> order_;
  /// per-target cursor into order_; everything before it was already sent.
  std::unordered_map<NodeId, std::size_t> sent_up_to_;
};

/// Runs the baseline to completion (or the round cap).  Optional worker
/// pool, fault plan, and wall-clock budget forward to the engine (same
/// contract as the sim/simulator.hpp entry points).
[[nodiscard]] RunMetrics run_neighbor_exchange(std::size_t n, std::size_t k,
                                               const std::vector<KnowledgeSet>& initial,
                                               Adversary& adversary,
                                               Round max_rounds,
                                               ThreadPool* pool = nullptr,
                                               FaultPlan* faults = nullptr,
                                               double timeout_seconds = 0.0,
                                               Telemetry telemetry = {});

}  // namespace dyngossip
