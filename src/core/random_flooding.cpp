#include "core/random_flooding.hpp"

#include "common/check.hpp"

namespace dyngossip {

RandomFloodingNode::RandomFloodingNode(std::size_t k, KnowledgeSet initial, Rng rng)
    : k_(k), known_(std::move(initial)), rng_(rng) {
  DG_CHECK(known_.size() == k_);
  for (const std::size_t t : known_.set_bits()) {
    held_.push_back(static_cast<TokenId>(t));
  }
}

TokenId RandomFloodingNode::choose_broadcast(Round /*r*/) {
  if (held_.empty()) return kNoToken;
  return rng_.pick(held_);
}

void RandomFloodingNode::on_receive(Round /*r*/, std::span<const TokenId> tokens) {
  for (const TokenId t : tokens) {
    DG_CHECK(t < k_);
    if (known_.set(t)) held_.push_back(t);
  }
}

std::vector<std::unique_ptr<BroadcastAlgorithm>> RandomFloodingNode::make_all(
    std::size_t n, std::size_t k, const std::vector<KnowledgeSet>& initial,
    std::uint64_t seed) {
  DG_CHECK(initial.size() == n);
  Rng master(seed);
  std::vector<std::unique_ptr<BroadcastAlgorithm>> nodes;
  nodes.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<RandomFloodingNode>(k, initial[v], master.split()));
  }
  return nodes;
}

}  // namespace dyngossip
