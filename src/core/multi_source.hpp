// Multi-Source-Unicast (Section 3.2.1).
//
// Tokens start at s source nodes a_1 < a_2 < ... < a_s, with a_i holding
// k_i tokens labelled ⟨a_i, 1..k_i⟩.  All nodes give the highest priority to
// disseminating the tokens of the minimum-ID source whose dissemination they
// have not completed, which lets the single-source analysis apply source by
// source.  Per round, each node v runs three tasks in parallel:
//   1. for each edge {v,w}: if some source x has x ∈ I_v (v complete w.r.t.
//      x) and w ∉ R_v(x) (w not yet informed by v), announce completeness
//      w.r.t. the minimum such x (one announcement per edge per round);
//   2. answer every request received last round whose edge survived;
//   3. pick the minimum x ∉ I_v with S_v(x) ≠ ∅ (some neighbor announced
//      completeness w.r.t. x) and run Algorithm 1's request assignment as if
//      x were the only source.
//
// Message complexity (Theorem 3.5): 1-adversary-competitive O(n²s + nk).
// Time (Theorem 3.6): O(nk) rounds on 3-edge-stable graphs.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/knowledge_set.hpp"
#include "core/knowledge.hpp"
#include "core/tokens.hpp"
#include "engine/unicast_engine.hpp"

namespace dyngossip {

/// Static parameters of a multi-source run.
struct MultiSourceConfig {
  std::size_t n = 0;      ///< nodes
  TokenSpacePtr space;    ///< token labelling (shared, immutable)
};

/// Per-node state machine of the Multi-Source-Unicast algorithm.
class MultiSourceNode final : public UnicastAlgorithm {
 public:
  /// `initial_tokens` is K_v(0) (usually space->initial_knowledge(n)[v];
  /// Algorithm 2's phase 2 passes knowledge accumulated during phase 1).
  MultiSourceNode(NodeId self, const MultiSourceConfig& cfg,
                  const KnowledgeSet& initial_tokens);

  void send(Round r, std::span<const NodeId> neighbors, Outbox& out) override;
  void on_receive(Round r, NodeId from, const Message& m) override;

  /// True iff v holds every token of source index x.
  [[nodiscard]] bool complete_wrt(std::size_t x) const {
    return per_source_[x].held == cfg_.space->count_of(x);
  }

  /// True iff v holds all k tokens.
  [[nodiscard]] bool complete_all() const noexcept {
    return tokens_.all();
  }

  /// Tokens currently held.
  [[nodiscard]] const KnowledgeSet& tokens() const noexcept { return tokens_; }

  /// Instrumentation: requests sent so far, by edge class at send time.
  [[nodiscard]] std::uint64_t requests_over(EdgeClass c) const {
    return requests_by_class_[static_cast<std::size_t>(c)];
  }

  /// Builds the n node instances with the canonical initial distribution.
  [[nodiscard]] static std::vector<std::unique_ptr<UnicastAlgorithm>> make_all(
      const MultiSourceConfig& cfg);

  /// Builds the n node instances from explicit initial knowledge (phase 2).
  [[nodiscard]] static std::vector<std::unique_ptr<UnicastAlgorithm>> make_all_with(
      const MultiSourceConfig& cfg, const std::vector<KnowledgeSet>& initial);

 private:
  /// Lazily materialized per-source protocol state.
  struct PerSource {
    bool known = false;         ///< source discovered (self, or announcement)
    bool complete = false;      ///< x ∈ I_v
    std::uint32_t held = 0;     ///< tokens of x currently held
    KnowledgeSet informed;     ///< R_v(x) — I announced my completeness to...
    KnowledgeSet announcers;   ///< S_v(x) — announced their completeness to me
  };

  /// Marks token t held; updates per-source counters and completeness.
  void account_token(TokenId t);

  NodeId self_;
  MultiSourceConfig cfg_;
  KnowledgeSet tokens_;
  std::vector<PerSource> per_source_;  ///< indexed by source index
  EdgeClassifier classifier_;
  RequestList sent_requests_;          ///< sorted by neighbor id
  std::vector<std::pair<NodeId, TokenId>> pending_answers_;
  std::uint64_t requests_by_class_[3] = {0, 0, 0};
  // Per-round scratch, reused across rounds (send() leaves in_flight_ empty).
  RequestList surviving_;
  RequestList next_requests_;
  KnowledgeSet in_flight_;
  std::vector<NodeId> by_class_[3];
};

}  // namespace dyngossip
