// Oblivious-Multi-Source-Unicast (Algorithm 2, Section 3.2.2) — phase 1.
//
// Against an oblivious adversary, when the source count s exceeds
// n^{2/3} log^{5/3} n, the algorithm first funnels all tokens to a small set
// of randomly self-elected centers via random walks on the virtual n-regular
// multigraph (each node pads its degree to n with self-loops), then runs
// Multi-Source-Unicast with the centers as sources.
//
// Phase-1 per-round behaviour of a node u holding walking tokens:
//  - centers announce themselves once per distinct neighbor (one O(log n)-
//    bit control message), and tokens that reach a center stop there;
//  - low-degree u (d(u) < γ = n·log n / f): each held token independently
//    takes one lazy-walk step — with probability d(u)/n it crosses a
//    uniformly random incident edge (unless that edge already carried a
//    walk token from u this round: congestion keeps it passive), otherwise
//    it traverses a self-loop (a virtual step, free of message cost);
//  - high-degree u (d(u) >= γ): u sends one held token to each known
//    neighboring center (w.h.p. a high-degree node has one).
//
// NOTE on the paper's pseudocode: Algorithm 2 line 8 says "with probability
// 1/d(u)", but the text analysis defines the walk on the virtual n-regular
// multigraph, i.e. move with probability d(u)/n.  We implement the text
// version and expose the pseudocode variant behind a flag (see DESIGN.md).
//
// Phase orchestration (phase switch, center election, the phase-2
// relabelled TokenSpace, metric merging) lives in sim/simulator.hpp.
#pragma once

#include <memory>
#include <vector>

#include "common/knowledge_set.hpp"
#include "common/rng.hpp"
#include "engine/unicast_engine.hpp"

namespace dyngossip {

/// Phase-1 walk parameters shared by all nodes.
struct WalkConfig {
  std::size_t n = 0;      ///< nodes
  std::uint32_t k = 0;    ///< tokens
  double gamma = 0.0;     ///< high-degree threshold γ = n·log n / f
  bool pseudocode_walk_prob = false;  ///< move w.p. 1/d(u) instead of d(u)/n
};

/// Per-node phase-1 state machine.
class WalkNode final : public UnicastAlgorithm {
 public:
  WalkNode(NodeId self, const WalkConfig& cfg, bool is_center,
           std::vector<TokenId> initial_tokens, Rng rng);

  void send(Round r, std::span<const NodeId> neighbors, Outbox& out) override;
  void on_receive(Round r, NodeId from, const Message& m) override;

  /// True iff this node elected itself a center.
  [[nodiscard]] bool is_center() const noexcept { return is_center_; }

  /// Tokens whose walking instance currently sits at this node (for a
  /// center these are the tokens it has collected and owns).
  [[nodiscard]] const std::vector<TokenId>& held() const noexcept { return held_; }

  /// Virtual (self-loop) steps taken by tokens at this node — counted
  /// toward time, never toward message complexity.
  [[nodiscard]] std::uint64_t virtual_steps() const noexcept { return virtual_steps_; }

  /// Real walk steps (token messages) sent by this node.
  [[nodiscard]] std::uint64_t walk_steps() const noexcept { return walk_steps_; }

  /// Rounds in which some held token was passive due to edge congestion or
  /// missing neighboring centers.
  [[nodiscard]] std::uint64_t passive_token_rounds() const noexcept {
    return passive_token_rounds_;
  }

 private:
  NodeId self_;
  WalkConfig cfg_;
  bool is_center_;
  std::vector<TokenId> held_;
  KnowledgeSet center_informed_;  ///< neighbors I announced center-hood to
  KnowledgeSet known_centers_;    ///< nodes that announced center-hood to me
  Rng rng_;
  std::uint64_t virtual_steps_ = 0;
  std::uint64_t walk_steps_ = 0;
  std::uint64_t passive_token_rounds_ = 0;
};

}  // namespace dyngossip
