#include "core/multi_source.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dyngossip {

MultiSourceNode::MultiSourceNode(NodeId self, const MultiSourceConfig& cfg,
                                 const DynamicBitset& initial_tokens)
    : self_(self), cfg_(cfg), tokens_(cfg.space->total_tokens()) {
  DG_CHECK(cfg_.space != nullptr);
  DG_CHECK(self < cfg_.n);
  DG_CHECK(initial_tokens.size() == tokens_.size());
  per_source_.resize(cfg_.space->num_sources());
  for (auto& ps : per_source_) {
    ps.informed = DynamicBitset(cfg_.n);
    ps.announcers = DynamicBitset(cfg_.n);
  }
  // A source knows (and is complete w.r.t.) itself at time 0; other nodes
  // discover sources through announcements.
  const std::size_t own = cfg_.space->index_of_node(self);
  if (own != kNotASource) per_source_[own].known = true;
  for (const std::size_t t : initial_tokens.set_positions()) {
    account_token(static_cast<TokenId>(t));
  }
}

void MultiSourceNode::account_token(TokenId t) {
  if (!tokens_.set(t)) return;
  const std::size_t x = cfg_.space->source_of_token(t);
  PerSource& ps = per_source_[x];
  ++ps.held;
  if (ps.held == cfg_.space->count_of(x)) ps.complete = true;
}

void MultiSourceNode::send(Round r, std::span<const NodeId> neighbors, Outbox& out) {
  classifier_.begin_round(r, neighbors);
  const std::size_t s = per_source_.size();

  // Task 1 — completeness announcements: per edge, the minimum complete
  // source this neighbor has not yet been informed about.
  for (const NodeId w : neighbors) {
    for (std::size_t x = 0; x < s; ++x) {
      if (!per_source_[x].complete || per_source_[x].informed.test(w)) continue;
      out.send(w, Message::completeness(cfg_.space->source_node(x),
                                        cfg_.space->count_of(x)));
      per_source_[x].informed.set(w);
      break;  // one announcement per edge per round
    }
  }

  // Task 2 — answer last round's requests over surviving edges.
  for (const auto& [requester, token] : pending_answers_) {
    if (std::binary_search(neighbors.begin(), neighbors.end(), requester)) {
      const std::size_t x = cfg_.space->source_of_token(token);
      out.send(requester, Message::token_msg(token, cfg_.space->source_node(x)));
    }
  }
  pending_answers_.clear();

  // Task 3 — requests for the minimum incomplete source with a known
  // complete neighbor, exactly as in Algorithm 1.
  std::size_t target = kNotASource;
  for (std::size_t x = 0; x < s; ++x) {
    if (!per_source_[x].complete && per_source_[x].announcers.count() > 0) {
      target = x;
      break;
    }
  }

  // In-flight tokens: requested last round over edges that survived.
  DynamicBitset in_flight(tokens_.size());
  std::unordered_map<NodeId, TokenId> surviving;
  for (const auto& [w, tok] : sent_requests_) {
    if (std::binary_search(neighbors.begin(), neighbors.end(), w)) {
      in_flight.set(tok);
      surviving.emplace(w, tok);
    }
  }

  std::unordered_map<NodeId, TokenId> new_requests;
  if (target != kNotASource) {
    const PerSource& ps = per_source_[target];
    std::vector<TokenId> missing;
    for (const TokenId t : cfg_.space->tokens_of(target)) {
      if (!tokens_.test(t) && !in_flight.test(t)) missing.push_back(t);
    }
    std::vector<NodeId> by_class[3];
    for (const NodeId w : neighbors) {
      if (!ps.announcers.test(w)) continue;
      const bool arriving = surviving.count(w) > 0;
      const EdgeClass c = classifier_.classify(w, arriving);
      by_class[static_cast<std::size_t>(c)].push_back(w);
    }
    std::size_t j = 0;
    const EdgeClass priority[3] = {EdgeClass::kNew, EdgeClass::kIdle,
                                   EdgeClass::kContributive};
    for (const EdgeClass c : priority) {
      for (const NodeId w : by_class[static_cast<std::size_t>(c)]) {
        if (j >= missing.size()) break;
        out.send(w, Message::request(missing[j], cfg_.space->source_node(target)));
        new_requests.emplace(w, missing[j]);
        ++requests_by_class_[static_cast<std::size_t>(c)];
        ++j;
      }
    }
  }
  // Edges with an in-flight token stay tracked unless they got a fresh
  // request this round.
  for (const auto& [w, tok] : surviving) {
    new_requests.try_emplace(w, tok);
  }
  sent_requests_ = std::move(new_requests);
}

void MultiSourceNode::on_receive(Round /*r*/, NodeId from, const Message& m) {
  switch (m.type) {
    case MsgType::kToken: {
      DG_CHECK(m.token < tokens_.size());
      if (!tokens_.test(m.token)) {
        account_token(m.token);
        classifier_.note_learning_over(from);
      }
      const auto it = sent_requests_.find(from);
      if (it != sent_requests_.end() && it->second == m.token) {
        sent_requests_.erase(it);
      }
      break;
    }
    case MsgType::kCompleteness: {
      const std::size_t x = cfg_.space->index_of_node(m.source);
      DG_CHECK(x != kNotASource);
      DG_CHECK(m.aux == cfg_.space->count_of(x));
      per_source_[x].known = true;
      per_source_[x].announcers.set(from);
      break;
    }
    case MsgType::kRequest: {
      const std::size_t x = cfg_.space->source_of_token(m.token);
      DG_CHECK(complete_wrt(x));  // requests only follow our announcement
      pending_answers_.emplace_back(from, m.token);
      break;
    }
    case MsgType::kControl:
      DG_CHECK(false && "multi-source protocol has no control messages");
      break;
  }
}

std::vector<std::unique_ptr<UnicastAlgorithm>> MultiSourceNode::make_all(
    const MultiSourceConfig& cfg) {
  return make_all_with(cfg, cfg.space->initial_knowledge(cfg.n));
}

std::vector<std::unique_ptr<UnicastAlgorithm>> MultiSourceNode::make_all_with(
    const MultiSourceConfig& cfg, const std::vector<DynamicBitset>& initial) {
  DG_CHECK(initial.size() == cfg.n);
  std::vector<std::unique_ptr<UnicastAlgorithm>> nodes;
  nodes.reserve(cfg.n);
  for (NodeId v = 0; v < cfg.n; ++v) {
    nodes.push_back(std::make_unique<MultiSourceNode>(v, cfg, initial[v]));
  }
  return nodes;
}

}  // namespace dyngossip
