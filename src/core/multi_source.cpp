#include "core/multi_source.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dyngossip {

MultiSourceNode::MultiSourceNode(NodeId self, const MultiSourceConfig& cfg,
                                 const KnowledgeSet& initial_tokens)
    : self_(self),
      cfg_(cfg),
      tokens_(cfg.space->total_tokens()),
      in_flight_(cfg.space->total_tokens()) {
  DG_CHECK(cfg_.space != nullptr);
  DG_CHECK(self < cfg_.n);
  DG_CHECK(initial_tokens.size() == tokens_.size());
  per_source_.resize(cfg_.space->num_sources());
  for (auto& ps : per_source_) {
    ps.informed = KnowledgeSet(cfg_.n);
    ps.announcers = KnowledgeSet(cfg_.n);
  }
  // A source knows (and is complete w.r.t.) itself at time 0; other nodes
  // discover sources through announcements.
  const std::size_t own = cfg_.space->index_of_node(self);
  if (own != kNotASource) per_source_[own].known = true;
  for (const std::size_t t : initial_tokens.set_bits()) {
    account_token(static_cast<TokenId>(t));
  }
}

void MultiSourceNode::account_token(TokenId t) {
  if (!tokens_.set(t)) return;
  const std::size_t x = cfg_.space->source_of_token(t);
  PerSource& ps = per_source_[x];
  ++ps.held;
  if (ps.held == cfg_.space->count_of(x)) ps.complete = true;
}

void MultiSourceNode::send(Round r, std::span<const NodeId> neighbors, Outbox& out) {
  classifier_.begin_round(r, neighbors);
  const std::size_t s = per_source_.size();

  // Task 1 — completeness announcements: per edge, the minimum complete
  // source this neighbor has not yet been informed about.
  for (const NodeId w : neighbors) {
    for (std::size_t x = 0; x < s; ++x) {
      if (!per_source_[x].complete || per_source_[x].informed.test(w)) continue;
      out.send(w, Message::completeness(cfg_.space->source_node(x),
                                        cfg_.space->count_of(x)));
      per_source_[x].informed.set(w);
      break;  // one announcement per edge per round
    }
  }

  // Task 2 — answer last round's requests over surviving edges.
  for (const auto& [requester, token] : pending_answers_) {
    if (std::binary_search(neighbors.begin(), neighbors.end(), requester)) {
      const std::size_t x = cfg_.space->source_of_token(token);
      out.send(requester, Message::token_msg(token, cfg_.space->source_node(x)));
    }
  }
  pending_answers_.clear();

  // Task 3 — requests for the minimum incomplete source with a known
  // complete neighbor, exactly as in Algorithm 1.
  std::size_t target = kNotASource;
  for (std::size_t x = 0; x < s; ++x) {
    if (!per_source_[x].complete && per_source_[x].announcers.count() > 0) {
      target = x;
      break;
    }
  }

  // In-flight tokens: requested last round over edges that survived.
  // in_flight_ is empty on entry (the invariant restored below) and
  // surviving_ stays sorted because sent_requests_ is.
  surviving_.clear();
  for (const auto& [w, tok] : sent_requests_) {
    if (std::binary_search(neighbors.begin(), neighbors.end(), w)) {
      in_flight_.set(tok);
      surviving_.push_back({w, tok});
    }
  }

  next_requests_.clear();
  if (target != kNotASource) {
    const PerSource& ps = per_source_[target];
    // Lazy missing-token selection over the target source's token list (the
    // analogue of Algorithm 1's b_1 < b_2 < ... walk): tokens are consumed
    // only as requests are assigned, O(deg) steps per round amortized.
    const std::span<const TokenId> pool = cfg_.space->tokens_of(target);
    std::size_t pos = 0;
    const auto next_missing = [&]() -> TokenId {
      while (pos < pool.size() &&
             (tokens_.test(pool[pos]) || in_flight_.test(pool[pos]))) {
        ++pos;
      }
      return pos < pool.size() ? pool[pos++] : kNoToken;
    };
    for (auto& list : by_class_) list.clear();
    for (const NodeId w : neighbors) {
      if (!ps.announcers.test(w)) continue;
      const bool arriving = find_request(surviving_, w) != nullptr;
      const EdgeClass c = classifier_.classify(w, arriving);
      by_class_[static_cast<std::size_t>(c)].push_back(w);
    }
    const EdgeClass priority[3] = {EdgeClass::kNew, EdgeClass::kIdle,
                                   EdgeClass::kContributive};
    for (const EdgeClass c : priority) {
      for (const NodeId w : by_class_[static_cast<std::size_t>(c)]) {
        const TokenId b = next_missing();
        if (b == kNoToken) break;
        out.send(w, Message::request(b, cfg_.space->source_node(target)));
        next_requests_.push_back({w, b});
        ++requests_by_class_[static_cast<std::size_t>(c)];
      }
    }
  }
  // Edges with an in-flight token stay tracked unless they got a fresh
  // request this round; the helper also restores the in_flight_
  // empty-between-rounds invariant.
  carry_surviving_requests(next_requests_, surviving_, in_flight_);
  std::swap(sent_requests_, next_requests_);
}

void MultiSourceNode::on_receive(Round /*r*/, NodeId from, const Message& m) {
  switch (m.type) {
    case MsgType::kToken: {
      DG_CHECK(m.token < tokens_.size());
      if (!tokens_.test(m.token)) {
        account_token(m.token);
        classifier_.note_learning_over(from);
      }
      const auto* entry = find_request(sent_requests_, from);
      if (entry != nullptr && entry->second == m.token) {
        sent_requests_.erase(sent_requests_.begin() +
                             (entry - sent_requests_.data()));
      }
      break;
    }
    case MsgType::kCompleteness: {
      const std::size_t x = cfg_.space->index_of_node(m.source);
      DG_CHECK(x != kNotASource);
      DG_CHECK(m.aux == cfg_.space->count_of(x));
      per_source_[x].known = true;
      per_source_[x].announcers.set(from);
      break;
    }
    case MsgType::kRequest: {
      const std::size_t x = cfg_.space->source_of_token(m.token);
      DG_CHECK(complete_wrt(x));  // requests only follow our announcement
      pending_answers_.emplace_back(from, m.token);
      break;
    }
    case MsgType::kControl:
      DG_CHECK(false && "multi-source protocol has no control messages");
      break;
  }
}

std::vector<std::unique_ptr<UnicastAlgorithm>> MultiSourceNode::make_all(
    const MultiSourceConfig& cfg) {
  return make_all_with(cfg, cfg.space->initial_knowledge(cfg.n));
}

std::vector<std::unique_ptr<UnicastAlgorithm>> MultiSourceNode::make_all_with(
    const MultiSourceConfig& cfg, const std::vector<KnowledgeSet>& initial) {
  DG_CHECK(initial.size() == cfg.n);
  std::vector<std::unique_ptr<UnicastAlgorithm>> nodes;
  nodes.reserve(cfg.n);
  for (NodeId v = 0; v < cfg.n; ++v) {
    nodes.push_back(std::make_unique<MultiSourceNode>(v, cfg, initial[v]));
  }
  return nodes;
}

}  // namespace dyngossip
