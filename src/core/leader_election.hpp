// Leader election in dynamic networks under the adversary-competitive
// measure — the Section-4 research direction ("we believe the adversary-
// competitive model can be a useful alternative ... for various other
// important problems such as leader election and agreement in dynamic
// networks").
//
// Max-ID election: every node starts knowing only its own ID; all nodes
// must converge on the globally maximum ID.  Two protocols:
//
//  Broadcast (eager windows) — a node locally broadcasts its current
//    maximum for the n rounds following each adoption (its own ID counts as
//    an adoption at time 0).  While some node lacks the global max, every
//    holder is still inside its window, so in an always-connected graph at
//    least one boundary edge delivers it each round: agreement within n
//    rounds, at most n broadcasts per (node, adoption) pair.
//
//  Unicast (competitive) — maxima move only when something changed: on an
//    edge insertion both endpoints send their maximum over the new edge
//    (cost charged against the adversary's TC budget, Definition 1.3), and
//    a node that adopts a larger maximum forwards it once to every current
//    neighbor.  Silence is free: on a static graph after the initial flood,
//    no further messages are sent.
//
// Both run against the same Adversary interface as the dissemination
// algorithms; leader election is not token-forwarding, so it has its own
// small engine here rather than reusing the token engines.  Intended for
// oblivious adversaries (the Section-2 adversary's view is token-specific).
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/adversary.hpp"
#include "common/types.hpp"

namespace dyngossip {

/// Outcome of a leader-election run.
struct LeaderElectionResult {
  bool agreed = false;        ///< all nodes hold the global maximum
  NodeId leader = kNoNode;    ///< the global maximum ID (n-1 for dense IDs)
  Round rounds = 0;           ///< rounds executed until agreement (or cap)
  std::uint64_t broadcasts = 0;       ///< broadcast messages (broadcast variant)
  std::uint64_t unicast_messages = 0; ///< unicast messages (unicast variant)
  std::uint64_t tc = 0;               ///< TC(E) over the run
  std::uint64_t adoptions = 0;        ///< total max-adoption events

  /// Definition 1.3's residual: total messages − α·TC(E), clamped at 0.
  [[nodiscard]] double competitive_residual(double alpha) const noexcept {
    const double total = static_cast<double>(broadcasts + unicast_messages);
    const double res = total - alpha * static_cast<double>(tc);
    return res < 0.0 ? 0.0 : res;
  }
};

/// Eager-window local-broadcast election.  Runs until all nodes agree on
/// the maximum (checked globally by the harness) or `max_rounds`.
[[nodiscard]] LeaderElectionResult run_leader_election_broadcast(
    std::size_t n, Adversary& adversary, Round max_rounds);

/// Competitive unicast election (insertion exchanges + change forwarding).
[[nodiscard]] LeaderElectionResult run_leader_election_unicast(
    std::size_t n, Adversary& adversary, Round max_rounds);

}  // namespace dyngossip
