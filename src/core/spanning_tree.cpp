#include "core/spanning_tree.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dyngossip {

SpanningTreeNode::SpanningTreeNode(NodeId self, const SpanningTreeConfig& cfg,
                                   const KnowledgeSet& initial_tokens)
    : self_(self), cfg_(cfg), tokens_(cfg.space->total_tokens()) {
  DG_CHECK(cfg_.space != nullptr);
  DG_CHECK(self < cfg_.n);
  DG_CHECK(cfg_.root < cfg_.n);
  if (self == cfg_.root) parent_ = self;  // the root is its own parent
  provenance_.assign(cfg_.space->total_tokens(), kNoNode);
  for (const std::size_t t : initial_tokens.set_bits()) {
    tokens_.set(t);
    sequence_.push_back(static_cast<TokenId>(t));
  }
}

void SpanningTreeNode::send(Round r, std::span<const NodeId> neighbors, Outbox& out) {
  // Static-topology guard: the protocol is only defined on static graphs.
  if (r == 1) {
    first_neighbors_.assign(neighbors.begin(), neighbors.end());
  } else {
    DG_CHECK(std::equal(neighbors.begin(), neighbors.end(),
                        first_neighbors_.begin(), first_neighbors_.end()));
  }

  // --- Tree construction (rounds 1..n) ---------------------------------
  if (parent_ != kNoNode && !flooded_join_) {
    flooded_join_ = true;
    for (const NodeId w : neighbors) {
      if (w != parent_ || self_ == cfg_.root) {
        out.send(w, Message::control(ControlKind::kTreeJoin));
      }
    }
  }
  if (parent_ != kNoNode && parent_ != self_ && !sent_accept_) {
    sent_accept_ = true;
    out.send(parent_, Message::control(ControlKind::kTreeAccept));
  }

  // --- Dissemination (rounds > n): flood each token over the tree away
  // from its origin, one token per tree edge per round -------------------
  if (r <= cfg_.n) return;
  DG_CHECK(parent_ != kNoNode);  // build always finishes within n rounds
  for (std::size_t i = 0; i < tree_neighbors_.size(); ++i) {
    const NodeId w = tree_neighbors_[i];
    std::size_t& cur = cursor_[i];
    // Skip tokens this neighbor itself delivered to us.
    while (cur < sequence_.size() && provenance_[sequence_[cur]] == w) ++cur;
    if (cur < sequence_.size()) {
      out.send(w, Message::token_msg(sequence_[cur]));
      ++cur;
    }
  }
}

void SpanningTreeNode::on_receive(Round /*r*/, NodeId from, const Message& m) {
  switch (m.type) {
    case MsgType::kControl:
      switch (m.control_kind()) {
        case ControlKind::kTreeJoin:
          if (parent_ == kNoNode) {
            parent_ = from;
            tree_neighbors_.push_back(from);
            cursor_.push_back(0);
          }
          break;
        case ControlKind::kTreeAccept:
          children_.push_back(from);
          tree_neighbors_.push_back(from);
          cursor_.push_back(0);
          break;
        default:
          DG_CHECK(false && "unexpected control kind in spanning-tree protocol");
      }
      break;
    case MsgType::kToken:
      DG_CHECK(m.token < tokens_.size());
      // Tree flooding delivers each token exactly once per node.
      DG_CHECK(tokens_.set(m.token));
      provenance_[m.token] = from;
      sequence_.push_back(m.token);
      break;
    default:
      DG_CHECK(false && "spanning-tree protocol exchanges only control+token");
  }
}

std::vector<std::unique_ptr<UnicastAlgorithm>> SpanningTreeNode::make_all(
    const SpanningTreeConfig& cfg) {
  const std::vector<KnowledgeSet> initial = cfg.space->initial_knowledge(cfg.n);
  std::vector<std::unique_ptr<UnicastAlgorithm>> nodes;
  nodes.reserve(cfg.n);
  for (NodeId v = 0; v < cfg.n; ++v) {
    nodes.push_back(std::make_unique<SpanningTreeNode>(v, cfg, initial[v]));
  }
  return nodes;
}

}  // namespace dyngossip
