// Uniform-random token flooding.
//
// Each node broadcasts a uniformly random known token every round.  Unlike
// phase flooding it has no deterministic round bound, but against benign
// adversaries it completes quickly in practice, and against the Section-2
// lower-bound adversary it is throttled to O(log n) learnings per round just
// like every other token-forwarding algorithm — the lower-bound benches run
// both algorithms to exhibit the algorithm-independence of Theorem 2.3.
//
// Note the adversary model: the strongly adaptive adversary sees this
// round's random choice *before* fixing the graph (the engine collects
// intents first), which is exactly the strength the Section-2 bound needs.
#pragma once

#include <memory>
#include <vector>

#include "common/knowledge_set.hpp"
#include "common/rng.hpp"
#include "engine/broadcast_engine.hpp"

namespace dyngossip {

/// Per-node random-flooding state machine.
class RandomFloodingNode final : public BroadcastAlgorithm {
 public:
  RandomFloodingNode(std::size_t k, KnowledgeSet initial, Rng rng);

  [[nodiscard]] TokenId choose_broadcast(Round r) override;
  void on_receive(Round r, std::span<const TokenId> tokens) override;

  /// Tokens currently known.
  [[nodiscard]] const KnowledgeSet& known() const noexcept { return known_; }

  /// Builds n nodes; each gets an independent RNG stream derived from seed.
  [[nodiscard]] static std::vector<std::unique_ptr<BroadcastAlgorithm>> make_all(
      std::size_t n, std::size_t k, const std::vector<KnowledgeSet>& initial,
      std::uint64_t seed);

 private:
  std::size_t k_;
  KnowledgeSet known_;
  std::vector<TokenId> held_;  ///< known tokens as a dense list for sampling
  Rng rng_;
};

}  // namespace dyngossip
