#include "core/leader_election.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/connectivity.hpp"
#include "graph/dynamic_tracker.hpp"

namespace dyngossip {

namespace {

[[nodiscard]] bool all_agree(const std::vector<NodeId>& maxima, NodeId leader) {
  return std::all_of(maxima.begin(), maxima.end(),
                     [leader](NodeId m) { return m == leader; });
}

}  // namespace

LeaderElectionResult run_leader_election_broadcast(std::size_t n,
                                                   Adversary& adversary,
                                                   Round max_rounds) {
  DG_CHECK(n >= 1);
  DG_CHECK(adversary.num_nodes() == n);
  LeaderElectionResult result;
  result.leader = static_cast<NodeId>(n - 1);

  std::vector<NodeId> maxima(n);
  std::vector<Round> adopted_at(n, 0);  // own ID adopted at time 0
  for (NodeId v = 0; v < n; ++v) maxima[v] = v;
  result.adoptions = n;

  if (all_agree(maxima, result.leader)) {  // n == 1
    result.agreed = true;
    return result;
  }

  DynamicGraphTracker tracker(n);
  for (Round r = 1; r <= max_rounds; ++r) {
    // A node broadcasts its maximum for the n rounds after each adoption.
    std::vector<NodeId> speak(n, kNoNode);
    for (NodeId v = 0; v < n; ++v) {
      if (r <= adopted_at[v] + static_cast<Round>(n)) {
        speak[v] = maxima[v];
        ++result.broadcasts;
      }
    }
    // Leader election carries no token intents; oblivious adversaries
    // ignore the view entirely.
    BroadcastRoundView view;
    view.round = r;
    Graph g = adversary.broadcast_round(view);
    DG_CHECK(g.num_nodes() == n);
    DG_CHECK(is_connected(g));
    const GraphDiff diff = tracker.advance(g, r);
    result.tc += diff.inserted.size();

    // Synchronous delivery: adopt the largest value heard this round.
    std::vector<NodeId> next = maxima;
    for (NodeId v = 0; v < n; ++v) {
      for (const NodeId u : g.neighbors(v)) {
        if (speak[u] != kNoNode && speak[u] > next[v]) next[v] = speak[u];
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (next[v] != maxima[v]) {
        maxima[v] = next[v];
        adopted_at[v] = r;
        ++result.adoptions;
      }
    }
    result.rounds = r;
    if (all_agree(maxima, result.leader)) {
      result.agreed = true;
      break;
    }
  }
  return result;
}

LeaderElectionResult run_leader_election_unicast(std::size_t n,
                                                 Adversary& adversary,
                                                 Round max_rounds) {
  DG_CHECK(n >= 1);
  DG_CHECK(adversary.num_nodes() == n);
  LeaderElectionResult result;
  result.leader = static_cast<NodeId>(n - 1);

  std::vector<NodeId> maxima(n);
  for (NodeId v = 0; v < n; ++v) maxima[v] = v;
  result.adoptions = n;
  std::vector<bool> changed(n, true);  // initial adoption pending broadcast

  if (all_agree(maxima, result.leader)) {
    result.agreed = true;
    return result;
  }

  DynamicGraphTracker tracker(n);
  Graph prev(n);
  std::vector<SentRecord> no_traffic;
  std::vector<KnowledgeSet> no_knowledge;
  for (Round r = 1; r <= max_rounds; ++r) {
    UnicastRoundView view;
    view.round = r;
    view.prev_graph = &prev;
    view.prev_messages = &no_traffic;
    view.knowledge = &no_knowledge;
    Graph g = adversary.unicast_round(view);
    DG_CHECK(g.num_nodes() == n);
    DG_CHECK(is_connected(g));
    const GraphDiff diff = tracker.advance(g, r);
    result.tc += diff.inserted.size();

    // Send phase: (a) over each fresh edge both endpoints exchange maxima
    // (paid by the adversary's insertion); (b) a node whose maximum changed
    // last round forwards it once to every current neighbor.
    std::vector<std::pair<NodeId, NodeId>> deliveries;  // (to, value)
    for (const EdgeKey key : diff.inserted) {
      const auto [u, v] = edge_endpoints(key);
      deliveries.emplace_back(v, maxima[u]);
      deliveries.emplace_back(u, maxima[v]);
      result.unicast_messages += 2;
    }
    for (NodeId v = 0; v < n; ++v) {
      if (!changed[v]) continue;
      for (const NodeId u : g.neighbors(v)) {
        // Skip edges already covered by the insertion exchange this round.
        if (std::binary_search(diff.inserted.begin(), diff.inserted.end(),
                               edge_key(u, v))) {
          continue;
        }
        deliveries.emplace_back(u, maxima[v]);
        ++result.unicast_messages;
      }
      changed[v] = false;
    }

    // Synchronous delivery + adoption.
    for (const auto& [to, value] : deliveries) {
      if (value > maxima[to]) {
        maxima[to] = value;
        changed[to] = true;
        ++result.adoptions;
      }
    }
    result.rounds = r;
    prev = std::move(g);
    if (all_agree(maxima, result.leader)) {
      // Agreement on values; a real deployment would also quiesce, which
      // takes one more forwarding round — the message count includes it
      // via the still-set changed flags only if we keep running, so we
      // account it explicitly here for honesty.
      result.agreed = true;
      break;
    }
  }
  return result;
}

}  // namespace dyngossip
