// Static spanning-tree dissemination baseline (Section 1).
//
// On a static network one can build a spanning tree (up to Θ(n²) messages in
// dense KT0 graphs) and pipeline the k tokens over its n-1 edges, for
// O(n² + nk) total messages, i.e. O(n²/k + n) amortized — the benchmark the
// paper's dynamic bounds are measured against (optimal O(n) amortized once
// k = Ω(n)).
//
// Distributed implementation over the unicast engine (static adversary
// required; the protocol checks its neighborhood never changes):
//   rounds 1..n      — BFS tree construction: the root floods Join control
//                      messages; first Join fixes the parent; children
//                      identify themselves with Accept.
//   rounds n+1..     — dissemination: every token floods over the tree away
//                      from its origin — each node forwards each token to
//                      every tree neighbor except the one that delivered
//                      it, FIFO-pipelined at one token per tree edge per
//                      round.  Each token crosses each of the n-1 tree
//                      edges exactly once, so dissemination costs exactly
//                      k(n-1) token messages (single- and multi-source
//                      alike) on top of the O(m) construction messages.
#pragma once

#include <memory>
#include <vector>

#include "common/knowledge_set.hpp"
#include "core/tokens.hpp"
#include "engine/unicast_engine.hpp"

namespace dyngossip {

/// Static parameters of a spanning-tree run.
struct SpanningTreeConfig {
  std::size_t n = 0;    ///< nodes
  TokenSpacePtr space;  ///< token labelling (any initial distribution)
  NodeId root = 0;      ///< tree root (known to all, e.g. minimum id)
};

/// Per-node state machine of the spanning-tree baseline.
class SpanningTreeNode final : public UnicastAlgorithm {
 public:
  SpanningTreeNode(NodeId self, const SpanningTreeConfig& cfg,
                   const KnowledgeSet& initial_tokens);

  void send(Round r, std::span<const NodeId> neighbors, Outbox& out) override;
  void on_receive(Round r, NodeId from, const Message& m) override;

  /// Parent in the BFS tree (kNoNode before joining; root's parent = root).
  [[nodiscard]] NodeId parent() const noexcept { return parent_; }

  /// Children discovered via Accept messages.
  [[nodiscard]] const std::vector<NodeId>& children() const noexcept {
    return children_;
  }

  /// Builds the n node instances with the space's initial distribution.
  [[nodiscard]] static std::vector<std::unique_ptr<UnicastAlgorithm>> make_all(
      const SpanningTreeConfig& cfg);

 private:
  NodeId self_;
  SpanningTreeConfig cfg_;
  KnowledgeSet tokens_;
  NodeId parent_ = kNoNode;
  bool sent_accept_ = false;
  bool flooded_join_ = false;
  std::vector<NodeId> children_;
  /// Tree neighbors (parent first if non-root, then children) with a FIFO
  /// cursor each into `sequence_`.
  std::vector<NodeId> tree_neighbors_;
  std::vector<std::size_t> cursor_;
  /// Token sequence in local arrival order: initial tokens, then receipts.
  std::vector<TokenId> sequence_;
  /// provenance_[t]: the tree neighbor that delivered t (kNoNode if initial).
  std::vector<NodeId> provenance_;
  std::vector<NodeId> first_neighbors_;  ///< static-topology guard
};

}  // namespace dyngossip
