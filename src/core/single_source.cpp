#include "core/single_source.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dyngossip {

SingleSourceNode::SingleSourceNode(NodeId self, const SingleSourceConfig& cfg)
    : self_(self),
      cfg_(cfg),
      tokens_(cfg.k),
      informed_(cfg.n),
      known_complete_(cfg.n) {
  DG_CHECK(self < cfg.n);
  DG_CHECK(cfg.source < cfg.n);
  if (self == cfg.source) tokens_.set_all();
}

void SingleSourceNode::send(Round r, std::span<const NodeId> neighbors, Outbox& out) {
  classifier_.begin_round(r, neighbors);
  current_neighbors_.assign(neighbors.begin(), neighbors.end());

  if (complete()) {
    // Answer last round's requests first (so the per-neighbor if/else of
    // Algorithm 1 holds: a requester necessarily already knows our
    // completeness, so it is never also an announcement target).
    for (const auto& [requester, token] : pending_answers_) {
      if (std::binary_search(neighbors.begin(), neighbors.end(), requester)) {
        out.send(requester, Message::token_msg(token, cfg_.source));
      }
    }
    pending_answers_.clear();
    sent_requests_.clear();
    for (const NodeId u : neighbors) {
      if (!informed_.test(u)) {
        out.send(u, Message::completeness(cfg_.source, cfg_.k));
        informed_.set(u);
      }
    }
    return;
  }

  // Incomplete nodes never receive requests (nobody believes them complete).
  DG_CHECK(pending_answers_.empty());

  // Tokens already in flight: requested last round over an edge that
  // survived into this round.  The paper notes v can know these arrive by
  // the end of round r; they are excluded from this round's requests and
  // count as contributions for edge classification.
  DynamicBitset in_flight(cfg_.k);
  std::unordered_map<NodeId, TokenId> surviving;
  for (const auto& [w, tok] : sent_requests_) {
    if (std::binary_search(neighbors.begin(), neighbors.end(), w)) {
      in_flight.set(tok);
      surviving.emplace(w, tok);
    }
  }

  // Missing-token list b_1 < b_2 < ... (Algorithm 1, line 7), minus in-flight.
  std::vector<std::size_t> missing_raw = tokens_.unset_positions();
  std::vector<TokenId> missing;
  missing.reserve(missing_raw.size());
  for (const std::size_t b : missing_raw) {
    if (!in_flight.test(b)) missing.push_back(static_cast<TokenId>(b));
  }

  // Partition eligible edges (to known-complete neighbors) by class.
  std::vector<NodeId> by_class[3];
  for (const NodeId w : neighbors) {
    if (!known_complete_.test(w)) continue;
    const bool arriving = surviving.count(w) > 0;
    const EdgeClass c = classifier_.classify(w, arriving);
    by_class[static_cast<std::size_t>(c)].push_back(w);
  }

  // Assign one distinct request per edge in the configured class priority
  // (Algorithm 1: new, then idle, then contributive).
  sent_requests_.clear();
  std::size_t j = 0;
  static constexpr EdgeClass kOrders[3][3] = {
      {EdgeClass::kNew, EdgeClass::kIdle, EdgeClass::kContributive},
      {EdgeClass::kNew, EdgeClass::kContributive, EdgeClass::kIdle},
      {EdgeClass::kIdle, EdgeClass::kContributive, EdgeClass::kNew},
  };
  const EdgeClass(&priority)[3] =
      kOrders[static_cast<std::size_t>(cfg_.priority)];
  for (const EdgeClass c : priority) {
    for (const NodeId w : by_class[static_cast<std::size_t>(c)]) {
      if (j >= missing.size()) break;
      out.send(w, Message::request(missing[j], cfg_.source));
      sent_requests_.emplace(w, missing[j]);
      ++requests_by_class_[static_cast<std::size_t>(c)];
      ++j;
    }
  }
  // Edges with an in-flight token keep their pending entry so next round's
  // in-flight computation (and classification) still sees them if no fresh
  // request was assigned to that edge this round.
  for (const auto& [w, tok] : surviving) {
    sent_requests_.try_emplace(w, tok);
  }
}

void SingleSourceNode::on_receive(Round /*r*/, NodeId from, const Message& m) {
  switch (m.type) {
    case MsgType::kToken: {
      DG_CHECK(m.token < cfg_.k);
      if (tokens_.set(m.token)) {
        classifier_.note_learning_over(from);
      }
      // Arrived: no longer in flight from this neighbor.
      const auto it = sent_requests_.find(from);
      if (it != sent_requests_.end() && it->second == m.token) {
        sent_requests_.erase(it);
      }
      break;
    }
    case MsgType::kCompleteness: {
      DG_CHECK(m.source == cfg_.source);
      DG_CHECK(m.aux == cfg_.k);
      known_complete_.set(from);
      break;
    }
    case MsgType::kRequest: {
      // Only complete nodes are believed complete, and completeness is
      // monotone, so we can always serve this next round.
      DG_CHECK(complete());
      DG_CHECK(m.token < cfg_.k);
      pending_answers_.emplace_back(from, m.token);
      break;
    }
    case MsgType::kControl:
      DG_CHECK(false && "single-source protocol has no control messages");
      break;
  }
}

bool SingleSourceNode::is_bridge_node() const {
  if (complete()) return false;
  for (const NodeId w : current_neighbors_) {
    if (known_complete_.test(w)) return true;
  }
  return false;
}

std::vector<std::unique_ptr<UnicastAlgorithm>> SingleSourceNode::make_all(
    const SingleSourceConfig& cfg) {
  std::vector<std::unique_ptr<UnicastAlgorithm>> nodes;
  nodes.reserve(cfg.n);
  for (NodeId v = 0; v < cfg.n; ++v) {
    nodes.push_back(std::make_unique<SingleSourceNode>(v, cfg));
  }
  return nodes;
}

std::vector<DynamicBitset> SingleSourceNode::initial_knowledge(
    const SingleSourceConfig& cfg) {
  std::vector<DynamicBitset> knowledge(cfg.n, DynamicBitset(cfg.k));
  knowledge[cfg.source].set_all();
  return knowledge;
}

}  // namespace dyngossip
