#include "core/single_source.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dyngossip {

SingleSourceNode::SingleSourceNode(NodeId self, const SingleSourceConfig& cfg)
    : self_(self),
      cfg_(cfg),
      tokens_(cfg.k),
      informed_(cfg.n),
      known_complete_(cfg.n),
      in_flight_(cfg.k) {
  DG_CHECK(self < cfg.n);
  DG_CHECK(cfg.source < cfg.n);
  if (self == cfg.source) tokens_.set_all();
}

void SingleSourceNode::send(Round r, std::span<const NodeId> neighbors, Outbox& out) {
  classifier_.begin_round(r, neighbors);
  current_neighbors_.assign(neighbors.begin(), neighbors.end());

  if (complete()) {
    // Answer last round's requests first (so the per-neighbor if/else of
    // Algorithm 1 holds: a requester necessarily already knows our
    // completeness, so it is never also an announcement target).
    for (const auto& [requester, token] : pending_answers_) {
      if (std::binary_search(neighbors.begin(), neighbors.end(), requester)) {
        out.send(requester, Message::token_msg(token, cfg_.source));
      }
    }
    pending_answers_.clear();
    sent_requests_.clear();
    for (const NodeId u : neighbors) {
      if (!informed_.test(u)) {
        out.send(u, Message::completeness(cfg_.source, cfg_.k));
        informed_.set(u);
      }
    }
    return;
  }

  // Incomplete nodes never receive requests (nobody believes them complete).
  DG_CHECK(pending_answers_.empty());

  // Tokens already in flight: requested last round over an edge that
  // survived into this round.  The paper notes v can know these arrive by
  // the end of round r; they are excluded from this round's requests and
  // count as contributions for edge classification.  in_flight_ is empty on
  // entry (the invariant restored at the bottom of this function) and
  // surviving_ stays sorted because sent_requests_ is.
  surviving_.clear();
  for (const auto& [w, tok] : sent_requests_) {
    if (std::binary_search(neighbors.begin(), neighbors.end(), w)) {
      in_flight_.set(tok);
      surviving_.push_back({w, tok});
    }
  }

  // Partition eligible edges (to known-complete neighbors) by class.
  for (auto& list : by_class_) list.clear();
  for (const NodeId w : neighbors) {
    if (!known_complete_.test(w)) continue;
    const bool arriving = find_request(surviving_, w) != nullptr;
    const EdgeClass c = classifier_.classify(w, arriving);
    by_class_[static_cast<std::size_t>(c)].push_back(w);
  }

  // Assign one distinct request per edge in the configured class priority
  // (Algorithm 1: new, then idle, then contributive).  The missing-token
  // list b_1 < b_2 < ... (line 7, minus in-flight) is never materialized:
  // the bitset cursor is advanced lazily, so a round's cost is O(deg)
  // cursor steps instead of O(k) — the difference between O(nk) and
  // O(n + m) work per engine round.
  next_requests_.clear();
  auto missing = tokens_.unset_bits().begin();
  const auto missing_end = tokens_.unset_bits().end();
  const auto next_missing = [&]() -> TokenId {
    while (missing != missing_end && in_flight_.test(*missing)) ++missing;
    if (missing == missing_end) return kNoToken;
    const auto b = static_cast<TokenId>(*missing);
    ++missing;
    return b;
  };
  static constexpr EdgeClass kOrders[3][3] = {
      {EdgeClass::kNew, EdgeClass::kIdle, EdgeClass::kContributive},
      {EdgeClass::kNew, EdgeClass::kContributive, EdgeClass::kIdle},
      {EdgeClass::kIdle, EdgeClass::kContributive, EdgeClass::kNew},
  };
  const EdgeClass(&priority)[3] =
      kOrders[static_cast<std::size_t>(cfg_.priority)];
  for (const EdgeClass c : priority) {
    for (const NodeId w : by_class_[static_cast<std::size_t>(c)]) {
      const TokenId b = next_missing();
      if (b == kNoToken) break;
      out.send(w, Message::request(b, cfg_.source));
      next_requests_.push_back({w, b});
      ++requests_by_class_[static_cast<std::size_t>(c)];
    }
  }
  // Edges with an in-flight token keep their pending entry so next round's
  // in-flight computation (and classification) still sees them if no fresh
  // request was assigned to that edge this round; the helper also restores
  // the in_flight_ empty-between-rounds invariant.
  carry_surviving_requests(next_requests_, surviving_, in_flight_);
  std::swap(sent_requests_, next_requests_);
}

void SingleSourceNode::on_receive(Round /*r*/, NodeId from, const Message& m) {
  switch (m.type) {
    case MsgType::kToken: {
      DG_CHECK(m.token < cfg_.k);
      if (tokens_.set(m.token)) {
        classifier_.note_learning_over(from);
      }
      // Arrived: no longer in flight from this neighbor.
      const auto* entry = find_request(sent_requests_, from);
      if (entry != nullptr && entry->second == m.token) {
        sent_requests_.erase(sent_requests_.begin() +
                             (entry - sent_requests_.data()));
      }
      break;
    }
    case MsgType::kCompleteness: {
      DG_CHECK(m.source == cfg_.source);
      DG_CHECK(m.aux == cfg_.k);
      known_complete_.set(from);
      break;
    }
    case MsgType::kRequest: {
      // Only complete nodes are believed complete, and completeness is
      // monotone, so we can always serve this next round.
      DG_CHECK(complete());
      DG_CHECK(m.token < cfg_.k);
      pending_answers_.emplace_back(from, m.token);
      break;
    }
    case MsgType::kControl:
      DG_CHECK(false && "single-source protocol has no control messages");
      break;
  }
}

bool SingleSourceNode::is_bridge_node() const {
  if (complete()) return false;
  for (const NodeId w : current_neighbors_) {
    if (known_complete_.test(w)) return true;
  }
  return false;
}

std::vector<std::unique_ptr<UnicastAlgorithm>> SingleSourceNode::make_all(
    const SingleSourceConfig& cfg) {
  std::vector<std::unique_ptr<UnicastAlgorithm>> nodes;
  nodes.reserve(cfg.n);
  for (NodeId v = 0; v < cfg.n; ++v) {
    nodes.push_back(std::make_unique<SingleSourceNode>(v, cfg));
  }
  return nodes;
}

std::vector<KnowledgeSet> SingleSourceNode::initial_knowledge(
    const SingleSourceConfig& cfg) {
  std::vector<KnowledgeSet> knowledge(cfg.n, KnowledgeSet(cfg.k));
  knowledge[cfg.source].set_all();
  return knowledge;
}

}  // namespace dyngossip
