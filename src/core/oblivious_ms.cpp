#include "core/oblivious_ms.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"

namespace dyngossip {

WalkNode::WalkNode(NodeId self, const WalkConfig& cfg, bool is_center,
                   std::vector<TokenId> initial_tokens, Rng rng)
    : self_(self),
      cfg_(cfg),
      is_center_(is_center),
      held_(std::move(initial_tokens)),
      center_informed_(cfg.n),
      known_centers_(cfg.n),
      rng_(rng) {
  DG_CHECK(self < cfg_.n);
  for (const TokenId t : held_) DG_CHECK(t < cfg_.k);
}

void WalkNode::send(Round /*r*/, std::span<const NodeId> neighbors, Outbox& out) {
  if (is_center_) {
    // Center announcement, once per distinct neighbor ever met; collected
    // tokens stop here, so no token traffic originates from a center.
    for (const NodeId w : neighbors) {
      if (!center_informed_.test(w)) {
        out.send(w, Message::control(ControlKind::kCenterAnnounce));
        center_informed_.set(w);
      }
    }
    return;
  }
  if (held_.empty()) return;

  const std::size_t d = neighbors.size();
  DG_CHECK(d >= 1);  // round graphs are connected, so every node has a neighbor

  const bool high_degree = static_cast<double>(d) >= cfg_.gamma;
  bool any_passive = false;

  if (high_degree) {
    // Hand one token to each known neighboring center.
    std::vector<NodeId> centers_here;
    for (const NodeId w : neighbors) {
      if (known_centers_.test(w)) centers_here.push_back(w);
    }
    const std::size_t sendable = std::min(centers_here.size(), held_.size());
    for (std::size_t i = 0; i < sendable; ++i) {
      out.send(centers_here[i], Message::token_msg(held_.back()));
      held_.pop_back();
      ++walk_steps_;
    }
    any_passive = !held_.empty();
  } else {
    // Lazy random-walk step per held token on the virtual n-regular
    // multigraph; at most one walk token per incident edge per round.
    const double move_p = cfg_.pseudocode_walk_prob
                              ? 1.0 / static_cast<double>(d)
                              : static_cast<double>(d) / static_cast<double>(cfg_.n);
    std::unordered_set<NodeId> used_edges;
    std::vector<TokenId> staying;
    staying.reserve(held_.size());
    for (const TokenId t : held_) {
      if (!rng_.bernoulli(move_p)) {
        ++virtual_steps_;  // self-loop of the virtual multigraph
        staying.push_back(t);
        continue;
      }
      const NodeId w = neighbors[static_cast<std::size_t>(rng_.next_below(d))];
      if (used_edges.insert(w).second) {
        out.send(w, Message::token_msg(t));
        ++walk_steps_;
      } else {
        // Congestion: the chosen edge already carries a walk token.
        any_passive = true;
        staying.push_back(t);
      }
    }
    held_ = std::move(staying);
  }
  if (any_passive) ++passive_token_rounds_;
}

void WalkNode::on_receive(Round /*r*/, NodeId from, const Message& m) {
  switch (m.type) {
    case MsgType::kToken:
      DG_CHECK(m.token < cfg_.k);
      // The walking instance is now here; if this is a center it stops for
      // good (owned), otherwise it continues walking next round.
      held_.push_back(m.token);
      break;
    case MsgType::kControl:
      DG_CHECK(m.control_kind() == ControlKind::kCenterAnnounce);
      known_centers_.set(from);
      break;
    default:
      DG_CHECK(false && "phase 1 exchanges only walk tokens and center ads");
  }
}

}  // namespace dyngossip
