#include "core/flooding.hpp"

#include "common/check.hpp"

namespace dyngossip {

PhaseFloodingNode::PhaseFloodingNode(std::size_t n, std::size_t k,
                                     KnowledgeSet initial)
    : n_(n), k_(k), known_(std::move(initial)) {
  DG_CHECK(known_.size() == k_);
  DG_CHECK(n_ >= 1);
}

TokenId PhaseFloodingNode::choose_broadcast(Round r) {
  if (k_ == 0) return kNoToken;
  // Phase i (0-based) spans rounds i*n+1 .. (i+1)*n and floods token i.
  // Phases repeat after k*n rounds (a safety net; dissemination is already
  // guaranteed complete by then, and the engine stops at completion).
  const std::size_t phase = ((r - 1) / n_) % k_;
  const auto t = static_cast<TokenId>(phase);
  return known_.test(t) ? t : kNoToken;
}

void PhaseFloodingNode::on_receive(Round /*r*/, std::span<const TokenId> tokens) {
  for (const TokenId t : tokens) {
    DG_CHECK(t < k_);
    known_.set(t);
  }
}

std::vector<std::unique_ptr<BroadcastAlgorithm>> PhaseFloodingNode::make_all(
    std::size_t n, std::size_t k, const std::vector<KnowledgeSet>& initial) {
  DG_CHECK(initial.size() == n);
  std::vector<std::unique_ptr<BroadcastAlgorithm>> nodes;
  nodes.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<PhaseFloodingNode>(n, k, initial[v]));
  }
  return nodes;
}

}  // namespace dyngossip
