// Edge classification for the unicast algorithms (Section 3.1).
//
// Algorithm 1 prioritizes token requests over three classes of adjacent
// edges, evaluated from the incomplete endpoint's perspective:
//   new          — inserted at the beginning of round r or r-1;
//   contributive — not new, and a new token is sent over it between its
//                  last insertion and the end of round r (this includes a
//                  token the node *knows* is arriving this round, because it
//                  requested it last round and the edge survived);
//   idle         — neither.
// Priority: new > idle > contributive.  The idle-before-contributive order
// is what forces the adversary of Lemma 3.2 to delete an idle edge per
// bridge node in every futile round.
//
// EdgeClassifier tracks, per live incident edge, its last insertion round
// and whether a learning has happened over it since — exactly the local
// information the paper argues each node can maintain.
//
// Storage is a sorted parallel-array keyed by the position in the round's
// sorted neighbor list (the CSR neighbor slot): begin_round is one linear
// merge of the previous round's state with the new neighbor span, reusing
// scratch buffers — no per-round hashing or node allocation.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/knowledge_set.hpp"
#include "common/types.hpp"

namespace dyngossip {

/// The three classes of Section 3.1.
enum class EdgeClass : std::uint8_t { kNew = 0, kIdle = 1, kContributive = 2 };

/// Per-edge request bookkeeping shared by the unicast algorithms:
/// (neighbor, token) pairs kept sorted by neighbor id.
using RequestList = std::vector<std::pair<NodeId, TokenId>>;

/// Entry for neighbor w in a sorted request list, or nullptr.
[[nodiscard]] const std::pair<NodeId, TokenId>* find_request(const RequestList& list,
                                                             NodeId w);

/// Folds the surviving in-flight requests into the round's fresh
/// assignment: sorts `fresh`, appends each surviving entry whose neighbor
/// received no fresh request this round, re-clears the surviving tokens
/// from `in_flight` (restoring its empty-between-rounds invariant), and
/// leaves `fresh` sorted by neighbor.  `surviving` must be sorted.
void carry_surviving_requests(RequestList& fresh, const RequestList& surviving,
                              KnowledgeSet& in_flight);

/// Human-readable class name.
[[nodiscard]] const char* edge_class_name(EdgeClass c) noexcept;

/// Per-node incident-edge state machine.
class EdgeClassifier {
 public:
  /// Sentinel slot for "not a current neighbor".
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  /// Ingests round r's sorted neighbor list: newly appeared neighbors get
  /// a fresh insertion record (a re-inserted edge counts as new again, per
  /// the "last insertion" wording); vanished neighbors are dropped.
  void begin_round(Round r, std::span<const NodeId> neighbors);

  /// Classification of the live edge to neighbor w in the current round.
  /// `token_arriving_now` means the node knows a requested token arrives
  /// over this edge this round (counts as a contribution "by the end of
  /// round r").
  [[nodiscard]] EdgeClass classify(NodeId w, bool token_arriving_now = false) const;

  /// classify by neighbor slot (position of w in this round's sorted
  /// neighbor list) — the O(1) form for callers already iterating the span.
  [[nodiscard]] EdgeClass classify_slot(std::size_t slot,
                                        bool token_arriving_now = false) const;

  /// Records that a new token was learned over the edge to w (call on
  /// first-time token receipt).
  void note_learning_over(NodeId w);

  /// Slot of w in the current round's neighbor list, or kNoSlot.
  [[nodiscard]] std::size_t slot_of(NodeId w) const;

  /// True iff w is a live neighbor this round.
  [[nodiscard]] bool is_neighbor(NodeId w) const { return slot_of(w) != kNoSlot; }

  /// Last insertion round of the live edge to w (kNoRound if absent).
  [[nodiscard]] Round insertion_round(NodeId w) const;

  /// Current round (the argument of the last begin_round).
  [[nodiscard]] Round round() const noexcept { return round_; }

 private:
  // Parallel arrays over the current round's sorted neighbors.
  std::vector<NodeId> neighbors_;
  std::vector<Round> inserted_;
  std::vector<std::uint8_t> contributed_;
  // Previous round's state (merge source), reused as scratch via swap.
  std::vector<NodeId> prev_neighbors_;
  std::vector<Round> prev_inserted_;
  std::vector<std::uint8_t> prev_contributed_;
  Round round_ = 0;
};

}  // namespace dyngossip
