// Edge classification for the unicast algorithms (Section 3.1).
//
// Algorithm 1 prioritizes token requests over three classes of adjacent
// edges, evaluated from the incomplete endpoint's perspective:
//   new          — inserted at the beginning of round r or r-1;
//   contributive — not new, and a new token is sent over it between its
//                  last insertion and the end of round r (this includes a
//                  token the node *knows* is arriving this round, because it
//                  requested it last round and the edge survived);
//   idle         — neither.
// Priority: new > idle > contributive.  The idle-before-contributive order
// is what forces the adversary of Lemma 3.2 to delete an idle edge per
// bridge node in every futile round.
//
// EdgeClassifier tracks, per live incident edge, its last insertion round
// and whether a learning has happened over it since — exactly the local
// information the paper argues each node can maintain.
#pragma once

#include <span>
#include <unordered_map>

#include "common/types.hpp"

namespace dyngossip {

/// The three classes of Section 3.1.
enum class EdgeClass : std::uint8_t { kNew = 0, kIdle = 1, kContributive = 2 };

/// Human-readable class name.
[[nodiscard]] const char* edge_class_name(EdgeClass c) noexcept;

/// Per-node incident-edge state machine.
class EdgeClassifier {
 public:
  /// Ingests round r's (sorted) neighbor list: newly appeared neighbors get
  /// a fresh insertion record (a re-inserted edge counts as new again, per
  /// the "last insertion" wording); vanished neighbors are dropped.
  void begin_round(Round r, std::span<const NodeId> neighbors);

  /// Classification of the live edge to neighbor w in the current round.
  /// `token_arriving_now` means the node knows a requested token arrives
  /// over this edge this round (counts as a contribution "by the end of
  /// round r").
  [[nodiscard]] EdgeClass classify(NodeId w, bool token_arriving_now = false) const;

  /// Records that a new token was learned over the edge to w (call on
  /// first-time token receipt).
  void note_learning_over(NodeId w);

  /// True iff w is a live neighbor this round.
  [[nodiscard]] bool is_neighbor(NodeId w) const { return edges_.count(w) > 0; }

  /// Last insertion round of the live edge to w (kNoRound if absent).
  [[nodiscard]] Round insertion_round(NodeId w) const;

  /// Current round (the argument of the last begin_round).
  [[nodiscard]] Round round() const noexcept { return round_; }

 private:
  struct EdgeState {
    Round inserted = kNoRound;
    bool contributed = false;
  };
  std::unordered_map<NodeId, EdgeState> edges_;
  Round round_ = 0;
};

}  // namespace dyngossip
