#include "core/tokens.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dyngossip {

TokenSpace TokenSpace::single_source(NodeId source, std::uint32_t k) {
  std::vector<TokenId> ids(k);
  for (std::uint32_t i = 0; i < k; ++i) ids[i] = i;
  return TokenSpace(k, {{source, std::move(ids)}});
}

TokenSpace TokenSpace::contiguous(std::vector<SourceSpec> sources) {
  std::sort(sources.begin(), sources.end(),
            [](const SourceSpec& a, const SourceSpec& b) { return a.node < b.node; });
  std::vector<std::pair<NodeId, std::vector<TokenId>>> lists;
  lists.reserve(sources.size());
  std::uint32_t next = 0;
  for (const SourceSpec& s : sources) {
    DG_CHECK(s.count >= 1);
    std::vector<TokenId> ids(s.count);
    for (std::uint32_t i = 0; i < s.count; ++i) ids[i] = next++;
    lists.emplace_back(s.node, std::move(ids));
  }
  return TokenSpace(next, std::move(lists));
}

TokenSpace::TokenSpace(std::uint32_t k,
                       std::vector<std::pair<NodeId, std::vector<TokenId>>> sources)
    : k_(k) {
  std::sort(sources.begin(), sources.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  owner_of_.assign(k_, static_cast<std::uint32_t>(kNotASource & 0xffffffffu));
  std::uint32_t assigned = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    auto& [node, ids] = sources[i];
    DG_CHECK(node != kNoNode);
    DG_CHECK(!ids.empty());
    if (i > 0) DG_CHECK(sources[i - 1].first < node);  // distinct, sorted
    std::sort(ids.begin(), ids.end());
    for (const TokenId t : ids) {
      DG_CHECK(t < k_);
      DG_CHECK(owner_of_[t] == static_cast<std::uint32_t>(kNotASource & 0xffffffffu));
      owner_of_[t] = static_cast<std::uint32_t>(i);
      ++assigned;
    }
    nodes_.push_back(node);
    tokens_.push_back(std::move(ids));
  }
  DG_CHECK(assigned == k_);  // the lists partition 0..k-1
}

NodeId TokenSpace::source_node(std::size_t i) const {
  DG_CHECK(i < nodes_.size());
  return nodes_[i];
}

const std::vector<TokenId>& TokenSpace::tokens_of(std::size_t i) const {
  DG_CHECK(i < tokens_.size());
  return tokens_[i];
}

std::uint32_t TokenSpace::count_of(std::size_t i) const {
  DG_CHECK(i < tokens_.size());
  return static_cast<std::uint32_t>(tokens_[i].size());
}

std::size_t TokenSpace::source_of_token(TokenId t) const {
  DG_CHECK(t < k_);
  return owner_of_[t];
}

std::size_t TokenSpace::index_of_node(NodeId node) const {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end() || *it != node) return kNotASource;
  return static_cast<std::size_t>(it - nodes_.begin());
}

std::vector<KnowledgeSet> TokenSpace::initial_knowledge(std::size_t n) const {
  std::vector<KnowledgeSet> knowledge(n, KnowledgeSet(k_));
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    DG_CHECK(nodes_[i] < n);
    for (const TokenId t : tokens_[i]) knowledge[nodes_[i]].set(t);
  }
  return knowledge;
}

}  // namespace dyngossip
