// Token universe and source labelling.
//
// Definition 1.2: k distinct tokens are initially placed at some nodes.  The
// single-source algorithm labels them 1..k; the multi-source algorithms
// label them ⟨source id, index⟩ (Section 3.2).  TokenSpace is the global
// bijection between those labels and dense TokenIds 0..k-1: it records which
// source originated which token ids, supports source-of-token and
// tokens-of-source lookups, and builds the initial knowledge assignment.
//
// Algorithm 2's phase 2 relabels tokens under their collecting centers; the
// simulator expresses that as a second TokenSpace over the same global ids
// with the centers as sources (the ⟨center, index⟩ relabelling is a
// bijection, so "all nodes know all tokens" is invariant across phases).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/knowledge_set.hpp"
#include "common/types.hpp"

namespace dyngossip {

/// Sentinel for "node is not a source".
inline constexpr std::size_t kNotASource = static_cast<std::size_t>(-1);

/// Immutable global token-to-source labelling.
class TokenSpace {
 public:
  /// Source descriptor used by the contiguous-range factory.
  struct SourceSpec {
    NodeId node = kNoNode;     ///< the source node a_i
    std::uint32_t count = 0;   ///< k_i, the number of tokens it originates
  };

  /// Single source owning tokens 0..k-1 (Section 3.1).
  [[nodiscard]] static TokenSpace single_source(NodeId source, std::uint32_t k);

  /// Multi-source with contiguous per-source id ranges, sources ordered by
  /// ascending node id (the paper's a_1 < a_2 < ... < a_s).  Every count
  /// must be >= 1.
  [[nodiscard]] static TokenSpace contiguous(std::vector<SourceSpec> sources);

  /// Fully general labelling: each source owns an explicit token-id list.
  /// The lists must partition 0..k-1; sources must have distinct nodes and
  /// are sorted by node id internally.
  TokenSpace(std::uint32_t k,
             std::vector<std::pair<NodeId, std::vector<TokenId>>> sources);

  /// Total number of tokens k.
  [[nodiscard]] std::uint32_t total_tokens() const noexcept { return k_; }

  /// Number of sources s.
  [[nodiscard]] std::size_t num_sources() const noexcept { return nodes_.size(); }

  /// Node id of the i-th source (ascending node-id order).
  [[nodiscard]] NodeId source_node(std::size_t i) const;

  /// Token ids originated by the i-th source (sorted ascending).
  [[nodiscard]] const std::vector<TokenId>& tokens_of(std::size_t i) const;

  /// k_i = |tokens_of(i)|.
  [[nodiscard]] std::uint32_t count_of(std::size_t i) const;

  /// Index of the source that originated token t.
  [[nodiscard]] std::size_t source_of_token(TokenId t) const;

  /// Source index of a node, or kNotASource.
  [[nodiscard]] std::size_t index_of_node(NodeId node) const;

  /// K_v(0): each source starts with exactly its own tokens.
  [[nodiscard]] std::vector<KnowledgeSet> initial_knowledge(std::size_t n) const;

 private:
  std::uint32_t k_ = 0;
  std::vector<NodeId> nodes_;                 // ascending
  std::vector<std::vector<TokenId>> tokens_;  // parallel to nodes_
  std::vector<std::uint32_t> owner_of_;       // token -> source index
};

/// Shared immutable handle used by per-node algorithm instances.
using TokenSpacePtr = std::shared_ptr<const TokenSpace>;

}  // namespace dyngossip
