// Demo `quickstart` — a 60-second tour of dyngossip.
//
// Runs the paper's three unicast algorithms and naive flooding on small
// dynamic networks and prints the measured message complexity, TC(E), and
// the adversary-competitive residual of Definition 1.3.  Both sides of
// every run come from the registries: adversaries from spec strings
// (`dyngossip adversaries`) and algorithms from run_algo (`dyngossip
// algorithms`) — except Algorithm 2, which is called directly because the
// demo prints its phase-split instrumentation.
//
//   dyngossip demo quickstart [--n=64] [--k=128] [--seed=7]

#include <cstdio>
#include <memory>

#include "adversary/registry.hpp"
#include "algo/registry.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/tokens.hpp"
#include "demos/demos.hpp"
#include "metrics/report.hpp"
#include "sim/bounds.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

int run(const CliArgs& args) {
  args.allow_only({"n", "k", "seed"},
                  "dyngossip demo quickstart [--n=64] [--k=128] [--seed=7]");
  const auto n = static_cast<std::size_t>(args.get_int("n", 64));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 128));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const Round cap = static_cast<Round>(200u * n * std::max<std::uint32_t>(k, 1));

  std::printf("dyngossip quickstart: n=%zu nodes, k=%u tokens, seed=%llu\n\n", n, k,
              static_cast<unsigned long long>(seed));

  // --- 1. Single-Source-Unicast (Algorithm 1) on a churning network -------
  {
    AdversarySpec spec{"churn", {}};
    spec.set("edges", static_cast<std::uint64_t>(3 * n))
        .set("churn", static_cast<std::uint64_t>(n / 8))
        .set("sigma", static_cast<std::uint64_t>(3));  // Thm 3.4's stability
    const std::unique_ptr<Adversary> adversary = build_adversary(spec, n, seed);
    AlgoBuildContext actx;
    actx.n = n;
    actx.k = k;
    actx.cap = cap;
    const RunResult r =
        run_algo(AlgoSpec::parse("single_source"), actx, *adversary);
    std::printf("[1] Single-Source-Unicast vs 3-stable churn (Thm 3.1/3.4)\n%s",
                run_summary(r.metrics, k).c_str());
    std::printf("    paper bound n^2+nk = %.0f, O(nk) round bound = %.0f\n\n",
                bounds::single_source_messages(n, k),
                bounds::stable_round_bound(n, k));
  }

  // --- 2. Multi-Source-Unicast with n/8 sources ----------------------------
  {
    const std::size_t s = std::max<std::size_t>(2, n / 8);
    AdversarySpec spec{"churn", {}};
    spec.set("edges", static_cast<std::uint64_t>(3 * n))
        .set("churn", static_cast<std::uint64_t>(n / 8))
        .set("sigma", static_cast<std::uint64_t>(3));
    const std::unique_ptr<Adversary> adversary = build_adversary(spec, n, seed + 1);
    AlgoBuildContext actx;
    actx.n = n;
    actx.k = k;
    actx.sources = s;
    actx.cap = cap;
    const RunResult r = run_algo(AlgoSpec::parse("multi_source"), actx, *adversary);
    std::printf("[2] Multi-Source-Unicast, s=%zu sources (Thm 3.5/3.6)\n%s", s,
                run_summary(r.metrics, actx.k_realized).c_str());
    std::printf("    paper bound n^2 s + nk = %.0f\n\n",
                bounds::multi_source_messages(n, actx.k_realized, s));
  }

  // --- 3. Oblivious-Multi-Source (Algorithm 2): one token per node ---------
  {
    std::vector<TokenSpace::SourceSpec> specs;
    for (std::size_t v = 0; v < n; ++v) specs.push_back({static_cast<NodeId>(v), 1});
    auto space = std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
    AdversarySpec spec{"churn", {}};
    spec.set("edges", static_cast<std::uint64_t>(4 * n))
        .set("churn", static_cast<std::uint64_t>(n / 4))
        .set("sigma", static_cast<std::uint64_t>(3));
    const std::unique_ptr<Adversary> adversary = build_adversary(spec, n, seed + 2);
    ObliviousMsOptions opts;
    opts.seed = seed + 3;
    opts.force_phase1 = true;            // exercise the walk phase even at small n
    opts.f_override = std::max<std::size_t>(2, n / 8);  // see DESIGN.md on polylog
    const ObliviousMsResult r =
        run_oblivious_multi_source(n, space, *adversary, opts);
    std::printf("[3] Oblivious-Multi-Source (Algorithm 2), n-gossip (Thm 3.8)\n");
    std::printf("    centers=%zu  phase1 rounds=%u  walk steps=%llu (+%llu virtual)\n",
                r.num_centers, r.phase1_rounds,
                static_cast<unsigned long long>(r.walk_real_steps),
                static_cast<unsigned long long>(r.walk_virtual_steps));
    std::printf("%s", run_summary(r.total, space->total_tokens()).c_str());
    std::printf("    paper bound n^{5/2} k^{1/4} log^{5/4} n = %.0f\n\n",
                bounds::thm38_total_messages(n, space->total_tokens()));
  }

  // --- 4. Naive flooding vs the Section-2 lower-bound adversary ------------
  {
    const std::size_t kb = std::max<std::size_t>(8, n / 4);  // small k: LB runs are long
    std::vector<KnowledgeSet> initial(n, KnowledgeSet(kb));
    Rng rng(seed + 4);
    for (std::size_t t = 0; t < kb; ++t) {
      initial[rng.next_below(n)].set(t);  // each token starts at one node
    }
    AdversaryBuildContext bctx;
    bctx.n = n;
    bctx.seed = seed + 5;
    bctx.k = kb;
    bctx.initial_knowledge = &initial;
    const std::unique_ptr<Adversary> adversary =
        AdversaryRegistry::global().build(AdversarySpec{"lb", {}}, bctx);
    AlgoBuildContext actx;
    actx.n = n;
    actx.k = static_cast<std::uint32_t>(kb);
    actx.cap = cap;
    actx.initial_knowledge = &initial;
    const RunResult r = run_algo(AlgoSpec::parse("flooding"), actx, *adversary);
    std::printf("[4] Phase flooding vs strongly adaptive LB adversary (Thm 2.3)\n%s",
                run_summary(r.metrics, kb).c_str());
    std::printf("    amortized broadcasts=%.0f vs lower bound n^2/log^2 n = %.0f"
                " (upper bound n^2 = %.0f)\n",
                r.metrics.amortized(kb), bounds::broadcast_lb_amortized(n),
                bounds::broadcast_ub_amortized(n));
  }

  std::printf("\nDone. Try `dyngossip list` for the full reproduction catalogue.\n");
  return 0;
}

}  // namespace

void register_demo_quickstart(DemoRegistry& registry) {
  registry.add({"quickstart",
                "60-second tour: Algorithms 1/2, multi-source, and flooding",
                "[--n=64] [--k=128] [--seed=7]",
                run});
}

}  // namespace dyngossip
