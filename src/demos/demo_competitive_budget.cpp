// Demo `competitive_budget` — a walkthrough of adversary-competitive
// accounting (Definition 1.3), the paper's main conceptual contribution.
//
// The same Single-Source-Unicast algorithm runs against adversaries of
// increasing hostility.  For each run we print the ledger:
//
//     total messages  <=  M  +  α · TC(E)         (α = 1)
//
// where TC(E) is the number of edge insertions the adversary performed.
// The residual M := total - TC stays within a constant of n² + nk no matter
// how violently the topology changes — every extra message the algorithm is
// forced to send is paid for by the adversary's own budget.
//
//   dyngossip demo competitive_budget [--n=48] [--k=96] [--seed=9]

#include <cstdio>
#include <iostream>

#include "adversary/churn.hpp"
#include "adversary/request_cutter.hpp"
#include "adversary/sigma_stable.hpp"
#include "adversary/static_adversary.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "demos/demos.hpp"
#include "graph/generators.hpp"
#include "sim/bounds.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

int run(const CliArgs& args) {
  args.allow_only({"n", "k", "seed"},
                  "dyngossip demo competitive_budget [--n=48] [--k=96] [--seed=9]");
  const auto n = static_cast<std::size_t>(args.get_int("n", 48));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 96));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 9));
  const double paper_bound = bounds::single_source_messages(n, k);
  const Round cap = static_cast<Round>(200u * n * k);

  std::printf("Single-Source-Unicast, n=%zu, k=%u.  Paper bound n^2+nk = %.0f\n\n",
              n, k, paper_bound);

  TablePrinter table({"adversary", "completed", "total msgs", "TC(E)",
                      "residual (M)", "M / (n^2+nk)", "rounds"});
  auto report = [&](const char* name, const RunResult& r) {
    table.add_row({name, r.completed ? "yes" : "no",
                   TablePrinter::big(r.metrics.unicast.total()),
                   TablePrinter::big(r.metrics.tc),
                   TablePrinter::num(r.metrics.competitive_residual(1.0), 0),
                   TablePrinter::num(
                       r.metrics.competitive_residual(1.0) / paper_bound, 3),
                   std::to_string(r.rounds)});
  };

  {
    Rng g(seed);
    StaticAdversary adversary(connected_erdos_renyi(n, 0.15, g));
    report("static (no changes)", run_single_source(n, k, 0, adversary, cap));
  }
  {
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 3 * n;
    cc.churn_per_round = n / 16;
    cc.sigma = 3;
    cc.seed = seed + 1;
    ChurnAdversary adversary(cc);
    report("gentle churn", run_single_source(n, k, 0, adversary, cap));
  }
  {
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 3 * n;
    cc.churn_per_round = n;
    cc.seed = seed + 2;
    ChurnAdversary adversary(cc);
    report("heavy churn", run_single_source(n, k, 0, adversary, cap));
  }
  {
    SigmaStableChurnConfig sc;
    sc.n = n;
    sc.target_edges = 3 * n;
    sc.churn_per_interval = 3 * n;
    sc.sigma = 4;
    sc.seed = seed + 6;
    SigmaStableChurnAdversary adversary(sc);
    report("sigma-stable full rewire", run_single_source(n, k, 0, adversary, cap));
  }
  {
    ChurnConfig cc;
    cc.n = n;
    cc.target_edges = 3 * n;
    cc.fresh_graph_each_round = true;
    cc.seed = seed + 3;
    ChurnAdversary adversary(cc);
    report("fresh graph each round", run_single_source(n, k, 0, adversary, cap));
  }
  {
    RequestCutterConfig rc;
    rc.n = n;
    rc.target_edges = 3 * n;
    rc.cut_probability = 0.8;
    rc.seed = seed + 4;
    RequestCutterAdversary adversary(rc);
    report("request cutter p=0.8", run_single_source(n, k, 0, adversary, cap));
  }
  {
    RequestCutterConfig rc;
    rc.n = n;
    rc.target_edges = 3 * n;
    rc.cut_probability = 1.0;
    rc.seed = seed + 5;
    RequestCutterAdversary adversary(rc);
    // Never completes: evaluate the ledger on a fixed horizon.
    report("request cutter p=1.0",
           run_single_source(n, k, 0, adversary, static_cast<Round>(100 * n)));
  }
  table.print(std::cout);

  std::printf(
      "\nReading the ledger: total messages vary by orders of magnitude with\n"
      "the adversary, but the residual M = total - TC(E) — what the\n"
      "*algorithm* pays out of its own pocket — stays within a small\n"
      "constant of n^2 + nk on every row (Theorem 3.1).  Even the p=1.0\n"
      "cutter, which starves dissemination forever, cannot make the\n"
      "algorithm overspend: each wasted request is matched by an insertion\n"
      "the adversary had to pay for.\n");
  return 0;
}

}  // namespace

void register_demo_competitive_budget(DemoRegistry& registry) {
  registry.add({"competitive_budget",
                "the Definition-1.3 ledger: one algorithm vs seven adversaries",
                "[--n=48] [--k=96] [--seed=9]",
                run});
}

}  // namespace dyngossip
