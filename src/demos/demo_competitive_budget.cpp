// Demo `competitive_budget` — a walkthrough of adversary-competitive
// accounting (Definition 1.3), the paper's main conceptual contribution.
//
// The same Single-Source-Unicast algorithm runs against adversaries of
// increasing hostility.  For each run we print the ledger:
//
//     total messages  <=  M  +  α · TC(E)         (α = 1)
//
// where TC(E) is the number of edge insertions the adversary performed.
// The residual M := total - TC stays within a constant of n² + nk no matter
// how violently the topology changes — every extra message the algorithm is
// forced to send is paid for by the adversary's own budget.
//
//   dyngossip demo competitive_budget [--n=48] [--k=96] [--seed=9]

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/registry.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "demos/demos.hpp"
#include "sim/bounds.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

int run(const CliArgs& args) {
  args.allow_only({"n", "k", "seed"},
                  "dyngossip demo competitive_budget [--n=48] [--k=96] [--seed=9]");
  const auto n = static_cast<std::size_t>(args.get_int("n", 48));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 96));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 9));
  const double paper_bound = bounds::single_source_messages(n, k);
  const Round cap = static_cast<Round>(200u * n * k);

  std::printf("Single-Source-Unicast, n=%zu, k=%u.  Paper bound n^2+nk = %.0f\n\n",
              n, k, paper_bound);

  TablePrinter table({"adversary", "completed", "total msgs", "TC(E)",
                      "residual (M)", "M / (n^2+nk)", "rounds"});
  auto report = [&](const char* name, const RunResult& r) {
    table.add_row({name, r.completed ? "yes" : "no",
                   TablePrinter::big(r.metrics.unicast.total()),
                   TablePrinter::big(r.metrics.tc),
                   TablePrinter::num(r.metrics.competitive_residual(1.0), 0),
                   TablePrinter::num(
                       r.metrics.competitive_residual(1.0) / paper_bound, 3),
                   std::to_string(r.rounds)});
  };

  // The whole ladder of hostility is one list of registry specs — exactly
  // the strings `dyngossip run ... --adversary=` accepts.
  const auto edges = static_cast<std::uint64_t>(3 * n);
  struct Rung {
    const char* name;
    AdversarySpec spec;
    std::uint64_t seed;
    Round horizon;  ///< 0: the shared cap
  };
  std::vector<Rung> ladder;
  {
    AdversarySpec s{"static", {}};
    s.set("graph", "gnp").set("p", 0.15);
    ladder.push_back({"static (no changes)", s, seed, 0});
  }
  {
    AdversarySpec s{"churn", {}};
    s.set("edges", edges).set("churn", static_cast<std::uint64_t>(n / 16))
        .set("sigma", static_cast<std::uint64_t>(3));
    ladder.push_back({"gentle churn", s, seed + 1, 0});
  }
  {
    AdversarySpec s{"churn", {}};
    s.set("edges", edges).set("churn", static_cast<std::uint64_t>(n));
    ladder.push_back({"heavy churn", s, seed + 2, 0});
  }
  {
    AdversarySpec s{"sigma", {}};
    s.set("edges", edges).set("churn", edges)
        .set("interval", static_cast<std::uint64_t>(4));
    ladder.push_back({"sigma-stable full rewire", s, seed + 6, 0});
  }
  {
    AdversarySpec s{"fresh", {}};
    s.set("edges", edges);
    ladder.push_back({"fresh graph each round", s, seed + 3, 0});
  }
  {
    AdversarySpec s{"cutter", {}};
    s.set("p", 0.8).set("edges", edges);
    ladder.push_back({"request cutter p=0.8", s, seed + 4, 0});
  }
  {
    AdversarySpec s{"cutter", {}};
    s.set("p", 1.0).set("edges", edges);
    // Never completes: evaluate the ledger on a fixed horizon.
    ladder.push_back(
        {"request cutter p=1.0", s, seed + 5, static_cast<Round>(100 * n)});
  }
  for (const Rung& rung : ladder) {
    const std::unique_ptr<Adversary> adversary =
        build_adversary(rung.spec, n, rung.seed);
    report(rung.name, run_single_source(n, k, 0, *adversary,
                                        rung.horizon > 0 ? rung.horizon : cap));
  }
  table.print(std::cout);

  std::printf(
      "\nReading the ledger: total messages vary by orders of magnitude with\n"
      "the adversary, but the residual M = total - TC(E) — what the\n"
      "*algorithm* pays out of its own pocket — stays within a small\n"
      "constant of n^2 + nk on every row (Theorem 3.1).  Even the p=1.0\n"
      "cutter, which starves dissemination forever, cannot make the\n"
      "algorithm overspend: each wasted request is matched by an insertion\n"
      "the adversary had to pay for.\n");
  return 0;
}

}  // namespace

void register_demo_competitive_budget(DemoRegistry& registry) {
  registry.add({"competitive_budget",
                "the Definition-1.3 ledger: one algorithm vs seven adversaries",
                "[--n=48] [--k=96] [--seed=9]",
                run});
}

}  // namespace dyngossip
