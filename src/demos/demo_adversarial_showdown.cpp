// Demo `adversarial_showdown` — watching the Section-2 adversary at work.
//
// Runs naive phase flooding against the strongly adaptive lower-bound
// adversary with full instrumentation and narrates what the adversary does
// each round: how many nodes broadcast, how many components the free-edge
// graph has, and how much the potential Φ(t) = Σ_v |K_v ∪ K'_v| moved.
// Rounds with at most n/(c log n) broadcasters provably make zero progress
// (Lemma 2.2) — the printout shows it happening.
//
//   dyngossip demo adversarial_showdown [--n=48] [--k=16] [--seed=5] [--rows=25]

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>

#include "adversary/lb_adversary.hpp"
#include "adversary/registry.hpp"
#include "common/cli.hpp"
#include "common/mathx.hpp"
#include "common/table.hpp"
#include "core/flooding.hpp"
#include "demos/demos.hpp"
#include "engine/broadcast_engine.hpp"
#include "metrics/report.hpp"
#include "sim/bounds.hpp"

namespace dyngossip {
namespace {

int run(const CliArgs& args) {
  args.allow_only({"n", "k", "seed", "rows"},
                  "dyngossip demo adversarial_showdown [--n=48] [--k=16] [--seed=5]"
                  " [--rows=25]");
  const auto n = static_cast<std::size_t>(args.get_int("n", 48));
  const auto k = static_cast<std::size_t>(args.get_int("k", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  const auto rows = static_cast<std::size_t>(args.get_int("rows", 25));

  Rng rng(seed);
  std::vector<KnowledgeSet> init(n, KnowledgeSet(k));
  for (std::size_t t = 0; t < k; ++t) init[rng.next_below(n)].set(t);

  AdversarySpec spec{"lb", {}};
  spec.set("series", "true");
  AdversaryBuildContext bctx;
  bctx.n = n;
  bctx.seed = seed + 1;
  bctx.k = k;
  bctx.initial_knowledge = &init;
  const std::unique_ptr<Adversary> built =
      AdversaryRegistry::global().build(spec, bctx);
  // The demo narrates the adversary's internals; the lb family is
  // guaranteed to build a LowerBoundAdversary, whose instrumentation
  // accessors live below the Adversary interface.
  auto& adversary = dynamic_cast<LowerBoundAdversary&>(*built);

  std::printf("n=%zu k=%zu   Φ(0)=%llu of max %zu (budget 0.8nk=%zu)\n",
              n, k, static_cast<unsigned long long>(adversary.initial_potential()),
              n * k, static_cast<std::size_t>(0.8 * static_cast<double>(n * k)));
  const double sparse = bounds::sparse_broadcaster_threshold(n, 4.0);
  std::printf("Lemma 2.2 sparse-broadcaster threshold: %.0f\n\n", sparse);

  BroadcastEngine engine(PhaseFloodingNode::make_all(n, k, init), adversary, init, k);
  const RunMetrics m = engine.run(static_cast<Round>(100 * n * k));

  const auto& series = adversary.series();
  std::printf("round-by-round (first %zu rounds):\n", rows);
  TablePrinter table({"round", "broadcasters", "free components", "Φ before",
                      "ΔΦ this round", "note"});
  for (std::size_t i = 0; i < series.size() && i < rows; ++i) {
    const std::uint64_t phi_after =
        (i + 1 < series.size()) ? series[i + 1].phi_before
                                : static_cast<std::uint64_t>(n * k);
    const std::uint64_t delta = phi_after - series[i].phi_before;
    const bool is_sparse = series[i].broadcasters <= sparse;
    table.add_row({std::to_string(i + 1), std::to_string(series[i].broadcasters),
                   std::to_string(series[i].components),
                   std::to_string(series[i].phi_before), std::to_string(delta),
                   is_sparse ? (delta == 0 ? "sparse -> provably stalled" : "?!")
                             : (delta == 0 ? "stalled anyway" : "")});
  }
  table.print(std::cout);

  std::size_t stalled = 0, sparse_rounds = 0;
  std::uint32_t max_components = 0;
  for (std::size_t i = 0; i + 1 < series.size(); ++i) {
    if (series[i + 1].phi_before == series[i].phi_before) ++stalled;
    if (series[i].broadcasters <= sparse) ++sparse_rounds;
    max_components = std::max(max_components, series[i].components);
  }
  std::printf("\n%s\n", run_summary(m, k).c_str());
  std::printf("rounds with zero potential progress: %zu of %zu\n", stalled,
              series.size());
  std::printf("max free-edge components in any round: %u (Lemma 2.1: O(log n), "
              "log2 n = %.1f)\n",
              max_components, log2_clamped(static_cast<double>(n)));
  std::printf("amortized broadcasts/token: %.0f  (LB %.0f, naive UB %.0f)\n",
              m.amortized(k), bounds::broadcast_lb_amortized(n),
              bounds::broadcast_ub_amortized(n));
  return 0;
}

}  // namespace

void register_demo_adversarial_showdown(DemoRegistry& registry) {
  registry.add({"adversarial_showdown",
                "round-by-round narration of the Section-2 lower-bound adversary",
                "[--n=48] [--k=16] [--seed=5] [--rows=25]",
                run});
}

}  // namespace dyngossip
