// Demo registrations: narrated end-to-end tours behind `dyngossip demo`.
//
// Ports of the former standalone example binaries (the examples/ directory
// is gone; every tour lives behind the one CLI).  Each register_demo_* adds
// one entry; register_all_demos installs the catalogue and is idempotent.
#pragma once

#include "sim/runner/demo_registry.hpp"

namespace dyngossip {

void register_demo_quickstart(DemoRegistry& registry);
void register_demo_sensor_flood(DemoRegistry& registry);
void register_demo_adversarial_showdown(DemoRegistry& registry);
void register_demo_competitive_budget(DemoRegistry& registry);
void register_demo_learning_curves(DemoRegistry& registry);
void register_demo_p2p_churn_gossip(DemoRegistry& registry);

/// Installs every demo above; a no-op when already installed.
void register_all_demos(DemoRegistry& registry);

}  // namespace dyngossip
