// Demo registrations: narrated end-to-end tours behind `dyngossip demo`.
//
// Ports of the former standalone examples (examples/quickstart.cpp,
// examples/sensor_flood.cpp); the remaining examples migrate in a later PR.
// Each register_demo_* adds one entry; register_all_demos installs the
// catalogue and is idempotent.
#pragma once

#include "sim/runner/demo_registry.hpp"

namespace dyngossip {

void register_demo_quickstart(DemoRegistry& registry);
void register_demo_sensor_flood(DemoRegistry& registry);

/// Installs every demo above; a no-op when already installed.
void register_all_demos(DemoRegistry& registry);

}  // namespace dyngossip
