// Demo `p2p_churn_gossip` — multi-source gossip in a churning P2P overlay.
//
// The motivating scenario of the paper's introduction: a P2P overlay where
// connections come and go continuously (the oblivious churn adversary), and
// every peer has updates (tokens) to disseminate to everyone (n-gossip).
//
// The demo compares the two strategies the paper analyzes for this regime:
//   1. direct Multi-Source-Unicast (Theorem 3.5: O(n²s + nk) competitive —
//      expensive when s = n);
//   2. Algorithm 2's center funnel (Theorem 3.8: subquadratic amortized).
//
//   dyngossip demo p2p_churn_gossip [--n=96] [--updates=2] [--seed=11]

#include <cstdio>
#include <memory>

#include "adversary/registry.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "demos/demos.hpp"
#include "metrics/report.hpp"
#include "sim/bounds.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

int run(const CliArgs& args) {
  args.allow_only({"n", "updates", "seed"},
                  "dyngossip demo p2p_churn_gossip [--n=96] [--updates=2]"
                  " [--seed=11]");
  const auto n = static_cast<std::size_t>(args.get_int("n", 96));
  const auto updates = static_cast<std::uint32_t>(args.get_int("updates", 2));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  // Every peer publishes `updates` tokens.
  std::vector<TokenSpace::SourceSpec> specs;
  for (std::size_t v = 0; v < n; ++v) {
    specs.push_back({static_cast<NodeId>(v), updates});
  }
  const auto space = std::make_shared<TokenSpace>(TokenSpace::contiguous(specs));
  const std::uint64_t k = space->total_tokens();

  auto overlay = [&] {
    AdversarySpec spec{"churn", {}};
    spec.set("edges", static_cast<std::uint64_t>(4 * n))  // avg degree 8
        .set("churn", static_cast<std::uint64_t>(n / 10))  // ~10% rewire/round
        .set("sigma", static_cast<std::uint64_t>(3));  // links live >= 3 rounds
    return spec;
  };

  std::printf("P2P overlay: %zu peers x %u updates = %llu tokens, avg degree 8, "
              "%zu links rewired per round\n\n",
              n, updates, static_cast<unsigned long long>(k), n / 10);

  const std::unique_ptr<Adversary> direct_net = build_adversary(overlay(), n, seed);
  const RunResult direct =
      run_multi_source(n, space, *direct_net, static_cast<Round>(400 * n * k));
  std::printf("[direct multi-source gossip]\n%s\n",
              run_summary(direct.metrics, k).c_str());

  // Same spec + seed: identical network evolution.
  const std::unique_ptr<Adversary> funnel_net = build_adversary(overlay(), n, seed);
  ObliviousMsOptions opts;
  opts.seed = seed + 1;
  opts.force_phase1 = true;
  opts.f_override = std::max<std::size_t>(2, n / 8);  // super-peer count
  const ObliviousMsResult funnel =
      run_oblivious_multi_source(n, space, *funnel_net, opts);
  std::printf("[random-walk funnel through %zu super-peers (Algorithm 2)]\n%s\n",
              funnel.num_centers, run_summary(funnel.total, k).c_str());
  std::printf("phase 1: %u rounds, %llu walk messages; phase 2: %u rounds\n",
              funnel.phase1_rounds,
              static_cast<unsigned long long>(funnel.walk_real_steps),
              funnel.phase2.rounds);

  const double saving = 1.0 - static_cast<double>(funnel.total.unicast.total()) /
                                  static_cast<double>(direct.metrics.unicast.total());
  std::printf("\nFunnelling through super-peers saved %.1f%% of the messages\n"
              "(the n^2*s completeness term collapses to n^2*f — Theorem 3.8).\n",
              100.0 * saving);
  return 0;
}

}  // namespace

void register_demo_p2p_churn_gossip(DemoRegistry& registry) {
  registry.add({"p2p_churn_gossip",
                "n-gossip in a churning P2P overlay: direct vs super-peer funnel",
                "[--n=96] [--updates=2] [--seed=11]",
                run});
}

}  // namespace dyngossip
