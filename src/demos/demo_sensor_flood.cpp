// Demo `sensor_flood` — local-broadcast dissemination in a dynamic sensor
// mesh.
//
// Wireless sensor networks communicate by local broadcast: one transmission
// reaches all current radio neighbors and costs one message (one battery
// drain) regardless of the neighbor count — exactly Definition 1.1's
// local-broadcast accounting.  The paper shows this model is expensive in
// dynamic networks: Ω(n²/log² n) amortized broadcasts per token against a
// worst-case adversary (Theorem 2.3), with naive flooding's O(n²) nearly
// matching.
//
// The demo floods k sensor readings through (a) a benign drifting mesh and
// (b) the worst-case Section-2 adversary, and reports the battery bill.
//
//   dyngossip demo sensor_flood [--n=64] [--k=32] [--seed=3]

#include <cstdio>
#include <memory>

#include "adversary/registry.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "demos/demos.hpp"
#include "metrics/report.hpp"
#include "sim/bounds.hpp"
#include "sim/simulator.hpp"

namespace dyngossip {
namespace {

int run(const CliArgs& args) {
  args.allow_only({"n", "k", "seed"},
                  "dyngossip demo sensor_flood [--n=64] [--k=32] [--seed=3]");
  const auto n = static_cast<std::size_t>(args.get_int("n", 64));
  const auto k = static_cast<std::size_t>(args.get_int("k", 32));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  // Each reading originates at one sensor.
  Rng rng(seed);
  std::vector<KnowledgeSet> readings(n, KnowledgeSet(k));
  for (std::size_t t = 0; t < k; ++t) readings[rng.next_below(n)].set(t);

  std::printf("Sensor mesh: %zu nodes, %zu readings to disseminate\n\n", n, k);

  {
    AdversarySpec spec{"churn", {}};
    spec.set("edges", static_cast<std::uint64_t>(3 * n))
        .set("churn", static_cast<std::uint64_t>(n / 10))  // slow radio drift
        .set("sigma", static_cast<std::uint64_t>(3));
    const std::unique_ptr<Adversary> mesh = build_adversary(spec, n, seed + 1);
    const RunResult r =
        run_phase_flooding(n, k, readings, *mesh, static_cast<Round>(10 * n * k));
    std::printf("[benign drifting mesh]\n%s\n", run_summary(r.metrics, k).c_str());
  }
  {
    AdversaryBuildContext bctx;
    bctx.n = n;
    bctx.seed = seed + 2;
    bctx.k = k;
    bctx.initial_knowledge = &readings;
    const std::unique_ptr<Adversary> worst =
        AdversaryRegistry::global().build(AdversarySpec{"lb", {}}, bctx);
    const RunResult r =
        run_phase_flooding(n, k, readings, *worst, static_cast<Round>(100 * n * k));
    std::printf("[worst-case adaptive interference (Section 2)]\n%s\n",
                run_summary(r.metrics, k).c_str());
    std::printf("paper bounds: lower %.0f, naive upper %.0f broadcasts/reading\n",
                bounds::broadcast_lb_amortized(n), bounds::broadcast_ub_amortized(n));
  }

  std::printf(
      "\nTakeaway: against worst-case dynamics the per-reading broadcast cost\n"
      "is forced into the Θ(n²/polylog) regime — no clever token-forwarding\n"
      "protocol can save the batteries (Theorem 2.3).  Deploying unicast\n"
      "links changes the economics: see competitive_budget.\n");
  return 0;
}

}  // namespace

void register_demo_sensor_flood(DemoRegistry& registry) {
  registry.add({"sensor_flood",
                "battery cost of local-broadcast flooding in a dynamic mesh",
                "[--n=64] [--k=32] [--seed=3]",
                run});
}

}  // namespace dyngossip
