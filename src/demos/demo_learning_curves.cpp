// Demo `learning_curves` — exporting per-round progress series as CSV.
//
// Runs Algorithm 1 under three adversaries on the same problem and writes
// one CSV per run (round, cumulative messages, learnings, TC, |E_r|),
// ready for plotting.  The terminal output summarizes the curve shapes:
// benign churn shows steady learning; the request cutter shows the
// sawtooth of wasted requests being re-paid by adversary insertions.
//
//   dyngossip demo learning_curves [--n=32] [--k=64] [--seed=21] [--outdir=.]

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "adversary/registry.hpp"
#include "common/cli.hpp"
#include "core/single_source.hpp"
#include "demos/demos.hpp"
#include "engine/unicast_engine.hpp"
#include "metrics/accounting.hpp"
#include "telemetry/series.hpp"

namespace dyngossip {
namespace {

void run_one(const char* name, std::size_t n, std::uint32_t k, Adversary& adversary,
             const std::string& outdir) {
  SingleSourceConfig cfg{n, k, 0};
  UnicastEngine engine(SingleSourceNode::make_all(cfg), adversary,
                       SingleSourceNode::initial_knowledge(cfg), k);
  SeriesRecorder recorder;
  engine.set_round_hook(recorder.hook());
  const RunMetrics m = engine.run(static_cast<Round>(400u * n * k));

  const std::string path = outdir + "/curve_" + name + ".csv";
  std::ofstream out(path);
  recorder.write_csv(out);

  std::printf("%-14s status=%-9s coverage=%-6.4f rounds=%-6u msgs=%-8llu "
              "learnings=%-6llu TC=%-7llu max burst=%llu/round -> %s\n",
              name, run_status_name(m.status), m.coverage, m.rounds,
              static_cast<unsigned long long>(m.total_messages()),
              static_cast<unsigned long long>(m.learnings),
              static_cast<unsigned long long>(m.tc),
              static_cast<unsigned long long>(recorder.max_learning_burst()),
              path.c_str());
}

int run(const CliArgs& args) {
  args.allow_only({"n", "k", "seed", "outdir"},
                  "dyngossip demo learning_curves [--n=32] [--k=64] [--seed=21]"
                  " [--outdir=.]");
  const auto n = static_cast<std::size_t>(args.get_int("n", 32));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 64));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 21));
  const std::string outdir = args.get_string("outdir", ".");

  std::printf("Single-Source-Unicast, n=%zu k=%u — per-round progress CSVs\n\n", n, k);
  {
    AdversarySpec spec{"churn", {}};
    spec.set("edges", static_cast<std::uint64_t>(3 * n))
        .set("churn", static_cast<std::uint64_t>(n / 8))
        .set("sigma", static_cast<std::uint64_t>(3));
    const std::unique_ptr<Adversary> adversary = build_adversary(spec, n, seed);
    run_one("churn", n, k, *adversary, outdir);
  }
  {
    const std::unique_ptr<Adversary> adversary =
        build_adversary(AdversarySpec{"star", {}}, n, seed + 1);
    run_one("rotating_star", n, k, *adversary, outdir);
  }
  {
    AdversarySpec spec{"cutter", {}};
    spec.set("p", 0.6).set("edges", static_cast<std::uint64_t>(3 * n));
    const std::unique_ptr<Adversary> adversary = build_adversary(spec, n, seed + 2);
    run_one("cutter", n, k, *adversary, outdir);
  }
  std::printf("\nPlot with e.g.: gnuplot -e \"set datafile separator ','; "
              "plot 'curve_churn.csv' using 1:3 with lines\"\n");
  return 0;
}

}  // namespace

void register_demo_learning_curves(DemoRegistry& registry) {
  registry.add({"learning_curves",
                "per-round progress CSVs for Algorithm 1 under three adversaries",
                "[--n=32] [--k=64] [--seed=21] [--outdir=.]",
                run});
}

}  // namespace dyngossip
