#include "demos/demos.hpp"

namespace dyngossip {

void register_all_demos(DemoRegistry& registry) {
  // Per-name guards keep this idempotent without suppressing the built-ins
  // when a caller pre-registered demos of its own.
  if (registry.find("quickstart") == nullptr) register_demo_quickstart(registry);
  if (registry.find("sensor_flood") == nullptr) register_demo_sensor_flood(registry);
}

}  // namespace dyngossip
