#include "demos/demos.hpp"

namespace dyngossip {

void register_all_demos(DemoRegistry& registry) {
  // Per-name guards keep this idempotent without suppressing the built-ins
  // when a caller pre-registered demos of its own.
  if (registry.find("quickstart") == nullptr) register_demo_quickstart(registry);
  if (registry.find("sensor_flood") == nullptr) register_demo_sensor_flood(registry);
  if (registry.find("adversarial_showdown") == nullptr) {
    register_demo_adversarial_showdown(registry);
  }
  if (registry.find("competitive_budget") == nullptr) {
    register_demo_competitive_budget(registry);
  }
  if (registry.find("learning_curves") == nullptr) {
    register_demo_learning_curves(registry);
  }
  if (registry.find("p2p_churn_gossip") == nullptr) {
    register_demo_p2p_churn_gossip(registry);
  }
}

}  // namespace dyngossip
