#include "adversary/churn.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace dyngossip {

ChurnAdversary::ChurnAdversary(const ChurnConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), current_(cfg.n) {
  DG_CHECK(cfg_.n >= 1);
  DG_CHECK(cfg_.sigma >= 1);
  if (cfg_.n >= 2 && cfg_.target_edges < cfg_.n - 1) cfg_.target_edges = cfg_.n - 1;
  const std::size_t max_edges = cfg_.n * (cfg_.n - 1) / 2;
  cfg_.target_edges = std::min(cfg_.target_edges, max_edges);
}

bool ChurnAdversary::add_random_edge() {
  const std::size_t max_edges = cfg_.n * (cfg_.n - 1) / 2;
  if (current_.num_edges() >= max_edges) return false;
  // Rejection sampling; the graphs used in experiments are sparse, so a few
  // tries suffice.  Guard against dense graphs with a bounded fallback scan.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto u = static_cast<NodeId>(rng_.next_below(cfg_.n));
    auto v = static_cast<NodeId>(rng_.next_below(cfg_.n - 1));
    if (v >= u) ++v;
    if (current_.add_edge(u, v)) {
      pending_.push_back(edge_key(u, v));
      return true;
    }
  }
  for (NodeId u = 0; u < cfg_.n; ++u) {
    for (NodeId v = u + 1; v < cfg_.n; ++v) {
      if (current_.add_edge(u, v)) {
        pending_.push_back(edge_key(u, v));
        return true;
      }
    }
  }
  return false;
}

void ChurnAdversary::reset_ages(Round r) {
  inserted_at_.clear();
  current_.for_each_edge(
      [this, r](EdgeKey key) { inserted_at_.push_back({key, r}); });
  std::sort(inserted_at_.begin(), inserted_at_.end());
}

const Graph& ChurnAdversary::next_graph(Round r) {
  DG_CHECK(r == last_round_ + 1);
  last_round_ = r;

  if (cfg_.fresh_graph_each_round) {
    current_ = random_connected_with_edges(cfg_.n, cfg_.target_edges, rng_);
    return current_;
  }

  if (r == 1) {
    current_ = random_connected_with_edges(cfg_.n, cfg_.target_edges, rng_);
    reset_ages(1);
    return current_;
  }

  // 1. Delete up to churn_per_round edges old enough to respect σ-stability.
  //    An edge inserted at r0 must be present in rounds r0 .. r0+σ-1, so it
  //    may first be absent in round r0+σ.  inserted_at_ is sorted by key, so
  //    the removable list comes out in the canonical order directly.
  std::vector<EdgeKey> removable;
  removable.reserve(inserted_at_.size());
  for (const auto& [key, r0] : inserted_at_) {
    if (r >= r0 + cfg_.sigma) removable.push_back(key);
  }
  rng_.shuffle(removable);
  const std::size_t cuts = std::min(cfg_.churn_per_round, removable.size());
  if (cuts > 0) {
    std::vector<EdgeKey> cut(removable.begin(),
                             removable.begin() + static_cast<std::ptrdiff_t>(cuts));
    std::sort(cut.begin(), cut.end());
    for (const EdgeKey key : cut) {
      const auto [u, v] = edge_endpoints(key);
      current_.remove_edge(u, v);
    }
    // Compact the age list, dropping the cut edges (both lists sorted).
    age_scratch_.clear();
    std::size_t c = 0;
    for (const auto& entry : inserted_at_) {
      while (c < cut.size() && cut[c] < entry.first) ++c;
      if (c < cut.size() && cut[c] == entry.first) continue;
      age_scratch_.push_back(entry);
    }
    std::swap(inserted_at_, age_scratch_);
  }

  // 2. Replenish toward the target edge count.
  pending_.clear();
  while (current_.num_edges() < cfg_.target_edges) {
    if (!add_random_edge()) break;
  }

  // 3. Patch connectivity (these insertions are part of the adversary's
  //    committed schedule and are charged to TC like any other).
  for (const EdgeKey key : connect_components(current_, rng_)) {
    pending_.push_back(key);
  }

  // Fold this round's insertions into the sorted age list.
  if (!pending_.empty()) {
    std::sort(pending_.begin(), pending_.end());
    const auto old_size = static_cast<std::ptrdiff_t>(inserted_at_.size());
    for (const EdgeKey key : pending_) inserted_at_.push_back({key, r});
    std::inplace_merge(inserted_at_.begin(), inserted_at_.begin() + old_size,
                       inserted_at_.end());
  }
  return current_;
}

}  // namespace dyngossip
