#include "adversary/churn.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace dyngossip {

ChurnAdversary::ChurnAdversary(const ChurnConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), current_(cfg.n) {
  DG_CHECK(cfg_.n >= 1);
  DG_CHECK(cfg_.sigma >= 1);
  if (cfg_.n >= 2 && cfg_.target_edges < cfg_.n - 1) cfg_.target_edges = cfg_.n - 1;
  const std::size_t max_edges = cfg_.n * (cfg_.n - 1) / 2;
  cfg_.target_edges = std::min(cfg_.target_edges, max_edges);
}

bool ChurnAdversary::add_random_edge(Round r) {
  const std::size_t max_edges = cfg_.n * (cfg_.n - 1) / 2;
  if (current_.num_edges() >= max_edges) return false;
  // Rejection sampling; the graphs used in experiments are sparse, so a few
  // tries suffice.  Guard against dense graphs with a bounded fallback scan.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto u = static_cast<NodeId>(rng_.next_below(cfg_.n));
    auto v = static_cast<NodeId>(rng_.next_below(cfg_.n - 1));
    if (v >= u) ++v;
    if (current_.add_edge(u, v)) {
      inserted_at_[edge_key(u, v)] = r;
      return true;
    }
  }
  for (NodeId u = 0; u < cfg_.n; ++u) {
    for (NodeId v = u + 1; v < cfg_.n; ++v) {
      if (current_.add_edge(u, v)) {
        inserted_at_[edge_key(u, v)] = r;
        return true;
      }
    }
  }
  return false;
}

Graph ChurnAdversary::next_graph(Round r) {
  DG_CHECK(r == last_round_ + 1);
  last_round_ = r;

  if (cfg_.fresh_graph_each_round) {
    current_ = random_connected_with_edges(cfg_.n, cfg_.target_edges, rng_);
    return current_;
  }

  if (r == 1) {
    current_ = random_connected_with_edges(cfg_.n, cfg_.target_edges, rng_);
    inserted_at_.clear();
    for (const EdgeKey key : current_.edges()) inserted_at_[key] = 1;
    return current_;
  }

  // 1. Delete up to churn_per_round edges old enough to respect σ-stability.
  //    An edge inserted at r0 must be present in rounds r0 .. r0+σ-1, so it
  //    may first be absent in round r0+σ.
  std::vector<EdgeKey> removable;
  removable.reserve(current_.num_edges());
  for (const EdgeKey key : current_.edges()) {
    const Round r0 = inserted_at_.at(key);
    if (r >= r0 + cfg_.sigma) removable.push_back(key);
  }
  std::sort(removable.begin(), removable.end());  // deterministic base order
  rng_.shuffle(removable);
  const std::size_t cuts = std::min(cfg_.churn_per_round, removable.size());
  for (std::size_t i = 0; i < cuts; ++i) {
    const auto [u, v] = edge_endpoints(removable[i]);
    current_.remove_edge(u, v);
    inserted_at_.erase(removable[i]);
  }

  // 2. Replenish toward the target edge count.
  while (current_.num_edges() < cfg_.target_edges) {
    if (!add_random_edge(r)) break;
  }

  // 3. Patch connectivity (these insertions are part of the adversary's
  //    committed schedule and are charged to TC like any other).
  for (const EdgeKey key : connect_components(current_, rng_)) {
    inserted_at_[key] = r;
  }
  return current_;
}

}  // namespace dyngossip
