#include "adversary/adversary.hpp"

#include "common/check.hpp"

namespace dyngossip {

namespace {
// Storage for the must-not-be-reached default next_graph (keeps the
// reference-returning contract without a per-adversary dummy member).
const Graph kEmptyGraph(0);
}  // namespace

const Graph& Adversary::broadcast_round(const BroadcastRoundView& view) {
  return next_graph(view.round);
}

const Graph& Adversary::unicast_round(const UnicastRoundView& view) {
  return next_graph(view.round);
}

const Graph& Adversary::next_graph(Round /*r*/) {
  // Reaching here means a subclass neither overrode the round methods nor
  // provided a generator — a wiring bug, not a runtime condition.
  DG_CHECK(false && "adversary must implement next_graph or override round methods");
  return kEmptyGraph;
}

const Graph& ObliviousAdversary::broadcast_round(const BroadcastRoundView& view) {
  return next_graph(view.round);
}

const Graph& ObliviousAdversary::unicast_round(const UnicastRoundView& view) {
  return next_graph(view.round);
}

}  // namespace dyngossip
