#include "adversary/adversary.hpp"

#include "common/check.hpp"

namespace dyngossip {

Graph Adversary::broadcast_round(const BroadcastRoundView& view) {
  return next_graph(view.round);
}

Graph Adversary::unicast_round(const UnicastRoundView& view) {
  return next_graph(view.round);
}

Graph Adversary::next_graph(Round /*r*/) {
  // Reaching here means a subclass neither overrode the round methods nor
  // provided a generator — a wiring bug, not a runtime condition.
  DG_CHECK(false && "adversary must implement next_graph or override round methods");
  return Graph(0);
}

Graph ObliviousAdversary::broadcast_round(const BroadcastRoundView& view) {
  return next_graph(view.round);
}

Graph ObliviousAdversary::unicast_round(const UnicastRoundView& view) {
  return next_graph(view.round);
}

}  // namespace dyngossip
