// Classic worst-case oblivious topology patterns.
//
// Two structured schedules that stress different aspects of the model than
// random churn does:
//
//  RotatingStarAdversary — every round is a star whose center advances
//    through a seeded permutation of the nodes.  Almost every edge is
//    replaced every round (TC ≈ n per round, only 1-edge stable), the
//    diameter is always 2, and every pair of nodes meets within n rounds.
//    This is the canonical "maximum dynamism with good connectivity"
//    pattern from the dynamic-network literature.
//
//  PathShuffleAdversary — every round is a Hamiltonian path over a fresh
//    seeded permutation.  Maximum diameter (n-1) with minimum edges (n-1),
//    also only 1-edge stable.  Tokens can only move one hop per round
//    along the current path — the "thin" connectivity extreme.
//
// Both commit their entire schedule via the seed (oblivious, Section 1.3).
#pragma once

#include "adversary/adversary.hpp"
#include "common/rng.hpp"

namespace dyngossip {

/// Star graph with a center that advances through a seeded permutation.
class RotatingStarAdversary final : public ObliviousAdversary {
 public:
  /// n >= 2; `seed` fixes the center order (and hence the whole schedule).
  RotatingStarAdversary(std::size_t n, std::uint64_t seed);

  [[nodiscard]] std::size_t num_nodes() const override { return n_; }

  /// Center of round r (exposed for tests).
  [[nodiscard]] NodeId center_of(Round r) const;

 protected:
  [[nodiscard]] const Graph& next_graph(Round r) override;

 private:
  std::size_t n_;
  std::vector<NodeId> order_;  ///< seeded permutation of the nodes
  Graph current_;              ///< round-graph storage (see Adversary contract)
};

/// Fresh random Hamiltonian path every round.
class PathShuffleAdversary final : public ObliviousAdversary {
 public:
  /// n >= 2; the per-round permutations derive deterministically from seed.
  PathShuffleAdversary(std::size_t n, std::uint64_t seed);

  [[nodiscard]] std::size_t num_nodes() const override { return n_; }

 protected:
  [[nodiscard]] const Graph& next_graph(Round r) override;

 private:
  std::size_t n_;
  std::uint64_t seed_;
  Graph current_;  ///< round-graph storage (see Adversary contract)
};

}  // namespace dyngossip
