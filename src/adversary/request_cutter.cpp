#include "adversary/request_cutter.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace dyngossip {

RequestCutterAdversary::RequestCutterAdversary(const RequestCutterConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), current_(cfg.n) {
  DG_CHECK(cfg_.n >= 1);
  if (cfg_.n >= 2 && cfg_.target_edges < cfg_.n - 1) cfg_.target_edges = cfg_.n - 1;
  const std::size_t max_edges = cfg_.n * (cfg_.n - 1) / 2;
  cfg_.target_edges = std::min(cfg_.target_edges, max_edges);
}

const Graph& RequestCutterAdversary::unicast_round(const UnicastRoundView& view) {
  DG_CHECK(view.round == last_round_ + 1);
  last_round_ = view.round;

  if (view.round == 1) {
    current_ = random_connected_with_edges(cfg_.n, cfg_.target_edges, rng_);
    return current_;
  }

  // Cut edges that carried a request last round, before the token response
  // (which the algorithm sends this round) can traverse them.
  DG_CHECK(view.prev_messages != nullptr);
  std::vector<EdgeKey> victims;
  for (const SentRecord& rec : *view.prev_messages) {
    if (rec.msg.type != MsgType::kRequest) continue;
    const EdgeKey key = edge_key(rec.from, rec.to);
    if (current_.has_edge(rec.from, rec.to) && rng_.bernoulli(cfg_.cut_probability)) {
      victims.push_back(key);
    }
  }
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  for (const EdgeKey key : victims) {
    const auto [u, v] = edge_endpoints(key);
    if (current_.remove_edge(u, v)) ++cuts_;
  }

  // Replenish toward the target size with fresh random edges (the requester
  // will classify these as "new" and spend more requests — the point).
  // Victim edges are banned for this round: re-adding one would let the
  // pending response through, which a strongly adaptive adversary never
  // allows.
  const std::unordered_set<EdgeKey> banned(victims.begin(), victims.end());
  std::size_t guard = 0;
  while (current_.num_edges() < cfg_.target_edges && guard < 64 * cfg_.target_edges) {
    ++guard;
    const auto u = static_cast<NodeId>(rng_.next_below(cfg_.n));
    auto v = static_cast<NodeId>(rng_.next_below(cfg_.n - 1));
    if (v >= u) ++v;
    if (banned.count(edge_key(u, v)) > 0) continue;
    current_.add_edge(u, v);
  }
  // Reconnect components without resurrecting a banned edge.
  ComponentInfo info = connected_components(current_);
  while (info.count > 1) {
    std::vector<std::vector<NodeId>> members(info.count);
    for (NodeId v = 0; v < cfg_.n; ++v) members[info.labels[v]].push_back(v);
    for (std::size_t c = 1; c < info.count; ++c) {
      // Try random member pairs; a banned pair is re-rolled (some non-banned
      // pair always exists once components have >= 2 nodes total choices;
      // bounded retries keep this safe even in tiny graphs).
      for (int attempt = 0; attempt < 64; ++attempt) {
        const NodeId a = rng_.pick(members[c - 1]);
        const NodeId b = rng_.pick(members[c]);
        if (attempt < 48 && banned.count(edge_key(a, b)) > 0) continue;
        current_.add_edge(a, b);
        break;
      }
    }
    info = connected_components(current_);
  }
  return current_;
}

}  // namespace dyngossip
