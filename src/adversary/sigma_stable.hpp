// σ-interval-stable high-churn adversary.
//
// The paper's stability parameter (Section 2) partitions rounds into
// intervals of length σ; a σ-interval-stable dynamic network changes its
// topology only at interval boundaries, so every edge that ever exists
// survives at least σ consecutive rounds.  This adversary realizes the
// *high-churn end* of that family: at every boundary it deletes up to a
// churn budget of random edges and replenishes with fresh random edges
// (patching connectivity), so between intervals the graph can turn over
// almost completely while within an interval it is frozen.
//
// This is the stress regime ChurnAdversary's per-edge aging cannot reach at
// scale: fresh-graph resampling never lets a request edge survive into its
// answer round, so request-based algorithms (Algorithms 1/2's
// request-response pattern) stall forever at n ~ 10⁴.  Here any request sent
// in the first σ-1 rounds of an interval is answered over a still-live edge,
// which keeps n = 10⁴ runs completing under churn volumes (several percent
// of the edge set per round, delivered in σ-sized bursts) that are multiples
// of what the per-edge-aging churn workloads sustain.
//
// Oblivious by construction: the schedule is a pure function of the seed and
// the round number, and next_graph does zero work on the σ-1 in-interval
// rounds (it returns the frozen graph).
#pragma once

#include <vector>

#include "adversary/adversary.hpp"
#include "common/rng.hpp"

namespace dyngossip {

/// σ-interval churn parameters.
struct SigmaStableChurnConfig {
  std::size_t n = 0;                ///< node count
  std::size_t target_edges = 0;     ///< steady-state |E_r| (>= n-1 enforced)
  std::size_t churn_per_interval = 0;  ///< deletions attempted per boundary
  Round sigma = 1;                  ///< interval length (graph frozen within)
  std::uint64_t seed = 1;           ///< committed randomness
};

/// Seeded σ-interval-stable churn generator; connected every round.
class SigmaStableChurnAdversary final : public ObliviousAdversary {
 public:
  explicit SigmaStableChurnAdversary(const SigmaStableChurnConfig& cfg);

  [[nodiscard]] std::size_t num_nodes() const override { return cfg_.n; }

 protected:
  [[nodiscard]] const Graph& next_graph(Round r) override;

 private:
  /// Rewires at an interval boundary: delete up to the churn budget, patch
  /// connectivity, replenish to the target edge count.
  void rewire();

  /// Inserts one uniformly random absent edge; false if complete.
  bool add_random_edge();

  SigmaStableChurnConfig cfg_;
  Rng rng_;
  Graph current_;
  std::vector<EdgeKey> edge_scratch_;  ///< shuffle buffer for deletions
  Round last_round_ = 0;
};

}  // namespace dyngossip
