// Oblivious churn adversary.
//
// Generates a committed-in-advance dynamic graph: starting from a random
// connected graph, each round it deletes up to `churn_per_round` edges that
// have been present for at least σ rounds (so the sequence is σ-edge
// stable), inserts fresh random edges to hold the edge count near
// `target_edges`, and patches connectivity with extra random edges if a
// deletion split the graph.  Every decision is a function of the seed and
// the round alone — the oblivious model of Section 1.3.
//
// A `fresh_graph_each_round` mode resamples a completely new connected
// graph every round: the maximum-churn regime (TC grows by ~|E_r| per
// round), useful for stressing the adversary-competitive analysis where the
// algorithm's "free budget" dominates.
#pragma once

#include <utility>
#include <vector>

#include "adversary/adversary.hpp"
#include "common/rng.hpp"

namespace dyngossip {

/// Churn schedule parameters.
struct ChurnConfig {
  std::size_t n = 0;               ///< node count
  std::size_t target_edges = 0;    ///< steady-state |E_r| (>= n-1 enforced)
  std::size_t churn_per_round = 0; ///< deletions attempted per round
  Round sigma = 1;                 ///< σ-edge stability honored (>= 1)
  std::uint64_t seed = 1;          ///< the adversary's committed randomness
  bool fresh_graph_each_round = false;  ///< resample a new graph each round
};

/// Seeded, σ-stable, always-connected churn generator.
class ChurnAdversary final : public ObliviousAdversary {
 public:
  explicit ChurnAdversary(const ChurnConfig& cfg);

  [[nodiscard]] std::size_t num_nodes() const override { return cfg_.n; }

 protected:
  [[nodiscard]] const Graph& next_graph(Round r) override;

 private:
  /// Inserts one uniformly random absent edge (recorded in pending_);
  /// returns false if the graph is complete.
  bool add_random_edge();

  /// Rebuilds inserted_at_ from current_ with every edge aged `r`.
  void reset_ages(Round r);

  ChurnConfig cfg_;
  Rng rng_;
  Graph current_;
  /// Live-edge insertion rounds, sorted by edge key (mirrors current_'s edge
  /// set).  The σ-stability scan walks this in order, so the removable list
  /// needs no per-round sort and no hashing.
  std::vector<std::pair<EdgeKey, Round>> inserted_at_;
  std::vector<std::pair<EdgeKey, Round>> age_scratch_;  ///< compaction buffer
  std::vector<EdgeKey> pending_;  ///< edges inserted in the current round
  Round last_round_ = 0;
};

}  // namespace dyngossip
