#include "adversary/lb_adversary.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/disjoint_set.hpp"
#include "metrics/potential.hpp"

namespace dyngossip {

namespace {

/// Direction test: can u's broadcast increase v's counted knowledge?
/// The edge direction u->v is "useless" iff i_u is ⊥ or already in
/// K_v ∪ K'_v; an edge is free iff both directions are useless.
[[nodiscard]] inline bool direction_useless(TokenId iu, const KnowledgeSet& kv,
                                            const KnowledgeSet& kpv) {
  return iu == kNoToken || kv.test(iu) || kpv.test(iu);
}

}  // namespace

FreeGraphAnalysis analyze_free_graph(std::span<const TokenId> intents,
                                     const std::vector<KnowledgeSet>& knowledge,
                                     const std::vector<KnowledgeSet>& kprime,
                                     std::vector<EdgeKey>* all_free_edges) {
  const std::size_t n = intents.size();
  DG_CHECK(knowledge.size() == n && kprime.size() == n);
  FreeGraphAnalysis out;
  DisjointSet dsu(n);

  std::vector<NodeId> silent;
  std::vector<NodeId> broadcasters;
  silent.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    (intents[v] == kNoToken ? silent : broadcasters).push_back(v);
  }
  out.broadcasters = broadcasters.size();

  auto note_free = [&](NodeId a, NodeId b) {
    if (dsu.unite(a, b)) out.forest.push_back(edge_key(a, b));
    if (all_free_edges != nullptr) all_free_edges->push_back(edge_key(a, b));
  };

  // Every edge between two silent nodes is free: chain them (for the forest)
  // or emit the full clique when all free edges were requested.
  if (all_free_edges == nullptr) {
    for (std::size_t i = 1; i < silent.size(); ++i) {
      note_free(silent[i - 1], silent[i]);
    }
  } else {
    for (std::size_t i = 0; i < silent.size(); ++i) {
      for (std::size_t j = i + 1; j < silent.size(); ++j) {
        note_free(silent[i], silent[j]);
      }
    }
  }

  // Edges incident to a broadcaster: test both directions.  Pairs of
  // broadcasters are scanned once (u < v); broadcaster-silent pairs need
  // only the broadcaster's direction.
  for (const NodeId u : broadcasters) {
    const TokenId iu = intents[u];
    for (const NodeId v : silent) {
      if (direction_useless(iu, knowledge[v], kprime[v])) note_free(u, v);
    }
    for (const NodeId v : broadcasters) {
      if (v <= u) continue;
      if (direction_useless(iu, knowledge[v], kprime[v]) &&
          direction_useless(intents[v], knowledge[u], kprime[u])) {
        note_free(u, v);
      }
    }
  }

  out.components = dsu.component_count();
  out.labels.resize(n);
  // Normalize labels to [0, components).
  std::vector<std::size_t> remap(n, static_cast<std::size_t>(-1));
  std::size_t next = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t root = dsu.find(v);
    if (remap[root] == static_cast<std::size_t>(-1)) remap[root] = next++;
    out.labels[v] = remap[root];
  }
  DG_CHECK(next == out.components);
  return out;
}

LowerBoundAdversary::LowerBoundAdversary(
    const LbAdversaryConfig& cfg, const std::vector<KnowledgeSet>& initial_knowledge)
    : cfg_(cfg), rng_(cfg.seed) {
  DG_CHECK(cfg_.n >= 2);
  DG_CHECK(initial_knowledge.size() == cfg_.n);
  const auto budget = static_cast<std::uint64_t>(
      cfg_.phi_budget_fraction * static_cast<double>(cfg_.n) *
      static_cast<double>(cfg_.k));
  // Probabilistic-method sampling: retry until the potential budget holds.
  constexpr int kMaxResamples = 256;
  for (int attempt = 0; attempt < kMaxResamples; ++attempt) {
    kprime_ = sample_kprime(cfg_.n, cfg_.k, cfg_.kprime_p, rng_);
    phi0_ = potential(initial_knowledge, kprime_);
    if (phi0_ <= budget) return;
  }
  DG_CHECK(false &&
           "could not satisfy the Φ(0) budget — initial knowledge violates the "
           "'at most k/2 tokens on average' precondition of Theorem 2.3");
}

const Graph& LowerBoundAdversary::broadcast_round(const BroadcastRoundView& view) {
  DG_CHECK(view.knowledge != nullptr);
  DG_CHECK(view.intents.size() == cfg_.n);

  std::vector<EdgeKey> all_free;
  FreeGraphAnalysis analysis =
      analyze_free_graph(view.intents, *view.knowledge, kprime_,
                         cfg_.full_free_graph ? &all_free : nullptr);

  Graph g(cfg_.n, cfg_.full_free_graph ? all_free : analysis.forest);

  // Connect the ℓ free components with ℓ-1 additional (non-free) edges:
  // chain one representative per component.  Each such edge can raise Φ by
  // at most 2, which is the whole point of the construction.
  std::vector<NodeId> reps(analysis.components, kNoNode);
  for (NodeId v = 0; v < cfg_.n; ++v) {
    if (reps[analysis.labels[v]] == kNoNode) reps[analysis.labels[v]] = v;
  }
  for (std::size_t i = 1; i < reps.size(); ++i) {
    g.add_edge(reps[i - 1], reps[i]);
  }

  max_components_ = std::max(max_components_, analysis.components);
  if (cfg_.record_series) {
    RoundRecord rec;
    rec.broadcasters = static_cast<std::uint32_t>(analysis.broadcasters);
    rec.components = static_cast<std::uint32_t>(analysis.components);
    rec.phi_before = potential(*view.knowledge, kprime_);
    series_.push_back(rec);
  }
  current_ = std::move(g);
  return current_;
}

}  // namespace dyngossip
