// The Section-2 strongly adaptive lower-bound adversary.
//
// Construction (following Dutta et al. [26] / Haeupler-Kuhn [30] as adapted
// in Section 2):
//  - Before the run, sample K'_v ⊆ T with every token included independently
//    with probability 1/4 (resampled until Φ(0) ≤ 0.8·nk, which a Chernoff
//    argument makes overwhelmingly likely when nodes initially know at most
//    k/2 tokens on average).
//  - Each round, after every node commits its broadcast i_v(r), call edge
//    {u,v} FREE iff i_u(r) ∈ {⊥} ∪ K_v(r-1) ∪ K'_v and symmetrically — i.e.
//    communication over it cannot increase Φ(t) = Σ_v |K_v(t) ∪ K'_v|.
//  - Return a graph containing free edges spanning the free-edge components
//    plus the ℓ-1 extra (non-free) edges needed to connect ℓ components,
//    so the potential can grow by at most 2(ℓ-1) per round.
//
// Lemma 2.1: with the sampled K', every round has ℓ = O(log n) free
// components.  Lemma 2.2: if at most n/(c·log n) nodes broadcast, the free
// graph is connected (ℓ = 1) and NO progress happens.  Hence any algorithm
// needs Ω(nk/log n) rounds with Ω(n/log n) broadcasters, i.e. the amortized
// message complexity is Ω(n²/log² n) (Theorem 2.3).
//
// Two graph modes: `full_free_graph` returns every free edge (the paper's
// construction verbatim, Θ(n²) edges per round); the default returns a
// spanning forest of the free components — identical potential dynamics
// and component structure at O(n) edges per round.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/adversary.hpp"
#include "common/rng.hpp"

namespace dyngossip {

/// Free-edge structure of one round (also used standalone by the Figure-1
/// bench and the Lemma 2.1/2.2 property tests).
struct FreeGraphAnalysis {
  /// Number of connected components of F(r), the graph of all free edges.
  std::size_t components = 0;
  /// A spanning forest of F(r) (|V| - components free edges).
  std::vector<EdgeKey> forest;
  /// Component label per node.
  std::vector<std::size_t> labels;
  /// Number of broadcasting nodes in the assignment analyzed.
  std::size_t broadcasters = 0;
};

/// Computes the free-edge components for a token assignment (v, i_v), given
/// knowledge sets K_v and the adversary's K'_v sets.  If `all_free_edges` is
/// non-null it additionally receives every free edge (Θ(n²) worst case).
[[nodiscard]] FreeGraphAnalysis analyze_free_graph(
    std::span<const TokenId> intents, const std::vector<KnowledgeSet>& knowledge,
    const std::vector<KnowledgeSet>& kprime,
    std::vector<EdgeKey>* all_free_edges = nullptr);

/// Lower-bound adversary parameters.
struct LbAdversaryConfig {
  std::size_t n = 0;                ///< nodes
  std::size_t k = 0;                ///< tokens
  double kprime_p = 0.25;           ///< per-token inclusion probability in K'_v
  double phi_budget_fraction = 0.8; ///< required Φ(0) ≤ fraction·nk
  std::uint64_t seed = 1;           ///< adversary randomness
  bool full_free_graph = false;     ///< return all free edges (paper-verbatim)
  bool record_series = false;       ///< keep per-round instrumentation
};

/// Strongly adaptive adversary realizing the Theorem 2.3 bound.
class LowerBoundAdversary final : public Adversary {
 public:
  /// Per-round instrumentation record.
  struct RoundRecord {
    std::uint32_t broadcasters = 0;  ///< |{v : i_v(r) != ⊥}|
    std::uint32_t components = 0;    ///< components of F(r)
    std::uint64_t phi_before = 0;    ///< Φ(r-1)
  };

  /// Samples K' against the given initial knowledge (resampling until the
  /// Φ(0) budget holds; aborts if the initial distribution makes that
  /// impossible, i.e. the theorem's "at most k/2 tokens on average"
  /// precondition is violated badly).
  LowerBoundAdversary(const LbAdversaryConfig& cfg,
                      const std::vector<KnowledgeSet>& initial_knowledge);

  [[nodiscard]] std::size_t num_nodes() const override { return cfg_.n; }

  [[nodiscard]] const Graph& broadcast_round(const BroadcastRoundView& view) override;

  /// The sampled K'_v sets.
  [[nodiscard]] const std::vector<KnowledgeSet>& kprime() const noexcept {
    return kprime_;
  }

  /// Φ(0) under the sampled K'.
  [[nodiscard]] std::uint64_t initial_potential() const noexcept { return phi0_; }

  /// Largest free-component count seen in any round.
  [[nodiscard]] std::size_t max_components() const noexcept { return max_components_; }

  /// Per-round records (empty unless record_series was set).
  [[nodiscard]] const std::vector<RoundRecord>& series() const noexcept {
    return series_;
  }

 private:
  LbAdversaryConfig cfg_;
  Rng rng_;
  std::vector<KnowledgeSet> kprime_;
  std::uint64_t phi0_ = 0;
  std::size_t max_components_ = 0;
  std::vector<RoundRecord> series_;
  Graph current_;  ///< round-graph storage (see Adversary contract)
};

}  // namespace dyngossip
