#include "adversary/static_adversary.hpp"

#include "common/check.hpp"
#include "graph/connectivity.hpp"

namespace dyngossip {

StaticAdversary::StaticAdversary(Graph g) : graph_(std::move(g)) {
  DG_CHECK(is_connected(graph_));
}

const Graph& StaticAdversary::next_graph(Round /*r*/) { return graph_; }

}  // namespace dyngossip
