#include "adversary/scripted.hpp"

#include "common/check.hpp"
#include "graph/connectivity.hpp"

namespace dyngossip {

ScriptedAdversary::ScriptedAdversary(std::vector<Graph> script)
    : script_(std::move(script)) {
  DG_CHECK(!script_.empty());
  const std::size_t n = script_.front().num_nodes();
  for (const Graph& g : script_) {
    DG_CHECK(g.num_nodes() == n);
    DG_CHECK(is_connected(g));
  }
}

const Graph& ScriptedAdversary::next_graph(Round r) {
  DG_CHECK(r >= 1);
  const std::size_t idx = static_cast<std::size_t>(r - 1) < script_.size()
                              ? static_cast<std::size_t>(r - 1)
                              : script_.size() - 1;
  return script_[idx];
}

}  // namespace dyngossip
