// Adversary interface.
//
// Section 1.3 distinguishes two adversary strengths:
//  - strongly adaptive: chooses round r's topology knowing the algorithm's
//    state and its random choices *for round r* (in the local-broadcast
//    model, it sees each node's chosen broadcast token i_v(r) before fixing
//    the graph — exactly the order of play in Section 2);
//  - oblivious: commits to the whole topology sequence before execution;
//    modelled here as adversaries whose round graphs are a pure function of
//    their own seed and round number.
//
// The engines call `broadcast_round` / `unicast_round` once per round with a
// view of everything the respective model lets the adversary see.  Oblivious
// adversaries ignore the views (enforced by construction: ObliviousAdversary
// routes both calls to a view-free generator).  Every adversary must return
// a connected graph on the engine's node set (the model's standing
// connectivity assumption); the engines verify this.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/knowledge_set.hpp"
#include "common/types.hpp"
#include "engine/message.hpp"
#include "graph/graph.hpp"

namespace dyngossip {

/// What a strongly adaptive adversary sees in the local-broadcast model
/// before fixing round r's graph (Section 2's order of play).
struct BroadcastRoundView {
  Round round = 0;
  /// i_v(r): the token each node will broadcast this round (kNoToken = ⊥).
  std::span<const TokenId> intents;
  /// K_v(r-1): each node's knowledge entering the round.
  const std::vector<KnowledgeSet>* knowledge = nullptr;
};

/// What an adaptive adversary sees in the unicast model before fixing round
/// r's graph.  The paper's unicast algorithms are deterministic, so showing
/// the adversary the full state + previous-round traffic makes it exactly as
/// strong as the strongly adaptive adversary (it can predict round r's
/// messages).
struct UnicastRoundView {
  Round round = 0;
  /// G_{r-1} (empty graph for r = 1).
  const Graph* prev_graph = nullptr;
  /// Every message sent in round r-1.
  const std::vector<SentRecord>* prev_messages = nullptr;
  /// K_v(r-1): each node's token knowledge entering the round.
  const std::vector<KnowledgeSet>* knowledge = nullptr;
};

/// Base class for all adversaries.
///
/// Round methods return a reference to adversary-owned storage that stays
/// valid until the next round call on the same adversary: at n ~ 10⁴ a
/// by-value Graph return would copy n adjacency vectors every round, which
/// the incremental adversaries (churn, request cutter) never need to pay.
/// Engines that must retain the previous round's topology snapshot it
/// themselves (UnicastEngine copy-assigns into a reused buffer).
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Node count of the network this adversary controls.
  [[nodiscard]] virtual std::size_t num_nodes() const = 0;

  /// Round graph for the local-broadcast engine.  Default: defers to the
  /// view-free generator (oblivious behaviour).
  [[nodiscard]] virtual const Graph& broadcast_round(const BroadcastRoundView& view);

  /// Round graph for the unicast engine.  Default: defers to the view-free
  /// generator (oblivious behaviour).
  [[nodiscard]] virtual const Graph& unicast_round(const UnicastRoundView& view);

 protected:
  /// View-free generator used by oblivious adversaries; adaptive adversaries
  /// that override both round methods need not implement it.  The returned
  /// reference must stay valid until the next round call (incremental
  /// generators return their working graph).
  [[nodiscard]] virtual const Graph& next_graph(Round r);
};

/// Convenience base for oblivious adversaries: subclasses implement only
/// next_graph(r), which must depend on nothing but construction-time state
/// (seed, parameters) and r — i.e. the sequence is committed in advance.
class ObliviousAdversary : public Adversary {
 public:
  [[nodiscard]] const Graph& broadcast_round(const BroadcastRoundView& view) final;
  [[nodiscard]] const Graph& unicast_round(const UnicastRoundView& view) final;
};

}  // namespace dyngossip
