// Static adversary: the same connected graph every round.
//
// Dynamic networks subsume static ones; this adversary realizes the paper's
// static reference points (the O(n²/k + n) amortized spanning-tree baseline
// of Section 1, and the sanity bounds O(n+k) rounds for static k-gossip).
#pragma once

#include "adversary/adversary.hpp"

namespace dyngossip {

/// Presents a fixed connected graph in every round.
class StaticAdversary final : public ObliviousAdversary {
 public:
  /// Requires a connected graph (checked).
  explicit StaticAdversary(Graph g);

  [[nodiscard]] std::size_t num_nodes() const override { return graph_.num_nodes(); }

 protected:
  [[nodiscard]] const Graph& next_graph(Round r) override;

 private:
  Graph graph_;
};

}  // namespace dyngossip
