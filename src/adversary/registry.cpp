#include "adversary/registry.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "adversary/churn.hpp"
#include "adversary/lb_adversary.hpp"
#include "adversary/patterns.hpp"
#include "adversary/request_cutter.hpp"
#include "adversary/scripted.hpp"
#include "adversary/sigma_stable.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"
#include "trace/smoothed_adversary.hpp"
#include "trace/trace_adversary.hpp"
#include "trace/trace_reader.hpp"

namespace dyngossip {

namespace {

[[noreturn]] void fail(const std::string& msg) { throw AdversarySpecError(msg); }

/// Typed spec-param access (the shared strict SpecValues core) plus the
/// adversary build context's helpers.
class SpecReader : public SpecValues {
 public:
  SpecReader(const AdversarySpec& spec, const AdversaryBuildContext& ctx)
      : SpecValues(spec.family, spec.params,
                   [](const std::string& msg) { fail(msg); }),
        spec_(spec),
        ctx_(ctx) {}

  /// Spec seed= wins; otherwise the context's (per-trial) seed.
  [[nodiscard]] std::uint64_t seed() const {
    return static_cast<std::uint64_t>(
        get_int("seed", static_cast<std::int64_t>(ctx_.seed)));
  }

  /// Context node count; families without their own n source require it.
  [[nodiscard]] std::size_t require_n() const {
    if (ctx_.n < 2) {
      fail(spec_.family + ": requires a node count n >= 2 in the build context");
    }
    return ctx_.n;
  }

  /// Required string key (file paths).
  [[nodiscard]] std::string require_string(const std::string& key) const {
    const auto it = spec_.params.find(key);
    if (it == spec_.params.end() || it->second.empty()) {
      fail(spec_.family + ": requires " + key + "=... in the spec");
    }
    return it->second;
  }

 private:
  const AdversarySpec& spec_;
  const AdversaryBuildContext& ctx_;
};

/// A file-backed family's n comes from the data; a non-zero context n must
/// agree (a mismatched schedule would only die later inside the engine).
void check_file_n(const std::string& family, std::size_t file_n,
                  std::size_t ctx_n) {
  if (ctx_n != 0 && ctx_n != file_n) {
    fail(family + ": the schedule is over n=" + std::to_string(file_n) +
         " nodes but the run wants n=" + std::to_string(ctx_n) +
         " (the node count comes from the recording)");
  }
}

// ---- family factories ----------------------------------------------------

std::unique_ptr<Adversary> build_static(const AdversarySpec& spec,
                                        const AdversaryBuildContext& ctx) {
  const SpecReader r(spec, ctx);
  const std::size_t n = r.require_n();
  const std::string graph = r.get_string("graph", "complete");
  if (graph == "complete") {
    return std::make_unique<StaticAdversary>(complete_graph(n));
  }
  if (graph == "cycle") {
    return std::make_unique<StaticAdversary>(cycle_graph(n));
  }
  if (graph == "path") {
    return std::make_unique<StaticAdversary>(path_graph(n));
  }
  if (graph == "star") {
    return std::make_unique<StaticAdversary>(star_graph(n));
  }
  if (graph == "gnp") {
    Rng rng(r.seed());
    return std::make_unique<StaticAdversary>(
        connected_erdos_renyi(n, r.get_fraction("p", 0.15), rng));
  }
  fail("static: graph must be complete, cycle, path, star, or gnp (got '" +
       graph + "')");
}

std::unique_ptr<Adversary> build_churn(const AdversarySpec& spec,
                                       const AdversaryBuildContext& ctx) {
  const SpecReader r(spec, ctx);
  ChurnConfig cc;
  cc.n = r.require_n();
  cc.target_edges = r.get_size("edges", 3 * cc.n);
  cc.churn_per_round =
      r.has("rate") ? static_cast<std::size_t>(r.get_fraction("rate", 0.0) *
                                               static_cast<double>(cc.target_edges))
                    : r.get_size("churn", cc.n / 8);
  cc.sigma = static_cast<Round>(r.get_size("sigma", 1));
  cc.seed = r.seed();
  if (cc.sigma < 1) fail("churn: sigma must be >= 1");
  return std::make_unique<ChurnAdversary>(cc);
}

std::unique_ptr<Adversary> build_fresh(const AdversarySpec& spec,
                                       const AdversaryBuildContext& ctx) {
  const SpecReader r(spec, ctx);
  ChurnConfig cc;
  cc.n = r.require_n();
  cc.target_edges = r.get_size("edges", 3 * cc.n);
  cc.seed = r.seed();
  cc.fresh_graph_each_round = true;
  return std::make_unique<ChurnAdversary>(cc);
}

std::unique_ptr<Adversary> build_sigma(const AdversarySpec& spec,
                                       const AdversaryBuildContext& ctx) {
  const SpecReader r(spec, ctx);
  SigmaStableChurnConfig sc;
  sc.n = r.require_n();
  sc.target_edges = r.get_size("edges", 3 * sc.n);
  sc.churn_per_interval =
      r.has("turnover")
          ? static_cast<std::size_t>(r.get_fraction("turnover", 0.0) *
                                     static_cast<double>(sc.target_edges))
          : r.get_size("churn", sc.target_edges / 4);
  sc.sigma = static_cast<Round>(r.get_size("interval", 4));
  sc.seed = r.seed();
  if (sc.sigma < 1) fail("sigma: interval must be >= 1");
  return std::make_unique<SigmaStableChurnAdversary>(sc);
}

std::unique_ptr<Adversary> build_star(const AdversarySpec& spec,
                                      const AdversaryBuildContext& ctx) {
  const SpecReader r(spec, ctx);
  return std::make_unique<RotatingStarAdversary>(r.require_n(), r.seed());
}

std::unique_ptr<Adversary> build_path(const AdversarySpec& spec,
                                      const AdversaryBuildContext& ctx) {
  const SpecReader r(spec, ctx);
  return std::make_unique<PathShuffleAdversary>(r.require_n(), r.seed());
}

std::unique_ptr<Adversary> build_cutter(const AdversarySpec& spec,
                                        const AdversaryBuildContext& ctx) {
  const SpecReader r(spec, ctx);
  RequestCutterConfig rc;
  rc.n = r.require_n();
  rc.target_edges = r.get_size("edges", 3 * rc.n);
  rc.cut_probability = r.get_fraction("p", 1.0);
  rc.seed = r.seed();
  return std::make_unique<RequestCutterAdversary>(rc);
}

std::unique_ptr<Adversary> build_lb(const AdversarySpec& spec,
                                    const AdversaryBuildContext& ctx) {
  const SpecReader r(spec, ctx);
  if (ctx.k == 0 || ctx.initial_knowledge == nullptr) {
    fail("lb: the strongly adaptive lower-bound adversary samples K' against "
         "the run's initial knowledge — the build context must carry k and "
         "initial_knowledge (it cannot replay from a spec alone)");
  }
  LbAdversaryConfig cfg;
  cfg.n = r.require_n();
  cfg.k = ctx.k;
  cfg.kprime_p = r.get_double("kprime_p", 0.25);
  cfg.phi_budget_fraction = r.get_double("budget", 0.8);
  cfg.full_free_graph = r.get_bool("full", false);
  cfg.record_series = r.get_bool("series", false);
  cfg.seed = r.seed();
  return std::make_unique<LowerBoundAdversary>(cfg, *ctx.initial_knowledge);
}

std::unique_ptr<Adversary> build_scripted(const AdversarySpec& spec,
                                          const AdversaryBuildContext& ctx) {
  const SpecReader r(spec, ctx);
  if (!ctx.script.empty()) {
    return std::make_unique<ScriptedAdversary>(ctx.script);
  }
  // File form: materialize every round of a trace as an explicit graph
  // script (random access, unlike the streaming trace family).
  const std::string path = r.require_string("file");
  const std::unique_ptr<TraceSource> source = open_trace_source(path);
  check_file_n("scripted", source->header().n, ctx.n);
  std::vector<Graph> script;
  Graph g(source->header().n);
  while (source->next_round(g)) script.push_back(g);
  if (script.empty()) fail("scripted: trace '" + path + "' holds no rounds");
  return std::make_unique<ScriptedAdversary>(std::move(script));
}

std::unique_ptr<Adversary> build_smoothed(const AdversarySpec& spec,
                                          const AdversaryBuildContext& ctx) {
  const SpecReader r(spec, ctx);
  std::unique_ptr<TraceSource> base = open_trace_source(r.require_string("base"));
  check_file_n("smoothed", base->header().n, ctx.n);
  SmoothedTraceConfig cfg;
  cfg.flips_per_round = r.get_size("flips", 8);
  cfg.seed = r.seed();
  return std::make_unique<SmoothedTraceAdversary>(std::move(base), cfg);
}

std::unique_ptr<Adversary> build_trace(const AdversarySpec& spec,
                                       const AdversaryBuildContext& ctx) {
  const SpecReader r(spec, ctx);
  std::unique_ptr<TraceSource> source = open_trace_source(r.require_string("file"));
  check_file_n("trace", source->header().n, ctx.n);
  TraceAdversaryOptions opts;
  opts.hold_last_graph = r.get_bool("hold", true);
  return std::make_unique<TraceAdversary>(std::move(source), opts);
}

using Kind = AdversaryKeySpec::Kind;

const AdversaryKeySpec kSeedKey{"seed", Kind::kInt, "(run seed)",
                                "schedule randomness; omit to follow the run"};

}  // namespace

// ---- AdversarySpec -------------------------------------------------------

AdversarySpec AdversarySpec::parse(const std::string& text) {
  AdversarySpec spec;
  const std::string error =
      parse_spec_text(text, "adversary", &spec.family, &spec.params);
  if (!error.empty()) fail(error);
  return spec;
}

std::string AdversarySpec::to_string() const {
  return render_spec_text(family, params);
}

AdversarySpec& AdversarySpec::set(const std::string& key, const std::string& value) {
  params[key] = value;
  return *this;
}

AdversarySpec& AdversarySpec::set(const std::string& key, std::uint64_t value) {
  params[key] = std::to_string(value);
  return *this;
}

AdversarySpec& AdversarySpec::set(const std::string& key, double value) {
  params[key] = render_spec_double(value);
  return *this;
}

bool operator==(const AdversarySpec& a, const AdversarySpec& b) {
  return a.family == b.family && a.params == b.params;
}

const char* adversary_key_kind_name(AdversaryKeySpec::Kind kind) {
  return spec_key_kind_name(kind);
}

// ---- AdversaryRegistry ---------------------------------------------------

void AdversaryRegistry::add(AdversaryFamily family) {
  if (!valid_spec_name(family.name)) {
    throw std::invalid_argument("adversary family name '" + family.name +
                                "' is invalid");
  }
  if (!family.build) {
    throw std::invalid_argument("adversary family '" + family.name +
                                "' has no factory");
  }
  if (families_.count(family.name) != 0u) {
    throw std::invalid_argument("adversary family '" + family.name +
                                "' registered twice");
  }
  families_.emplace(family.name, std::move(family));
}

const AdversaryFamily* AdversaryRegistry::find(
    const std::string& name) const noexcept {
  const auto it = families_.find(name);
  return it == families_.end() ? nullptr : &it->second;
}

std::vector<const AdversaryFamily*> AdversaryRegistry::list() const {
  std::vector<const AdversaryFamily*> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) out.push_back(&family);
  return out;
}

void AdversaryRegistry::validate(const AdversarySpec& spec) const {
  const AdversaryFamily* family = find(spec.family);
  if (family == nullptr) {
    std::string known;
    for (const auto& [name, f] : families_) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    fail("unknown adversary family '" + spec.family + "' (known: " + known + ")");
  }
  for (const auto& [key, value] : spec.params) {
    const bool declared =
        std::any_of(family->keys.begin(), family->keys.end(),
                    [&key](const AdversaryKeySpec& k) { return k.key == key; });
    if (!declared) {
      std::string keys;
      for (const AdversaryKeySpec& k : family->keys) {
        if (!keys.empty()) keys += ", ";
        keys += k.key;
      }
      fail(spec.family + ": unknown key '" + key + "' (keys: " +
           (keys.empty() ? "none" : keys) + ")");
    }
  }
}

std::string AdversaryRegistry::describe(const std::string& name) const {
  const AdversaryFamily* family = find(name);
  if (family == nullptr) return "";
  std::string out = family->description;
  if (family->needs_run_context) {
    out +=
        " — buildable but not spec-replayable (the factory needs the run's "
        "initial knowledge); to reproduce a schedule, record it and replay "
        "through trace:file=";
  }
  return out;
}

std::unique_ptr<Adversary> AdversaryRegistry::build(
    const AdversarySpec& spec, const AdversaryBuildContext& ctx) const {
  validate(spec);
  return find(spec.family)->build(spec, ctx);
}

std::unique_ptr<Adversary> AdversaryRegistry::build(
    const std::string& spec_text, const AdversaryBuildContext& ctx) const {
  return build(AdversarySpec::parse(spec_text), ctx);
}

AdversaryRegistry& AdversaryRegistry::global() {
  // Registration happens inside the magic-static initializer so the first
  // touch is thread-safe even when it comes from concurrent pool workers
  // (scenario trials build adversaries without any main-thread warm-up).
  static AdversaryRegistry registry = [] {
    AdversaryRegistry r;
    register_all_adversaries(r);
    return r;
  }();
  return registry;
}

std::unique_ptr<Adversary> build_adversary(const AdversarySpec& spec, std::size_t n,
                                           std::uint64_t seed) {
  AdversaryBuildContext ctx;
  ctx.n = n;
  ctx.seed = seed;
  return AdversaryRegistry::global().build(spec, ctx);
}

void register_all_adversaries(AdversaryRegistry& registry) {
  if (registry.find("churn") != nullptr) return;  // already installed
  registry.add(
      {"static",
       "the same connected graph every round (Section 1's static baseline)",
       "static:graph=gnp,p=0.15",
       {{"graph", Kind::kString, "complete", "complete | cycle | path | star | gnp"},
        {"p", Kind::kDouble, "0.15", "gnp edge probability"},
        kSeedKey},
       build_static});
  registry.add(
      {"churn",
       "oblivious per-edge churn: delete aged edges, replenish, stay connected",
       "churn:rate=0.01,sigma=3",
       {{"edges", Kind::kInt, "3n", "steady-state edge count"},
        {"churn", Kind::kInt, "n/8", "edge deletions attempted per round"},
        {"rate", Kind::kDouble, "(unset)",
         "fraction of the edge set churned per round (overrides churn)"},
        {"sigma", Kind::kInt, "1", "every edge lives >= sigma rounds"},
        kSeedKey},
       build_churn});
  registry.add(
      {"fresh",
       "a completely new connected graph every round (maximum-churn regime)",
       "fresh:edges=192",
       {{"edges", Kind::kInt, "3n", "edge count of each resampled graph"}, kSeedKey},
       build_fresh});
  registry.add(
      {"sigma",
       "sigma-interval-stable bursts: frozen within intervals, rewired at "
       "boundaries",
       "sigma:interval=16,turnover=0.03",
       {{"interval", Kind::kInt, "4", "interval length (graph frozen within)"},
        {"edges", Kind::kInt, "3n", "steady-state edge count"},
        {"churn", Kind::kInt, "edges/4", "edge deletions attempted per boundary"},
        {"turnover", Kind::kDouble, "(unset)",
         "fraction of the edge set rewired per interval (overrides churn)"},
        kSeedKey},
       build_sigma});
  registry.add({"star",
                "rotating star: center advances through a seeded permutation",
                "star:seed=7",
                {kSeedKey},
                build_star});
  registry.add({"path",
                "fresh Hamiltonian path every round (thin-connectivity extreme)",
                "path:seed=7",
                {kSeedKey},
                build_path});
  registry.add(
      {"cutter",
       "adaptive request cutter: deletes edges that carried requests "
       "(unicast model)",
       "cutter:p=0.7",
       {{"p", Kind::kDouble, "1.0", "chance each request-carrying edge is cut"},
        {"edges", Kind::kInt, "3n", "steady-state edge count"},
        kSeedKey},
       build_cutter});
  registry.add(
      {"lb",
       "Section-2 strongly adaptive lower-bound adversary (needs the run's "
       "initial knowledge)",
       "lb:full=false",
       {{"kprime_p", Kind::kDouble, "0.25", "per-token inclusion probability in K'"},
        {"budget", Kind::kDouble, "0.8", "required Phi(0) <= budget * nk"},
        {"full", Kind::kBool, "false", "return all free edges (paper-verbatim)"},
        {"series", Kind::kBool, "false", "keep per-round instrumentation"},
        kSeedKey},
       build_lb,
       /*needs_run_context=*/true});
  registry.add(
      {"scripted",
       "explicit finite graph sequence, materialized from a trace file "
       "(repeats the last graph)",
       "scripted:file=run.dgt",
       {{"file", Kind::kString, "(required)", "trace to load (.dgt / .jsonl)"}},
       build_scripted});
  registry.add(
      {"smoothed",
       "smoothed analysis: replay a base trace with k random pair flips "
       "per round",
       "smoothed:base=run.dgt,flips=8",
       {{"base", Kind::kString, "(required)", "base trace (.dgt / .jsonl)"},
        {"flips", Kind::kInt, "8", "random node-pair toggles per round"},
        kSeedKey},
       build_smoothed});
  registry.add(
      {"trace",
       "bit-exact streaming replay of a recorded schedule "
       "(checksum-certified)",
       "trace:file=run.dgt",
       {{"file", Kind::kString, "(required)", "trace to replay (.dgt / .jsonl)"},
        {"hold", Kind::kBool, "true",
         "hold the final graph after the trace is exhausted"}},
       build_trace});
}

}  // namespace dyngossip
