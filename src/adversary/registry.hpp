// Central adversary registry: every schedule constructible from one spec.
//
// The paper's bounds are quantified over *adversary classes* (oblivious vs
// strongly adaptive, Section 1.3), and most of the experimental science
// lives in swapping the schedule under a fixed algorithm.  This registry
// makes the adversary a first-class, enumerable axis: each family (static,
// churn, fresh, sigma, star, path, cutter, lb, scripted, smoothed, trace)
// registers a declared key set and a factory, so any schedule is
// constructible from a single spec string such as
//
//     churn:rate=0.01        sigma:interval=16,turnover=0.03
//     trace:file=run.dgt     smoothed:base=run.dgt,flips=8
//
// Scenarios, demos, and the CLI all build adversaries through here — the
// per-file unique_ptr<Adversary> switches are gone, `dyngossip adversaries`
// enumerates what exists, and the global --adversary=/--trace= flags let
// any opted-in experiment run over any registered family or a recorded
// schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "common/knowledge_set.hpp"
#include "common/spec.hpp"

namespace dyngossip {

/// Thrown on malformed spec text, unknown families/keys, out-of-range
/// values, or a build context missing what a family requires.  A dedicated
/// type so CLI layers can turn registry misuse into flag errors (exit 2)
/// while real I/O failures (TraceError) keep their own channel.
class AdversarySpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed adversary spec: family name plus key=value parameters.
///
/// Text form: `family[:key=value[,key=value...]]`.  Keys are unordered
/// (stored sorted), values are uninterpreted strings until a factory reads
/// them; to_string() renders the canonical form, so
/// parse(s).to_string() == parse(parse(s).to_string()).to_string().
struct AdversarySpec {
  std::string family;                          ///< registry key, e.g. "churn"
  std::map<std::string, std::string> params;   ///< key=value pairs, sorted

  /// Parses spec text; throws AdversarySpecError with the offending part.
  [[nodiscard]] static AdversarySpec parse(const std::string& text);

  /// Canonical `family:k=v,k=v` rendering (keys sorted, no spaces).
  [[nodiscard]] std::string to_string() const;

  /// Chainable param setters (scenarios build specs programmatically).
  AdversarySpec& set(const std::string& key, const std::string& value);
  AdversarySpec& set(const std::string& key, std::uint64_t value);
  AdversarySpec& set(const std::string& key, double value);
};

[[nodiscard]] bool operator==(const AdversarySpec& a, const AdversarySpec& b);

/// Run-side inputs a factory may need beyond the spec itself.
struct AdversaryBuildContext {
  /// Node count.  0 means "take it from the data" — only the file-backed
  /// families (trace, scripted, smoothed) accept that; when non-zero it is
  /// cross-checked against the file header.
  std::size_t n = 0;
  /// Seed used when the spec carries no explicit seed= key; scenarios pass
  /// their per-trial seed here so sweeps stay seed-diverse under an
  /// overridden family while an explicit seed= pins the whole schedule.
  std::uint64_t seed = 1;
  /// Token count (required by the lb family's K' sampling).
  std::size_t k = 0;
  /// Initial knowledge K_v(0) (required by the lb family).  Not owned.
  const std::vector<KnowledgeSet>* initial_knowledge = nullptr;
  /// Explicit round-graph script (programmatic alternative to
  /// scripted:file=...; tests use this).
  std::vector<Graph> script;
};

/// One declared spec key of a family (documentation + validation; the
/// shared grammar's SpecKey, aliased for call-site clarity).
using AdversaryKeySpec = SpecKey;

/// Human-readable name of a key kind ("int", "double", "bool", "string").
[[nodiscard]] const char* adversary_key_kind_name(AdversaryKeySpec::Kind kind);

/// A registered adversary family.
struct AdversaryFamily {
  std::string name;         ///< registry key, e.g. "churn"
  std::string description;  ///< one line for `dyngossip adversaries`
  std::string example;      ///< a representative spec string
  std::vector<AdversaryKeySpec> keys;  ///< declared parameters (validated)
  /// Factory: (validated spec, run context) → adversary instance.
  std::function<std::unique_ptr<Adversary>(const AdversarySpec&,
                                           const AdversaryBuildContext&)>
      build;
  /// True when the factory needs run-side context beyond the spec (lb:
  /// k + initial knowledge).  Such a family is buildable inside a run but
  /// NOT replayable from its spec alone — record the schedule and replay
  /// it through `trace:file=` instead.  `dyngossip adversaries` prints
  /// this caveat so it stops being folklore.
  bool needs_run_context = false;
};

/// Name → family registry (mirrors ScenarioRegistry: explicit registration,
/// no static-initializer magic, private instances for tests).
class AdversaryRegistry {
 public:
  /// Registers a family.  Throws std::invalid_argument on an empty name, a
  /// missing factory, or a duplicate.
  void add(AdversaryFamily family);

  /// Family by name, or nullptr when unknown.
  [[nodiscard]] const AdversaryFamily* find(const std::string& name) const noexcept;

  /// All families, sorted by name.
  [[nodiscard]] std::vector<const AdversaryFamily*> list() const;

  /// Number of registered families.
  [[nodiscard]] std::size_t size() const noexcept { return families_.size(); }

  /// Checks the spec against the declared families/keys without building.
  /// Throws AdversarySpecError naming the unknown family or key.
  void validate(const AdversarySpec& spec) const;

  /// One-line human description of a family, with the build-vs-replay
  /// caveat appended for context-dependent families (needs_run_context).
  /// "" for unknown names.
  [[nodiscard]] std::string describe(const std::string& name) const;

  /// Validates, then builds.  Throws AdversarySpecError on registry misuse
  /// (factories may additionally surface I/O errors, e.g. TraceError).
  [[nodiscard]] std::unique_ptr<Adversary> build(
      const AdversarySpec& spec, const AdversaryBuildContext& ctx) const;

  /// Convenience: parse + build.
  [[nodiscard]] std::unique_ptr<Adversary> build(
      const std::string& spec_text, const AdversaryBuildContext& ctx) const;

  /// Process-wide registry with every family installed.
  [[nodiscard]] static AdversaryRegistry& global();

 private:
  std::map<std::string, AdversaryFamily> families_;
};

/// Installs the full family catalogue; a no-op when already installed.
void register_all_adversaries(AdversaryRegistry& registry);

/// Convenience: builds `spec` through the global registry with just a node
/// count and a seed (the common case for scenarios and demos).
[[nodiscard]] std::unique_ptr<Adversary> build_adversary(const AdversarySpec& spec,
                                                         std::size_t n,
                                                         std::uint64_t seed);

}  // namespace dyngossip
